// Package popper's root benchmark harness regenerates every table and
// figure of the paper (see DESIGN.md's experiment index E1–E12) plus the
// ablations of the design choices DESIGN.md calls out. Each benchmark
// reports the headline quantity of its artifact through b.ReportMetric,
// so `go test -bench . -benchmem` prints the reproduced numbers next to
// the timing.
package popper

import (
	"fmt"
	"math"
	"testing"

	"popper/internal/aver"
	"popper/internal/baseliner"
	"popper/internal/ci"
	"popper/internal/cluster"
	"popper/internal/container"
	"popper/internal/core"
	"popper/internal/dataset"
	"popper/internal/gasnet"
	"popper/internal/gassyfs"
	"popper/internal/metrics"
	"popper/internal/mpi"
	"popper/internal/orchestrate"
	"popper/internal/pipeline"
	"popper/internal/plot"
	"popper/internal/stress"
	"popper/internal/table"
	"popper/internal/torpor"
	"popper/internal/vcs"
	"popper/internal/weather"
	"popper/internal/workload"
)

// --- E1: Figure exp_workflow — the generic experimentation loop --------

func BenchmarkFigExpWorkflow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		journal := pipeline.NewJournal()
		pl := pipeline.New("exploration")
		pl.AddStage("setup", func(c *pipeline.Context) error { return nil })
		pl.AddStage("run", func(c *pipeline.Context) error {
			c.Workspace["results.csv"] = []byte("param," + c.Param("param", "a") + "\n")
			return nil
		})
		pl.AddStage("validate", func(c *pipeline.Context) error { return nil })
		// the backwards-going arrows of Figure 1: fix, re-parameterize, re-run
		journal.Append(pl.Run(&pipeline.Context{Params: map[string]string{"param": "a"}}), "initial")
		journal.Append(pl.Run(&pipeline.Context{Params: map[string]string{"param": "b"}}), "changed parameter")
		journal.Append(pl.Run(&pipeline.Context{Params: map[string]string{"param": "a"}}), "re-run original")
		same, err := journal.Reproduced(1, 3)
		if err != nil || !same {
			b.Fatalf("journal reproduction broken: %v %v", same, err)
		}
	}
}

// --- E2: Figure devops-approach — the toolkit, audited -----------------

func BenchmarkFigDevOpsToolkit(b *testing.B) {
	templates := core.Templates()
	for i := 0; i < b.N; i++ {
		p := core.Init()
		for j, t := range templates {
			if err := p.AddExperiment(t, fmt.Sprintf("exp%d", j)); err != nil {
				b.Fatal(err)
			}
		}
		rep := p.Check()
		if !rep.Compliant() {
			b.Fatalf("toolkit audit failed:\n%s", rep.String())
		}
	}
	b.ReportMetric(float64(len(templates)), "templates")
}

// --- E3: Figure review-workflow — reader re-executes an article --------

func BenchmarkFigReviewWorkflow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// (1) the article repo with its artifacts
		author := core.Init()
		if err := author.AddExperiment("zlog", "exp"); err != nil {
			b.Fatal(err)
		}
		repo := vcs.NewRepository()
		commit, err := repo.Commit(author.Files, "author", "camera ready")
		if err != nil {
			b.Fatal(err)
		}
		// (2) the reader clones it
		clone, err := repo.Checkout(commit.Hash)
		if err != nil {
			b.Fatal(err)
		}
		// (3) single-node deploy through the container engine
		reg := container.NewRegistry()
		eng := container.NewEngine(reg)
		img, err := eng.BuildAndPush("FROM scratch\nCOPY experiments /exp\nCMD cat /exp/exp/vars.yml",
			clone, "article", "v1")
		if err != nil {
			b.Fatal(err)
		}
		ctr, err := eng.Run(img.Ref())
		if err != nil || ctr.Logs() == "" {
			b.Fatalf("container deploy failed: %v", err)
		}
		// (4) multi-node deploy through orchestration on leased bare metal
		c := cluster.New(int64(i))
		nodes, _ := c.Provision("cloudlab-c220g1", 2)
		inv := orchestrate.NewInventory()
		for _, n := range nodes {
			inv.Add(orchestrate.NewHost(n.ID(), n))
		}
		pb, err := orchestrate.ParsePlaybook(string(clone["experiments/exp/setup.yml"]))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := orchestrate.NewRunner(inv).Run(pb); err != nil {
			b.Fatal(err)
		}
		// (5) large outputs go to cloud storage (the artifact store)
		store := dataset.NewStore()
		if _, err := store.Publish("results", "1.0", "", "", map[string][]byte{
			"results.csv": []byte("batch,rate\n1,100\n"),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E4: Figure torpor-variability --------------------------------------

func BenchmarkFigTorporVariability(b *testing.B) {
	var mode plot.Bucket
	for i := 0; i < b.N; i++ {
		c := cluster.New(42)
		base, _ := c.Provision("xeon-2005", 1)
		target, _ := c.Provision("cloudlab-c220g1", 1)
		vp, err := torpor.MeasureProfile(base[0], target[0], 100)
		if err != nil {
			b.Fatal(err)
		}
		h, err := vp.Histogram(0.1)
		if err != nil {
			b.Fatal(err)
		}
		mode = h.Mode()
	}
	// Paper: 7 stressors in (2.2, 2.3].
	b.ReportMetric(float64(mode.Count), "stressors_in_mode")
	b.ReportMetric(mode.Hi, "mode_bucket_hi")
}

// --- E5/E6: Figure gassyfs-git + Listing aver-assertion ----------------

func gassyfsSweep(b *testing.B, policy gassyfs.AllocPolicy, nodeCounts []int) *table.Table {
	b.Helper()
	spec := workload.GitCompileSpec()
	spec.Sources = 48
	results := table.New("workload", "machine", "nodes", "time")
	for _, n := range nodeCounts {
		c := cluster.New(42 + int64(n))
		nodes, err := c.Provision("cloudlab-c220g1", n)
		if err != nil {
			b.Fatal(err)
		}
		world, err := gasnet.New(nodes, cluster.NewNetwork(0), nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := world.AttachAll(128 << 20); err != nil {
			b.Fatal(err)
		}
		fs, err := gassyfs.Mount(world, gassyfs.Options{Policy: policy})
		if err != nil {
			b.Fatal(err)
		}
		cl, _ := fs.Client(0)
		if err := workload.GenerateTree(cl, spec); err != nil {
			b.Fatal(err)
		}
		res, err := workload.CompileOnCluster(fs, spec)
		if err != nil {
			b.Fatal(err)
		}
		results.MustAppend(table.String("compile-git"), table.String("cloudlab-c220g1"),
			table.Number(float64(n)), table.Number(res.Elapsed))
	}
	return results
}

func BenchmarkFigGassyfsGit(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		results := gassyfsSweep(b, gassyfs.AllocRoundRobin, []int{1, 2, 4, 8})
		times, _ := results.Floats("time")
		speedup = times[0] / times[len(times)-1]
	}
	// Paper's shape: speedup at 8 nodes well above 1 but below ideal 8.
	b.ReportMetric(speedup, "speedup_at_8_nodes")
}

func BenchmarkAverValidation(b *testing.B) {
	results := gassyfsSweep(b, gassyfs.AllocRoundRobin, []int{1, 2, 4, 8})
	src := "when workload=* and machine=* expect sublinear(nodes,time)"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		verdicts, err := aver.NewEvaluator().CheckAll(src, results)
		if err != nil || !aver.AllPassed(verdicts) {
			b.Fatalf("paper assertion failed: %v", err)
		}
	}
}

// --- the scale-out GassyFS data path: host parallelism ablations --------

func mountCompileFS(b *testing.B, ranks int, spec workload.CompileSpec, opts gassyfs.Options) *gassyfs.FS {
	b.Helper()
	c := cluster.New(42 + int64(ranks))
	nodes, err := c.Provision("cloudlab-c220g1", ranks)
	if err != nil {
		b.Fatal(err)
	}
	world, err := gasnet.New(nodes, cluster.NewNetwork(0), nil)
	if err != nil {
		b.Fatal(err)
	}
	if err := world.AttachAll(128 << 20); err != nil {
		b.Fatal(err)
	}
	fs, err := gassyfs.Mount(world, opts)
	if err != nil {
		b.Fatal(err)
	}
	cl, _ := fs.Client(0)
	if err := workload.GenerateTree(cl, spec); err != nil {
		b.Fatal(err)
	}
	return fs
}

// BenchmarkGassyfsCompileGit compares host wall-clock for the same
// simulated multi-client build driven serially (HostJobs=1) and with one
// goroutine per rank. The simulated results are bit-identical (see
// TestCompileParallelMatchesSerialGolden); only the host time differs.
func BenchmarkGassyfsCompileGit(b *testing.B) {
	for _, bc := range []struct {
		name string
		jobs int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			spec := workload.GitCompileSpec()
			spec.Sources = 96
			spec.HostJobs = bc.jobs
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fs := mountCompileFS(b, 8, spec, gassyfs.Options{})
				b.StartTimer()
				if _, err := workload.CompileOnCluster(fs, spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGassyfsReadParallel hammers the cached zero-copy read path
// from GOMAXPROCS goroutines, each with its own client (and cache), all
// reading the same warmed multi-block file.
func BenchmarkGassyfsReadParallel(b *testing.B) {
	spec := workload.GitCompileSpec()
	spec.Sources = 1
	fs := mountCompileFS(b, 4, spec, gassyfs.Options{CacheBlocks: 256})
	cl0, _ := fs.Client(0)
	big := make([]byte, 64*fs.BlockSize())
	for i := range big {
		big[i] = byte(i)
	}
	if err := cl0.WriteFile("/big", big); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(big)))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		cl, err := fs.Client(0)
		if err != nil {
			b.Error(err)
			return
		}
		for pb.Next() {
			if _, err := cl.ReadFile("/big"); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkGasnetGetv compares the scalar per-block GetInto loop against
// one vectored Getv moving the same 64 blocks: the vectored op batches
// the lock, clock, and metric bookkeeping.
func BenchmarkGasnetGetv(b *testing.B) {
	const blocks, bs = 64, int64(8 << 10)
	c := cluster.New(42)
	nodes, err := c.Provision("cloudlab-c220g1", 2)
	if err != nil {
		b.Fatal(err)
	}
	world, err := gasnet.New(nodes, cluster.NewNetwork(0), nil)
	if err != nil {
		b.Fatal(err)
	}
	if err := world.AttachAll(1 << 20); err != nil {
		b.Fatal(err)
	}
	addrs := make([]gasnet.Addr, blocks)
	out := make([]byte, blocks*bs)
	bufs := make([][]byte, blocks)
	for i := range addrs {
		addrs[i] = gasnet.Addr{Rank: 1, Offset: int64(i) * bs}
		bufs[i] = out[int64(i)*bs : int64(i+1)*bs]
		if err := world.PutFrom(0, addrs[i], bufs[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(out)))
		for i := 0; i < b.N; i++ {
			for j := range addrs {
				if err := world.GetInto(0, addrs[j], bufs[j]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("vectored", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(out)))
		for i := 0; i < b.N; i++ {
			if _, err := world.Getv(0, addrs, bufs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E7: the MPI noisy-neighbour figure ---------------------------------

func BenchmarkFigMPIVariability(b *testing.B) {
	spec := workload.DefaultLuleshSpec()
	spec.Iterations = 3
	spec.ProblemSize = 20
	var cvRatio float64
	for i := 0; i < b.N; i++ {
		run := func(seed int64, load float64) float64 {
			c := cluster.New(seed)
			nodes, _ := c.Provision("ec2-m4", 8)
			if load > 0 {
				nodes[int(seed)%8].SetBackgroundLoad(load)
			}
			cm, _ := mpi.NewComm(nodes, cluster.NewNetwork(0))
			res, err := workload.RunLulesh(cm, spec)
			if err != nil {
				b.Fatal(err)
			}
			return res.Elapsed
		}
		var quiet, noisy []float64
		for s := int64(0); s < 8; s++ {
			quiet = append(quiet, run(s, 0))
			noisy = append(noisy, run(s, 0.1+0.08*float64(s)))
		}
		cvRatio = table.CoeffVar(noisy) / table.CoeffVar(quiet)
	}
	b.ReportMetric(cvRatio, "cv_ratio_noisy_vs_quiet")
}

// --- E8: Figure bww-airtemp ---------------------------------------------

func BenchmarkFigBWWAirTemp(b *testing.B) {
	var an *weather.Analysis
	for i := 0; i < b.N; i++ {
		arr, err := weather.Generate(weather.ReanalysisSpec{
			Days: 365, LatStep: 10, LonStep: 30, NoiseK: 1, Seed: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		an, err = weather.Analyze(arr)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := an.Heatmap(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(an.GlobalMeanK, "global_mean_K")
	b.ReportMetric(an.AmplitudeNorth/an.AmplitudeSouth, "nh_sh_amplitude_ratio")
}

// --- E9: Listings dir + poppercli — the CLI flow -------------------------

func BenchmarkPopperCLI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := core.Init()
		_ = core.FormatTemplateList()
		if err := p.AddExperiment("torpor", "myexp"); err != nil {
			b.Fatal(err)
		}
		if !p.Check().Compliant() {
			b.Fatal("fresh experiment not compliant")
		}
	}
}

// --- E10: CI integrity tier ----------------------------------------------

func BenchmarkCIPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		proj := core.Init()
		proj.AddExperiment("proteustm", "stm")
		proj.Files[core.CIFile] = []byte("script:\n  - popper check\n  - popper lint\n  - ./paper/build.sh\n")
		repo := vcs.NewRepository()
		svc, err := ci.NewService(repo, core.CIRunner(&core.Env{Seed: 1}))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := repo.Commit(proj.Files, "ci", "commit"); err != nil {
			b.Fatal(err)
		}
		if build, _ := svc.Latest(); build.Status != ci.StatusPassed {
			b.Fatalf("build %s:\n%s", build.Status, build.Log)
		}
	}
}

// --- E11: the baseline gate ------------------------------------------------

func BenchmarkBaselineGate(b *testing.B) {
	c := cluster.New(1)
	ref, _ := c.Provision("cloudlab-c220g1", 1)
	recorded := baseliner.Collect(ref[0], 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fresh, _ := c.Provision("cloudlab-c220g1", 1)
		if _, err := baseliner.Gate(recorded, fresh[0], 100, 0.2); err != nil {
			b.Fatal(err)
		}
		c.Release(fresh...)
	}
}

// --- E12: the cost of Popperizing an ad-hoc experiment --------------------

func BenchmarkPopperize(b *testing.B) {
	adhoc := map[string][]byte{
		"measure.sh":    []byte("#!/bin/sh\nmpirun -n 27 lulesh"),
		"analysis.xlsx": []byte("opaque spreadsheet bytes"),
		"plot-paraview": []byte("paraview state"),
		"notes.txt":     []byte("remember to set OMP_NUM_THREADS"),
	}
	var created int
	for i := 0; i < b.N; i++ {
		p := core.Init()
		var err error
		created, err = p.Popperize("lulesh-study", adhoc)
		if err != nil {
			b.Fatal(err)
		}
		if !p.Check().Compliant() {
			b.Fatal("popperized repo not compliant")
		}
	}
	b.ReportMetric(float64(created), "skeleton_files_created")
}

// --- Ablations (DESIGN.md) -------------------------------------------------

// Ablation 1: GassyFS data placement. Round-robin stripes blocks across
// the cluster (balanced load, mostly remote access); local-first keeps a
// writer's data at home (fast single-client I/O, concentrated load). A
// single-client microbenchmark exposes the trade-off; the all-ranks
// compile workload hides it because every rank is a client.
func BenchmarkAblationGassyfsPlacement(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		policy gassyfs.AllocPolicy
	}{
		{"round-robin", gassyfs.AllocRoundRobin},
		{"local-first", gassyfs.AllocLocalFirst},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var readMBps float64
			for i := 0; i < b.N; i++ {
				c := cluster.New(42)
				nodes, _ := c.Provision("cloudlab-c220g1", 4)
				world, err := gasnet.New(nodes, cluster.NewNetwork(0), nil)
				if err != nil {
					b.Fatal(err)
				}
				world.AttachAll(64 << 20)
				fs, err := gassyfs.Mount(world, gassyfs.Options{Policy: cfg.policy})
				if err != nil {
					b.Fatal(err)
				}
				cl, _ := fs.Client(0)
				res, err := workload.RunFSBench(cl, "/bench", workload.FSBenchSpec{
					FileSize: 16 << 20, IOSize: 256 << 10, Ops: 64, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				readMBps = res.ReadMBps
			}
			b.ReportMetric(readMBps, "virtual_read_MBps")
		})
	}
}

// Ablation 1b: GassyFS metadata placement — a client colocated with the
// metadata service vs one paying a round trip per metadata operation,
// under a metadata-heavy workload (many tiny files).
func BenchmarkAblationGassyfsMetadata(b *testing.B) {
	for _, cfg := range []struct {
		name       string
		clientRank int
	}{
		{"metadata-local", 0},
		{"metadata-remote", 3},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var elapsed float64
			for i := 0; i < b.N; i++ {
				c := cluster.New(42)
				nodes, _ := c.Provision("cloudlab-c220g1", 4)
				world, err := gasnet.New(nodes, cluster.NewNetwork(0), nil)
				if err != nil {
					b.Fatal(err)
				}
				world.AttachAll(32 << 20)
				fs, err := gassyfs.Mount(world, gassyfs.Options{MetadataRank: 0})
				if err != nil {
					b.Fatal(err)
				}
				cl, err := fs.Client(cfg.clientRank)
				if err != nil {
					b.Fatal(err)
				}
				node, _ := world.Node(cfg.clientRank)
				cl.MkdirAll("/meta")
				start := node.Now()
				for f := 0; f < 200; f++ {
					p := fmt.Sprintf("/meta/f%03d", f)
					if err := cl.WriteFile(p, []byte("tiny")); err != nil {
						b.Fatal(err)
					}
					if _, err := cl.Stat(p); err != nil {
						b.Fatal(err)
					}
				}
				elapsed = node.Now() - start
			}
			b.ReportMetric(elapsed*1000, "virtual_ms")
		})
	}
}

// Ablation 2: container image chaining vs flattening — the discussion
// section's packaging/deployment trade-off. Chained images accumulate
// shadowed bytes; flattening pays one merge to shed them.
func BenchmarkAblationImageChaining(b *testing.B) {
	build := func() *container.Image {
		reg := container.NewRegistry()
		eng := container.NewEngine(reg)
		img, err := eng.Build("FROM scratch\nCOPY f /f\nCMD true",
			map[string][]byte{"f": make([]byte, 1<<20)}, "base", "v1")
		if err != nil {
			b.Fatal(err)
		}
		// ten chained layers, each rewriting the payload
		for l := 0; l < 10; l++ {
			layer := container.NewLayer()
			layer.Files["f"] = make([]byte, 1<<20)
			img.Layers = append(img.Layers, layer)
		}
		return img
	}
	b.Run("chained", func(b *testing.B) {
		img := build()
		var size int64
		for i := 0; i < b.N; i++ {
			_ = img.RootFS()
			size = img.Size()
		}
		b.ReportMetric(float64(size)/1e6, "stored_MB")
	})
	b.Run("flattened", func(b *testing.B) {
		img := build().Flatten()
		var size int64
		for i := 0; i < b.N; i++ {
			_ = img.RootFS()
			size = img.Size()
		}
		b.ReportMetric(float64(size)/1e6, "stored_MB")
	})
}

// Ablation 3: orchestration round trips — per-task ssh vs one batched
// push per play.
func BenchmarkAblationOrchestration(b *testing.B) {
	playbook := `
- name: configure
  hosts: all
  tasks:
    - pkg: {name: gcc}
    - pkg: {name: make}
    - copy: {dest: /etc/exp.conf, content: "x"}
    - service: {name: expd, state: started}
    - shell: ./run.sh
`
	for _, batched := range []bool{false, true} {
		name := "per-task"
		if batched {
			name = "batched"
		}
		b.Run(name, func(b *testing.B) {
			var makespan float64
			for i := 0; i < b.N; i++ {
				c := cluster.New(int64(i))
				nodes, _ := c.Provision("cloudlab-c220g1", 8)
				inv := orchestrate.NewInventory()
				for _, n := range nodes {
					inv.Add(orchestrate.NewHost(n.ID(), n))
				}
				r := orchestrate.NewRunner(inv)
				r.Batched = batched
				pb, err := orchestrate.ParsePlaybook(playbook)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := r.Run(pb); err != nil {
					b.Fatal(err)
				}
				makespan = cluster.MaxClock(nodes)
			}
			b.ReportMetric(makespan, "virtual_seconds")
		})
	}
}

// Ablation 6: GassyFS client block cache — a remote client re-reading a
// working set with and without the FUSE-style page cache.
func BenchmarkAblationGassyfsCache(b *testing.B) {
	for _, cacheBlocks := range []int{0, 128} {
		name := "no-cache"
		if cacheBlocks > 0 {
			name = "cached"
		}
		b.Run(name, func(b *testing.B) {
			var warm float64
			for i := 0; i < b.N; i++ {
				c := cluster.New(42)
				nodes, _ := c.Provision("cloudlab-c220g1", 2)
				world, err := gasnet.New(nodes, cluster.NewNetwork(0), nil)
				if err != nil {
					b.Fatal(err)
				}
				world.AttachAll(64 << 20)
				fs, err := gassyfs.Mount(world, gassyfs.Options{CacheBlocks: cacheBlocks})
				if err != nil {
					b.Fatal(err)
				}
				writer, _ := fs.Client(0)
				writer.MkdirAll("/d")
				if err := writer.WriteFile("/d/f", make([]byte, 4<<20)); err != nil {
					b.Fatal(err)
				}
				reader, _ := fs.Client(1)
				if _, err := reader.ReadFile("/d/f"); err != nil { // cold
					b.Fatal(err)
				}
				node, _ := world.Node(1)
				start := node.Now()
				for r := 0; r < 4; r++ { // re-reads
					if _, err := reader.ReadFile("/d/f"); err != nil {
						b.Fatal(err)
					}
				}
				warm = (node.Now() - start) * 1000
			}
			b.ReportMetric(warm, "virtual_ms_4_rereads")
		})
	}
}

// Ablation 5: MPI halo exchange — blocking Sendrecv after the stencil vs
// nonblocking Isend/Irecv overlapped with it. Overlap hides wire time
// behind computation, the standard optimization LULESH-class codes use.
func BenchmarkAblationMPIOverlap(b *testing.B) {
	for _, overlap := range []bool{false, true} {
		name := "blocking"
		if overlap {
			name = "overlapped"
		}
		b.Run(name, func(b *testing.B) {
			var elapsed float64
			for i := 0; i < b.N; i++ {
				c := cluster.New(42)
				nodes, _ := c.Provision("probe-opteron", 8)
				cm, err := mpi.NewComm(nodes, cluster.NewNetwork(0))
				if err != nil {
					b.Fatal(err)
				}
				spec := workload.DefaultLuleshSpec()
				spec.Iterations = 5
				spec.ProblemSize = 16
				spec.Overlap = overlap
				res, err := workload.RunLulesh(cm, spec)
				if err != nil {
					b.Fatal(err)
				}
				elapsed = res.Elapsed
			}
			b.ReportMetric(elapsed*1000, "virtual_ms")
		})
	}
}

// Ablation 4: Aver slope estimation — least-squares regression vs the
// strict pairwise bound, on a noisy sublinear series.
func BenchmarkAblationAverSlopeMethod(b *testing.B) {
	tb := table.New("nodes", "time")
	for _, n := range []float64{1, 2, 4, 8, 16} {
		// sublinear with mild noise
		tb.MustAppend(table.Number(n), table.Number(100/math.Pow(n, 0.7)*(1+0.02*math.Sin(n))))
	}
	a, err := aver.Parse("expect sublinear(nodes,time)")
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []struct {
		name   string
		method aver.SlopeMethod
	}{
		{"regression", aver.SlopeRegression},
		{"pairwise", aver.SlopePairwise},
	} {
		b.Run(m.name, func(b *testing.B) {
			ev := &aver.Evaluator{Method: m.method, DefaultTol: 0.05}
			for i := 0; i < b.N; i++ {
				if _, err := ev.Check(a, tb); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- native stressor kernels: real machine work ----------------------------

func BenchmarkStressNative(b *testing.B) {
	for _, s := range stress.All() {
		s := s
		b.Run(s.Name, func(b *testing.B) {
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += s.Native(10000)
			}
			_ = sink
		})
	}
}

// --- table/Aver hot path: columnar views and vectorized kernels ------------

// benchResultsTable builds a deterministic ~rows-row results table shaped
// like a large sweep merge: 12 wildcard groups (workload x machine), a
// nodes axis and a sublinear time metric with mild deterministic noise.
func benchResultsTable(rows int) *table.Table {
	workloads := []string{"compile-git", "fsbench", "lulesh", "zlog"}
	machines := []string{"cloudlab-c220g1", "ec2-m4", "probe-opteron"}
	nodeAxis := []float64{1, 2, 4, 8}
	t := table.New("workload", "machine", "nodes", "time")
	for r := 0; r < rows; r++ {
		w := workloads[r%len(workloads)]
		m := machines[(r/len(workloads))%len(machines)]
		n := nodeAxis[(r/(len(workloads)*len(machines)))%len(nodeAxis)]
		tm := 100 / math.Pow(n, 0.7) * (1 + 0.02*math.Sin(float64(r)))
		t.MustAppend(table.String(w), table.String(m), table.Number(n), table.Number(tm))
	}
	return t
}

func BenchmarkTableGroupBy(b *testing.B) {
	t := benchResultsTable(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := t.GroupBy([]string{"workload", "machine"},
			table.Agg{Col: "time", Op: "mean"}, table.Agg{Col: "time", Op: "max"})
		if err != nil || out.Len() != 12 {
			b.Fatalf("groupby: %v (len %d)", err, out.Len())
		}
	}
}

func BenchmarkTableFilterChain(b *testing.B) {
	t := benchResultsTable(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := t.Where("machine", table.String("ec2-m4"))
		if err != nil {
			b.Fatal(err)
		}
		f = f.Filter(func(r int) bool { return f.MustCell(r, "nodes").Num >= 2 })
		sel, err := f.Select("nodes", "time")
		if err != nil {
			b.Fatal(err)
		}
		if err := sel.SortBy("nodes", "time"); err != nil {
			b.Fatal(err)
		}
		if sel.Len() == 0 {
			b.Fatal("empty filter chain result")
		}
	}
}

func BenchmarkAverValidate100k(b *testing.B) {
	t := benchResultsTable(100_000)
	src := "when workload=* and machine=* expect sublinear(nodes,time) and time > 0"
	ev := aver.NewEvaluator()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		verdicts, err := ev.CheckAll(src, t)
		if err != nil || !aver.AllPassed(verdicts) {
			b.Fatalf("validation failed: %v\n%s", err, aver.FormatResults(verdicts))
		}
	}
}

// --- metrics plumbing under load -------------------------------------------

func BenchmarkMetricsPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reg := metrics.NewRegistry(metrics.Labels{"bench": "pipeline"}, nil)
		v := reg.WithLabels(metrics.Labels{"run": "1"})
		for j := 0; j < 1000; j++ {
			v.Observe("time", float64(j))
		}
		if reg.ResultTable().Len() == 0 {
			b.Fatal("empty result table")
		}
	}
}

// --- parallel sweep engine & stage cache -----------------------------------

// sweepBenchProject builds a cloverleaf project sized so one
// configuration takes a measurable (but small) amount of work.
func sweepBenchProject(b *testing.B) (*core.Project, []map[string]string) {
	b.Helper()
	p := core.Init()
	if err := p.AddExperiment("cloverleaf", "sweep"); err != nil {
		b.Fatal(err)
	}
	p.SetParam("sweep", "nodes", "1,2,4")
	p.SetParam("sweep", "iterations", "3")
	p.SetParam("sweep", "problem_size", "16")
	configs := make([]map[string]string, 8)
	for i := range configs {
		configs[i] = map[string]string{"seed": fmt.Sprintf("%d", i+1)}
	}
	return p, configs
}

func runSweepBench(b *testing.B, jobs int, cache *pipeline.Cache) {
	p, configs := sweepBenchProject(b)
	sr, err := p.RunSweep("sweep", &core.Env{Seed: 1}, configs, core.SweepOptions{Jobs: jobs, Cache: cache})
	if err != nil {
		b.Fatal(err)
	}
	if err := sr.Err(); err != nil {
		b.Fatal(err)
	}
	if sr.Results == nil || sr.Results.Len() == 0 {
		b.Fatal("sweep produced no merged results")
	}
}

func BenchmarkSweepSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSweepBench(b, 1, nil)
	}
}

func BenchmarkSweepParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSweepBench(b, 8, nil)
	}
}

func BenchmarkSweepCached(b *testing.B) {
	// Warm the cache once; the measured iterations replay every
	// cacheable stage of every configuration.
	cache := pipeline.NewCache()
	runSweepBench(b, 8, cache)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runSweepBench(b, 8, cache)
	}
	b.StopTimer()
	st := cache.Stats()
	if st.Hits == 0 {
		b.Fatal("cached sweep produced no cache hits")
	}
	b.ReportMetric(float64(st.Hits), "cache-hits")
	b.ReportMetric(float64(st.Misses), "cache-misses")
}
