package pipeline

import (
	"fmt"
	"strings"
	"testing"
)

func TestAddStageValidation(t *testing.T) {
	p := New("exp")
	if err := p.AddStage("compile", func(*Context) error { return nil }); err == nil {
		t.Fatal("unknown stage name must fail")
	}
	if err := p.AddStage("run", nil); err == nil {
		t.Fatal("nil stage must fail")
	}
	if err := p.AddStage("run", func(*Context) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := p.AddStage("run", func(*Context) error { return nil }); err == nil {
		t.Fatal("duplicate stage must fail")
	}
}

func TestStagesInOrder(t *testing.T) {
	p := New("exp")
	var order []string
	for _, s := range []string{"teardown", "run", "setup"} { // registered out of order
		s := s
		p.AddStage(s, func(*Context) error {
			order = append(order, s)
			return nil
		})
	}
	if got := p.Stages(); strings.Join(got, ",") != "setup,run,teardown" {
		t.Fatalf("stages = %v", got)
	}
	rec := p.Run(&Context{})
	if rec.Failed() {
		t.Fatal(rec.Err)
	}
	if strings.Join(order, ",") != "setup,run,teardown" {
		t.Fatalf("execution order = %v", order)
	}
}

func TestFailureSkipsButRunsTeardown(t *testing.T) {
	p := New("exp")
	var ran []string
	add := func(name string, fail bool) {
		p.AddStage(name, func(*Context) error {
			ran = append(ran, name)
			if fail {
				return fmt.Errorf("boom")
			}
			return nil
		})
	}
	add("setup", false)
	add("run", true)
	add("post-run", false)
	add("validate", false)
	add("teardown", false)

	rec := p.Run(&Context{})
	if !rec.Failed() {
		t.Fatal("record should be failed")
	}
	if strings.Join(ran, ",") != "setup,run,teardown" {
		t.Fatalf("ran = %v", ran)
	}
	// stage results reflect skipping
	byName := map[string]StageResult{}
	for _, s := range rec.Stages {
		byName[s.Stage] = s
	}
	if byName["post-run"].Ran || byName["validate"].Ran {
		t.Fatal("post-run/validate must be skipped")
	}
	if !byName["teardown"].Ran {
		t.Fatal("teardown must always run")
	}
	if !strings.Contains(rec.Err.Error(), "stage run") {
		t.Fatalf("err = %v", rec.Err)
	}
}

func TestTeardownFailureAfterSuccess(t *testing.T) {
	p := New("exp")
	p.AddStage("run", func(*Context) error { return nil })
	p.AddStage("teardown", func(*Context) error { return fmt.Errorf("cleanup fail") })
	rec := p.Run(&Context{})
	if !rec.Failed() {
		t.Fatal("teardown failure must fail the record")
	}
}

func TestContextParamsAndLog(t *testing.T) {
	p := New("exp")
	p.AddStage("run", func(c *Context) error {
		c.Logf("running with nodes=%s", c.Param("nodes", "1"))
		c.Workspace["results.csv"] = []byte("nodes,time\n" + c.Param("nodes", "1") + ",42\n")
		c.Metrics.Observe("time", 42)
		return nil
	})
	ctx := &Context{Params: map[string]string{"nodes": "4"}}
	rec := p.Run(ctx)
	if rec.Failed() {
		t.Fatal(rec.Err)
	}
	if !strings.Contains(rec.Log, "nodes=4") {
		t.Fatalf("log:\n%s", rec.Log)
	}
	if !strings.Contains(string(ctx.Workspace["results.csv"]), "4,42") {
		t.Fatalf("workspace = %v", ctx.Workspace)
	}
	if got := ctx.Metrics.Series("time", nil); len(got) != 1 {
		t.Fatalf("metrics = %v", got)
	}
	if rec.Params["nodes"] != "4" {
		t.Fatalf("params snapshot = %v", rec.Params)
	}
}

func TestNilContextFieldsInitialized(t *testing.T) {
	p := New("exp")
	p.AddStage("run", func(c *Context) error {
		if c.Params == nil || c.Workspace == nil || c.Metrics == nil {
			return fmt.Errorf("context not initialized")
		}
		return nil
	})
	if rec := p.Run(&Context{}); rec.Failed() {
		t.Fatal(rec.Err)
	}
}

func TestResultHashDeterministic(t *testing.T) {
	run := func(content string) string {
		p := New("exp")
		p.AddStage("run", func(c *Context) error {
			c.Workspace["out"] = []byte(content)
			return nil
		})
		return p.Run(&Context{}).ResultHash
	}
	if run("same") != run("same") {
		t.Fatal("same outputs must hash identically")
	}
	if run("a") == run("b") {
		t.Fatal("different outputs must differ")
	}
}

func TestJournalIterations(t *testing.T) {
	j := NewJournal()
	p := New("exp")
	p.AddStage("run", func(c *Context) error {
		c.Workspace["out"] = []byte("result-" + c.Param("param", ""))
		return nil
	})
	// Figure 1's loop: initial run, param change, re-run of the original.
	r1 := j.Append(p.Run(&Context{Params: map[string]string{"param": "a"}}), "initial run")
	r2 := j.Append(p.Run(&Context{Params: map[string]string{"param": "b"}}), "changed parameter")
	r3 := j.Append(p.Run(&Context{Params: map[string]string{"param": "a"}}), "re-run original")

	if r1.Iteration != 1 || r2.Iteration != 2 || r3.Iteration != 3 {
		t.Fatalf("iterations = %d %d %d", r1.Iteration, r2.Iteration, r3.Iteration)
	}
	if j.Len() != 3 {
		t.Fatalf("len = %d", j.Len())
	}
	same, err := j.Reproduced(1, 3)
	if err != nil || !same {
		t.Fatalf("1 vs 3: %v, %v", same, err)
	}
	diff, err := j.Reproduced(1, 2)
	if err != nil || diff {
		t.Fatalf("1 vs 2 should differ: %v, %v", diff, err)
	}
	if _, err := j.Reproduced(0, 1); err == nil {
		t.Fatal("bad iteration must fail")
	}
	if _, err := j.Reproduced(1, 9); err == nil {
		t.Fatal("bad iteration must fail")
	}
}

func TestJournalTableAndFormat(t *testing.T) {
	j := NewJournal()
	p := New("exp")
	p.AddStage("run", func(c *Context) error {
		if c.Param("fail", "") == "yes" {
			return fmt.Errorf("injected")
		}
		return nil
	})
	j.Append(p.Run(&Context{Params: map[string]string{"nodes": "2"}}), "first")
	j.Append(p.Run(&Context{Params: map[string]string{"nodes": "4", "fail": "yes"}}), "bad run")

	tb := j.Table()
	if tb.Len() != 2 {
		t.Fatalf("rows = %d", tb.Len())
	}
	for _, col := range []string{"iteration", "reason", "status", "result", "nodes", "fail"} {
		if !tb.HasColumn(col) {
			t.Fatalf("missing column %q: %v", col, tb.Columns())
		}
	}
	if got := tb.MustCell(1, "status").Str; got != "failed" {
		t.Fatalf("status = %q", got)
	}
	text := j.Format()
	if !strings.Contains(text, "FAILED") || !strings.Contains(text, "first") {
		t.Fatalf("format:\n%s", text)
	}
	if len(j.Records()) != 2 {
		t.Fatal("records accessor broken")
	}
}

func TestEmptyPipeline(t *testing.T) {
	p := New("empty")
	rec := p.Run(&Context{})
	if rec.Failed() || len(rec.Stages) != 0 {
		t.Fatalf("empty pipeline = %+v", rec)
	}
}
