package pipeline

// Cache state persistence: the stage cache is an in-memory structure,
// so without help every `popper run` process starts cold and re-executes
// stages the previous invocation already memoized. SaveState serializes
// the replayable entry index plus the tier chunks it references into one
// self-verifying cas extent image (the same on-disk format the artifact
// store packs small objects with), and NewCacheOpts restores it via
// CacheOptions.State — the second process starts warm.
//
// The image is advisory: any damage (torn write, stale format, missing
// chunk) makes restoration fail as a whole and the cache simply starts
// cold, exactly as if the sidecar had never existed. Entries whose
// chunks were evicted from the tier are not saved — they were no longer
// replayable in memory either.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"popper/internal/cas"
)

// cacheStateMagic heads the metadata blob (record 0 of the extent).
const cacheStateMagic = "popper-cache-state v1"

// SaveState serializes every replayable stage entry into a cas extent
// image: record 0 is a metadata manifest describing the entries and
// their chunk references, the remaining records are the referenced
// chunk payloads (deduplicated). Entries are emitted in key order, so
// the image is deterministic for a given cache state. A cache with no
// replayable entries serializes to nil (there is nothing to warm).
func (c *Cache) SaveState() []byte {
	type keyed struct {
		key [sha256.Size]byte
		ent *stageEntry
	}
	var all []keyed
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k, e := range s.entries {
			all = append(all, keyed{key: k, ent: e})
		}
		s.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool {
		return bytes.Compare(all[i].key[:], all[j].key[:]) < 0
	})

	var meta bytes.Buffer
	meta.WriteString(cacheStateMagic + "\n")
	saved := 0
	seen := make(map[[sha256.Size]byte]bool)
	var order [][]byte // chunk payloads in first-reference order
	writeRefs := func(refs []cas.Ref) {
		for _, r := range refs {
			fmt.Fprintf(&meta, "ref %s %d\n", hex.EncodeToString(r.Hash[:]), r.Size)
		}
	}
	for _, kv := range all {
		ent := kv.ent
		refs := make([]cas.Ref, 0, len(ent.logRefs))
		for _, d := range ent.set {
			refs = append(refs, d.refs...)
		}
		refs = append(refs, ent.logRefs...)
		// Stage the entry's chunks; an evicted chunk drops the whole
		// entry (it is not replayable, in memory or on disk).
		fresh := make([][]byte, 0, len(refs))
		freshHash := make(map[[sha256.Size]byte]bool)
		replayable := true
		for _, r := range refs {
			if seen[r.Hash] || freshHash[r.Hash] {
				continue
			}
			data, ok := c.tier.View(r)
			if !ok {
				replayable = false
				break
			}
			freshHash[r.Hash] = true
			fresh = append(fresh, data)
		}
		if !replayable {
			continue
		}
		for _, data := range fresh {
			seen[sha256.Sum256(data)] = true
			order = append(order, data)
		}
		saved++
		fmt.Fprintf(&meta, "entry %s %d %d %d\n",
			hex.EncodeToString(kv.key[:]), len(ent.set), len(ent.del), ent.logLen)
		for _, d := range ent.set {
			fmt.Fprintf(&meta, "set %s %d %d\n", strconv.Quote(d.path), d.size, len(d.refs))
			writeRefs(d.refs)
		}
		for _, p := range ent.del {
			fmt.Fprintf(&meta, "del %s\n", strconv.Quote(p))
		}
		fmt.Fprintf(&meta, "log %d\n", len(ent.logRefs))
		writeRefs(ent.logRefs)
	}
	if saved == 0 {
		return nil
	}
	blobs := make([][]byte, 0, len(order)+1)
	blobs = append(blobs, meta.Bytes())
	blobs = append(blobs, order...)
	return cas.EncodeExtent(blobs)
}

// RestoreState loads a SaveState image into the cache: chunks go into
// the tier (deduplicated against whatever is already resident), entries
// into the index (existing keys win — restoration never clobbers live
// state). Returns how many entries were restored. Any damage — a torn
// extent, a malformed manifest, a reference to a chunk the image does
// not carry — fails the restoration as a whole with no partial effects
// beyond chunks already admitted to the tier (which are harmless:
// content-addressed, evictable, invisible without an entry).
func (c *Cache) RestoreState(state []byte) (int, error) {
	recs, err := cas.ParseExtent(state)
	if err != nil {
		return 0, err
	}
	if len(recs) == 0 {
		return 0, fmt.Errorf("pipeline: cache state has no metadata record")
	}
	payload := func(r cas.ExtentRecord) []byte { return state[r.Offset : r.Offset+r.Size] }
	meta := string(payload(recs[0]))
	if !strings.HasPrefix(meta, cacheStateMagic+"\n") {
		return 0, fmt.Errorf("pipeline: cache state magic mismatch")
	}
	chunks := make(map[[sha256.Size]byte][]byte, len(recs)-1)
	for _, r := range recs[1:] {
		if _, ok := chunks[r.Hash]; !ok {
			chunks[r.Hash] = payload(r)
		}
	}

	lines := strings.Split(meta, "\n")
	i := 1 // past the magic
	next := func() (string, bool) {
		for i < len(lines) {
			l := lines[i]
			i++
			if l != "" {
				return l, true
			}
		}
		return "", false
	}
	parseRefs := func(n int) ([]cas.Ref, error) {
		refs := make([]cas.Ref, 0, n)
		for j := 0; j < n; j++ {
			l, ok := next()
			f := strings.Fields(l)
			if !ok || len(f) != 3 || f[0] != "ref" {
				return nil, fmt.Errorf("pipeline: cache state ref line malformed: %q", l)
			}
			hb, err := hex.DecodeString(f[1])
			if err != nil || len(hb) != sha256.Size {
				return nil, fmt.Errorf("pipeline: cache state ref hash malformed: %q", f[1])
			}
			size, err := strconv.ParseInt(f[2], 10, 64)
			if err != nil || size < 0 {
				return nil, fmt.Errorf("pipeline: cache state ref size malformed: %q", f[2])
			}
			var r cas.Ref
			copy(r.Hash[:], hb)
			r.Size = size
			data, carried := chunks[r.Hash]
			if !carried || int64(len(data)) != size {
				return nil, fmt.Errorf("pipeline: cache state references a chunk it does not carry")
			}
			refs = append(refs, r)
		}
		return refs, nil
	}

	type restored struct {
		key [sha256.Size]byte
		ent *stageEntry
	}
	var out []restored
	for {
		l, ok := next()
		if !ok {
			break
		}
		f := strings.Fields(l)
		if len(f) != 5 || f[0] != "entry" {
			return 0, fmt.Errorf("pipeline: cache state entry line malformed: %q", l)
		}
		kb, err := hex.DecodeString(f[1])
		if err != nil || len(kb) != sha256.Size {
			return 0, fmt.Errorf("pipeline: cache state entry key malformed: %q", f[1])
		}
		nset, err1 := strconv.Atoi(f[2])
		ndel, err2 := strconv.Atoi(f[3])
		logLen, err3 := strconv.ParseInt(f[4], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil || nset < 0 || ndel < 0 || logLen < 0 {
			return 0, fmt.Errorf("pipeline: cache state entry counts malformed: %q", l)
		}
		ent := &stageEntry{logLen: logLen}
		for j := 0; j < nset; j++ {
			l, ok := next()
			sf := strings.Fields(l)
			if !ok || len(sf) != 4 || sf[0] != "set" {
				return 0, fmt.Errorf("pipeline: cache state set line malformed: %q", l)
			}
			path, err := strconv.Unquote(sf[1])
			if err != nil {
				return 0, fmt.Errorf("pipeline: cache state set path malformed: %q", sf[1])
			}
			size, err1 := strconv.ParseInt(sf[2], 10, 64)
			nrefs, err2 := strconv.Atoi(sf[3])
			if err1 != nil || err2 != nil || size < 0 || nrefs < 0 {
				return 0, fmt.Errorf("pipeline: cache state set counts malformed: %q", l)
			}
			refs, err := parseRefs(nrefs)
			if err != nil {
				return 0, err
			}
			ent.set = append(ent.set, pathDelta{path: path, size: size, refs: refs})
		}
		for j := 0; j < ndel; j++ {
			l, ok := next()
			df := strings.Fields(l)
			if !ok || len(df) != 2 || df[0] != "del" {
				return 0, fmt.Errorf("pipeline: cache state del line malformed: %q", l)
			}
			path, err := strconv.Unquote(df[1])
			if err != nil {
				return 0, fmt.Errorf("pipeline: cache state del path malformed: %q", df[1])
			}
			ent.del = append(ent.del, path)
		}
		l, ok = next()
		lf := strings.Fields(l)
		if !ok || len(lf) != 2 || lf[0] != "log" {
			return 0, fmt.Errorf("pipeline: cache state log line malformed: %q", l)
		}
		nlog, err := strconv.Atoi(lf[1])
		if err != nil || nlog < 0 {
			return 0, fmt.Errorf("pipeline: cache state log count malformed: %q", l)
		}
		if ent.logRefs, err = parseRefs(nlog); err != nil {
			return 0, err
		}
		var key [sha256.Size]byte
		copy(key[:], kb)
		out = append(out, restored{key: key, ent: ent})
	}

	// Validation passed as a whole; admit chunks and entries.
	for _, data := range chunks {
		c.tier.Put(data)
	}
	n := 0
	for _, r := range out {
		s := c.shardFor(r.key)
		s.mu.Lock()
		if _, exists := s.entries[r.key]; !exists {
			s.entries[r.key] = r.ent
			n++
		}
		s.mu.Unlock()
	}
	return n, nil
}
