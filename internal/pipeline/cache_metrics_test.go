package pipeline

import (
	"sync/atomic"
	"testing"

	"popper/internal/metrics"
)

// TestCacheRecordMetrics exercises the metrics bridge: after real cache
// traffic, Record must publish live cache_* gauges that agree with
// Stats, so sweep reports and the CI service chart the tier truthfully.
func TestCacheRecordMetrics(t *testing.T) {
	var runs atomic.Int64
	cache := NewCache()
	pl := countingPipeline("v1", &runs)
	pl.Cache = cache
	pl.CacheFilter = func(path string) bool { return path == "in.txt" }
	if rec := pl.Run(ctxWith("1", "a")); rec.Failed() {
		t.Fatalf("cold run: %v", rec.Err)
	}
	if rec := pl.Run(ctxWith("1", "a")); rec.Failed() || rec.CacheHits == 0 {
		t.Fatalf("warm run: failed=%v hits=%d", rec.Failed(), rec.CacheHits)
	}

	reg := metrics.NewRegistry(nil, nil)
	cache.Record(reg)
	st := cache.Stats()
	for name, want := range map[string]float64{
		"cache_hits":           float64(st.Hits),
		"cache_misses":         float64(st.Misses),
		"cache_entries":        float64(st.Entries),
		"cache_bytes_resident": float64(st.BytesResident),
		"cache_bytes_added":    float64(st.BytesAdded),
		"cache_bytes_deduped":  float64(st.BytesDeduped),
		"cache_evictions":      float64(st.Evictions),
		"cache_remote_fetches": float64(st.RemoteFetches),
		"cache_remote_bytes":   float64(st.RemoteBytes),
		"cache_fetch_vseconds": st.FetchSeconds,
	} {
		if got := reg.Gauge(name); got != want {
			t.Errorf("gauge %s = %v, want %v", name, got, want)
		}
	}
	// The traffic above guarantees these are nonzero — a regression to
	// zero placeholders must fail, not silently chart flat lines.
	for _, name := range []string{"cache_hits", "cache_misses", "cache_entries", "cache_bytes_resident", "cache_bytes_added"} {
		if reg.Gauge(name) == 0 {
			t.Errorf("gauge %s is zero after real cache traffic", name)
		}
	}
}
