package pipeline

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"sync"
	"testing"
)

// perfCache builds a cache pre-loaded with n single-chunk entries and
// returns their keys.
func perfCache(n int) (*Cache, [][sha256.Size]byte) {
	cache := NewCache()
	keys := make([][sha256.Size]byte, n)
	for i := 0; i < n; i++ {
		keys[i] = sha256.Sum256([]byte(fmt.Sprintf("stage-key-%d", i)))
		cache.store(keys[i], cacheEntry{
			set: map[string][]byte{"out.bin": bytes.Repeat([]byte{byte(i)}, 2048)},
		}, -1)
	}
	return cache, keys
}

// TestCacheHitPathZeroAlloc pins the stage-cache hit path — lookup
// (with pin) plus delta replay into a warm workspace — at zero heap
// allocations, the same bar as the store's clean-sync fast path and
// the tier's View. It runs under -race via the race matrix.
func TestCacheHitPathZeroAlloc(t *testing.T) {
	cache, keys := perfCache(1)
	ws := map[string][]byte{}
	if ent, ok := cache.lookup(keys[0], -1); !ok {
		t.Fatal("warm lookup missed")
	} else {
		cache.replay(ent, ws) // pre-size the workspace map
	}
	var log string
	allocs := testing.AllocsPerRun(200, func() {
		ent, ok := cache.lookup(keys[0], -1)
		if !ok {
			return
		}
		log = cache.replay(ent, ws)
	})
	if log != "" {
		t.Fatalf("unexpected log: %q", log)
	}
	if allocs != 0 {
		t.Fatalf("cache hit path allocates %.1f/op, want 0", allocs)
	}
	if !bytes.Equal(ws["out.bin"], bytes.Repeat([]byte{0}, 2048)) {
		t.Fatal("replay content wrong")
	}
}

// benchmarkCacheHits drives parallel hit traffic at 16× GOMAXPROCS
// goroutines — the `-jobs ≥ 16` sweep shape. When globalLock is
// non-nil every operation is additionally serialized through it,
// simulating the old single-mutex Cache for comparison.
func benchmarkCacheHits(b *testing.B, globalLock *sync.Mutex) {
	cache, keys := perfCache(256)
	b.SetParallelism(16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ws := map[string][]byte{}
		i := 0
		for pb.Next() {
			key := keys[i&255]
			i++
			if globalLock != nil {
				globalLock.Lock()
			}
			if ent, ok := cache.lookup(key, -1); ok {
				cache.replay(ent, ws)
			}
			if globalLock != nil {
				globalLock.Unlock()
			}
		}
	})
}

// BenchmarkCacheContention quantifies the satellite fix: the sharded
// entry map + striped tier vs the former one-global-mutex design
// (simulated by wrapping every op in a single lock), under 16-way
// parallel hit traffic.
func BenchmarkCacheContention(b *testing.B) {
	b.Run("sharded", func(b *testing.B) { benchmarkCacheHits(b, nil) })
	b.Run("global-lock", func(b *testing.B) { benchmarkCacheHits(b, &sync.Mutex{}) })
}
