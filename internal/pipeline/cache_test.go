package pipeline

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"popper/internal/cas"
)

// countingPipeline builds a pipeline whose run stage writes an output
// derived from the "x" parameter and counts executions.
func countingPipeline(id string, runs *atomic.Int64) *Pipeline {
	pl := New("cachetest")
	pl.AddStage("setup", func(c *Context) error {
		c.Logf("setting up")
		return nil
	})
	pl.AddStage("run", func(c *Context) error {
		runs.Add(1)
		c.Workspace["out.txt"] = []byte("x=" + c.Param("x", "") + " in=" + string(c.Workspace["in.txt"]))
		c.Logf("ran with x=%s", c.Param("x", ""))
		return nil
	})
	if err := pl.CacheStage("setup", "setup@"+id, []string{}); err != nil {
		panic(err)
	}
	if err := pl.CacheStage("run", "run@"+id, nil); err != nil {
		panic(err)
	}
	return pl
}

func ctxWith(x string, in string) *Context {
	return &Context{
		Params:    map[string]string{"x": x},
		Workspace: map[string][]byte{"in.txt": []byte(in)},
	}
}

func TestCacheHitOnIdenticalRerun(t *testing.T) {
	var runs atomic.Int64
	cache := NewCache()
	pl := countingPipeline("v1", &runs)
	pl.Cache = cache
	// CacheFilter keyed on inputs only, so the first run's output does
	// not perturb the second run's key.
	pl.CacheFilter = func(path string) bool { return path == "in.txt" }

	ctx := ctxWith("1", "a")
	rec1 := pl.Run(ctx)
	if rec1.Failed() || runs.Load() != 1 {
		t.Fatalf("first run: failed=%v runs=%d", rec1.Failed(), runs.Load())
	}
	if rec1.CacheHits != 0 {
		t.Fatalf("first run must not hit, got %d", rec1.CacheHits)
	}

	rec2 := pl.Run(ctxWith("1", "a"))
	if rec2.Failed() {
		t.Fatalf("cached run failed: %v", rec2.Err)
	}
	if runs.Load() != 1 {
		t.Fatalf("run stage re-executed on identical inputs (%d executions)", runs.Load())
	}
	if rec2.CacheHits != 2 {
		t.Fatalf("expected 2 cache hits (setup+run), got %d", rec2.CacheHits)
	}
	for _, s := range rec2.Stages {
		if !s.Cached {
			t.Fatalf("stage %s not marked cached: %+v", s.Stage, s)
		}
	}
	// The replay must reproduce the workspace byte-identically.
	if rec1.ResultHash != rec2.ResultHash {
		t.Fatalf("cached replay diverged: %s vs %s", rec1.ResultHash, rec2.ResultHash)
	}
	if !strings.Contains(rec2.Log, "(cached)") || !strings.Contains(rec2.Log, "ran with x=1") {
		t.Fatalf("cached log must splice the original stage output:\n%s", rec2.Log)
	}
	st := cache.Stats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats = %d hits / %d misses, want 2/2", st.Hits, st.Misses)
	}
	if st.Entries != 2 || st.BytesAdded == 0 {
		t.Fatalf("stats must account stored entries and bytes: %+v", st)
	}
}

func TestCacheMissOnParamChange(t *testing.T) {
	var runs atomic.Int64
	pl := countingPipeline("v1", &runs)
	pl.Cache = NewCache()
	pl.CacheFilter = func(path string) bool { return path == "in.txt" }

	pl.Run(ctxWith("1", "a"))
	rec := pl.Run(ctxWith("2", "a"))
	if runs.Load() != 2 {
		t.Fatalf("param change must re-execute the run stage (%d executions)", runs.Load())
	}
	// setup declared no param deps, so it still hits.
	if rec.CacheHits != 1 {
		t.Fatalf("setup should hit despite param change, CacheHits=%d", rec.CacheHits)
	}
}

func TestCacheMissOnWorkspaceChange(t *testing.T) {
	var runs atomic.Int64
	pl := countingPipeline("v1", &runs)
	pl.Cache = NewCache()
	pl.CacheFilter = func(path string) bool { return path == "in.txt" }

	pl.Run(ctxWith("1", "a"))
	ctx := ctxWith("1", "CHANGED")
	rec := pl.Run(ctx)
	if runs.Load() != 2 {
		t.Fatalf("workspace change must re-execute the run stage (%d executions)", runs.Load())
	}
	if got := string(ctx.Workspace["out.txt"]); got != "x=1 in=CHANGED" {
		t.Fatalf("out.txt = %q", got)
	}
	_ = rec
}

func TestCacheMissOnStageIdentityChange(t *testing.T) {
	var runs atomic.Int64
	cache := NewCache()

	pl1 := countingPipeline("v1", &runs)
	pl1.Cache = cache
	pl1.CacheFilter = func(path string) bool { return path == "in.txt" }
	pl1.Run(ctxWith("1", "a"))

	// Same cache, same inputs, new stage code identity: must re-execute.
	pl2 := countingPipeline("v2", &runs)
	pl2.Cache = cache
	pl2.CacheFilter = func(path string) bool { return path == "in.txt" }
	rec := pl2.Run(ctxWith("1", "a"))
	if runs.Load() != 2 {
		t.Fatalf("stage identity change must re-execute (%d executions)", runs.Load())
	}
	if rec.CacheHits != 0 {
		t.Fatalf("no stage should hit across an identity bump, CacheHits=%d", rec.CacheHits)
	}
}

func TestCacheSaltSeparatesEnvironments(t *testing.T) {
	var runs atomic.Int64
	cache := NewCache()
	pl := countingPipeline("v1", &runs)
	pl.Cache = cache
	pl.CacheFilter = func(path string) bool { return path == "in.txt" }

	pl.CacheSalt = "seed=1"
	pl.Run(ctxWith("1", "a"))
	pl.CacheSalt = "seed=2"
	pl.Run(ctxWith("1", "a"))
	if runs.Load() != 2 {
		t.Fatalf("different salts must not share entries (%d executions)", runs.Load())
	}
}

func TestCacheHitsRecordedInJournal(t *testing.T) {
	var runs atomic.Int64
	pl := countingPipeline("v1", &runs)
	pl.Cache = NewCache()
	pl.CacheFilter = func(path string) bool { return path == "in.txt" }

	j := NewJournal()
	j.Append(pl.Run(ctxWith("1", "a")), "initial")
	j.Append(pl.Run(ctxWith("1", "a")), "re-run")
	recs := j.Records()
	if recs[0].CacheHits != 0 || recs[1].CacheHits != 2 {
		t.Fatalf("journal cache hits = %d, %d; want 0, 2", recs[0].CacheHits, recs[1].CacheHits)
	}
	cachedStages := 0
	for _, s := range recs[1].Stages {
		if s.Cached {
			cachedStages++
		}
	}
	if cachedStages != 2 {
		t.Fatalf("journal must record which stages replayed from cache, got %d", cachedStages)
	}
	out := j.Format()
	if !strings.Contains(out, "[2 cached]") {
		t.Fatalf("journal format must surface cache hits:\n%s", out)
	}
	same, err := j.Reproduced(1, 2)
	if err != nil || !same {
		t.Fatalf("cached re-run must reproduce the original workspace: %v %v", same, err)
	}
}

func TestCacheDeletedPathsReplay(t *testing.T) {
	pl := New("del")
	pl.AddStage("run", func(c *Context) error {
		delete(c.Workspace, "tmp.txt")
		c.Workspace["kept.txt"] = []byte("k")
		return nil
	})
	pl.CacheStage("run", "run@v1", nil)
	pl.Cache = NewCache()
	pl.CacheFilter = func(path string) bool { return path == "in.txt" }

	ws1 := map[string][]byte{"in.txt": []byte("a"), "tmp.txt": []byte("scratch")}
	pl.Run(&Context{Workspace: ws1})
	if _, ok := ws1["tmp.txt"]; ok {
		t.Fatal("stage should have deleted tmp.txt")
	}
	ws2 := map[string][]byte{"in.txt": []byte("a"), "tmp.txt": []byte("scratch")}
	rec := pl.Run(&Context{Workspace: ws2})
	if rec.CacheHits != 1 {
		t.Fatalf("expected replay, CacheHits=%d", rec.CacheHits)
	}
	if _, ok := ws2["tmp.txt"]; ok {
		t.Fatal("cached replay must re-apply the deletion")
	}
	if string(ws2["kept.txt"]) != "k" {
		t.Fatal("cached replay must re-apply writes")
	}
}

func TestCacheFailedStageNotStored(t *testing.T) {
	attempts := 0
	pl := New("fail")
	pl.AddStage("run", func(c *Context) error {
		attempts++
		return fmt.Errorf("boom")
	})
	pl.CacheStage("run", "run@v1", nil)
	pl.Cache = NewCache()
	pl.Run(&Context{})
	pl.Run(&Context{})
	if attempts != 2 {
		t.Fatalf("failed stages must never be replayed from cache (%d attempts)", attempts)
	}
	if pl.Cache.Len() != 0 {
		t.Fatalf("failed stage stored in cache (%d entries)", pl.Cache.Len())
	}
}

func TestCacheStageValidation(t *testing.T) {
	pl := New("v")
	if err := pl.CacheStage("run", "id", nil); err == nil {
		t.Fatal("caching an unregistered stage must fail")
	}
	pl.AddStage("run", func(c *Context) error { return nil })
	if err := pl.CacheStage("run", "", nil); err == nil {
		t.Fatal("empty cache identity must fail")
	}
	if err := pl.CacheStage("run", "id", []string{"a"}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentLogf(t *testing.T) {
	ctx := &Context{}
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 100; i++ {
				ctx.Logf("worker %d line %d", g, i)
			}
			done <- struct{}{}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if n := strings.Count(ctx.logString(), "\n"); n != 800 {
		t.Fatalf("expected 800 log lines, got %d", n)
	}
}

// TestEvictedEntryRestoredByTierFallback proves eviction need not cost
// a recompute: a donor tier holding every chunk (standing in for the
// artifact store's object pool) is installed as the cache tier's
// second-chance source, and a stage whose chunks were evicted replays
// from it instead of re-executing.
func TestEvictedEntryRestoredByTierFallback(t *testing.T) {
	donor := NewCache() // unbounded: retains every chunk ever stored
	const budget = int64(1 << 10)

	build := func(cache *Cache, runs *atomic.Int64) *Pipeline {
		pl := countingPipeline("v1", runs)
		pl.Cache = cache
		pl.CacheFilter = func(path string) bool { return path == "in.txt" }
		return pl
	}

	// Warm the donor with the exact same pipeline so its tier holds
	// every chunk the bounded cache will later lose.
	var donorRuns atomic.Int64
	build(donor, &donorRuns).Run(ctxWith("1", "a"))

	for _, tc := range []struct {
		name     string
		fallback bool
		wantRuns int64
	}{
		{"without fallback, eviction recomputes", false, 2},
		{"with fallback, eviction replays", true, 1},
	} {
		var runs atomic.Int64
		cache := NewCacheOpts(CacheOptions{MaxBytes: budget, Shards: 1})
		if tc.fallback {
			cache.Tier().SetFallback(func(h [sha256.Size]byte) ([]byte, bool) {
				return donor.Tier().View(cas.Ref{Hash: h})
			})
		}
		pl := build(cache, &runs)
		if rec := pl.Run(ctxWith("1", "a")); rec.Failed() {
			t.Fatalf("%s: first run failed: %v", tc.name, rec.Err)
		}
		// Evict everything the first run cached.
		for i := 0; int64(i)*128 < 4*budget; i++ {
			cache.Tier().Put(bytes.Repeat([]byte{byte(i + 1)}, 128))
		}
		rec := pl.Run(ctxWith("1", "a"))
		if rec.Failed() {
			t.Fatalf("%s: second run failed: %v", tc.name, rec.Err)
		}
		if got := runs.Load(); got != tc.wantRuns {
			t.Errorf("%s: run stage executed %d times, want %d", tc.name, got, tc.wantRuns)
		}
	}
}
