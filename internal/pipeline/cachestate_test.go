package pipeline

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"
)

// TestCacheStateRoundTrip: a second "process" constructed from the
// first cache's SaveState image replays stages without executing them,
// and produces byte-identical workspaces.
func TestCacheStateRoundTrip(t *testing.T) {
	var runs1 atomic.Int64
	c1 := NewCache()
	pl1 := countingPipeline("v1", &runs1)
	pl1.Cache = c1
	pl1.CacheFilter = func(path string) bool { return path == "in.txt" }
	ctx1 := ctxWith("1", "a")
	rec1 := pl1.Run(ctx1)
	if rec1.Failed() || runs1.Load() != 1 {
		t.Fatalf("seed run: failed=%v runs=%d", rec1.Failed(), runs1.Load())
	}

	state := c1.SaveState()
	if len(state) == 0 {
		t.Fatal("SaveState returned nothing for a populated cache")
	}

	var runs2 atomic.Int64
	c2 := NewCacheOpts(CacheOptions{State: state})
	if c2.WarmEntries() != c1.Len() {
		t.Fatalf("restored %d entries, want %d", c2.WarmEntries(), c1.Len())
	}
	pl2 := countingPipeline("v1", &runs2)
	pl2.Cache = c2
	pl2.CacheFilter = func(path string) bool { return path == "in.txt" }
	ctx2 := ctxWith("1", "a")
	rec2 := pl2.Run(ctx2)
	if rec2.Failed() {
		t.Fatalf("warm run failed: %v", rec2.Err)
	}
	if runs2.Load() != 0 {
		t.Fatalf("warm cache re-executed the run stage (%d executions)", runs2.Load())
	}
	if rec2.CacheHits != 2 {
		t.Fatalf("warm run: %d cache hits, want 2", rec2.CacheHits)
	}
	if rec1.ResultHash != rec2.ResultHash {
		t.Fatalf("warm replay diverged: %s vs %s", rec1.ResultHash, rec2.ResultHash)
	}
	if !bytes.Equal(ctx1.Workspace["out.txt"], ctx2.Workspace["out.txt"]) {
		t.Fatalf("workspace diverged: %q vs %q", ctx1.Workspace["out.txt"], ctx2.Workspace["out.txt"])
	}
	if !strings.Contains(rec2.Log, "ran with x=1") {
		t.Fatalf("warm replay must splice the original log:\n%s", rec2.Log)
	}
}

// TestCacheStateDeterministic: the image is a pure function of the
// cache contents.
func TestCacheStateDeterministic(t *testing.T) {
	build := func() *Cache {
		var runs atomic.Int64
		c := NewCache()
		pl := countingPipeline("v1", &runs)
		pl.Cache = c
		pl.CacheFilter = func(path string) bool { return path == "in.txt" }
		for _, x := range []string{"1", "2", "3"} {
			if rec := pl.Run(ctxWith(x, "a")); rec.Failed() {
				t.Fatalf("x=%s: %v", x, rec.Err)
			}
		}
		return c
	}
	a, b := build().SaveState(), build().SaveState()
	if !bytes.Equal(a, b) {
		t.Fatal("SaveState images differ across identical histories")
	}
	// And re-serializing a restored cache reproduces the image.
	c := NewCacheOpts(CacheOptions{State: a})
	if !bytes.Equal(c.SaveState(), a) {
		t.Fatal("SaveState after RestoreState diverged")
	}
}

// TestCacheStateDamaged: corruption anywhere means a cold start, not an
// error and not a partial cache.
func TestCacheStateDamaged(t *testing.T) {
	var runs atomic.Int64
	c := NewCache()
	pl := countingPipeline("v1", &runs)
	pl.Cache = c
	pl.CacheFilter = func(path string) bool { return path == "in.txt" }
	if rec := pl.Run(ctxWith("1", "a")); rec.Failed() {
		t.Fatal(rec.Err)
	}
	state := c.SaveState()

	for name, mutate := range map[string]func([]byte) []byte{
		"truncated":   func(s []byte) []byte { return s[:len(s)/2] },
		"bit-flip":    func(s []byte) []byte { s = append([]byte(nil), s...); s[len(s)/2] ^= 0x40; return s },
		"not-extent":  func(s []byte) []byte { return []byte("junk") },
		"empty-bytes": func(s []byte) []byte { return nil },
	} {
		warmed := NewCacheOpts(CacheOptions{State: mutate(state)})
		if warmed.WarmEntries() != 0 || warmed.Len() != 0 {
			t.Fatalf("%s: damaged state produced %d entries, want cold start", name, warmed.Len())
		}
	}
}

// TestCacheStateSkipsEvictedEntries: an entry whose chunks the tier
// evicted is not replayable and must not be saved.
func TestCacheStateSkipsEvictedEntries(t *testing.T) {
	var runs atomic.Int64
	// A tiny budget so the second stage's output evicts the first's.
	c := NewCacheOpts(CacheOptions{MaxBytes: 1, Shards: 1})
	pl := countingPipeline("v1", &runs)
	pl.Cache = c
	pl.CacheFilter = func(path string) bool { return path == "in.txt" }
	if rec := pl.Run(ctxWith("1", "a")); rec.Failed() {
		t.Fatal(rec.Err)
	}
	state := c.SaveState()
	warmed := NewCacheOpts(CacheOptions{State: state})
	// Whatever was saved must be fully replayable: every restored
	// entry's chunks are resident.
	if n := warmed.WarmEntries(); n > 0 && warmed.Tier().Len() == 0 {
		t.Fatalf("restored %d entries with no chunks", n)
	}
	if len(state) != 0 {
		if _, err := warmed.RestoreState(state); err != nil {
			t.Fatalf("saved state must restore cleanly: %v", err)
		}
	}
}

// TestCacheStateRestoreKeepsLiveEntries: restoring into a non-empty
// cache never clobbers entries the process already computed.
func TestCacheStateRestoreKeepsLiveEntries(t *testing.T) {
	var runsA, runsB atomic.Int64
	cA := NewCache()
	plA := countingPipeline("v1", &runsA)
	plA.Cache = cA
	plA.CacheFilter = func(path string) bool { return path == "in.txt" }
	if rec := plA.Run(ctxWith("1", "a")); rec.Failed() {
		t.Fatal(rec.Err)
	}
	state := cA.SaveState()

	cB := NewCache()
	plB := countingPipeline("v1", &runsB)
	plB.Cache = cB
	plB.CacheFilter = func(path string) bool { return path == "in.txt" }
	if rec := plB.Run(ctxWith("2", "b")); rec.Failed() {
		t.Fatal(rec.Err)
	}
	before := cB.Len()
	n, err := cB.RestoreState(state)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || cB.Len() != before+n {
		t.Fatalf("restore added %d entries onto %d, total %d", n, before, cB.Len())
	}
	// Both histories now replay warm.
	var runsC atomic.Int64
	plC := countingPipeline("v1", &runsC)
	plC.Cache = cB
	plC.CacheFilter = func(path string) bool { return path == "in.txt" }
	for _, tc := range []struct{ x, in string }{{"1", "a"}, {"2", "b"}} {
		if rec := plC.Run(ctxWith(tc.x, tc.in)); rec.Failed() || rec.CacheHits != 2 {
			t.Fatalf("x=%s: failed=%v hits=%d", tc.x, rec.Failed(), rec.CacheHits)
		}
	}
	if runsC.Load() != 0 {
		t.Fatalf("merged cache re-executed %d stages", runsC.Load())
	}
}
