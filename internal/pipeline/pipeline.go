// Package pipeline implements the experiment execution engine of the
// Popper convention: the staged lifecycle behind every experiment's
// run.sh (setup → run → post-run → validate → teardown) plus the
// provenance journal — the "chronological record on how experiments
// evolve over time (the analogy of the lab notebook in experimental
// sciences)" from the paper's Figure 1.
package pipeline

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"

	"popper/internal/fault"
	"popper/internal/metrics"
	"popper/internal/table"
)

// Canonical stage names, executed in this order.
var StageOrder = []string{"setup", "run", "post-run", "validate", "teardown"}

// Context is passed to every stage.
//
// Concurrency contract for fan-out (parallel sweeps, stages that spawn
// workers): each concurrently running pipeline must own its own Context
// — Contexts are never shared across pipeline runs. Within one run,
// worker goroutines spawned by a stage may share the Context under
// these rules: Logf is safe to call concurrently (the log builder is
// mutex-guarded); Metrics is safe for concurrent use (the registry is
// internally locked); Params must be treated as read-only while workers
// run; Workspace reads/writes require external coordination — stages
// that fan out should have workers deposit results into caller-owned
// slots and let the stage goroutine write the Workspace. Stages must
// replace Workspace entries with fresh slices rather than mutating
// content in place (the stage cache diffs by reference snapshot).
type Context struct {
	// Params are the experiment parameters (vars.yml content).
	Params map[string]string
	// Workspace holds the experiment's files (sources, datasets,
	// results); stages read and write it.
	Workspace map[string][]byte
	// Metrics collects runtime measurements across stages.
	Metrics *metrics.Registry

	logMu sync.Mutex
	log   strings.Builder
}

// Logf appends to the execution log. Safe for concurrent use by worker
// goroutines a stage fans out.
func (c *Context) Logf(format string, args ...any) {
	c.logMu.Lock()
	fmt.Fprintf(&c.log, format+"\n", args...)
	c.logMu.Unlock()
}

// logString returns the accumulated log.
func (c *Context) logString() string {
	c.logMu.Lock()
	defer c.logMu.Unlock()
	return c.log.String()
}

// logLen returns the current log length (a replay watermark).
func (c *Context) logLen() int {
	c.logMu.Lock()
	defer c.logMu.Unlock()
	return c.log.Len()
}

// logSince returns the log text appended after the watermark.
func (c *Context) logSince(mark int) string {
	c.logMu.Lock()
	defer c.logMu.Unlock()
	s := c.log.String()
	if mark < 0 || mark > len(s) {
		return ""
	}
	return s[mark:]
}

// appendLog splices previously captured log text (a cached stage's
// output) into the log.
func (c *Context) appendLog(s string) {
	c.logMu.Lock()
	c.log.WriteString(s)
	c.logMu.Unlock()
}

// Param returns a parameter with a default.
func (c *Context) Param(key, def string) string {
	if v, ok := c.Params[key]; ok {
		return v
	}
	return def
}

// StageFunc is one stage implementation.
type StageFunc func(*Context) error

// Pipeline is a named experiment lifecycle.
type Pipeline struct {
	Name   string
	stages map[string]StageFunc

	// Cache, when set, replays cacheable stages whose key material is
	// unchanged instead of re-executing them (see Cache and CacheStage).
	Cache *Cache
	// CacheSalt is extra key material mixed into every stage key —
	// typically the execution environment (e.g. the simulation seed)
	// that influences stage behavior but lives outside Params.
	CacheSalt string
	// CacheFilter selects which workspace paths participate in stage
	// keys; nil admits every path. Callers use it to exclude generated
	// outputs so a re-run keyed on inputs still hits.
	CacheFilter func(path string) bool
	// CacheHost is the simulated host this pipeline executes on, used
	// by a federated Cache to account peer-to-peer entry transfers on
	// the right virtual clock. Meaningful only when the Cache has a
	// federation attached; negative disables federated accounting for
	// this pipeline.
	CacheHost int

	// Faults, when set, is consulted before every stage attempt at site
	// "pipeline/<scope>/<stage>" (see FaultScope). Injected errors fail
	// the attempt, latency faults advance the Clock, and crashes are
	// terminal (never retried). Callers running under an injector must
	// mix its Fingerprint into CacheSalt so chaos runs never share
	// cache entries with clean runs.
	Faults *fault.Injector
	// FaultScope overrides the pipeline name in fault site names. Sweeps
	// scope it per configuration ("<experiment>/<idx>") so concurrent
	// configurations draw from independent, deterministic fault streams.
	FaultScope string
	// Clock is the virtual clock stage deadlines, injected latency and
	// retry backoff are measured on; lazily created when first needed.
	// Sharing one clock across pipelines is allowed (it is internally
	// locked) but forfeits per-run determinism under concurrency.
	Clock *fault.Clock

	// RecordExtra, when set, is invoked with the run's metrics registry
	// right where the cache records its gauges, so callers can publish
	// companion gauge families (e.g. the scrubber's scrub_*) into the
	// same registry the report reads.
	RecordExtra func(*metrics.Registry)

	retries   map[string]fault.Retry
	timeouts  map[string]float64
	cacheIDs  map[string]string
	cacheDeps map[string][]string
}

// TimeoutError reports a stage that overran its virtual deadline. It is
// retryable: a retry may hit fewer injected latency faults.
type TimeoutError struct {
	Stage             string
	Elapsed, Deadline float64
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("pipeline: stage %s exceeded deadline: %.3fs elapsed > %.3fs allowed",
		e.Stage, e.Elapsed, e.Deadline)
}

// New creates an empty pipeline.
func New(name string) *Pipeline {
	return &Pipeline{
		Name:      name,
		stages:    make(map[string]StageFunc),
		retries:   make(map[string]fault.Retry),
		timeouts:  make(map[string]float64),
		cacheIDs:  make(map[string]string),
		cacheDeps: make(map[string][]string),
	}
}

// RetryStage attaches a declarative retry policy to a registered stage:
// on a retryable failure (anything but an injected crash) the stage is
// re-executed up to policy.Max more times, the workspace restored to
// its pre-attempt state first, with deterministic exponential backoff
// charged to the pipeline's virtual Clock. Every attempt is visible in
// the Record journal (StageResult.Attempts).
func (p *Pipeline) RetryStage(name string, policy fault.Retry) error {
	if _, ok := p.stages[name]; !ok {
		return fmt.Errorf("pipeline: cannot set retry policy on unregistered stage %q", name)
	}
	if policy.Max < 0 {
		return fmt.Errorf("pipeline: stage %q retry max must be >= 0", name)
	}
	p.retries[name] = policy
	return nil
}

// StageDeadline bounds a registered stage's virtual elapsed time: when
// the Clock advances more than `seconds` across an attempt (injected
// latency is what moves it), the attempt fails with *TimeoutError —
// retryable under the stage's retry policy.
func (p *Pipeline) StageDeadline(name string, seconds float64) error {
	if _, ok := p.stages[name]; !ok {
		return fmt.Errorf("pipeline: cannot set deadline on unregistered stage %q", name)
	}
	if seconds <= 0 {
		return fmt.Errorf("pipeline: stage %q deadline must be positive", name)
	}
	p.timeouts[name] = seconds
	return nil
}

// CacheStage marks a registered stage as cacheable. id is the stage's
// code identity — bump it whenever the stage implementation changes, so
// stale outcomes are never replayed. params names the parameters the
// stage's behavior depends on: nil means "all parameters", an empty
// non-nil slice means "none". Stages never marked cacheable (such as
// validation stages that feed side channels) always execute.
func (p *Pipeline) CacheStage(name, id string, params []string) error {
	if _, ok := p.stages[name]; !ok {
		return fmt.Errorf("pipeline: cannot cache unregistered stage %q", name)
	}
	if id == "" {
		return fmt.Errorf("pipeline: stage %q needs a non-empty cache identity", name)
	}
	p.cacheIDs[name] = id
	if params == nil {
		p.cacheDeps[name] = nil
	} else {
		p.cacheDeps[name] = append(make([]string, 0, len(params)), params...)
	}
	return nil
}

// AddStage registers a stage implementation; the name must be one of
// StageOrder.
func (p *Pipeline) AddStage(name string, fn StageFunc) error {
	valid := false
	for _, s := range StageOrder {
		if s == name {
			valid = true
			break
		}
	}
	if !valid {
		return fmt.Errorf("pipeline: unknown stage %q (valid: %s)", name, strings.Join(StageOrder, ", "))
	}
	if fn == nil {
		return fmt.Errorf("pipeline: nil stage function for %q", name)
	}
	if _, dup := p.stages[name]; dup {
		return fmt.Errorf("pipeline: stage %q already defined", name)
	}
	p.stages[name] = fn
	return nil
}

// Stages lists the defined stages in execution order.
func (p *Pipeline) Stages() []string {
	var out []string
	for _, s := range StageOrder {
		if _, ok := p.stages[s]; ok {
			out = append(out, s)
		}
	}
	return out
}

// StageResult records one stage execution.
type StageResult struct {
	Stage string
	Err   error
	Ran   bool
	// Cached reports that the stage was replayed from the content-
	// addressed stage cache instead of executing.
	Cached bool
	// Attempts is how many times the stage executed (1 without a retry
	// policy; 0 for skipped or cached stages). Journaling the attempt
	// count is what keeps chaos replays auditable: a re-run that needed
	// a different number of attempts did not reproduce the schedule.
	Attempts int
}

// Record is the outcome of one pipeline execution.
type Record struct {
	Pipeline  string
	Iteration int
	Reason    string // why this iteration ran (param change, bug fix, ...)
	Params    map[string]string
	Stages    []StageResult
	Err       error
	Log       string
	// ResultHash fingerprints the workspace after execution, so the
	// journal can tell whether a re-execution reproduced prior outputs.
	ResultHash string
	// CacheHits counts the stages replayed from cache this execution —
	// the journal's record of what the re-run did not have to redo.
	CacheHits int
}

// Failed reports whether the execution failed.
func (r Record) Failed() bool { return r.Err != nil }

// Run executes the defined stages in order. If any stage fails, later
// stages are skipped — except teardown, which always runs when defined.
func (p *Pipeline) Run(ctx *Context) Record {
	if ctx.Params == nil {
		ctx.Params = map[string]string{}
	}
	if ctx.Workspace == nil {
		ctx.Workspace = map[string][]byte{}
	}
	if ctx.Metrics == nil {
		ctx.Metrics = metrics.NewRegistry(nil, nil)
	}
	rec := Record{Pipeline: p.Name, Params: copyParams(ctx.Params)}
	failed := false
	for _, name := range StageOrder {
		fn, ok := p.stages[name]
		if !ok {
			continue
		}
		if failed && name != "teardown" {
			rec.Stages = append(rec.Stages, StageResult{Stage: name, Ran: false})
			continue
		}
		id, cacheable := p.cacheIDs[name]
		if p.Cache != nil && cacheable && !failed {
			key := p.cacheKey(name, id, ctx)
			if ent, hit := p.Cache.lookup(key, p.CacheHost); hit {
				ctx.Logf("--- stage %s (cached)", name)
				ctx.appendLog(p.Cache.replay(ent, ctx.Workspace))
				rec.Stages = append(rec.Stages, StageResult{Stage: name, Cached: true})
				rec.CacheHits++
				continue
			}
			before := snapshotRefs(ctx.Workspace)
			ctx.Logf("--- stage %s", name)
			mark := ctx.logLen()
			attempts, err := p.execStage(name, fn, ctx)
			rec.Stages = append(rec.Stages, StageResult{Stage: name, Err: err, Ran: true, Attempts: attempts})
			if err != nil {
				ctx.Logf("stage %s failed: %v", name, err)
				rec.Err = fmt.Errorf("pipeline %s: stage %s: %w", p.Name, name, err)
				failed = true
				continue
			}
			delta := diffWorkspace(before, ctx.Workspace)
			delta.log = ctx.logSince(mark)
			p.Cache.store(key, delta, p.CacheHost)
			continue
		}
		ctx.Logf("--- stage %s", name)
		attempts, err := p.execStage(name, fn, ctx)
		rec.Stages = append(rec.Stages, StageResult{Stage: name, Err: err, Ran: true, Attempts: attempts})
		if err != nil {
			ctx.Logf("stage %s failed: %v", name, err)
			if !failed {
				rec.Err = fmt.Errorf("pipeline %s: stage %s: %w", p.Name, name, err)
			}
			failed = true
		}
	}
	rec.Log = ctx.logString()
	rec.ResultHash = hashWorkspace(ctx.Workspace)
	if p.Cache != nil {
		p.Cache.Record(ctx.Metrics)
	}
	if p.RecordExtra != nil {
		p.RecordExtra(ctx.Metrics)
	}
	return rec
}

// execStage runs one stage through its resilience envelope: fault
// injection, virtual deadline, and the retry policy. Returns the number
// of attempts executed and the final error. When no injector, policy or
// deadline is configured the stage runs exactly as it always has — one
// direct call, zero extra allocation.
func (p *Pipeline) execStage(name string, fn StageFunc, ctx *Context) (int, error) {
	policy, hasRetry := p.retries[name]
	deadline := p.timeouts[name]
	if p.Faults == nil && !hasRetry && deadline == 0 {
		return 1, fn(ctx)
	}
	if p.Clock == nil {
		p.Clock = fault.NewClock()
	}
	scope := p.FaultScope
	if scope == "" {
		scope = p.Name
	}
	site := "pipeline/" + scope + "/" + name
	// Retries re-run the stage from its pre-attempt workspace; snapshot
	// the map shallowly (stages replace entries rather than mutating
	// bytes, per the Context contract) so a half-written attempt never
	// leaks into the next one.
	var snap map[string][]byte
	if policy.Max > 0 {
		snap = make(map[string][]byte, len(ctx.Workspace))
		for k, v := range ctx.Workspace {
			snap[k] = v
		}
	}
	for attempt := 1; ; attempt++ {
		start := p.Clock.Now()
		var err error
		if p.Faults != nil {
			if f := p.Faults.Check(site); f != nil {
				if f.Kind == fault.Latency {
					p.Clock.Advance(f.Delay)
					ctx.Logf("stage %s: injected %.3fs latency (%s#%d)", name, f.Delay, f.Site, f.Occurrence)
				} else {
					err = f
				}
			}
		}
		if err == nil {
			err = fn(ctx)
		}
		if err == nil && deadline > 0 {
			if elapsed := p.Clock.Now() - start; elapsed > deadline {
				err = &TimeoutError{Stage: name, Elapsed: elapsed, Deadline: deadline}
			}
		}
		if err == nil {
			return attempt, nil
		}
		if fault.IsTerminal(err) || attempt > policy.Max {
			return attempt, err
		}
		delay := policy.Delay(p.Faults.Seed(), site, attempt)
		p.Clock.Advance(delay)
		ctx.Logf("stage %s: attempt %d failed (%v); retrying in %.3fs", name, attempt, err, delay)
		if snap != nil {
			restoreWorkspace(ctx.Workspace, snap)
		}
	}
}

// restoreWorkspace resets ws to the snapshot: entries added since are
// dropped, changed or removed entries restored.
func restoreWorkspace(ws, snap map[string][]byte) {
	for k := range ws {
		if _, ok := snap[k]; !ok {
			delete(ws, k)
		}
	}
	for k, v := range snap {
		ws[k] = v
	}
}

func copyParams(p map[string]string) map[string]string {
	out := make(map[string]string, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

func hashWorkspace(ws map[string][]byte) string {
	paths := make([]string, 0, len(ws))
	for p := range ws {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	h := sha256.New()
	for _, p := range paths {
		h.Write([]byte(p))
		h.Write([]byte{0})
		h.Write(ws[p])
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Journal is the lab notebook: the chronological record of executions.
type Journal struct {
	records []Record
}

// NewJournal creates an empty journal.
func NewJournal() *Journal { return &Journal{} }

// Append records an execution with the reason it was run, assigning the
// iteration number.
func (j *Journal) Append(rec Record, reason string) Record {
	rec.Iteration = len(j.records) + 1
	rec.Reason = reason
	j.records = append(j.records, rec)
	return rec
}

// Records returns the history, oldest first.
func (j *Journal) Records() []Record { return append([]Record(nil), j.records...) }

// Len returns the number of journaled executions.
func (j *Journal) Len() int { return len(j.records) }

// Reproduced reports whether the two iterations produced identical
// workspaces (the notebook's "did the re-run match?" question).
func (j *Journal) Reproduced(iterA, iterB int) (bool, error) {
	a, err := j.record(iterA)
	if err != nil {
		return false, err
	}
	b, err := j.record(iterB)
	if err != nil {
		return false, err
	}
	return a.ResultHash == b.ResultHash, nil
}

func (j *Journal) record(iter int) (Record, error) {
	if iter < 1 || iter > len(j.records) {
		return Record{}, fmt.Errorf("pipeline: no journal iteration %d (have %d)", iter, len(j.records))
	}
	return j.records[iter-1], nil
}

// Table exports the journal for analysis: iteration, reason, status,
// result hash and one column per parameter seen.
func (j *Journal) Table() *table.Table {
	keySet := map[string]bool{}
	for _, r := range j.records {
		for k := range r.Params {
			keySet[k] = true
		}
	}
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	cols := append([]string{"iteration", "reason", "status", "result"}, keys...)
	t := table.New(cols...)
	for _, r := range j.records {
		status := "ok"
		if r.Failed() {
			status = "failed"
		}
		row := []table.Value{
			table.Number(float64(r.Iteration)),
			table.String(r.Reason),
			table.String(status),
			table.String(r.ResultHash),
		}
		for _, k := range keys {
			row = append(row, table.String(r.Params[k]))
		}
		t.MustAppend(row...)
	}
	return t
}

// Format renders the journal as the human-readable lab notebook.
func (j *Journal) Format() string {
	var sb strings.Builder
	for _, r := range j.records {
		status := "ok"
		if r.Failed() {
			status = "FAILED"
		}
		cached := ""
		if r.CacheHits > 0 {
			cached = fmt.Sprintf("  [%d cached]", r.CacheHits)
		}
		fmt.Fprintf(&sb, "#%-3d %-7s result=%s  %s%s\n", r.Iteration, status, r.ResultHash, r.Reason, cached)
	}
	return sb.String()
}
