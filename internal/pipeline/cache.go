package pipeline

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"sync"
)

// Cache is a content-addressed store of stage executions — the memoized
// half of the paper's run → fix → re-parameterize → re-run loop. A
// stage's key is the SHA-256 digest of everything that may influence
// its behavior: the stage name, its declared code identity, the
// parameters it depends on, the (filtered) workspace it reads, and the
// pipeline's cache salt. The stored value is the workspace delta the
// stage produced plus its log output, so an unchanged stage is replayed
// byte-identically without re-executing.
//
// A Cache is safe for concurrent use; a parallel sweep shares one cache
// across all of its workers. Entries assume stages are deterministic
// functions of their key material: stages that read state outside the
// filtered workspace (clocks, RNGs not derived from params/salt,
// external stores) must not be marked cacheable.
type Cache struct {
	mu      sync.Mutex
	entries map[string]cacheEntry
	hits    int
	misses  int
}

// cacheEntry is the replayable outcome of one stage execution: the
// workspace paths it wrote (with content) and removed, plus the log
// text it emitted.
type cacheEntry struct {
	set map[string][]byte
	del []string
	log string
}

// NewCache creates an empty stage cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]cacheEntry)}
}

// Stats returns the lookup hit/miss counters.
func (c *Cache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of stored stage outcomes.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// lookup fetches an entry and bumps the hit/miss counters.
func (c *Cache) lookup(key string) (cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ent, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return ent, ok
}

// store records a stage outcome. Content is copied on the way in so
// later in-place mutation by the caller cannot corrupt the cache.
func (c *Cache) store(key string, ent cacheEntry) {
	copied := cacheEntry{set: make(map[string][]byte, len(ent.set)), del: ent.del, log: ent.log}
	for p, b := range ent.set {
		copied.set[p] = append([]byte(nil), b...)
	}
	c.mu.Lock()
	c.entries[key] = copied
	c.mu.Unlock()
}

// apply replays the entry's workspace delta. Content is copied on the
// way out so the live workspace never aliases cache-owned bytes.
func (ent cacheEntry) apply(ws map[string][]byte) {
	for p, b := range ent.set {
		ws[p] = append([]byte(nil), b...)
	}
	for _, p := range ent.del {
		delete(ws, p)
	}
}

// snapshotRefs captures the workspace as a path -> content reference
// map. Stages replace entries rather than mutating content in place
// (that contract is documented on Context.Workspace), so references
// suffice for diffing.
func snapshotRefs(ws map[string][]byte) map[string][]byte {
	out := make(map[string][]byte, len(ws))
	for p, b := range ws {
		out[p] = b
	}
	return out
}

// diffWorkspace computes the delta a stage produced: paths added or
// changed (with their new content) and paths deleted.
func diffWorkspace(before, after map[string][]byte) cacheEntry {
	ent := cacheEntry{set: make(map[string][]byte)}
	for p, b := range after {
		if old, ok := before[p]; !ok || !bytes.Equal(old, b) {
			ent.set[p] = b
		}
	}
	for p := range before {
		if _, ok := after[p]; !ok {
			ent.del = append(ent.del, p)
		}
	}
	sort.Strings(ent.del)
	return ent
}

// cacheKey digests everything that may influence a cacheable stage.
func (p *Pipeline) cacheKey(stage, id string, ctx *Context) string {
	h := sha256.New()
	sep := []byte{0}
	write := func(s string) {
		h.Write([]byte(s))
		h.Write(sep)
	}
	write("popper-stage-cache/v1")
	write(p.CacheSalt)
	write(stage)
	write(id)

	// Parameter material: the stage's declared dependencies, or every
	// parameter when none were declared (nil deps).
	deps := p.cacheDeps[stage]
	var keys []string
	if deps == nil {
		keys = make([]string, 0, len(ctx.Params))
		for k := range ctx.Params {
			keys = append(keys, k)
		}
	} else {
		keys = append(keys, deps...)
	}
	sort.Strings(keys)
	write("params")
	for _, k := range keys {
		v, ok := ctx.Params[k]
		write(k)
		if ok {
			write(v)
		} else {
			write("\x01absent")
		}
	}

	// Workspace material: every path the filter admits, with content.
	write("workspace")
	paths := make([]string, 0, len(ctx.Workspace))
	for path := range ctx.Workspace {
		if p.CacheFilter == nil || p.CacheFilter(path) {
			paths = append(paths, path)
		}
	}
	sort.Strings(paths)
	for _, path := range paths {
		write(path)
		h.Write(ctx.Workspace[path])
		h.Write(sep)
	}
	return hex.EncodeToString(h.Sum(nil))
}
