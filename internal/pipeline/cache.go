package pipeline

import (
	"bytes"
	"crypto/sha256"
	"sort"
	"sync"

	"popper/internal/cas"
	"popper/internal/metrics"
)

// Cache is a content-addressed store of stage executions — the memoized
// half of the paper's run → fix → re-parameterize → re-run loop. A
// stage's key is the SHA-256 digest of everything that may influence
// its behavior: the stage name, its declared code identity, the
// parameters it depends on, the (filtered) workspace it reads, and the
// pipeline's cache salt. The stored value is the workspace delta the
// stage produced plus its log output, so an unchanged stage is replayed
// byte-identically without re-executing.
//
// Entry *content* lives in a shared cas.Tier: every workspace file and
// log is chunked by SHA-256, so identical outputs across
// configurations, sweeps, and tenants are stored once (and evicted
// under one size bound). The Cache itself holds only metadata — path
// names and chunk refs — sharded across striped locks so concurrent
// sweep workers looking up and storing entries never serialize on one
// mutex. Optionally a cas.Federation is attached (Federate): hits then
// also consult the per-host index and charge a peer transfer to the
// simulated host's virtual clock when the entry's bytes live elsewhere.
//
// A Cache is safe for concurrent use; a parallel sweep shares one cache
// across all of its workers. Entries assume stages are deterministic
// functions of their key material: stages that read state outside the
// filtered workspace (clocks, RNGs not derived from params/salt,
// external stores) must not be marked cacheable.
type Cache struct {
	tier *cas.Tier
	fed  *cas.Federation // optional; set before concurrent use

	// fedRetired accumulates the counters of federations detached by
	// later Federate calls (each sweep attaches a fresh fleet), so a
	// cache shared across sweeps reports cumulative peer traffic.
	fedRetired cas.FedStats

	// warm counts entries restored from CacheOptions.State at
	// construction (diagnostics only; set before concurrent use).
	warm int

	shards [cacheShards]cacheShard
}

// cacheShards is the lock-stripe count of the entry map. 64 stripes
// keep -jobs 16..64 sweep workers contention-free (see
// BenchmarkCacheContention).
const cacheShards = 64

type cacheShard struct {
	mu      sync.Mutex
	entries map[[sha256.Size]byte]*stageEntry
	hits    int64
	misses  int64
}

// pathDelta is one workspace path a stage wrote, with its content as
// tier chunk refs.
type pathDelta struct {
	path string
	size int64
	refs []cas.Ref
}

// stageEntry is the replayable outcome of one stage execution: the
// workspace paths it wrote (as chunk refs into the tier), the paths it
// removed, and its log output (chunked too, so overlapping logs dedup).
type stageEntry struct {
	set     []pathDelta // sorted by path
	del     []string    // sorted
	logRefs []cas.Ref
	logLen  int64
}

// cacheEntry is the raw in-memory delta a stage produced, before it is
// chunked into the tier (diffWorkspace's output).
type cacheEntry struct {
	set map[string][]byte
	del []string
	log string
}

// CacheOptions configures the backing tier.
type CacheOptions struct {
	// MaxBytes bounds resident cached bytes (workspace deltas + logs);
	// 0 means unbounded. Entries whose chunks are evicted simply miss
	// and recompute.
	MaxBytes int64
	// Shards is the tier's lock-stripe count; 0 means the default.
	Shards int
	// State is a previously SaveState-serialized entry index. A
	// non-empty value warm-starts the cache: entries and their chunks
	// are restored before the first lookup, so a second process replays
	// stages the first one executed. Damaged state is ignored (cold
	// start) — the sidecar is advisory, never authoritative.
	State []byte
}

// NewCache creates an empty, unbounded stage cache.
func NewCache() *Cache { return NewCacheOpts(CacheOptions{}) }

// NewCacheOpts creates a stage cache over a bounded tier.
func NewCacheOpts(opts CacheOptions) *Cache {
	c := &Cache{tier: cas.NewTier(cas.Options{MaxBytes: opts.MaxBytes, Shards: opts.Shards})}
	for i := range c.shards {
		c.shards[i].entries = make(map[[sha256.Size]byte]*stageEntry)
	}
	if len(opts.State) > 0 {
		c.warm, _ = c.RestoreState(opts.State)
	}
	return c
}

// WarmEntries reports how many entries NewCacheOpts restored from
// CacheOptions.State (0 after a cold start).
func (c *Cache) WarmEntries() int { return c.warm }

// Tier exposes the backing content-addressed tier (shared with the
// artifact store and the federation).
func (c *Cache) Tier() *cas.Tier { return c.tier }

// Federate attaches a peer-to-peer federation: stage hits will consult
// the per-host index and account peer transfers on the simulated
// hosts' virtual clocks, and stores will publish entries to the
// executing host. Attach before the cache is shared across goroutines.
// Re-federating (each sweep brings its own fleet) retires the previous
// federation's counters into the cache so Stats stays cumulative.
func (c *Cache) Federate(f *cas.Federation) {
	if c.fed != nil {
		fs := c.fed.Stats()
		c.fedRetired.Publishes += fs.Publishes
		c.fedRetired.LocalHits += fs.LocalHits
		c.fedRetired.RemoteFetches += fs.RemoteFetches
		c.fedRetired.Misses += fs.Misses
		c.fedRetired.RemoteBytes += fs.RemoteBytes
		c.fedRetired.FetchSeconds += fs.FetchSeconds
	}
	c.fed = f
}

// Federated reports whether a federation is attached.
func (c *Cache) Federated() bool { return c.fed != nil }

// CacheStats aggregates the cache's counters: entry hit/miss, the
// backing tier's dedup and eviction accounting, and the federation's
// peer-fetch counters (zero when not federated).
type CacheStats struct {
	Hits    int64 // stage lookups replayed from cache
	Misses  int64 // stage lookups that had to execute
	Entries int64 // live stage entries

	Objects       int64 // resident tier objects (chunks)
	BytesResident int64
	BytesAdded    int64 // bytes stored (first copy)
	BytesDeduped  int64 // bytes NOT stored because content was resident
	Evictions     int64
	BytesEvicted  int64

	LocalPeerHits int64   // federated hits served by the host's own copy
	RemoteFetches int64   // federated hits transferred from a peer
	RemoteBytes   int64   // bytes moved over the peer fetch path
	FetchSeconds  float64 // virtual seconds spent in peer transfers
}

// Stats returns a point-in-time aggregate.
func (c *Cache) Stats() CacheStats {
	var st CacheStats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Entries += int64(len(s.entries))
		s.mu.Unlock()
	}
	ts := c.tier.Stats()
	st.Objects = ts.Objects
	st.BytesResident = ts.BytesResident
	st.BytesAdded = ts.BytesAdded
	st.BytesDeduped = ts.BytesDeduped
	st.Evictions = ts.Evictions
	st.BytesEvicted = ts.BytesEvicted
	st.LocalPeerHits = c.fedRetired.LocalHits
	st.RemoteFetches = c.fedRetired.RemoteFetches
	st.RemoteBytes = c.fedRetired.RemoteBytes
	st.FetchSeconds = c.fedRetired.FetchSeconds
	if c.fed != nil {
		fs := c.fed.Stats()
		st.LocalPeerHits += fs.LocalHits
		st.RemoteFetches += fs.RemoteFetches
		st.RemoteBytes += fs.RemoteBytes
		st.FetchSeconds += fs.FetchSeconds
	}
	return st
}

// Record publishes the cache counters into a metrics registry as
// cache_* gauges, so sweep reports and the CI service can chart the
// tier alongside the other runtime metrics.
func (c *Cache) Record(reg *metrics.Registry) {
	st := c.Stats()
	reg.Set("cache_hits", float64(st.Hits))
	reg.Set("cache_misses", float64(st.Misses))
	reg.Set("cache_entries", float64(st.Entries))
	reg.Set("cache_bytes_resident", float64(st.BytesResident))
	reg.Set("cache_bytes_added", float64(st.BytesAdded))
	reg.Set("cache_bytes_deduped", float64(st.BytesDeduped))
	reg.Set("cache_evictions", float64(st.Evictions))
	reg.Set("cache_remote_fetches", float64(st.RemoteFetches))
	reg.Set("cache_remote_bytes", float64(st.RemoteBytes))
	reg.Set("cache_fetch_vseconds", st.FetchSeconds)
}

// Len returns the number of stored stage outcomes.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// shardFor stripes the entry map by the leading key bytes (the key is
// a SHA-256 digest, so any byte indexes uniformly).
func (c *Cache) shardFor(key [sha256.Size]byte) *cacheShard {
	return &c.shards[key[0]&(cacheShards-1)]
}

// lookup fetches an entry and bumps the hit/miss counters. On a hit
// every chunk the entry references is pinned against eviction until
// replay releases it — a view handed to replay can therefore never be
// invalidated by a concurrent store pushing the tier over budget. An
// entry whose chunks were already evicted is dropped and counts as a
// miss (the stage recomputes and re-stores it).
//
// host is the simulated host performing the lookup (federated
// accounting); pass a negative host to skip federation entirely.
func (c *Cache) lookup(key [sha256.Size]byte, host int) (*stageEntry, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	ent, ok := s.entries[key]
	if ok && !c.pinEntry(ent) {
		// Chunks evicted: the entry is no longer replayable.
		delete(s.entries, key)
		ok = false
	}
	if ok {
		s.hits++
	} else {
		s.misses++
	}
	s.mu.Unlock()
	if !ok {
		if ent != nil && c.fed != nil {
			c.fed.Forget(key)
		}
		return nil, false
	}
	if c.fed != nil && host >= 0 {
		// Locate the bytes in the federation: free if this host holds
		// them, a virtual-clock-accounted gasnet transfer from the
		// cheapest peer otherwise. Content is unaffected either way
		// (the determinism argument in docs/CACHE.md), so transfer
		// errors — injected partitions included — degrade to a plain
		// local replay rather than failing the stage.
		_, _ = c.fed.Fetch(host, key)
	}
	return ent, true
}

// pinEntry pins every chunk the entry references, rolling back on a
// missing chunk. Caller holds the entry's shard lock.
func (c *Cache) pinEntry(ent *stageEntry) bool {
	pin := func(refs []cas.Ref) int {
		for i, ref := range refs {
			if !c.tier.Pin(ref) {
				return i
			}
		}
		return len(refs)
	}
	unpin := func(refs []cas.Ref, n int) {
		for i := 0; i < n; i++ {
			c.tier.Unpin(refs[i])
		}
	}
	for di, d := range ent.set {
		if n := pin(d.refs); n != len(d.refs) {
			unpin(d.refs, n)
			for j := 0; j < di; j++ {
				unpin(ent.set[j].refs, len(ent.set[j].refs))
			}
			return false
		}
	}
	if n := pin(ent.logRefs); n != len(ent.logRefs) {
		unpin(ent.logRefs, n)
		for _, d := range ent.set {
			unpin(d.refs, len(d.refs))
		}
		return false
	}
	return true
}

// replay applies the entry's workspace delta, returns its log text,
// and releases the pins lookup took. Single-chunk paths are applied
// zero-copy: the workspace aliases tier-owned bytes, which is safe
// because stages replace workspace entries rather than mutating them
// in place (the Context contract) and pinned chunks cannot be evicted
// mid-apply.
func (c *Cache) replay(ent *stageEntry, ws map[string][]byte) string {
	for _, d := range ent.set {
		if len(d.refs) == 1 {
			data, ok := c.tier.View(d.refs[0])
			if !ok {
				panic("pipeline: pinned cache chunk evicted") // pins forbid this
			}
			ws[d.path] = data
			c.tier.Unpin(d.refs[0])
			continue
		}
		buf := make([]byte, 0, d.size)
		for _, ref := range d.refs {
			data, ok := c.tier.View(ref)
			if !ok {
				panic("pipeline: pinned cache chunk evicted")
			}
			buf = append(buf, data...)
			c.tier.Unpin(ref)
		}
		ws[d.path] = buf
	}
	for _, p := range ent.del {
		delete(ws, p)
	}
	var log string
	if ent.logLen == 0 {
		for _, ref := range ent.logRefs {
			c.tier.Unpin(ref)
		}
	} else if len(ent.logRefs) == 1 {
		data, _ := c.tier.View(ent.logRefs[0])
		log = string(data)
		c.tier.Unpin(ent.logRefs[0])
	} else {
		buf := make([]byte, 0, ent.logLen)
		for _, ref := range ent.logRefs {
			data, _ := c.tier.View(ref)
			buf = append(buf, data...)
			c.tier.Unpin(ref)
		}
		log = string(buf)
	}
	return log
}

// store chunks a stage outcome into the tier and records the entry.
// When federated, the entry is published to the executing host so
// peers can fetch it instead of recomputing.
func (c *Cache) store(key [sha256.Size]byte, ent cacheEntry, host int) {
	paths := make([]string, 0, len(ent.set))
	for p := range ent.set {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	se := &stageEntry{del: ent.del, logLen: int64(len(ent.log))}
	var flat []cas.Ref
	for _, p := range paths {
		content := ent.set[p]
		refs := c.tier.PutChunked(content)
		se.set = append(se.set, pathDelta{path: p, size: int64(len(content)), refs: refs})
		flat = append(flat, refs...)
	}
	se.logRefs = c.tier.PutChunked([]byte(ent.log))
	flat = append(flat, se.logRefs...)

	s := c.shardFor(key)
	s.mu.Lock()
	s.entries[key] = se
	s.mu.Unlock()

	if c.fed != nil && host >= 0 {
		// Best-effort: a failed publish (segment full, chunk evicted)
		// just means peers recompute instead of fetching.
		_ = c.fed.Publish(host, key, flat)
	}
}

// snapshotRefs captures the workspace as a path -> content reference
// map. Stages replace entries rather than mutating content in place
// (that contract is documented on Context.Workspace), so references
// suffice for diffing.
func snapshotRefs(ws map[string][]byte) map[string][]byte {
	out := make(map[string][]byte, len(ws))
	for p, b := range ws {
		out[p] = b
	}
	return out
}

// diffWorkspace computes the delta a stage produced: paths added or
// changed (with their new content) and paths deleted.
func diffWorkspace(before, after map[string][]byte) cacheEntry {
	ent := cacheEntry{set: make(map[string][]byte)}
	for p, b := range after {
		if old, ok := before[p]; !ok || !bytes.Equal(old, b) {
			ent.set[p] = b
		}
	}
	for p := range before {
		if _, ok := after[p]; !ok {
			ent.del = append(ent.del, p)
		}
	}
	sort.Strings(ent.del)
	return ent
}

// cacheKey digests everything that may influence a cacheable stage.
func (p *Pipeline) cacheKey(stage, id string, ctx *Context) [sha256.Size]byte {
	h := sha256.New()
	sep := []byte{0}
	write := func(s string) {
		h.Write([]byte(s))
		h.Write(sep)
	}
	write("popper-stage-cache/v1")
	write(p.CacheSalt)
	write(stage)
	write(id)

	// Parameter material: the stage's declared dependencies, or every
	// parameter when none were declared (nil deps).
	deps := p.cacheDeps[stage]
	var keys []string
	if deps == nil {
		keys = make([]string, 0, len(ctx.Params))
		for k := range ctx.Params {
			keys = append(keys, k)
		}
	} else {
		keys = append(keys, deps...)
	}
	sort.Strings(keys)
	write("params")
	for _, k := range keys {
		v, ok := ctx.Params[k]
		write(k)
		if ok {
			write(v)
		} else {
			write("\x01absent")
		}
	}

	// Workspace material: every path the filter admits, with content.
	write("workspace")
	paths := make([]string, 0, len(ctx.Workspace))
	for path := range ctx.Workspace {
		if p.CacheFilter == nil || p.CacheFilter(path) {
			paths = append(paths, path)
		}
	}
	sort.Strings(paths)
	for _, path := range paths {
		write(path)
		h.Write(ctx.Workspace[path])
		h.Write(sep)
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}
