package pipeline

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"popper/internal/fault"
)

// flaky builds a pipeline whose run stage fails the first `failures`
// executions and then succeeds, writing its attempt number into the
// workspace.
func flaky(t *testing.T, failures int) (*Pipeline, *int) {
	t.Helper()
	p := New("chaos")
	calls := new(int)
	if err := p.AddStage("run", func(c *Context) error {
		*calls++
		c.Workspace["out"] = []byte(fmt.Sprintf("attempt %d", *calls))
		c.Workspace["scratch"] = []byte("partial state")
		if *calls <= failures {
			return fmt.Errorf("transient failure %d", *calls)
		}
		delete(c.Workspace, "scratch")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return p, calls
}

func TestRetryStageAbsorbsTransientFailures(t *testing.T) {
	p, calls := flaky(t, 2)
	if err := p.RetryStage("run", fault.Retry{Max: 3, Backoff: 1}); err != nil {
		t.Fatal(err)
	}
	ctx := &Context{}
	rec := p.Run(ctx)
	if rec.Failed() {
		t.Fatalf("retries must absorb two transient failures: %v", rec.Err)
	}
	if *calls != 3 {
		t.Fatalf("calls = %d, want 3", *calls)
	}
	if rec.Stages[0].Attempts != 3 {
		t.Fatalf("journaled attempts = %d, want 3", rec.Stages[0].Attempts)
	}
	// Backoff is charged on the virtual clock: 1s + 2s.
	if got := p.Clock.Now(); got != 3 {
		t.Fatalf("clock = %g, want 3", got)
	}
	if !strings.Contains(rec.Log, "attempt 2 failed") {
		t.Fatalf("retries must be logged:\n%s", rec.Log)
	}
	// The workspace reflects only the successful attempt — failed
	// attempts' partial writes were rolled back.
	if string(ctx.Workspace["out"]) != "attempt 3" {
		t.Fatalf("out = %q", ctx.Workspace["out"])
	}
	if _, leaked := ctx.Workspace["scratch"]; leaked {
		t.Fatal("failed attempt leaked partial state into the workspace")
	}
}

func TestRetryStageExhaustion(t *testing.T) {
	p, calls := flaky(t, 99)
	if err := p.RetryStage("run", fault.Retry{Max: 2}); err != nil {
		t.Fatal(err)
	}
	rec := p.Run(&Context{})
	if !rec.Failed() {
		t.Fatal("exhausted retries must fail")
	}
	if *calls != 3 || rec.Stages[0].Attempts != 3 {
		t.Fatalf("calls = %d, attempts = %d, want 3/3", *calls, rec.Stages[0].Attempts)
	}
}

func TestInjectedErrorFaultRetried(t *testing.T) {
	p, _ := flaky(t, 0)
	p.Faults = fault.NewInjector(1, []fault.Rule{
		{Site: "pipeline/chaos/run", Kind: fault.Error, Times: 2, Msg: "flaky stage"},
	})
	if err := p.RetryStage("run", fault.Retry{Max: 3, Backoff: 0.5, Jitter: 0.2}); err != nil {
		t.Fatal(err)
	}
	rec := p.Run(&Context{})
	if rec.Failed() {
		t.Fatalf("two injected errors under Max=3 must be absorbed: %v", rec.Err)
	}
	if rec.Stages[0].Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (2 injected failures + success)", rec.Stages[0].Attempts)
	}
	if p.Faults.Injected() != 2 {
		t.Fatalf("injected = %d, want 2", p.Faults.Injected())
	}
}

func TestInjectedCrashIsTerminal(t *testing.T) {
	p, calls := flaky(t, 0)
	p.Faults = fault.NewInjector(1, []fault.Rule{
		{Site: "pipeline/chaos/run", Kind: fault.Crash, Msg: "host died"},
	})
	if err := p.RetryStage("run", fault.Retry{Max: 5, Backoff: 1}); err != nil {
		t.Fatal(err)
	}
	rec := p.Run(&Context{})
	if !rec.Failed() {
		t.Fatal("a crash must fail the pipeline")
	}
	if *calls != 0 || rec.Stages[0].Attempts != 1 {
		t.Fatalf("crash must not be retried: calls=%d attempts=%d", *calls, rec.Stages[0].Attempts)
	}
	if !fault.IsCrash(rec.Err) {
		t.Fatalf("crash must surface typed through the record: %v", rec.Err)
	}
}

func TestStageDeadlineFromInjectedLatency(t *testing.T) {
	p, _ := flaky(t, 0)
	// One latency fault pushes the first attempt past its deadline; the
	// retry runs fault-free and meets it.
	p.Faults = fault.NewInjector(1, []fault.Rule{
		{Site: "pipeline/chaos/run", Kind: fault.Latency, Delay: 10, Times: 1},
	})
	if err := p.StageDeadline("run", 2); err != nil {
		t.Fatal(err)
	}
	if err := p.RetryStage("run", fault.Retry{Max: 1}); err != nil {
		t.Fatal(err)
	}
	rec := p.Run(&Context{})
	if rec.Failed() {
		t.Fatalf("retry after a deadline overrun must succeed: %v", rec.Err)
	}
	if rec.Stages[0].Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", rec.Stages[0].Attempts)
	}

	// Without a retry policy the overrun is fatal and typed.
	p2, _ := flaky(t, 0)
	p2.Faults = fault.NewInjector(1, []fault.Rule{
		{Site: "pipeline/chaos/run", Kind: fault.Latency, Delay: 10},
	})
	if err := p2.StageDeadline("run", 2); err != nil {
		t.Fatal(err)
	}
	rec2 := p2.Run(&Context{})
	var te *TimeoutError
	if !rec2.Failed() || !errors.As(rec2.Err, &te) {
		t.Fatalf("deadline overrun must surface as *TimeoutError: %v", rec2.Err)
	}
	if te.Stage != "run" || te.Deadline != 2 || te.Elapsed != 10 {
		t.Fatalf("timeout = %+v", te)
	}
}

func TestFaultScopeSeparatesStreams(t *testing.T) {
	rules := []fault.Rule{{Site: "pipeline/exp/001/run", Kind: fault.Error}}
	run := func(scope string) Record {
		p, _ := flaky(t, 0)
		p.FaultScope = scope
		p.Faults = fault.NewInjector(1, rules)
		return p.Run(&Context{})
	}
	if rec := run("exp/001"); !rec.Failed() {
		t.Fatal("scoped rule must hit its configuration")
	}
	if rec := run("exp/002"); rec.Failed() {
		t.Fatalf("other configurations must be untouched: %v", rec.Err)
	}
}

func TestRetryWithCacheStoresFinalOutcome(t *testing.T) {
	cache := NewCache()
	build := func(inj *fault.Injector) (*Pipeline, *int) {
		p, calls := flaky(t, 0)
		p.Cache = cache
		p.Faults = inj
		if inj != nil {
			p.CacheSalt = "faults=" + inj.Fingerprint()
		}
		if err := p.CacheStage("run", "test/run@v1", nil); err != nil {
			t.Fatal(err)
		}
		if err := p.RetryStage("run", fault.Retry{Max: 2, Backoff: 1}); err != nil {
			t.Fatal(err)
		}
		return p, calls
	}
	rules := []fault.Rule{{Site: "pipeline/chaos/run", Kind: fault.Error, Times: 1}}
	p1, _ := build(fault.NewInjector(9, rules))
	rec1 := p1.Run(&Context{})
	if rec1.Failed() || rec1.Stages[0].Attempts != 2 {
		t.Fatalf("first run: %v (attempts %d)", rec1.Err, rec1.Stages[0].Attempts)
	}
	// Same spec, fresh injector: the stage replays from cache (the
	// schedule is part of the salt), reproducing the retried outcome.
	p2, calls2 := build(fault.NewInjector(9, rules))
	ctx2 := &Context{}
	rec2 := p2.Run(ctx2)
	if rec2.Failed() || !rec2.Stages[0].Cached {
		t.Fatalf("identical chaos universe must replay from cache: %+v", rec2.Stages[0])
	}
	if *calls2 != 0 {
		t.Fatal("cached replay must not execute the stage")
	}
	if rec1.ResultHash != rec2.ResultHash {
		t.Fatal("cached replay must reproduce the retried workspace")
	}
	// A different fault schedule is a different cache universe.
	p3, calls3 := build(fault.NewInjector(10, rules))
	if rec3 := p3.Run(&Context{}); rec3.Failed() || *calls3 == 0 {
		t.Fatalf("different seed must miss the cache (calls=%d, err=%v)", *calls3, rec3.Err)
	}
}

func TestRetryStageValidation(t *testing.T) {
	p := New("x")
	if err := p.RetryStage("run", fault.Retry{Max: 1}); err == nil {
		t.Fatal("retry on unregistered stage must fail")
	}
	if err := p.StageDeadline("run", 1); err == nil {
		t.Fatal("deadline on unregistered stage must fail")
	}
	if err := p.AddStage("run", func(*Context) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := p.RetryStage("run", fault.Retry{Max: -1}); err == nil {
		t.Fatal("negative retry max must fail")
	}
	if err := p.StageDeadline("run", 0); err == nil {
		t.Fatal("non-positive deadline must fail")
	}
}
