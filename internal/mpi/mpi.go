// Package mpi implements the message-passing substrate of the paper's
// HPC use case: an MPI-like communicator over simulated cluster nodes,
// with point-to-point messaging, tree-based collectives, and an
// mpiP-style communication profiler.
//
// The noisy-neighbour experiment (Section "MPI Noisy Neighborhood
// Characterization") runs a LULESH-like proxy application over this
// communicator many times and studies run-to-run variability of the
// captured MPI metrics. Collectives synchronize ranks, so a single
// straggler (a rank on a loaded node) inflates everyone's MPI wait time
// — the mechanism behind the variability the original study measured
// with mpiP.
package mpi

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"popper/internal/cluster"
	"popper/internal/table"
)

// Comm is an MPI communicator: one rank per cluster node.
type Comm struct {
	nodes []*cluster.Node
	net   *cluster.Network
	// queues[src][dst] holds in-flight message arrival times (FIFO).
	queues map[int]map[int][]pendingMsg
	prof   *Profiler
}

type pendingMsg struct {
	arrival float64
	bytes   int64
}

// NewComm builds a communicator with one rank per node.
func NewComm(nodes []*cluster.Node, net *cluster.Network) (*Comm, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("mpi: communicator needs at least one rank")
	}
	if net == nil {
		return nil, fmt.Errorf("mpi: nil network")
	}
	return &Comm{
		nodes:  nodes,
		net:    net,
		queues: make(map[int]map[int][]pendingMsg),
		prof:   NewProfiler(len(nodes)),
	}, nil
}

// Size returns the number of ranks.
func (c *Comm) Size() int { return len(c.nodes) }

// Node returns the node behind a rank.
func (c *Comm) Node(rank int) (*cluster.Node, error) {
	if rank < 0 || rank >= len(c.nodes) {
		return nil, fmt.Errorf("mpi: rank %d out of range [0,%d)", rank, len(c.nodes))
	}
	return c.nodes[rank], nil
}

// Profiler returns the attached mpiP-style profiler.
func (c *Comm) Profiler() *Profiler { return c.prof }

// sendOverhead is the per-message software overhead (seconds of CPU).
const sendOverheadOps = 2e4

// Send posts a message; the sender pays software overhead plus the wire
// time, and the message is queued with its arrival timestamp.
func (c *Comm) Send(src, dst int, bytes int64) error {
	if err := c.checkRank(src); err != nil {
		return err
	}
	if err := c.checkRank(dst); err != nil {
		return err
	}
	if src == dst {
		return fmt.Errorf("mpi: rank %d sending to itself", src)
	}
	if bytes < 0 {
		return fmt.Errorf("mpi: negative message size")
	}
	start := c.nodes[src].Now()
	c.nodes[src].Run(cluster.Work{CPUOps: sendOverheadOps})
	wire := c.net.TransferTime(c.nodes[src], c.nodes[dst], bytes)
	c.nodes[src].Advance(wire)
	arrival := c.nodes[src].Now()
	if c.queues[src] == nil {
		c.queues[src] = make(map[int][]pendingMsg)
	}
	c.queues[src][dst] = append(c.queues[src][dst], pendingMsg{arrival: arrival, bytes: bytes})
	c.prof.record(src, "Send", c.nodes[src].Now()-start, bytes)
	return nil
}

// Recv consumes the oldest message from src; the receiver blocks until
// the message has arrived.
func (c *Comm) Recv(dst, src int) (int64, error) {
	if err := c.checkRank(src); err != nil {
		return 0, err
	}
	if err := c.checkRank(dst); err != nil {
		return 0, err
	}
	q := c.queues[src][dst]
	if len(q) == 0 {
		return 0, fmt.Errorf("mpi: rank %d has no message from %d (deadlock)", dst, src)
	}
	msg := q[0]
	c.queues[src][dst] = q[1:]
	start := c.nodes[dst].Now()
	c.nodes[dst].AdvanceTo(msg.arrival)
	c.nodes[dst].Run(cluster.Work{CPUOps: sendOverheadOps})
	c.prof.record(dst, "Recv", c.nodes[dst].Now()-start, msg.bytes)
	return msg.bytes, nil
}

// Request is an outstanding nonblocking operation.
type Request struct {
	rank    int     // the rank that must Wait
	arrival float64 // when the data is available (receive side)
	bytes   int64
	recv    bool
	done    bool
}

// Isend posts a message without blocking for the wire: the sender pays
// only the software overhead, and the transfer proceeds "in the
// background" (its completion time is the arrival timestamp the matching
// receive observes). Wait on the returned request is free for the
// sender — the classic communication/computation overlap.
func (c *Comm) Isend(src, dst int, bytes int64) (*Request, error) {
	if err := c.checkRank(src); err != nil {
		return nil, err
	}
	if err := c.checkRank(dst); err != nil {
		return nil, err
	}
	if src == dst {
		return nil, fmt.Errorf("mpi: rank %d sending to itself", src)
	}
	if bytes < 0 {
		return nil, fmt.Errorf("mpi: negative message size")
	}
	start := c.nodes[src].Now()
	c.nodes[src].Run(cluster.Work{CPUOps: sendOverheadOps})
	wire := c.net.TransferTime(c.nodes[src], c.nodes[dst], bytes)
	arrival := c.nodes[src].Now() + wire
	if c.queues[src] == nil {
		c.queues[src] = make(map[int][]pendingMsg)
	}
	c.queues[src][dst] = append(c.queues[src][dst], pendingMsg{arrival: arrival, bytes: bytes})
	c.prof.record(src, "Isend", c.nodes[src].Now()-start, bytes)
	return &Request{rank: src}, nil
}

// Irecv posts a receive for the oldest in-flight message from src
// without blocking; Wait blocks until the data has arrived. The model
// requires the matching Isend/Send to have been posted first (receives
// cannot be pre-posted) — a deliberate simplification of MPI's matching
// rules that all the bundled communication patterns satisfy.
func (c *Comm) Irecv(dst, src int) (*Request, error) {
	if err := c.checkRank(src); err != nil {
		return nil, err
	}
	if err := c.checkRank(dst); err != nil {
		return nil, err
	}
	q := c.queues[src][dst]
	if len(q) == 0 {
		return nil, fmt.Errorf("mpi: rank %d has no posted message from %d", dst, src)
	}
	msg := q[0]
	c.queues[src][dst] = q[1:]
	c.nodes[dst].Run(cluster.Work{CPUOps: sendOverheadOps})
	return &Request{rank: dst, arrival: msg.arrival, bytes: msg.bytes, recv: true}, nil
}

// Wait completes a nonblocking operation: a receive blocks until the
// message's arrival time; a send is already complete. The blocked time
// is recorded as "Wait" in the profile.
func (c *Comm) Wait(r *Request) error {
	if r == nil || r.done {
		return fmt.Errorf("mpi: wait on nil or completed request")
	}
	r.done = true
	if !r.recv {
		return nil
	}
	start := c.nodes[r.rank].Now()
	c.nodes[r.rank].AdvanceTo(r.arrival)
	c.prof.record(r.rank, "Wait", c.nodes[r.rank].Now()-start, r.bytes)
	return nil
}

// Waitall completes a batch of requests.
func (c *Comm) Waitall(reqs []*Request) error {
	for _, r := range reqs {
		if err := c.Wait(r); err != nil {
			return err
		}
	}
	return nil
}

// Sendrecv exchanges messages between two ranks (halo-exchange pattern).
func (c *Comm) Sendrecv(a, b int, bytes int64) error {
	if err := c.Send(a, b, bytes); err != nil {
		return err
	}
	if err := c.Send(b, a, bytes); err != nil {
		return err
	}
	if _, err := c.Recv(b, a); err != nil {
		return err
	}
	_, err := c.Recv(a, b)
	return err
}

// collective advances every rank to the end of a tree collective that
// moves `bytes` per round over `rounds` rounds.
func (c *Comm) collective(name string, bytes int64, rounds float64) {
	start := 0.0
	maxLat := 0.0
	minBW := math.Inf(1)
	for _, n := range c.nodes {
		if t := n.Now(); t > start {
			start = t
		}
		if l := n.Profile().NICLatS; l > maxLat {
			maxLat = l
		}
		if b := n.Profile().NICBWBps; b < minBW {
			minBW = b
		}
	}
	perRound := 2*maxLat + float64(bytes)/minBW
	end := start + rounds*perRound
	for r, n := range c.nodes {
		before := n.Now()
		n.AdvanceTo(end)
		c.prof.record(r, name, end-before, bytes)
	}
}

func (c *Comm) rounds() float64 {
	r := math.Ceil(math.Log2(float64(len(c.nodes))))
	if r < 1 {
		r = 1
	}
	return r
}

// Barrier synchronizes all ranks.
func (c *Comm) Barrier() { c.collective("Barrier", 0, c.rounds()) }

// Bcast broadcasts bytes from a root over a binomial tree.
func (c *Comm) Bcast(root int, bytes int64) error {
	if err := c.checkRank(root); err != nil {
		return err
	}
	c.collective("Bcast", bytes, c.rounds())
	return nil
}

// Reduce combines bytes to a root over a binomial tree.
func (c *Comm) Reduce(root int, bytes int64) error {
	if err := c.checkRank(root); err != nil {
		return err
	}
	c.collective("Reduce", bytes, c.rounds())
	return nil
}

// Allreduce combines and redistributes (reduce + broadcast).
func (c *Comm) Allreduce(bytes int64) {
	c.collective("Allreduce", bytes, 2*c.rounds())
}

// Allgather gathers bytes from every rank to every rank.
func (c *Comm) Allgather(bytes int64) {
	c.collective("Allgather", bytes*int64(len(c.nodes)), c.rounds())
}

// Compute runs application (non-MPI) work on a rank.
func (c *Comm) Compute(rank int, w cluster.Work) error {
	if err := c.checkRank(rank); err != nil {
		return err
	}
	c.nodes[rank].Run(w)
	return nil
}

// MaxClock returns the application makespan.
func (c *Comm) MaxClock() float64 { return cluster.MaxClock(c.nodes) }

func (c *Comm) checkRank(r int) error {
	if r < 0 || r >= len(c.nodes) {
		return fmt.Errorf("mpi: rank %d out of range [0,%d)", r, len(c.nodes))
	}
	return nil
}

// Profiler captures per-rank, per-call MPI statistics like mpiP.
type Profiler struct {
	ranks int
	// byRankCall[rank][call] accumulates time and counts.
	byRankCall []map[string]*callStats
}

type callStats struct {
	Count int
	Time  float64
	Bytes int64
}

// NewProfiler creates a profiler for n ranks.
func NewProfiler(n int) *Profiler {
	p := &Profiler{ranks: n, byRankCall: make([]map[string]*callStats, n)}
	for i := range p.byRankCall {
		p.byRankCall[i] = make(map[string]*callStats)
	}
	return p
}

func (p *Profiler) record(rank int, call string, elapsed float64, bytes int64) {
	cs, ok := p.byRankCall[rank][call]
	if !ok {
		cs = &callStats{}
		p.byRankCall[rank][call] = cs
	}
	cs.Count++
	cs.Time += elapsed
	cs.Bytes += bytes
}

// Reset clears all recorded statistics.
func (p *Profiler) Reset() {
	for i := range p.byRankCall {
		p.byRankCall[i] = make(map[string]*callStats)
	}
}

// MPITime returns the total time a rank spent inside MPI calls.
func (p *Profiler) MPITime(rank int) float64 {
	total := 0.0
	for _, cs := range p.byRankCall[rank] {
		total += cs.Time
	}
	return total
}

// TotalMPITime sums MPI time across ranks.
func (p *Profiler) TotalMPITime() float64 {
	total := 0.0
	for r := 0; r < p.ranks; r++ {
		total += p.MPITime(r)
	}
	return total
}

// Table exports per-rank per-call statistics (the mpiP report body).
func (p *Profiler) Table() *table.Table {
	t := table.New("rank", "call", "count", "time", "bytes")
	for r := 0; r < p.ranks; r++ {
		calls := make([]string, 0, len(p.byRankCall[r]))
		for call := range p.byRankCall[r] {
			calls = append(calls, call)
		}
		sort.Strings(calls)
		for _, call := range calls {
			cs := p.byRankCall[r][call]
			t.MustAppend(
				table.Number(float64(r)),
				table.String(call),
				table.Number(float64(cs.Count)),
				table.Number(cs.Time),
				table.Number(float64(cs.Bytes)),
			)
		}
	}
	return t
}

// Report renders an mpiP-style text summary: aggregate time per call
// type, plus the rank-level min/mean/max MPI time.
func (p *Profiler) Report(appTime float64) string {
	var sb strings.Builder
	sb.WriteString("@--- MPI Time (seconds) ---------------------------------\n")
	times := make([]float64, p.ranks)
	for r := range times {
		times[r] = p.MPITime(r)
	}
	lo, hi := times[0], times[0]
	for _, t := range times {
		lo, hi = math.Min(lo, t), math.Max(hi, t)
	}
	fmt.Fprintf(&sb, "ranks=%d app=%.4g mpi(min=%.4g mean=%.4g max=%.4g)\n",
		p.ranks, appTime, lo, table.Mean(times), hi)
	if appTime > 0 {
		fmt.Fprintf(&sb, "mpi fraction of app time: %.1f%%\n", table.Mean(times)/appTime*100)
	}
	sb.WriteString("@--- Aggregate Time (top, by call) ----------------------\n")
	agg := make(map[string]*callStats)
	for r := 0; r < p.ranks; r++ {
		for call, cs := range p.byRankCall[r] {
			a, ok := agg[call]
			if !ok {
				a = &callStats{}
				agg[call] = a
			}
			a.Count += cs.Count
			a.Time += cs.Time
			a.Bytes += cs.Bytes
		}
	}
	calls := make([]string, 0, len(agg))
	for call := range agg {
		calls = append(calls, call)
	}
	sort.Slice(calls, func(i, j int) bool { return agg[calls[i]].Time > agg[calls[j]].Time })
	for _, call := range calls {
		a := agg[call]
		fmt.Fprintf(&sb, "%-10s calls=%-8d time=%-12.4g bytes=%d\n", call, a.Count, a.Time, a.Bytes)
	}
	return sb.String()
}
