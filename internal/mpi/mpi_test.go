package mpi

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"popper/internal/cluster"
	"popper/internal/table"
)

func comm(t *testing.T, n int, seed int64) (*Comm, []*cluster.Node) {
	t.Helper()
	c := cluster.New(seed)
	nodes, err := c.Provision("probe-opteron", n)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := NewComm(nodes, cluster.NewNetwork(0))
	if err != nil {
		t.Fatal(err)
	}
	return cm, nodes
}

func TestNewCommValidation(t *testing.T) {
	if _, err := NewComm(nil, cluster.NewNetwork(0)); err == nil {
		t.Fatal("empty comm must fail")
	}
	c := cluster.New(1)
	nodes, _ := c.Provision("xeon-2005", 1)
	if _, err := NewComm(nodes, nil); err == nil {
		t.Fatal("nil network must fail")
	}
}

func TestSendRecv(t *testing.T) {
	cm, nodes := comm(t, 2, 1)
	if err := cm.Send(0, 1, 1<<20); err != nil {
		t.Fatal(err)
	}
	if nodes[0].Now() <= 0 {
		t.Fatal("sender must pay send cost")
	}
	got, err := cm.Recv(1, 0)
	if err != nil || got != 1<<20 {
		t.Fatalf("recv = %d, %v", got, err)
	}
	if nodes[1].Now() < nodes[0].Now() {
		t.Fatalf("receiver clock %v must reach arrival %v", nodes[1].Now(), nodes[0].Now())
	}
}

func TestRecvWithoutSendDeadlocks(t *testing.T) {
	cm, _ := comm(t, 2, 2)
	if _, err := cm.Recv(1, 0); err == nil {
		t.Fatal("recv without send must report deadlock")
	}
}

func TestSendValidation(t *testing.T) {
	cm, _ := comm(t, 2, 3)
	if err := cm.Send(0, 0, 10); err == nil {
		t.Fatal("self-send must fail")
	}
	if err := cm.Send(0, 9, 10); err == nil {
		t.Fatal("bad dst must fail")
	}
	if err := cm.Send(9, 0, 10); err == nil {
		t.Fatal("bad src must fail")
	}
	if err := cm.Send(0, 1, -1); err == nil {
		t.Fatal("negative size must fail")
	}
	if _, err := cm.Recv(0, 9); err == nil {
		t.Fatal("bad recv src must fail")
	}
	if err := cm.Compute(9, cluster.Work{}); err == nil {
		t.Fatal("bad compute rank must fail")
	}
	if _, err := cm.Node(9); err == nil {
		t.Fatal("bad node rank must fail")
	}
}

func TestMessageOrderFIFO(t *testing.T) {
	cm, _ := comm(t, 2, 4)
	cm.Send(0, 1, 100)
	cm.Send(0, 1, 200)
	a, _ := cm.Recv(1, 0)
	b, _ := cm.Recv(1, 0)
	if a != 100 || b != 200 {
		t.Fatalf("order = %d, %d", a, b)
	}
}

func TestSendrecvExchange(t *testing.T) {
	cm, nodes := comm(t, 2, 5)
	if err := cm.Sendrecv(0, 1, 4096); err != nil {
		t.Fatal(err)
	}
	if nodes[0].Now() <= 0 || nodes[1].Now() <= 0 {
		t.Fatal("both ranks must advance")
	}
}

func TestBarrierSynchronizesRanks(t *testing.T) {
	cm, nodes := comm(t, 8, 6)
	nodes[3].Advance(5)
	cm.Barrier()
	end := nodes[0].Now()
	for _, n := range nodes {
		if n.Now() != end {
			t.Fatalf("ranks not synchronized: %v vs %v", n.Now(), end)
		}
	}
	if end < 5 {
		t.Fatalf("barrier end %v must cover straggler", end)
	}
}

func TestCollectives(t *testing.T) {
	cm, nodes := comm(t, 4, 7)
	if err := cm.Bcast(0, 1<<16); err != nil {
		t.Fatal(err)
	}
	if err := cm.Reduce(0, 1<<16); err != nil {
		t.Fatal(err)
	}
	cm.Allreduce(8)
	cm.Allgather(1024)
	if err := cm.Bcast(99, 1); err == nil {
		t.Fatal("bad root must fail")
	}
	if err := cm.Reduce(-1, 1); err == nil {
		t.Fatal("bad root must fail")
	}
	end := nodes[0].Now()
	for _, n := range nodes {
		if n.Now() != end {
			t.Fatal("collectives must leave ranks synchronized")
		}
	}
	// allreduce costs more than bcast of same size (two tree phases)
	cmA, nodesA := comm(t, 8, 8)
	cmA.Bcast(0, 1<<20)
	bcastEnd := nodesA[0].Now()
	cmB, nodesB := comm(t, 8, 8)
	cmB.Allreduce(1 << 20)
	allreduceEnd := nodesB[0].Now()
	if allreduceEnd <= bcastEnd {
		t.Fatalf("allreduce %v should cost more than bcast %v", allreduceEnd, bcastEnd)
	}
}

func TestStragglerDominatesCollective(t *testing.T) {
	cm, nodes := comm(t, 4, 9)
	nodes[2].SetBackgroundLoad(0.8) // noisy neighbour on rank 2
	for r := 0; r < 4; r++ {
		cm.Compute(r, cluster.Work{CPUOps: 1e9})
	}
	cm.Barrier()
	// Every rank's finish time is pinned to the straggler.
	slowest := nodes[2].Now()
	for r, n := range nodes {
		if n.Now() < slowest-1e-9 {
			t.Fatalf("rank %d at %v, straggler at %v", r, n.Now(), slowest)
		}
	}
	// mpiP should show the idle ranks waiting in Barrier.
	p := cm.Profiler()
	if p.MPITime(0) <= p.MPITime(2) {
		t.Fatalf("idle rank 0 (%.4g) should wait longer than straggler 2 (%.4g)",
			p.MPITime(0), p.MPITime(2))
	}
}

func TestProfilerAccounting(t *testing.T) {
	cm, _ := comm(t, 2, 10)
	cm.Send(0, 1, 512)
	cm.Recv(1, 0)
	cm.Barrier()
	p := cm.Profiler()

	tb := p.Table()
	if tb.Len() != 4 { // Send@0, Barrier@0, Recv@1, Barrier@1
		t.Fatalf("profile rows = %d\n%s", tb.Len(), tb.Format())
	}
	sub, _ := tb.Where("call", table.String("Send"))
	if sub.Len() != 1 || sub.MustCell(0, "bytes").Num != 512 {
		t.Fatalf("send row:\n%s", sub.Format())
	}
	if p.TotalMPITime() <= 0 {
		t.Fatal("total MPI time must be positive")
	}
	report := p.Report(cm.MaxClock())
	for _, want := range []string{"MPI Time", "Aggregate Time", "Barrier", "Send"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
	p.Reset()
	if p.TotalMPITime() != 0 {
		t.Fatal("reset must clear stats")
	}
}

func TestComputeAdvancesOnlyThatRank(t *testing.T) {
	cm, nodes := comm(t, 3, 11)
	cm.Compute(1, cluster.Work{CPUOps: 1e9})
	if nodes[1].Now() <= 0 || nodes[0].Now() != 0 || nodes[2].Now() != 0 {
		t.Fatalf("clocks = %v %v %v", nodes[0].Now(), nodes[1].Now(), nodes[2].Now())
	}
	if cm.MaxClock() != nodes[1].Now() {
		t.Fatal("MaxClock mismatch")
	}
	if cm.Size() != 3 {
		t.Fatal("size mismatch")
	}
}

// Property: after any sequence of collectives, all rank clocks are equal.
func TestQuickCollectivesSynchronize(t *testing.T) {
	f := func(ops []uint8) bool {
		cm, nodes := commQuick(len(ops)%7 + 2)
		for _, op := range ops {
			switch op % 4 {
			case 0:
				cm.Barrier()
			case 1:
				cm.Bcast(int(op)%cm.Size(), int64(op)*100)
			case 2:
				cm.Allreduce(int64(op))
			case 3:
				cm.Compute(int(op)%cm.Size(), cluster.Work{CPUOps: float64(op) * 1e5})
				cm.Barrier()
			}
		}
		end := nodes[0].Now()
		for _, n := range nodes {
			if math.Abs(n.Now()-end) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func commQuick(n int) (*Comm, []*cluster.Node) {
	c := cluster.New(99)
	nodes, _ := c.Provision("probe-opteron", n)
	cm, _ := NewComm(nodes, cluster.NewNetwork(0))
	return cm, nodes
}

// Property: sender clock is monotone and every Send is eventually
// receivable exactly once.
func TestQuickSendRecvConservation(t *testing.T) {
	f := func(sizes []uint16) bool {
		cm, _ := commQuick(2)
		for _, s := range sizes {
			if err := cm.Send(0, 1, int64(s)); err != nil {
				return false
			}
		}
		for range sizes {
			if _, err := cm.Recv(1, 0); err != nil {
				return false
			}
		}
		_, err := cm.Recv(1, 0)
		return err != nil // queue must now be empty
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNonblockingSendRecv(t *testing.T) {
	cm, nodes := comm(t, 2, 20)
	req, err := cm.Isend(0, 1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// sender pays only overhead, not the wire
	overheadOnly := nodes[0].Now()
	cmB, nodesB := comm(t, 2, 20)
	cmB.Send(0, 1, 1<<20)
	blocking := nodesB[0].Now()
	if overheadOnly >= blocking {
		t.Fatalf("Isend %v should cost less than Send %v", overheadOnly, blocking)
	}
	// sender-side wait is free
	if err := cm.Wait(req); err != nil {
		t.Fatal(err)
	}
	// receiver wait blocks until arrival
	rreq, err := cm.Irecv(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.Wait(rreq); err != nil {
		t.Fatal(err)
	}
	if nodes[1].Now() < overheadOnly {
		t.Fatalf("receiver %v must reach arrival after %v", nodes[1].Now(), overheadOnly)
	}
	// double wait rejected
	if err := cm.Wait(rreq); err == nil {
		t.Fatal("double wait must fail")
	}
	if err := cm.Wait(nil); err == nil {
		t.Fatal("nil wait must fail")
	}
}

func TestNonblockingValidation(t *testing.T) {
	cm, _ := comm(t, 2, 21)
	if _, err := cm.Isend(0, 0, 1); err == nil {
		t.Fatal("self isend must fail")
	}
	if _, err := cm.Isend(0, 9, 1); err == nil {
		t.Fatal("bad dst must fail")
	}
	if _, err := cm.Isend(0, 1, -1); err == nil {
		t.Fatal("negative size must fail")
	}
	if _, err := cm.Irecv(1, 0); err == nil {
		t.Fatal("irecv without message must fail")
	}
	if _, err := cm.Irecv(1, 9); err == nil {
		t.Fatal("bad src must fail")
	}
}

func TestOverlapHidesWireTime(t *testing.T) {
	// compute long enough to hide the transfer entirely
	cm, nodes := comm(t, 2, 22)
	req, _ := cm.Isend(0, 1, 1<<20)
	cm.Compute(1, cluster.Work{CPUOps: 5e9}) // receiver computes meanwhile
	rr, err := cm.Irecv(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := nodes[1].Now()
	cm.Wait(rr)
	cm.Wait(req)
	waited := nodes[1].Now() - before
	if waited > 1e-9 {
		t.Fatalf("fully-overlapped wait should be ~free, waited %v", waited)
	}
}
