package vcs

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestMergeFastForward(t *testing.T) {
	r := NewRepository()
	r.Commit(files("a", "1"), "x", "base")
	r.CreateBranch("feature", true)
	c2, _ := r.Commit(files("a", "1", "b", "2"), "x", "feature work")

	r.SwitchBranch("master")
	merged, err := r.Merge("feature", "x")
	if err != nil {
		t.Fatal(err)
	}
	if merged.Hash != c2.Hash {
		t.Fatalf("fast-forward should move master to %s, got %s", c2.Hash.Short(), merged.Hash.Short())
	}
	out, _ := r.CheckoutHead()
	if string(out["b"]) != "2" {
		t.Fatal("feature content missing after merge")
	}
}

func TestMergeThreeWay(t *testing.T) {
	r := NewRepository()
	r.Commit(files("shared", "base", "ours-file", "o0", "theirs-file", "t0"), "x", "base")
	r.CreateBranch("collab", true)
	r.Commit(files("shared", "base", "ours-file", "o0", "theirs-file", "t1", "new-theirs", "nt"), "x", "their change")
	r.SwitchBranch("master")
	r.Commit(files("shared", "base", "ours-file", "o1", "theirs-file", "t0"), "x", "our change")

	merged, err := r.Merge("collab", "merger")
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Parents) != 2 {
		t.Fatalf("merge commit parents = %v", merged.Parents)
	}
	out, _ := r.CheckoutHead()
	checks := map[string]string{
		"shared":      "base",
		"ours-file":   "o1",
		"theirs-file": "t1",
		"new-theirs":  "nt",
	}
	for p, want := range checks {
		if string(out[p]) != want {
			t.Errorf("%s = %q, want %q", p, out[p], want)
		}
	}
	if !strings.Contains(merged.Message, "merge branch") {
		t.Fatalf("message = %q", merged.Message)
	}
}

func TestMergeIdenticalChanges(t *testing.T) {
	r := NewRepository()
	r.Commit(files("f", "base"), "x", "base")
	r.CreateBranch("b", true)
	r.Commit(files("f", "same-change"), "x", "theirs")
	r.SwitchBranch("master")
	r.Commit(files("f", "same-change"), "x", "ours")
	if _, err := r.Merge("b", "x"); err != nil {
		t.Fatalf("identical changes must not conflict: %v", err)
	}
}

func TestMergeBothDeleted(t *testing.T) {
	r := NewRepository()
	r.Commit(files("f", "base", "keep", "k"), "x", "base")
	r.CreateBranch("b", true)
	r.Commit(files("keep", "k"), "x", "theirs delete")
	r.SwitchBranch("master")
	r.Commit(files("keep", "k"), "x", "ours delete")
	merged, err := r.Merge("b", "x")
	if err != nil {
		t.Fatal(err)
	}
	out, _ := r.Checkout(merged.Hash)
	if _, ok := out["f"]; ok {
		t.Fatal("doubly-deleted file resurrected")
	}
}

func TestMergeConflict(t *testing.T) {
	r := NewRepository()
	r.Commit(files("f", "base"), "x", "base")
	r.CreateBranch("b", true)
	theirHead, _ := r.Commit(files("f", "theirs"), "x", "theirs")
	r.SwitchBranch("master")
	ourHead, _ := r.Commit(files("f", "ours"), "x", "ours")

	_, err := r.Merge("b", "x")
	var conflict *ErrMergeConflict
	if !errors.As(err, &conflict) {
		t.Fatalf("want ErrMergeConflict, got %v", err)
	}
	if len(conflict.Conflicts) != 1 || conflict.Conflicts[0].Path != "f" {
		t.Fatalf("conflicts = %+v", conflict.Conflicts)
	}
	// branches untouched
	head, _ := r.Head()
	if head.Hash != ourHead.Hash {
		t.Fatal("failed merge must not move the current branch")
	}
	got, _ := r.ResolveTagOrBranch("b")
	if got != theirHead.Hash {
		t.Fatal("failed merge must not move the other branch")
	}
}

func TestMergeModifyDeleteConflict(t *testing.T) {
	r := NewRepository()
	r.Commit(files("f", "base"), "x", "base")
	r.CreateBranch("b", true)
	r.Commit(map[string][]byte{}, "x", "theirs deletes f")
	r.SwitchBranch("master")
	r.Commit(files("f", "modified"), "x", "ours modifies f")
	_, err := r.Merge("b", "x")
	var conflict *ErrMergeConflict
	if !errors.As(err, &conflict) {
		t.Fatalf("modify/delete must conflict, got %v", err)
	}
	if conflict.Conflicts[0].Theirs != "(deleted)" {
		t.Fatalf("conflict detail = %+v", conflict.Conflicts[0])
	}
}

func TestMergeErrors(t *testing.T) {
	r := NewRepository()
	r.Commit(files("a", "1"), "x", "base")
	if _, err := r.Merge("master", "x"); err == nil {
		t.Fatal("self-merge must fail")
	}
	if _, err := r.Merge("ghost", "x"); err == nil {
		t.Fatal("unknown branch must fail")
	}
	r.CreateBranch("empty", false)
	// merging an identical branch is a no-op returning current head
	head, _ := r.Head()
	got, err := r.Merge("empty", "x")
	if err != nil || got.Hash != head.Hash {
		t.Fatalf("identical merge = %v, %v", got, err)
	}
}

func TestMergeAlreadyUpToDate(t *testing.T) {
	r := NewRepository()
	r.Commit(files("a", "1"), "x", "c1")
	r.CreateBranch("old", false)
	head, _ := r.Commit(files("a", "2"), "x", "c2")
	// master is ahead of old: merge is a no-op
	got, err := r.Merge("old", "x")
	if err != nil || got.Hash != head.Hash {
		t.Fatalf("up-to-date merge = %v, %v", got, err)
	}
}

func TestMergeTriggersHooks(t *testing.T) {
	r := NewRepository()
	r.Commit(files("f", "base"), "x", "base")
	r.CreateBranch("b", true)
	r.Commit(files("f", "base", "g", "1"), "x", "theirs")
	r.SwitchBranch("master")
	r.Commit(files("f", "changed"), "x", "ours")

	var hookMsgs []string
	r.OnCommit(func(c Commit) { hookMsgs = append(hookMsgs, c.Message) })
	if _, err := r.Merge("b", "x"); err != nil {
		t.Fatal(err)
	}
	if len(hookMsgs) != 1 || !strings.Contains(hookMsgs[0], "merge") {
		t.Fatalf("hooks = %v (CI must see merge commits)", hookMsgs)
	}
}

// ResolveTagOrBranch is a test helper exposing branch tips.
func (r *Repository) ResolveTagOrBranch(name string) (Hash, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.refs[name]; ok {
		return h, nil
	}
	if h, ok := r.tags[name]; ok {
		return h, nil
	}
	return "", errorsNew("no ref " + name)
}

func errorsNew(s string) error { return errors.New(s) }

// Property: merging branches with disjoint path changes never conflicts
// and the result contains both sides' files.
func TestQuickDisjointMerge(t *testing.T) {
	f := func(oursN, theirsN uint8) bool {
		r := NewRepository()
		r.Commit(files("base", "b"), "x", "base")
		r.CreateBranch("b", true)
		theirFiles := files("base", "b")
		for i := 0; i < int(theirsN%5)+1; i++ {
			theirFiles[fmt.Sprintf("theirs/%d", i)] = []byte{byte(i)}
		}
		r.Commit(theirFiles, "x", "theirs")
		r.SwitchBranch("master")
		ourFiles := files("base", "b")
		for i := 0; i < int(oursN%5)+1; i++ {
			ourFiles[fmt.Sprintf("ours/%d", i)] = []byte{byte(i)}
		}
		r.Commit(ourFiles, "x", "ours")
		merged, err := r.Merge("b", "x")
		if err != nil {
			return false
		}
		out, err := r.Checkout(merged.Hash)
		if err != nil {
			return false
		}
		for i := 0; i < int(theirsN%5)+1; i++ {
			if _, ok := out[fmt.Sprintf("theirs/%d", i)]; !ok {
				return false
			}
		}
		for i := 0; i < int(oursN%5)+1; i++ {
			if _, ok := out[fmt.Sprintf("ours/%d", i)]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
