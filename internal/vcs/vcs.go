// Package vcs implements the version-control substrate of the Popper
// convention: a content-addressed object store with blobs, trees, commits,
// branches and tags, in the style of git.
//
// The paper's premise is that every artifact of an exploration lives in a
// single source-code repository and is referenced by an immutable
// identifier. This package provides exactly those semantics: snapshots of
// a file map become tree objects, commits form a DAG, and any object is
// addressed by the SHA-256 of its canonical encoding. The CI service
// (internal/ci) subscribes to commit events, and the Popper core uses
// checkouts to rebuild experiment state at any point in history — the
// "lab notebook" of Figure 1.
package vcs

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Hash identifies an object in the store (hex-encoded SHA-256).
type Hash string

// Short returns the abbreviated hash used in logs.
func (h Hash) Short() string {
	if len(h) < 8 {
		return string(h)
	}
	return string(h[:8])
}

type objKind byte

const (
	kindBlob   objKind = 'b'
	kindTree   objKind = 't'
	kindCommit objKind = 'c'
)

// Commit is the metadata of one recorded snapshot.
type Commit struct {
	Hash    Hash
	Tree    Hash
	Parents []Hash
	Author  string
	Message string
	// Seq is a logical timestamp assigned by the repository; it replaces
	// wall-clock time so repositories are deterministic under test.
	Seq int64
	// When records wall-clock time for human-facing logs.
	When time.Time
}

// Repository is an in-memory content-addressed store. It is safe for
// concurrent use.
type Repository struct {
	mu      sync.Mutex
	objects map[Hash][]byte
	refs    map[string]Hash // branch name -> commit
	tags    map[string]Hash
	head    string // current branch name
	seq     int64
	hooks   []func(Commit)
}

// NewRepository creates an empty repository with a "master" branch.
func NewRepository() *Repository {
	return &Repository{
		objects: make(map[Hash][]byte),
		refs:    map[string]Hash{"master": ""},
		tags:    make(map[string]Hash),
		head:    "master",
	}
}

func hashOf(kind objKind, payload []byte) Hash {
	h := sha256.New()
	h.Write([]byte{byte(kind), ':'})
	h.Write(payload)
	return Hash(hex.EncodeToString(h.Sum(nil)))
}

// put stores an object and returns its hash (idempotent).
func (r *Repository) put(kind objKind, payload []byte) Hash {
	h := hashOf(kind, payload)
	if _, ok := r.objects[h]; !ok {
		cp := make([]byte, 1+len(payload))
		cp[0] = byte(kind)
		copy(cp[1:], payload)
		r.objects[h] = cp
	}
	return h
}

func (r *Repository) get(h Hash, want objKind) ([]byte, error) {
	raw, ok := r.objects[h]
	if !ok {
		return nil, fmt.Errorf("vcs: object %s not found", h.Short())
	}
	if objKind(raw[0]) != want {
		return nil, fmt.Errorf("vcs: object %s is %q, want %q", h.Short(), raw[0], want)
	}
	return raw[1:], nil
}

// treeEntry is one name in a tree object.
type treeEntry struct {
	name  string
	isDir bool
	hash  Hash
}

func encodeTree(entries []treeEntry) []byte {
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	var sb strings.Builder
	for _, e := range entries {
		kind := "f"
		if e.isDir {
			kind = "d"
		}
		fmt.Fprintf(&sb, "%s %s %s\n", kind, e.hash, e.name)
	}
	return []byte(sb.String())
}

func decodeTree(raw []byte) ([]treeEntry, error) {
	var out []treeEntry
	for _, line := range strings.Split(strings.TrimRight(string(raw), "\n"), "\n") {
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, " ", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("vcs: corrupt tree entry %q", line)
		}
		out = append(out, treeEntry{
			name: parts[2], isDir: parts[0] == "d", hash: Hash(parts[1]),
		})
	}
	return out, nil
}

// storeTree recursively builds tree objects from a flat path->content map.
func (r *Repository) storeTree(files map[string][]byte, prefix string) Hash {
	dirs := make(map[string]map[string][]byte)
	var entries []treeEntry
	for path, content := range files {
		if i := strings.IndexByte(path, '/'); i >= 0 {
			d := path[:i]
			if dirs[d] == nil {
				dirs[d] = make(map[string][]byte)
			}
			dirs[d][path[i+1:]] = content
			continue
		}
		entries = append(entries, treeEntry{name: path, hash: r.put(kindBlob, content)})
	}
	dirNames := make([]string, 0, len(dirs))
	for d := range dirs {
		dirNames = append(dirNames, d)
	}
	sort.Strings(dirNames)
	for _, d := range dirNames {
		entries = append(entries, treeEntry{
			name: d, isDir: true, hash: r.storeTree(dirs[d], prefix+d+"/"),
		})
	}
	return r.put(kindTree, encodeTree(entries))
}

// loadTree flattens a tree object back into a path->content map.
func (r *Repository) loadTree(tree Hash, prefix string, into map[string][]byte) error {
	raw, err := r.get(tree, kindTree)
	if err != nil {
		return err
	}
	entries, err := decodeTree(raw)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.isDir {
			if err := r.loadTree(e.hash, prefix+e.name+"/", into); err != nil {
				return err
			}
			continue
		}
		blob, err := r.get(e.hash, kindBlob)
		if err != nil {
			return err
		}
		into[prefix+e.name] = append([]byte(nil), blob...)
	}
	return nil
}

func encodeCommit(c Commit) []byte {
	var sb strings.Builder
	fmt.Fprintf(&sb, "tree %s\n", c.Tree)
	for _, p := range c.Parents {
		fmt.Fprintf(&sb, "parent %s\n", p)
	}
	fmt.Fprintf(&sb, "author %s\n", c.Author)
	fmt.Fprintf(&sb, "seq %d\n", c.Seq)
	fmt.Fprintf(&sb, "\n%s", c.Message)
	return []byte(sb.String())
}

func decodeCommit(h Hash, raw []byte) (Commit, error) {
	c := Commit{Hash: h}
	head, msg, found := strings.Cut(string(raw), "\n\n")
	if found {
		c.Message = msg
	}
	for _, line := range strings.Split(head, "\n") {
		key, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		switch key {
		case "tree":
			c.Tree = Hash(val)
		case "parent":
			c.Parents = append(c.Parents, Hash(val))
		case "author":
			c.Author = val
		case "seq":
			fmt.Sscanf(val, "%d", &c.Seq)
		}
	}
	if c.Tree == "" {
		return c, fmt.Errorf("vcs: commit %s has no tree", h.Short())
	}
	return c, nil
}

// OnCommit registers a hook invoked (synchronously) after every commit —
// the integration point for the CI service.
func (r *Repository) OnCommit(hook func(Commit)) {
	r.mu.Lock()
	r.hooks = append(r.hooks, hook)
	r.mu.Unlock()
}

// Commit snapshots the given file map onto the current branch.
// Paths use '/' separators; empty paths or paths with "." / ".." segments
// are rejected.
func (r *Repository) Commit(files map[string][]byte, author, message string) (Commit, error) {
	for path := range files {
		if err := validatePath(path); err != nil {
			return Commit{}, err
		}
	}
	r.mu.Lock()
	tree := r.storeTree(files, "")
	r.seq++
	c := Commit{
		Tree:   tree,
		Author: author, Message: message,
		Seq:  r.seq,
		When: time.Now(),
	}
	if parent := r.refs[r.head]; parent != "" {
		c.Parents = []Hash{parent}
	}
	c.Hash = r.put(kindCommit, encodeCommit(c))
	r.refs[r.head] = c.Hash
	hooks := append([]func(Commit){}, r.hooks...)
	r.mu.Unlock()
	for _, h := range hooks {
		h(c)
	}
	return c, nil
}

func validatePath(path string) error {
	if path == "" || strings.HasPrefix(path, "/") || strings.HasSuffix(path, "/") {
		return fmt.Errorf("vcs: invalid path %q", path)
	}
	for _, seg := range strings.Split(path, "/") {
		if seg == "" || seg == "." || seg == ".." {
			return fmt.Errorf("vcs: invalid path %q", path)
		}
	}
	return nil
}

// Head returns the commit at the tip of the current branch.
func (r *Repository) Head() (Commit, bool) {
	r.mu.Lock()
	h := r.refs[r.head]
	r.mu.Unlock()
	if h == "" {
		return Commit{}, false
	}
	c, err := r.LookupCommit(h)
	return c, err == nil
}

// CurrentBranch returns the checked-out branch name.
func (r *Repository) CurrentBranch() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.head
}

// Branches lists branch names, sorted.
func (r *Repository) Branches() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.refs))
	for b := range r.refs {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// CreateBranch makes a new branch at the current head and optionally
// switches to it.
func (r *Repository) CreateBranch(name string, checkout bool) error {
	if name == "" {
		return fmt.Errorf("vcs: empty branch name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.refs[name]; exists {
		return fmt.Errorf("vcs: branch %q already exists", name)
	}
	r.refs[name] = r.refs[r.head]
	if checkout {
		r.head = name
	}
	return nil
}

// SwitchBranch checks out an existing branch.
func (r *Repository) SwitchBranch(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.refs[name]; !ok {
		return fmt.Errorf("vcs: no branch %q", name)
	}
	r.head = name
	return nil
}

// Tag names a commit immutably ("the asset id" the convention references).
func (r *Repository) Tag(name string, commit Hash) error {
	if name == "" {
		return fmt.Errorf("vcs: empty tag name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.tags[name]; exists {
		return fmt.Errorf("vcs: tag %q already exists", name)
	}
	if _, ok := r.objects[commit]; !ok {
		return fmt.Errorf("vcs: commit %s not found", commit.Short())
	}
	r.tags[name] = commit
	return nil
}

// ResolveTag returns the commit a tag points at.
func (r *Repository) ResolveTag(name string) (Hash, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.tags[name]
	if !ok {
		return "", fmt.Errorf("vcs: no tag %q", name)
	}
	return h, nil
}

// LookupCommit loads commit metadata by hash.
func (r *Repository) LookupCommit(h Hash) (Commit, error) {
	r.mu.Lock()
	raw, err := r.get(h, kindCommit)
	r.mu.Unlock()
	if err != nil {
		return Commit{}, err
	}
	return decodeCommit(h, raw)
}

// Checkout materializes the file map of a commit.
func (r *Repository) Checkout(h Hash) (map[string][]byte, error) {
	c, err := r.LookupCommit(h)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte)
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.loadTree(c.Tree, "", out); err != nil {
		return nil, err
	}
	return out, nil
}

// CheckoutHead materializes the current branch tip (empty map before the
// first commit).
func (r *Repository) CheckoutHead() (map[string][]byte, error) {
	head, ok := r.Head()
	if !ok {
		return map[string][]byte{}, nil
	}
	return r.Checkout(head.Hash)
}

// ReadFile returns one file from a commit.
func (r *Repository) ReadFile(commit Hash, path string) ([]byte, error) {
	files, err := r.Checkout(commit)
	if err != nil {
		return nil, err
	}
	content, ok := files[path]
	if !ok {
		return nil, fmt.Errorf("vcs: %s: no file %q", commit.Short(), path)
	}
	return content, nil
}

// Log returns the first-parent history from the current head, newest first.
func (r *Repository) Log() ([]Commit, error) {
	head, ok := r.Head()
	if !ok {
		return nil, nil
	}
	var out []Commit
	cur := head
	for {
		out = append(out, cur)
		if len(cur.Parents) == 0 {
			return out, nil
		}
		next, err := r.LookupCommit(cur.Parents[0])
		if err != nil {
			return nil, err
		}
		cur = next
	}
}

// ChangeKind classifies one path in a diff.
type ChangeKind byte

const (
	Added    ChangeKind = 'A'
	Deleted  ChangeKind = 'D'
	Modified ChangeKind = 'M'
)

// Change is one path-level difference between two commits.
type Change struct {
	Path string
	Kind ChangeKind
}

// Diff compares two commits and returns path-level changes sorted by path.
// An empty `from` hash means "diff against the empty tree".
func (r *Repository) Diff(from, to Hash) ([]Change, error) {
	older := map[string][]byte{}
	if from != "" {
		var err error
		older, err = r.Checkout(from)
		if err != nil {
			return nil, err
		}
	}
	newer, err := r.Checkout(to)
	if err != nil {
		return nil, err
	}
	var out []Change
	for path, content := range newer {
		old, ok := older[path]
		switch {
		case !ok:
			out = append(out, Change{Path: path, Kind: Added})
		case string(old) != string(content):
			out = append(out, Change{Path: path, Kind: Modified})
		}
	}
	for path := range older {
		if _, ok := newer[path]; !ok {
			out = append(out, Change{Path: path, Kind: Deleted})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// ObjectCount reports how many objects the store holds (dedup metric).
func (r *Repository) ObjectCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.objects)
}

// FormatLog renders a compact one-line-per-commit history.
func (r *Repository) FormatLog() (string, error) {
	log, err := r.Log()
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for _, c := range log {
		first, _, _ := strings.Cut(c.Message, "\n")
		fmt.Fprintf(&sb, "%s  %-12s  %s\n", c.Hash.Short(), c.Author, first)
	}
	return sb.String(), nil
}
