package vcs

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"
)

func files(kv ...string) map[string][]byte {
	m := make(map[string][]byte, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		m[kv[i]] = []byte(kv[i+1])
	}
	return m
}

func TestCommitAndCheckout(t *testing.T) {
	r := NewRepository()
	in := files(
		"README.md", "hello",
		"experiments/gassyfs/run.sh", "#!/bin/sh\n",
		"experiments/gassyfs/vars.yml", "nodes: 4\n",
		"paper/paper.tex", "\\documentclass{article}",
	)
	c, err := r.Commit(in, "ivo", "initial import")
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.Checkout(c.Hash)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("checkout has %d files, want %d", len(out), len(in))
	}
	for p, want := range in {
		if string(out[p]) != string(want) {
			t.Errorf("file %s = %q, want %q", p, out[p], want)
		}
	}
}

func TestEmptyRepoHead(t *testing.T) {
	r := NewRepository()
	if _, ok := r.Head(); ok {
		t.Fatal("empty repo should have no head")
	}
	out, err := r.CheckoutHead()
	if err != nil || len(out) != 0 {
		t.Fatalf("CheckoutHead on empty repo: %v %v", out, err)
	}
	log, err := r.Log()
	if err != nil || log != nil {
		t.Fatalf("Log on empty repo: %v %v", log, err)
	}
}

func TestHistoryAndLog(t *testing.T) {
	r := NewRepository()
	c1, _ := r.Commit(files("a", "1"), "x", "first")
	c2, _ := r.Commit(files("a", "2"), "x", "second\nbody")
	log, err := r.Log()
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 2 || log[0].Hash != c2.Hash || log[1].Hash != c1.Hash {
		t.Fatalf("log = %v", log)
	}
	if len(log[0].Parents) != 1 || log[0].Parents[0] != c1.Hash {
		t.Fatalf("parents = %v", log[0].Parents)
	}
	if log[0].Seq <= log[1].Seq {
		t.Fatalf("seq not increasing: %d then %d", log[1].Seq, log[0].Seq)
	}
	text, err := r.FormatLog()
	if err != nil {
		t.Fatal(err)
	}
	if !contains(text, "second") || contains(text, "body") {
		t.Fatalf("FormatLog:\n%s", text)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestContentAddressing(t *testing.T) {
	r := NewRepository()
	r.Commit(files("a", "same", "b", "same"), "x", "c1")
	n1 := r.ObjectCount()
	// identical content in new path should add tree+commit but reuse blob
	r.Commit(files("a", "same", "b", "same", "c", "same"), "x", "c2")
	n2 := r.ObjectCount()
	if n2-n1 != 2 { // one new tree, one new commit; blob deduped
		t.Fatalf("object growth = %d, want 2 (blob must dedup)", n2-n1)
	}
}

func TestDeterministicTreeHash(t *testing.T) {
	r1 := NewRepository()
	r2 := NewRepository()
	c1, _ := r1.Commit(files("x/a", "1", "x/b", "2", "y", "3"), "a", "m")
	c2, _ := r2.Commit(files("y", "3", "x/b", "2", "x/a", "1"), "a", "m")
	if c1.Tree != c2.Tree {
		t.Fatalf("tree hashes differ for same content: %s vs %s", c1.Tree, c2.Tree)
	}
}

func TestDiff(t *testing.T) {
	r := NewRepository()
	c1, _ := r.Commit(files("keep", "k", "mod", "old", "gone", "g"), "x", "c1")
	c2, _ := r.Commit(files("keep", "k", "mod", "new", "added", "a"), "x", "c2")
	d, err := r.Diff(c1.Hash, c2.Hash)
	if err != nil {
		t.Fatal(err)
	}
	want := []Change{
		{Path: "added", Kind: Added},
		{Path: "gone", Kind: Deleted},
		{Path: "mod", Kind: Modified},
	}
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("diff = %v, want %v", d, want)
	}
	// diff against empty tree
	d0, err := r.Diff("", c1.Hash)
	if err != nil || len(d0) != 3 {
		t.Fatalf("diff from empty = %v, %v", d0, err)
	}
	for _, ch := range d0 {
		if ch.Kind != Added {
			t.Fatalf("all changes from empty should be Added: %v", d0)
		}
	}
}

func TestBranches(t *testing.T) {
	r := NewRepository()
	c1, _ := r.Commit(files("f", "main1"), "x", "m1")
	if err := r.CreateBranch("exp", true); err != nil {
		t.Fatal(err)
	}
	if r.CurrentBranch() != "exp" {
		t.Fatalf("branch = %s", r.CurrentBranch())
	}
	c2, _ := r.Commit(files("f", "exp1"), "x", "e1")
	if err := r.SwitchBranch("master"); err != nil {
		t.Fatal(err)
	}
	head, _ := r.Head()
	if head.Hash != c1.Hash {
		t.Fatalf("master head = %s, want %s", head.Hash.Short(), c1.Hash.Short())
	}
	r.SwitchBranch("exp")
	head, _ = r.Head()
	if head.Hash != c2.Hash {
		t.Fatalf("exp head = %s", head.Hash.Short())
	}
	if got := r.Branches(); !reflect.DeepEqual(got, []string{"exp", "master"}) {
		t.Fatalf("branches = %v", got)
	}
	if err := r.CreateBranch("exp", false); err == nil {
		t.Fatal("duplicate branch should fail")
	}
	if err := r.SwitchBranch("nope"); err == nil {
		t.Fatal("switching to unknown branch should fail")
	}
	if err := r.CreateBranch("", false); err == nil {
		t.Fatal("empty branch name should fail")
	}
}

func TestTags(t *testing.T) {
	r := NewRepository()
	c, _ := r.Commit(files("f", "v"), "x", "m")
	if err := r.Tag("asplos17", c.Hash); err != nil {
		t.Fatal(err)
	}
	got, err := r.ResolveTag("asplos17")
	if err != nil || got != c.Hash {
		t.Fatalf("resolve = %v, %v", got, err)
	}
	if err := r.Tag("asplos17", c.Hash); err == nil {
		t.Fatal("tags must be immutable")
	}
	if err := r.Tag("x", "deadbeef"); err == nil {
		t.Fatal("tagging unknown commit should fail")
	}
	if _, err := r.ResolveTag("nope"); err == nil {
		t.Fatal("unknown tag should fail")
	}
}

func TestReadFile(t *testing.T) {
	r := NewRepository()
	c, _ := r.Commit(files("experiments/e/run.sh", "#!run"), "x", "m")
	b, err := r.ReadFile(c.Hash, "experiments/e/run.sh")
	if err != nil || string(b) != "#!run" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	if _, err := r.ReadFile(c.Hash, "nope"); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestInvalidPaths(t *testing.T) {
	r := NewRepository()
	for _, p := range []string{"", "/abs", "trail/", "a//b", "a/./b", "a/../b", ".."} {
		if _, err := r.Commit(map[string][]byte{p: nil}, "x", "m"); err == nil {
			t.Errorf("path %q should be rejected", p)
		}
	}
}

func TestCommitHook(t *testing.T) {
	r := NewRepository()
	var got []string
	r.OnCommit(func(c Commit) { got = append(got, c.Message) })
	r.Commit(files("a", "1"), "x", "one")
	r.Commit(files("a", "2"), "x", "two")
	if !reflect.DeepEqual(got, []string{"one", "two"}) {
		t.Fatalf("hook calls = %v", got)
	}
}

func TestLookupErrors(t *testing.T) {
	r := NewRepository()
	if _, err := r.LookupCommit("absent"); err == nil {
		t.Fatal("absent commit should fail")
	}
	c, _ := r.Commit(files("a", "1"), "x", "m")
	// a tree hash is not a commit
	if _, err := r.LookupCommit(c.Tree); err == nil {
		t.Fatal("kind mismatch should fail")
	}
	if _, err := r.Checkout("absent"); err == nil {
		t.Fatal("checkout of absent should fail")
	}
}

func TestCheckoutIsolation(t *testing.T) {
	r := NewRepository()
	c, _ := r.Commit(files("a", "orig"), "x", "m")
	out, _ := r.Checkout(c.Hash)
	out["a"][0] = 'X' // mutate returned buffer
	again, _ := r.Checkout(c.Hash)
	if string(again["a"]) != "orig" {
		t.Fatal("checkout buffers must be copies")
	}
}

// Property: commit → checkout is the identity on arbitrary file maps.
func TestQuickCommitCheckoutIdentity(t *testing.T) {
	f := func(names []uint16, contents [][]byte) bool {
		in := make(map[string][]byte)
		n := len(names)
		if len(contents) < n {
			n = len(contents)
		}
		for i := 0; i < n; i++ {
			path := fmt.Sprintf("d%d/f%d", names[i]%7, names[i])
			in[path] = contents[i]
		}
		r := NewRepository()
		c, err := r.Commit(in, "q", "quick")
		if err != nil {
			return false
		}
		out, err := r.Checkout(c.Hash)
		if err != nil || len(out) != len(in) {
			return false
		}
		for p, v := range in {
			if string(out[p]) != string(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: same content always hashes identically; different content
// (added file) never collides.
func TestQuickHashStability(t *testing.T) {
	f := func(content []byte) bool {
		r := NewRepository()
		c1, _ := r.Commit(map[string][]byte{"f": content}, "a", "m")
		r2 := NewRepository()
		c2, _ := r2.Commit(map[string][]byte{"f": content}, "a", "m")
		if c1.Tree != c2.Tree {
			return false
		}
		c3, _ := r2.Commit(map[string][]byte{"f": content, "g": {1}}, "a", "m")
		return c3.Tree != c1.Tree
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
