package vcs

import (
	"fmt"
	"sort"
	"strings"
)

// Merge support: the collaboration story of the convention ("allowing
// researchers to easily collaborate as well as build upon existing
// work"). Merges are file-level three-way: a file changed on only one
// side is taken from that side; a file changed identically on both sides
// is taken as is; diverging changes to the same path are conflicts and
// abort the merge.

// MergeConflict describes one path both branches changed differently.
type MergeConflict struct {
	Path string
	// OursHash/TheirsHash identify the two contents (for reporting).
	Ours, Theirs string
}

// ErrMergeConflict is returned when a merge cannot complete.
type ErrMergeConflict struct {
	Conflicts []MergeConflict
}

func (e *ErrMergeConflict) Error() string {
	paths := make([]string, len(e.Conflicts))
	for i, c := range e.Conflicts {
		paths[i] = c.Path
	}
	return fmt.Sprintf("vcs: merge conflicts in: %s", strings.Join(paths, ", "))
}

// mergeBase finds the nearest common ancestor of two commits
// (first-parent breadth-first; sufficient for the linear-with-branches
// histories this repository model produces).
func (r *Repository) mergeBase(a, b Hash) (Hash, error) {
	ancestors := map[Hash]bool{}
	for cur := a; cur != ""; {
		ancestors[cur] = true
		c, err := r.LookupCommit(cur)
		if err != nil {
			return "", err
		}
		if len(c.Parents) == 0 {
			break
		}
		cur = c.Parents[0]
	}
	for cur := b; cur != ""; {
		if ancestors[cur] {
			return cur, nil
		}
		c, err := r.LookupCommit(cur)
		if err != nil {
			return "", err
		}
		if len(c.Parents) == 0 {
			break
		}
		cur = c.Parents[0]
	}
	return "", fmt.Errorf("vcs: no common ancestor between %s and %s", a.Short(), b.Short())
}

// isAncestor reports whether a is reachable from b via first parents.
func (r *Repository) isAncestor(a, b Hash) (bool, error) {
	for cur := b; cur != ""; {
		if cur == a {
			return true, nil
		}
		c, err := r.LookupCommit(cur)
		if err != nil {
			return false, err
		}
		if len(c.Parents) == 0 {
			return false, nil
		}
		cur = c.Parents[0]
	}
	return false, nil
}

// Merge merges the named branch into the current branch.
//
// Fast-forward when the current head is an ancestor of the other branch;
// otherwise a three-way merge commit with both parents. Returns the
// resulting head commit. Conflicting paths abort with *ErrMergeConflict
// and leave both branches untouched.
func (r *Repository) Merge(other, author string) (Commit, error) {
	r.mu.Lock()
	oursHash, oursOK := r.refs[r.head], true
	theirsHash, theirsOK := r.refs[other]
	current := r.head
	r.mu.Unlock()
	if !theirsOK {
		return Commit{}, fmt.Errorf("vcs: no branch %q", other)
	}
	if other == current {
		return Commit{}, fmt.Errorf("vcs: cannot merge %q into itself", other)
	}
	if theirsHash == "" {
		return Commit{}, fmt.Errorf("vcs: branch %q has no commits", other)
	}
	if !oursOK || oursHash == "" {
		// empty current branch: fast-forward trivially
		r.mu.Lock()
		r.refs[current] = theirsHash
		r.mu.Unlock()
		return r.LookupCommit(theirsHash)
	}
	if oursHash == theirsHash {
		return r.LookupCommit(oursHash)
	}
	// fast-forward?
	if ff, err := r.isAncestor(oursHash, theirsHash); err != nil {
		return Commit{}, err
	} else if ff {
		r.mu.Lock()
		r.refs[current] = theirsHash
		r.mu.Unlock()
		return r.LookupCommit(theirsHash)
	}
	// already up to date?
	if anc, err := r.isAncestor(theirsHash, oursHash); err != nil {
		return Commit{}, err
	} else if anc {
		return r.LookupCommit(oursHash)
	}
	// three-way merge
	baseHash, err := r.mergeBase(oursHash, theirsHash)
	if err != nil {
		return Commit{}, err
	}
	base, err := r.Checkout(baseHash)
	if err != nil {
		return Commit{}, err
	}
	ours, err := r.Checkout(oursHash)
	if err != nil {
		return Commit{}, err
	}
	theirs, err := r.Checkout(theirsHash)
	if err != nil {
		return Commit{}, err
	}

	merged := make(map[string][]byte)
	var conflicts []MergeConflict
	paths := map[string]bool{}
	for p := range base {
		paths[p] = true
	}
	for p := range ours {
		paths[p] = true
	}
	for p := range theirs {
		paths[p] = true
	}
	sorted := make([]string, 0, len(paths))
	for p := range paths {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)
	for _, p := range sorted {
		b, hasB := base[p]
		o, hasO := ours[p]
		t, hasT := theirs[p]
		oursChanged := hasO != hasB || (hasO && hasB && string(o) != string(b))
		theirsChanged := hasT != hasB || (hasT && hasB && string(t) != string(b))
		switch {
		case !oursChanged && !theirsChanged:
			if hasB {
				merged[p] = b
			}
		case oursChanged && !theirsChanged:
			if hasO {
				merged[p] = o
			}
		case !oursChanged && theirsChanged:
			if hasT {
				merged[p] = t
			}
		default: // both changed
			if hasO && hasT && string(o) == string(t) {
				merged[p] = o
				continue
			}
			if !hasO && !hasT { // both deleted
				continue
			}
			conflicts = append(conflicts, MergeConflict{
				Path: p, Ours: summarize(o, hasO), Theirs: summarize(t, hasT),
			})
		}
	}
	if len(conflicts) > 0 {
		return Commit{}, &ErrMergeConflict{Conflicts: conflicts}
	}

	r.mu.Lock()
	tree := r.storeTree(merged, "")
	r.seq++
	c := Commit{
		Tree:    tree,
		Parents: []Hash{oursHash, theirsHash},
		Author:  author,
		Message: fmt.Sprintf("merge branch %q into %q", other, current),
		Seq:     r.seq,
	}
	c.Hash = r.put(kindCommit, encodeCommit(c))
	r.refs[current] = c.Hash
	hooks := append([]func(Commit){}, r.hooks...)
	r.mu.Unlock()
	for _, h := range hooks {
		h(c)
	}
	return c, nil
}

func summarize(content []byte, present bool) string {
	if !present {
		return "(deleted)"
	}
	return fmt.Sprintf("%d bytes", len(content))
}
