package cas

import (
	"crypto/sha256"
	"fmt"
	"math"
	"testing"
)

// leafFor builds a deterministic distinct leaf digest.
func leafFor(i int) [sha256.Size]byte {
	return sha256.Sum256([]byte(fmt.Sprintf("leaf-%d", i)))
}

func buildLeaves(n int) [][sha256.Size]byte {
	leaves := make([][sha256.Size]byte, n)
	for i := range leaves {
		leaves[i] = leafFor(i)
	}
	return leaves
}

func TestMerkleEncodeParseRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 5, 8, 13, 64, 100} {
		m := BuildMerkle(n+7, buildLeaves(n))
		raw := m.Encode()
		got, err := ParseMerkle(raw)
		if err != nil {
			t.Fatalf("n=%d: parse: %v", n, err)
		}
		if got.Gen != m.Gen || got.Len() != m.Len() || got.Root() != m.Root() {
			t.Fatalf("n=%d: round trip mutated the tree: gen %d/%d len %d/%d", n, got.Gen, m.Gen, got.Len(), m.Len())
		}
		for i := 0; i < n; i++ {
			if got.Leaf(i) != m.Leaf(i) {
				t.Fatalf("n=%d: leaf %d mutated", n, i)
			}
		}
		// Encoding is canonical: re-encoding reproduces the same bytes.
		if string(got.Encode()) != string(raw) {
			t.Fatalf("n=%d: re-encoding is not canonical", n)
		}
	}
}

func TestMerkleEmptyTreeHasStableRoot(t *testing.T) {
	a := BuildMerkle(1, nil)
	b := BuildMerkle(1, [][sha256.Size]byte{})
	if a.Root() != b.Root() {
		t.Fatal("empty roots differ between nil and empty slices")
	}
	if diff, compares := a.Diff(b); len(diff) != 0 || compares != 1 {
		t.Fatalf("empty diff: %v, %d compares", diff, compares)
	}
}

func TestMerkleParseRejectsDamage(t *testing.T) {
	raw := BuildMerkle(3, buildLeaves(9)).Encode()
	cases := map[string][]byte{
		"empty":        {},
		"short":        raw[:10],
		"truncated":    raw[:len(raw)-5],
		"bad magic":    append([]byte("rotten-magic 1!!!"), raw[17:]...),
		"flipped bit":  flipByte(raw, len(raw)/2),
		"flipped leaf": flipByte(raw, 30), // inside the first leaf digest
	}
	for name, img := range cases {
		if _, err := ParseMerkle(img); err == nil {
			t.Errorf("%s: damaged image parsed without error", name)
		}
	}
	// A forged root with a recomputed outer checksum must still fail:
	// the leaves do not reduce to it.
	forged := append([]byte(nil), raw[:len(raw)-sha256.Size]...)
	forged[len(forged)-1] ^= 0x40 // flip a bit inside the stored root
	sum := sha256.Sum256(forged)
	forged = append(forged, sum[:]...)
	if _, err := ParseMerkle(forged); err == nil {
		t.Error("forged root with valid checksum parsed without error")
	}
}

func flipByte(raw []byte, i int) []byte {
	out := append([]byte(nil), raw...)
	out[i] ^= 0x01
	return out
}

func TestMerkleDiffLocalizesWithoutLinearCompares(t *testing.T) {
	const n = 1024
	sealed := BuildMerkle(1, buildLeaves(n))

	// Clean tree: one root compare settles it.
	if diff, compares := sealed.Diff(BuildMerkle(1, buildLeaves(n))); len(diff) != 0 || compares != 1 {
		t.Fatalf("clean diff: %v findings, %d compares", diff, compares)
	}

	// k rotted leaves localize in O(k log n) node compares, nowhere near
	// the n it would take to re-hash everything.
	for _, rot := range [][]int{{0}, {511}, {1023}, {3, 700, 1022}, {1, 2, 3, 4, 5}} {
		leaves := buildLeaves(n)
		for _, i := range rot {
			leaves[i] = sha256.Sum256([]byte(fmt.Sprintf("rot-%d", i)))
		}
		diff, compares := sealed.Diff(BuildMerkle(1, leaves))
		if len(diff) != len(rot) {
			t.Fatalf("rot %v: diff %v", rot, diff)
		}
		for j, i := range rot {
			if diff[j] != i {
				t.Fatalf("rot %v: diff %v misses leaf %d", rot, diff, i)
			}
		}
		bound := 2 * (len(rot) + 1) * (int(math.Log2(n)) + 2)
		if compares > bound {
			t.Errorf("rot %v: %d compares exceed the O(k log n) bound %d", rot, compares, bound)
		}
		if compares >= n {
			t.Errorf("rot %v: %d compares is linear work (n=%d)", rot, compares, n)
		}
	}

	// Structurally different trees fall back to reporting every leaf.
	if diff, compares := sealed.Diff(BuildMerkle(1, buildLeaves(n-1))); len(diff) != n || compares != 1 {
		t.Fatalf("length-mismatch diff: %d findings, %d compares", len(diff), compares)
	}
}

func TestMerkleProofsVerifyEveryLeaf(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 33} {
		m := BuildMerkle(1, buildLeaves(n))
		root := m.Root()
		for i := 0; i < n; i++ {
			proof := m.Proof(i)
			if len(proof) > int(math.Ceil(math.Log2(float64(n))))+1 {
				t.Fatalf("n=%d leaf %d: proof of %d siblings is super-logarithmic", n, i, len(proof))
			}
			if !VerifyMerkleProof(root, n, i, m.Leaf(i), proof) {
				t.Fatalf("n=%d: leaf %d proof does not verify", n, i)
			}
			// A rotted leaf must not verify against the sealed root.
			bad := m.Leaf(i)
			bad[0] ^= 0x80
			if VerifyMerkleProof(root, n, i, bad, proof) {
				t.Fatalf("n=%d: rotted leaf %d verified", n, i)
			}
			// Nor may the proof be replayed at another index.
			if n > 1 && VerifyMerkleProof(root, n, (i+1)%n, m.Leaf(i), proof) {
				t.Fatalf("n=%d: leaf %d proof verified at the wrong index", n, i)
			}
		}
		if VerifyMerkleProof(root, n, -1, m.Leaf(0), m.Proof(0)) || VerifyMerkleProof(root, n, n, m.Leaf(0), m.Proof(0)) {
			t.Fatalf("n=%d: out-of-range index verified", n)
		}
	}
}
