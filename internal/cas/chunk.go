package cas

// DefaultChunkSize is the dedup granularity for large values: a stage
// log or workspace file is split into fixed 64 KiB chunks before
// storage, so two sweeps that share a long common prefix (the usual
// shape of append-only journals and logs) share all but the tail
// chunk.
const DefaultChunkSize = 64 << 10

// PutChunked stores content split into DefaultChunkSize chunks and
// returns the chunk refs in order. Empty content is stored as a single
// empty chunk so every value has at least one addressable ref.
func (t *Tier) PutChunked(data []byte) []Ref {
	if len(data) == 0 {
		return []Ref{t.Put(nil)}
	}
	refs := make([]Ref, 0, (len(data)+DefaultChunkSize-1)/DefaultChunkSize)
	for len(data) > 0 {
		n := len(data)
		if n > DefaultChunkSize {
			n = DefaultChunkSize
		}
		refs = append(refs, t.Put(data[:n]))
		data = data[n:]
	}
	return refs
}
