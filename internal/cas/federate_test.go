package cas

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"testing"

	"popper/internal/cluster"
	"popper/internal/gasnet"
)

// testFederation builds a tier federated over `hosts` simulated
// c220g1 nodes with 4 MiB segments.
func testFederation(t *testing.T, hosts int) (*Federation, *Tier, []*cluster.Node) {
	t.Helper()
	c := cluster.New(21)
	nodes, err := c.Provision("cloudlab-c220g1", hosts)
	if err != nil {
		t.Fatal(err)
	}
	w, err := gasnet.New(nodes, cluster.NewNetwork(0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AttachAll(4 << 20); err != nil {
		t.Fatal(err)
	}
	profiles := make([]*cluster.MachineProfile, hosts)
	for i := range profiles {
		profiles[i] = nodes[i].Profile()
	}
	tier := NewTier(Options{})
	fed, err := NewFederation(tier, w, profiles)
	if err != nil {
		t.Fatal(err)
	}
	return fed, tier, nodes
}

func entryKey(s string) [sha256.Size]byte { return sha256.Sum256([]byte(s)) }

func TestFederationPublishFetchFidelity(t *testing.T) {
	fed, tier, nodes := testFederation(t, 3)
	content := bytes.Repeat([]byte("stage output, chunked. "), 8000) // ~184 KB, 3 chunks
	refs := tier.PutChunked(content)
	key := entryKey("stage-a")
	if err := fed.Publish(0, key, refs); err != nil {
		t.Fatal(err)
	}
	if !fed.Present(0, key) || fed.Present(2, key) {
		t.Fatal("publish must register exactly host 0")
	}

	// Remote fetch from host 2 moves the bytes and charges its clock.
	before := nodes[2].Now()
	got, res, err := fed.FetchBlob(2, key)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != FetchRemote || res.From != 0 {
		t.Fatalf("want remote fetch from host 0, got %v from %d", res.Kind, res.From)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("fetched bytes differ from published content")
	}
	if res.Cost <= 0 || nodes[2].Now() <= before {
		t.Fatalf("remote fetch must cost virtual time: cost=%g clock %g→%g",
			res.Cost, before, nodes[2].Now())
	}
	if !fed.Present(2, key) {
		t.Fatal("fetcher must become a holder")
	}

	// Second fetch from host 2 is now local and cheaper.
	res2, err := fed.Fetch(2, key)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Kind != FetchLocal || res2.Cost >= res.Cost {
		t.Fatalf("repeat fetch should be a cheaper local hit: %v cost %g (remote was %g)",
			res2.Kind, res2.Cost, res.Cost)
	}

	st := fed.Stats()
	if st.RemoteFetches != 1 || st.LocalHits != 1 || st.RemoteBytes != int64(len(content)) {
		t.Fatalf("stats: %+v", st)
	}
}

func TestFederationMiss(t *testing.T) {
	fed, _, _ := testFederation(t, 2)
	res, err := fed.Fetch(1, entryKey("never published"))
	if err != nil || res.Kind != FetchMiss {
		t.Fatalf("want clean miss, got %v err %v", res.Kind, err)
	}
	if st := fed.Stats(); st.Misses != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestFederationPicksCheapestPeer pins the alpha-beta peer selection: a
// fast-NIC holder must win over a slow-NIC holder, and ties break
// toward the lowest host index (deterministic choice).
func TestFederationPicksCheapestPeer(t *testing.T) {
	c := cluster.New(7)
	fast, err := c.ProvisionProfile(cluster.MustProfile("cloudlab-c220g1"), 2)
	if err != nil {
		t.Fatal(err)
	}
	slowProfile := *cluster.MustProfile("cloudlab-c220g1")
	slowProfile.Name = "slow-nic"
	slowProfile.NICBWBps /= 100
	slowProfile.NICLatS *= 100
	slow, err := c.ProvisionProfile(&slowProfile, 1)
	if err != nil {
		t.Fatal(err)
	}
	nodes := []*cluster.Node{slow[0], fast[0], fast[1]} // host 0 slow, 1-2 fast
	w, err := gasnet.New(nodes, cluster.NewNetwork(0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AttachAll(1 << 20); err != nil {
		t.Fatal(err)
	}
	profiles := []*cluster.MachineProfile{&slowProfile, fast[0].Profile(), fast[1].Profile()}
	tier := NewTier(Options{})
	fed, err := NewFederation(tier, w, profiles)
	if err != nil {
		t.Fatal(err)
	}

	content := bytes.Repeat([]byte("x"), 100<<10)
	refs := tier.PutChunked(content)
	key := entryKey("contested")
	// Slow host publishes first: holder order must not beat cost order.
	if err := fed.Publish(0, key, refs); err != nil {
		t.Fatal(err)
	}
	if err := fed.Publish(1, key, refs); err != nil {
		t.Fatal(err)
	}
	res, err := fed.Fetch(2, key)
	if err != nil {
		t.Fatal(err)
	}
	if res.From != 1 {
		t.Fatalf("fetch served by host %d, want the fast peer 1", res.From)
	}
	if want := fed.transferCost(2, 1, int64(len(content))); res.Cost >= fed.transferCost(2, 0, int64(len(content))) || res.Cost < want {
		t.Fatalf("cost %g not consistent with the alpha-beta model", res.Cost)
	}
}

// TestFederationSurvivesEviction: publishing an entry whose chunks were
// evicted from the tier is skipped cleanly, and fetch of it misses —
// never serves wrong bytes.
func TestFederationSurvivesEviction(t *testing.T) {
	c := cluster.New(3)
	nodes, err := c.Provision("cloudlab-c220g1", 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := gasnet.New(nodes, cluster.NewNetwork(0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AttachAll(1 << 20); err != nil {
		t.Fatal(err)
	}
	profiles := []*cluster.MachineProfile{nodes[0].Profile(), nodes[1].Profile()}
	tier := NewTier(Options{MaxBytes: 512, Shards: 1})
	fed, err := NewFederation(tier, w, profiles)
	if err != nil {
		t.Fatal(err)
	}
	refs := tier.PutChunked(bytes.Repeat([]byte("v"), 400))
	tier.Put(bytes.Repeat([]byte("evictor"), 60)) // push the chunk out
	key := entryKey("evicted-entry")
	if err := fed.Publish(0, key, refs); err != nil {
		t.Fatal(err)
	}
	if fed.Present(0, key) {
		t.Fatal("publish of evicted chunks must be skipped")
	}
	res, err := fed.Fetch(1, key)
	if err != nil || res.Kind != FetchMiss {
		t.Fatalf("want miss for unpublishable entry, got %v err %v", res.Kind, err)
	}
}

func TestFederationForget(t *testing.T) {
	fed, tier, _ := testFederation(t, 2)
	key := entryKey("forgettable")
	if err := fed.Publish(0, key, tier.PutChunked([]byte("data"))); err != nil {
		t.Fatal(err)
	}
	fed.Forget(key)
	if res, _ := fed.Fetch(1, key); res.Kind != FetchMiss {
		t.Fatal("forgotten entry must miss")
	}
}

// TestFederationRemoteCheaperThanRecompute is the acceptance shape at
// every simulated host count: fetching a published entry from a peer
// costs less virtual time than the stage recompute it replaces, at 1,
// 16 and 256 hosts.
func TestFederationRemoteCheaperThanRecompute(t *testing.T) {
	const recomputeSeconds = 1.0 // a cheap 1-second stage
	for _, hosts := range []int{1, 16, 256} {
		fed, tier, _ := testFederation(t, hosts)
		content := bytes.Repeat([]byte("entry"), 40<<10) // 200 KB
		refs := tier.PutChunked(content)
		key := entryKey(fmt.Sprintf("scale-%d", hosts))
		if err := fed.Publish(0, key, refs); err != nil {
			t.Fatal(err)
		}
		caller := hosts - 1
		res, err := fed.Fetch(caller, key)
		if err != nil {
			t.Fatal(err)
		}
		wantKind := FetchRemote
		if caller == 0 {
			wantKind = FetchLocal
		}
		if res.Kind != wantKind {
			t.Fatalf("hosts=%d: fetch kind %v, want %v", hosts, res.Kind, wantKind)
		}
		if res.Cost >= recomputeSeconds {
			t.Fatalf("hosts=%d: peer fetch costs %.6fs, recompute %.1fs — fetch must win",
				hosts, res.Cost, recomputeSeconds)
		}
	}
}
