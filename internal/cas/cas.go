// Package cas is the federated content-addressed cache tier: one
// SHA-256-addressed object pool shared by the stage cache, the artifact
// store and the peer-to-peer fetch path. Identical content — across
// configurations, sweeps and tenants — is stored once and found by its
// digest (the Collective Knowledge framing: reproducible experiments as
// a shared, reusable artifact ecosystem).
//
// The tier is built like the other hot layers of this repo: striped
// locks (a power-of-two shard array indexed by the leading hash bytes,
// the gasnet chunk-lock idiom), an intrusive LRU list per shard (the
// gassyfs block-cache idiom) so eviction bookkeeping never allocates,
// and a zero-alloc read path (View) enforced by allocation-bound tests
// like the store's clean-sync fast path.
//
// Eviction is size-bounded and pin-aware: objects a consumer is
// replaying from (a stage-cache hit mid-apply) are pinned and skipped
// by the evictor, so a view handed out under a pin can never be
// invalidated by a concurrent Put pushing the shard over budget.
package cas

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"
)

// Ref names one immutable object by content digest plus size. The size
// rides along so cost models (peer-fetch vs recompute) and budget
// accounting never need to load the bytes.
type Ref struct {
	Hash [sha256.Size]byte
	Size int64
}

// Sum computes the Ref of a byte slice without storing it.
func Sum(data []byte) Ref {
	return Ref{Hash: sha256.Sum256(data), Size: int64(len(data))}
}

// Options configures a Tier.
type Options struct {
	// MaxBytes bounds resident object bytes; 0 means unbounded. The
	// bound is split evenly across shards and enforced per shard, so
	// the global ceiling is soft by at most one object per shard.
	MaxBytes int64
	// Shards is the lock-stripe count (rounded up to a power of two);
	// 0 means the default of 64.
	Shards int
}

const defaultShards = 64

// object is one resident blob plus its intrusive LRU links. prev/next
// are owned by the shard lock; data is immutable once inserted.
type object struct {
	hash [sha256.Size]byte
	data []byte
	pins int
	prev *object // toward MRU
	next *object // toward LRU
}

// shard is one lock stripe: a hash-keyed map plus an intrusive LRU
// list (head = most recent). All fields are guarded by mu.
type shard struct {
	mu      sync.Mutex
	objects map[[sha256.Size]byte]*object
	head    *object
	tail    *object
	bytes   int64

	hits         int64
	misses       int64
	added        int64 // objects inserted (first copy of content)
	bytesAdded   int64
	deduped      int64 // Puts satisfied by an existing object
	bytesDeduped int64
	evicted      int64
	bytesEvicted int64
	fallbackHits int64 // misses satisfied by the second-chance source
}

// Tier is the shared content-addressed cache. Safe for concurrent use.
type Tier struct {
	shards   []shard
	mask     uint32
	perShard int64 // byte budget per shard; 0 = unbounded

	fallbackMu sync.RWMutex
	fallback   func(hash [sha256.Size]byte) ([]byte, bool)
}

// SetFallback installs a second-chance source consulted when View or
// Pin miss — typically the artifact store's own object pool (loose
// .popper/objects plus packed extents): content the repository proves
// it holds is never worth recomputing just because the in-memory tier
// evicted it. Returned bytes are admitted only after verifying they
// hash to the requested address, so a corrupt or stale source can
// never poison the cache. Pass nil to remove the source.
func (t *Tier) SetFallback(fn func(hash [sha256.Size]byte) ([]byte, bool)) {
	t.fallbackMu.Lock()
	t.fallback = fn
	t.fallbackMu.Unlock()
}

// NewTier creates a tier. The zero Options value gives an unbounded
// 64-way tier.
func NewTier(opts Options) *Tier {
	n := opts.Shards
	if n <= 0 {
		n = defaultShards
	}
	// Round up to a power of two so shard selection is a mask.
	p := 1
	for p < n {
		p <<= 1
	}
	t := &Tier{shards: make([]shard, p), mask: uint32(p - 1)}
	if opts.MaxBytes > 0 {
		t.perShard = opts.MaxBytes / int64(p)
		if t.perShard <= 0 {
			t.perShard = 1
		}
	}
	for i := range t.shards {
		t.shards[i].objects = make(map[[sha256.Size]byte]*object)
	}
	return t
}

// shardFor picks the stripe from the leading hash bytes. SHA-256
// output is uniform, so any four bytes index evenly.
func (t *Tier) shardFor(hash [sha256.Size]byte) *shard {
	return &t.shards[binary.BigEndian.Uint32(hash[:4])&t.mask]
}

// moveFront makes obj the shard's MRU. Caller holds s.mu.
func (s *shard) moveFront(obj *object) {
	if s.head == obj {
		return
	}
	s.unlink(obj)
	obj.next = s.head
	if s.head != nil {
		s.head.prev = obj
	}
	s.head = obj
	if s.tail == nil {
		s.tail = obj
	}
}

// unlink removes obj from the LRU list. Caller holds s.mu.
func (s *shard) unlink(obj *object) {
	if obj.prev != nil {
		obj.prev.next = obj.next
	} else if s.head == obj {
		s.head = obj.next
	}
	if obj.next != nil {
		obj.next.prev = obj.prev
	} else if s.tail == obj {
		s.tail = obj.prev
	}
	obj.prev, obj.next = nil, nil
}

// evictLocked trims the shard to its byte budget, walking from the LRU
// tail and skipping pinned objects and keep (the object just
// inserted — evicting what the caller is about to reference would make
// every over-budget Put a miss). Caller holds s.mu.
func (s *shard) evictLocked(budget int64, keep *object) {
	if budget <= 0 {
		return
	}
	victim := s.tail
	for s.bytes > budget && victim != nil {
		prev := victim.prev
		if victim.pins == 0 && victim != keep {
			s.unlink(victim)
			delete(s.objects, victim.hash)
			s.bytes -= int64(len(victim.data))
			s.evicted++
			s.bytesEvicted += int64(len(victim.data))
		}
		victim = prev
	}
}

// Put stores content and returns its Ref. The bytes are copied in, so
// the caller's buffer stays caller-owned. Storing content that is
// already resident is a dedup hit: no copy, the existing object is
// touched to MRU.
func (t *Tier) Put(data []byte) Ref {
	ref := Sum(data)
	s := t.shardFor(ref.Hash)
	s.mu.Lock()
	if obj, ok := s.objects[ref.Hash]; ok {
		s.deduped++
		s.bytesDeduped += int64(len(obj.data))
		s.moveFront(obj)
		s.mu.Unlock()
		return ref
	}
	obj := &object{hash: ref.Hash, data: append([]byte(nil), data...)}
	s.objects[ref.Hash] = obj
	s.bytes += int64(len(obj.data))
	s.added++
	s.bytesAdded += int64(len(obj.data))
	s.moveFront(obj)
	s.evictLocked(t.perShard, obj)
	s.mu.Unlock()
	return ref
}

// View returns the resident bytes of ref without copying. The slice is
// owned by the tier and must be treated as immutable; it stays valid
// even if the object is later evicted (eviction drops the tier's
// reference, the Go runtime keeps the bytes alive for outstanding
// views). Consumers that must replay a multi-object entry atomically
// against eviction should Pin first. The hit path is zero-alloc.
func (t *Tier) View(ref Ref) ([]byte, bool) {
	s := t.shardFor(ref.Hash)
	s.mu.Lock()
	obj, ok := s.objects[ref.Hash]
	if !ok {
		s.misses++
		s.mu.Unlock()
		return t.fromFallback(ref, false)
	}
	s.hits++
	s.moveFront(obj)
	data := obj.data
	s.mu.Unlock()
	return data, true
}

// Lookup returns the resident bytes for a content hash,
// digest-verified, without consulting the fallback and without
// perturbing the hit/miss counters — the scrub repair chain's cas-tier
// rung, which must attribute a heal to the tier only when the tier
// itself held the content (and must not skew cache statistics while
// probing).
func (t *Tier) Lookup(hash [sha256.Size]byte) ([]byte, bool) {
	s := t.shardFor(hash)
	s.mu.Lock()
	obj, ok := s.objects[hash]
	if !ok {
		s.mu.Unlock()
		return nil, false
	}
	s.moveFront(obj)
	data := obj.data
	s.mu.Unlock()
	if sha256.Sum256(data) != hash {
		return nil, false
	}
	return data, true
}

// fromFallback consults the second-chance source for a missed ref and
// admits the bytes after verifying the digest. With pin set the
// admitted object is pinned before the shard lock drops, so the
// caller's replay window is eviction-safe — exactly like a Pin that
// found the object resident.
func (t *Tier) fromFallback(ref Ref, pin bool) ([]byte, bool) {
	t.fallbackMu.RLock()
	fn := t.fallback
	t.fallbackMu.RUnlock()
	if fn == nil {
		return nil, false
	}
	data, ok := fn(ref.Hash)
	if !ok || int64(len(data)) != ref.Size || sha256.Sum256(data) != ref.Hash {
		return nil, false
	}
	s := t.shardFor(ref.Hash)
	s.mu.Lock()
	obj, resident := s.objects[ref.Hash]
	if !resident {
		// A concurrent Put may have raced the fallback read; admit only
		// the first copy.
		obj = &object{hash: ref.Hash, data: append([]byte(nil), data...)}
		s.objects[ref.Hash] = obj
		s.bytes += int64(len(obj.data))
		s.added++
		s.bytesAdded += int64(len(obj.data))
	}
	s.fallbackHits++
	if pin {
		obj.pins++
	}
	s.moveFront(obj)
	s.evictLocked(t.perShard, obj)
	data = obj.data
	s.mu.Unlock()
	return data, true
}

// Contains reports residency without touching LRU order or counters.
func (t *Tier) Contains(ref Ref) bool {
	s := t.shardFor(ref.Hash)
	s.mu.Lock()
	_, ok := s.objects[ref.Hash]
	s.mu.Unlock()
	return ok
}

// Pin marks ref ineligible for eviction. Returns false (and pins
// nothing) if the object is not resident. Pins nest; each successful
// Pin needs one Unpin.
func (t *Tier) Pin(ref Ref) bool {
	s := t.shardFor(ref.Hash)
	s.mu.Lock()
	obj, ok := s.objects[ref.Hash]
	if ok {
		obj.pins++
		s.mu.Unlock()
		return true
	}
	s.mu.Unlock()
	_, ok = t.fromFallback(ref, true)
	return ok
}

// Unpin releases one pin. Unpinning a non-resident or unpinned object
// is a no-op (the object may have been evicted between the caller's
// rollback bookkeeping and this call).
func (t *Tier) Unpin(ref Ref) {
	s := t.shardFor(ref.Hash)
	s.mu.Lock()
	if obj, ok := s.objects[ref.Hash]; ok && obj.pins > 0 {
		obj.pins--
	}
	s.mu.Unlock()
}

// Stats is a point-in-time aggregate across shards.
type Stats struct {
	Hits          int64 // View found the object
	Misses        int64 // View missed
	Objects       int64 // resident object count
	BytesResident int64 // resident object bytes
	BytesAdded    int64 // bytes copied in by first-time Puts
	BytesDeduped  int64 // bytes NOT copied because content was resident
	Evictions     int64 // objects evicted by the byte bound
	BytesEvicted  int64
	Pinned        int64 // currently pinned objects
	FallbackHits  int64 // misses satisfied by the second-chance source
}

// Stats sums the per-shard counters.
func (t *Tier) Stats() Stats {
	var st Stats
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Objects += int64(len(s.objects))
		st.BytesResident += s.bytes
		st.BytesAdded += s.bytesAdded
		st.BytesDeduped += s.bytesDeduped
		st.Evictions += s.evicted
		st.BytesEvicted += s.bytesEvicted
		st.FallbackHits += s.fallbackHits
		for _, obj := range s.objects {
			if obj.pins > 0 {
				st.Pinned++
			}
		}
		s.mu.Unlock()
	}
	return st
}

// Len returns the resident object count.
func (t *Tier) Len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.objects)
		s.mu.Unlock()
	}
	return n
}

// Bytes returns the resident byte total.
func (t *Tier) Bytes() int64 {
	var b int64
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		b += s.bytes
		s.mu.Unlock()
	}
	return b
}
