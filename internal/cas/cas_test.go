package cas

import (
	"bytes"
	"fmt"
	"testing"
)

func TestPutViewRoundTrip(t *testing.T) {
	tier := NewTier(Options{})
	content := []byte("results.csv: throughput,812\n")
	ref := tier.Put(content)
	if ref.Size != int64(len(content)) {
		t.Fatalf("ref size %d, want %d", ref.Size, len(content))
	}
	got, ok := tier.View(ref)
	if !ok || !bytes.Equal(got, content) {
		t.Fatalf("view: ok=%v got %q", ok, got)
	}
	if _, ok := tier.View(Sum([]byte("never stored"))); ok {
		t.Fatal("view of unstored content must miss")
	}
	st := tier.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Objects != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPutDedups(t *testing.T) {
	tier := NewTier(Options{})
	content := []byte("identical stage output")
	r1 := tier.Put(content)
	r2 := tier.Put(append([]byte(nil), content...)) // distinct buffer, same bytes
	if r1 != r2 {
		t.Fatalf("identical content must address identically: %x vs %x", r1.Hash[:4], r2.Hash[:4])
	}
	st := tier.Stats()
	if st.Objects != 1 {
		t.Fatalf("dedup must keep one object, have %d", st.Objects)
	}
	if st.BytesDeduped != int64(len(content)) {
		t.Fatalf("bytes deduped %d, want %d", st.BytesDeduped, len(content))
	}
	if st.BytesAdded != int64(len(content)) {
		t.Fatalf("bytes added %d, want %d", st.BytesAdded, len(content))
	}
}

func TestPutCopiesContent(t *testing.T) {
	tier := NewTier(Options{})
	buf := []byte("mutable caller buffer")
	ref := tier.Put(buf)
	buf[0] = 'X'
	got, ok := tier.View(ref)
	if !ok || got[0] != 'm' {
		t.Fatalf("tier must own an isolated copy, got %q", got)
	}
}

func TestEvictionBounded(t *testing.T) {
	// One shard so the budget applies to every object.
	tier := NewTier(Options{MaxBytes: 4096, Shards: 1})
	for i := 0; i < 64; i++ {
		tier.Put([]byte(fmt.Sprintf("object-%03d-%s", i, string(make([]byte, 100)))))
	}
	if b := tier.Bytes(); b > 4096 {
		t.Fatalf("resident bytes %d exceed the 4096 bound", b)
	}
	st := tier.Stats()
	if st.Evictions == 0 {
		t.Fatal("64 >100-byte objects under a 4 KiB bound must evict")
	}
	if st.Objects == 0 {
		t.Fatal("eviction must not empty the tier")
	}
}

func TestEvictionIsLRU(t *testing.T) {
	tier := NewTier(Options{MaxBytes: 300, Shards: 1})
	old := tier.Put(bytes.Repeat([]byte("a"), 100))
	warm := tier.Put(bytes.Repeat([]byte("b"), 100))
	if _, ok := tier.View(warm); !ok { // touch: warm is now MRU
		t.Fatal("warm object missing")
	}
	if _, ok := tier.View(old); !ok {
		t.Fatal("old object missing")
	}
	// old is MRU now; push over budget. warm (LRU) must go first.
	tier.Put(bytes.Repeat([]byte("c"), 150))
	if !tier.Contains(old) {
		t.Fatal("most-recently-viewed object evicted before the LRU one")
	}
	if tier.Contains(warm) {
		t.Fatal("LRU object survived an over-budget Put")
	}
}

func TestPinnedObjectsSurviveEviction(t *testing.T) {
	tier := NewTier(Options{MaxBytes: 250, Shards: 1})
	pinned := tier.Put(bytes.Repeat([]byte("p"), 100))
	if !tier.Pin(pinned) {
		t.Fatal("pin of resident object failed")
	}
	// Flood far past the budget; the pinned object must stay.
	for i := 0; i < 32; i++ {
		tier.Put(bytes.Repeat([]byte{byte('A' + i)}, 100))
	}
	if !tier.Contains(pinned) {
		t.Fatal("pinned object was evicted")
	}
	if st := tier.Stats(); st.Pinned != 1 {
		t.Fatalf("stats pinned = %d, want 1", st.Pinned)
	}
	tier.Unpin(pinned)
	tier.Put(bytes.Repeat([]byte("z"), 200))
	if tier.Contains(pinned) {
		t.Fatal("unpinned LRU object should now be evictable")
	}
	if tier.Pin(Sum([]byte("absent"))) {
		t.Fatal("pin of non-resident content must fail")
	}
}

func TestPutChunked(t *testing.T) {
	tier := NewTier(Options{})
	big := bytes.Repeat([]byte("0123456789abcdef"), (DefaultChunkSize/16)*2+5)
	refs := tier.PutChunked(big)
	if len(refs) != 3 {
		t.Fatalf("2-chunk-plus-tail value got %d chunks", len(refs))
	}
	var back []byte
	for _, r := range refs {
		data, ok := tier.View(r)
		if !ok {
			t.Fatal("chunk missing")
		}
		back = append(back, data...)
	}
	if !bytes.Equal(back, big) {
		t.Fatal("chunked round trip differs")
	}
	// A value sharing the first chunks dedups all but its tail.
	st0 := tier.Stats()
	tier.PutChunked(append(append([]byte(nil), big[:2*DefaultChunkSize]...), []byte("new tail")...))
	st1 := tier.Stats()
	if st1.BytesDeduped-st0.BytesDeduped != 2*DefaultChunkSize {
		t.Fatalf("shared prefix should dedup 2 chunks, deduped %d bytes",
			st1.BytesDeduped-st0.BytesDeduped)
	}
	if refs := tier.PutChunked(nil); len(refs) != 1 || refs[0].Size != 0 {
		t.Fatalf("empty value must store one empty chunk, got %v", refs)
	}
}

// TestViewZeroAlloc pins the tier's hit path at zero heap allocations —
// the same bar as the store's clean-sync fast path. This is the
// allocation-bound test the ISSUE's perf criteria require in the race
// matrix (it runs under -race via the plain test binary).
func TestViewZeroAlloc(t *testing.T) {
	tier := NewTier(Options{})
	ref := tier.Put(bytes.Repeat([]byte("x"), 4096))
	var ok bool
	allocs := testing.AllocsPerRun(200, func() {
		_, ok = tier.View(ref)
	})
	if !ok {
		t.Fatal("view missed")
	}
	if allocs != 0 {
		t.Fatalf("View allocates %.1f/op, want 0", allocs)
	}
}

func TestShardRounding(t *testing.T) {
	tier := NewTier(Options{Shards: 3})
	if len(tier.shards) != 4 {
		t.Fatalf("3 shards should round to 4, got %d", len(tier.shards))
	}
	// Budget is enforced per shard; exercise the path with many shards.
	tier = NewTier(Options{MaxBytes: 1 << 20, Shards: 64})
	for i := 0; i < 1000; i++ {
		tier.Put([]byte(fmt.Sprintf("spread-%d", i)))
	}
	if tier.Len() != 1000 {
		t.Fatalf("1000 distinct small objects under a 1 MiB bound: %d resident", tier.Len())
	}
}
