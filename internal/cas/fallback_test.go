package cas_test

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"sync"
	"testing"

	"popper/internal/cas"
	"popper/internal/store"
)

// The second-chance fallback: a tier miss consults an external
// content-addressed source (the artifact store's object pool in
// production) and re-admits verified bytes instead of reporting the
// miss — so eviction never costs a recompute for content the
// repository still proves it holds.

// flood pushes enough junk through the tier to evict every unpinned
// object (single-shard tiers only).
func flood(t *cas.Tier, budget int64) {
	var n int64
	for i := 0; n < 2*budget; i++ {
		junk := bytes.Repeat([]byte{byte(i + 1)}, 128)
		junk = append(junk, []byte(fmt.Sprintf("junk-%d", i))...)
		t.Put(junk)
		n += int64(len(junk))
	}
}

func TestFallbackRestoresEvictedObject(t *testing.T) {
	const budget = 1 << 10
	tier := cas.NewTier(cas.Options{MaxBytes: budget, Shards: 1})
	content := []byte("evicted but provable content")
	ref := tier.Put(content)
	source := map[[sha256.Size]byte][]byte{ref.Hash: content}
	tier.SetFallback(func(h [sha256.Size]byte) ([]byte, bool) {
		data, ok := source[h]
		return data, ok
	})
	flood(tier, budget)
	if tier.Contains(ref) {
		t.Fatal("flood did not evict the object")
	}
	got, ok := tier.View(ref)
	if !ok || !bytes.Equal(got, content) {
		t.Fatalf("View after eviction = %q, %v; want fallback restore", got, ok)
	}
	if !tier.Contains(ref) {
		t.Fatal("fallback hit must re-admit the object")
	}
	if st := tier.Stats(); st.FallbackHits != 1 {
		t.Fatalf("FallbackHits = %d, want 1", st.FallbackHits)
	}
}

func TestFallbackRejectsCorruptSource(t *testing.T) {
	tier := cas.NewTier(cas.Options{Shards: 1})
	ref := cas.Sum([]byte("the real content"))
	// A source that serves wrong bytes for the address must not be
	// believed — hash verification guards admission.
	tier.SetFallback(func(h [sha256.Size]byte) ([]byte, bool) {
		return []byte("corrupted content!!"), true
	})
	if _, ok := tier.View(ref); ok {
		t.Fatal("corrupt fallback bytes must not satisfy a View")
	}
	if tier.Pin(ref) {
		t.Fatal("corrupt fallback bytes must not satisfy a Pin")
	}
	if tier.Contains(ref) {
		t.Fatal("corrupt bytes must not be admitted")
	}
	if st := tier.Stats(); st.FallbackHits != 0 {
		t.Fatalf("FallbackHits = %d, want 0", st.FallbackHits)
	}
}

func TestPinViaFallbackIsEvictionSafe(t *testing.T) {
	const budget = 1 << 10
	tier := cas.NewTier(cas.Options{MaxBytes: budget, Shards: 1})
	content := []byte("pin me back in")
	ref := tier.Put(content)
	source := map[[sha256.Size]byte][]byte{ref.Hash: content}
	tier.SetFallback(func(h [sha256.Size]byte) ([]byte, bool) {
		data, ok := source[h]
		return data, ok
	})
	flood(tier, budget)
	if tier.Contains(ref) {
		t.Fatal("flood did not evict the object")
	}
	// Pin on a miss restores AND pins: a second flood cannot push the
	// object out while the pin holds.
	if !tier.Pin(ref) {
		t.Fatal("Pin must succeed via the fallback")
	}
	flood(tier, budget)
	got, ok := tier.View(ref)
	if !ok || !bytes.Equal(got, content) {
		t.Fatal("pinned fallback-admitted object was evicted")
	}
	tier.Unpin(ref)
	flood(tier, budget)
	if tier.Contains(ref) {
		t.Fatal("unpinned object must be evictable again")
	}
}

// TestStoreObjectPoolBacksTheTier folds the artifact store's objects
// into the tier lookup: content synced to the repository — packed into
// an extent (small) or loose under .popper/objects (large) — is
// restored on a tier miss through store.Object.
func TestStoreObjectPoolBacksTheTier(t *testing.T) {
	st := store.New(store.NewMemFS(1))
	small := []byte("small enough to be packed into a generation extent")
	large := bytes.Repeat([]byte("loose-object "), 1024) // > smallObjectMax
	if _, err := st.Sync(map[string][]byte{
		"exp/small.csv": small,
		"exp/large.bin": large,
	}); err != nil {
		t.Fatal(err)
	}
	const budget = 1 << 10
	tier := cas.NewTier(cas.Options{MaxBytes: budget, Shards: 1})
	tier.SetFallback(st.Object)
	for _, tc := range []struct {
		name    string
		content []byte
	}{{"packed", small}, {"loose", large}} {
		ref := cas.Sum(tc.content)
		if tier.Contains(ref) {
			t.Fatalf("%s: object resident before any admission", tc.name)
		}
		got, ok := tier.View(ref)
		if !ok || !bytes.Equal(got, tc.content) {
			t.Fatalf("%s: store-backed View failed (ok=%v)", tc.name, ok)
		}
	}
	if st := tier.Stats(); st.FallbackHits != 2 {
		t.Fatalf("FallbackHits = %d, want 2", st.FallbackHits)
	}
	// Content the store does not hold stays a miss.
	if _, ok := tier.View(cas.Sum([]byte("never synced"))); ok {
		t.Fatal("unknown content must still miss")
	}
}

// TestConcurrentFallbackAdmission races many goroutines through the
// miss path for the same address: exactly one copy is admitted, every
// caller sees the right bytes (run under -race).
func TestConcurrentFallbackAdmission(t *testing.T) {
	tier := cas.NewTier(cas.Options{Shards: 1})
	content := []byte("one admission, many readers")
	ref := cas.Sum(content)
	source := map[[sha256.Size]byte][]byte{ref.Hash: content}
	tier.SetFallback(func(h [sha256.Size]byte) ([]byte, bool) {
		data, ok := source[h]
		return data, ok
	})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 32; i++ {
		pin := i%2 == 0
		wg.Add(1)
		go func() {
			defer wg.Done()
			if pin {
				if !tier.Pin(ref) {
					errs <- fmt.Errorf("concurrent Pin failed")
					return
				}
				tier.Unpin(ref)
				return
			}
			got, ok := tier.View(ref)
			if !ok || !bytes.Equal(got, content) {
				errs <- fmt.Errorf("concurrent View failed (ok=%v)", ok)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if tier.Len() != 1 {
		t.Fatalf("resident objects = %d, want exactly 1", tier.Len())
	}
}
