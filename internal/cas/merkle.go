package cas

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Merkle is a binary hash tree over an ordered list of leaf digests —
// the store seals one per manifest generation so integrity questions
// scale logarithmically: a single artifact's membership verifies
// against the sealed root in O(log n) digest compares (Proof), and k
// corrupt leaves are localized by descending only the mismatching
// subtrees (Diff, O(k log n) node compares) instead of re-hashing
// every object in the repository.
//
// The tree shape is the canonical pairwise reduction with odd-node
// promotion: level k+1 pairs level k's nodes left to right; a trailing
// unpaired node is promoted unchanged. Interior nodes are domain
// separated from leaves so a leaf can never masquerade as a subtree.
type Merkle struct {
	// Gen is the manifest generation the tree seals.
	Gen int
	// levels[0] holds the leaf digests; each higher level halves (odd
	// nodes promote); the top level is the single root.
	levels [][][sha256.Size]byte
}

// merkleMagic heads the serialized sidecar (.popper/merkle).
const merkleMagic = "popper-merkle v1\n"

// merkleNodePrefix domain-separates interior nodes from leaf digests.
var merkleNodePrefix = []byte("popper-merkle-node\x00")

// merkleEmptyRoot is the root of a tree with no leaves (an empty
// manifest still seals a well-defined root).
var merkleEmptyRoot = sha256.Sum256([]byte("popper-merkle-empty"))

// merkleNode combines two child digests into their parent.
func merkleNode(left, right [sha256.Size]byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write(merkleNodePrefix)
	h.Write(left[:])
	h.Write(right[:])
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// BuildMerkle constructs the tree over the leaf digests, in order.
func BuildMerkle(gen int, leaves [][sha256.Size]byte) *Merkle {
	m := &Merkle{Gen: gen}
	level := append([][sha256.Size]byte(nil), leaves...)
	m.levels = append(m.levels, level)
	for len(level) > 1 {
		next := make([][sha256.Size]byte, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, merkleNode(level[i], level[i+1]))
			} else {
				next = append(next, level[i]) // odd node promotes unchanged
			}
		}
		m.levels = append(m.levels, next)
		level = next
	}
	return m
}

// Len returns the leaf count.
func (m *Merkle) Len() int { return len(m.levels[0]) }

// Leaf returns leaf digest i.
func (m *Merkle) Leaf(i int) [sha256.Size]byte { return m.levels[0][i] }

// Root returns the tree's root digest.
func (m *Merkle) Root() [sha256.Size]byte {
	if m.Len() == 0 {
		return merkleEmptyRoot
	}
	return m.levels[len(m.levels)-1][0]
}

// Diff returns the leaf indexes where the two trees disagree, plus the
// number of node compares spent finding them — the observable that
// proves localization is logarithmic, not linear. Equal roots cost one
// compare. Trees of different leaf counts differ structurally; every
// leaf index of the receiver is reported.
func (m *Merkle) Diff(o *Merkle) (diff []int, compares int) {
	if m.Len() != o.Len() {
		for i := 0; i < m.Len(); i++ {
			diff = append(diff, i)
		}
		return diff, 1
	}
	if m.Len() == 0 {
		return nil, 1
	}
	var walk func(level, idx int)
	walk = func(level, idx int) {
		compares++
		if m.levels[level][idx] == o.levels[level][idx] {
			return
		}
		if level == 0 {
			diff = append(diff, idx)
			return
		}
		child := 2 * idx
		walk(level-1, child)
		if child+1 < len(m.levels[level-1]) {
			walk(level-1, child+1)
		}
	}
	walk(len(m.levels)-1, 0)
	return diff, compares
}

// Proof returns the sibling path proving leaf i's membership under the
// root: one digest per level where the node has a sibling (promoted
// odd nodes contribute none).
func (m *Merkle) Proof(i int) [][sha256.Size]byte {
	var proof [][sha256.Size]byte
	for level := 0; level < len(m.levels)-1; level++ {
		sib := i ^ 1
		if sib < len(m.levels[level]) {
			proof = append(proof, m.levels[level][sib])
		}
		i /= 2
	}
	return proof
}

// VerifyMerkleProof checks that leaf digest `leaf` sits at index i of
// an n-leaf tree with the given root, consuming the sibling path in
// O(log n) digest operations.
func VerifyMerkleProof(root [sha256.Size]byte, n, i int, leaf [sha256.Size]byte, proof [][sha256.Size]byte) bool {
	if i < 0 || i >= n {
		return false
	}
	cur, used := leaf, 0
	for size := n; size > 1; size = (size + 1) / 2 {
		sib := i ^ 1
		if sib < size {
			if used >= len(proof) {
				return false
			}
			if i&1 == 0 {
				cur = merkleNode(cur, proof[used])
			} else {
				cur = merkleNode(proof[used], cur)
			}
			used++
		}
		i /= 2
	}
	return used == len(proof) && cur == root
}

// Encode serializes the tree: magic, generation, leaf count, the leaf
// digests, the root, and a whole-image checksum. The root is stored
// redundantly on purpose — the decoder recomputes the tree from the
// leaves and refuses an image whose sealed root does not match, so a
// rotted sidecar fails loudly instead of vouching for the wrong tree.
func (m *Merkle) Encode() []byte {
	var b bytes.Buffer
	b.WriteString(merkleMagic)
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(m.Gen))
	binary.BigEndian.PutUint32(hdr[4:8], uint32(m.Len()))
	b.Write(hdr[:])
	for _, leaf := range m.levels[0] {
		b.Write(leaf[:])
	}
	root := m.Root()
	b.Write(root[:])
	sum := sha256.Sum256(b.Bytes())
	b.Write(sum[:])
	return b.Bytes()
}

// ParseMerkle decodes and verifies a sealed tree image: magic, exact
// framing, whole-image checksum, and the recomputed root against the
// stored one. Any failure is an error — a damaged sidecar must never
// parse into a tree that then testifies about repository health.
func ParseMerkle(raw []byte) (*Merkle, error) {
	if len(raw) < len(merkleMagic)+8+2*sha256.Size {
		return nil, fmt.Errorf("cas: merkle image too short (%d bytes)", len(raw))
	}
	if string(raw[:len(merkleMagic)]) != merkleMagic {
		return nil, fmt.Errorf("cas: not a merkle image (bad magic)")
	}
	body, sum := raw[:len(raw)-sha256.Size], raw[len(raw)-sha256.Size:]
	if got := sha256.Sum256(body); !bytes.Equal(got[:], sum) {
		return nil, fmt.Errorf("cas: merkle image checksum mismatch")
	}
	off := len(merkleMagic)
	gen := int(binary.BigEndian.Uint32(body[off : off+4]))
	n := int(binary.BigEndian.Uint32(body[off+4 : off+8]))
	off += 8
	if want := off + n*sha256.Size + sha256.Size; want != len(body) {
		return nil, fmt.Errorf("cas: merkle image frames %d leaves but holds %d bytes, want %d", n, len(body), want)
	}
	leaves := make([][sha256.Size]byte, n)
	for i := range leaves {
		copy(leaves[i][:], body[off:off+sha256.Size])
		off += sha256.Size
	}
	var storedRoot [sha256.Size]byte
	copy(storedRoot[:], body[off:])
	m := BuildMerkle(gen, leaves)
	if m.Root() != storedRoot {
		return nil, fmt.Errorf("cas: merkle root mismatch (leaves do not reduce to the sealed root)")
	}
	return m, nil
}
