package cas

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"testing"

	"popper/internal/fault"
)

// Fuzz targets for the two decoders that sit directly under silent
// corruption: the extent parser/salvager and the merkle-seal parser.
// The corpus is seeded with pristine images plus the same seeded
// bit-rot the crash and rot matrices inject (fault.CorruptBytes with
// the matrix seeds), so the fuzzer starts from realistic damage.

var fuzzRotSeeds = []int64{42, 7, 1337}

func fuzzExtentImages() [][]byte {
	images := [][]byte{
		EncodeExtent(nil),
		EncodeExtent([][]byte{[]byte("a")}),
		EncodeExtent([][]byte{
			[]byte("config,status\n001,ok\n"),
			bytes.Repeat([]byte("x"), 4096),
			{},
			[]byte("metadata: {trial: 3}\n"),
		}),
	}
	var out [][]byte
	for i, img := range images {
		out = append(out, img)
		for _, seed := range fuzzRotSeeds {
			for round := 1; round <= 3; round++ {
				rotted, _ := fault.CorruptBytes(seed, fmt.Sprintf("fuzz-extent-%d", i), round, img)
				out = append(out, rotted)
			}
		}
	}
	return out
}

func fuzzMerkleImages() [][]byte {
	var images [][]byte
	for _, n := range []int{0, 1, 5, 64} {
		leaves := make([][sha256.Size]byte, n)
		for i := range leaves {
			leaves[i] = sha256.Sum256([]byte(fmt.Sprintf("fuzz-leaf-%d", i)))
		}
		images = append(images, BuildMerkle(n+1, leaves).Encode())
	}
	var out [][]byte
	for i, img := range images {
		out = append(out, img)
		for _, seed := range fuzzRotSeeds {
			for round := 1; round <= 3; round++ {
				rotted, _ := fault.CorruptBytes(seed, fmt.Sprintf("fuzz-merkle-%d", i), round, img)
				out = append(out, rotted)
			}
		}
	}
	return out
}

// checkRecords asserts the parser's core safety property: every record
// it vouches for must sit inside the image and digest-verify. A decoder
// that hands back unverified bytes would launder rot into the object
// pool.
func checkRecords(t *testing.T, raw []byte, recs []ExtentRecord, who string) {
	t.Helper()
	for i, r := range recs {
		if r.Offset < 0 || r.Size < 0 || r.Offset+r.Size > int64(len(raw)) {
			t.Fatalf("%s: record %d out of range: off %d size %d len %d", who, i, r.Offset, r.Size, len(raw))
		}
		if sha256.Sum256(raw[r.Offset:r.Offset+r.Size]) != r.Hash {
			t.Fatalf("%s: record %d payload does not match its digest", who, i)
		}
	}
}

func FuzzParseExtent(f *testing.F) {
	for _, img := range fuzzExtentImages() {
		f.Add(img)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		recs, err := ParseExtent(raw)
		if err != nil {
			return
		}
		// Accepted images are fully verified and canonically re-encodable.
		checkRecords(t, raw, recs, "parse")
		blobs := make([][]byte, len(recs))
		for i, r := range recs {
			blobs[i] = raw[r.Offset : r.Offset+r.Size]
		}
		recs2, err := ParseExtent(EncodeExtent(blobs))
		if err != nil || len(recs2) != len(recs) {
			t.Fatalf("re-encode of accepted extent does not round-trip: %v (%d/%d records)", err, len(recs2), len(recs))
		}
	})
}

func FuzzSalvageExtent(f *testing.F) {
	for _, img := range fuzzExtentImages() {
		f.Add(img)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		recs := SalvageExtent(raw)
		checkRecords(t, raw, recs, "salvage")
		// Salvage never does worse than the strict parser: anything the
		// parser accepts whole, the salvager recovers whole.
		if parsed, err := ParseExtent(raw); err == nil && len(recs) < len(parsed) {
			t.Fatalf("salvage recovered %d records from a pristine extent of %d", len(recs), len(parsed))
		}
	})
}

func FuzzParseMerkle(f *testing.F) {
	for _, img := range fuzzMerkleImages() {
		f.Add(img)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := ParseMerkle(raw)
		if err != nil {
			return
		}
		// Accepted seals are internally consistent: the stored root must
		// equal the root recomputed from the leaves, and the encoding is
		// canonical.
		leaves := make([][sha256.Size]byte, m.Len())
		for i := range leaves {
			leaves[i] = m.Leaf(i)
		}
		if BuildMerkle(m.Gen, leaves).Root() != m.Root() {
			t.Fatal("accepted seal's root does not reduce from its leaves")
		}
		again, err := ParseMerkle(m.Encode())
		if err != nil || again.Root() != m.Root() || again.Gen != m.Gen {
			t.Fatalf("accepted seal does not round-trip: %v", err)
		}
	})
}
