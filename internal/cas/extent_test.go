package cas

import (
	"bytes"
	"fmt"
	"testing"
)

func extentBlobs() [][]byte {
	return [][]byte{
		[]byte("metric,value\nthroughput,812\n"),
		[]byte("config,status\n001,ok\n"),
		{}, // empty payloads must round-trip too
		bytes.Repeat([]byte("log line\n"), 100),
	}
}

func TestExtentEncodeParseRoundTrip(t *testing.T) {
	blobs := extentBlobs()
	raw := EncodeExtent(blobs)
	if !IsExtent(raw) {
		t.Fatal("encoded extent fails IsExtent")
	}
	recs, err := ParseExtent(raw)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(recs) != len(blobs) {
		t.Fatalf("got %d records, want %d", len(recs), len(blobs))
	}
	for i, r := range recs {
		payload := raw[r.Offset : r.Offset+r.Size]
		if !bytes.Equal(payload, blobs[i]) {
			t.Fatalf("record %d payload differs: %q", i, payload)
		}
		if Sum(blobs[i]).Hash != r.Hash {
			t.Fatalf("record %d hash mismatch", i)
		}
	}
}

func TestExtentEmptyRoundTrip(t *testing.T) {
	raw := EncodeExtent(nil)
	recs, err := ParseExtent(raw)
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty extent: %v, %d records", err, len(recs))
	}
}

func TestExtentDetectsCorruption(t *testing.T) {
	raw := EncodeExtent(extentBlobs())
	for _, flip := range []int{len(extentMagic) + 3, len(raw) / 2, len(raw) - 2} {
		mut := append([]byte(nil), raw...)
		mut[flip]++
		if _, err := ParseExtent(mut); err == nil {
			t.Fatalf("byte flip at %d must not parse", flip)
		}
	}
	if _, err := ParseExtent(raw[:len(raw)-10]); err == nil {
		t.Fatal("torn extent must not parse")
	}
	if _, err := ParseExtent([]byte("not an extent at all")); err == nil {
		t.Fatal("non-extent must not parse")
	}
}

func TestExtentSalvage(t *testing.T) {
	blobs := extentBlobs()
	raw := EncodeExtent(blobs)
	full, err := ParseExtent(raw)
	if err != nil {
		t.Fatal(err)
	}

	// Torn mid-way through the last payload: everything before it
	// salvages.
	cut := full[len(full)-1].Offset + full[len(full)-1].Size/2
	recs := SalvageExtent(raw[:cut])
	if len(recs) != len(blobs)-1 {
		t.Fatalf("torn extent salvaged %d records, want %d", len(recs), len(blobs)-1)
	}
	for i, r := range recs {
		if !bytes.Equal(raw[r.Offset:r.Offset+r.Size], blobs[i]) {
			t.Fatalf("salvaged record %d differs", i)
		}
	}

	// An intact image salvages everything (index region ends the walk).
	if recs := SalvageExtent(raw); len(recs) != len(blobs) {
		t.Fatalf("intact image salvaged %d, want %d", len(recs), len(blobs))
	}

	// A corrupted payload ends the salvage at the damage.
	mut := append([]byte(nil), raw...)
	mut[full[1].Offset]++
	if recs := SalvageExtent(mut); len(recs) != 1 {
		t.Fatalf("corruption in record 1 should salvage exactly record 0, got %d", len(recs))
	}

	if SalvageExtent([]byte("junk")) != nil {
		t.Fatal("non-extent must salvage nothing")
	}
}

func TestExtentSalvageScalesToManyRecords(t *testing.T) {
	var blobs [][]byte
	for i := 0; i < 200; i++ {
		blobs = append(blobs, []byte(fmt.Sprintf("artifact %d\n", i)))
	}
	raw := EncodeExtent(blobs)
	// Tear at every prefix boundary of the header region of record 100.
	base, _ := ParseExtent(raw)
	for _, cut := range []int64{base[100].Offset - 40 + 1, base[100].Offset - 1, base[100].Offset + 2} {
		recs := SalvageExtent(raw[:cut])
		if len(recs) != 100 {
			t.Fatalf("cut %d: salvaged %d, want 100", cut, len(recs))
		}
	}
}
