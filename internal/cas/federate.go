package cas

import (
	"crypto/sha256"
	"fmt"
	"math"
	"sync"

	"popper/internal/cluster"
	"popper/internal/gasnet"
)

// Federation is the peer-to-peer layer of the tier: a per-host index
// of which hosts hold which cache entries, with object transfer over
// the gasnet vectored RDMA path. Before a cache miss triggers
// recompute, the consumer asks the federation whether a peer already
// holds the entry; if so, the bytes move from the cheapest peer per
// the same alpha-beta (latency + size/bandwidth) cost model the
// scheduler uses for placement, and the transfer is charged to the
// caller's virtual clock. Everything the federation does is
// accounting and byte movement over content-addressed data — it never
// changes what a replayed entry contains, which is the determinism
// argument (docs/CACHE.md): sweep artifacts stay byte-identical
// whether an entry was computed locally, fetched from a peer, or
// recomputed.
type Federation struct {
	tier     *Tier
	world    *gasnet.World
	profiles []*cluster.MachineProfile

	mu      sync.Mutex
	entries map[[sha256.Size]byte]*fedEntry
	cursor  []int64                             // per-host segment allocation cursor
	segAddr []map[[sha256.Size]byte]gasnet.Addr // per-host chunk hash → segment address

	publishes    int64
	localHits    int64
	remoteFetch  int64
	misses       int64
	remoteBytes  int64
	fetchSeconds float64
}

// fedHolder records that one host holds an entry, with the segment
// addresses of its chunks on that host.
type fedHolder struct {
	host  int
	addrs []gasnet.Addr
}

// fedEntry is the federation's view of one cache entry: its chunk refs
// and the hosts that hold it.
type fedEntry struct {
	refs    []Ref
	size    int64
	holders []fedHolder
}

// NewFederation binds a tier to a gasnet world. profiles[r] is the
// machine profile of rank r (used by the transfer cost model); every
// rank must have an attached segment, which models the host-local
// cache memory chunks are published into.
func NewFederation(tier *Tier, world *gasnet.World, profiles []*cluster.MachineProfile) (*Federation, error) {
	if tier == nil || world == nil {
		return nil, fmt.Errorf("cas: federation needs a tier and a world")
	}
	if len(profiles) != world.Size() {
		return nil, fmt.Errorf("cas: %d profiles for %d ranks", len(profiles), world.Size())
	}
	f := &Federation{
		tier:     tier,
		world:    world,
		profiles: profiles,
		entries:  make(map[[sha256.Size]byte]*fedEntry),
		cursor:   make([]int64, world.Size()),
		segAddr:  make([]map[[sha256.Size]byte]gasnet.Addr, world.Size()),
	}
	for r := 0; r < world.Size(); r++ {
		if world.SegmentSize(r) == 0 {
			return nil, fmt.Errorf("cas: rank %d has no attached segment", r)
		}
		f.segAddr[r] = make(map[[sha256.Size]byte]gasnet.Addr)
	}
	return f, nil
}

// Size returns the number of federated hosts.
func (f *Federation) Size() int { return f.world.Size() }

// transferCost mirrors cluster.Network.RDMACost / sched.hostCost: a
// host reading its own copy pays memory bandwidth; a peer transfer
// pays round-trip NIC latency plus size over the bottleneck bandwidth.
func (f *Federation) transferCost(caller, holder int, bytes int64) float64 {
	a, b := f.profiles[caller], f.profiles[holder]
	if caller == holder {
		return float64(bytes) / a.MemBWBps
	}
	return 2*(a.NICLatS+b.NICLatS) + float64(bytes)/math.Min(a.NICBWBps, b.NICBWBps)
}

// allocLocked reserves segment space on host for one chunk, reusing
// the address if the host's segment already has that chunk (segment
// space dedups by content just like the tier). Returns false when the
// segment is full. Caller holds f.mu.
func (f *Federation) allocLocked(host int, ref Ref) (gasnet.Addr, bool, bool) {
	if addr, ok := f.segAddr[host][ref.Hash]; ok {
		return addr, false, true
	}
	size := ref.Size
	if size == 0 {
		size = 1 // zero-size chunks still need a distinct address
	}
	if f.cursor[host]+size > f.world.SegmentSize(host) {
		return gasnet.Addr{}, false, false
	}
	addr := gasnet.Addr{Rank: host, Offset: f.cursor[host]}
	f.cursor[host] += size
	f.segAddr[host][ref.Hash] = addr
	return addr, true, true
}

// Publish records that host now holds the entry key with the given
// chunk refs, writing any chunks not yet in the host's segment. The
// chunk bytes must be resident in the tier; if any have been evicted
// (or the segment is full) the publish is skipped — the entry simply
// stays unavailable for peer fetch, never wrong.
func (f *Federation) Publish(host int, key [sha256.Size]byte, refs []Ref) error {
	if host < 0 || host >= f.world.Size() {
		return fmt.Errorf("cas: publish from host %d of %d", host, f.world.Size())
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	ent, ok := f.entries[key]
	if ok {
		for _, h := range ent.holders {
			if h.host == host {
				return nil // already published here
			}
		}
	}
	addrs := make([]gasnet.Addr, len(refs))
	var writeAddrs []gasnet.Addr
	var writeBufs [][]byte
	var size int64
	for i, ref := range refs {
		data, resident := f.tier.View(ref)
		if !resident {
			return nil // evicted under us: skip, peer fetch just misses
		}
		addr, fresh, fits := f.allocLocked(host, ref)
		if !fits {
			return nil // segment full: this host can't serve the entry
		}
		addrs[i] = addr
		size += ref.Size
		if fresh {
			writeAddrs = append(writeAddrs, addr)
			writeBufs = append(writeBufs, data)
		}
	}
	if len(writeAddrs) > 0 {
		// Writing into the host's own segment is a local (memory
		// bandwidth) charge on the host's clock.
		if _, err := f.world.Putv(host, writeAddrs, writeBufs); err != nil {
			return fmt.Errorf("cas: publish to host %d: %w", host, err)
		}
	}
	if !ok {
		ent = &fedEntry{refs: append([]Ref(nil), refs...), size: size}
		f.entries[key] = ent
	}
	ent.holders = append(ent.holders, fedHolder{host: host, addrs: addrs})
	f.publishes++
	return nil
}

// FetchKind classifies a Fetch outcome.
type FetchKind int

const (
	// FetchMiss: no federated holder; the caller falls back to its
	// local entry or recompute.
	FetchMiss FetchKind = iota
	// FetchLocal: the caller itself holds the entry; cost is a local
	// memory read.
	FetchLocal
	// FetchRemote: the entry moved from the cheapest peer over gasnet.
	FetchRemote
)

func (k FetchKind) String() string {
	switch k {
	case FetchLocal:
		return "local"
	case FetchRemote:
		return "remote"
	default:
		return "miss"
	}
}

// FetchResult describes where an entry came from and what it cost.
type FetchResult struct {
	Kind  FetchKind
	From  int     // serving host (meaningless on miss)
	Cost  float64 // virtual seconds charged to the caller
	Bytes int64
}

// Fetch locates entry key for caller. On a remote hit the chunk bytes
// move over the gasnet vectored path from the cheapest holder (ties
// break toward the lowest host index, so the choice is deterministic
// for a given holder set), are verified against their digests,
// re-inserted into the tier, and the caller becomes a holder. The
// caller's virtual clock is advanced by the transfer cost in every
// non-miss case.
func (f *Federation) Fetch(caller int, key [sha256.Size]byte) (FetchResult, error) {
	if caller < 0 || caller >= f.world.Size() {
		return FetchResult{}, fmt.Errorf("cas: fetch from host %d of %d", caller, f.world.Size())
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	ent, ok := f.entries[key]
	if !ok || len(ent.holders) == 0 {
		f.misses++
		return FetchResult{Kind: FetchMiss}, nil
	}
	// Caller already holds it: local memory read.
	for _, h := range ent.holders {
		if h.host == caller {
			cost := f.transferCost(caller, caller, ent.size)
			if node, err := f.world.Node(caller); err == nil {
				node.Advance(cost)
			}
			f.localHits++
			return FetchResult{Kind: FetchLocal, From: caller, Cost: cost, Bytes: ent.size}, nil
		}
	}
	// Cheapest peer under the alpha-beta model, lowest index on ties.
	best := ent.holders[0]
	bestCost := f.transferCost(caller, best.host, ent.size)
	for _, h := range ent.holders[1:] {
		if c := f.transferCost(caller, h.host, ent.size); c < bestCost ||
			(c == bestCost && h.host < best.host) {
			best, bestCost = h, c
		}
	}
	bufs := make([][]byte, len(ent.refs))
	for i, ref := range ent.refs {
		bufs[i] = make([]byte, ref.Size)
	}
	cost, err := f.world.Getv(caller, best.addrs, bufs)
	if err != nil {
		return FetchResult{}, fmt.Errorf("cas: fetch %x from host %d: %w", key[:4], best.host, err)
	}
	for i, ref := range ent.refs {
		if Sum(bufs[i]) != ref {
			return FetchResult{}, fmt.Errorf("cas: fetch %x: chunk %d digest mismatch from host %d",
				key[:4], i, best.host)
		}
		f.tier.Put(bufs[i]) // re-warm the shared tier with the verified bytes
	}
	f.remoteFetch++
	f.remoteBytes += ent.size
	f.fetchSeconds += cost
	// The caller now holds the entry: register it (local segment copy).
	addrs := make([]gasnet.Addr, len(ent.refs))
	var writeAddrs []gasnet.Addr
	var writeBufs [][]byte
	complete := true
	for i, ref := range ent.refs {
		addr, fresh, fits := f.allocLocked(caller, ref)
		if !fits {
			complete = false
			break
		}
		addrs[i] = addr
		if fresh {
			writeAddrs = append(writeAddrs, addr)
			writeBufs = append(writeBufs, bufs[i])
		}
	}
	if complete {
		if len(writeAddrs) > 0 {
			if _, err := f.world.Putv(caller, writeAddrs, writeBufs); err != nil {
				return FetchResult{}, fmt.Errorf("cas: caching fetch on host %d: %w", caller, err)
			}
		}
		ent.holders = append(ent.holders, fedHolder{host: caller, addrs: addrs})
	}
	return FetchResult{Kind: FetchRemote, From: best.host, Cost: cost, Bytes: ent.size}, nil
}

// FetchBlob is Fetch plus reassembly of the entry's chunk stream into
// one buffer read from the tier — the test-facing convenience for
// proving transfer fidelity.
func (f *Federation) FetchBlob(caller int, key [sha256.Size]byte) ([]byte, FetchResult, error) {
	res, err := f.Fetch(caller, key)
	if err != nil || res.Kind == FetchMiss {
		return nil, res, err
	}
	f.mu.Lock()
	ent := f.entries[key]
	f.mu.Unlock()
	var out []byte
	for _, ref := range ent.refs {
		data, ok := f.tier.View(ref)
		if !ok {
			return nil, res, fmt.Errorf("cas: chunk evicted between fetch and read")
		}
		out = append(out, data...)
	}
	return out, res, nil
}

// Present reports whether host holds entry key.
func (f *Federation) Present(host int, key [sha256.Size]byte) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	ent, ok := f.entries[key]
	if !ok {
		return false
	}
	for _, h := range ent.holders {
		if h.host == host {
			return true
		}
	}
	return false
}

// Forget drops an entry from the index (the stage cache calls this
// when it invalidates an entry whose chunks were evicted).
func (f *Federation) Forget(key [sha256.Size]byte) {
	f.mu.Lock()
	delete(f.entries, key)
	f.mu.Unlock()
}

// FedStats is a point-in-time aggregate of federation activity.
type FedStats struct {
	Publishes     int64
	LocalHits     int64
	RemoteFetches int64
	Misses        int64
	RemoteBytes   int64
	FetchSeconds  float64
	SegmentBytes  int64 // segment space allocated across hosts
}

// Stats sums the federation counters.
func (f *Federation) Stats() FedStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FedStats{
		Publishes:     f.publishes,
		LocalHits:     f.localHits,
		RemoteFetches: f.remoteFetch,
		Misses:        f.misses,
		RemoteBytes:   f.remoteBytes,
		FetchSeconds:  f.fetchSeconds,
	}
	for _, c := range f.cursor {
		st.SegmentBytes += c
	}
	return st
}
