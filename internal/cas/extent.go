package cas

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// Extents pack many small objects into one append-only blob — the
// ChubaoFS blob-store/extent-store split. A repo full of tiny
// artifacts (results.csv, goldens, journals) costs one file instead of
// hundreds, and the artifact store can fsync one extent per generation
// instead of one file per object.
//
// Layout (all sections in one byte stream):
//
//	popper-extent v1\n
//	<record>*            each: 8-byte big-endian payload size,
//	                     32-byte SHA-256 of the payload, payload bytes
//	popper-extent-index <n>\n
//	<hex hash> <payload offset> <size>\n   × n
//	popper-extent-footer <index offset> <hex sha256 of everything above>\n
//
// The trailing checksum makes torn writes detectable (like the
// manifest), and because every record carries its own digest, a torn
// extent is still partially salvageable: records are walked from the
// front and every payload that matches its digest is recovered
// (SalvageExtent). That is what lets store.Repair treat a torn extent
// like a set of loose objects instead of losing all of them.

const (
	extentMagic       = "popper-extent v1\n"
	extentIndexPrefix = "popper-extent-index "
	extentFooterWord  = "popper-extent-footer"
)

// ExtentRecord locates one object inside an extent: Offset is where
// the payload starts in the raw extent bytes.
type ExtentRecord struct {
	Hash   [sha256.Size]byte
	Offset int64
	Size   int64
}

// EncodeExtent packs blobs into one extent image. Order is preserved;
// duplicate content is the caller's concern (the store never packs the
// same hash twice).
func EncodeExtent(blobs [][]byte) []byte {
	var buf bytes.Buffer
	buf.WriteString(extentMagic)
	recs := make([]ExtentRecord, 0, len(blobs))
	var hdr [8]byte
	for _, b := range blobs {
		binary.BigEndian.PutUint64(hdr[:], uint64(len(b)))
		buf.Write(hdr[:])
		h := sha256.Sum256(b)
		buf.Write(h[:])
		recs = append(recs, ExtentRecord{Hash: h, Offset: int64(buf.Len()), Size: int64(len(b))})
		buf.Write(b)
	}
	indexOff := buf.Len()
	fmt.Fprintf(&buf, "%s%d\n", extentIndexPrefix, len(recs))
	for _, r := range recs {
		fmt.Fprintf(&buf, "%s %d %d\n", hex.EncodeToString(r.Hash[:]), r.Offset, r.Size)
	}
	sum := sha256.Sum256(buf.Bytes())
	fmt.Fprintf(&buf, "%s %d %s\n", extentFooterWord, indexOff, hex.EncodeToString(sum[:]))
	return buf.Bytes()
}

// ParseExtent decodes an intact extent via its footer and index,
// verifying the whole-image checksum. A torn or corrupted extent
// returns an error; use SalvageExtent to recover what survives.
func ParseExtent(raw []byte) ([]ExtentRecord, error) {
	if !bytes.HasPrefix(raw, []byte(extentMagic)) {
		return nil, fmt.Errorf("cas: not an extent (bad magic)")
	}
	if len(raw) == 0 || raw[len(raw)-1] != '\n' {
		return nil, fmt.Errorf("cas: extent truncated (no trailing newline)")
	}
	// The footer is the final line.
	body := raw[:len(raw)-1]
	nl := bytes.LastIndexByte(body, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("cas: extent truncated (no footer line)")
	}
	footerStart := nl + 1
	fields := strings.Fields(string(body[footerStart:]))
	if len(fields) != 3 || fields[0] != extentFooterWord {
		return nil, fmt.Errorf("cas: extent footer malformed")
	}
	indexOff, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || indexOff < int64(len(extentMagic)) || indexOff >= int64(footerStart) {
		return nil, fmt.Errorf("cas: extent footer index offset invalid")
	}
	wantSum, err := hex.DecodeString(fields[2])
	if err != nil || len(wantSum) != sha256.Size {
		return nil, fmt.Errorf("cas: extent footer checksum malformed")
	}
	if sum := sha256.Sum256(raw[:footerStart]); !bytes.Equal(sum[:], wantSum) {
		return nil, fmt.Errorf("cas: extent checksum mismatch")
	}
	// Checksum proves the index region intact; parse it.
	index := raw[indexOff:footerStart]
	nl = bytes.IndexByte(index, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("cas: extent index header missing")
	}
	header := string(index[:nl])
	if !strings.HasPrefix(header, strings.TrimSpace(extentIndexPrefix)) {
		return nil, fmt.Errorf("cas: extent index header malformed")
	}
	n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(header, strings.TrimSpace(extentIndexPrefix))))
	if err != nil || n < 0 {
		return nil, fmt.Errorf("cas: extent index count malformed")
	}
	lines := strings.Split(strings.TrimSuffix(string(index[nl+1:]), "\n"), "\n")
	if n == 0 && len(lines) == 1 && lines[0] == "" {
		lines = nil
	}
	if len(lines) != n {
		return nil, fmt.Errorf("cas: extent index has %d entries, header says %d", len(lines), n)
	}
	recs := make([]ExtentRecord, 0, n)
	for _, line := range lines {
		f := strings.Fields(line)
		if len(f) != 3 {
			return nil, fmt.Errorf("cas: extent index entry malformed: %q", line)
		}
		hb, err := hex.DecodeString(f[0])
		if err != nil || len(hb) != sha256.Size {
			return nil, fmt.Errorf("cas: extent index hash malformed: %q", f[0])
		}
		off, err1 := strconv.ParseInt(f[1], 10, 64)
		size, err2 := strconv.ParseInt(f[2], 10, 64)
		if err1 != nil || err2 != nil || off < 0 || size < 0 || off+size > indexOff {
			return nil, fmt.Errorf("cas: extent index entry out of range: %q", line)
		}
		var r ExtentRecord
		copy(r.Hash[:], hb)
		r.Offset, r.Size = off, size
		recs = append(recs, r)
	}
	return recs, nil
}

// SalvageExtent walks a (possibly torn) extent's record stream from
// the front and returns every record whose payload verifies against
// its embedded digest, stopping at the first record that does not.
// Returns nil if the image is not an extent at all.
func SalvageExtent(raw []byte) []ExtentRecord {
	if !bytes.HasPrefix(raw, []byte(extentMagic)) {
		return nil
	}
	var recs []ExtentRecord
	pos := int64(len(extentMagic))
	for {
		rest := raw[pos:]
		if len(rest) == 0 || bytes.HasPrefix(rest, []byte(extentIndexPrefix)) {
			return recs // clean end of the record region
		}
		if int64(len(rest)) < 8+sha256.Size {
			return recs // torn mid-header
		}
		size := int64(binary.BigEndian.Uint64(rest[:8]))
		payloadStart := pos + 8 + sha256.Size
		if size < 0 || payloadStart+size > int64(len(raw)) {
			return recs // torn mid-payload
		}
		var want [sha256.Size]byte
		copy(want[:], rest[8:8+sha256.Size])
		payload := raw[payloadStart : payloadStart+size]
		if sha256.Sum256(payload) != want {
			return recs // corrupted payload; nothing after it is trustworthy
		}
		recs = append(recs, ExtentRecord{Hash: want, Offset: payloadStart, Size: size})
		pos = payloadStart + size
	}
}

// IsExtent reports whether raw begins with the extent magic — enough
// to classify a damaged image as a torn extent rather than debris.
func IsExtent(raw []byte) bool {
	return bytes.HasPrefix(raw, []byte(extentMagic))
}
