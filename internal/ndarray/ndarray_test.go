package ndarray

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func sample(t *testing.T) *Array {
	t.Helper()
	a, err := New([]string{"time", "lat", "lon"}, map[string][]float64{
		"time": {0, 1, 2, 3},
		"lat":  {-30, 0, 30},
		"lon":  {0, 90, 180, 270},
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Fill(func(idx []int) float64 {
		return float64(idx[0]*100 + idx[1]*10 + idx[2])
	})
	return a
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		dims   []string
		coords map[string][]float64
	}{
		{nil, nil},
		{[]string{"x"}, map[string][]float64{}},
		{[]string{"x"}, map[string][]float64{"x": {}}},
		{[]string{"x", "x"}, map[string][]float64{"x": {1}}},
		{[]string{""}, map[string][]float64{"": {1}}},
	}
	for i, c := range cases {
		if _, err := New(c.dims, c.coords); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestShapeAndSize(t *testing.T) {
	a := sample(t)
	if got := a.Shape(); got[0] != 4 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("shape = %v", got)
	}
	if a.Size() != 48 {
		t.Fatalf("size = %d", a.Size())
	}
	dims := a.Dims()
	if len(dims) != 3 || dims[0] != "time" {
		t.Fatalf("dims = %v", dims)
	}
	c, err := a.Coords("lat")
	if err != nil || len(c) != 3 || c[2] != 30 {
		t.Fatalf("coords = %v, %v", c, err)
	}
	if _, err := a.Coords("ghost"); err == nil {
		t.Fatal("unknown dim must fail")
	}
}

func TestAtSet(t *testing.T) {
	a := sample(t)
	v, err := a.At(2, 1, 3)
	if err != nil || v != 213 {
		t.Fatalf("At = %v, %v", v, err)
	}
	if err := a.Set(-1, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	v, _ = a.At(0, 0, 0)
	if v != -1 {
		t.Fatalf("Set failed: %v", v)
	}
	if _, err := a.At(0, 0); err == nil {
		t.Fatal("wrong arity must fail")
	}
	if _, err := a.At(0, 5, 0); err == nil {
		t.Fatal("out of range must fail")
	}
	if err := a.Set(0, 9, 0, 0); err == nil {
		t.Fatal("out of range set must fail")
	}
}

func TestSel(t *testing.T) {
	a := sample(t)
	eq, err := a.Sel("lat", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := eq.Shape(); len(got) != 2 || got[0] != 4 || got[1] != 4 {
		t.Fatalf("shape after sel = %v", got)
	}
	v, _ := eq.At(2, 3)
	if v != 213 { // time=2, lat index 1 (=0 deg), lon=3
		t.Fatalf("sel value = %v", v)
	}
	if _, err := a.Sel("lat", 45); err == nil {
		t.Fatal("missing coordinate must fail")
	}
	if _, err := a.Sel("ghost", 0); err == nil {
		t.Fatal("missing dim must fail")
	}
}

func TestISel(t *testing.T) {
	a := sample(t)
	s, err := a.ISel("time", 3)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := s.At(2, 1)
	if v != 321 {
		t.Fatalf("isel value = %v", v)
	}
	if _, err := a.ISel("time", 9); err == nil {
		t.Fatal("out of range must fail")
	}
}

func TestSelTo1D(t *testing.T) {
	a, _ := New([]string{"x"}, map[string][]float64{"x": {10, 20}})
	a.Set(7, 1)
	s, err := a.Sel("x", 20)
	if err != nil {
		t.Fatal(err)
	}
	if v := s.Values(); len(v) != 1 || v[0] != 7 {
		t.Fatalf("scalar = %v", v)
	}
}

func TestReduceMean(t *testing.T) {
	a := sample(t)
	m, err := a.Reduce("time", "mean")
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Shape(); got[0] != 3 || got[1] != 4 {
		t.Fatalf("shape = %v", got)
	}
	// values 0..3 at (t,1,2): 12, 112, 212, 312 -> mean 162
	v, _ := m.At(1, 2)
	if v != 162 {
		t.Fatalf("mean = %v", v)
	}
}

func TestReduceOps(t *testing.T) {
	a, _ := New([]string{"x"}, map[string][]float64{"x": {1, 2, 3, 4}})
	for i, v := range []float64{2, 4, 4, 6} {
		a.Set(v, i)
	}
	check := func(op string, want float64) {
		r, err := a.Reduce("x", op)
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if got := r.Values()[0]; math.Abs(got-want) > 1e-12 {
			t.Errorf("%s = %v, want %v", op, got, want)
		}
	}
	check("sum", 16)
	check("mean", 4)
	check("min", 2)
	check("max", 6)
	check("std", 1.632993161855452)
	if _, err := a.Reduce("x", "mode"); err == nil {
		t.Fatal("unknown op must fail")
	}
	if _, err := a.Reduce("ghost", "mean"); err == nil {
		t.Fatal("unknown dim must fail")
	}
}

func TestGroupBySeasons(t *testing.T) {
	// 12 "months", value = month number; group into 4 seasons of 3.
	a, _ := New([]string{"month", "lat"}, map[string][]float64{
		"month": {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11},
		"lat":   {-10, 10},
	})
	a.Fill(func(idx []int) float64 { return float64(idx[0]) })
	seasons, err := a.GroupBy("month", func(m float64) float64 {
		return math.Floor(m / 3)
	}, "mean")
	if err != nil {
		t.Fatal(err)
	}
	if got := seasons.Shape(); got[0] != 4 || got[1] != 2 {
		t.Fatalf("shape = %v", got)
	}
	coords, _ := seasons.Coords("month")
	if coords[0] != 0 || coords[3] != 3 {
		t.Fatalf("season coords = %v", coords)
	}
	v, _ := seasons.At(1, 0) // months 3,4,5 -> mean 4
	if v != 4 {
		t.Fatalf("season mean = %v", v)
	}
	if _, err := a.GroupBy("ghost", func(f float64) float64 { return f }, "mean"); err == nil {
		t.Fatal("unknown dim must fail")
	}
}

func TestApplyAndClone(t *testing.T) {
	a := sample(t)
	cp := a.Clone()
	a.Apply(func(x float64) float64 { return x * 2 })
	va, _ := a.At(1, 1, 1)
	vc, _ := cp.At(1, 1, 1)
	if va != 222 || vc != 111 {
		t.Fatalf("apply/clone: %v, %v", va, vc)
	}
}

func TestMatrix(t *testing.T) {
	a, _ := New([]string{"r", "c"}, map[string][]float64{"r": {0, 1}, "c": {0, 1, 2}})
	a.Fill(func(idx []int) float64 { return float64(idx[0]*3 + idx[1]) })
	m, err := a.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m[1][2] != 5 {
		t.Fatalf("matrix = %v", m)
	}
	b := sample(t)
	if _, err := b.Matrix(); err == nil {
		t.Fatal("3-d matrix must fail")
	}
}

func TestString(t *testing.T) {
	s := sample(t).String()
	for _, want := range []string{"time: 4", "lat: 3", "min=", "max="} {
		if !strings.Contains(s, want) {
			t.Fatalf("repr = %q", s)
		}
	}
}

// Property: Reduce(sum) over any dim conserves the grand total.
func TestQuickReduceConservesSum(t *testing.T) {
	f := func(vals []float64, dimPick uint8) bool {
		a, _ := New([]string{"x", "y"}, map[string][]float64{
			"x": {0, 1, 2}, "y": {0, 1},
		})
		a.Fill(func(idx []int) float64 {
			i := idx[0]*2 + idx[1]
			if i < len(vals) && !math.IsNaN(vals[i]) && math.Abs(vals[i]) < 1e100 {
				return vals[i]
			}
			return float64(i)
		})
		total := 0.0
		for _, v := range a.Values() {
			total += v
		}
		dim := []string{"x", "y"}[int(dimPick)%2]
		r, err := a.Reduce(dim, "sum")
		if err != nil {
			return false
		}
		rt := 0.0
		for _, v := range r.Values() {
			rt += v
		}
		return math.Abs(rt-total) < 1e-6*(1+math.Abs(total))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Sel then Values matches direct indexing.
func TestQuickSelConsistent(t *testing.T) {
	a := sampleQuick()
	f := func(pos uint8) bool {
		p := int(pos) % 4
		s, err := a.ISel("time", p)
		if err != nil {
			return false
		}
		for i := 0; i < 3; i++ {
			for j := 0; j < 4; j++ {
				want, _ := a.At(p, i, j)
				got, _ := s.At(i, j)
				if want != got {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func sampleQuick() *Array {
	a, _ := New([]string{"time", "lat", "lon"}, map[string][]float64{
		"time": {0, 1, 2, 3},
		"lat":  {-30, 0, 30},
		"lon":  {0, 90, 180, 270},
	})
	a.Fill(func(idx []int) float64 {
		return float64(idx[0]*100+idx[1]*10+idx[2]) * 1.5
	})
	return a
}
