// Package ndarray implements labeled N-dimensional arrays in the style
// of the xarray library the paper's data-science use case analyzes
// weather data with: named dimensions, per-dimension coordinates,
// selection by coordinate value, and reductions/group-bys over named
// dimensions.
package ndarray

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Array is a dense row-major N-d array with named, coordinate-labeled
// dimensions.
type Array struct {
	dims   []string
	coords map[string][]float64
	shape  []int
	stride []int
	data   []float64
}

// New builds an array from dimension names and their coordinates; the
// data is zero-initialized.
func New(dims []string, coords map[string][]float64) (*Array, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("ndarray: need at least one dimension")
	}
	a := &Array{
		dims:   append([]string(nil), dims...),
		coords: make(map[string][]float64, len(dims)),
		shape:  make([]int, len(dims)),
		stride: make([]int, len(dims)),
	}
	seen := map[string]bool{}
	size := 1
	for i, d := range dims {
		if d == "" || seen[d] {
			return nil, fmt.Errorf("ndarray: invalid or duplicate dimension %q", d)
		}
		seen[d] = true
		c, ok := coords[d]
		if !ok || len(c) == 0 {
			return nil, fmt.Errorf("ndarray: dimension %q has no coordinates", d)
		}
		a.coords[d] = append([]float64(nil), c...)
		a.shape[i] = len(c)
		size *= len(c)
	}
	stride := 1
	for i := len(dims) - 1; i >= 0; i-- {
		a.stride[i] = stride
		stride *= a.shape[i]
	}
	a.data = make([]float64, size)
	return a, nil
}

// Dims returns the dimension names in order.
func (a *Array) Dims() []string { return append([]string(nil), a.dims...) }

// Shape returns the extent of each dimension.
func (a *Array) Shape() []int { return append([]int(nil), a.shape...) }

// Size returns the number of elements.
func (a *Array) Size() int { return len(a.data) }

// Coords returns the coordinates of a dimension.
func (a *Array) Coords(dim string) ([]float64, error) {
	c, ok := a.coords[dim]
	if !ok {
		return nil, fmt.Errorf("ndarray: no dimension %q", dim)
	}
	return append([]float64(nil), c...), nil
}

func (a *Array) dimIndex(dim string) (int, error) {
	for i, d := range a.dims {
		if d == dim {
			return i, nil
		}
	}
	return -1, fmt.Errorf("ndarray: no dimension %q (have %s)", dim, strings.Join(a.dims, ","))
}

func (a *Array) offset(idx []int) (int, error) {
	if len(idx) != len(a.dims) {
		return 0, fmt.Errorf("ndarray: got %d indices for %d dimensions", len(idx), len(a.dims))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= a.shape[i] {
			return 0, fmt.Errorf("ndarray: index %d out of range [0,%d) on %s", x, a.shape[i], a.dims[i])
		}
		off += x * a.stride[i]
	}
	return off, nil
}

// At returns the element at the given indices (one per dimension).
func (a *Array) At(idx ...int) (float64, error) {
	off, err := a.offset(idx)
	if err != nil {
		return 0, err
	}
	return a.data[off], nil
}

// Set stores v at the given indices.
func (a *Array) Set(v float64, idx ...int) error {
	off, err := a.offset(idx)
	if err != nil {
		return err
	}
	a.data[off] = v
	return nil
}

// Fill sets every element from a generator called with per-dim indices.
func (a *Array) Fill(gen func(idx []int) float64) {
	idx := make([]int, len(a.dims))
	for off := range a.data {
		rem := off
		for i := range a.dims {
			idx[i] = rem / a.stride[i]
			rem %= a.stride[i]
		}
		a.data[off] = gen(idx)
	}
}

// Apply replaces every element x with f(x).
func (a *Array) Apply(f func(float64) float64) {
	for i, v := range a.data {
		a.data[i] = f(v)
	}
}

// Clone deep-copies the array.
func (a *Array) Clone() *Array {
	cp, _ := New(a.dims, a.coords)
	copy(cp.data, a.data)
	return cp
}

// Sel selects the hyperplane where dim's coordinate equals value
// (within a small tolerance), dropping that dimension.
func (a *Array) Sel(dim string, value float64) (*Array, error) {
	di, err := a.dimIndex(dim)
	if err != nil {
		return nil, err
	}
	pos := -1
	for i, c := range a.coords[dim] {
		if math.Abs(c-value) < 1e-9 {
			pos = i
			break
		}
	}
	if pos < 0 {
		return nil, fmt.Errorf("ndarray: no coordinate %g on %s", value, dim)
	}
	return a.isel(di, pos)
}

// ISel selects index `pos` along dim, dropping that dimension.
func (a *Array) ISel(dim string, pos int) (*Array, error) {
	di, err := a.dimIndex(dim)
	if err != nil {
		return nil, err
	}
	if pos < 0 || pos >= a.shape[di] {
		return nil, fmt.Errorf("ndarray: index %d out of range on %s", pos, dim)
	}
	return a.isel(di, pos)
}

func (a *Array) isel(di, pos int) (*Array, error) {
	if len(a.dims) == 1 {
		// selecting from 1-d collapses to a scalar wrapped in a 1-cell array
		out, _ := New([]string{"scalar"}, map[string][]float64{"scalar": {0}})
		out.data[0] = a.data[pos*a.stride[di]]
		return out, nil
	}
	newDims := make([]string, 0, len(a.dims)-1)
	newCoords := make(map[string][]float64)
	for i, d := range a.dims {
		if i == di {
			continue
		}
		newDims = append(newDims, d)
		newCoords[d] = a.coords[d]
	}
	out, err := New(newDims, newCoords)
	if err != nil {
		return nil, err
	}
	a.iterate(di, pos, func(srcOff, dstOff int) {
		out.data[dstOff] = a.data[srcOff]
	})
	return out, nil
}

// iterate walks all elements with dimension di fixed at pos, calling fn
// with the source offset and the dense destination offset.
func (a *Array) iterate(di, pos int, fn func(srcOff, dstOff int)) {
	idx := make([]int, len(a.dims))
	idx[di] = pos
	dst := 0
	var rec func(d int)
	rec = func(d int) {
		if d == len(a.dims) {
			off := 0
			for i, x := range idx {
				off += x * a.stride[i]
			}
			fn(off, dst)
			dst++
			return
		}
		if d == di {
			rec(d + 1)
			return
		}
		for x := 0; x < a.shape[d]; x++ {
			idx[d] = x
			rec(d + 1)
		}
	}
	rec(0)
}

// Reduce collapses a dimension with the named operation
// (mean, sum, min, max, std).
func (a *Array) Reduce(dim, op string) (*Array, error) {
	di, err := a.dimIndex(dim)
	if err != nil {
		return nil, err
	}
	n := a.shape[di]
	switch op {
	case "mean", "sum", "min", "max", "std":
	default:
		return nil, fmt.Errorf("ndarray: unknown reduction %q", op)
	}
	// Collect per-destination samples, one slice per position along dim.
	var firstSlice *Array
	samples := make([][]float64, 0, n)
	for pos := 0; pos < n; pos++ {
		sl, err := a.isel(di, pos)
		if err != nil {
			return nil, err
		}
		if firstSlice == nil {
			firstSlice = sl
		}
		samples = append(samples, sl.data)
	}
	acc := firstSlice.Clone()
	for i := range acc.data {
		vals := make([]float64, n)
		for p := 0; p < n; p++ {
			vals[p] = samples[p][i]
		}
		acc.data[i] = reduce(op, vals)
	}
	return acc, nil
}

func reduce(op string, vals []float64) float64 {
	switch op {
	case "sum":
		s := 0.0
		for _, v := range vals {
			s += v
		}
		return s
	case "mean":
		s := 0.0
		for _, v := range vals {
			s += v
		}
		return s / float64(len(vals))
	case "min":
		m := vals[0]
		for _, v := range vals[1:] {
			m = math.Min(m, v)
		}
		return m
	case "max":
		m := vals[0]
		for _, v := range vals[1:] {
			m = math.Max(m, v)
		}
		return m
	case "std":
		mean := reduce("mean", vals)
		ss := 0.0
		for _, v := range vals {
			ss += (v - mean) * (v - mean)
		}
		if len(vals) < 2 {
			return 0
		}
		return math.Sqrt(ss / float64(len(vals)-1))
	}
	return math.NaN()
}

// GroupBy buckets a dimension's coordinates with `key`, reduces within
// each bucket using op, and returns a new array whose dim coordinates
// are the distinct key values in ascending order. This is xarray's
// groupby("time.season").mean() pattern.
func (a *Array) GroupBy(dim string, key func(coord float64) float64, op string) (*Array, error) {
	di, err := a.dimIndex(dim)
	if err != nil {
		return nil, err
	}
	groups := make(map[float64][]int)
	for pos, c := range a.coords[dim] {
		k := key(c)
		groups[k] = append(groups[k], pos)
	}
	keys := make([]float64, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Float64s(keys)

	newCoords := make(map[string][]float64)
	for d, c := range a.coords {
		newCoords[d] = c
	}
	newCoords[dim] = keys
	out, err := New(a.dims, newCoords)
	if err != nil {
		return nil, err
	}
	for gi, k := range keys {
		positions := groups[k]
		// For each element with dim=gi in the output, reduce over the
		// member positions in the input.
		out.iterate(di, gi, func(dstOff, _ int) {
			// dstOff indexes `out`; compute the matching multi-index.
			idx := out.indexOf(dstOff)
			vals := make([]float64, len(positions))
			srcIdx := append([]int(nil), idx...)
			for vi, p := range positions {
				srcIdx[di] = p
				off, _ := a.offset(srcIdx)
				vals[vi] = a.data[off]
			}
			out.data[dstOff] = reduce(op, vals)
		})
	}
	return out, nil
}

func (a *Array) indexOf(off int) []int {
	idx := make([]int, len(a.dims))
	rem := off
	for i := range a.dims {
		idx[i] = rem / a.stride[i]
		rem %= a.stride[i]
	}
	return idx
}

// Values returns a copy of the flat data (row-major).
func (a *Array) Values() []float64 { return append([]float64(nil), a.data...) }

// Matrix renders a 2-d array as rows (first dim) of columns (second
// dim) — the input shape plot.Heatmap expects.
func (a *Array) Matrix() ([][]float64, error) {
	if len(a.dims) != 2 {
		return nil, fmt.Errorf("ndarray: Matrix needs 2 dimensions, have %d", len(a.dims))
	}
	out := make([][]float64, a.shape[0])
	for i := range out {
		row := make([]float64, a.shape[1])
		for j := range row {
			row[j] = a.data[i*a.stride[0]+j*a.stride[1]]
		}
		out[i] = row
	}
	return out, nil
}

// String summarizes the array like xarray's repr.
func (a *Array) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "<ndarray (")
	for i, d := range a.dims {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s: %d", d, a.shape[i])
	}
	mn, mx := math.Inf(1), math.Inf(-1)
	for _, v := range a.data {
		mn, mx = math.Min(mn, v), math.Max(mx, v)
	}
	fmt.Fprintf(&sb, ")> min=%.4g max=%.4g", mn, mx)
	return sb.String()
}
