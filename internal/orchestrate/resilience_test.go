package orchestrate

import (
	"strings"
	"testing"

	"popper/internal/fault"
)

// node IDs from testInventory(t, 1): cloudlab-c220g1-0 (head), cloudlab-c220g1-1, cloudlab-c220g1-2
// (storage).

func resilientRunner(t *testing.T, rules []fault.Rule) (*Runner, *Inventory) {
	t.Helper()
	inv, _ := testInventory(t, 1)
	r := NewRunner(inv)
	r.Faults = fault.NewInjector(7, rules)
	r.Retry = fault.Retry{Max: 2, Backoff: 0.1}
	return r, inv
}

func TestTaskRetryAbsorbsInjectedErrors(t *testing.T) {
	r, _ := resilientRunner(t, []fault.Rule{
		{Site: "orchestrate/cloudlab-c220g1-1/install toolchain", Kind: fault.Error, Times: 2, Msg: "apt lock held"},
	})
	pb, err := ParsePlaybook(samplePlaybook)
	if err != nil {
		t.Fatal(err)
	}
	results, err := r.Run(pb)
	if err != nil {
		t.Fatalf("two injected errors under Max=2 must be absorbed: %v\n%s", err, FormatResults(results))
	}
	var hit *TaskResult
	for i := range results {
		if results[i].Host == "cloudlab-c220g1-1" && results[i].Task == "install toolchain" {
			hit = &results[i]
		}
	}
	if hit == nil || hit.Attempts != 3 {
		t.Fatalf("retried task = %+v, want 3 attempts", hit)
	}
	if hit.Failed() || !hit.Changed {
		t.Fatalf("final attempt must succeed and report changed: %+v", hit)
	}
	// Untouched tasks record exactly one attempt.
	for _, res := range results {
		if res.Host != "cloudlab-c220g1-1" && res.Attempts != 1 {
			t.Fatalf("fault on cloudlab-c220g1-1 leaked into %s: %+v", res.Host, res)
		}
	}
	if !strings.Contains(FormatResults(results), "(3 attempts)") {
		t.Fatalf("retries must be visible in the report:\n%s", FormatResults(results))
	}
}

func TestTaskCrashIsTerminal(t *testing.T) {
	r, _ := resilientRunner(t, []fault.Rule{
		{Site: "orchestrate/cloudlab-c220g1-1/install toolchain", Kind: fault.Crash, Msg: "node died"},
	})
	pb, _ := ParsePlaybook(samplePlaybook)
	results, err := r.Run(pb)
	if err == nil {
		t.Fatal("crash must fail the playbook")
	}
	if !fault.IsCrash(err) {
		t.Fatalf("crash must stay typed through the runner: %v", err)
	}
	for _, res := range results {
		if res.Host == "cloudlab-c220g1-1" && res.Task == "install toolchain" && res.Attempts != 1 {
			t.Fatalf("crash must not be retried: %+v", res)
		}
	}
}

func TestHostQuarantineExcludesFromLaterPlays(t *testing.T) {
	// cloudlab-c220g1-1 fails every task terminally; after 2 strikes it is
	// quarantined and the rest of the playbook completes without it.
	r, inv := resilientRunner(t, []fault.Rule{
		{Site: "orchestrate/cloudlab-c220g1-1/*", Kind: fault.Crash, Msg: "flaky hardware"},
	})
	r.QuarantineAfter = 2
	pb, _ := ParsePlaybook(samplePlaybook)
	results, err := r.Run(pb)
	if err == nil || !strings.Contains(err.Error(), "quarantined") || !strings.Contains(err.Error(), "cloudlab-c220g1-1") {
		t.Fatalf("quarantine must be summarized in the error: %v", err)
	}
	perHost := map[string]int{}
	quarantineMarked := false
	for _, res := range results {
		perHost[res.Host]++
		if res.Host == "cloudlab-c220g1-1" && res.Quarantined {
			quarantineMarked = true
		}
		if res.Host != "cloudlab-c220g1-1" && res.Failed() {
			t.Fatalf("healthy host failed: %+v", res)
		}
	}
	if !quarantineMarked {
		t.Fatal("the strike that tipped cloudlab-c220g1-1 into quarantine must be marked")
	}
	// cloudlab-c220g1-1 ran exactly QuarantineAfter tasks before exclusion; the
	// healthy storage host ran all 3 configure tasks plus the run play.
	if perHost["cloudlab-c220g1-1"] != 2 {
		t.Fatalf("cloudlab-c220g1-1 ran %d tasks, want 2 (quarantined after 2 strikes)", perHost["cloudlab-c220g1-1"])
	}
	if perHost["cloudlab-c220g1-2"] != 4 || perHost["cloudlab-c220g1-0"] != 1 {
		t.Fatalf("healthy hosts must complete the playbook: %v", perHost)
	}
	// The quarantined host's state reflects only the tasks that ran.
	h, _ := inv.Host("cloudlab-c220g1-1")
	if h.ServiceRunning("gassyfsd") {
		t.Fatal("quarantined host must not have run later tasks")
	}
	h2, _ := inv.Host("cloudlab-c220g1-2")
	if !h2.ServiceRunning("gassyfsd") {
		t.Fatal("healthy host must have completed configuration")
	}
	out := FormatResults(results)
	for _, want := range []string{"PLAY RECAP", "QUARANTINED", "ok=", "changed=", "failed="} {
		if !strings.Contains(out, want) {
			t.Fatalf("recap missing %q:\n%s", want, out)
		}
	}
}

func TestQuarantineDefaultOffPreservesFailFast(t *testing.T) {
	r, _ := resilientRunner(t, []fault.Rule{
		{Site: "orchestrate/cloudlab-c220g1-1/install toolchain", Kind: fault.Crash, Msg: "down"},
	})
	pb, _ := ParsePlaybook(samplePlaybook)
	results, err := r.Run(pb)
	if err == nil || !strings.Contains(err.Error(), "failed on cloudlab-c220g1-1") {
		t.Fatalf("default mode must stop at the first failure: %v", err)
	}
	for _, res := range results {
		if res.Play == "run" {
			t.Fatal("later plays must not run after a fail-fast stop")
		}
	}
}

func TestForkedChaosMatchesSerial(t *testing.T) {
	rules := []fault.Rule{
		{Site: "orchestrate/cloudlab-c220g1-1/install toolchain", Kind: fault.Error, Times: 1, Msg: "transient"},
		{Site: "orchestrate/cloudlab-c220g1-2/push config", Kind: fault.Latency, Delay: 1.5, Times: 1},
	}
	run := func(forks int) []TaskResult {
		inv, _ := testInventory(t, 1)
		r := NewRunner(inv)
		r.Faults = fault.NewInjector(7, rules)
		r.Retry = fault.Retry{Max: 2, Backoff: 0.1}
		r.Forks = forks
		pb, _ := ParsePlaybook(samplePlaybook)
		results, err := r.Run(pb)
		if err != nil {
			t.Fatalf("forks=%d: %v", forks, err)
		}
		return results
	}
	serial, forked := run(1), run(4)
	if len(serial) != len(forked) {
		t.Fatalf("result counts diverged: %d vs %d", len(serial), len(forked))
	}
	for i := range serial {
		s, f := serial[i], forked[i]
		if s.Host != f.Host || s.Task != f.Task || s.Attempts != f.Attempts ||
			s.Msg != f.Msg || s.Elapsed != f.Elapsed || s.Changed != f.Changed {
			t.Fatalf("result %d diverged:\nserial %+v\nforked %+v", i, s, f)
		}
	}
}

func TestRetryBackoffChargesHostClock(t *testing.T) {
	r, inv := resilientRunner(t, []fault.Rule{
		{Site: "orchestrate/cloudlab-c220g1-1/install toolchain", Kind: fault.Error, Times: 1, Msg: "transient"},
	})
	pb, _ := ParsePlaybook(samplePlaybook)
	if _, err := r.Run(pb); err != nil {
		t.Fatal(err)
	}
	h1, _ := inv.Host("cloudlab-c220g1-1")
	h2, _ := inv.Host("cloudlab-c220g1-2")
	// The retried host paid backoff plus a second ssh round trip; its
	// clock must be strictly ahead of the identical healthy host.
	if h1.Node.Now() <= h2.Node.Now() {
		t.Fatalf("retry must cost virtual time: cloudlab-c220g1-1=%.3f cloudlab-c220g1-2=%.3f", h1.Node.Now(), h2.Node.Now())
	}
}
