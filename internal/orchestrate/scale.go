// Elastic fleet scaling: grow or shrink an inventory group against the
// simulated cluster provider, and hand the group to the sweep scheduler.
//
// This is the provisioning loop core.RunSweep drives when asked to fan
// a sweep across simulated hosts: scale the "sweep" group to -hosts
// nodes of the chosen machine profile, convert it to sched.HostSpecs,
// and let the cluster scheduler place configurations on it. Scaling is
// idempotent and incremental — growing reuses existing hosts, shrinking
// releases the highest-numbered ones first — so repeated sweeps at
// different -hosts values reuse the fleet the way an elastic provider
// allocation would.

package orchestrate

import (
	"fmt"

	"popper/internal/cluster"
	"popper/internal/sched"
)

// ScaleGroup grows or shrinks the inventory group to exactly n hosts
// backed by cluster nodes of the given profile, naming them
// "<group>-<k>" for k = 0..n-1. Growing provisions fresh nodes and adds
// them to the group; shrinking removes the highest-numbered hosts and
// releases their nodes back to the provider. The returned slice is the
// group's hosts after scaling, in rank order.
func (r *Runner) ScaleGroup(c *cluster.Cluster, p *cluster.MachineProfile, group string, n int) ([]*Host, error) {
	if n < 0 {
		return nil, fmt.Errorf("orchestrate: cannot scale group %q to %d hosts", group, n)
	}
	have := len(r.inv.Group(group))
	for k := have; k < n; k++ {
		nodes, err := c.ProvisionProfile(p, 1)
		if err != nil {
			return nil, fmt.Errorf("orchestrate: scaling group %q to %d: %w", group, n, err)
		}
		h := NewHost(fmt.Sprintf("%s-%d", group, k), nodes[0])
		if err := r.inv.Add(h, group); err != nil {
			c.Release(nodes[0])
			return nil, err
		}
	}
	for k := have - 1; k >= n; k-- {
		name := fmt.Sprintf("%s-%d", group, k)
		if h, ok := r.inv.Host(name); ok {
			if h.Node != nil {
				c.Release(h.Node)
			}
			r.inv.Remove(name)
		}
	}
	return r.inv.Group(group), nil
}

// HostSpecs converts an inventory group into the fleet description the
// cluster sweep scheduler consumes: one spec per host, in group order,
// carrying the host's machine profile and logical clock. Hosts without
// a cluster node (the local control host) get the default sweep profile
// so a mixed inventory still schedules.
func (inv *Inventory) HostSpecs(group string) []sched.HostSpec {
	hosts := inv.Group(group)
	specs := make([]sched.HostSpec, 0, len(hosts))
	for _, h := range hosts {
		spec := sched.HostSpec{Name: h.Name}
		if h.Node != nil {
			spec.Profile = h.Node.Profile()
			spec.Node = h.Node
		} else {
			p, err := cluster.Profile("cloudlab-c220g1")
			if err != nil {
				continue
			}
			spec.Profile = p
		}
		specs = append(specs, spec)
	}
	return specs
}
