// Package orchestrate implements the multi-node orchestration substrate
// of the Popper convention (the role Ansible/Puppet/Chef play in the
// paper): a declarative playbook engine that configures and drives a set
// of hosts, gathers "facts" about them, and records per-task results.
//
// Hosts are either the local control machine or simulated cluster nodes
// (internal/cluster); in the latter case every task pays an ssh-style
// round trip plus task execution time on the node's logical clock, which
// lets the ablation benchmarks compare per-task round trips against
// batched pushes.
//
// Playbooks are YAML documents (internal/yamlite) of the shape:
//
//   - name: configure
//     hosts: storage
//     tasks:
//   - name: install packages
//     pkg: {name: gcc}
//   - name: run experiment
//     shell: run.sh
//
// The facts-gathering module is the hook the paper's baseline
// sanitization relies on: "many of the commonly used orchestration tools
// incorporate functionality for obtaining facts about the environment".
package orchestrate

import (
	"fmt"
	"sort"
	"strings"

	"popper/internal/cluster"
	"popper/internal/fault"
	"popper/internal/sched"
	"popper/internal/yamlite"
)

// Host is one managed machine: the control host (Node == nil) or a
// simulated cluster node.
type Host struct {
	Name string
	Node *cluster.Node

	Vars     map[string]string
	packages map[string]bool
	services map[string]bool
	files    map[string][]byte
	facts    map[string]string
}

// NewHost wraps a (possibly nil) cluster node as a managed host.
func NewHost(name string, node *cluster.Node) *Host {
	return &Host{
		Name: name, Node: node,
		Vars:     make(map[string]string),
		packages: make(map[string]bool),
		services: make(map[string]bool),
		files:    make(map[string][]byte),
		facts:    make(map[string]string),
	}
}

// HasPackage reports whether a package has been installed on the host.
func (h *Host) HasPackage(name string) bool { return h.packages[name] }

// ServiceRunning reports whether a service was started on the host.
func (h *Host) ServiceRunning(name string) bool { return h.services[name] }

// File returns a file previously copied to the host.
func (h *Host) File(path string) ([]byte, bool) {
	b, ok := h.files[path]
	return b, ok
}

// Facts returns the facts gathered from the host (empty until a play
// with gather_facts ran).
func (h *Host) Facts() map[string]string {
	out := make(map[string]string, len(h.facts))
	for k, v := range h.facts {
		out[k] = v
	}
	return out
}

// Inventory groups hosts by name, like an Ansible inventory file. The
// implicit group "all" contains every host.
type Inventory struct {
	groups map[string][]*Host
	byName map[string]*Host
}

// NewInventory creates an empty inventory.
func NewInventory() *Inventory {
	return &Inventory{groups: make(map[string][]*Host), byName: make(map[string]*Host)}
}

// Add places a host into the given groups (plus "all").
func (inv *Inventory) Add(h *Host, groups ...string) error {
	if h.Name == "" {
		return fmt.Errorf("orchestrate: host needs a name")
	}
	if _, dup := inv.byName[h.Name]; dup {
		return fmt.Errorf("orchestrate: duplicate host %q", h.Name)
	}
	inv.byName[h.Name] = h
	for _, g := range append(groups, "all") {
		inv.groups[g] = append(inv.groups[g], h)
	}
	return nil
}

// Group returns the hosts in a group.
func (inv *Inventory) Group(name string) []*Host { return inv.groups[name] }

// Remove deletes a host from the inventory and every group it was in.
// Removing an unknown host is a no-op (idempotent, like Add's inverse
// should be for elastic scale-down loops).
func (inv *Inventory) Remove(name string) {
	if _, ok := inv.byName[name]; !ok {
		return
	}
	delete(inv.byName, name)
	for g, hosts := range inv.groups {
		kept := hosts[:0]
		for _, h := range hosts {
			if h.Name != name {
				kept = append(kept, h)
			}
		}
		if len(kept) == 0 {
			delete(inv.groups, g)
		} else {
			inv.groups[g] = kept
		}
	}
}

// Host finds a host by name.
func (inv *Inventory) Host(name string) (*Host, bool) {
	h, ok := inv.byName[name]
	return h, ok
}

// Groups lists group names, sorted.
func (inv *Inventory) Groups() []string {
	out := make([]string, 0, len(inv.groups))
	for g := range inv.groups {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// Task is one action in a play.
type Task struct {
	Name   string
	Module string
	// Args carries the module parameters; the special key "_raw" holds
	// the scalar form (e.g. `shell: ./run.sh`).
	Args map[string]string
}

// Play maps a host group to an ordered task list.
type Play struct {
	Name        string
	HostGroup   string
	GatherFacts bool
	// Vars are play-scoped variables available to `{{ var }}` templates
	// in task arguments.
	Vars  map[string]string
	Tasks []Task
}

// Playbook is an ordered list of plays.
type Playbook struct {
	Plays []Play
}

// ParsePlaybook decodes a playbook from YAML text.
func ParsePlaybook(src string) (*Playbook, error) {
	doc, err := yamlite.Decode(src)
	if err != nil {
		return nil, fmt.Errorf("orchestrate: %w", err)
	}
	plays, ok := doc.([]any)
	if !ok {
		return nil, fmt.Errorf("orchestrate: playbook root must be a list of plays")
	}
	pb := &Playbook{}
	for i, rawPlay := range plays {
		pm, ok := rawPlay.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("orchestrate: play %d is not a mapping", i)
		}
		play := Play{
			Name:        yamlite.GetString(pm, "name", fmt.Sprintf("play-%d", i)),
			HostGroup:   yamlite.GetString(pm, "hosts", ""),
			GatherFacts: yamlite.GetBool(pm, "gather_facts", true),
			Vars:        map[string]string{},
		}
		if rawVars, ok := yamlite.Get(pm, "vars"); ok {
			vm, ok := rawVars.(map[string]any)
			if !ok {
				return nil, fmt.Errorf("orchestrate: play %q vars must be a mapping", play.Name)
			}
			for k, v := range vm {
				play.Vars[k] = scalarString(v)
			}
		}
		if play.HostGroup == "" {
			return nil, fmt.Errorf("orchestrate: play %q has no hosts", play.Name)
		}
		for j, rawTask := range yamlite.GetSlice(pm, "tasks") {
			tm, ok := rawTask.(map[string]any)
			if !ok {
				return nil, fmt.Errorf("orchestrate: play %q task %d is not a mapping", play.Name, j)
			}
			task := Task{
				Name: yamlite.GetString(tm, "name", fmt.Sprintf("task-%d", j)),
				Args: make(map[string]string),
			}
			for key, val := range tm {
				if key == "name" {
					continue
				}
				if task.Module != "" {
					return nil, fmt.Errorf("orchestrate: play %q task %q has multiple modules (%s, %s)",
						play.Name, task.Name, task.Module, key)
				}
				task.Module = key
				switch v := val.(type) {
				case string:
					task.Args["_raw"] = v
				case map[string]any:
					for ak, av := range v {
						task.Args[ak] = scalarString(av)
					}
				case nil:
					// module with no args
				default:
					task.Args["_raw"] = scalarString(v)
				}
			}
			if task.Module == "" {
				return nil, fmt.Errorf("orchestrate: play %q task %q has no module", play.Name, task.Name)
			}
			play.Tasks = append(play.Tasks, task)
		}
		if len(play.Tasks) == 0 {
			return nil, fmt.Errorf("orchestrate: play %q has no tasks", play.Name)
		}
		pb.Plays = append(pb.Plays, play)
	}
	if len(pb.Plays) == 0 {
		return nil, fmt.Errorf("orchestrate: empty playbook")
	}
	return pb, nil
}

func scalarString(v any) string {
	switch t := v.(type) {
	case string:
		return t
	case nil:
		return ""
	default:
		return fmt.Sprint(t)
	}
}

// ModuleFunc implements one orchestration module. It may mutate the host
// and returns a human-readable result plus the simulated on-host work.
type ModuleFunc func(h *Host, args map[string]string) (msg string, work cluster.Work, err error)

// TaskResult records the outcome of one task on one host.
type TaskResult struct {
	Play, Task, Host string
	Module           string
	Msg              string
	Err              error
	// Elapsed is the virtual seconds the task took on the host across
	// all attempts (round trips + on-host work + retry backoff); 0 for
	// control-host tasks.
	Elapsed float64
	// Attempts is how many times the task executed on this host (>1
	// when the runner's retry policy absorbed transient failures).
	Attempts int
	// Changed reports whether the task mutated host state (the Ansible
	// ok/changed distinction the RECAP surfaces).
	Changed bool
	// Quarantined marks the failure that pushed its host over the
	// runner's quarantine threshold; the host runs no further tasks.
	Quarantined bool
}

// Failed reports whether the task failed.
func (r TaskResult) Failed() bool { return r.Err != nil }

// Runner executes playbooks against an inventory.
type Runner struct {
	inv     *Inventory
	modules map[string]ModuleFunc
	// SSHLatency is the per-task round-trip cost charged to cluster-node
	// hosts, seconds. The ablation benchmark varies this.
	SSHLatency float64
	// Batched, when true, pushes each play to a host as one bundle: the
	// round trip is charged once per play per host instead of once per
	// task (the "batched playbook push" side of the ablation).
	Batched bool
	// Forks is how many hosts a task is driven on concurrently — the
	// Ansible "forks" setting, normalized through sched.Jobs like every
	// other worker knob in the toolchain: <= 0 means one fork per CPU,
	// 1 keeps execution strictly serial.
	// Hosts have independent state and logical clocks, so forked
	// execution is deterministic: task results are reported in
	// inventory order regardless of completion order. The one visible
	// difference from serial execution: when a task fails on some host,
	// the task still completes on the play's remaining hosts (their
	// results are included) before the playbook stops.
	Forks int
	// Faults is the deterministic chaos injector consulted before each
	// task attempt (sites "orchestrate/<host>/<task>"); nil disables
	// injection. Sites are per (host, task), so forked execution draws
	// the same fault schedule as serial execution.
	Faults *fault.Injector
	// Retry re-runs a failing task on its host up to Retry.Max more
	// times; injected crashes are terminal. Backoff delays are charged
	// to the host's logical clock. Builtin modules are idempotent, so
	// re-running one is safe.
	Retry fault.Retry
	// QuarantineAfter, when > 0, switches the runner from fail-fast to
	// degrade-gracefully: a task failure no longer stops the playbook;
	// instead the failing host accumulates strikes, and a host reaching
	// QuarantineAfter failed tasks is quarantined — excluded from every
	// later task and play (FormatResults reports it). Run then returns
	// an aggregate error describing the quarantined hosts, alongside
	// the complete result list. 0 preserves the historical stop-at-
	// first-failure behavior.
	QuarantineAfter int
}

// NewRunner creates a runner with the builtin module set: ping, shell,
// copy, pkg, service, set_fact, assert_fact.
func NewRunner(inv *Inventory) *Runner {
	r := &Runner{inv: inv, modules: make(map[string]ModuleFunc), SSHLatency: 0.05}
	r.RegisterModule("ping", func(h *Host, _ map[string]string) (string, cluster.Work, error) {
		return "pong", cluster.Work{}, nil
	})
	r.RegisterModule("shell", func(h *Host, args map[string]string) (string, cluster.Work, error) {
		cmd := args["_raw"]
		if cmd == "" {
			cmd = args["cmd"]
		}
		if cmd == "" {
			return "", cluster.Work{}, fmt.Errorf("shell: no command")
		}
		// A shell command costs a process spawn plus nominal work.
		return "ran: " + cmd, cluster.Work{Syscalls: 2000, CPUOps: 5e6}, nil
	})
	r.RegisterModule("copy", func(h *Host, args map[string]string) (string, cluster.Work, error) {
		dest := args["dest"]
		if dest == "" {
			return "", cluster.Work{}, fmt.Errorf("copy: dest required")
		}
		content := []byte(args["content"])
		h.files[dest] = content
		return fmt.Sprintf("copied %d bytes to %s", len(content), dest),
			cluster.Work{DiskBytes: float64(len(content)), Syscalls: 10}, nil
	})
	r.RegisterModule("pkg", func(h *Host, args map[string]string) (string, cluster.Work, error) {
		name := args["name"]
		if name == "" {
			name = args["_raw"]
		}
		if name == "" {
			return "", cluster.Work{}, fmt.Errorf("pkg: name required")
		}
		var installed []string
		for _, p := range strings.Split(name, ",") {
			p = strings.TrimSpace(p)
			if p != "" && !h.packages[p] {
				h.packages[p] = true
				installed = append(installed, p)
			}
		}
		if len(installed) == 0 {
			return "already installed", cluster.Work{Syscalls: 100}, nil
		}
		// Installing a package streams an archive and unpacks it.
		return "installed " + strings.Join(installed, ","),
			cluster.Work{DiskBytes: 20e6 * float64(len(installed)), CPUOps: 5e7, Syscalls: 5000}, nil
	})
	r.RegisterModule("service", func(h *Host, args map[string]string) (string, cluster.Work, error) {
		name, state := args["name"], args["state"]
		if name == "" {
			return "", cluster.Work{}, fmt.Errorf("service: name required")
		}
		switch state {
		case "", "started":
			h.services[name] = true
		case "stopped":
			h.services[name] = false
		default:
			return "", cluster.Work{}, fmt.Errorf("service: unknown state %q", state)
		}
		return fmt.Sprintf("service %s -> %s", name, state), cluster.Work{Syscalls: 500}, nil
	})
	r.RegisterModule("set_fact", func(h *Host, args map[string]string) (string, cluster.Work, error) {
		for k, v := range args {
			if k == "_raw" {
				continue
			}
			h.facts[k] = v
		}
		return "facts set", cluster.Work{}, nil
	})
	r.RegisterModule("assert_fact", func(h *Host, args map[string]string) (string, cluster.Work, error) {
		key, want := args["key"], args["equals"]
		if key == "" {
			return "", cluster.Work{}, fmt.Errorf("assert_fact: key required")
		}
		got, ok := h.facts[key]
		if !ok {
			return "", cluster.Work{}, fmt.Errorf("assert_fact: fact %q not gathered", key)
		}
		if want != "" && got != want {
			return "", cluster.Work{}, fmt.Errorf("assert_fact: %s = %q, want %q", key, got, want)
		}
		return fmt.Sprintf("%s = %s", key, got), cluster.Work{}, nil
	})
	return r
}

// RegisterModule installs a custom module.
func (r *Runner) RegisterModule(name string, fn ModuleFunc) { r.modules[name] = fn }

// Check validates a playbook against the inventory and module table
// without executing anything — the CI tier-1 "syntax of orchestration
// files is correct" check from the paper.
func (r *Runner) Check(pb *Playbook) error {
	for _, play := range pb.Plays {
		if len(r.inv.Group(play.HostGroup)) == 0 {
			return fmt.Errorf("orchestrate: play %q: no hosts in group %q", play.Name, play.HostGroup)
		}
		for _, task := range play.Tasks {
			if _, ok := r.modules[task.Module]; !ok {
				return fmt.Errorf("orchestrate: play %q task %q: unknown module %q",
					play.Name, task.Name, task.Module)
			}
		}
	}
	return nil
}

// Run executes the playbook. With the default configuration execution
// stops at the first failing task (results up to and including the
// failure are returned). With QuarantineAfter > 0 the runner degrades
// gracefully instead: failures strike the host, a host reaching the
// threshold is quarantined out of all remaining tasks and plays, the
// rest of the playbook completes, and the returned error (alongside the
// complete result list) summarizes the quarantined hosts.
func (r *Runner) Run(pb *Playbook) ([]TaskResult, error) {
	if err := r.Check(pb); err != nil {
		return nil, err
	}
	var results []TaskResult
	// One pool for the whole run — fork sites share it instead of
	// allocating a fresh pool per task, and Forks <= 0 normalizes to
	// one fork per CPU (sched.Jobs) like every other worker knob.
	pool := sched.NewPool(r.Forks)
	forked := pool.Workers() > 1
	strikes := make(map[string]int)
	quarantined := make(map[string]bool)
	// live filters a host list down to non-quarantined hosts.
	live := func(all []*Host) []*Host {
		if len(quarantined) == 0 {
			return all
		}
		out := make([]*Host, 0, len(all))
		for _, h := range all {
			if !quarantined[h.Name] {
				out = append(out, h)
			}
		}
		return out
	}
	// strike records a task failure; it reports whether the playbook
	// must stop (fail-fast mode) and marks the result that tipped its
	// host into quarantine.
	strike := func(res *TaskResult) (stop bool) {
		if r.QuarantineAfter <= 0 {
			return true
		}
		strikes[res.Host]++
		if strikes[res.Host] >= r.QuarantineAfter && !quarantined[res.Host] {
			quarantined[res.Host] = true
			res.Quarantined = true
		}
		return false
	}
	for _, play := range pb.Plays {
		hosts := live(r.inv.Group(play.HostGroup))
		if len(hosts) == 0 {
			// Every host of the play is quarantined; skip it rather
			// than fail the whole playbook.
			continue
		}
		if play.GatherFacts {
			if forked {
				pool.Each(len(hosts), func(i int) error {
					r.gatherFacts(hosts[i])
					return nil
				})
			} else {
				for _, h := range hosts {
					r.gatherFacts(h)
				}
			}
		}
		if r.Batched {
			// One push per play per host.
			for _, h := range hosts {
				if h.Node != nil {
					h.Node.Advance(r.SSHLatency)
				}
			}
		}
		for _, task := range play.Tasks {
			if forked && len(hosts) > 1 {
				// Fan the task out across hosts; collect in inventory
				// order so forked runs journal identically.
				taskResults := make([]TaskResult, len(hosts))
				pool.Each(len(hosts), func(i int) error {
					taskResults[i] = r.runTask(play, task, hosts[i])
					return nil
				})
				base := len(results)
				results = append(results, taskResults...)
				for i := base; i < len(results); i++ {
					res := &results[i]
					if res.Err != nil && strike(res) {
						return results, fmt.Errorf("orchestrate: play %q task %q failed on %s: %w",
							play.Name, task.Name, res.Host, res.Err)
					}
				}
			} else {
				stopped := false
				for _, h := range hosts {
					res := r.runTask(play, task, h)
					failed := res.Err != nil
					if failed {
						stopped = strike(&res)
					}
					results = append(results, res)
					if stopped {
						return results, fmt.Errorf("orchestrate: play %q task %q failed on %s: %w",
							play.Name, task.Name, h.Name, res.Err)
					}
				}
			}
			if hosts = live(hosts); len(hosts) == 0 {
				break
			}
		}
	}
	if len(quarantined) > 0 {
		names := make([]string, 0, len(quarantined))
		for h := range quarantined {
			names = append(names, h)
		}
		sort.Strings(names)
		return results, fmt.Errorf("orchestrate: %d host(s) quarantined after repeated task failures: %s",
			len(names), strings.Join(names, ", "))
	}
	return results, nil
}

// changedModules are the builtin modules that mutate host state — the
// Ansible ok/changed distinction the RECAP reports.
var changedModules = map[string]bool{
	"copy": true, "pkg": true, "service": true, "set_fact": true,
}

func (r *Runner) runTask(play Play, task Task, h *Host) TaskResult {
	res := TaskResult{Play: play.Name, Task: task.Name, Host: h.Name, Module: task.Module}
	fn := r.modules[task.Module]
	site := "orchestrate/" + h.Name + "/" + task.Name
	start := 0.0
	if h.Node != nil {
		start = h.Node.Now()
	}
	for attempt := 1; ; attempt++ {
		res.Attempts = attempt
		// Each attempt pays its own ssh round trip (a retry reconnects)
		// unless the play was pushed as one batch.
		if h.Node != nil && !r.Batched {
			h.Node.Advance(r.SSHLatency)
		}
		var (
			msg  string
			work cluster.Work
			err  error
		)
		if r.Faults != nil {
			if f := r.Faults.Check(site); f != nil {
				if f.Kind == fault.Latency {
					if h.Node != nil {
						h.Node.Advance(f.Delay)
					}
				} else {
					err = f
				}
			}
		}
		if err == nil {
			var args map[string]string
			if args, err = templateArgs(task.Args, play, h); err == nil {
				msg, work, err = fn(h, args)
			}
		}
		res.Msg, res.Err = msg, err
		if err == nil {
			res.Changed = changedModules[task.Module] && msg != "already installed"
			if h.Node != nil {
				h.Node.Run(work)
				res.Elapsed = h.Node.Now() - start
			}
			return res
		}
		// Crashes are terminal; other failures retry under the policy.
		// Builtin modules are idempotent, so re-running one is safe.
		if fault.IsTerminal(err) || attempt > r.Retry.Max {
			if h.Node != nil {
				res.Elapsed = h.Node.Now() - start
			}
			return res
		}
		if delay := r.Retry.Delay(r.Faults.Seed(), site, attempt); h.Node != nil {
			h.Node.Advance(delay)
		}
	}
}

// templateArgs substitutes `{{ var }}` references in task arguments.
// Lookup order: host vars, gathered facts, play vars. Unknown variables
// are an error — silent empty expansion is how ad-hoc scripts rot.
func templateArgs(args map[string]string, play Play, h *Host) (map[string]string, error) {
	out := make(map[string]string, len(args))
	for k, v := range args {
		expanded, err := expand(v, play, h)
		if err != nil {
			return nil, err
		}
		out[k] = expanded
	}
	return out, nil
}

func expand(s string, play Play, h *Host) (string, error) {
	var sb strings.Builder
	for {
		i := strings.Index(s, "{{")
		if i < 0 {
			sb.WriteString(s)
			return sb.String(), nil
		}
		j := strings.Index(s[i:], "}}")
		if j < 0 {
			return "", fmt.Errorf("orchestrate: unterminated {{ in %q", s)
		}
		name := strings.TrimSpace(s[i+2 : i+j])
		var val string
		var ok bool
		if val, ok = h.Vars[name]; !ok {
			if val, ok = h.facts[name]; !ok {
				val, ok = play.Vars[name]
			}
		}
		if !ok {
			return "", fmt.Errorf("orchestrate: undefined variable %q (host vars, facts, play vars)", name)
		}
		sb.WriteString(s[:i])
		sb.WriteString(val)
		s = s[i+j+2:]
	}
}

// gatherFacts populates the host's fact map from its node profile.
func (r *Runner) gatherFacts(h *Host) {
	if h.Node == nil {
		h.facts["machine"] = "control"
		return
	}
	for k, v := range h.Node.Facts() {
		h.facts[k] = v
	}
}

// FormatResults renders task results as a compact report: one line per
// task (with retry counts), then an Ansible-style per-host recap.
func FormatResults(results []TaskResult) string {
	var sb strings.Builder
	type tally struct {
		ok, changed, failed int
		quarantined         bool
	}
	tallies := make(map[string]*tally)
	var hosts []string
	for _, r := range results {
		t, seen := tallies[r.Host]
		if !seen {
			t = &tally{}
			tallies[r.Host] = t
			hosts = append(hosts, r.Host)
		}
		status := "ok"
		switch {
		case r.Failed():
			status = "FAILED"
			t.failed++
		case r.Changed:
			status = "chngd"
			t.changed++
			t.ok++
		default:
			t.ok++
		}
		attempts := ""
		if r.Attempts > 1 {
			attempts = fmt.Sprintf(" (%d attempts)", r.Attempts)
		}
		fmt.Fprintf(&sb, "%-6s [%s] %s on %s: %s%s\n", status, r.Play, r.Task, r.Host, r.Msg, attempts)
		if r.Err != nil {
			fmt.Fprintf(&sb, "       error: %v\n", r.Err)
		}
		if r.Quarantined {
			t.quarantined = true
			fmt.Fprintf(&sb, "       host %s quarantined: no further tasks will run on it\n", r.Host)
		}
	}
	if len(hosts) == 0 {
		return sb.String()
	}
	sort.Strings(hosts)
	sb.WriteString("\nPLAY RECAP\n")
	for _, h := range hosts {
		t := tallies[h]
		mark := ""
		if t.quarantined {
			mark = "   QUARANTINED"
		}
		fmt.Fprintf(&sb, "%-16s : ok=%-3d changed=%-3d failed=%-3d%s\n", h, t.ok, t.changed, t.failed, mark)
	}
	return sb.String()
}
