package orchestrate

import (
	"fmt"
	"testing"

	"popper/internal/cluster"
)

func scaleFixture(t *testing.T) (*Runner, *Inventory, *cluster.Cluster, *cluster.MachineProfile) {
	t.Helper()
	p, err := cluster.Profile("cloudlab-c220g1")
	if err != nil {
		t.Fatal(err)
	}
	inv := NewInventory()
	return NewRunner(inv), inv, cluster.New(1), p
}

func TestScaleGroupGrowsAndShrinks(t *testing.T) {
	r, inv, clus, prof := scaleFixture(t)
	hosts, err := r.ScaleGroup(clus, prof, "sweep", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 4 {
		t.Fatalf("scaled to %d hosts, want 4", len(hosts))
	}
	for k, h := range hosts {
		if want := fmt.Sprintf("sweep-%d", k); h.Name != want {
			t.Fatalf("host %d named %q, want %q", k, h.Name, want)
		}
		if h.Node == nil {
			t.Fatalf("host %s has no cluster node", h.Name)
		}
	}
	if got := len(clus.Nodes()); got != 4 {
		t.Fatalf("cluster leases %d nodes, want 4", got)
	}

	// Growing is incremental: the original hosts survive.
	h0 := hosts[0]
	hosts, err = r.ScaleGroup(clus, prof, "sweep", 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 6 || hosts[0] != h0 {
		t.Fatalf("grow to 6 must reuse existing hosts (got %d)", len(hosts))
	}

	// Shrinking removes the highest-numbered hosts and releases their
	// nodes back to the provider.
	hosts, err = r.ScaleGroup(clus, prof, "sweep", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 2 || hosts[0] != h0 {
		t.Fatalf("shrink to 2 must keep the low-numbered hosts")
	}
	if got := len(clus.Nodes()); got != 2 {
		t.Fatalf("cluster leases %d nodes after shrink, want 2", got)
	}
	if _, ok := inv.Host("sweep-5"); ok {
		t.Fatal("shrunk host must leave the inventory")
	}
	// Idempotent: scaling to the current size changes nothing.
	again, err := r.ScaleGroup(clus, prof, "sweep", 2)
	if err != nil || len(again) != 2 {
		t.Fatalf("no-op scale: %d hosts, %v", len(again), err)
	}
	if _, err := r.ScaleGroup(clus, prof, "sweep", -1); err == nil {
		t.Fatal("negative scale must error")
	}
}

func TestInventoryRemove(t *testing.T) {
	inv := NewInventory()
	a, b := NewHost("a", nil), NewHost("b", nil)
	if err := inv.Add(a, "g"); err != nil {
		t.Fatal(err)
	}
	if err := inv.Add(b, "g"); err != nil {
		t.Fatal(err)
	}
	inv.Remove("a")
	if _, ok := inv.Host("a"); ok {
		t.Fatal("removed host still resolvable")
	}
	if g := inv.Group("g"); len(g) != 1 || g[0] != b {
		t.Fatalf("group g = %v, want just b", g)
	}
	if g := inv.Group("all"); len(g) != 1 {
		t.Fatalf("group all has %d hosts, want 1", len(g))
	}
	inv.Remove("a") // idempotent
	inv.Remove("b")
	if len(inv.Groups()) != 0 {
		t.Fatalf("empty inventory still has groups: %v", inv.Groups())
	}
	// A removed name can be re-added (the elastic scale-up after a
	// scale-down).
	if err := inv.Add(NewHost("a", nil), "g"); err != nil {
		t.Fatalf("re-adding a removed host: %v", err)
	}
}

func TestHostSpecsCarryProfilesAndClocks(t *testing.T) {
	r, inv, clus, prof := scaleFixture(t)
	if _, err := r.ScaleGroup(clus, prof, "sweep", 3); err != nil {
		t.Fatal(err)
	}
	specs := inv.HostSpecs("sweep")
	if len(specs) != 3 {
		t.Fatalf("%d specs, want 3", len(specs))
	}
	for i, s := range specs {
		if s.Name != fmt.Sprintf("sweep-%d", i) {
			t.Fatalf("spec %d named %q", i, s.Name)
		}
		if s.Profile == nil || s.Node == nil {
			t.Fatalf("spec %s missing profile or node", s.Name)
		}
		if s.Profile != s.Node.Profile() {
			t.Fatalf("spec %s profile does not match its node", s.Name)
		}
	}
	// A control host without a node still schedules, on the default
	// profile.
	if err := inv.Add(NewHost("control", nil), "mixed"); err != nil {
		t.Fatal(err)
	}
	mixed := inv.HostSpecs("mixed")
	if len(mixed) != 1 || mixed[0].Profile == nil || mixed[0].Node != nil {
		t.Fatalf("control-host spec = %+v", mixed)
	}
}

// TestForksZeroMeansPerCPU pins the normalized Forks contract: the
// default runner forks one worker per CPU (sched.Jobs semantics), and
// results still journal in inventory order.
func TestForksZeroMeansPerCPU(t *testing.T) {
	inv, _ := testInventory(t, 13)
	r := NewRunner(inv) // Forks left at 0
	pb, err := ParsePlaybook(samplePlaybook)
	if err != nil {
		t.Fatal(err)
	}
	results, err := r.Run(pb)
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewRunner(func() *Inventory { i, _ := testInventory(t, 13); return i }())
	r2.Forks = 1
	serial, err := r2.Run(pb)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(serial) {
		t.Fatalf("default-forks results %d, serial %d", len(results), len(serial))
	}
	for i := range serial {
		if results[i].Host != serial[i].Host || results[i].Task != serial[i].Task ||
			results[i].Msg != serial[i].Msg {
			t.Fatalf("result %d diverged between default forks and serial:\n%+v\n%+v",
				i, results[i], serial[i])
		}
	}
}
