package orchestrate

import (
	"fmt"
	"strings"
	"testing"

	"popper/internal/cluster"
)

const samplePlaybook = `
- name: configure
  hosts: storage
  tasks:
    - name: install toolchain
      pkg: {name: "gcc,make"}
    - name: push config
      copy: {dest: /etc/gassyfs.conf, content: "segment=2GB"}
    - name: start daemon
      service: {name: gassyfsd, state: started}
- name: run
  hosts: all
  tasks:
    - name: execute experiment
      shell: ./run.sh
`

func testInventory(t *testing.T, seed int64) (*Inventory, []*cluster.Node) {
	t.Helper()
	c := cluster.New(seed)
	nodes, err := c.Provision("cloudlab-c220g1", 3)
	if err != nil {
		t.Fatal(err)
	}
	inv := NewInventory()
	for i, n := range nodes {
		h := NewHost(n.ID(), n)
		groups := []string{"storage"}
		if i == 0 {
			groups = []string{"head"}
		}
		if err := inv.Add(h, groups...); err != nil {
			t.Fatal(err)
		}
	}
	return inv, nodes
}

func TestParsePlaybook(t *testing.T) {
	pb, err := ParsePlaybook(samplePlaybook)
	if err != nil {
		t.Fatal(err)
	}
	if len(pb.Plays) != 2 {
		t.Fatalf("plays = %d", len(pb.Plays))
	}
	p := pb.Plays[0]
	if p.Name != "configure" || p.HostGroup != "storage" || len(p.Tasks) != 3 {
		t.Fatalf("play = %+v", p)
	}
	if p.Tasks[0].Module != "pkg" || p.Tasks[0].Args["name"] != "gcc,make" {
		t.Fatalf("task0 = %+v", p.Tasks[0])
	}
	if p.Tasks[1].Args["dest"] != "/etc/gassyfs.conf" {
		t.Fatalf("task1 = %+v", p.Tasks[1])
	}
	if pb.Plays[1].Tasks[0].Args["_raw"] != "./run.sh" {
		t.Fatalf("shell raw arg = %+v", pb.Plays[1].Tasks[0])
	}
}

func TestParsePlaybookErrors(t *testing.T) {
	cases := []string{
		``,                                   // empty
		`key: value`,                         // not a list
		`- tasks:` + "\n" + `    - shell: x`, // no hosts
		`- name: p` + "\n" + `  hosts: all`,  // no tasks
		"- name: p\n  hosts: all\n  tasks:\n    - name: t",                // no module
		"- name: p\n  hosts: all\n  tasks:\n    - shell: a\n      pkg: b", // two modules
		"- name: p\n  hosts: all\n  tasks:\n    - bad yaml [",
	}
	for _, src := range cases {
		if _, err := ParsePlaybook(src); err == nil {
			t.Errorf("ParsePlaybook(%q) should fail", src)
		}
	}
}

func TestInventoryGroups(t *testing.T) {
	inv, _ := testInventory(t, 1)
	if len(inv.Group("all")) != 3 {
		t.Fatalf("all = %d", len(inv.Group("all")))
	}
	if len(inv.Group("storage")) != 2 || len(inv.Group("head")) != 1 {
		t.Fatalf("groups = %v", inv.Groups())
	}
	if _, ok := inv.Host(inv.Group("head")[0].Name); !ok {
		t.Fatal("host lookup failed")
	}
	if _, ok := inv.Host("ghost"); ok {
		t.Fatal("unknown host lookup should miss")
	}
	// duplicates and empty names rejected
	if err := inv.Add(NewHost("", nil)); err == nil {
		t.Fatal("empty host name should fail")
	}
	dup := inv.Group("all")[0].Name
	if err := inv.Add(NewHost(dup, nil)); err == nil {
		t.Fatal("duplicate host should fail")
	}
}

func TestRunPlaybook(t *testing.T) {
	inv, _ := testInventory(t, 2)
	r := NewRunner(inv)
	pb, _ := ParsePlaybook(samplePlaybook)
	results, err := r.Run(pb)
	if err != nil {
		t.Fatalf("%v\n%s", err, FormatResults(results))
	}
	// configure: 3 tasks x 2 storage hosts; run: 1 task x 3 hosts
	if len(results) != 9 {
		t.Fatalf("results = %d\n%s", len(results), FormatResults(results))
	}
	for _, h := range inv.Group("storage") {
		if !h.HasPackage("gcc") || !h.HasPackage("make") {
			t.Fatalf("packages missing on %s", h.Name)
		}
		if !h.ServiceRunning("gassyfsd") {
			t.Fatalf("service not running on %s", h.Name)
		}
		if b, ok := h.File("/etc/gassyfs.conf"); !ok || string(b) != "segment=2GB" {
			t.Fatalf("config file missing on %s", h.Name)
		}
	}
	out := FormatResults(results)
	if !strings.Contains(out, "ok") || strings.Contains(out, "FAILED") {
		t.Fatalf("report:\n%s", out)
	}
}

func TestRunAdvancesClocks(t *testing.T) {
	inv, nodes := testInventory(t, 3)
	r := NewRunner(inv)
	pb, _ := ParsePlaybook(samplePlaybook)
	if _, err := r.Run(pb); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if n.Now() <= 0 {
			t.Fatalf("node %s clock did not advance", n.ID())
		}
	}
}

func TestBatchedVsPerTask(t *testing.T) {
	elapsed := func(batched bool) float64 {
		inv, nodes := testInventory(t, 4)
		r := NewRunner(inv)
		r.Batched = batched
		pb, _ := ParsePlaybook(samplePlaybook)
		if _, err := r.Run(pb); err != nil {
			panic(err)
		}
		return cluster.MaxClock(nodes)
	}
	per, bat := elapsed(false), elapsed(true)
	if bat >= per {
		t.Fatalf("batched %v should beat per-task %v", bat, per)
	}
}

func TestFactsGathering(t *testing.T) {
	inv, _ := testInventory(t, 5)
	r := NewRunner(inv)
	pb, _ := ParsePlaybook(`
- name: sanity
  hosts: all
  tasks:
    - name: check platform
      assert_fact: {key: machine, equals: cloudlab-c220g1}
`)
	if _, err := r.Run(pb); err != nil {
		t.Fatal(err)
	}
	h := inv.Group("all")[0]
	if h.Facts()["cores"] != "16" {
		t.Fatalf("facts = %v", h.Facts())
	}
}

func TestAssertFactFails(t *testing.T) {
	inv, _ := testInventory(t, 6)
	r := NewRunner(inv)
	pb, _ := ParsePlaybook(`
- name: sanity
  hosts: all
  tasks:
    - name: wrong platform expectation
      assert_fact: {key: machine, equals: xeon-2005}
`)
	results, err := r.Run(pb)
	if err == nil {
		t.Fatal("assertion on wrong machine must fail")
	}
	if len(results) == 0 || !results[len(results)-1].Failed() {
		t.Fatalf("results = %v", results)
	}
	if !strings.Contains(FormatResults(results), "FAILED") {
		t.Fatal("report should mark failure")
	}
}

func TestNoFactsWithoutGathering(t *testing.T) {
	inv, _ := testInventory(t, 7)
	r := NewRunner(inv)
	pb, _ := ParsePlaybook(`
- name: nofacts
  hosts: all
  gather_facts: false
  tasks:
    - name: should fail
      assert_fact: {key: machine}
`)
	if _, err := r.Run(pb); err == nil {
		t.Fatal("assert_fact without gathering must fail")
	}
}

func TestCheckMode(t *testing.T) {
	inv, _ := testInventory(t, 8)
	r := NewRunner(inv)
	good, _ := ParsePlaybook(samplePlaybook)
	if err := r.Check(good); err != nil {
		t.Fatal(err)
	}
	// unknown group
	pb, _ := ParsePlaybook("- name: p\n  hosts: ghost-group\n  tasks:\n    - ping:")
	if err := r.Check(pb); err == nil {
		t.Fatal("unknown group must fail check")
	}
	// unknown module
	pb, _ = ParsePlaybook("- name: p\n  hosts: all\n  tasks:\n    - frobnicate: x")
	if err := r.Check(pb); err == nil {
		t.Fatal("unknown module must fail check")
	}
	// Check must not execute anything
	for _, h := range inv.Group("all") {
		if h.Node.Now() != 0 {
			t.Fatal("check mode must not advance clocks")
		}
	}
}

func TestModuleErrors(t *testing.T) {
	inv, _ := testInventory(t, 9)
	r := NewRunner(inv)
	for _, src := range []string{
		"- name: p\n  hosts: all\n  tasks:\n    - shell:",                       // no command
		"- name: p\n  hosts: all\n  tasks:\n    - copy: {content: x}",           // no dest
		"- name: p\n  hosts: all\n  tasks:\n    - pkg:",                         // no name
		"- name: p\n  hosts: all\n  tasks:\n    - service: {state: started}",    // no name
		"- name: p\n  hosts: all\n  tasks:\n    - service: {name: x, state: q}", // bad state
		"- name: p\n  hosts: all\n  tasks:\n    - assert_fact:",                 // no key
	} {
		pb, err := ParsePlaybook(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := r.Run(pb); err == nil {
			t.Errorf("Run(%q) should fail", src)
		}
	}
}

func TestStopsAtFirstFailure(t *testing.T) {
	inv, _ := testInventory(t, 10)
	r := NewRunner(inv)
	pb, _ := ParsePlaybook(`
- name: p
  hosts: all
  tasks:
    - name: boom
      shell:
    - name: never runs
      ping:
`)
	results, err := r.Run(pb)
	if err == nil {
		t.Fatal("should fail")
	}
	for _, res := range results {
		if res.Task == "never runs" {
			t.Fatal("execution must stop at first failure")
		}
	}
}

func TestCustomModule(t *testing.T) {
	inv, _ := testInventory(t, 11)
	r := NewRunner(inv)
	called := 0
	r.RegisterModule("benchmark", func(h *Host, args map[string]string) (string, cluster.Work, error) {
		called++
		return "bench " + args["suite"], cluster.Work{CPUOps: 1e9}, nil
	})
	pb, _ := ParsePlaybook("- name: p\n  hosts: storage\n  tasks:\n    - benchmark: {suite: stress-ng}")
	results, err := r.Run(pb)
	if err != nil {
		t.Fatal(err)
	}
	if called != 2 || len(results) != 2 {
		t.Fatalf("called = %d, results = %d", called, len(results))
	}
	if results[0].Elapsed <= 0 {
		t.Fatal("elapsed should be positive for node hosts")
	}
}

func TestPkgIdempotent(t *testing.T) {
	inv, _ := testInventory(t, 12)
	r := NewRunner(inv)
	pb, _ := ParsePlaybook(`
- name: p
  hosts: head
  tasks:
    - name: first
      pkg: {name: gcc}
    - name: second
      pkg: {name: gcc}
`)
	results, err := r.Run(pb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(results[1].Msg, "already installed") {
		t.Fatalf("second install = %q", results[1].Msg)
	}
}

func TestControlHostTasks(t *testing.T) {
	inv := NewInventory()
	if err := inv.Add(NewHost("localhost", nil)); err != nil {
		t.Fatal(err)
	}
	r := NewRunner(inv)
	pb, _ := ParsePlaybook("- name: local\n  hosts: all\n  tasks:\n    - ping:\n    - shell: make pdf")
	results, err := r.Run(pb)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Elapsed != 0 {
		t.Fatal("control host has no clock to advance")
	}
	h, _ := inv.Host("localhost")
	if h.Facts()["machine"] != "control" {
		t.Fatalf("facts = %v", h.Facts())
	}
}

func TestVariableTemplating(t *testing.T) {
	inv, _ := testInventory(t, 13)
	h := inv.Group("head")[0]
	h.Vars["mount_point"] = "/mnt/gassyfs"
	r := NewRunner(inv)
	pb, err := ParsePlaybook(`
- name: templated
  hosts: head
  vars:
    segment: 2GB
  tasks:
    - name: write config
      copy: {dest: "{{ mount_point }}/conf", content: "segment={{ segment }} on {{ machine }}"}
`)
	if err != nil {
		t.Fatal(err)
	}
	results, err := r.Run(pb)
	if err != nil {
		t.Fatalf("%v\n%s", err, FormatResults(results))
	}
	b, ok := h.File("/mnt/gassyfs/conf")
	if !ok {
		t.Fatal("templated dest not written")
	}
	if string(b) != "segment=2GB on cloudlab-c220g1" {
		t.Fatalf("content = %q", b)
	}
}

func TestTemplatingPrecedence(t *testing.T) {
	// host vars shadow facts shadow play vars
	inv, _ := testInventory(t, 14)
	h := inv.Group("head")[0]
	h.Vars["machine"] = "host-override"
	r := NewRunner(inv)
	pb, _ := ParsePlaybook(`
- name: p
  hosts: head
  vars:
    machine: play-level
  tasks:
    - copy: {dest: /out, content: "{{ machine }}"}
`)
	if _, err := r.Run(pb); err != nil {
		t.Fatal(err)
	}
	b, _ := h.File("/out")
	if string(b) != "host-override" {
		t.Fatalf("precedence broken: %q", b)
	}
}

func TestTemplatingErrors(t *testing.T) {
	inv, _ := testInventory(t, 15)
	r := NewRunner(inv)
	pb, _ := ParsePlaybook(`
- name: p
  hosts: all
  tasks:
    - copy: {dest: /x, content: "{{ undefined_variable }}"}
`)
	if _, err := r.Run(pb); err == nil {
		t.Fatal("undefined variable must fail")
	}
	pb, _ = ParsePlaybook(`
- name: p
  hosts: all
  tasks:
    - copy: {dest: /x, content: "{{ unterminated"}
`)
	if _, err := r.Run(pb); err == nil {
		t.Fatal("unterminated template must fail")
	}
}

func TestPlayVarsMustBeMapping(t *testing.T) {
	if _, err := ParsePlaybook("- name: p\n  hosts: all\n  vars: [1, 2]\n  tasks:\n    - ping:"); err == nil {
		t.Fatal("list vars must fail")
	}
}

func TestForkedMatchesSerial(t *testing.T) {
	run := func(forks int) []TaskResult {
		inv, _ := testInventory(t, 7)
		r := NewRunner(inv)
		r.Forks = forks
		pb, _ := ParsePlaybook(samplePlaybook)
		results, err := r.Run(pb)
		if err != nil {
			t.Fatalf("forks=%d: %v", forks, err)
		}
		return results
	}
	serial, forked := run(1), run(4)
	if len(serial) != len(forked) {
		t.Fatalf("result count: serial %d, forked %d", len(serial), len(forked))
	}
	// Same inventory order, same outcomes: forked execution must be
	// journal-identical to serial.
	for i := range serial {
		s, f := serial[i], forked[i]
		if s.Play != f.Play || s.Task != f.Task || s.Host != f.Host ||
			s.Module != f.Module || s.Msg != f.Msg || s.Elapsed != f.Elapsed {
			t.Fatalf("result %d diverged:\nserial: %+v\nforked: %+v", i, s, f)
		}
	}
}

func TestForkedLowersMakespan(t *testing.T) {
	elapsed := func(forks int) float64 {
		inv, nodes := testInventory(t, 9)
		r := NewRunner(inv)
		r.Batched = true
		r.Forks = forks
		pb, _ := ParsePlaybook(samplePlaybook)
		if _, err := r.Run(pb); err != nil {
			t.Fatal(err)
		}
		return cluster.MaxClock(nodes)
	}
	serial, forked := elapsed(1), elapsed(4)
	// Virtual makespan is per-node, so forking does not change it — but
	// it must not change results either; wall-clock wins come from real
	// concurrency. What we can check: forked never inflates the virtual
	// clock.
	if forked > serial {
		t.Fatalf("forked makespan %v exceeds serial %v", forked, serial)
	}
}

func TestForkedFailureCompletesPlayRemainder(t *testing.T) {
	inv, _ := testInventory(t, 11)
	r := NewRunner(inv)
	r.Forks = 4
	r.RegisterModule("fail", func(h *Host, _ map[string]string) (string, cluster.Work, error) {
		return "", cluster.Work{}, fmt.Errorf("induced")
	})
	pb, err := ParsePlaybook(`
- name: p
  hosts: all
  tasks:
    - name: boom
      fail: {msg: "induced"}
`)
	if err != nil {
		t.Fatal(err)
	}
	results, runErr := r.Run(pb)
	if runErr == nil {
		t.Fatal("playbook with failing task must error")
	}
	// Under forks the failing task still completes on every host of the
	// play before the playbook stops.
	if len(results) != len(inv.Group("all")) {
		t.Fatalf("results = %d, want one per host (%d)", len(results), len(inv.Group("all")))
	}
	for _, res := range results {
		if res.Err == nil {
			t.Fatalf("host %s should have failed", res.Host)
		}
	}
}
