// Package plot renders experiment figures as deterministic ASCII and SVG
// artifacts — the analysis/visualization tier of the Popper toolchain
// (the role Jupyter/Gnuplot play in the paper). Figures regenerate from
// results tables via versioned code, never by hand, so every figure in a
// Popper repository is a pure function of its results.csv.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Bucket is one histogram bin: [Lo, Hi) except the last, which is closed.
type Bucket struct {
	Lo, Hi float64
	Count  int
}

// Histogram is a binned distribution (Figure torpor-variability's form).
type Histogram struct {
	Title   string
	XLabel  string
	Width   float64
	Buckets []Bucket
}

// NewHistogram bins values with the given bucket width. Bucket boundaries
// are aligned to multiples of width, matching the paper's "(2.2, 2.3]"
// convention: a value x lands in the bucket whose half-open interval
// (lo, hi] contains it.
func NewHistogram(values []float64, width float64) (*Histogram, error) {
	if width <= 0 {
		return nil, fmt.Errorf("plot: bucket width must be positive")
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("plot: no values to bin")
	}
	counts := make(map[int]int)
	minB, maxB := math.MaxInt32, math.MinInt32
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("plot: non-finite value %v", v)
		}
		// (lo, hi] binning: ceil(v/width) - 1 gives the bucket index whose
		// interval (i*width, (i+1)*width] contains v.
		b := int(math.Ceil(v/width)) - 1
		if float64(b+1)*width < v { // guard float error: v above bucket
			b++
		}
		if float64(b)*width >= v { // guard float error: v at/below lower edge
			b--
		}
		counts[b]++
		if b < minB {
			minB = b
		}
		if b > maxB {
			maxB = b
		}
	}
	h := &Histogram{Width: width}
	for b := minB; b <= maxB; b++ {
		h.Buckets = append(h.Buckets, Bucket{
			Lo:    float64(b) * width,
			Hi:    float64(b+1) * width,
			Count: counts[b],
		})
	}
	return h, nil
}

// Mode returns the bucket with the highest count (first on ties).
func (h *Histogram) Mode() Bucket {
	best := h.Buckets[0]
	for _, b := range h.Buckets[1:] {
		if b.Count > best.Count {
			best = b
		}
	}
	return best
}

// Total returns the number of binned values.
func (h *Histogram) Total() int {
	n := 0
	for _, b := range h.Buckets {
		n += b.Count
	}
	return n
}

// ASCII renders the histogram with one bar row per bucket.
func (h *Histogram) ASCII() string {
	var sb strings.Builder
	if h.Title != "" {
		fmt.Fprintf(&sb, "%s\n", h.Title)
	}
	maxCount := 0
	for _, b := range h.Buckets {
		if b.Count > maxCount {
			maxCount = b.Count
		}
	}
	const maxBar = 50
	for _, b := range h.Buckets {
		bar := 0
		if maxCount > 0 {
			bar = b.Count * maxBar / maxCount
		}
		fmt.Fprintf(&sb, "(%5.2f, %5.2f] |%-*s %d\n", b.Lo, b.Hi, maxBar, strings.Repeat("#", bar), b.Count)
	}
	if h.XLabel != "" {
		fmt.Fprintf(&sb, "x: %s\n", h.XLabel)
	}
	return sb.String()
}

// SVG renders the histogram as a standalone SVG document.
func (h *Histogram) SVG() string {
	const w, ht, pad = 640, 360, 48
	maxCount := 0
	for _, b := range h.Buckets {
		if b.Count > maxCount {
			maxCount = b.Count
		}
	}
	if maxCount == 0 {
		maxCount = 1
	}
	var sb strings.Builder
	svgHeader(&sb, w, ht, h.Title)
	n := len(h.Buckets)
	barW := float64(w-2*pad) / float64(n)
	for i, b := range h.Buckets {
		barH := float64(b.Count) / float64(maxCount) * float64(ht-2*pad)
		x := float64(pad) + float64(i)*barW
		y := float64(ht-pad) - barH
		fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#4878a8" stroke="#ffffff"/>`+"\n",
			x, y, barW, barH)
		fmt.Fprintf(&sb, `<text x="%.1f" y="%d" font-size="9" text-anchor="middle">%.1f</text>`+"\n",
			x+barW/2, ht-pad+14, b.Hi)
	}
	axis(&sb, w, ht, pad, h.XLabel, "count")
	sb.WriteString("</svg>\n")
	return sb.String()
}

// Series is one named line in a LineChart.
type Series struct {
	Name string
	X, Y []float64
}

// LineChart plots one or more series (Figure gassyfs-git's form).
type LineChart struct {
	Title, XLabel, YLabel string
	Series                []Series
	// LogY requests a logarithmic y axis in the ASCII rendering.
	LogY bool
}

// Add appends a series after validating lengths.
func (c *LineChart) Add(name string, x, y []float64) error {
	if len(x) != len(y) || len(x) == 0 {
		return fmt.Errorf("plot: series %q has mismatched or empty data", name)
	}
	for i := range x {
		if math.IsNaN(x[i]) || math.IsNaN(y[i]) {
			return fmt.Errorf("plot: series %q has NaN at %d", name, i)
		}
	}
	c.Series = append(c.Series, Series{Name: name, X: append([]float64(nil), x...), Y: append([]float64(nil), y...)})
	return nil
}

func (c *LineChart) bounds() (xmin, xmax, ymin, ymax float64, err error) {
	if len(c.Series) == 0 {
		return 0, 0, 0, 0, fmt.Errorf("plot: chart has no series")
	}
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	return xmin, xmax, ymin, ymax, nil
}

// ASCII renders the chart on a character grid with per-series markers.
func (c *LineChart) ASCII() (string, error) {
	const cols, rows = 72, 20
	xmin, xmax, ymin, ymax, err := c.bounds()
	if err != nil {
		return "", err
	}
	yTo := func(y float64) float64 { return y }
	if c.LogY {
		if ymin <= 0 {
			return "", fmt.Errorf("plot: log y axis requires positive values")
		}
		yTo = math.Log10
	}
	lo, hi := yTo(ymin), yTo(ymax)
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	markers := "*o+x@%"
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		for i := range s.X {
			cx := int((s.X[i] - xmin) / (xmax - xmin) * float64(cols-1))
			cy := int((yTo(s.Y[i]) - lo) / (hi - lo) * float64(rows-1))
			grid[rows-1-cy][cx] = m
		}
	}
	var sb strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&sb, "%s\n", c.Title)
	}
	fmt.Fprintf(&sb, "%10.3g +%s\n", ymax, strings.Repeat("-", cols))
	for _, row := range grid {
		fmt.Fprintf(&sb, "%10s |%s\n", "", row)
	}
	fmt.Fprintf(&sb, "%10.3g +%s\n", ymin, strings.Repeat("-", cols))
	fmt.Fprintf(&sb, "%10s  %-8.3g%*s\n", "", xmin, cols-8, fmt.Sprintf("%.3g", xmax))
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&sb, "x: %s   y: %s\n", c.XLabel, c.YLabel)
	}
	for si, s := range c.Series {
		fmt.Fprintf(&sb, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return sb.String(), nil
}

// SVG renders the chart as a standalone SVG document with polylines.
func (c *LineChart) SVG() (string, error) {
	const w, ht, pad = 640, 360, 48
	xmin, xmax, ymin, ymax, err := c.bounds()
	if err != nil {
		return "", err
	}
	colors := []string{"#4878a8", "#a85448", "#48a878", "#a89a48", "#7848a8", "#484848"}
	var sb strings.Builder
	svgHeader(&sb, w, ht, c.Title)
	for si, s := range c.Series {
		// sort points by x for a sane polyline
		type pt struct{ x, y float64 }
		pts := make([]pt, len(s.X))
		for i := range s.X {
			pts[i] = pt{s.X[i], s.Y[i]}
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
		var coords []string
		for _, p := range pts {
			px := float64(pad) + (p.x-xmin)/(xmax-xmin)*float64(w-2*pad)
			py := float64(ht-pad) - (p.y-ymin)/(ymax-ymin)*float64(ht-2*pad)
			coords = append(coords, fmt.Sprintf("%.1f,%.1f", px, py))
		}
		color := colors[si%len(colors)]
		fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(coords, " "), color)
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="11" fill="%s">%s</text>`+"\n",
			pad+8, pad+14+16*si, color, s.Name)
	}
	axis(&sb, w, ht, pad, c.XLabel, c.YLabel)
	sb.WriteString("</svg>\n")
	return sb.String(), nil
}

// Heatmap plots a matrix of values (Figure bww-airtemp's form).
type Heatmap struct {
	Title, XLabel, YLabel string
	// Rows[i][j] is the cell value at row i, column j.
	Rows      [][]float64
	RowLabels []string
	ColLabels []string
}

// ASCII renders the heatmap with density shading.
func (h *Heatmap) ASCII() (string, error) {
	if len(h.Rows) == 0 {
		return "", fmt.Errorf("plot: empty heatmap")
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range h.Rows {
		for _, v := range row {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	shades := " .:-=+*#%@"
	var sb strings.Builder
	if h.Title != "" {
		fmt.Fprintf(&sb, "%s\n", h.Title)
	}
	for i, row := range h.Rows {
		label := ""
		if i < len(h.RowLabels) {
			label = h.RowLabels[i]
		}
		fmt.Fprintf(&sb, "%12s |", label)
		for _, v := range row {
			idx := int((v - lo) / (hi - lo) * float64(len(shades)-1))
			sb.WriteByte(shades[idx])
		}
		sb.WriteString("|\n")
	}
	fmt.Fprintf(&sb, "scale: %q maps [%.4g, %.4g]\n", shades, lo, hi)
	if h.XLabel != "" || h.YLabel != "" {
		fmt.Fprintf(&sb, "x: %s   y: %s\n", h.XLabel, h.YLabel)
	}
	return sb.String(), nil
}

// SVG renders the heatmap as colored cells.
func (h *Heatmap) SVG() (string, error) {
	if len(h.Rows) == 0 {
		return "", fmt.Errorf("plot: empty heatmap")
	}
	const w, ht, pad = 640, 360, 48
	lo, hi := math.Inf(1), math.Inf(-1)
	cols := 0
	for _, row := range h.Rows {
		if len(row) > cols {
			cols = len(row)
		}
		for _, v := range row {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	var sb strings.Builder
	svgHeader(&sb, w, ht, h.Title)
	cellW := float64(w-2*pad) / float64(cols)
	cellH := float64(ht-2*pad) / float64(len(h.Rows))
	for i, row := range h.Rows {
		for j, v := range row {
			frac := (v - lo) / (hi - lo)
			// blue (cold) to red (hot)
			r := int(40 + 200*frac)
			b := int(240 - 200*frac)
			fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="rgb(%d,64,%d)"/>`+"\n",
				float64(pad)+float64(j)*cellW, float64(pad)+float64(i)*cellH, cellW+0.5, cellH+0.5, r, b)
		}
	}
	axis(&sb, w, ht, pad, h.XLabel, h.YLabel)
	sb.WriteString("</svg>\n")
	return sb.String(), nil
}

func svgHeader(sb *strings.Builder, w, h int, title string) {
	fmt.Fprintf(sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	fmt.Fprintf(sb, `<rect width="%d" height="%d" fill="#ffffff"/>`+"\n", w, h)
	if title != "" {
		fmt.Fprintf(sb, `<text x="%d" y="20" font-size="14" text-anchor="middle">%s</text>`+"\n", w/2, escape(title))
	}
}

func axis(sb *strings.Builder, w, h, pad int, xlabel, ylabel string) {
	fmt.Fprintf(sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n", pad, h-pad, w-pad, h-pad)
	fmt.Fprintf(sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n", pad, pad, pad, h-pad)
	if xlabel != "" {
		fmt.Fprintf(sb, `<text x="%d" y="%d" font-size="12" text-anchor="middle">%s</text>`+"\n", w/2, h-8, escape(xlabel))
	}
	if ylabel != "" {
		fmt.Fprintf(sb, `<text x="14" y="%d" font-size="12" text-anchor="middle" transform="rotate(-90 14 %d)">%s</text>`+"\n",
			h/2, h/2, escape(ylabel))
	}
}

func escape(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}
