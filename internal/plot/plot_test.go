package plot

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBinning(t *testing.T) {
	// The paper's convention: "(2.2, 2.3]" — half-open on the left.
	h, err := NewHistogram([]float64{2.21, 2.25, 2.3, 2.31, 1.0}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 5 {
		t.Fatalf("total = %d", h.Total())
	}
	var bucket23, bucket24 int
	for _, b := range h.Buckets {
		if math.Abs(b.Hi-2.3) < 1e-9 {
			bucket23 = b.Count
		}
		if math.Abs(b.Hi-2.4) < 1e-9 {
			bucket24 = b.Count
		}
	}
	if bucket23 != 3 { // 2.21, 2.25, 2.30 all in (2.2, 2.3]
		t.Fatalf("(2.2,2.3] count = %d, want 3", bucket23)
	}
	if bucket24 != 1 { // 2.31
		t.Fatalf("(2.3,2.4] count = %d, want 1", bucket24)
	}
}

func TestHistogramContiguousBuckets(t *testing.T) {
	h, err := NewHistogram([]float64{1, 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(h.Buckets); i++ {
		if math.Abs(h.Buckets[i].Lo-h.Buckets[i-1].Hi) > 1e-9 {
			t.Fatalf("buckets not contiguous: %+v", h.Buckets)
		}
	}
	// Empty middle buckets exist with zero counts.
	if len(h.Buckets) != 5 {
		t.Fatalf("buckets = %d, want 5", len(h.Buckets))
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil, 1); err == nil {
		t.Fatal("empty values should fail")
	}
	if _, err := NewHistogram([]float64{1}, 0); err == nil {
		t.Fatal("zero width should fail")
	}
	if _, err := NewHistogram([]float64{math.NaN()}, 1); err == nil {
		t.Fatal("NaN should fail")
	}
}

func TestHistogramMode(t *testing.T) {
	h, _ := NewHistogram([]float64{1.11, 1.15, 1.12, 2.5}, 0.1)
	m := h.Mode()
	if m.Count != 3 || math.Abs(m.Hi-1.2) > 1e-9 {
		t.Fatalf("mode = %+v", m)
	}
}

func TestHistogramRenders(t *testing.T) {
	h, _ := NewHistogram([]float64{1, 1.05, 2, 3}, 0.5)
	h.Title = "variability profile"
	h.XLabel = "speedup"
	ascii := h.ASCII()
	if !strings.Contains(ascii, "variability profile") || !strings.Contains(ascii, "#") {
		t.Fatalf("ascii:\n%s", ascii)
	}
	svg := h.SVG()
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "<rect") {
		t.Fatalf("svg:\n%s", svg)
	}
	if !strings.Contains(svg, "</svg>") {
		t.Fatal("svg unterminated")
	}
}

func TestLineChart(t *testing.T) {
	var c LineChart
	c.Title = "GassyFS scalability"
	c.XLabel, c.YLabel = "nodes", "time (s)"
	if err := c.Add("cloudlab", []float64{1, 2, 4, 8}, []float64{100, 62, 38, 24}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("ec2", []float64{1, 2, 4, 8}, []float64{140, 85, 52, 33}); err != nil {
		t.Fatal(err)
	}
	ascii, err := c.ASCII()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"GassyFS scalability", "*", "o", "cloudlab", "ec2"} {
		if !strings.Contains(ascii, want) {
			t.Fatalf("ascii missing %q:\n%s", want, ascii)
		}
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(svg, "<polyline") != 2 {
		t.Fatalf("svg series:\n%s", svg)
	}
}

func TestLineChartErrors(t *testing.T) {
	var c LineChart
	if err := c.Add("bad", []float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if err := c.Add("bad", nil, nil); err == nil {
		t.Fatal("empty series should fail")
	}
	if err := c.Add("bad", []float64{1}, []float64{math.NaN()}); err == nil {
		t.Fatal("NaN should fail")
	}
	if _, err := c.ASCII(); err == nil {
		t.Fatal("chart with no series should fail")
	}
	if _, err := c.SVG(); err == nil {
		t.Fatal("chart with no series should fail")
	}
}

func TestLineChartLogY(t *testing.T) {
	var c LineChart
	c.LogY = true
	c.Add("s", []float64{1, 2, 3}, []float64{1, 10, 100})
	if _, err := c.ASCII(); err != nil {
		t.Fatal(err)
	}
	var bad LineChart
	bad.LogY = true
	bad.Add("s", []float64{1, 2}, []float64{0, 1})
	if _, err := bad.ASCII(); err == nil {
		t.Fatal("log axis with zero should fail")
	}
}

func TestLineChartDegenerate(t *testing.T) {
	var c LineChart
	c.Add("flat", []float64{5, 5}, []float64{3, 3})
	if _, err := c.ASCII(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SVG(); err != nil {
		t.Fatal(err)
	}
}

func TestHeatmap(t *testing.T) {
	h := Heatmap{
		Title:     "air temperature",
		Rows:      [][]float64{{280, 290, 300}, {270, 275, 285}, {250, 255, 260}},
		RowLabels: []string{"60N", "0", "60S"},
	}
	ascii, err := h.ASCII()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ascii, "60N") || !strings.Contains(ascii, "scale:") {
		t.Fatalf("ascii:\n%s", ascii)
	}
	svg, err := h.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(svg, "<rect") < 9 {
		t.Fatalf("svg cells:\n%s", svg)
	}
	empty := Heatmap{}
	if _, err := empty.ASCII(); err == nil {
		t.Fatal("empty heatmap should fail")
	}
	if _, err := empty.SVG(); err == nil {
		t.Fatal("empty heatmap should fail")
	}
}

func TestHeatmapUniform(t *testing.T) {
	h := Heatmap{Rows: [][]float64{{1, 1}, {1, 1}}}
	if _, err := h.ASCII(); err != nil {
		t.Fatal(err)
	}
}

func TestSVGEscaping(t *testing.T) {
	h, _ := NewHistogram([]float64{1}, 1)
	h.Title = "a < b & c > d"
	svg := h.SVG()
	if strings.Contains(svg, "a < b & c") {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(svg, "a &lt; b &amp; c &gt; d") {
		t.Fatalf("escape output wrong:\n%s", svg)
	}
}

// Property: histogram conserves count and every value lies in its bucket.
func TestQuickHistogramConservation(t *testing.T) {
	f := func(raw []int16, wRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		width := float64(wRaw%50+1) / 10.0
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r) / 16.0
		}
		h, err := NewHistogram(vals, width)
		if err != nil {
			return false
		}
		if h.Total() != len(vals) {
			return false
		}
		// each value is inside some bucket (lo, hi]
		for _, v := range vals {
			ok := false
			for _, b := range h.Buckets {
				if v > b.Lo-1e-9 && v <= b.Hi+1e-9 {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
