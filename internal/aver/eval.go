package aver

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"popper/internal/sched"
	"popper/internal/table"
)

// SlopeMethod selects how scaling tests estimate the growth exponent.
type SlopeMethod int

// Slope estimation methods (the DESIGN.md ablation compares them).
const (
	// SlopeRegression fits least squares on (ln x, ln y) over the group
	// means — robust to noise, the default.
	SlopeRegression SlopeMethod = iota
	// SlopePairwise requires every consecutive pair of x values to
	// satisfy the bound individually — stricter, noise-sensitive.
	SlopePairwise
)

// Evaluator checks assertions against result tables.
type Evaluator struct {
	// Method selects the slope estimator for scaling tests.
	Method SlopeMethod
	// DefaultTol is the tolerance used when an assertion does not pass
	// one explicitly (scaling tests and constant()).
	DefaultTol float64
	// Jobs bounds the evaluator's concurrency: assertions, `when`
	// groups, and (for large tables) row chunks are checked across a
	// worker pool of this size. Values <= 1 keep evaluation strictly
	// serial. Parallel evaluation is deterministic — results, details
	// and errors are always identical to a serial run.
	Jobs int
}

// rowChunkMin is the table size below which row-level comparisons stay
// serial even when Jobs > 1 — chunking overhead beats the win there.
const rowChunkMin = 512

// NewEvaluator returns an evaluator with the default configuration
// (serial evaluation).
func NewEvaluator() *Evaluator {
	return &Evaluator{Method: SlopeRegression, DefaultTol: 0.05}
}

// GroupResult is the outcome of an assertion on one `when` group.
type GroupResult struct {
	Keys   map[string]string // wildcard column -> value
	Passed bool
	Detail string
}

// Result is the outcome of one assertion over a table.
type Result struct {
	Assertion *Assertion
	Passed    bool
	Groups    []GroupResult
}

// String renders a validation report line.
func (r Result) String() string {
	status := "PASS"
	if !r.Passed {
		status = "FAIL"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  %s", status, r.Assertion.Source)
	for _, g := range r.Groups {
		if !g.Passed {
			fmt.Fprintf(&sb, "\n      group %v: %s", formatKeys(g.Keys), g.Detail)
		}
	}
	return sb.String()
}

func formatKeys(keys map[string]string) string {
	if len(keys) == 0 {
		return "(all rows)"
	}
	names := make([]string, 0, len(keys))
	for k := range keys {
		names = append(names, k)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, k := range names {
		parts[i] = k + "=" + keys[k]
	}
	return strings.Join(parts, ",")
}

// Check evaluates an assertion against a results table.
func (e *Evaluator) Check(a *Assertion, t *table.Table) (Result, error) {
	res := Result{Assertion: a, Passed: true}
	filtered, wildcards, err := applyWhen(a.When, t)
	if err != nil {
		return res, err
	}
	groups, err := splitGroups(filtered, wildcards)
	if err != nil {
		return res, err
	}
	if len(groups) == 0 {
		return Result{Assertion: a, Passed: false, Groups: []GroupResult{{
			Keys: map[string]string{}, Passed: false,
			Detail: "no rows matched the when clause",
		}}}, nil
	}
	if e.Jobs > 1 && len(groups) > 1 {
		type outcome struct {
			passed bool
			detail string
		}
		outs := make([]outcome, len(groups))
		errs := sched.NewPool(e.Jobs).Each(len(groups), func(i int) error {
			passed, detail, err := e.evalExpr(a.Expect, groups[i].rows)
			outs[i] = outcome{passed: passed, detail: detail}
			return err
		})
		for i, g := range groups {
			if errs[i] != nil {
				// Match serial semantics: groups before the first
				// erroring one are reported, the rest dropped.
				return res, errs[i]
			}
			gr := GroupResult{Keys: g.keys, Passed: outs[i].passed, Detail: outs[i].detail}
			if !gr.Passed {
				res.Passed = false
			}
			res.Groups = append(res.Groups, gr)
		}
		return res, nil
	}
	for _, g := range groups {
		passed, detail, err := e.evalExpr(a.Expect, g.rows)
		if err != nil {
			return res, err
		}
		gr := GroupResult{Keys: g.keys, Passed: passed, Detail: detail}
		if !passed {
			res.Passed = false
		}
		res.Groups = append(res.Groups, gr)
	}
	return res, nil
}

// CheckAll evaluates every assertion in a validations file. With
// Jobs > 1 the assertions are checked concurrently; results and errors
// are reported in file order exactly as a serial run would.
func (e *Evaluator) CheckAll(src string, t *table.Table) ([]Result, error) {
	asserts, err := ParseFile(src)
	if err != nil {
		return nil, err
	}
	if e.Jobs > 1 && len(asserts) > 1 {
		out := make([]Result, len(asserts))
		errs := sched.NewPool(e.Jobs).Each(len(asserts), func(i int) error {
			r, err := e.Check(asserts[i], t)
			out[i] = r
			return err
		})
		for i, err := range errs {
			if err != nil {
				return out[:i], err
			}
		}
		return out, nil
	}
	out := make([]Result, 0, len(asserts))
	for _, a := range asserts {
		r, err := e.Check(a, t)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// AllPassed reports whether every result passed.
func AllPassed(results []Result) bool {
	for _, r := range results {
		if !r.Passed {
			return false
		}
	}
	return true
}

// FormatResults renders a full validation report.
func FormatResults(results []Result) string {
	var sb strings.Builder
	for _, r := range results {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// applyWhen filters rows by non-wildcard clauses and collects wildcard
// column names.
func applyWhen(clauses []Clause, t *table.Table) (*table.Table, []string, error) {
	cur := t
	var wildcards []string
	for _, cl := range clauses {
		if !cur.HasColumn(cl.Column) {
			return nil, nil, fmt.Errorf("aver: when clause references unknown column %q", cl.Column)
		}
		if cl.Wildcard {
			wildcards = append(wildcards, cl.Column)
			continue
		}
		cl := cl
		cur = cur.Filter(func(row int) bool {
			v := cur.MustCell(row, cl.Column)
			return clauseMatches(cl, v)
		})
	}
	return cur, wildcards, nil
}

func clauseMatches(cl Clause, v table.Value) bool {
	if cl.IsNum {
		if !v.IsNum {
			return false
		}
		return compareFloats(v.Num, cl.Op, cl.Num)
	}
	switch cl.Op {
	case "=":
		return v.Text() == cl.Str
	case "!=":
		return v.Text() != cl.Str
	}
	return false
}

func compareFloats(a float64, op string, b float64) bool {
	switch op {
	case "=":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case ">":
		return a > b
	case "<=":
		return a <= b
	case ">=":
		return a >= b
	}
	return false
}

type group struct {
	keys map[string]string
	rows *table.Table
}

func splitGroups(t *table.Table, wildcards []string) ([]group, error) {
	if t.Len() == 0 {
		return nil, nil
	}
	if len(wildcards) == 0 {
		return []group{{keys: map[string]string{}, rows: t}}, nil
	}
	type bucket struct {
		keys map[string]string
		idx  []int
	}
	var order []string
	buckets := make(map[string]*bucket)
	for r := 0; r < t.Len(); r++ {
		var kb strings.Builder
		keys := make(map[string]string, len(wildcards))
		for _, w := range wildcards {
			v := t.MustCell(r, w).Text()
			keys[w] = v
			kb.WriteString(v)
			kb.WriteByte(0)
		}
		b, ok := buckets[kb.String()]
		if !ok {
			b = &bucket{keys: keys}
			buckets[kb.String()] = b
			order = append(order, kb.String())
		}
		b.idx = append(b.idx, r)
	}
	out := make([]group, 0, len(order))
	for _, k := range order {
		b := buckets[k]
		member := make(map[int]bool, len(b.idx))
		for _, i := range b.idx {
			member[i] = true
		}
		out = append(out, group{keys: b.keys, rows: t.Filter(func(r int) bool { return member[r] })})
	}
	return out, nil
}

func (e *Evaluator) evalExpr(expr Expr, t *table.Table) (bool, string, error) {
	switch ex := expr.(type) {
	case LogicalExpr:
		lp, ld, err := e.evalExpr(ex.Left, t)
		if err != nil {
			return false, "", err
		}
		if ex.Op == "and" {
			if !lp {
				return false, ld, nil
			}
			return e.evalExpr(ex.Right, t)
		}
		// or
		if lp {
			return true, ld, nil
		}
		rp, rd, err := e.evalExpr(ex.Right, t)
		if err != nil {
			return false, "", err
		}
		if rp {
			return true, rd, nil
		}
		return false, ld + "; " + rd, nil
	case CallExpr:
		return e.evalCall(ex, t)
	case CompareExpr:
		return e.evalCompare(ex, t)
	}
	return false, "", fmt.Errorf("aver: unknown expression %T", expr)
}

func (e *Evaluator) tol(args []Operand, base int) float64 {
	if len(args) > base {
		if args[base].Kind == OpNumber {
			return args[base].Num
		}
	}
	return e.DefaultTol
}

func (e *Evaluator) evalCall(c CallExpr, t *table.Table) (bool, string, error) {
	colOf := func(i int) (string, error) {
		if c.Args[i].Kind != OpColumn {
			return "", fmt.Errorf("aver: %s: argument %d must be a column name", c.Func, i+1)
		}
		col := c.Args[i].Col
		if !t.HasColumn(col) {
			return "", fmt.Errorf("aver: %s: unknown column %q", c.Func, col)
		}
		return col, nil
	}
	switch c.Func {
	case "sublinear", "linear", "superlinear":
		xcol, err := colOf(0)
		if err != nil {
			return false, "", err
		}
		ycol, err := colOf(1)
		if err != nil {
			return false, "", err
		}
		slope, err := e.scalingSlope(t, xcol, ycol)
		if err != nil {
			return false, "", err
		}
		tol := e.tol(c.Args, 2)
		mag := math.Abs(slope)
		var ok bool
		switch c.Func {
		case "sublinear":
			ok = mag < 1-tol
		case "linear":
			ok = math.Abs(mag-1) <= tol
		case "superlinear":
			ok = mag > 1+tol
		}
		return ok, fmt.Sprintf("%s(%s,%s): slope=%.3f tol=%.3g", c.Func, xcol, ycol, slope, tol), nil
	case "increasing", "decreasing":
		xcol, err := colOf(0)
		if err != nil {
			return false, "", err
		}
		ycol, err := colOf(1)
		if err != nil {
			return false, "", err
		}
		xs, ys, err := meansByX(t, xcol, ycol)
		if err != nil {
			return false, "", err
		}
		if len(xs) < 2 {
			return false, fmt.Sprintf("%s(%s,%s): need at least 2 distinct %s values", c.Func, xcol, ycol, xcol), nil
		}
		ok := true
		for i := 1; i < len(ys); i++ {
			if c.Func == "increasing" && ys[i] <= ys[i-1] {
				ok = false
			}
			if c.Func == "decreasing" && ys[i] >= ys[i-1] {
				ok = false
			}
		}
		return ok, fmt.Sprintf("%s(%s,%s) over %d points", c.Func, xcol, ycol, len(xs)), nil
	case "constant":
		ycol, err := colOf(0)
		if err != nil {
			return false, "", err
		}
		ys, err := numericColumn(t, ycol)
		if err != nil {
			return false, "", err
		}
		tol := e.tol(c.Args, 1)
		cv := table.CoeffVar(ys)
		if math.IsNaN(cv) {
			return false, fmt.Sprintf("constant(%s): undefined CV (zero mean or empty)", ycol), nil
		}
		return cv <= tol, fmt.Sprintf("constant(%s): cv=%.4f tol=%.3g", ycol, cv, tol), nil
	case "within":
		ycol, err := colOf(0)
		if err != nil {
			return false, "", err
		}
		if c.Args[1].Kind != OpNumber || c.Args[2].Kind != OpNumber {
			return false, "", fmt.Errorf("aver: within bounds must be numbers")
		}
		lo, hi := c.Args[1].Num, c.Args[2].Num
		ys, err := numericColumn(t, ycol)
		if err != nil {
			return false, "", err
		}
		for _, y := range ys {
			if y < lo || y > hi {
				return false, fmt.Sprintf("within(%s,%g,%g): value %g out of range", ycol, lo, hi, y), nil
			}
		}
		return true, fmt.Sprintf("within(%s,%g,%g): %d values", ycol, lo, hi, len(ys)), nil
	}
	return false, "", fmt.Errorf("aver: unknown test function %q", c.Func)
}

// scalingSlope estimates d(ln y)/d(ln x) per the evaluator's method.
func (e *Evaluator) scalingSlope(t *table.Table, xcol, ycol string) (float64, error) {
	xs, ys, err := meansByX(t, xcol, ycol)
	if err != nil {
		return 0, err
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("aver: scaling test needs at least 2 distinct %s values, have %d", xcol, len(xs))
	}
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return 0, fmt.Errorf("aver: scaling test requires positive %s and %s values", xcol, ycol)
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	switch e.Method {
	case SlopePairwise:
		// Worst-case (largest magnitude) pairwise slope: the strictest
		// reading of "sublinear everywhere".
		worst := 0.0
		for i := 1; i < len(lx); i++ {
			s := (ly[i] - ly[i-1]) / (lx[i] - lx[i-1])
			if math.Abs(s) > math.Abs(worst) {
				worst = s
			}
		}
		return worst, nil
	default:
		mx, my := table.Mean(lx), table.Mean(ly)
		num, den := 0.0, 0.0
		for i := range lx {
			num += (lx[i] - mx) * (ly[i] - my)
			den += (lx[i] - mx) * (lx[i] - mx)
		}
		if den == 0 {
			return 0, fmt.Errorf("aver: all %s values identical", xcol)
		}
		return num / den, nil
	}
}

// meansByX aggregates mean y per distinct numeric x, sorted by x.
func meansByX(t *table.Table, xcol, ycol string) ([]float64, []float64, error) {
	xs, err := numericColumn(t, xcol)
	if err != nil {
		return nil, nil, err
	}
	ys, err := numericColumn(t, ycol)
	if err != nil {
		return nil, nil, err
	}
	sums := make(map[float64]float64)
	counts := make(map[float64]int)
	for i := range xs {
		sums[xs[i]] += ys[i]
		counts[xs[i]]++
	}
	ux := make([]float64, 0, len(sums))
	for x := range sums {
		ux = append(ux, x)
	}
	sort.Float64s(ux)
	uy := make([]float64, len(ux))
	for i, x := range ux {
		uy[i] = sums[x] / float64(counts[x])
	}
	return ux, uy, nil
}

func numericColumn(t *table.Table, col string) ([]float64, error) {
	if !t.HasColumn(col) {
		return nil, fmt.Errorf("aver: unknown column %q", col)
	}
	vs, err := t.Floats(col)
	if err != nil {
		return nil, err
	}
	for i, v := range vs {
		if math.IsNaN(v) {
			return nil, fmt.Errorf("aver: column %q row %d is not numeric", col, i)
		}
	}
	return vs, nil
}

func (e *Evaluator) evalCompare(c CompareExpr, t *table.Table) (bool, string, error) {
	// A bare word that names no column is a string literal
	// (machine = cloudlab); only plain single-operand terms qualify.
	if len(c.Left.Factors) == 0 && len(c.Right.Factors) == 0 {
		l, r := c.Left.First, c.Right.First
		if l.Kind == OpColumn && !t.HasColumn(l.Col) && r.Kind == OpColumn && t.HasColumn(r.Col) {
			c.Left = termOf(Operand{Kind: OpString, Str: l.Col})
		}
		if r.Kind == OpColumn && !t.HasColumn(r.Col) && l.Kind == OpColumn && t.HasColumn(l.Col) {
			c.Right = termOf(Operand{Kind: OpString, Str: r.Col})
		}
		// String comparisons are row-level equality tests.
		if c.Left.First.Kind == OpString || c.Right.First.Kind == OpString {
			return e.evalStringCompare(c, t)
		}
	}
	rowLevel := termHasColumn(c.Left) || termHasColumn(c.Right)
	if !rowLevel {
		lv, err := e.termScalar(c.Left, t)
		if err != nil {
			return false, "", err
		}
		rv, err := e.termScalar(c.Right, t)
		if err != nil {
			return false, "", err
		}
		ok := compareFloats(lv, c.Op, rv)
		return ok, fmt.Sprintf("%s %s %s: %.4g %s %.4g",
			describeTerm(c.Left), c.Op, describeTerm(c.Right), lv, c.Op, rv), nil
	}
	// Row-level: every row must satisfy.
	if t.Len() == 0 {
		return false, "no rows", nil
	}
	if e.Jobs > 1 && t.Len() >= rowChunkMin {
		return e.evalCompareChunked(c, t)
	}
	for r := 0; r < t.Len(); r++ {
		ok, detail, err := e.compareRow(c, t, r)
		if err != nil || !ok {
			return false, detail, err
		}
	}
	return true, fmt.Sprintf("%s %s %s holds for all %d rows",
		describeTerm(c.Left), c.Op, describeTerm(c.Right), t.Len()), nil
}

// compareRow evaluates one row of a row-level comparison.
func (e *Evaluator) compareRow(c CompareExpr, t *table.Table, r int) (bool, string, error) {
	lv, err := e.termRow(c.Left, t, r)
	if err != nil {
		return false, "", err
	}
	rv, err := e.termRow(c.Right, t, r)
	if err != nil {
		return false, "", err
	}
	if !compareFloats(lv, c.Op, rv) {
		return false, fmt.Sprintf("row %d: %.4g %s %.4g is false", r, lv, c.Op, rv), nil
	}
	return true, "", nil
}

// evalCompareChunked scans the rows of a row-level comparison in
// parallel chunks. Each chunk stops at its first violation or error;
// the lowest-row event wins, so the verdict, detail string and error
// are exactly what a serial scan would report.
func (e *Evaluator) evalCompareChunked(c CompareExpr, t *table.Table) (bool, string, error) {
	type event struct {
		row    int
		detail string
		err    error
	}
	spans := sched.Chunks(t.Len(), sched.Jobs(e.Jobs))
	events := make([]*event, len(spans))
	sched.NewPool(len(spans)).Each(len(spans), func(i int) error {
		for r := spans[i].Lo; r < spans[i].Hi; r++ {
			ok, detail, err := e.compareRow(c, t, r)
			if err != nil || !ok {
				events[i] = &event{row: r, detail: detail, err: err}
				return nil
			}
		}
		return nil
	})
	var first *event
	for _, ev := range events {
		if ev != nil && (first == nil || ev.row < first.row) {
			first = ev
		}
	}
	if first != nil {
		return false, first.detail, first.err
	}
	return true, fmt.Sprintf("%s %s %s holds for all %d rows",
		describeTerm(c.Left), c.Op, describeTerm(c.Right), t.Len()), nil
}

func termHasColumn(t Term) bool {
	if t.First.Kind == OpColumn {
		return true
	}
	for _, f := range t.Factors {
		if f.Operand.Kind == OpColumn {
			return true
		}
	}
	return false
}

func (e *Evaluator) termScalar(term Term, t *table.Table) (float64, error) {
	v, err := e.operandScalar(term.First, t)
	if err != nil {
		return 0, err
	}
	return e.applyFactors(v, term.Factors, t, -1)
}

func (e *Evaluator) termRow(term Term, t *table.Table, row int) (float64, error) {
	v, err := e.operandRow(term.First, t, row)
	if err != nil {
		return 0, err
	}
	return e.applyFactors(v, term.Factors, t, row)
}

func (e *Evaluator) applyFactors(v float64, factors []Factor, t *table.Table, row int) (float64, error) {
	for _, f := range factors {
		var fv float64
		var err error
		if row >= 0 {
			fv, err = e.operandRow(f.Operand, t, row)
		} else {
			fv, err = e.operandScalar(f.Operand, t)
		}
		if err != nil {
			return 0, err
		}
		switch f.Op {
		case '*':
			v *= fv
		case '/':
			if fv == 0 {
				return 0, fmt.Errorf("aver: division by zero in term")
			}
			v /= fv
		}
	}
	return v, nil
}

func describeTerm(t Term) string {
	s := describe(t.First)
	for _, f := range t.Factors {
		s += " " + string(f.Op) + " " + describe(f.Operand)
	}
	return s
}

func (e *Evaluator) evalStringCompare(c CompareExpr, t *table.Table) (bool, string, error) {
	if c.Op != "=" && c.Op != "!=" {
		return false, "", fmt.Errorf("aver: string comparison supports only = and !=")
	}
	col, lit := c.Left.First, c.Right.First
	if col.Kind == OpString {
		col, lit = lit, col
	}
	if col.Kind != OpColumn {
		return false, "", fmt.Errorf("aver: string comparison needs a column operand")
	}
	if !t.HasColumn(col.Col) {
		return false, "", fmt.Errorf("aver: unknown column %q", col.Col)
	}
	if t.Len() == 0 {
		return false, "no rows", nil
	}
	for r := 0; r < t.Len(); r++ {
		got := t.MustCell(r, col.Col).Text()
		ok := got == lit.Str
		if c.Op == "!=" {
			ok = !ok
		}
		if !ok {
			return false, fmt.Sprintf("row %d: %s=%q fails %s %q", r, col.Col, got, c.Op, lit.Str), nil
		}
	}
	return true, fmt.Sprintf("%s %s %q for all rows", col.Col, c.Op, lit.Str), nil
}

func (e *Evaluator) operandScalar(o Operand, t *table.Table) (float64, error) {
	switch o.Kind {
	case OpNumber:
		return o.Num, nil
	case OpAgg:
		return e.aggregate(o, t)
	}
	return 0, fmt.Errorf("aver: operand %s is not scalar", describe(o))
}

func (e *Evaluator) operandRow(o Operand, t *table.Table, row int) (float64, error) {
	switch o.Kind {
	case OpNumber:
		return o.Num, nil
	case OpAgg:
		return e.aggregate(o, t)
	case OpColumn:
		if !t.HasColumn(o.Col) {
			return 0, fmt.Errorf("aver: unknown column %q", o.Col)
		}
		v := t.MustCell(row, o.Col)
		if !v.IsNum {
			return 0, fmt.Errorf("aver: column %q row %d is not numeric", o.Col, row)
		}
		return v.Num, nil
	}
	return 0, fmt.Errorf("aver: bad operand")
}

func (e *Evaluator) aggregate(o Operand, t *table.Table) (float64, error) {
	if o.Agg == "count" {
		return float64(t.Len()), nil
	}
	ys, err := numericColumn(t, o.Col)
	if err != nil {
		return 0, err
	}
	if len(ys) == 0 {
		return 0, fmt.Errorf("aver: %s(%s) over empty group", o.Agg, o.Col)
	}
	switch o.Agg {
	case "avg":
		return table.Mean(ys), nil
	case "sum":
		return table.Sum(ys), nil
	case "min":
		m := ys[0]
		for _, y := range ys[1:] {
			if y < m {
				m = y
			}
		}
		return m, nil
	case "max":
		m := ys[0]
		for _, y := range ys[1:] {
			if y > m {
				m = y
			}
		}
		return m, nil
	case "median":
		return table.Median(ys), nil
	case "stddev":
		return table.StdDev(ys), nil
	case "cv":
		return table.CoeffVar(ys), nil
	}
	return 0, fmt.Errorf("aver: unknown aggregate %q", o.Agg)
}

func describe(o Operand) string {
	switch o.Kind {
	case OpNumber:
		return fmt.Sprintf("%g", o.Num)
	case OpString:
		return fmt.Sprintf("%q", o.Str)
	case OpColumn:
		return o.Col
	case OpAgg:
		if o.Agg == "count" && o.Col == "" {
			return "count(*)"
		}
		return o.Agg + "(" + o.Col + ")"
	}
	return "?"
}
