package aver

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"popper/internal/sched"
	"popper/internal/table"
)

// SlopeMethod selects how scaling tests estimate the growth exponent.
type SlopeMethod int

// Slope estimation methods (the DESIGN.md ablation compares them).
const (
	// SlopeRegression fits least squares on (ln x, ln y) over the group
	// means — robust to noise, the default.
	SlopeRegression SlopeMethod = iota
	// SlopePairwise requires every consecutive pair of x values to
	// satisfy the bound individually — stricter, noise-sensitive.
	SlopePairwise
)

// Evaluator checks assertions against result tables.
//
// Evaluation is vectorized over the table's columnar storage: `when`
// filters compute a row mask and wrap it in a zero-copy view, wildcard
// groups are built in a single hash pass, and aggregate/scaling kernels
// stream over the float columns — no sub-table is ever materialized.
type Evaluator struct {
	// Method selects the slope estimator for scaling tests.
	Method SlopeMethod
	// DefaultTol is the tolerance used when an assertion does not pass
	// one explicitly (scaling tests and constant()).
	DefaultTol float64
	// Jobs bounds the evaluator's concurrency: assertions, `when`
	// groups, and (for large tables) row chunks are checked across a
	// worker pool of this size. Values <= 1 keep evaluation strictly
	// serial. Parallel evaluation is deterministic — results, details
	// and errors are always identical to a serial run.
	Jobs int
}

// rowChunkMin is the table size below which row-level comparisons stay
// serial even when Jobs > 1 — chunking overhead beats the win there.
const rowChunkMin = 512

// NewEvaluator returns an evaluator with the default configuration
// (serial evaluation).
func NewEvaluator() *Evaluator {
	return &Evaluator{Method: SlopeRegression, DefaultTol: 0.05}
}

// GroupResult is the outcome of an assertion on one `when` group.
type GroupResult struct {
	Keys   map[string]string // wildcard column -> value
	Passed bool
	Detail string
}

// Result is the outcome of one assertion over a table.
type Result struct {
	Assertion *Assertion
	Passed    bool
	Groups    []GroupResult
}

// String renders a validation report line.
func (r Result) String() string {
	status := "PASS"
	if !r.Passed {
		status = "FAIL"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  %s", status, r.Assertion.Source)
	for _, g := range r.Groups {
		if !g.Passed {
			fmt.Fprintf(&sb, "\n      group %v: %s", formatKeys(g.Keys), g.Detail)
		}
	}
	return sb.String()
}

func formatKeys(keys map[string]string) string {
	if len(keys) == 0 {
		return "(all rows)"
	}
	names := make([]string, 0, len(keys))
	for k := range keys {
		names = append(names, k)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, k := range names {
		parts[i] = k + "=" + keys[k]
	}
	return strings.Join(parts, ",")
}

// Check evaluates an assertion against a results table.
func (e *Evaluator) Check(a *Assertion, t *table.Table) (Result, error) {
	res := Result{Assertion: a, Passed: true}
	filtered, wildcards, err := applyWhen(a.When, t)
	if err != nil {
		return res, err
	}
	groups, err := splitGroups(filtered, wildcards)
	if err != nil {
		return res, err
	}
	if len(groups) == 0 {
		return Result{Assertion: a, Passed: false, Groups: []GroupResult{{
			Keys: map[string]string{}, Passed: false,
			Detail: "no rows matched the when clause",
		}}}, nil
	}
	if e.Jobs > 1 && len(groups) > 1 {
		type outcome struct {
			passed bool
			detail string
		}
		outs := make([]outcome, len(groups))
		errs := sched.NewPool(e.Jobs).Each(len(groups), func(i int) error {
			passed, detail, err := e.evalExpr(a.Expect, groups[i].rows)
			outs[i] = outcome{passed: passed, detail: detail}
			return err
		})
		for i, g := range groups {
			if errs[i] != nil {
				// Match serial semantics: groups before the first
				// erroring one are reported, the rest dropped.
				return res, errs[i]
			}
			gr := GroupResult{Keys: g.keys, Passed: outs[i].passed, Detail: outs[i].detail}
			if !gr.Passed {
				res.Passed = false
			}
			res.Groups = append(res.Groups, gr)
		}
		return res, nil
	}
	for _, g := range groups {
		passed, detail, err := e.evalExpr(a.Expect, g.rows)
		if err != nil {
			return res, err
		}
		gr := GroupResult{Keys: g.keys, Passed: passed, Detail: detail}
		if !passed {
			res.Passed = false
		}
		res.Groups = append(res.Groups, gr)
	}
	return res, nil
}

// CheckAll evaluates every assertion in a validations file. With
// Jobs > 1 the assertions are checked concurrently; results and errors
// are reported in file order exactly as a serial run would.
func (e *Evaluator) CheckAll(src string, t *table.Table) ([]Result, error) {
	asserts, err := ParseFile(src)
	if err != nil {
		return nil, err
	}
	if e.Jobs > 1 && len(asserts) > 1 {
		out := make([]Result, len(asserts))
		errs := sched.NewPool(e.Jobs).Each(len(asserts), func(i int) error {
			r, err := e.Check(asserts[i], t)
			out[i] = r
			return err
		})
		for i, err := range errs {
			if err != nil {
				return out[:i], err
			}
		}
		return out, nil
	}
	out := make([]Result, 0, len(asserts))
	for _, a := range asserts {
		r, err := e.Check(a, t)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// AllPassed reports whether every result passed.
func AllPassed(results []Result) bool {
	for _, r := range results {
		if !r.Passed {
			return false
		}
	}
	return true
}

// FormatResults renders a full validation report.
func FormatResults(results []Result) string {
	var sb strings.Builder
	for _, r := range results {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// strLit is a string literal compiled against a table: equality checks
// run on interned ids for string cells and on a pre-parsed canonical
// float for numeric cells (a numeric cell matches when its rendered
// text would equal the literal), so the row loop never formats or
// allocates.
type strLit struct {
	str   string
	id    int32 // interned id, valid when found
	found bool
	numOK bool // literal is the canonical text of some float
	num   float64
	nan   bool
}

func compileStrLit(c table.Col, s string) strLit {
	l := strLit{str: s}
	l.id, l.found = c.Lookup(s)
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		if math.IsNaN(f) {
			l.numOK, l.nan = s == "NaN", true
		} else if strconv.FormatFloat(f, 'g', -1, 64) == s {
			l.numOK, l.num = true, f
		}
	}
	return l
}

// eqCell reports whether cell i of c renders to exactly the literal.
func (l strLit) eqCell(c table.Col, i int) bool {
	if id := c.StrID(i); id >= 0 {
		return l.found && id == l.id
	}
	if !l.numOK {
		return false
	}
	v := c.Num(i)
	if l.nan {
		return math.IsNaN(v)
	}
	return v == l.num && math.Signbit(v) == math.Signbit(l.num)
}

// whenFilter is one compiled non-wildcard clause.
type whenFilter struct {
	cl  Clause
	col table.Col
	lit strLit // string clauses only
}

func (f *whenFilter) match(i int) bool {
	if f.cl.IsNum {
		return f.col.IsNum(i) && compareFloats(f.col.Num(i), f.cl.Op, f.cl.Num)
	}
	eq := f.lit.eqCell(f.col, i)
	switch f.cl.Op {
	case "=":
		return eq
	case "!=":
		return !eq
	}
	return false
}

// applyWhen filters rows by non-wildcard clauses and collects wildcard
// column names. All clauses evaluate in one pass over the columnar
// storage, producing a row mask wrapped in a zero-copy view — the
// original table is never copied.
func applyWhen(clauses []Clause, t *table.Table) (*table.Table, []string, error) {
	var wildcards []string
	var filters []whenFilter
	for _, cl := range clauses {
		if !t.HasColumn(cl.Column) {
			return nil, nil, fmt.Errorf("aver: when clause references unknown column %q", cl.Column)
		}
		if cl.Wildcard {
			wildcards = append(wildcards, cl.Column)
			continue
		}
		c, err := t.Col(cl.Column)
		if err != nil {
			return nil, nil, err
		}
		f := whenFilter{cl: cl, col: c}
		if !cl.IsNum {
			f.lit = compileStrLit(c, cl.Str)
		}
		filters = append(filters, f)
	}
	if len(filters) == 0 {
		return t, wildcards, nil
	}
	n := t.Len()
	rows := make([]int, 0, n)
	for i := 0; i < n; i++ {
		keep := true
		for fi := range filters {
			if !filters[fi].match(i) {
				keep = false
				break
			}
		}
		if keep {
			rows = append(rows, i)
		}
	}
	view, err := t.View(rows)
	if err != nil {
		return nil, nil, err
	}
	return view, wildcards, nil
}

func compareFloats(a float64, op string, b float64) bool {
	switch op {
	case "=":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case ">":
		return a > b
	case "<=":
		return a <= b
	case ">=":
		return a >= b
	}
	return false
}

type group struct {
	keys map[string]string
	rows *table.Table
}

// splitGroups builds every wildcard group in a single hash pass over
// the columnar key columns (no per-row key strings), returning
// zero-copy views in first-seen order.
func splitGroups(t *table.Table, wildcards []string) ([]group, error) {
	if t.Len() == 0 {
		return nil, nil
	}
	if len(wildcards) == 0 {
		return []group{{keys: map[string]string{}, rows: t}}, nil
	}
	gid, ngroups, err := t.GroupIDs(wildcards...)
	if err != nil {
		return nil, err
	}
	cols := make([]table.Col, len(wildcards))
	for i, w := range wildcards {
		c, err := t.Col(w)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	n := t.Len()
	counts := make([]int32, ngroups)
	firstRow := make([]int32, ngroups)
	for i := range firstRow {
		firstRow[i] = -1
	}
	for i := 0; i < n; i++ {
		g := gid[i]
		counts[g]++
		if firstRow[g] < 0 {
			firstRow[g] = int32(i)
		}
	}
	offsets := make([]int32, ngroups+1)
	for g := 0; g < ngroups; g++ {
		offsets[g+1] = offsets[g] + counts[g]
	}
	bucketed := make([]int, n)
	fill := append([]int32(nil), offsets[:ngroups]...)
	for i := 0; i < n; i++ {
		g := gid[i]
		bucketed[fill[g]] = i
		fill[g]++
	}
	out := make([]group, 0, ngroups)
	for g := 0; g < ngroups; g++ {
		keys := make(map[string]string, len(wildcards))
		for i, w := range wildcards {
			keys[w] = cols[i].Text(int(firstRow[g]))
		}
		view, err := t.View(bucketed[offsets[g]:offsets[g+1]])
		if err != nil {
			return nil, err
		}
		out = append(out, group{keys: keys, rows: view})
	}
	return out, nil
}

func (e *Evaluator) evalExpr(expr Expr, t *table.Table) (bool, string, error) {
	switch ex := expr.(type) {
	case LogicalExpr:
		lp, ld, err := e.evalExpr(ex.Left, t)
		if err != nil {
			return false, "", err
		}
		if ex.Op == "and" {
			if !lp {
				return false, ld, nil
			}
			return e.evalExpr(ex.Right, t)
		}
		// or
		if lp {
			return true, ld, nil
		}
		rp, rd, err := e.evalExpr(ex.Right, t)
		if err != nil {
			return false, "", err
		}
		if rp {
			return true, rd, nil
		}
		return false, ld + "; " + rd, nil
	case CallExpr:
		return e.evalCall(ex, t)
	case CompareExpr:
		return e.evalCompare(ex, t)
	}
	return false, "", fmt.Errorf("aver: unknown expression %T", expr)
}

func (e *Evaluator) tol(args []Operand, base int) float64 {
	if len(args) > base {
		if args[base].Kind == OpNumber {
			return args[base].Num
		}
	}
	return e.DefaultTol
}

func (e *Evaluator) evalCall(c CallExpr, t *table.Table) (bool, string, error) {
	colOf := func(i int) (string, error) {
		if c.Args[i].Kind != OpColumn {
			return "", fmt.Errorf("aver: %s: argument %d must be a column name", c.Func, i+1)
		}
		col := c.Args[i].Col
		if !t.HasColumn(col) {
			return "", fmt.Errorf("aver: %s: unknown column %q", c.Func, col)
		}
		return col, nil
	}
	switch c.Func {
	case "sublinear", "linear", "superlinear":
		xcol, err := colOf(0)
		if err != nil {
			return false, "", err
		}
		ycol, err := colOf(1)
		if err != nil {
			return false, "", err
		}
		slope, err := e.scalingSlope(t, xcol, ycol)
		if err != nil {
			return false, "", err
		}
		tol := e.tol(c.Args, 2)
		mag := math.Abs(slope)
		var ok bool
		switch c.Func {
		case "sublinear":
			ok = mag < 1-tol
		case "linear":
			ok = math.Abs(mag-1) <= tol
		case "superlinear":
			ok = mag > 1+tol
		}
		return ok, fmt.Sprintf("%s(%s,%s): slope=%.3f tol=%.3g", c.Func, xcol, ycol, slope, tol), nil
	case "increasing", "decreasing":
		xcol, err := colOf(0)
		if err != nil {
			return false, "", err
		}
		ycol, err := colOf(1)
		if err != nil {
			return false, "", err
		}
		xs, ys, err := meansByX(t, xcol, ycol)
		if err != nil {
			return false, "", err
		}
		if len(xs) < 2 {
			return false, fmt.Sprintf("%s(%s,%s): need at least 2 distinct %s values", c.Func, xcol, ycol, xcol), nil
		}
		ok := true
		for i := 1; i < len(ys); i++ {
			if c.Func == "increasing" && ys[i] <= ys[i-1] {
				ok = false
			}
			if c.Func == "decreasing" && ys[i] >= ys[i-1] {
				ok = false
			}
		}
		return ok, fmt.Sprintf("%s(%s,%s) over %d points", c.Func, xcol, ycol, len(xs)), nil
	case "constant":
		ycol, err := colOf(0)
		if err != nil {
			return false, "", err
		}
		yc, err := numericCol(t, ycol)
		if err != nil {
			return false, "", err
		}
		tol := e.tol(c.Args, 1)
		cv := table.CoeffVar(yc.AppendFloats(nil))
		if math.IsNaN(cv) {
			return false, fmt.Sprintf("constant(%s): undefined CV (zero mean or empty)", ycol), nil
		}
		return cv <= tol, fmt.Sprintf("constant(%s): cv=%.4f tol=%.3g", ycol, cv, tol), nil
	case "within":
		ycol, err := colOf(0)
		if err != nil {
			return false, "", err
		}
		if c.Args[1].Kind != OpNumber || c.Args[2].Kind != OpNumber {
			return false, "", fmt.Errorf("aver: within bounds must be numbers")
		}
		lo, hi := c.Args[1].Num, c.Args[2].Num
		yc, err := numericCol(t, ycol)
		if err != nil {
			return false, "", err
		}
		for i := 0; i < yc.Len(); i++ {
			if y := yc.Num(i); y < lo || y > hi {
				return false, fmt.Sprintf("within(%s,%g,%g): value %g out of range", ycol, lo, hi, y), nil
			}
		}
		return true, fmt.Sprintf("within(%s,%g,%g): %d values", ycol, lo, hi, yc.Len()), nil
	}
	return false, "", fmt.Errorf("aver: unknown test function %q", c.Func)
}

// scalingSlope estimates d(ln y)/d(ln x) per the evaluator's method.
func (e *Evaluator) scalingSlope(t *table.Table, xcol, ycol string) (float64, error) {
	xs, ys, err := meansByX(t, xcol, ycol)
	if err != nil {
		return 0, err
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("aver: scaling test needs at least 2 distinct %s values, have %d", xcol, len(xs))
	}
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return 0, fmt.Errorf("aver: scaling test requires positive %s and %s values", xcol, ycol)
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	switch e.Method {
	case SlopePairwise:
		// Worst-case (largest magnitude) pairwise slope: the strictest
		// reading of "sublinear everywhere".
		worst := 0.0
		for i := 1; i < len(lx); i++ {
			s := (ly[i] - ly[i-1]) / (lx[i] - lx[i-1])
			if math.Abs(s) > math.Abs(worst) {
				worst = s
			}
		}
		return worst, nil
	default:
		mx, my := table.Mean(lx), table.Mean(ly)
		num, den := 0.0, 0.0
		for i := range lx {
			num += (lx[i] - mx) * (ly[i] - my)
			den += (lx[i] - mx) * (lx[i] - mx)
		}
		if den == 0 {
			return 0, fmt.Errorf("aver: all %s values identical", xcol)
		}
		return num / den, nil
	}
}

// meansByX aggregates mean y per distinct numeric x, sorted by x. Both
// columns stream from the columnar storage.
func meansByX(t *table.Table, xcol, ycol string) ([]float64, []float64, error) {
	xc, err := numericCol(t, xcol)
	if err != nil {
		return nil, nil, err
	}
	yc, err := numericCol(t, ycol)
	if err != nil {
		return nil, nil, err
	}
	sums := make(map[float64]float64)
	counts := make(map[float64]int)
	for i := 0; i < xc.Len(); i++ {
		x := xc.Num(i)
		sums[x] += yc.Num(i)
		counts[x]++
	}
	ux := make([]float64, 0, len(sums))
	for x := range sums {
		ux = append(ux, x)
	}
	sort.Float64s(ux)
	uy := make([]float64, len(ux))
	for i, x := range ux {
		uy[i] = sums[x] / float64(counts[x])
	}
	return ux, uy, nil
}

// numericCol returns a zero-copy handle on a column after validating
// every cell is a non-NaN number (strings and NaN cells both fail, as
// the row-oriented evaluator's float materialization did).
func numericCol(t *table.Table, col string) (table.Col, error) {
	if !t.HasColumn(col) {
		return table.Col{}, fmt.Errorf("aver: unknown column %q", col)
	}
	c, err := t.Col(col)
	if err != nil {
		return table.Col{}, err
	}
	for i := 0; i < c.Len(); i++ {
		if math.IsNaN(c.Float(i)) {
			return table.Col{}, fmt.Errorf("aver: column %q row %d is not numeric", col, i)
		}
	}
	return c, nil
}

// compiledOperand is an operand resolved against a table: numbers and
// aggregates collapse to a scalar before the row loop (the row-oriented
// evaluator recomputed aggregates per row), columns become zero-copy
// handles.
type compiledOperand struct {
	kind OperandKind
	num  float64   // OpNumber value or precomputed OpAgg result
	col  table.Col // OpColumn handle
	name string    // OpColumn name, for error messages
}

func (e *Evaluator) compileOperand(o Operand, t *table.Table) (compiledOperand, error) {
	switch o.Kind {
	case OpNumber:
		return compiledOperand{kind: OpNumber, num: o.Num}, nil
	case OpAgg:
		v, err := e.aggregate(o, t)
		if err != nil {
			return compiledOperand{}, err
		}
		return compiledOperand{kind: OpNumber, num: v}, nil
	case OpColumn:
		if !t.HasColumn(o.Col) {
			return compiledOperand{}, fmt.Errorf("aver: unknown column %q", o.Col)
		}
		c, err := t.Col(o.Col)
		if err != nil {
			return compiledOperand{}, err
		}
		return compiledOperand{kind: OpColumn, col: c, name: o.Col}, nil
	}
	return compiledOperand{}, fmt.Errorf("aver: bad operand")
}

func (co *compiledOperand) at(row int) (float64, error) {
	if co.kind != OpColumn {
		return co.num, nil
	}
	if !co.col.IsNum(row) {
		return 0, fmt.Errorf("aver: column %q row %d is not numeric", co.name, row)
	}
	return co.col.Num(row), nil
}

// compiledTerm is a term with every operand resolved; rowLevel reports
// whether any operand reads per-row cells.
type compiledTerm struct {
	first   compiledOperand
	factors []struct {
		op byte
		cp compiledOperand
	}
}

func (e *Evaluator) compileTerm(term Term, t *table.Table) (compiledTerm, error) {
	ct := compiledTerm{}
	first, err := e.compileOperand(term.First, t)
	if err != nil {
		return ct, err
	}
	ct.first = first
	for _, f := range term.Factors {
		cp, err := e.compileOperand(f.Operand, t)
		if err != nil {
			return ct, err
		}
		ct.factors = append(ct.factors, struct {
			op byte
			cp compiledOperand
		}{f.Op, cp})
	}
	return ct, nil
}

func (ct *compiledTerm) at(row int) (float64, error) {
	v, err := ct.first.at(row)
	if err != nil {
		return 0, err
	}
	for i := range ct.factors {
		fv, err := ct.factors[i].cp.at(row)
		if err != nil {
			return 0, err
		}
		switch ct.factors[i].op {
		case '*':
			v *= fv
		case '/':
			if fv == 0 {
				return 0, fmt.Errorf("aver: division by zero in term")
			}
			v /= fv
		}
	}
	return v, nil
}

func (e *Evaluator) evalCompare(c CompareExpr, t *table.Table) (bool, string, error) {
	// A bare word that names no column is a string literal
	// (machine = cloudlab); only plain single-operand terms qualify.
	if len(c.Left.Factors) == 0 && len(c.Right.Factors) == 0 {
		l, r := c.Left.First, c.Right.First
		if l.Kind == OpColumn && !t.HasColumn(l.Col) && r.Kind == OpColumn && t.HasColumn(r.Col) {
			c.Left = termOf(Operand{Kind: OpString, Str: l.Col})
		}
		if r.Kind == OpColumn && !t.HasColumn(r.Col) && l.Kind == OpColumn && t.HasColumn(l.Col) {
			c.Right = termOf(Operand{Kind: OpString, Str: r.Col})
		}
		// String comparisons are row-level equality tests.
		if c.Left.First.Kind == OpString || c.Right.First.Kind == OpString {
			return e.evalStringCompare(c, t)
		}
	}
	rowLevel := termHasColumn(c.Left) || termHasColumn(c.Right)
	if !rowLevel {
		lt, err := e.compileTerm(c.Left, t)
		if err != nil {
			return false, "", err
		}
		lv, err := lt.at(-1)
		if err != nil {
			return false, "", err
		}
		rt, err := e.compileTerm(c.Right, t)
		if err != nil {
			return false, "", err
		}
		rv, err := rt.at(-1)
		if err != nil {
			return false, "", err
		}
		ok := compareFloats(lv, c.Op, rv)
		return ok, fmt.Sprintf("%s %s %s: %.4g %s %.4g",
			describeTerm(c.Left), c.Op, describeTerm(c.Right), lv, c.Op, rv), nil
	}
	// Row-level: every row must satisfy.
	if t.Len() == 0 {
		return false, "no rows", nil
	}
	lt, err := e.compileTerm(c.Left, t)
	if err != nil {
		return false, "", err
	}
	rt, err := e.compileTerm(c.Right, t)
	if err != nil {
		return false, "", err
	}
	if e.Jobs > 1 && t.Len() >= rowChunkMin {
		return e.evalCompareChunked(c, t, &lt, &rt)
	}
	for r := 0; r < t.Len(); r++ {
		ok, detail, err := compareRow(c.Op, &lt, &rt, r)
		if err != nil || !ok {
			return false, detail, err
		}
	}
	return true, fmt.Sprintf("%s %s %s holds for all %d rows",
		describeTerm(c.Left), c.Op, describeTerm(c.Right), t.Len()), nil
}

// compareRow evaluates one row of a row-level comparison over the
// compiled terms.
func compareRow(op string, lt, rt *compiledTerm, r int) (bool, string, error) {
	lv, err := lt.at(r)
	if err != nil {
		return false, "", err
	}
	rv, err := rt.at(r)
	if err != nil {
		return false, "", err
	}
	if !compareFloats(lv, op, rv) {
		return false, fmt.Sprintf("row %d: %.4g %s %.4g is false", r, lv, op, rv), nil
	}
	return true, "", nil
}

// evalCompareChunked scans the rows of a row-level comparison in
// parallel chunks over the shared compiled terms (read-only, so no
// synchronization is needed). Each chunk stops at its first violation
// or error; the lowest-row event wins, so the verdict, detail string
// and error are exactly what a serial scan would report.
func (e *Evaluator) evalCompareChunked(c CompareExpr, t *table.Table, lt, rt *compiledTerm) (bool, string, error) {
	type event struct {
		row    int
		detail string
		err    error
	}
	spans := sched.Chunks(t.Len(), sched.Jobs(e.Jobs))
	events := make([]*event, len(spans))
	sched.NewPool(len(spans)).Each(len(spans), func(i int) error {
		for r := spans[i].Lo; r < spans[i].Hi; r++ {
			ok, detail, err := compareRow(c.Op, lt, rt, r)
			if err != nil || !ok {
				events[i] = &event{row: r, detail: detail, err: err}
				return nil
			}
		}
		return nil
	})
	var first *event
	for _, ev := range events {
		if ev != nil && (first == nil || ev.row < first.row) {
			first = ev
		}
	}
	if first != nil {
		return false, first.detail, first.err
	}
	return true, fmt.Sprintf("%s %s %s holds for all %d rows",
		describeTerm(c.Left), c.Op, describeTerm(c.Right), t.Len()), nil
}

func termHasColumn(t Term) bool {
	if t.First.Kind == OpColumn {
		return true
	}
	for _, f := range t.Factors {
		if f.Operand.Kind == OpColumn {
			return true
		}
	}
	return false
}

func describeTerm(t Term) string {
	s := describe(t.First)
	for _, f := range t.Factors {
		s += " " + string(f.Op) + " " + describe(f.Operand)
	}
	return s
}

func (e *Evaluator) evalStringCompare(c CompareExpr, t *table.Table) (bool, string, error) {
	if c.Op != "=" && c.Op != "!=" {
		return false, "", fmt.Errorf("aver: string comparison supports only = and !=")
	}
	col, lit := c.Left.First, c.Right.First
	if col.Kind == OpString {
		col, lit = lit, col
	}
	if col.Kind != OpColumn {
		return false, "", fmt.Errorf("aver: string comparison needs a column operand")
	}
	if !t.HasColumn(col.Col) {
		return false, "", fmt.Errorf("aver: unknown column %q", col.Col)
	}
	if t.Len() == 0 {
		return false, "no rows", nil
	}
	cc, err := t.Col(col.Col)
	if err != nil {
		return false, "", err
	}
	clit := compileStrLit(cc, lit.Str)
	for r := 0; r < t.Len(); r++ {
		ok := clit.eqCell(cc, r)
		if c.Op == "!=" {
			ok = !ok
		}
		if !ok {
			return false, fmt.Sprintf("row %d: %s=%q fails %s %q", r, col.Col, cc.Text(r), c.Op, lit.Str), nil
		}
	}
	return true, fmt.Sprintf("%s %s %q for all rows", col.Col, c.Op, lit.Str), nil
}

// aggregate computes a scalar aggregate by streaming over the column.
func (e *Evaluator) aggregate(o Operand, t *table.Table) (float64, error) {
	if o.Agg == "count" {
		return float64(t.Len()), nil
	}
	c, err := numericCol(t, o.Col)
	if err != nil {
		return 0, err
	}
	n := c.Len()
	if n == 0 {
		return 0, fmt.Errorf("aver: %s(%s) over empty group", o.Agg, o.Col)
	}
	switch o.Agg {
	case "avg":
		return c.Sum() / float64(n), nil
	case "sum":
		return c.Sum(), nil
	case "min":
		m, _, _ := c.MinMax()
		return m, nil
	case "max":
		_, m, _ := c.MinMax()
		return m, nil
	case "median":
		return table.Median(c.AppendFloats(nil)), nil
	case "stddev":
		return table.StdDev(c.AppendFloats(nil)), nil
	case "cv":
		return table.CoeffVar(c.AppendFloats(nil)), nil
	}
	return 0, fmt.Errorf("aver: unknown aggregate %q", o.Agg)
}

func describe(o Operand) string {
	switch o.Kind {
	case OpNumber:
		return fmt.Sprintf("%g", o.Num)
	case OpString:
		return fmt.Sprintf("%q", o.Str)
	case OpColumn:
		return o.Col
	case OpAgg:
		if o.Agg == "count" && o.Col == "" {
			return "count(*)"
		}
		return o.Agg + "(" + o.Col + ")"
	}
	return "?"
}
