// Package aver implements the Aver language from the paper: a declarative
// notation for expressing and checking statements about experiment
// metrics ("corroborate statements about the runtime metrics gathered of
// an experiment").
//
// An assertion has the form
//
//	when
//	  workload=* and machine=*
//	expect
//	  sublinear(nodes, time)
//
// The `when` clause selects and groups rows of a results table: `col=value`
// filters, `col=*` groups (the expectation must hold independently in
// every group), and numeric comparisons such as `threads>4` filter rows.
// The `expect` clause is a boolean combination of scaling tests
// (sublinear, linear, superlinear, constant, increasing, decreasing),
// range tests (within) and comparisons over aggregates (avg, min, max,
// count, median, stddev, cv) or raw columns.
//
// A validations file (validations.aver) holds one or more assertions
// separated by semicolons; '#' starts a comment.
package aver

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokStar
	tokLParen
	tokRParen
	tokComma
	tokSemi
	tokSlash
	tokOp // = != < > <= >=
)

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset, for error messages
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex tokenizes Aver source. Keywords (when, expect, and, or) are
// returned as identifiers and classified by the parser.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '#': // comment to end of line
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == ';':
			toks = append(toks, token{tokSemi, ";", i})
			i++
		case c == '/':
			toks = append(toks, token{tokSlash, "/", i})
			i++
		case c == '=':
			toks = append(toks, token{tokOp, "=", i})
			i++
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokOp, "!=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("aver: offset %d: unexpected '!'", i)
			}
		case c == '<' || c == '>':
			op := string(c)
			if i+1 < len(src) && src[i+1] == '=' {
				op += "="
				i++
			}
			toks = append(toks, token{tokOp, op, i})
			i++
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			for j < len(src) && src[j] != quote {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("aver: offset %d: unterminated string", i)
			}
			toks = append(toks, token{tokString, src[i+1 : j], i})
			i = j + 1
		case c >= '0' && c <= '9' || c == '-' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9':
			j := i + 1
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.' || src[j] == 'e' ||
				src[j] == 'E' || (src[j] == '-' || src[j] == '+') && (src[j-1] == 'e' || src[j-1] == 'E')) {
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j], i})
			i = j
		case isIdentStart(rune(c)):
			j := i + 1
			for j < len(src) && isIdentPart(rune(src[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("aver: offset %d: unexpected character %q", i, string(c))
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.'
}

func isKeyword(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
