package aver

import (
	"fmt"
	"strings"
	"testing"

	"popper/internal/table"
)

// bigTable builds a results table large enough to trigger chunked row
// scans (>= rowChunkMin rows). Row `bad` violates a >= b.
func bigTable(t *testing.T, rows, bad int) *table.Table {
	t.Helper()
	tb := table.New("a", "b")
	for r := 0; r < rows; r++ {
		a := 2.0
		if r == bad {
			a = 0.5
		}
		tb.MustAppend(table.Number(a), table.Number(1))
	}
	return tb
}

func TestParallelCheckAllMatchesSerial(t *testing.T) {
	tb := gassyfsTable(t)
	src := `
when machine=* expect sublinear(nodes, time);
expect time > 0;
when machine='ec2' expect decreasing(nodes, time);
expect time < 100
`
	serial := NewEvaluator()
	serialRes, serialErr := serial.CheckAll(src, tb)

	par := NewEvaluator()
	par.Jobs = 4
	parRes, parErr := par.CheckAll(src, tb)

	if (serialErr == nil) != (parErr == nil) {
		t.Fatalf("error divergence: serial %v, parallel %v", serialErr, parErr)
	}
	if FormatResults(serialRes) != FormatResults(parRes) {
		t.Fatalf("parallel report diverged:\n--- serial\n%s\n--- parallel\n%s",
			FormatResults(serialRes), FormatResults(parRes))
	}
	if AllPassed(parRes) {
		t.Fatal("time < 100 must fail on t(1) rows")
	}
}

func TestParallelCheckAllErrorOrdering(t *testing.T) {
	tb := gassyfsTable(t)
	// The second assertion references an unknown column: both modes
	// must stop there with the same error and report the same prefix.
	src := `
expect time > 0;
expect bogus_column > 0;
expect nodes > 0
`
	serial := NewEvaluator()
	serialRes, serialErr := serial.CheckAll(src, tb)
	par := NewEvaluator()
	par.Jobs = 4
	parRes, parErr := par.CheckAll(src, tb)
	if serialErr == nil || parErr == nil {
		t.Fatalf("unknown column must error: serial %v, parallel %v", serialErr, parErr)
	}
	if serialErr.Error() != parErr.Error() {
		t.Fatalf("error diverged:\nserial:   %v\nparallel: %v", serialErr, parErr)
	}
	if len(serialRes) != len(parRes) {
		t.Fatalf("prefix length diverged: serial %d, parallel %d", len(serialRes), len(parRes))
	}
}

func TestChunkedRowCompareMatchesSerial(t *testing.T) {
	for _, bad := range []int{-1, 0, 700, 1023} {
		tb := bigTable(t, 1024, bad)
		serial := NewEvaluator()
		sr := mustCheckWith(t, serial, "expect a >= b", tb)
		par := NewEvaluator()
		par.Jobs = 4
		pr := mustCheckWith(t, par, "expect a >= b", tb)
		if sr.Passed != pr.Passed {
			t.Fatalf("bad=%d: verdict diverged: serial %v, parallel %v", bad, sr.Passed, pr.Passed)
		}
		if sr.String() != pr.String() {
			t.Fatalf("bad=%d: detail diverged:\nserial:   %s\nparallel: %s", bad, sr.String(), pr.String())
		}
		if bad >= 0 {
			if pr.Passed {
				t.Fatalf("bad=%d: violation missed", bad)
			}
			want := fmt.Sprintf("row %d:", bad)
			if got := pr.String(); !strings.Contains(got, want) {
				t.Fatalf("bad=%d: detail %q should name the first violating row (%s)", bad, got, want)
			}
		} else if !pr.Passed {
			t.Fatal("clean table must pass")
		}
	}
}

func TestChunkedRowCompareFirstViolationWins(t *testing.T) {
	// Two violations in different chunks: the lower row must be the one
	// reported, exactly as a serial scan would.
	tb := table.New("a", "b")
	for r := 0; r < 1024; r++ {
		a := 2.0
		if r == 100 || r == 900 {
			a = 0.5
		}
		tb.MustAppend(table.Number(a), table.Number(1))
	}
	par := NewEvaluator()
	par.Jobs = 8
	res := mustCheckWith(t, par, "expect a >= b", tb)
	if res.Passed {
		t.Fatal("violations missed")
	}
	if !strings.Contains(res.String(), "row 100:") {
		t.Fatalf("detail %q should report row 100, not a later violation", res.String())
	}
}

// TestConcurrentEvaluatorsShareViews drives several parallel evaluators
// over zero-copy views of one shared table at once. Views share the
// parent's columnar storage and string dictionary, so under -race this
// proves the whole read path (masks, group splitting, compiled row
// kernels) is synchronization-free safe.
func TestConcurrentEvaluatorsShareViews(t *testing.T) {
	tb := bigTable(t, 4096, -1)
	even := tb.Filter(func(r int) bool { return r%2 == 0 })
	odd := tb.Filter(func(r int) bool { return r%2 == 1 })
	src := "expect a >= b; expect avg(a) > 1 and count(*) > 100"

	serial := NewEvaluator()
	wantEven, err := serial.CheckAll(src, even)
	if err != nil {
		t.Fatal(err)
	}
	wantOdd, err := serial.CheckAll(src, odd)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		view, want := even, FormatResults(wantEven)
		if w%2 == 1 {
			view, want = odd, FormatResults(wantOdd)
		}
		go func() {
			ev := NewEvaluator()
			ev.Jobs = 4
			res, err := ev.CheckAll(src, view)
			if err != nil {
				done <- err
				return
			}
			if got := FormatResults(res); got != want {
				done <- fmt.Errorf("concurrent verdicts diverged:\n--- got\n%s--- want\n%s", got, want)
				return
			}
			done <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}

func mustCheckWith(t *testing.T, e *Evaluator, src string, tb *table.Table) Result {
	t.Helper()
	asserts, err := ParseFile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Check(asserts[0], tb)
	if err != nil {
		t.Fatal(err)
	}
	return res
}
