package aver

import (
	"fmt"
	"testing"
	"time"

	"popper/internal/table"
)

// streamBenchSrc is the benchmark validation source: four assertions,
// all of which the streaming evaluator maintains incrementally, over
// the sweep-shaped schema the benchmark tables carry.
const streamBenchSrc = `
expect count(time) > 0
expect within(time, 0, 1000)
when workload=* expect avg(time) < 200
when machine=* expect min(time) >= 0
`

// streamBenchRow appends row i of the deterministic benchmark stream.
func streamBenchRow(t *table.Table, i int) {
	workloads := [...]string{"compile", "fsbench", "rados", "query", "sort", "join", "scan", "merge"}
	machines := [...]string{"cloudlab", "ec2", "chameleon", "probe"}
	t.MustAppend(
		table.String(workloads[i%len(workloads)]),
		table.String(machines[(i/3)%len(machines)]),
		table.Number(float64(int(1)<<uint(i%4))),
		table.Number(float64(i%97)+0.5),
	)
}

// streamBenchTable builds an n-row observation table.
func streamBenchTable(n int) *table.Table {
	t := table.New("workload", "machine", "nodes", "time")
	for i := 0; i < n; i++ {
		streamBenchRow(t, i)
	}
	return t
}

// benchSizes is the observation-count axis of BenchmarkAverStreaming.
var benchSizes = []struct {
	name string
	n    int
}{
	{"1k", 1_000},
	{"100k", 100_000},
	{"1M", 1_000_000},
}

// streamBenchBatch is the appended-batch size: one executor checkpoint
// worth of new observations.
const streamBenchBatch = 256

// BenchmarkAverStreaming measures the cost of validating one appended
// batch at a given window size. "incremental" is the streaming
// evaluator's O(delta) path: step the compiled kernels over just the
// new rows. "batch" is what a non-streaming validator must do for the
// same freshness: re-run CheckAll over the whole table. The gap is the
// point of the subsystem — per-batch cost that does not grow with the
// window (see docs/AVER.md).
func BenchmarkAverStreaming(b *testing.B) {
	for _, sz := range benchSizes {
		base := streamBenchTable(sz.n)
		b.Run("incremental-"+sz.name, func(b *testing.B) {
			grow, sev := newBenchStream(b, sz.n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Bound memory growth: rebuild the window (untimed) after
				// a quarter-window of appended batches.
				if grow.Len() > sz.n+sz.n/4+streamBenchBatch {
					b.StopTimer()
					grow, sev = newBenchStream(b, sz.n)
					b.StartTimer()
				}
				appendBenchBatch(grow, streamBenchBatch)
				if err := sev.Observe(grow); err != nil {
					b.Fatal(err)
				}
			}
			if v := sev.Unsatisfiable(); v != nil {
				b.Fatalf("benchmark stream must stay satisfiable: %v", v.Err())
			}
		})
		b.Run("batch-"+sz.name, func(b *testing.B) {
			ev := NewEvaluator()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ev.CheckAll(streamBenchSrc, base); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// newBenchStream builds a fresh n-row window with a streaming evaluator
// that has already consumed it (periodic rechecks disabled — the
// benchmark isolates the incremental path).
func newBenchStream(tb testing.TB, n int) (*table.Table, *StreamEvaluator) {
	tb.Helper()
	grow := streamBenchTable(n)
	sev, err := NewEvaluator().Stream(streamBenchSrc, StreamOptions{RecheckEvery: -1})
	if err != nil {
		tb.Fatal(err)
	}
	if err := sev.Observe(grow); err != nil {
		tb.Fatal(err)
	}
	if got := sev.Incremental(); got != 4 {
		tb.Fatalf("benchmark source: %d incremental assertions, want 4", got)
	}
	return grow, sev
}

// appendBenchBatch extends the stream with k more deterministic rows.
func appendBenchBatch(t *table.Table, k int) {
	n := t.Len()
	for i := 0; i < k; i++ {
		streamBenchRow(t, n+i)
	}
}

// StreamSpeedup times both freshness strategies at window size n and
// returns (incremental ns/batch, batch ns/recheck, speedup).
func StreamSpeedup(tb testing.TB, n, reps int) (incNs, batchNs float64, speedup float64) {
	tb.Helper()
	grow, sev := newBenchStream(tb, n)
	// Warm one batch so first-append costs (column binding) are paid.
	appendBenchBatch(grow, streamBenchBatch)
	if err := sev.Observe(grow); err != nil {
		tb.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < reps; i++ {
		appendBenchBatch(grow, streamBenchBatch)
		if err := sev.Observe(grow); err != nil {
			tb.Fatal(err)
		}
	}
	incNs = float64(time.Since(start).Nanoseconds()) / float64(reps)

	ev := NewEvaluator()
	base := streamBenchTable(n)
	if _, err := ev.CheckAll(streamBenchSrc, base); err != nil { // warm parse path
		tb.Fatal(err)
	}
	batchReps := 3
	start = time.Now()
	for i := 0; i < batchReps; i++ {
		if _, err := ev.CheckAll(streamBenchSrc, base); err != nil {
			tb.Fatal(err)
		}
	}
	batchNs = float64(time.Since(start).Nanoseconds()) / float64(batchReps)
	return incNs, batchNs, batchNs / incNs
}

// TestStreamIncrementalSpeedupAtLeast10x is the tentpole acceptance
// criterion, enforced by plain `go test`: at one million observations,
// incremental evaluation of an appended batch must be at least 10x
// faster than re-running the full-table batch validator. The margin in
// practice is orders of magnitude (the incremental path's cost scales
// with the batch, not the window), so scheduler noise cannot fail a
// genuine implementation.
func TestStreamIncrementalSpeedupAtLeast10x(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-row fixture is too heavy for -short")
	}
	const n = 1_000_000
	inc, batch, speedup := StreamSpeedup(t, n, 50)
	t.Logf("window=%d: incremental %.0f ns/batch (%d rows), full recheck %.0f ns — %.0fx",
		n, inc, streamBenchBatch, batch, speedup)
	if speedup < 10 {
		t.Fatalf("incremental streaming is only %.1fx faster than full-table re-evaluation, want >= 10x", speedup)
	}
}

// TestStreamBenchFixture sanity-checks the generator: the benchmark
// stream must satisfy every assertion at every size (an unsatisfiable
// fixture would freeze the kernels and fake an O(1) fast path).
func TestStreamBenchFixture(t *testing.T) {
	for _, n := range []int{100, 1000} {
		tb := streamBenchTable(n)
		res, err := NewEvaluator().CheckAll(streamBenchSrc, tb)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			if !r.Passed {
				t.Fatalf("n=%d: fixture violates an assertion: %s", n, r)
			}
		}
	}
	// And the streamed verdicts agree (the equivalence suite proves
	// this in depth; here it guards just the bench source).
	grow, sev := newBenchStream(t, 1000)
	_ = grow
	if err := sev.Recheck(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(sev.Incremental()) != "4" {
		t.Fatal("bench assertions must all stream incrementally")
	}
}
