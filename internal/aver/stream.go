package aver

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"reflect"
	"strconv"

	"popper/internal/table"
)

// Streaming evaluation: assertions are checked incrementally as result
// rows arrive in batches, so a violation surfaces after O(delta) work
// per batch instead of a full-table re-scan. The stream evaluator
// classifies each assertion at compile time:
//
//   - Incremental: `when` filters run per appended row, wildcard groups
//     are keyed on interned cell identities (the same identities the
//     batch evaluator's GroupIDs pass uses), and the expectation
//     compiles into kernels over per-group running state —
//     count/sum/min/max (and mean as sum/count) for aggregate
//     comparisons, frozen first-event cells for row-level, string and
//     within() kernels. Accumulation follows the batch evaluator's row
//     order exactly, so every verdict, detail string and error is
//     byte-identical to Check on the same prefix.
//   - Deferred: shapes without an O(1) running form (median/stddev/cv
//     aggregates, scaling tests, malformed references) fall back to the
//     batch evaluator over the consumed prefix whenever results are
//     assembled; Observe stays O(delta) regardless.
//
// Periodic full-table rechecks (doubling schedule by default) re-run
// the batch evaluator over the whole prefix and fail loudly if any
// incremental verdict diverges — the proof obligation that keeps the
// fast path honest.
//
// A kernel whose group can never pass again (a row-level violation is
// permanent: the failing row never leaves the table) marks the
// assertion unsatisfiable — the fail-fast signal sweeps use to cancel
// doomed configurations mid-run.

// ErrUnsatisfiable marks a streamed assertion that no future rows can
// satisfy; fail-fast cancellation wraps it.
var ErrUnsatisfiable = errors.New("aver: assertion unsatisfiable")

// StreamOptions tunes a stream evaluator.
type StreamOptions struct {
	// RecheckEvery is the full-table recheck cadence in consumed rows:
	// > 0 rechecks every that-many rows, 0 (the default) rechecks on a
	// doubling row schedule (amortized O(1) per row), < 0 disables
	// automatic rechecks (explicit Recheck calls still work).
	RecheckEvery int
}

// StreamViolation is one currently-violated assertion group.
type StreamViolation struct {
	Assertion *Assertion
	Keys      map[string]string // wildcard column -> value
	Detail    string            // batch-identical detail (or error text)
	Row       int               // consumed prefix length when surfaced
	// Final reports that no future rows can flip the group back to
	// passing (row-level kernels fail permanently; aggregate
	// comparisons stay provisional).
	Final bool
}

// Err renders the violation as a fail-fast error wrapping
// ErrUnsatisfiable.
func (v *StreamViolation) Err() error {
	return fmt.Errorf("%w: %s: group %s: %s",
		ErrUnsatisfiable, v.Assertion.Source, formatKeys(v.Keys), v.Detail)
}

// StreamEvaluator evaluates a validations file incrementally over a
// growing results table. Not safe for concurrent use — one producer
// feeds it.
type StreamEvaluator struct {
	ev      *Evaluator
	asserts []*Assertion
	states  []*assertState

	tab      *table.Table
	rows     int // consumed prefix length
	compiled bool

	// shared column registry: every column any kernel reads, with
	// handles rebound at each Observe (appends can regrow the backing
	// arrays).
	colNames []string
	colIdx   map[string]int
	cols     []table.Col

	recheckEvery int
	nextRecheck  int
	lastRecheck  int
	rechecks     int

	unsat *StreamViolation
}

// Stream parses a validations file into a streaming evaluator. The
// evaluator's Method/DefaultTol/Jobs govern the batch side (rechecks
// and deferred assertions) exactly as in CheckAll.
func (e *Evaluator) Stream(src string, opts StreamOptions) (*StreamEvaluator, error) {
	asserts, err := ParseFile(src)
	if err != nil {
		return nil, err
	}
	s := &StreamEvaluator{
		ev:           e,
		asserts:      asserts,
		colIdx:       make(map[string]int),
		recheckEvery: opts.RecheckEvery,
		nextRecheck:  1024,
	}
	return s, nil
}

// colRef registers a referenced column and returns its handle index.
func (s *StreamEvaluator) colRef(name string) int {
	if i, ok := s.colIdx[name]; ok {
		return i
	}
	i := len(s.colNames)
	s.colIdx[name] = i
	s.colNames = append(s.colNames, name)
	return i
}

// Rows returns the consumed prefix length.
func (s *StreamEvaluator) Rows() int { return s.rows }

// Rechecks returns how many full-table rechecks have run.
func (s *StreamEvaluator) Rechecks() int { return s.rechecks }

// Incremental returns how many assertions compiled to incremental
// kernels (the rest are deferred to batch evaluation).
func (s *StreamEvaluator) Incremental() int {
	n := 0
	for _, st := range s.states {
		if !st.deferred {
			n++
		}
	}
	return n
}

// Unsatisfiable returns the first assertion group proven impossible to
// satisfy, or nil. The verdict is permanent: once set it never clears.
func (s *StreamEvaluator) Unsatisfiable() *StreamViolation { return s.unsat }

// Observe consumes rows [Rows(), t.Len()) of the growing results table.
// Every call must pass the same logically-growing table (append-only:
// consumed rows never change). The work is O(new rows); automatic
// rechecks add an amortized O(1) per row on the default schedule. An
// error means either misuse (shrinking table) or — from a recheck — an
// incremental/batch divergence, which is a bug worth failing loudly on.
func (s *StreamEvaluator) Observe(t *table.Table) error {
	if !s.compiled {
		s.compile(t)
		s.compiled = true
	}
	s.tab = t
	n := t.Len()
	if n < s.rows {
		return fmt.Errorf("aver: stream table shrank from %d to %d rows", s.rows, n)
	}
	if n > s.rows {
		s.bind(t)
		for _, st := range s.states {
			if st.deferred {
				continue
			}
			for row := s.rows; row < n; row++ {
				st.stepRow(s, row)
			}
		}
		s.rows = n
		if s.unsat == nil {
			s.findUnsat()
		}
	}
	if s.recheckDue() {
		return s.Recheck()
	}
	return nil
}

func (s *StreamEvaluator) recheckDue() bool {
	if s.recheckEvery < 0 {
		return false
	}
	if s.recheckEvery > 0 {
		return s.rows-s.lastRecheck >= s.recheckEvery
	}
	return s.rows >= s.nextRecheck
}

// bind refreshes the shared column handles against the current storage.
func (s *StreamEvaluator) bind(t *table.Table) {
	if s.cols == nil {
		s.cols = make([]table.Col, len(s.colNames))
	}
	for i, name := range s.colNames {
		c, err := t.Col(name)
		if err != nil {
			// compile only registers existing columns; a vanished column
			// means the caller swapped tables — the recheck will report it.
			continue
		}
		s.cols[i] = c
	}
}

// prefix returns the consumed prefix as a table (the table itself when
// fully consumed, a zero-copy view otherwise).
func (s *StreamEvaluator) prefix() *table.Table {
	if s.tab == nil {
		return table.New()
	}
	if s.rows == s.tab.Len() {
		return s.tab
	}
	rows := make([]int, s.rows)
	for i := range rows {
		rows[i] = i
	}
	v, err := s.tab.View(rows)
	if err != nil {
		return s.tab
	}
	return v
}

// Results assembles the verdicts over the consumed prefix —
// byte-identical to CheckAll(src, prefix): incremental assertions from
// running state, deferred ones via the batch evaluator.
func (s *StreamEvaluator) Results() ([]Result, error) {
	t := s.prefix()
	out := make([]Result, 0, len(s.asserts))
	for _, st := range s.states {
		var r Result
		var err error
		if st.deferred || !s.compiled {
			r, err = s.ev.Check(st.a, t)
		} else {
			r, err = st.assemble()
		}
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Violations lists the currently-violated groups of incremental
// assertions (deferred assertions report only through Results and
// rechecks). Provisional entries (Final=false) can clear as more rows
// arrive; Final ones cannot.
func (s *StreamEvaluator) Violations() []StreamViolation {
	var out []StreamViolation
	for _, st := range s.states {
		if st.deferred {
			continue
		}
		for _, g := range st.order {
			pass, detail, err := st.root.eval(g)
			if err != nil {
				detail = err.Error()
			}
			if err != nil || !pass {
				out = append(out, StreamViolation{
					Assertion: st.a, Keys: g.keys, Detail: detail,
					Row: s.rows, Final: st.root.unsat(g),
				})
			}
		}
	}
	return out
}

// findUnsat records the first definitively-failed group, scanning
// assertions in file order and groups in first-seen order.
func (s *StreamEvaluator) findUnsat() {
	for _, st := range s.states {
		if st.deferred {
			continue
		}
		for _, g := range st.order {
			if !st.root.unsat(g) {
				continue
			}
			_, detail, err := st.root.eval(g)
			if err != nil {
				detail = err.Error()
			}
			s.unsat = &StreamViolation{
				Assertion: st.a, Keys: g.keys, Detail: detail,
				Row: s.rows, Final: true,
			}
			return
		}
	}
}

// Recheck re-evaluates the full consumed prefix with the batch
// evaluator and errors if any incremental verdict diverges. Cheap
// relative to its cadence; the returned error is the byte-identity
// proof failing.
func (s *StreamEvaluator) Recheck() error {
	s.rechecks++
	s.lastRecheck = s.rows
	for s.nextRecheck <= s.rows {
		s.nextRecheck *= 2
	}
	t := s.prefix()
	want := make([]Result, 0, len(s.asserts))
	var wantErr error
	for _, a := range s.asserts {
		r, err := s.ev.Check(a, t)
		if err != nil {
			wantErr = err
			break
		}
		want = append(want, r)
	}
	got, gotErr := s.Results()
	if (gotErr == nil) != (wantErr == nil) ||
		(gotErr != nil && gotErr.Error() != wantErr.Error()) {
		return fmt.Errorf("aver: stream recheck diverged at %d rows: incremental error %v, batch error %v",
			s.rows, gotErr, wantErr)
	}
	if len(got) != len(want) {
		return fmt.Errorf("aver: stream recheck diverged at %d rows: %d incremental results, %d batch",
			s.rows, len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			return fmt.Errorf("aver: stream recheck diverged at %d rows on %q:\nincremental: %+v\nbatch:       %+v",
				s.rows, s.asserts[i].Source, got[i], want[i])
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Per-assertion streaming state
// ---------------------------------------------------------------------

type assertState struct {
	a        *Assertion
	deferred bool

	wildcards []string // wildcard clause columns, in clause order
	wcolIdx   []int    // their handle indices
	filters   []streamClause

	root     streamNode
	nAggs    int
	nKernels int

	matched int
	groups  map[string]*groupState
	order   []*groupState
	keyBuf  []byte
}

type groupState struct {
	keys    map[string]string
	n       int // rows in the group so far (== group-local next index)
	aggs    []aggCell
	kernels []kernelCell
}

// aggCell is the running state of one aggregate operand: count, sum and
// running min/max accumulated in the batch evaluator's row order, plus
// the first non-numeric row (which turns the aggregate into the same
// error numericCol would report).
type aggCell struct {
	n        int
	sum      float64
	min, max float64
	errRow   int
}

// kernelCell is the state of one row-level kernel. Plain comparisons
// freeze at their first event (the batch row loop stops there); within()
// keeps scanning for non-numeric cells because its numericCol pass
// precedes the range loop.
type kernelCell struct {
	frozen bool
	failed bool
	detail string
	err    error
	errRow int // within(): first non-numeric row, -1 none
}

// stepRow feeds one table row (physical index phys) through the
// assertion: when-filters, group routing, kernel updates.
func (st *assertState) stepRow(s *StreamEvaluator, phys int) {
	for i := range st.filters {
		if !st.filters[i].match(s, phys) {
			return
		}
	}
	st.matched++
	g := st.group(s, phys)
	local := g.n
	g.n++
	st.root.step(s, g, phys, local)
}

// group routes a matching row to its wildcard group, creating it (in
// first-seen order, with batch-identical keys) on first sight. The map
// key mirrors the batch GroupIDs cell identity: interned string ids and
// canonicalized float bit patterns.
func (st *assertState) group(s *StreamEvaluator, phys int) *groupState {
	if len(st.wildcards) == 0 {
		if len(st.order) == 0 {
			g := st.newGroup(map[string]string{})
			st.order = append(st.order, g)
		}
		return st.order[0]
	}
	buf := st.keyBuf[:0]
	for _, ci := range st.wcolIdx {
		c := s.cols[ci]
		if id := c.StrID(phys); id >= 0 {
			buf = append(buf, 's')
			buf = binary.BigEndian.AppendUint64(buf, uint64(id))
		} else {
			v := c.Num(phys)
			bits := math.Float64bits(v)
			if math.IsNaN(v) {
				bits = math.Float64bits(math.NaN())
			}
			buf = append(buf, 'n')
			buf = binary.BigEndian.AppendUint64(buf, bits)
		}
	}
	st.keyBuf = buf
	if g, ok := st.groups[string(buf)]; ok {
		return g
	}
	keys := make(map[string]string, len(st.wildcards))
	for i, w := range st.wildcards {
		keys[w] = s.cols[st.wcolIdx[i]].Text(phys)
	}
	g := st.newGroup(keys)
	if st.groups == nil {
		st.groups = make(map[string]*groupState)
	}
	st.groups[string(buf)] = g
	st.order = append(st.order, g)
	return g
}

func (st *assertState) newGroup(keys map[string]string) *groupState {
	g := &groupState{keys: keys}
	if st.nAggs > 0 {
		g.aggs = make([]aggCell, st.nAggs)
		for i := range g.aggs {
			g.aggs[i].errRow = -1
		}
	}
	if st.nKernels > 0 {
		g.kernels = make([]kernelCell, st.nKernels)
		for i := range g.kernels {
			g.kernels[i].errRow = -1
		}
	}
	return g
}

// assemble builds the assertion's Result from running state,
// byte-identical to the batch Check over the same prefix.
func (st *assertState) assemble() (Result, error) {
	res := Result{Assertion: st.a, Passed: true}
	if st.matched == 0 {
		return Result{Assertion: st.a, Passed: false, Groups: []GroupResult{{
			Keys: map[string]string{}, Passed: false,
			Detail: "no rows matched the when clause",
		}}}, nil
	}
	for _, g := range st.order {
		passed, detail, err := st.root.eval(g)
		if err != nil {
			return res, err
		}
		gr := GroupResult{Keys: g.keys, Passed: passed, Detail: detail}
		if !passed {
			res.Passed = false
		}
		res.Groups = append(res.Groups, gr)
	}
	return res, nil
}

// ---------------------------------------------------------------------
// Compilation: classify each assertion and build incremental kernels
// ---------------------------------------------------------------------

// compile classifies every assertion against the stream's schema. It
// never fails: shapes the incremental engine cannot reproduce
// faithfully (including schema errors, which the batch evaluator turns
// into specific eval-time errors) defer to batch evaluation.
func (s *StreamEvaluator) compile(t *table.Table) {
	s.states = make([]*assertState, len(s.asserts))
	for i, a := range s.asserts {
		s.states[i] = s.compileAssert(a, t)
	}
}

func (s *StreamEvaluator) compileAssert(a *Assertion, t *table.Table) *assertState {
	st := &assertState{a: a}
	for _, cl := range a.When {
		if !t.HasColumn(cl.Column) {
			st.deferred = true
			return st
		}
		if cl.Wildcard {
			st.wildcards = append(st.wildcards, cl.Column)
			st.wcolIdx = append(st.wcolIdx, s.colRef(cl.Column))
			continue
		}
		sc := streamClause{cl: cl, colIdx: s.colRef(cl.Column)}
		if !cl.IsNum {
			sc.numOK, sc.num, sc.nan = compileLitNum(cl.Str)
		}
		st.filters = append(st.filters, sc)
	}
	c := &nodeCompiler{s: s, st: st, t: t}
	root, ok := c.compileExpr(a.Expect)
	if !ok {
		st.deferred = true
		return st
	}
	st.root = root
	return st
}

type nodeCompiler struct {
	s  *StreamEvaluator
	st *assertState
	t  *table.Table
}

func (c *nodeCompiler) compileExpr(e Expr) (streamNode, bool) {
	switch ex := e.(type) {
	case LogicalExpr:
		l, ok := c.compileExpr(ex.Left)
		if !ok {
			return nil, false
		}
		r, ok := c.compileExpr(ex.Right)
		if !ok {
			return nil, false
		}
		return &logicalNode{op: ex.Op, left: l, right: r}, true
	case CallExpr:
		return c.compileCall(ex)
	case CompareExpr:
		return c.compileCompare(ex)
	}
	return nil, false
}

func (c *nodeCompiler) compileCall(ex CallExpr) (streamNode, bool) {
	if ex.Func != "within" || len(ex.Args) != 3 {
		return nil, false
	}
	if ex.Args[0].Kind != OpColumn || !c.t.HasColumn(ex.Args[0].Col) {
		return nil, false
	}
	if ex.Args[1].Kind != OpNumber || ex.Args[2].Kind != OpNumber {
		return nil, false
	}
	n := &withinNode{
		kidx:    c.st.nKernels,
		colIdx:  c.s.colRef(ex.Args[0].Col),
		colName: ex.Args[0].Col,
		lo:      ex.Args[1].Num,
		hi:      ex.Args[2].Num,
	}
	c.st.nKernels++
	return n, true
}

func (c *nodeCompiler) compileCompare(ex CompareExpr) (streamNode, bool) {
	// Mirror evalCompare's preamble: a bare word naming no column is a
	// string literal when the other side is a real column.
	if len(ex.Left.Factors) == 0 && len(ex.Right.Factors) == 0 {
		l, r := ex.Left.First, ex.Right.First
		if l.Kind == OpColumn && !c.t.HasColumn(l.Col) && r.Kind == OpColumn && c.t.HasColumn(r.Col) {
			ex.Left = termOf(Operand{Kind: OpString, Str: l.Col})
		}
		if r.Kind == OpColumn && !c.t.HasColumn(r.Col) && l.Kind == OpColumn && c.t.HasColumn(l.Col) {
			ex.Right = termOf(Operand{Kind: OpString, Str: r.Col})
		}
		if ex.Left.First.Kind == OpString || ex.Right.First.Kind == OpString {
			return c.compileStringCompare(ex)
		}
	}
	if termHasColumn(ex.Left) || termHasColumn(ex.Right) {
		return c.compileRowCompare(ex)
	}
	return c.compileScalarCompare(ex)
}

func (c *nodeCompiler) compileStringCompare(ex CompareExpr) (streamNode, bool) {
	if ex.Op != "=" && ex.Op != "!=" {
		return nil, false
	}
	col, lit := ex.Left.First, ex.Right.First
	if col.Kind == OpString {
		col, lit = lit, col
	}
	if col.Kind != OpColumn || lit.Kind != OpString || !c.t.HasColumn(col.Col) {
		return nil, false
	}
	n := &strCmpNode{
		kidx:    c.st.nKernels,
		op:      ex.Op,
		colIdx:  c.s.colRef(col.Col),
		colName: col.Col,
		lit:     lit.Str,
	}
	n.numOK, n.num, n.nan = compileLitNum(lit.Str)
	c.st.nKernels++
	return n, true
}

func (c *nodeCompiler) compileScalarCompare(ex CompareExpr) (streamNode, bool) {
	l, ok := c.compileScalarTerm(ex.Left)
	if !ok {
		return nil, false
	}
	r, ok := c.compileScalarTerm(ex.Right)
	if !ok {
		return nil, false
	}
	return &scalarCmpNode{op: ex.Op, lAST: ex.Left, rAST: ex.Right, left: l, right: r}, true
}

func (c *nodeCompiler) compileScalarTerm(t Term) (scalarTerm, bool) {
	out := scalarTerm{}
	first, ok := c.compileScalarOp(t.First)
	if !ok {
		return out, false
	}
	out.first = first
	for _, f := range t.Factors {
		so, ok := c.compileScalarOp(f.Operand)
		if !ok {
			return out, false
		}
		out.factors = append(out.factors, scalarFactor{op: f.Op, so: so})
	}
	return out, true
}

func (c *nodeCompiler) compileScalarOp(o Operand) (scalarOp, bool) {
	switch o.Kind {
	case OpNumber:
		return scalarOp{kind: OpNumber, num: o.Num}, true
	case OpAgg:
		if o.Agg == "count" {
			return scalarOp{kind: OpAgg, agg: "count", aggIdx: -1}, true
		}
		switch o.Agg {
		case "avg", "sum", "min", "max":
		default:
			return scalarOp{}, false // median/stddev/cv have no O(1) running form
		}
		if !c.t.HasColumn(o.Col) {
			return scalarOp{}, false
		}
		so := scalarOp{
			kind: OpAgg, agg: o.Agg, colName: o.Col,
			colIdx: c.s.colRef(o.Col), aggIdx: c.st.nAggs,
		}
		c.st.nAggs++
		return so, true
	}
	return scalarOp{}, false
}

func (c *nodeCompiler) compileRowCompare(ex CompareExpr) (streamNode, bool) {
	l, ok := c.compileRowTerm(ex.Left)
	if !ok {
		return nil, false
	}
	r, ok := c.compileRowTerm(ex.Right)
	if !ok {
		return nil, false
	}
	n := &rowCmpNode{kidx: c.st.nKernels, op: ex.Op, lAST: ex.Left, rAST: ex.Right, left: l, right: r}
	c.st.nKernels++
	return n, true
}

func (c *nodeCompiler) compileRowTerm(t Term) (rowTerm, bool) {
	out := rowTerm{}
	first, ok := c.compileRowOp(t.First)
	if !ok {
		return out, false
	}
	out.first = first
	for _, f := range t.Factors {
		ro, ok := c.compileRowOp(f.Operand)
		if !ok {
			return out, false
		}
		out.factors = append(out.factors, rowFactor{op: f.Op, ro: ro})
	}
	return out, true
}

func (c *nodeCompiler) compileRowOp(o Operand) (rowOp, bool) {
	switch o.Kind {
	case OpNumber:
		return rowOp{kind: OpNumber, num: o.Num}, true
	case OpColumn:
		if !c.t.HasColumn(o.Col) {
			return rowOp{}, false
		}
		return rowOp{kind: OpColumn, colIdx: c.s.colRef(o.Col), colName: o.Col}, true
	}
	// Aggregates inside a row-level term re-aggregate as rows arrive,
	// invalidating already-checked rows — not incrementally evaluable.
	return rowOp{}, false
}

// compileLitNum pre-parses the numeric rendering of a literal: a
// numeric cell equals the literal iff the cell's canonical text would
// be exactly it (mirrors compileStrLit, minus the interned-id cache —
// a stream can intern the literal mid-batch, so string cells compare
// through the dictionary text instead).
func compileLitNum(s string) (numOK bool, num float64, nan bool) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return false, 0, false
	}
	if math.IsNaN(f) {
		return s == "NaN", 0, true
	}
	if strconv.FormatFloat(f, 'g', -1, 64) == s {
		return true, f, false
	}
	return false, 0, false
}

// eqText reports whether cell phys renders exactly to the literal —
// the streaming counterpart of strLit.eqCell.
func eqText(c table.Col, phys int, lit string, numOK bool, num float64, nan bool) bool {
	if c.StrID(phys) >= 0 {
		return c.Text(phys) == lit
	}
	if !numOK {
		return false
	}
	v := c.Num(phys)
	if nan {
		return math.IsNaN(v)
	}
	return v == num && math.Signbit(v) == math.Signbit(num)
}

// streamClause is one compiled non-wildcard when clause.
type streamClause struct {
	cl     Clause
	colIdx int
	numOK  bool
	num    float64
	nan    bool
}

func (f *streamClause) match(s *StreamEvaluator, phys int) bool {
	c := s.cols[f.colIdx]
	if f.cl.IsNum {
		return c.IsNum(phys) && compareFloats(c.Num(phys), f.cl.Op, f.cl.Num)
	}
	eq := eqText(c, phys, f.cl.Str, f.numOK, f.num, f.nan)
	switch f.cl.Op {
	case "=":
		return eq
	case "!=":
		return !eq
	}
	return false
}

// ---------------------------------------------------------------------
// Incremental kernels
// ---------------------------------------------------------------------

// streamNode is one compiled node of an expectation. step consumes a
// matching row; eval reproduces the batch verdict on the consumed
// prefix; unsat reports the group can never pass again.
type streamNode interface {
	step(s *StreamEvaluator, g *groupState, phys, local int)
	eval(g *groupState) (bool, string, error)
	unsat(g *groupState) bool
}

type logicalNode struct {
	op          string
	left, right streamNode
}

func (n *logicalNode) step(s *StreamEvaluator, g *groupState, phys, local int) {
	n.left.step(s, g, phys, local)
	n.right.step(s, g, phys, local)
}

func (n *logicalNode) eval(g *groupState) (bool, string, error) {
	lp, ld, err := n.left.eval(g)
	if err != nil {
		return false, "", err
	}
	if n.op == "and" {
		if !lp {
			return false, ld, nil
		}
		return n.right.eval(g)
	}
	if lp {
		return true, ld, nil
	}
	rp, rd, err := n.right.eval(g)
	if err != nil {
		return false, "", err
	}
	if rp {
		return true, rd, nil
	}
	return false, ld + "; " + rd, nil
}

func (n *logicalNode) unsat(g *groupState) bool {
	if n.op == "and" {
		return n.left.unsat(g) || n.right.unsat(g)
	}
	return n.left.unsat(g) && n.right.unsat(g)
}

// scalarCmpNode compares two aggregate-only terms. Running
// count/sum/min/max per operand reproduce the batch aggregates exactly
// (same row order, same arithmetic); verdicts are provisional — new
// rows can move an aggregate across the threshold in either direction.
type scalarCmpNode struct {
	op          string
	lAST, rAST  Term
	left, right scalarTerm
}

type scalarTerm struct {
	first   scalarOp
	factors []scalarFactor
}

type scalarFactor struct {
	op byte
	so scalarOp
}

type scalarOp struct {
	kind    OperandKind // OpNumber | OpAgg
	num     float64
	agg     string // count/avg/sum/min/max
	colName string
	colIdx  int
	aggIdx  int // -1 for count
}

func (n *scalarCmpNode) step(s *StreamEvaluator, g *groupState, phys, local int) {
	n.left.step(s, g, phys, local)
	n.right.step(s, g, phys, local)
}

func (t *scalarTerm) step(s *StreamEvaluator, g *groupState, phys, local int) {
	t.first.step(s, g, phys, local)
	for i := range t.factors {
		t.factors[i].so.step(s, g, phys, local)
	}
}

func (o *scalarOp) step(s *StreamEvaluator, g *groupState, phys, local int) {
	if o.kind != OpAgg || o.aggIdx < 0 {
		return
	}
	cell := &g.aggs[o.aggIdx]
	v := s.cols[o.colIdx].Float(phys)
	if math.IsNaN(v) {
		// numericCol reports the first non-numeric row; it scans the
		// whole group column, so keep accumulating the rest regardless.
		if cell.errRow < 0 {
			cell.errRow = local
		}
		return
	}
	if cell.n == 0 {
		cell.min, cell.max = v, v
	} else {
		if v < cell.min {
			cell.min = v
		}
		if v > cell.max {
			cell.max = v
		}
	}
	cell.n++
	cell.sum += v
}

// value resolves the term against the group's running state, mirroring
// the batch compileTerm/at(-1) split: every operand resolves (reporting
// numericCol errors in operand order) before division applies.
func (t *scalarTerm) value(g *groupState) (float64, error) {
	vals := make([]float64, 1+len(t.factors))
	v, err := t.first.value(g)
	if err != nil {
		return 0, err
	}
	vals[0] = v
	for i := range t.factors {
		fv, err := t.factors[i].so.value(g)
		if err != nil {
			return 0, err
		}
		vals[i+1] = fv
	}
	v = vals[0]
	for i := range t.factors {
		switch t.factors[i].op {
		case '*':
			v *= vals[i+1]
		case '/':
			if vals[i+1] == 0 {
				return 0, fmt.Errorf("aver: division by zero in term")
			}
			v /= vals[i+1]
		}
	}
	return v, nil
}

func (o *scalarOp) value(g *groupState) (float64, error) {
	if o.kind == OpNumber {
		return o.num, nil
	}
	if o.agg == "count" {
		return float64(g.n), nil
	}
	cell := &g.aggs[o.aggIdx]
	if cell.errRow >= 0 {
		return 0, fmt.Errorf("aver: column %q row %d is not numeric", o.colName, cell.errRow)
	}
	switch o.agg {
	case "avg":
		return cell.sum / float64(cell.n), nil
	case "sum":
		return cell.sum, nil
	case "min":
		return cell.min, nil
	case "max":
		return cell.max, nil
	}
	return 0, fmt.Errorf("aver: unknown aggregate %q", o.agg)
}

func (n *scalarCmpNode) eval(g *groupState) (bool, string, error) {
	lv, err := n.left.value(g)
	if err != nil {
		return false, "", err
	}
	rv, err := n.right.value(g)
	if err != nil {
		return false, "", err
	}
	ok := compareFloats(lv, n.op, rv)
	return ok, fmt.Sprintf("%s %s %s: %.4g %s %.4g",
		describeTerm(n.lAST), n.op, describeTerm(n.rAST), lv, n.op, rv), nil
}

func (n *scalarCmpNode) unsat(*groupState) bool { return false }

// rowCmpNode is a row-level comparison: every row must satisfy it. The
// batch row loop stops at the first violation or error, so the kernel
// freezes there — a permanently-failed group, hence unsat.
type rowCmpNode struct {
	kidx        int
	op          string
	lAST, rAST  Term
	left, right rowTerm
}

type rowTerm struct {
	first   rowOp
	factors []rowFactor
}

type rowFactor struct {
	op byte
	ro rowOp
}

type rowOp struct {
	kind    OperandKind // OpNumber | OpColumn
	num     float64
	colIdx  int
	colName string
}

func (o *rowOp) at(s *StreamEvaluator, phys, local int) (float64, error) {
	if o.kind == OpNumber {
		return o.num, nil
	}
	c := s.cols[o.colIdx]
	if !c.IsNum(phys) {
		return 0, fmt.Errorf("aver: column %q row %d is not numeric", o.colName, local)
	}
	return c.Num(phys), nil
}

// at mirrors compiledTerm.at: factor resolution and division interleave.
func (t *rowTerm) at(s *StreamEvaluator, phys, local int) (float64, error) {
	v, err := t.first.at(s, phys, local)
	if err != nil {
		return 0, err
	}
	for i := range t.factors {
		fv, err := t.factors[i].ro.at(s, phys, local)
		if err != nil {
			return 0, err
		}
		switch t.factors[i].op {
		case '*':
			v *= fv
		case '/':
			if fv == 0 {
				return 0, fmt.Errorf("aver: division by zero in term")
			}
			v /= fv
		}
	}
	return v, nil
}

func (n *rowCmpNode) step(s *StreamEvaluator, g *groupState, phys, local int) {
	cell := &g.kernels[n.kidx]
	if cell.frozen {
		return
	}
	lv, err := n.left.at(s, phys, local)
	if err != nil {
		cell.frozen, cell.failed, cell.err = true, true, err
		return
	}
	rv, err := n.right.at(s, phys, local)
	if err != nil {
		cell.frozen, cell.failed, cell.err = true, true, err
		return
	}
	if !compareFloats(lv, n.op, rv) {
		cell.frozen, cell.failed = true, true
		cell.detail = fmt.Sprintf("row %d: %.4g %s %.4g is false", local, lv, n.op, rv)
	}
}

func (n *rowCmpNode) eval(g *groupState) (bool, string, error) {
	cell := &g.kernels[n.kidx]
	if cell.err != nil {
		return false, "", cell.err
	}
	if cell.failed {
		return false, cell.detail, nil
	}
	return true, fmt.Sprintf("%s %s %s holds for all %d rows",
		describeTerm(n.lAST), n.op, describeTerm(n.rAST), g.n), nil
}

func (n *rowCmpNode) unsat(g *groupState) bool { return g.kernels[n.kidx].failed }

// strCmpNode is a row-level string equality test (machine = cloudlab).
type strCmpNode struct {
	kidx    int
	op      string // "=" | "!="
	colIdx  int
	colName string
	lit     string
	numOK   bool
	num     float64
	nan     bool
}

func (n *strCmpNode) step(s *StreamEvaluator, g *groupState, phys, local int) {
	cell := &g.kernels[n.kidx]
	if cell.frozen {
		return
	}
	c := s.cols[n.colIdx]
	ok := eqText(c, phys, n.lit, n.numOK, n.num, n.nan)
	if n.op == "!=" {
		ok = !ok
	}
	if !ok {
		cell.frozen, cell.failed = true, true
		cell.detail = fmt.Sprintf("row %d: %s=%q fails %s %q",
			local, n.colName, c.Text(phys), n.op, n.lit)
	}
}

func (n *strCmpNode) eval(g *groupState) (bool, string, error) {
	cell := &g.kernels[n.kidx]
	if cell.failed {
		return false, cell.detail, nil
	}
	return true, fmt.Sprintf("%s %s %q for all rows", n.colName, n.op, n.lit), nil
}

func (n *strCmpNode) unsat(g *groupState) bool { return g.kernels[n.kidx].failed }

// withinNode is within(col, lo, hi). The batch version validates the
// whole group column numeric before scanning values, so a non-numeric
// cell anywhere outranks an earlier out-of-range value — the kernel
// tracks both independently.
type withinNode struct {
	kidx    int
	colIdx  int
	colName string
	lo, hi  float64
}

func (n *withinNode) step(s *StreamEvaluator, g *groupState, phys, local int) {
	cell := &g.kernels[n.kidx]
	v := s.cols[n.colIdx].Float(phys)
	if math.IsNaN(v) {
		if cell.errRow < 0 {
			cell.errRow = local
		}
		return
	}
	if !cell.failed && (v < n.lo || v > n.hi) {
		cell.failed = true
		cell.detail = fmt.Sprintf("within(%s,%g,%g): value %g out of range",
			n.colName, n.lo, n.hi, v)
	}
}

func (n *withinNode) eval(g *groupState) (bool, string, error) {
	cell := &g.kernels[n.kidx]
	if cell.errRow >= 0 {
		return false, "", fmt.Errorf("aver: column %q row %d is not numeric", n.colName, cell.errRow)
	}
	if cell.failed {
		return false, cell.detail, nil
	}
	return true, fmt.Sprintf("within(%s,%g,%g): %d values", n.colName, n.lo, n.hi, g.n), nil
}

func (n *withinNode) unsat(g *groupState) bool {
	cell := &g.kernels[n.kidx]
	return cell.failed || cell.errRow >= 0
}
