package aver

import (
	"fmt"
	"strconv"
)

// Assertion is one parsed `when ... expect ...` statement.
type Assertion struct {
	Source string   // original text, for reports
	When   []Clause // empty means "all rows, one group"
	Expect Expr
}

// Clause is one `when` condition: a filter or a grouping wildcard.
type Clause struct {
	Column string
	Op     string // "=", "!=", "<", ">", "<=", ">="
	// Wildcard means `col=*`: group by this column.
	Wildcard bool
	// Exactly one of Num/Str is meaningful when !Wildcard.
	Num   float64
	IsNum bool
	Str   string
}

// Expr is a boolean expectation expression.
type Expr interface{ exprNode() }

// LogicalExpr combines two expectations with "and" / "or".
type LogicalExpr struct {
	Op          string // "and" | "or"
	Left, Right Expr
}

// CallExpr is a scaling/range test: sublinear(x,y), within(y,lo,hi), ...
type CallExpr struct {
	Func string
	Args []Operand
}

// CompareExpr compares two arithmetic terms:
// avg(time) < 100, nodes >= 2, avg(baseline) > 10 * avg(algo).
type CompareExpr struct {
	Left  Term
	Op    string
	Right Term
}

// Term is an operand optionally scaled by further operands:
// `10 * avg(time)` or `sum(bytes) / count(*)`. Factors associate left.
type Term struct {
	First Operand
	// Factors are applied in order: each is {*, /} with an operand.
	Factors []Factor
}

// Factor is one multiplicative step of a term.
type Factor struct {
	Op      byte // '*' or '/'
	Operand Operand
}

// termOf wraps a bare operand as a term.
func termOf(o Operand) Term { return Term{First: o} }

func (LogicalExpr) exprNode() {}
func (CallExpr) exprNode()    {}
func (CompareExpr) exprNode() {}

// Operand is a column reference, a numeric literal, a string literal, or
// an aggregate over a column.
type Operand struct {
	Kind OperandKind
	Col  string  // Column, Agg
	Agg  string  // Agg: avg|min|max|count|median|stddev|cv|sum
	Num  float64 // Number
	Str  string  // String
}

// OperandKind discriminates Operand.
type OperandKind int

// Operand kinds.
const (
	OpColumn OperandKind = iota
	OpNumber
	OpString
	OpAgg
)

var aggFuncs = map[string]bool{
	"avg": true, "mean": true, "min": true, "max": true, "count": true,
	"median": true, "stddev": true, "cv": true, "sum": true,
}

var testFuncs = map[string]int{ // name -> arity (-1 = variable, see parser)
	"sublinear": 2, "linear": 2, "superlinear": 2,
	"increasing": 2, "decreasing": 2,
	"constant": 1, "within": 3,
}

// Parse parses a single assertion.
func Parse(src string) (*Assertion, error) {
	stmts, err := ParseFile(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("aver: expected one assertion, found %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseFile parses a validations file: one or more assertions separated
// by semicolons.
func ParseFile(src string) ([]*Assertion, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	var out []*Assertion
	for !p.at(tokEOF) {
		start := p.cur().pos
		a, err := p.parseAssertion()
		if err != nil {
			return nil, err
		}
		end := p.cur().pos
		a.Source = trimSpaceAll(src[start:min(end, len(src))])
		out = append(out, a)
		for p.at(tokSemi) {
			p.next()
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("aver: no assertions found")
	}
	return out, nil
}

func trimSpaceAll(s string) string {
	out := make([]byte, 0, len(s))
	space := false
	for _, c := range []byte(s) {
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			space = true
			continue
		}
		if space && len(out) > 0 {
			out = append(out, ' ')
		}
		space = false
		out = append(out, c)
	}
	return string(out)
}

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) cur() token          { return p.toks[p.pos] }
func (p *parser) at(k tokenKind) bool { return p.cur().kind == k }
func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k tokenKind, what string) (token, error) {
	if !p.at(k) {
		return token{}, fmt.Errorf("aver: expected %s, got %s", what, p.cur())
	}
	return p.next(), nil
}

func (p *parser) parseAssertion() (*Assertion, error) {
	a := &Assertion{}
	if isKeyword(p.cur(), "when") {
		p.next()
		for {
			cl, err := p.parseClause()
			if err != nil {
				return nil, err
			}
			a.When = append(a.When, cl)
			if isKeyword(p.cur(), "and") {
				p.next()
				continue
			}
			break
		}
	}
	if !isKeyword(p.cur(), "expect") {
		return nil, fmt.Errorf("aver: expected 'expect', got %s", p.cur())
	}
	p.next()
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	a.Expect = e
	return a, nil
}

func (p *parser) parseClause() (Clause, error) {
	name, err := p.expect(tokIdent, "column name")
	if err != nil {
		return Clause{}, err
	}
	op, err := p.expect(tokOp, "comparison operator")
	if err != nil {
		return Clause{}, err
	}
	cl := Clause{Column: name.text, Op: op.text}
	switch p.cur().kind {
	case tokStar:
		if op.text != "=" {
			return Clause{}, fmt.Errorf("aver: wildcard requires '=', got %q", op.text)
		}
		cl.Wildcard = true
		p.next()
	case tokNumber:
		f, err := strconv.ParseFloat(p.next().text, 64)
		if err != nil {
			return Clause{}, fmt.Errorf("aver: bad number in clause: %w", err)
		}
		cl.Num, cl.IsNum = f, true
	case tokString:
		cl.Str = p.next().text
	case tokIdent:
		// bare words act as strings: machine=cloudlab
		cl.Str = p.next().text
	default:
		return Clause{}, fmt.Errorf("aver: expected value after %s%s, got %s", name.text, op.text, p.cur())
	}
	if !cl.Wildcard && !cl.IsNum && (cl.Op != "=" && cl.Op != "!=") {
		return Clause{}, fmt.Errorf("aver: ordering comparison %q needs a numeric value", cl.Op)
	}
	return cl, nil
}

// parseExpr parses or-expressions (lowest precedence).
func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for isKeyword(p.cur(), "or") {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = LogicalExpr{Op: "or", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for isKeyword(p.cur(), "and") {
		p.next()
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = LogicalExpr{Op: "and", Left: left, Right: right}
	}
	return left, nil
}

// parseTerm parses a parenthesized expression, a test-function call, or a
// comparison.
func (p *parser) parseTerm() (Expr, error) {
	if p.at(tokLParen) {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	}
	// A test function: ident '(' where ident is in testFuncs.
	if p.at(tokIdent) {
		if arity, ok := testFuncs[lower(p.cur().text)]; ok && p.toks[p.pos+1].kind == tokLParen {
			name := lower(p.next().text)
			p.next() // (
			var args []Operand
			for !p.at(tokRParen) {
				arg, err := p.parseOperand()
				if err != nil {
					return nil, err
				}
				args = append(args, arg)
				if p.at(tokComma) {
					p.next()
				}
			}
			p.next() // )
			// optional trailing tolerance argument for scaling tests
			minArity, maxArity := arity, arity
			switch name {
			case "sublinear", "linear", "superlinear", "constant":
				maxArity = arity + 1
			}
			if len(args) < minArity || len(args) > maxArity {
				return nil, fmt.Errorf("aver: %s expects %d argument(s), got %d", name, arity, len(args))
			}
			return CallExpr{Func: name, Args: args}, nil
		}
	}
	// Otherwise a comparison between arithmetic terms.
	left, err := p.parseArithTerm()
	if err != nil {
		return nil, err
	}
	op, err := p.expect(tokOp, "comparison operator")
	if err != nil {
		return nil, err
	}
	right, err := p.parseArithTerm()
	if err != nil {
		return nil, err
	}
	return CompareExpr{Left: left, Op: op.text, Right: right}, nil
}

// parseArithTerm parses operand {('*'|'/') operand}, e.g. `10 * avg(t)`.
func (p *parser) parseArithTerm() (Term, error) {
	first, err := p.parseOperand()
	if err != nil {
		return Term{}, err
	}
	t := Term{First: first}
	for p.at(tokStar) || p.at(tokSlash) {
		op := byte('*')
		if p.at(tokSlash) {
			op = '/'
		}
		p.next()
		f, err := p.parseOperand()
		if err != nil {
			return Term{}, err
		}
		if first.Kind == OpString || f.Kind == OpString {
			return Term{}, fmt.Errorf("aver: arithmetic on strings")
		}
		t.Factors = append(t.Factors, Factor{Op: op, Operand: f})
	}
	return t, nil
}

func (p *parser) parseOperand() (Operand, error) {
	switch p.cur().kind {
	case tokNumber:
		f, err := strconv.ParseFloat(p.next().text, 64)
		if err != nil {
			return Operand{}, fmt.Errorf("aver: bad number: %w", err)
		}
		return Operand{Kind: OpNumber, Num: f}, nil
	case tokString:
		return Operand{Kind: OpString, Str: p.next().text}, nil
	case tokIdent:
		name := p.next().text
		if p.at(tokLParen) {
			if !aggFuncs[lower(name)] {
				return Operand{}, fmt.Errorf("aver: unknown aggregate %q", name)
			}
			p.next() // (
			var col string
			if p.at(tokStar) {
				p.next()
			} else if p.at(tokIdent) {
				col = p.next().text
			}
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return Operand{}, err
			}
			agg := lower(name)
			if agg == "mean" {
				agg = "avg"
			}
			if col == "" && agg != "count" {
				return Operand{}, fmt.Errorf("aver: aggregate %s needs a column", name)
			}
			return Operand{Kind: OpAgg, Agg: agg, Col: col}, nil
		}
		return Operand{Kind: OpColumn, Col: name}, nil
	default:
		return Operand{}, fmt.Errorf("aver: expected operand, got %s", p.cur())
	}
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 32
		}
	}
	return string(b)
}
