package aver

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"popper/internal/table"
)

// Golden equivalence suite: the vectorized evaluator must produce
// byte-identical reports (verdicts, group keys, detail strings, error
// messages) to the row-oriented implementation it replaced. Fixtures
// were captured from that implementation; regenerate with -update only
// when the report format intentionally changes.
var update = flag.Bool("update", false, "rewrite golden fixture files")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", name, err)
	}
	if got != string(want) {
		t.Errorf("%s diverged from row-oriented golden:\n--- want\n%s\n--- got\n%s", name, want, got)
	}
}

// equivTable is a sweep-shaped results table with two wildcard axes,
// noise, a failing group and string metadata.
func equivTable() *table.Table {
	t := table.New("workload", "machine", "nodes", "time", "status")
	add := func(w, m string, n, tm float64, st string) {
		t.MustAppend(table.String(w), table.String(m),
			table.Number(n), table.Number(tm), table.String(st))
	}
	for _, w := range []string{"compile", "fsbench"} {
		for _, m := range []string{"cloudlab", "ec2"} {
			base := 100.0
			if m == "ec2" {
				base = 140
			}
			exp := -0.6 // sublinear speedup: time shrinks with nodes
			if w == "fsbench" && m == "ec2" {
				exp = 1.3 // superlinear growth: this group fails sublinear()
			}
			for _, n := range []float64{1, 2, 4, 8} {
				add(w, m, n, base*math.Pow(n, exp), "ok")
			}
		}
	}
	return t
}

const validationsSrc = `
# paper-shaped grouped scaling assertion: one group fails
when workload=* and machine=* expect sublinear(nodes, time, 0.05);
# grouped monotonicity
when workload=* and machine=* expect increasing(nodes, time);
# numeric filter plus row-level arithmetic
when nodes >= 2 expect time / nodes > 0.1;
# aggregates and logical combinations
expect avg(time) > 10 and count(*) = 16 or min(nodes) = 99;
# string equality over all rows
expect status = ok;
# within and constant
when workload=compile and machine=cloudlab expect within(nodes, 1, 8);
when nodes=1 and workload=compile expect constant(time, 0.5)
`

func TestGoldenVerdictsSerial(t *testing.T) {
	tb := equivTable()
	res, err := NewEvaluator().CheckAll(validationsSrc, tb)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "verdicts.txt", FormatResults(res))
}

func TestGoldenVerdictsParallel(t *testing.T) {
	tb := equivTable()
	ev := NewEvaluator()
	ev.Jobs = 4
	res, err := ev.CheckAll(validationsSrc, tb)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "verdicts.txt", FormatResults(res))
}

func TestGoldenVerdictsPairwise(t *testing.T) {
	tb := equivTable()
	ev := NewEvaluator()
	ev.Method = SlopePairwise
	res, err := ev.CheckAll(validationsSrc, tb)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "verdicts_pairwise.txt", FormatResults(res))
}

// TestGoldenErrors pins error messages (unknown columns, non-numeric
// cells, empty aggregates, division by zero) to the row-oriented text.
func TestGoldenErrors(t *testing.T) {
	tb := equivTable()
	mixed := table.New("a", "b")
	mixed.MustAppend(table.Number(1), table.Number(2))
	mixed.MustAppend(table.String("oops"), table.Number(3))

	cases := []struct {
		name string
		tb   *table.Table
		src  string
	}{
		{"unknown-when", tb, "when bogus=* expect time > 0"},
		{"unknown-col", tb, "expect bogus > 0"},
		{"unknown-agg-col", tb, "expect avg(bogus) > 0"},
		{"non-numeric", mixed, "expect a > 0"},
		{"non-numeric-agg", mixed, "expect avg(a) > 0"},
		{"div-zero", mixed, "expect b / 0 > 0"},
		{"scaling-non-numeric", mixed, "expect sublinear(a, b)"},
	}
	out := ""
	for _, c := range cases {
		_, err := NewEvaluator().CheckAll(c.src, c.tb)
		out += c.name + ": "
		if err != nil {
			out += err.Error()
		} else {
			out += "<nil>"
		}
		out += "\n"
	}
	checkGolden(t, "errors.txt", out)
}

// TestVerdictsOverSharedViews re-runs the golden validations over
// filter/where views of a larger table, serially and with Jobs > 1:
// views must evaluate exactly like materialized tables.
func TestVerdictsOverSharedViews(t *testing.T) {
	tb := equivTable()
	noise := table.New("workload", "machine", "nodes", "time", "status")
	noise.MustAppend(table.String("other"), table.String("other"),
		table.Number(1), table.Number(1), table.String("ok"))
	big := tb.Clone()
	if err := big.Concat(noise); err != nil {
		t.Fatal(err)
	}
	view := big.Filter(func(r int) bool {
		return big.MustCell(r, "workload").Text() != "other"
	})
	want, err := NewEvaluator().CheckAll(validationsSrc, tb)
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{1, 4} {
		ev := NewEvaluator()
		ev.Jobs = jobs
		got, err := ev.CheckAll(validationsSrc, view)
		if err != nil {
			t.Fatal(err)
		}
		if FormatResults(got) != FormatResults(want) {
			t.Fatalf("jobs=%d: view verdicts diverged:\n--- table\n%s\n--- view\n%s",
				jobs, FormatResults(want), FormatResults(got))
		}
	}
}
