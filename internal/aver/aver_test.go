package aver

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"popper/internal/table"
)

// gassyfsTable builds a results table shaped like the paper's GassyFS
// experiment: compile time vs node count on two machines, scaling
// sublinearly (speedup below ideal).
func gassyfsTable(t *testing.T) *table.Table {
	t.Helper()
	tb := table.New("workload", "machine", "nodes", "time")
	add := func(m string, n, tm float64) {
		tb.MustAppend(table.String("compile-git"), table.String(m), table.Number(n), table.Number(tm))
	}
	// t(n) = t1 / n^0.7 : sublinear speedup
	for _, m := range []string{"cloudlab", "ec2"} {
		t1 := 100.0
		if m == "ec2" {
			t1 = 140
		}
		for _, n := range []float64{1, 2, 4, 8, 16} {
			add(m, n, t1/math.Pow(n, 0.7))
		}
	}
	return tb
}

func TestPaperAssertion(t *testing.T) {
	// The exact assertion from Listing lst:aver-assertion.
	src := `
  when
    workload=* and machine=*
  expect
    sublinear(nodes,time)
`
	a, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.When) != 2 || !a.When[0].Wildcard || a.When[1].Column != "machine" {
		t.Fatalf("when = %+v", a.When)
	}
	res, err := NewEvaluator().Check(a, gassyfsTable(t))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatalf("paper assertion should pass:\n%s", res.String())
	}
	if len(res.Groups) != 2 { // one per (workload,machine) combination
		t.Fatalf("groups = %d", len(res.Groups))
	}
}

func TestSublinearFailsOnLinear(t *testing.T) {
	tb := table.New("nodes", "time")
	for _, n := range []float64{1, 2, 4, 8} {
		tb.MustAppend(table.Number(n), table.Number(100/n)) // perfect linear speedup
	}
	res := mustCheck(t, "expect sublinear(nodes,time)", tb)
	if res.Passed {
		t.Fatal("perfect linear scaling must not be sublinear")
	}
	res = mustCheck(t, "expect linear(nodes,time)", tb)
	if !res.Passed {
		t.Fatalf("linear test should pass: %s", res.String())
	}
}

func TestSuperlinear(t *testing.T) {
	tb := table.New("n", "y")
	for _, n := range []float64{1, 2, 4, 8} {
		tb.MustAppend(table.Number(n), table.Number(math.Pow(n, 1.5)))
	}
	if !mustCheck(t, "expect superlinear(n,y)", tb).Passed {
		t.Fatal("n^1.5 should be superlinear")
	}
	if mustCheck(t, "expect sublinear(n,y)", tb).Passed {
		t.Fatal("n^1.5 should not be sublinear")
	}
}

func TestExplicitTolerance(t *testing.T) {
	tb := table.New("n", "y")
	for _, n := range []float64{1, 2, 4, 8} {
		tb.MustAppend(table.Number(n), table.Number(math.Pow(n, 0.9)))
	}
	// slope 0.9: sublinear with default tol 0.05 (0.9 < 0.95)
	if !mustCheck(t, "expect sublinear(n,y)", tb).Passed {
		t.Fatal("0.9 should pass default tolerance")
	}
	// but not with tol 0.2 (needs < 0.8)
	if mustCheck(t, "expect sublinear(n,y,0.2)", tb).Passed {
		t.Fatal("0.9 should fail tol=0.2")
	}
}

func TestIncreasingDecreasing(t *testing.T) {
	tb := table.New("n", "up", "down")
	for _, n := range []float64{1, 2, 3} {
		tb.MustAppend(table.Number(n), table.Number(n*2), table.Number(10-n))
	}
	if !mustCheck(t, "expect increasing(n,up) and decreasing(n,down)", tb).Passed {
		t.Fatal("monotonicity tests failed")
	}
	if mustCheck(t, "expect increasing(n,down)", tb).Passed {
		t.Fatal("decreasing series is not increasing")
	}
}

func TestConstantAndWithin(t *testing.T) {
	tb := table.New("t")
	for _, v := range []float64{99, 100, 101, 100} {
		tb.MustAppend(table.Number(v))
	}
	if !mustCheck(t, "expect constant(t)", tb).Passed {
		t.Fatal("cv ~0.8% should be constant at default tol")
	}
	if !mustCheck(t, "expect within(t, 95, 105)", tb).Passed {
		t.Fatal("within should pass")
	}
	if mustCheck(t, "expect within(t, 100, 105)", tb).Passed {
		t.Fatal("99 is out of [100,105]")
	}
	// high-variance series fails constant
	tb2 := table.New("t")
	for _, v := range []float64{10, 100, 1000} {
		tb2.MustAppend(table.Number(v))
	}
	if mustCheck(t, "expect constant(t)", tb2).Passed {
		t.Fatal("high variance must fail constant")
	}
	if !mustCheck(t, "expect constant(t, 2.0)", tb2).Passed {
		t.Fatal("loose tolerance should pass")
	}
}

func TestAggregateComparisons(t *testing.T) {
	tb := gassyfsTable(t)
	cases := []struct {
		src  string
		pass bool
	}{
		{"expect avg(time) < 100", true},
		{"expect avg(time) > 100", false},
		{"expect min(time) > 10", true},
		{"expect max(time) <= 140", true},
		{"expect count(*) = 10", true},
		{"expect count(*) != 10", false},
		{"expect median(time) < avg(time)", true},
		{"expect stddev(time) > 0", true},
		{"expect cv(time) < 1", true},
		{"expect sum(nodes) = 62", true},
		{"expect mean(time) < 100", true}, // mean == avg alias
	}
	for _, c := range cases {
		res := mustCheck(t, c.src, tb)
		if res.Passed != c.pass {
			t.Errorf("%q: passed=%v, want %v (%s)", c.src, res.Passed, c.pass, res.String())
		}
	}
}

func TestRowLevelComparisons(t *testing.T) {
	tb := gassyfsTable(t)
	if !mustCheck(t, "expect time > 0", tb).Passed {
		t.Fatal("all rows positive")
	}
	if mustCheck(t, "expect time < 100", tb).Passed {
		t.Fatal("t(1)=100 and 140 violate < 100")
	}
	// column vs aggregate
	if !mustCheck(t, "expect time <= max(time)", tb).Passed {
		t.Fatal("tautology failed")
	}
}

func TestStringComparison(t *testing.T) {
	tb := gassyfsTable(t)
	if !mustCheck(t, `when machine='ec2' expect machine = 'ec2'`, tb).Passed {
		t.Fatal("string equality on filtered rows")
	}
	if mustCheck(t, `expect machine = 'ec2'`, tb).Passed {
		t.Fatal("mixed machines should fail equality")
	}
	if !mustCheck(t, `when machine != ec2 expect machine = cloudlab`, tb).Passed {
		t.Fatal("bare-word strings should work")
	}
}

func TestWhenNumericFilters(t *testing.T) {
	tb := gassyfsTable(t)
	// the paper's example: "when the level of parallelism exceeds 4"
	res := mustCheck(t, "when nodes > 4 expect count(*) = 4", tb)
	if !res.Passed {
		t.Fatalf("numeric filter failed: %s", res.String())
	}
	res = mustCheck(t, "when nodes >= 4 and machine = 'cloudlab' expect count(*) = 3", tb)
	if !res.Passed {
		t.Fatalf("combined filter failed: %s", res.String())
	}
}

func TestNoMatchingRows(t *testing.T) {
	tb := gassyfsTable(t)
	res := mustCheck(t, "when machine='vax' expect avg(time) > 0", tb)
	if res.Passed {
		t.Fatal("empty selection must fail, not vacuously pass")
	}
	if !strings.Contains(res.String(), "no rows") {
		t.Fatalf("detail = %s", res.String())
	}
}

func TestLogicalOperators(t *testing.T) {
	tb := gassyfsTable(t)
	if !mustCheck(t, "expect avg(time) < 100 and min(time) > 0", tb).Passed {
		t.Fatal("and failed")
	}
	if !mustCheck(t, "expect avg(time) > 1000 or min(time) > 0", tb).Passed {
		t.Fatal("or failed")
	}
	if mustCheck(t, "expect avg(time) > 1000 and min(time) > 0", tb).Passed {
		t.Fatal("and with false left should fail")
	}
	if !mustCheck(t, "expect (avg(time) > 1000 or min(time) > 0) and count(*) = 10", tb).Passed {
		t.Fatal("parenthesized expression failed")
	}
}

func TestMultipleAssertionsFile(t *testing.T) {
	src := `
# validations.aver for the gassyfs experiment
when workload=* and machine=* expect sublinear(nodes,time);
expect count(*) = 10;
expect within(time, 1, 200)
`
	results, err := NewEvaluator().CheckAll(src, gassyfsTable(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if !AllPassed(results) {
		t.Fatalf("all should pass:\n%s", FormatResults(results))
	}
	report := FormatResults(results)
	if strings.Count(report, "PASS") != 3 {
		t.Fatalf("report:\n%s", report)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                  // empty
		"when workload=*",                   // missing expect
		"expect",                            // missing expression
		"when =* expect count(*)=1",         // missing column
		"when a * expect count(*)=1",        // missing operator
		"expect frobnicate(a,b)",            // unknown function treated as... compare error
		"expect sublinear(a)",               // wrong arity
		"expect within(a, 1)",               // wrong arity
		"expect avg() > 1",                  // aggregate needs column
		"expect bogus(x) > 1",               // unknown aggregate
		"when a<b expect count(*)=1",        // ordering clause needs number
		"expect a ~ b",                      // bad operator char
		"expect 'unterminated",              // unterminated string
		"when a=* or b=* expect count(*)=1", // when uses 'and' only
	}
	for _, src := range cases {
		if _, err := ParseFile(src); err == nil {
			t.Errorf("ParseFile(%q) should fail", src)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	tb := gassyfsTable(t)
	ev := NewEvaluator()
	for _, src := range []string{
		"when ghost=* expect count(*) = 1",     // unknown when column
		"expect sublinear(ghost, time)",        // unknown x column
		"expect sublinear(nodes, ghost)",       // unknown y column
		"expect avg(ghost) > 0",                // unknown agg column
		"expect sublinear(workload, time)",     // non-numeric x
		"expect machine > 3",                   // non-numeric row compare
		"expect machine < 'abc'",               // string ordering unsupported
		"expect sublinear(nodes, time, nodes)", // tolerance must be numeric... accepted as default; skip
	} {
		a, err := Parse(src)
		if err != nil {
			continue // some cases fail at parse; fine
		}
		if _, err := ev.Check(a, tb); err == nil && src != "expect sublinear(nodes, time, nodes)" {
			t.Errorf("Check(%q) should error", src)
		}
	}
}

func TestScalingNeedsTwoPoints(t *testing.T) {
	tb := table.New("n", "y")
	tb.MustAppend(table.Number(4), table.Number(10))
	tb.MustAppend(table.Number(4), table.Number(11))
	a, _ := Parse("expect sublinear(n,y)")
	if _, err := NewEvaluator().Check(a, tb); err == nil {
		t.Fatal("single distinct x must error")
	}
}

func TestScalingRequiresPositive(t *testing.T) {
	tb := table.New("n", "y")
	tb.MustAppend(table.Number(1), table.Number(-5))
	tb.MustAppend(table.Number(2), table.Number(5))
	a, _ := Parse("expect sublinear(n,y)")
	if _, err := NewEvaluator().Check(a, tb); err == nil {
		t.Fatal("negative y must error for log-log fit")
	}
}

func TestPairwiseMethodStricter(t *testing.T) {
	// Series that is sublinear on average but has one superlinear jump.
	tb := table.New("n", "y")
	tb.MustAppend(table.Number(1), table.Number(1))
	tb.MustAppend(table.Number(2), table.Number(1.2)) // slope 0.26
	tb.MustAppend(table.Number(4), table.Number(3.0)) // slope 1.32 (jump)
	tb.MustAppend(table.Number(8), table.Number(3.3)) // slope 0.14
	a, _ := Parse("expect sublinear(n,y)")

	reg := NewEvaluator()
	res, err := reg.Check(a, tb)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatalf("regression method should pass: %s", res.String())
	}

	pw := &Evaluator{Method: SlopePairwise, DefaultTol: 0.05}
	res, err = pw.Check(a, tb)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Fatal("pairwise method must catch the superlinear jump")
	}
}

func TestGroupingIsolation(t *testing.T) {
	// One machine scales sublinearly, the other linearly: the grouped
	// assertion must fail overall but identify only the bad group.
	tb := table.New("machine", "nodes", "time")
	for _, n := range []float64{1, 2, 4, 8} {
		tb.MustAppend(table.String("good"), table.Number(n), table.Number(100/math.Pow(n, 0.6)))
		tb.MustAppend(table.String("bad"), table.Number(n), table.Number(100/n))
	}
	res := mustCheck(t, "when machine=* expect sublinear(nodes,time)", tb)
	if res.Passed {
		t.Fatal("should fail overall")
	}
	var goodPassed, badPassed bool
	for _, g := range res.Groups {
		switch g.Keys["machine"] {
		case "good":
			goodPassed = g.Passed
		case "bad":
			badPassed = g.Passed
		}
	}
	if !goodPassed || badPassed {
		t.Fatalf("group isolation broken: good=%v bad=%v", goodPassed, badPassed)
	}
	if !strings.Contains(res.String(), "machine=bad") {
		t.Fatalf("report should name failing group:\n%s", res.String())
	}
}

func TestCommentsInSource(t *testing.T) {
	src := `
# This validates the scalability claim from Section 5.2
when workload=*   # every workload
expect sublinear(nodes, time)  # must scale sublinearly
`
	a, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if a.When[0].Column != "workload" {
		t.Fatalf("when = %+v", a.When)
	}
}

func mustCheck(t *testing.T, src string, tb *table.Table) Result {
	t.Helper()
	a, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	res, err := NewEvaluator().Check(a, tb)
	if err != nil {
		t.Fatalf("Check(%q): %v", src, err)
	}
	return res
}

// Property: for y = x^k, sublinear passes iff |k| < 1 - tol (regression
// method, exact power law).
func TestQuickPowerLawClassification(t *testing.T) {
	f := func(kRaw int8) bool {
		k := float64(kRaw) / 64.0 // k in (-2, 2)
		tb := table.New("x", "y")
		for _, x := range []float64{1, 2, 4, 8, 16} {
			tb.MustAppend(table.Number(x), table.Number(math.Pow(x, k)))
		}
		a, _ := Parse("expect sublinear(x,y)")
		res, err := NewEvaluator().Check(a, tb)
		if err != nil {
			// k such that y==0? impossible for powers; treat as failure
			return false
		}
		want := math.Abs(k) < 0.95
		return res.Passed == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: within(y, min, max) always passes when bounds enclose data.
func TestQuickWithinEnclosing(t *testing.T) {
	f := func(vals []float64) bool {
		clean := make([]float64, 0, len(vals))
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e250 {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		tb := table.New("y")
		lo, hi := clean[0], clean[0]
		for _, v := range clean {
			tb.MustAppend(table.Number(v))
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		a, err := Parse("expect within(y, -1e300, 1e300)")
		if err != nil {
			return false
		}
		res, err := NewEvaluator().Check(a, tb)
		return err == nil && res.Passed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestArithmeticTerms(t *testing.T) {
	// The paper's example: "the runtime of our algorithm is 10x better
	// than the baseline".
	tb := table.New("algo_time", "baseline_time")
	tb.MustAppend(table.Number(10), table.Number(120))
	tb.MustAppend(table.Number(11), table.Number(130))

	cases := []struct {
		src  string
		pass bool
	}{
		{"expect avg(baseline_time) > 10 * avg(algo_time)", true},
		{"expect avg(baseline_time) > 15 * avg(algo_time)", false},
		{"expect baseline_time > 10 * algo_time", true}, // row level
		{"expect avg(baseline_time) / avg(algo_time) > 10", true},
		{"expect 2 * 3 * avg(algo_time) > 60", true}, // chained factors
		{"expect sum(baseline_time) / count(*) > 100", true},
	}
	for _, c := range cases {
		res := mustCheck(t, c.src, tb)
		if res.Passed != c.pass {
			t.Errorf("%q: passed=%v, want %v (%s)", c.src, res.Passed, c.pass, res.String())
		}
	}
}

func TestArithmeticErrors(t *testing.T) {
	tb := table.New("x")
	tb.MustAppend(table.Number(1))
	// strings in arithmetic rejected at parse time
	if _, err := Parse("expect 'a' * 2 > 1"); err == nil {
		t.Fatal("string arithmetic must fail to parse")
	}
	// division by zero surfaces at evaluation
	a, err := Parse("expect avg(x) / 0 > 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEvaluator().Check(a, tb); err == nil {
		t.Fatal("division by zero must error")
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	tb := table.New("nodes", "time")
	for _, n := range []float64{1, 2, 4, 8} {
		tb.MustAppend(table.Number(n), table.Number(100/math.Pow(n, 0.7)))
	}
	a, err := Parse("WHEN nodes > 0 EXPECT SUBLINEAR(nodes, time) AND count(*) = 4")
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewEvaluator().Check(a, tb)
	if err != nil || !res.Passed {
		t.Fatalf("uppercase keywords: %v, %v", err, res.String())
	}
}
