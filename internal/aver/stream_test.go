package aver

import (
	"errors"
	"fmt"
	"math"
	"os"
	"reflect"
	"strconv"
	"testing"

	"popper/internal/fault"
	"popper/internal/table"
)

// streamCase is one (validations, table) pair the equivalence harness
// replays batch-by-batch against the batch evaluator.
type streamCase struct {
	name string
	src  string
	tb   func() *table.Table
}

// streamTable is the sweep-shaped fixture from the golden suite, plus a
// numeric wildcard axis so grouping covers float cell identities too.
func streamTable() *table.Table {
	t := table.New("workload", "machine", "nodes", "time", "status")
	add := func(w, m string, n, tm float64, st string) {
		t.MustAppend(table.String(w), table.String(m),
			table.Number(n), table.Number(tm), table.String(st))
	}
	for _, w := range []string{"compile", "fsbench"} {
		for _, m := range []string{"cloudlab", "ec2"} {
			base := 100.0
			if m == "ec2" {
				base = 140
			}
			exp := -0.6
			if w == "fsbench" && m == "ec2" {
				exp = 1.3
			}
			for _, n := range []float64{1, 2, 4, 8} {
				add(w, m, n, base*math.Pow(n, exp), "ok")
			}
		}
	}
	return t
}

func mixedTable() *table.Table {
	t := table.New("a", "b")
	t.MustAppend(table.Number(1), table.Number(2))
	t.MustAppend(table.String("oops"), table.Number(3))
	t.MustAppend(table.Number(4), table.Number(5))
	return t
}

func streamCases() []streamCase {
	return []streamCase{
		{"agg-logical", "expect avg(time) > 10 and count(*) = 16 or min(nodes) = 99", streamTable},
		{"agg-grouped", "when workload=* and machine=* expect avg(time) > 5 and max(time) < 1000", streamTable},
		{"agg-arith", "expect sum(time) / count(*) >= min(time) * 0.5", streamTable},
		{"row-level", "when nodes >= 2 expect time / nodes > 0.1", streamTable},
		{"row-level-fails", "when nodes >= 2 expect time / nodes > 30", streamTable},
		{"string-eq", "expect status = ok", streamTable},
		{"string-eq-fails", "expect machine = cloudlab", streamTable},
		{"within", "when workload=compile and machine=cloudlab expect within(nodes, 1, 8)", streamTable},
		{"within-fails", "expect within(nodes, 1, 4)", streamTable},
		{"numeric-wildcard", "when nodes=* expect avg(time) > 1", streamTable},
		{"no-rows", "when nodes > 1e9 expect time > 0", streamTable},
		{"multi", validationsSrc, streamTable}, // includes deferred scaling shapes
		{"deferred-median", "expect median(time) > 0; expect stddev(time) >= 0", streamTable},
		{"err-non-numeric", "expect a > 0", mixedTable},
		{"err-non-numeric-agg", "expect avg(a) > 0", mixedTable},
		{"err-div-zero", "expect b / 0 > 0", mixedTable},
		{"err-unknown-col", "expect bogus > 0", streamTable},
		{"err-unknown-when", "when bogus=* expect time > 0", streamTable},
		{"err-within-non-numeric", "expect within(a, 0, 10)", mixedTable},
	}
}

// checkAllRef reproduces CheckAll's serial semantics over a prefix
// view: first assertion error truncates the results.
func checkAllRef(t *testing.T, ev *Evaluator, src string, tb *table.Table, n int) ([]Result, error) {
	t.Helper()
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	v, err := tb.View(rows)
	if err != nil {
		t.Fatal(err)
	}
	return ev.CheckAll(src, v)
}

func diffResults(t *testing.T, label string, got []Result, gotErr error, want []Result, wantErr error) {
	t.Helper()
	if (gotErr == nil) != (wantErr == nil) || (gotErr != nil && gotErr.Error() != wantErr.Error()) {
		t.Fatalf("%s: error diverged:\nstream: %v\nbatch:  %v", label, gotErr, wantErr)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d streamed results, %d batch", label, len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("%s: result %d diverged:\nstream: %+v\nbatch:  %+v", label, i, got[i], want[i])
		}
	}
}

// replay feeds tb into a stream evaluator in batches of the given
// sizes (cycling) and asserts byte-identical verdicts to the batch
// evaluator at every batch boundary.
func replay(t *testing.T, src string, tb *table.Table, sizes []int, opts StreamOptions) {
	t.Helper()
	ev := NewEvaluator()
	st, err := ev.Stream(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	grow := table.New(tb.Columns()...)
	fed, si := 0, 0
	for fed < tb.Len() {
		n := sizes[si%len(sizes)]
		si++
		for i := 0; i < n && fed < tb.Len(); i++ {
			vals := make([]table.Value, 0, len(tb.Columns()))
			for _, col := range tb.Columns() {
				c, err := tb.Col(col)
				if err != nil {
					t.Fatal(err)
				}
				vals = append(vals, c.Value(fed))
			}
			grow.MustAppend(vals...)
			fed++
		}
		if err := st.Observe(grow); err != nil {
			t.Fatalf("observe at %d rows: %v", fed, err)
		}
		got, gotErr := st.Results()
		want, wantErr := checkAllRef(t, ev, src, tb, fed)
		diffResults(t, fmt.Sprintf("after %d rows (batch %d)", fed, si), got, gotErr, want, wantErr)
	}
	if err := st.Recheck(); err != nil {
		t.Fatalf("final recheck: %v", err)
	}
}

func TestStreamEquivalence(t *testing.T) {
	for _, c := range streamCases() {
		t.Run(c.name, func(t *testing.T) {
			tb := c.tb()
			for _, sizes := range [][]int{{1}, {3}, {7, 1}, {tb.Len()}} {
				replay(t, c.src, tb, sizes, StreamOptions{})
			}
		})
	}
}

// TestStreamEquivalenceFaultLatency replays the suite with the batch
// schedule driven by a latency-fault injector: fault-scheduled virtual
// delays fragment the stream into irregular windows, and the verdicts
// must not depend on where the window boundaries fall.
func TestStreamEquivalenceFaultLatency(t *testing.T) {
	seed := int64(42)
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED: %v", err)
		}
		seed = v
	}
	inj := fault.NewInjector(seed, []fault.Rule{
		{Site: "aver/stream/batch", Kind: fault.Latency, Prob: 0.5, Delay: 0.25},
	})
	clock := fault.NewClock()
	var sizes []int
	for i := 0; i < 64; i++ {
		// a latency fault stalls the producer: the next window carries
		// more rows; quiet ticks emit single-row windows.
		if f := inj.Check("aver/stream/batch"); f != nil {
			clock.Advance(f.Delay)
			sizes = append(sizes, 5)
		} else {
			sizes = append(sizes, 1)
		}
	}
	for _, c := range streamCases() {
		t.Run(c.name, func(t *testing.T) {
			replay(t, c.src, c.tb(), sizes, StreamOptions{})
		})
	}
}

// TestStreamWindowIngest drives the evaluator through table.Window —
// the ingestion path core uses — rather than hand-grown tables.
func TestStreamWindowIngest(t *testing.T) {
	tb := streamTable()
	w := table.NewWindow(tb.Columns()...)
	ev := NewEvaluator()
	st, err := ev.Stream(validationsSrc, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for fed := 0; fed < tb.Len(); {
		batch := table.New(tb.Columns()...)
		for i := 0; i < 5 && fed < tb.Len(); i++ {
			vals := make([]table.Value, 0, 5)
			for _, col := range tb.Columns() {
				c, _ := tb.Col(col)
				vals = append(vals, c.Value(fed))
			}
			batch.MustAppend(vals...)
			fed++
		}
		if err := w.Append(batch); err != nil {
			t.Fatal(err)
		}
		if err := st.Observe(w.Table()); err != nil {
			t.Fatal(err)
		}
	}
	if w.Batches() != 4 || w.Len() != tb.Len() {
		t.Fatalf("window: %d batches, %d rows", w.Batches(), w.Len())
	}
	got, err := st.Results()
	if err != nil {
		t.Fatal(err)
	}
	want, err := ev.CheckAll(validationsSrc, tb)
	if err != nil {
		t.Fatal(err)
	}
	if FormatResults(got) != FormatResults(want) {
		t.Fatalf("window verdicts diverged:\n--- batch\n%s\n--- stream\n%s",
			FormatResults(want), FormatResults(got))
	}
}

// TestStreamLiteralInternedMidStream pins the dictionary-staleness
// hazard: a when-clause literal that is not in the dictionary at
// compile time gets interned by a later batch, and the filter must
// start matching it.
func TestStreamLiteralInternedMidStream(t *testing.T) {
	src := "when status=late expect v > 0"
	tb := table.New("status", "v")
	ev := NewEvaluator()
	st, err := ev.Stream(src, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tb.MustAppend(table.String("ok"), table.Number(1))
	if err := st.Observe(tb); err != nil {
		t.Fatal(err)
	}
	res, err := st.Results()
	if err != nil || res[0].Passed {
		t.Fatalf("no late rows yet: res=%+v err=%v", res, err)
	}
	tb.MustAppend(table.String("late"), table.Number(5))
	tb.MustAppend(table.String("late"), table.Number(-1))
	if err := st.Observe(tb); err != nil {
		t.Fatal(err)
	}
	res, err = st.Results()
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Passed {
		t.Fatalf("late row with v=-1 must fail: %+v", res[0])
	}
	want, err := ev.CheckAll(src, tb)
	if err != nil {
		t.Fatal(err)
	}
	if FormatResults(res) != FormatResults(want) {
		t.Fatalf("diverged:\n%s\n%s", FormatResults(want), FormatResults(res))
	}
}

func TestStreamUnsatisfiable(t *testing.T) {
	src := "expect time / nodes > 0.1"
	tb := table.New("nodes", "time")
	ev := NewEvaluator()
	st, err := ev.Stream(src, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tb.MustAppend(table.Number(2), table.Number(10))
	if err := st.Observe(tb); err != nil {
		t.Fatal(err)
	}
	if st.Unsatisfiable() != nil {
		t.Fatalf("healthy row flagged unsatisfiable: %+v", st.Unsatisfiable())
	}
	tb.MustAppend(table.Number(100), table.Number(1)) // 0.01 — permanent row violation
	if err := st.Observe(tb); err != nil {
		t.Fatal(err)
	}
	v := st.Unsatisfiable()
	if v == nil {
		t.Fatal("row-level violation not flagged unsatisfiable")
	}
	if !v.Final || !errors.Is(v.Err(), ErrUnsatisfiable) {
		t.Fatalf("violation = %+v, err = %v", v, v.Err())
	}
	// More rows do not clear it.
	tb.MustAppend(table.Number(2), table.Number(10))
	if err := st.Observe(tb); err != nil {
		t.Fatal(err)
	}
	if st.Unsatisfiable() == nil {
		t.Fatal("unsatisfiable verdict must be permanent")
	}
	// Aggregate violations stay provisional: never unsatisfiable.
	st2, err := ev.Stream("expect avg(v) > 10", StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tb2 := table.New("v")
	tb2.MustAppend(table.Number(1))
	if err := st2.Observe(tb2); err != nil {
		t.Fatal(err)
	}
	if st2.Unsatisfiable() != nil {
		t.Fatal("aggregate violation must stay provisional")
	}
	viol := st2.Violations()
	if len(viol) != 1 || viol[0].Final {
		t.Fatalf("violations = %+v", viol)
	}
	tb2.MustAppend(table.Number(1000))
	if err := st2.Observe(tb2); err != nil {
		t.Fatal(err)
	}
	if len(st2.Violations()) != 0 {
		t.Fatalf("aggregate recovered, violations = %+v", st2.Violations())
	}
}

func TestStreamRecheckSchedule(t *testing.T) {
	tb := table.New("v")
	ev := NewEvaluator()
	st, err := ev.Stream("expect avg(v) > 0", StreamOptions{RecheckEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 35; i++ {
		tb.MustAppend(table.Number(float64(i + 1)))
		if err := st.Observe(tb); err != nil {
			t.Fatal(err)
		}
	}
	if st.Rechecks() != 3 {
		t.Fatalf("rechecks = %d, want 3", st.Rechecks())
	}
	// Disabled automatic rechecks.
	st2, err := ev.Stream("expect avg(v) > 0", StreamOptions{RecheckEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Observe(tb); err != nil {
		t.Fatal(err)
	}
	if st2.Rechecks() != 0 {
		t.Fatalf("rechecks = %d, want 0", st2.Rechecks())
	}
	if err := st2.Recheck(); err != nil {
		t.Fatalf("explicit recheck: %v", err)
	}
}

func TestStreamIncrementalClassification(t *testing.T) {
	tb := streamTable()
	ev := NewEvaluator()
	st, err := ev.Stream(validationsSrc, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Observe(tb); err != nil {
		t.Fatal(err)
	}
	// validationsSrc has 7 assertions; the two scaling ones and
	// constant() defer, the other four run incrementally (sublinear,
	// increasing, constant are calls the kernel set does not cover).
	if got := st.Incremental(); got != 4 {
		t.Fatalf("incremental = %d, want 4", got)
	}
	if st.Rows() != tb.Len() {
		t.Fatalf("rows = %d", st.Rows())
	}
}

func TestStreamShrinkRejected(t *testing.T) {
	ev := NewEvaluator()
	st, err := ev.Stream("expect v > 0", StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tb := table.New("v")
	tb.MustAppend(table.Number(1))
	tb.MustAppend(table.Number(2))
	if err := st.Observe(tb); err != nil {
		t.Fatal(err)
	}
	small := table.New("v")
	small.MustAppend(table.Number(1))
	if err := st.Observe(small); err == nil {
		t.Fatal("shrinking table must be rejected")
	}
}
