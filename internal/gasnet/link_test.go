package gasnet

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"popper/internal/fault"
)

// Link sites ("gasnet/link/r<caller>/r<target>") are the injection
// points network-split rules glob over. These tests pin down the
// contract the replication layer leans on: link faults are directional,
// fire before any byte moves (vectored batches included), stay typed
// through the wrappers under concurrency, and latency folds into the
// virtual clock exactly.

func TestLinkPartitionIsDirectional(t *testing.T) {
	w, _ := world(t, 3, 1<<20)
	w.SetFaults(fault.NewInjector(3, []fault.Rule{
		{Site: "gasnet/link/r0/r1", Kind: fault.Partition, Msg: "cable cut"},
	}))
	err := w.Put(0, Addr{Rank: 1, Offset: 0}, []byte("blocked"))
	if !fault.IsPartition(err) {
		t.Fatalf("cut link must fail typed: %v", err)
	}
	// The cut is one direction of one link: the reverse direction, a
	// different target, and local access all still work.
	if err := w.Put(1, Addr{Rank: 0, Offset: 0}, []byte("reverse")); err != nil {
		t.Fatalf("reverse direction must be unaffected: %v", err)
	}
	if err := w.Put(0, Addr{Rank: 2, Offset: 0}, []byte("sibling")); err != nil {
		t.Fatalf("uncut target must be unaffected: %v", err)
	}
	if err := w.Put(0, Addr{Rank: 0, Offset: 0}, []byte("local")); err != nil {
		t.Fatalf("local access traverses no link: %v", err)
	}
	// The failed put moved no bytes.
	got, err := w.Get(1, Addr{Rank: 1, Offset: 0}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 7)) {
		t.Fatalf("partitioned put must not write bytes: %q", got)
	}
}

func TestLinkPartitionFailsVectoredBatchBeforeBytesMove(t *testing.T) {
	w, _ := world(t, 3, 1<<20)
	w.SetFaults(fault.NewInjector(3, []fault.Rule{
		{Site: "gasnet/link/r0/r2", Kind: fault.Partition, Msg: "split"},
	}))
	addrs := []Addr{{Rank: 1, Offset: 0}, {Rank: 2, Offset: 0}}
	bufs := [][]byte{[]byte("first"), []byte("second")}
	if _, err := w.Putv(0, addrs, bufs); !fault.IsPartition(err) {
		t.Fatalf("batch crossing a cut link must fail typed: %v", err)
	}
	// Vectored ops fault atomically: the healthy leg of the batch must
	// not have landed either, so a whole-batch retry is idempotent.
	for _, rank := range []int{1, 2} {
		got, err := w.Get(rank, Addr{Rank: rank, Offset: 0}, 6)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, make([]byte, 6)) {
			t.Fatalf("rank %d received bytes from a failed batch: %q", rank, got)
		}
	}
}

func TestLinkLatencyChargesClock(t *testing.T) {
	run := func(rules []fault.Rule) float64 {
		w, nodes := world(t, 2, 1<<20)
		if rules != nil {
			w.SetFaults(fault.NewInjector(3, rules))
		}
		if err := w.Put(0, Addr{Rank: 1, Offset: 0}, []byte("x")); err != nil {
			t.Fatal(err)
		}
		return nodes[0].Now()
	}
	clean := run(nil)
	slow := run([]fault.Rule{{Site: "gasnet/link/r0/r1", Kind: fault.Latency, Delay: 1.75}})
	if got := slow - clean; got != 1.75 {
		t.Fatalf("link latency must charge exactly its delay: got %g", got)
	}
}

// TestConcurrentGetvPartitionsStayTyped isolates two callers with
// occurrence-independent link rules while every rank hammers its
// neighbor's segment with vectored gets. Cut callers must see a typed
// partition on every attempt; everyone else must read correct bytes on
// every attempt (run under -race — the injector and the world are hit
// from all ranks at once).
func TestConcurrentGetvPartitionsStayTyped(t *testing.T) {
	const n = 8
	w, _ := world(t, n, 1<<20)
	payload := func(rank int) []byte {
		return bytes.Repeat([]byte{byte('a' + rank)}, 16)
	}
	// Seed every segment locally before arming faults (local puts
	// traverse no link, but keeping the arm point single-threaded keeps
	// the schedule obviously race-free).
	for r := 0; r < n; r++ {
		if err := w.Put(r, Addr{Rank: r, Offset: 0}, payload(r)); err != nil {
			t.Fatal(err)
		}
	}
	cut := map[int]bool{2: true, 5: true}
	w.SetFaults(fault.NewInjector(7, []fault.Rule{
		{Site: "gasnet/link/r2/*", Kind: fault.Partition, Prob: 1, Msg: "r2 isolated"},
		{Site: "gasnet/link/r5/*", Kind: fault.Partition, Prob: 1, Msg: "r5 isolated"},
	}))
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for r := 0; r < n; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			next := (r + 1) % n
			want := payload(next)
			for i := 0; i < 25; i++ {
				buf := make([]byte, len(want))
				_, err := w.Getv(r, []Addr{{Rank: next, Offset: 0}}, [][]byte{buf})
				if cut[r] {
					if !fault.IsPartition(err) {
						errs <- fmt.Errorf("cut rank %d attempt %d: want typed partition, got %v", r, i, err)
						return
					}
					continue
				}
				if err != nil {
					errs <- fmt.Errorf("healthy rank %d attempt %d: %v", r, i, err)
					return
				}
				if !bytes.Equal(buf, want) {
					errs <- fmt.Errorf("healthy rank %d attempt %d read %q", r, i, buf)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
