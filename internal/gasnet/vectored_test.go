package gasnet

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"popper/internal/cluster"
	"popper/internal/metrics"
)

func TestPutFromGetIntoRoundTrip(t *testing.T) {
	w, nodes := world(t, 2, 1<<20)
	payload := bytes.Repeat([]byte("zero-copy"), 1000)
	if err := w.PutFrom(0, Addr{Rank: 1, Offset: 128}, payload); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(payload))
	if err := w.GetInto(0, Addr{Rank: 1, Offset: 128}, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatal("round trip mismatch")
	}
	if nodes[0].Now() == 0 {
		t.Fatal("caller clock should advance")
	}
	if nodes[1].Now() != 0 {
		t.Fatal("one-sided ops must not disturb the target clock")
	}
}

// buildSpans cuts a payload into per-block (addr, buf) pairs.
func buildSpans(payload []byte, block int64, mkAddr func(i int) Addr) ([]Addr, [][]byte) {
	var addrs []Addr
	var bufs [][]byte
	for i, pos := 0, int64(0); pos < int64(len(payload)); i++ {
		n := block
		if rem := int64(len(payload)) - pos; rem < n {
			n = rem
		}
		addrs = append(addrs, mkAddr(i))
		bufs = append(bufs, payload[pos:pos+n])
		pos += n
	}
	return addrs, bufs
}

// Vectored transfers must be observationally equivalent to the scalar
// per-block loop: same bytes, same metric counters, and the same total
// clock cost (up to float summation rounding).
func TestVectoredMatchesScalar(t *testing.T) {
	const block = 8 << 10
	payload := bytes.Repeat([]byte("abcdefg"), 6*block/7)
	mkAddr := func(i int) Addr { return Addr{Rank: i % 2, Offset: int64(i/2) * block} }

	regScalar := metrics.NewRegistry(nil, nil)
	wS, nodesS := worldWithReg(t, 2, 1<<20, regScalar)
	addrs, bufs := buildSpans(payload, block, mkAddr)
	for i := range addrs {
		if err := wS.Put(0, addrs[i], bufs[i]); err != nil {
			t.Fatal(err)
		}
	}

	regVec := metrics.NewRegistry(nil, nil)
	wV, nodesV := worldWithReg(t, 2, 1<<20, regVec)
	if _, err := wV.Putv(0, addrs, bufs); err != nil {
		t.Fatal(err)
	}

	// bytes identical
	for i := range addrs {
		got := make([]byte, len(bufs[i]))
		want := make([]byte, len(bufs[i]))
		if err := wV.GetInto(1, addrs[i], got); err != nil {
			t.Fatal(err)
		}
		if err := wS.GetInto(1, addrs[i], want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d differs between scalar and vectored put", i)
		}
	}
	// clock cost identical up to summation rounding
	cs, cv := nodesS[0].Now(), nodesV[0].Now()
	if math.Abs(cs-cv) > 1e-12*math.Max(cs, cv) {
		t.Fatalf("clock diverged: scalar %.18g vectored %.18g", cs, cv)
	}
	// counter totals identical (get counters differ: the byte check above
	// ran one extra read pass per world, symmetric on both sides)
	for _, key := range []string{
		"gasnet_put_ops_local", "gasnet_put_ops_remote",
		"gasnet_put_bytes_local", "gasnet_put_bytes_remote",
		"gasnet_get_ops_local", "gasnet_get_ops_remote",
		"gasnet_get_bytes_local", "gasnet_get_bytes_remote",
	} {
		if s, v := regScalar.Counter(key), regVec.Counter(key); s != v {
			t.Fatalf("%s: scalar %v vectored %v", key, s, v)
		}
	}
}

func worldWithReg(t *testing.T, n int, segSize int64, reg *metrics.Registry) (*World, []*cluster.Node) {
	t.Helper()
	c := cluster.New(11)
	nodes, err := c.Provision("cloudlab-c220g1", n)
	if err != nil {
		t.Fatal(err)
	}
	w, err := New(nodes, cluster.NewNetwork(0), reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AttachAll(segSize); err != nil {
		t.Fatal(err)
	}
	return w, nodes
}

// The *DeferClock variants must move bytes and report the cost without
// touching any clock; applying the cost by hand must match the eager
// variant exactly.
func TestVectoredDeferClock(t *testing.T) {
	payload := bytes.Repeat([]byte{0x5a}, 40<<10)
	addrs, bufs := buildSpans(payload, 16<<10, func(i int) Addr {
		return Addr{Rank: 1, Offset: int64(i) * (16 << 10)}
	})

	wD, nodesD := world(t, 2, 1<<20)
	cost, err := wD.PutvDeferClock(0, addrs, bufs)
	if err != nil {
		t.Fatal(err)
	}
	if nodesD[0].Now() != 0 || nodesD[1].Now() != 0 {
		t.Fatal("deferred op advanced a clock")
	}
	if cost <= 0 {
		t.Fatal("deferred op must report a positive cost")
	}
	out := make([]byte, len(payload))
	if _, err := wD.GetvDeferClock(0, addrs, buildBufs(out, 16<<10)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, payload) {
		t.Fatal("deferred put/get round trip mismatch")
	}
	nodesD[0].Advance(cost)

	wE, nodesE := world(t, 2, 1<<20)
	if _, err := wE.Putv(0, addrs, bufs); err != nil {
		t.Fatal(err)
	}
	if nodesD[0].Now() != nodesE[0].Now() {
		t.Fatalf("deferred+applied %.18g != eager %.18g", nodesD[0].Now(), nodesE[0].Now())
	}
}

func buildBufs(out []byte, block int64) [][]byte {
	var bufs [][]byte
	for pos := int64(0); pos < int64(len(out)); {
		n := block
		if rem := int64(len(out)) - pos; rem < n {
			n = rem
		}
		bufs = append(bufs, out[pos:pos+n])
		pos += n
	}
	return bufs
}

// Transfers crossing the internal chunk boundaries must behave exactly
// like a flat buffer, including zero-fill of unmaterialized chunks.
func TestChunkBoundarySpans(t *testing.T) {
	w, _ := world(t, 1, 2<<20) // 8 chunks of 256 KiB
	payload := bytes.Repeat([]byte("spanning"), 80<<10/8)
	off := chunkSize - 1234 // starts near the end of chunk 0
	if err := w.PutFrom(0, Addr{Rank: 0, Offset: off}, payload); err != nil {
		t.Fatal(err)
	}
	// read a window that covers untouched bytes before and after
	buf := make([]byte, int64(len(payload))+4096)
	for i := range buf {
		buf[i] = 0xff // GetInto must overwrite, zeros included
	}
	if err := w.GetInto(0, Addr{Rank: 0, Offset: off - 2048}, buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2048; i++ {
		if buf[i] != 0 {
			t.Fatalf("byte before write at %d = %#x, want 0", i, buf[i])
		}
	}
	if !bytes.Equal(buf[2048:2048+len(payload)], payload) {
		t.Fatal("payload corrupted across chunk boundary")
	}
	for i := 2048 + len(payload); i < len(buf); i++ {
		if buf[i] != 0 {
			t.Fatalf("byte after write at %d = %#x, want 0", i, buf[i])
		}
	}
}

// A vectored op validates every block before moving any byte or
// advancing any clock: all-or-nothing at the bounds level.
func TestVectoredValidatesUpFront(t *testing.T) {
	w, nodes := world(t, 2, 64<<10)
	good := Addr{Rank: 0, Offset: 0}
	bad := Addr{Rank: 1, Offset: 60 << 10} // 8 KiB span overruns the segment
	data := bytes.Repeat([]byte{1}, 8<<10)
	if _, err := w.Putv(0, []Addr{good, bad}, [][]byte{data, data}); err == nil {
		t.Fatal("out-of-bounds vectored put must fail")
	}
	if nodes[0].Now() != 0 {
		t.Fatal("failed vectored op advanced the clock")
	}
	probe := make([]byte, 8<<10)
	if err := w.GetInto(0, good, probe); err != nil {
		t.Fatal(err)
	}
	for _, b := range probe {
		if b != 0 {
			t.Fatal("failed vectored op wrote bytes")
		}
	}
	if _, err := w.Getv(0, []Addr{good}, [][]byte{data, data}); err == nil {
		t.Fatal("addr/buffer length mismatch must fail")
	}
	if cost, err := w.Getv(0, nil, nil); err != nil || cost != 0 {
		t.Fatalf("empty vectored op: cost=%v err=%v", cost, err)
	}
}

// Concurrent clients hammering disjoint ranges of the same segment must
// be race-free (chunk striping) and end with every range intact.
func TestConcurrentDisjointAccess(t *testing.T) {
	const (
		workers = 8
		region  = 96 << 10 // crosses chunk boundaries between workers
	)
	w, _ := world(t, 2, int64(workers)*region)
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(g + 1)}, region)
			addr := Addr{Rank: 1, Offset: int64(g) * region}
			for iter := 0; iter < 4; iter++ {
				if err := w.PutFrom(0, addr, payload); err != nil {
					errc <- err
					return
				}
				got := make([]byte, region)
				if err := w.GetInto(0, addr, got); err != nil {
					errc <- err
					return
				}
				if !bytes.Equal(got, payload) {
					errc <- fmt.Errorf("worker %d read corrupted data", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// AttachAll attempts every rank and aggregates the failures, naming each
// failing rank, instead of stopping at the first error.
func TestAttachAllAggregatesErrors(t *testing.T) {
	w, _ := world(t, 3, 0)
	if err := w.AttachSegment(1, 4<<10); err != nil {
		t.Fatal(err)
	}
	err := w.AttachAll(1 << 20)
	if err == nil {
		t.Fatal("AttachAll with a pre-attached rank must fail")
	}
	if !strings.Contains(err.Error(), "rank 1") {
		t.Fatalf("error does not name the failing rank: %v", err)
	}
	if !strings.Contains(err.Error(), "1/3 ranks") {
		t.Fatalf("error does not aggregate counts: %v", err)
	}
	// the healthy ranks still attached
	if w.SegmentSize(0) != 1<<20 || w.SegmentSize(2) != 1<<20 {
		t.Fatalf("healthy ranks not attached: %d %d", w.SegmentSize(0), w.SegmentSize(2))
	}
}
