package gasnet

import (
	"bytes"
	"testing"
	"testing/quick"

	"popper/internal/cluster"
	"popper/internal/metrics"
)

func world(t *testing.T, n int, segSize int64) (*World, []*cluster.Node) {
	t.Helper()
	c := cluster.New(11)
	nodes, err := c.Provision("cloudlab-c220g1", n)
	if err != nil {
		t.Fatal(err)
	}
	w, err := New(nodes, cluster.NewNetwork(0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if segSize > 0 {
		if err := w.AttachAll(segSize); err != nil {
			t.Fatal(err)
		}
	}
	return w, nodes
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, cluster.NewNetwork(0), nil); err == nil {
		t.Fatal("empty world should fail")
	}
	c := cluster.New(1)
	nodes, _ := c.Provision("xeon-2005", 1)
	if _, err := New(nodes, nil, nil); err == nil {
		t.Fatal("nil network should fail")
	}
}

func TestAttachSegment(t *testing.T) {
	w, nodes := world(t, 2, 0)
	if err := w.AttachSegment(0, 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := w.AttachSegment(0, 1<<20); err == nil {
		t.Fatal("double attach must fail")
	}
	if err := w.AttachSegment(5, 1<<20); err == nil {
		t.Fatal("bad rank must fail")
	}
	if err := w.AttachSegment(1, 0); err == nil {
		t.Fatal("zero size must fail")
	}
	if err := w.AttachSegment(1, nodes[1].Profile().RAMBytes*2); err == nil {
		t.Fatal("oversized segment must fail")
	}
	if w.SegmentSize(0) != 1<<20 || w.SegmentSize(1) != 0 {
		t.Fatalf("sizes = %d, %d", w.SegmentSize(0), w.SegmentSize(1))
	}
	if w.SegmentSize(-1) != 0 {
		t.Fatal("bad rank size should be 0")
	}
	// RAM accounting
	if nodes[0].UsedBytes() != 1<<20 {
		t.Fatalf("used = %d", nodes[0].UsedBytes())
	}
}

func TestTotalMemoryAggregates(t *testing.T) {
	w, _ := world(t, 4, 1<<24)
	if w.TotalMemory() != 4<<24 {
		t.Fatalf("total = %d", w.TotalMemory())
	}
	if w.Size() != 4 {
		t.Fatalf("size = %d", w.Size())
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	w, _ := world(t, 3, 1<<20)
	data := []byte("gassyfs block payload")
	addr := Addr{Rank: 2, Offset: 4096}
	if err := w.Put(0, addr, data); err != nil {
		t.Fatal(err)
	}
	got, err := w.Get(1, addr, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q, want %q", got, data)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	w, _ := world(t, 1, 1<<16)
	w.Put(0, Addr{0, 0}, []byte("abc"))
	got, _ := w.Get(0, Addr{0, 0}, 3)
	got[0] = 'X'
	again, _ := w.Get(0, Addr{0, 0}, 3)
	if string(again) != "abc" {
		t.Fatal("Get must return an isolated copy")
	}
}

func TestBoundsChecking(t *testing.T) {
	w, _ := world(t, 2, 1024)
	cases := []struct {
		caller int
		addr   Addr
		n      int64
	}{
		{-1, Addr{0, 0}, 4},   // bad caller
		{0, Addr{7, 0}, 4},    // bad target
		{0, Addr{1, -8}, 4},   // negative offset
		{0, Addr{1, 1020}, 8}, // spills past end
		{0, Addr{1, 0}, -1},   // negative length
		{0, Addr{1, 2048}, 1}, // offset past end
	}
	for i, c := range cases {
		if _, err := w.Get(c.caller, c.addr, c.n); err == nil {
			t.Errorf("case %d: Get should fail", i)
		}
		if c.n < 0 {
			continue // a negative length cannot be expressed as a Put payload
		}
		if err := w.Put(c.caller, c.addr, make([]byte, max64(c.n, 1))); err == nil {
			t.Errorf("case %d: Put should fail", i)
		}
	}
	// no segment attached
	w2, _ := world(t, 1, 0)
	if _, err := w2.Get(0, Addr{0, 0}, 1); err == nil {
		t.Fatal("access without segment must fail")
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func TestRemoteCostsMoreThanLocal(t *testing.T) {
	w, nodes := world(t, 2, 1<<22)
	data := make([]byte, 1<<20)

	before := nodes[0].Now()
	w.Put(0, Addr{Rank: 0, Offset: 0}, data)
	localCost := nodes[0].Now() - before

	before = nodes[0].Now()
	w.Put(0, Addr{Rank: 1, Offset: 0}, data)
	remoteCost := nodes[0].Now() - before

	if remoteCost <= localCost*2 {
		t.Fatalf("remote put %v should be much slower than local %v", remoteCost, localCost)
	}
	// one-sidedness: target clock untouched by remote put
	if nodes[1].Now() != 0 {
		t.Fatalf("target clock = %v, must stay 0", nodes[1].Now())
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	w, nodes := world(t, 4, 1<<16)
	nodes[2].Advance(3)
	end := w.Barrier()
	for _, n := range nodes {
		if n.Now() != end {
			t.Fatalf("node at %v, barrier end %v", n.Now(), end)
		}
	}
	if w.MaxClock() != end {
		t.Fatalf("MaxClock = %v", w.MaxClock())
	}
}

func TestCompute(t *testing.T) {
	w, _ := world(t, 2, 1<<16)
	d, err := w.Compute(1, cluster.Work{CPUOps: 1e8})
	if err != nil || d <= 0 {
		t.Fatalf("compute = %v, %v", d, err)
	}
	if _, err := w.Compute(9, cluster.Work{}); err == nil {
		t.Fatal("bad rank must fail")
	}
	if _, err := w.Node(0); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsInstrumentation(t *testing.T) {
	c := cluster.New(13)
	nodes, _ := c.Provision("cloudlab-c220g1", 2)
	reg := metrics.NewRegistry(metrics.Labels{"exp": "gasnet"}, nil)
	w, err := New(nodes, cluster.NewNetwork(0), reg)
	if err != nil {
		t.Fatal(err)
	}
	w.AttachAll(1 << 20)
	w.Put(0, Addr{0, 0}, []byte("local"))
	w.Put(0, Addr{1, 0}, []byte("remote!"))
	w.Get(0, Addr{1, 0}, 7)

	if got := reg.Counter("gasnet_put_ops_local"); got != 1 {
		t.Fatalf("local puts = %v", got)
	}
	if got := reg.Counter("gasnet_put_ops_remote"); got != 1 {
		t.Fatalf("remote puts = %v", got)
	}
	if got := reg.Counter("gasnet_get_bytes_remote"); got != 7 {
		t.Fatalf("remote get bytes = %v", got)
	}
	if n := len(reg.Series("gasnet_put_seconds", nil)); n != 2 {
		t.Fatalf("put timings = %d", n)
	}
}

// Property: Put then Get at any in-bounds (offset, length) returns the
// written bytes.
func TestQuickPutGetIdentity(t *testing.T) {
	w, _ := world(t, 3, 1<<16)
	f := func(rank uint8, off uint16, payload []byte) bool {
		r := int(rank) % 3
		o := int64(off) % (1<<16 - 256)
		if len(payload) > 256 {
			payload = payload[:256]
		}
		if len(payload) == 0 {
			return true
		}
		addr := Addr{Rank: r, Offset: o}
		if err := w.Put(0, addr, payload); err != nil {
			return false
		}
		got, err := w.Get(1, addr, int64(len(payload)))
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
