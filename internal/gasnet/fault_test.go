package gasnet

import (
	"bytes"
	"testing"

	"popper/internal/fault"
)

func TestInjectedPartitionSurfacesTyped(t *testing.T) {
	w, _ := world(t, 2, 1<<20)
	w.SetFaults(fault.NewInjector(3, []fault.Rule{
		{Site: "gasnet/put/r0", Kind: fault.Partition, Msg: "link down"},
	}))
	err := w.Put(0, Addr{Rank: 1, Offset: 0}, []byte("hello"))
	if err == nil {
		t.Fatal("partitioned put must fail")
	}
	if !fault.IsPartition(err) {
		t.Fatalf("partition must stay typed through the wrapper: %v", err)
	}
	// The fault hit before any byte moved: the target still reads zeros,
	// and the unaffected rank can still write.
	got, err := w.Get(1, Addr{Rank: 1, Offset: 0}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 5)) {
		t.Fatalf("failed put must not write bytes: %q", got)
	}
	if err := w.Put(1, Addr{Rank: 0, Offset: 0}, []byte("ok")); err != nil {
		t.Fatalf("other ranks must be unaffected: %v", err)
	}
}

func TestInjectedPartitionOnVectoredOps(t *testing.T) {
	w, _ := world(t, 2, 1<<20)
	w.SetFaults(fault.NewInjector(3, []fault.Rule{
		{Site: "gasnet/getv/r0", Kind: fault.Partition, Times: 1, Msg: "transient partition"},
	}))
	if err := w.Put(1, Addr{Rank: 1, Offset: 0}, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	addrs := []Addr{{Rank: 1, Offset: 0}}
	bufs := [][]byte{make([]byte, 7)}
	if _, err := w.GetvDeferClock(0, addrs, bufs); !fault.IsPartition(err) {
		t.Fatalf("first vectored get must hit the partition: %v", err)
	}
	// The rule's window is exhausted; an idempotent re-issue succeeds
	// and reads the full payload.
	cost, err := w.GetvDeferClock(0, addrs, bufs)
	if err != nil {
		t.Fatalf("retry after transient partition: %v", err)
	}
	if cost <= 0 || string(bufs[0]) != "payload" {
		t.Fatalf("retried get: cost=%g data=%q", cost, bufs[0])
	}
}

func TestInjectedLatencyChargesClock(t *testing.T) {
	run := func(rules []fault.Rule) float64 {
		w, nodes := world(t, 2, 1<<20)
		if rules != nil {
			w.SetFaults(fault.NewInjector(3, rules))
		}
		if err := w.Put(0, Addr{Rank: 1, Offset: 0}, []byte("x")); err != nil {
			t.Fatal(err)
		}
		return nodes[0].Now()
	}
	clean := run(nil)
	slow := run([]fault.Rule{{Site: "gasnet/put/r0", Kind: fault.Latency, Delay: 2.5}})
	if got := slow - clean; got != 2.5 {
		t.Fatalf("latency fault must charge exactly its delay: got %g", got)
	}
}

func TestNilInjectorIsFree(t *testing.T) {
	w, _ := world(t, 1, 1<<20)
	buf := make([]byte, 64)
	allocs := testing.AllocsPerRun(200, func() {
		if err := w.GetInto(0, Addr{Rank: 0, Offset: 0}, buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("no-fault hot path allocates %.1f/op, want 0", allocs)
	}
}
