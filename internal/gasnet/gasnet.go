// Package gasnet implements the partitioned-global-address-space (PGAS)
// communication substrate GassyFS is built on in the paper ("GassyFS
// builds a distributed in-memory file system on top of the GASNet
// library").
//
// A World binds a set of cluster nodes into ranks. Each rank attaches a
// memory segment (accounted against the node's simulated RAM and backed
// by real bytes), and any rank can Put/Get into any segment with
// one-sided RDMA semantics: the caller pays latency plus payload time on
// its logical clock, the target is undisturbed. Barriers synchronize all
// ranks. Remote access cost versus local access cost is exactly what
// makes the GassyFS scalability experiment (Figure gassyfs-git) behave
// sublinearly, so the fidelity of this layer is what the reproduction of
// that figure rests on.
//
// The data path is built for host parallelism: segment bytes live in
// fixed-size chunks each guarded by its own mutex, so concurrent
// accesses to disjoint block ranges never contend on a lock. Zero-copy
// variants (GetInto/PutFrom) move bytes through caller-owned buffers,
// and vectored variants (Getv/Putv) batch the per-block clock, lock and
// metric bookkeeping of a multi-block transfer into a single call. The
// *DeferClock vectored forms additionally return the transfer cost
// instead of advancing the caller's clock, so parallel engines can fan
// transfers out across goroutines and apply the clock charges serially
// in a deterministic order (see docs/SUBSTRATES.md).
package gasnet

import (
	"fmt"
	"strings"
	"sync"

	"popper/internal/cluster"
	"popper/internal/fault"
	"popper/internal/metrics"
)

// Addr is a global address: a rank plus an offset into its segment.
type Addr struct {
	Rank   int
	Offset int64
}

// Segments are backed by fixed-size chunks, each with its own lock and a
// lazily materialized buffer. Striping the locks lets concurrent clients
// touch disjoint block ranges without contention, and lazy
// materialization keeps huge registrations (gigabytes of aggregate
// simulated memory) cheap when experiments touch only a small subset.
const (
	chunkShift = 18 // 256 KiB chunks
	chunkSize  = int64(1) << chunkShift
)

type segChunk struct {
	mu   sync.Mutex
	data []byte // nil until first write; reads of nil observe zeros
}

// segment is one rank's registered memory. size is immutable after
// attachment; all byte access goes through the per-chunk locks.
type segment struct {
	size   int64
	chunks []segChunk
}

func newSegment(size int64) *segment {
	n := (size + chunkSize - 1) >> chunkShift
	return &segment{size: size, chunks: make([]segChunk, n)}
}

// span returns the byte range [lo, hi) covered by chunk c.
func (s *segment) span(c int) (lo, hi int64) {
	lo = int64(c) << chunkShift
	hi = lo + chunkSize
	if hi > s.size {
		hi = s.size
	}
	return lo, hi
}

// writeAt copies data into the segment at off. Bounds are validated by
// the caller; only the chunks overlapping the range are locked, one at a
// time.
func (s *segment) writeAt(off int64, data []byte) {
	for len(data) > 0 {
		c := int(off >> chunkShift)
		lo, hi := s.span(c)
		n := hi - off
		if int64(len(data)) < n {
			n = int64(len(data))
		}
		ch := &s.chunks[c]
		ch.mu.Lock()
		if ch.data == nil {
			ch.data = make([]byte, hi-lo)
		}
		copy(ch.data[off-lo:], data[:n])
		ch.mu.Unlock()
		off += n
		data = data[n:]
	}
}

// readAt fills out with the segment bytes at off. Unmaterialized chunks
// read as zeros, exactly as freshly registered memory would.
func (s *segment) readAt(off int64, out []byte) {
	for len(out) > 0 {
		c := int(off >> chunkShift)
		lo, hi := s.span(c)
		n := hi - off
		if int64(len(out)) < n {
			n = int64(len(out))
		}
		ch := &s.chunks[c]
		ch.mu.Lock()
		if ch.data == nil {
			clear(out[:n])
		} else {
			copy(out[:n], ch.data[off-lo:])
		}
		ch.mu.Unlock()
		off += n
		out = out[n:]
	}
}

// opKeys holds the metric names for one operation direction, precomputed
// at World construction so the hot path never concatenates strings.
type opKeys struct {
	opsLocal    string
	opsRemote   string
	bytesLocal  string
	bytesRemote string
	seconds     string
}

func newOpKeys(op string) opKeys {
	return opKeys{
		opsLocal:    "gasnet_" + op + "_ops_local",
		opsRemote:   "gasnet_" + op + "_ops_remote",
		bytesLocal:  "gasnet_" + op + "_bytes_local",
		bytesRemote: "gasnet_" + op + "_bytes_remote",
		seconds:     "gasnet_" + op + "_seconds",
	}
}

// World is a GASNet job: ranks pinned to cluster nodes sharing a network.
// Concurrent Put/Get from multiple goroutines (multi-client filesystems)
// are safe: segment attachment is guarded by mu, and segment bytes are
// guarded by per-chunk locks.
type World struct {
	mu       sync.RWMutex // guards segment attachment
	nodes    []*cluster.Node
	net      *cluster.Network
	segments []*segment
	reg      *metrics.Registry
	putKeys  opKeys
	getKeys  opKeys
	faults   *fault.Injector
}

// New creates a world over the given nodes. The metrics registry is
// optional (nil disables instrumentation).
func New(nodes []*cluster.Node, net *cluster.Network, reg *metrics.Registry) (*World, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("gasnet: world needs at least one node")
	}
	if net == nil {
		return nil, fmt.Errorf("gasnet: world needs a network")
	}
	return &World{
		nodes:    nodes,
		net:      net,
		segments: make([]*segment, len(nodes)),
		reg:      reg,
		putKeys:  newOpKeys("put"),
		getKeys:  newOpKeys("get"),
	}, nil
}

// SetFaults installs a deterministic fault injector on the RDMA data
// path (sites "gasnet/<op>/r<caller>" for op in put, get, putv, getv,
// plus directed link sites "gasnet/link/r<caller>/r<target>" for every
// remote access — the hook network-split rules partition pairs with).
// Injected partitions and errors surface as typed *fault.Fault errors
// (detect with fault.IsPartition / fault.As) before any byte moves, so
// a failed transfer never leaves a segment half-written and idempotent
// retries are safe; injected latency is charged like transfer cost.
// Install before the world is shared across goroutines.
//
// Determinism caveat: a site's occurrence counter advances in call
// order, so occurrence-windowed rules (After/Times) are deterministic
// only when the site's ops are issued serially; under concurrent
// clients use occurrence-independent rules (prob 0 or 1, no window).
func (w *World) SetFaults(inj *fault.Injector) { w.faults = inj }

// Faults returns the installed fault injector (nil when chaos is off).
func (w *World) Faults() *fault.Injector { return w.faults }

// checkFault consults the injector for one RDMA op. It returns the
// injected latency to fold into the transfer cost, or the typed fault
// error to surface instead of transferring.
func (w *World) checkFault(op string, caller int) (float64, error) {
	if w.faults == nil {
		return 0, nil
	}
	f := w.faults.Check(fmt.Sprintf("gasnet/%s/r%d", op, caller))
	if f == nil {
		return 0, nil
	}
	if f.Kind == fault.Latency {
		return f.Delay, nil
	}
	return 0, fmt.Errorf("gasnet: %s from rank %d: %w", op, caller, f)
}

// checkLink consults the injector for the directed caller→target link
// of one remote access (site "gasnet/link/r<caller>/r<target>"). Local
// accesses traverse no link. Link sites are what network-split rules
// glob over — {site: "gasnet/link/r2/*", kind: partition} plus its
// mirror isolates rank 2 — and they fire before any byte moves, so a
// partitioned transfer never leaves a segment half-written. Injected
// latency is returned to fold into the transfer cost.
func (w *World) checkLink(op string, caller, target int) (float64, error) {
	if w.faults == nil || caller == target {
		return 0, nil
	}
	f := w.faults.Check(fmt.Sprintf("gasnet/link/r%d/r%d", caller, target))
	if f == nil {
		return 0, nil
	}
	if f.Kind == fault.Latency {
		return f.Delay, nil
	}
	return 0, fmt.Errorf("gasnet: %s link r%d->r%d: %w", op, caller, target, f)
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.nodes) }

// Node returns the cluster node behind a rank.
func (w *World) Node(rank int) (*cluster.Node, error) {
	if rank < 0 || rank >= len(w.nodes) {
		return nil, fmt.Errorf("gasnet: rank %d out of range [0,%d)", rank, len(w.nodes))
	}
	return w.nodes[rank], nil
}

// AttachSegment registers `size` bytes of RDMA-addressable memory on the
// rank's node. Each rank may attach once.
func (w *World) AttachSegment(rank int, size int64) error {
	node, err := w.Node(rank)
	if err != nil {
		return err
	}
	if size <= 0 {
		return fmt.Errorf("gasnet: segment size must be positive")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.segments[rank] != nil {
		return fmt.Errorf("gasnet: rank %d already has a segment", rank)
	}
	if err := node.Alloc(size); err != nil {
		return fmt.Errorf("gasnet: attaching segment: %w", err)
	}
	w.segments[rank] = newSegment(size)
	return nil
}

// AttachAll attaches equal segments on every rank. Ranks attach
// concurrently, and every rank is attempted even if some fail; failures
// are aggregated into one error naming each failing rank (the same
// all-indexes-run contract sched.Pool.Each gives).
func (w *World) AttachAll(size int64) error {
	errs := make([]error, len(w.nodes))
	var wg sync.WaitGroup
	wg.Add(len(w.nodes))
	for r := range w.nodes {
		go func(r int) {
			defer wg.Done()
			errs[r] = w.AttachSegment(r, size)
		}(r)
	}
	wg.Wait()
	var failed []string
	for r, err := range errs {
		if err != nil {
			failed = append(failed, fmt.Sprintf("rank %d: %v", r, err))
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("gasnet: attach failed on %d/%d ranks: %s",
			len(failed), len(w.nodes), strings.Join(failed, "; "))
	}
	return nil
}

// SegmentSize returns the attached segment size of a rank (0 if none).
func (w *World) SegmentSize(rank int) int64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	if rank < 0 || rank >= len(w.segments) || w.segments[rank] == nil {
		return 0
	}
	return w.segments[rank].size
}

// TotalMemory returns the aggregate attached memory across ranks —
// GassyFS's headline feature ("aggregates memory of multiple nodes").
func (w *World) TotalMemory() int64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	var total int64
	for _, s := range w.segments {
		if s != nil {
			total += s.size
		}
	}
	return total
}

// checkAccessLocked validates target bounds; caller holds w.mu (either side).
func (w *World) checkAccessLocked(target Addr, n int64) (*segment, error) {
	if target.Rank < 0 || target.Rank >= len(w.nodes) {
		return nil, fmt.Errorf("gasnet: target rank %d out of range", target.Rank)
	}
	seg := w.segments[target.Rank]
	if seg == nil {
		return nil, fmt.Errorf("gasnet: rank %d has no segment", target.Rank)
	}
	if target.Offset < 0 || n < 0 || target.Offset+n > seg.size {
		return nil, fmt.Errorf("gasnet: access [%d, %d) outside segment of rank %d (size %d)",
			target.Offset, target.Offset+n, target.Rank, seg.size)
	}
	return seg, nil
}

// checkAccess validates the access and returns the target segment.
func (w *World) checkAccess(caller int, target Addr, n int64) (*segment, error) {
	if caller < 0 || caller >= len(w.nodes) {
		return nil, fmt.Errorf("gasnet: caller rank %d out of range", caller)
	}
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.checkAccessLocked(target, n)
}

// Put writes data into the target segment with one-sided semantics; the
// caller's clock advances by the transfer cost. The data buffer stays
// owned by the caller (the world never retains it).
func (w *World) Put(caller int, target Addr, data []byte) error {
	return w.PutFrom(caller, target, data)
}

// PutFrom is the zero-copy put: bytes move straight from the caller's
// buffer into the segment chunks, with exactly one copy and no
// intermediate allocation.
func (w *World) PutFrom(caller int, target Addr, data []byte) error {
	seg, err := w.checkAccess(caller, target, int64(len(data)))
	if err != nil {
		return err
	}
	delay, err := w.checkFault("put", caller)
	if err != nil {
		return err
	}
	linkDelay, err := w.checkLink("put", caller, target.Rank)
	if err != nil {
		return err
	}
	delay += linkDelay
	if delay > 0 {
		w.nodes[caller].Advance(delay)
	}
	elapsed := delay + w.net.RDMAWrite(w.nodes[caller], w.nodes[target.Rank], int64(len(data)))
	seg.writeAt(target.Offset, data)
	w.observe(&w.putKeys, caller == target.Rank, 1, int64(len(data)), elapsed)
	return nil
}

// Get reads n bytes from the target segment into a fresh buffer; the
// caller's clock advances by the transfer cost. The returned buffer is
// an isolated copy the caller owns.
func (w *World) Get(caller int, target Addr, n int64) ([]byte, error) {
	if _, err := w.checkAccess(caller, target, n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	if err := w.GetInto(caller, target, out); err != nil {
		return nil, err
	}
	return out, nil
}

// GetInto is the zero-copy get: len(buf) bytes land directly in the
// caller-owned buffer, with exactly one copy and no allocation.
func (w *World) GetInto(caller int, target Addr, buf []byte) error {
	seg, err := w.checkAccess(caller, target, int64(len(buf)))
	if err != nil {
		return err
	}
	delay, err := w.checkFault("get", caller)
	if err != nil {
		return err
	}
	linkDelay, err := w.checkLink("get", caller, target.Rank)
	if err != nil {
		return err
	}
	delay += linkDelay
	if delay > 0 {
		w.nodes[caller].Advance(delay)
	}
	elapsed := delay + w.net.RDMARead(w.nodes[caller], w.nodes[target.Rank], int64(len(buf)))
	seg.readAt(target.Offset, buf)
	w.observe(&w.getKeys, caller == target.Rank, 1, int64(len(buf)), elapsed)
	return nil
}

// Getv is the vectored get: bufs[i] is filled from addrs[i], the
// caller's clock advances once by the summed transfer cost, and metric
// bookkeeping is batched into one update per key. Returns the elapsed
// virtual time. Bounds are validated for every block before any byte
// moves.
func (w *World) Getv(caller int, addrs []Addr, bufs [][]byte) (float64, error) {
	return w.vectored(caller, addrs, bufs, true, true)
}

// GetvDeferClock is Getv without the clock advance: it returns the cost
// so a deterministic engine can apply charges in a fixed order after
// fanning transfers out across goroutines.
func (w *World) GetvDeferClock(caller int, addrs []Addr, bufs [][]byte) (float64, error) {
	return w.vectored(caller, addrs, bufs, true, false)
}

// Putv is the vectored put: bufs[i] is written to addrs[i] with one
// clock advance and batched metric bookkeeping. Returns the elapsed
// virtual time.
func (w *World) Putv(caller int, addrs []Addr, bufs [][]byte) (float64, error) {
	return w.vectored(caller, addrs, bufs, false, true)
}

// PutvDeferClock is Putv without the clock advance (see GetvDeferClock).
func (w *World) PutvDeferClock(caller int, addrs []Addr, bufs [][]byte) (float64, error) {
	return w.vectored(caller, addrs, bufs, false, false)
}

func (w *World) vectored(caller int, addrs []Addr, bufs [][]byte, isGet, advance bool) (float64, error) {
	if len(addrs) != len(bufs) {
		return 0, fmt.Errorf("gasnet: vectored op: %d addrs but %d buffers", len(addrs), len(bufs))
	}
	if caller < 0 || caller >= len(w.nodes) {
		return 0, fmt.Errorf("gasnet: caller rank %d out of range", caller)
	}
	if len(addrs) == 0 {
		return 0, nil
	}
	callerNode := w.nodes[caller]
	w.mu.RLock()
	defer w.mu.RUnlock()
	for i, a := range addrs {
		if _, err := w.checkAccessLocked(a, int64(len(bufs[i]))); err != nil {
			return 0, err
		}
	}
	op := "putv"
	if isGet {
		op = "getv"
	}
	// Vectored ops fault atomically: the partition hits before any block
	// of the batch moves, so retrying the whole batch is idempotent.
	elapsed, ferr := w.checkFault(op, caller)
	if ferr != nil {
		return 0, ferr
	}
	if w.faults != nil {
		// Each distinct remote rank in the batch traverses its link once,
		// in first-appearance order so the occurrence stream is stable.
		for i, a := range addrs {
			if a.Rank == caller {
				continue
			}
			seen := false
			for _, b := range addrs[:i] {
				if b.Rank == a.Rank {
					seen = true
					break
				}
			}
			if seen {
				continue
			}
			delay, lerr := w.checkLink(op, caller, a.Rank)
			if lerr != nil {
				return 0, lerr
			}
			elapsed += delay
		}
	}
	var localOps, remoteOps int64
	var localBytes, remoteBytes int64
	for i, a := range addrs {
		n := int64(len(bufs[i]))
		elapsed += w.net.RDMACost(callerNode, w.nodes[a.Rank], n)
		if a.Rank == caller {
			localOps++
			localBytes += n
		} else {
			remoteOps++
			remoteBytes += n
		}
		seg := w.segments[a.Rank]
		if isGet {
			seg.readAt(a.Offset, bufs[i])
		} else {
			seg.writeAt(a.Offset, bufs[i])
		}
	}
	if advance {
		callerNode.Advance(elapsed)
	}
	keys := &w.putKeys
	if isGet {
		keys = &w.getKeys
	}
	if w.reg != nil {
		if localOps > 0 {
			w.reg.Add(keys.opsLocal, float64(localOps))
			w.reg.Add(keys.bytesLocal, float64(localBytes))
		}
		if remoteOps > 0 {
			w.reg.Add(keys.opsRemote, float64(remoteOps))
			w.reg.Add(keys.bytesRemote, float64(remoteBytes))
		}
		w.reg.Observe(keys.seconds, elapsed)
	}
	return elapsed, nil
}

func (w *World) observe(keys *opKeys, local bool, ops, bytes int64, elapsed float64) {
	if w.reg == nil {
		return
	}
	if local {
		w.reg.Add(keys.opsLocal, float64(ops))
		w.reg.Add(keys.bytesLocal, float64(bytes))
	} else {
		w.reg.Add(keys.opsRemote, float64(ops))
		w.reg.Add(keys.bytesRemote, float64(bytes))
	}
	w.reg.Observe(keys.seconds, elapsed)
}

// Barrier synchronizes every rank's clock.
func (w *World) Barrier() float64 {
	return w.net.Barrier(w.nodes)
}

// MaxClock returns the latest logical clock across ranks (the makespan).
func (w *World) MaxClock() float64 {
	return cluster.MaxClock(w.nodes)
}

// Compute runs work on a rank's node and returns the elapsed time.
func (w *World) Compute(rank int, work cluster.Work) (float64, error) {
	node, err := w.Node(rank)
	if err != nil {
		return 0, err
	}
	return node.Run(work), nil
}
