// Package gasnet implements the partitioned-global-address-space (PGAS)
// communication substrate GassyFS is built on in the paper ("GassyFS
// builds a distributed in-memory file system on top of the GASNet
// library").
//
// A World binds a set of cluster nodes into ranks. Each rank attaches a
// memory segment (accounted against the node's simulated RAM and backed
// by real bytes), and any rank can Put/Get into any segment with
// one-sided RDMA semantics: the caller pays latency plus payload time on
// its logical clock, the target is undisturbed. Barriers synchronize all
// ranks. Remote access cost versus local access cost is exactly what
// makes the GassyFS scalability experiment (Figure gassyfs-git) behave
// sublinearly, so the fidelity of this layer is what the reproduction of
// that figure rests on.
package gasnet

import (
	"fmt"
	"sync"

	"popper/internal/cluster"
	"popper/internal/metrics"
)

// Addr is a global address: a rank plus an offset into its segment.
type Addr struct {
	Rank   int
	Offset int64
}

// segment is one rank's registered memory. The backing buffer grows
// lazily toward the registered size: simulated segments are often huge
// (gigabytes of aggregate memory) while experiments touch only a small
// prefix, and eagerly zeroing the full registration would dominate host
// time without changing any simulated behaviour. Reads beyond the
// high-water mark observe zeros, exactly as freshly registered memory
// would.
type segment struct {
	mu   sync.Mutex
	size int64 // registered size (bounds checking, RAM accounting)
	data []byte
}

// caller holds s.mu.
func (s *segment) ensure(n int64) {
	if int64(len(s.data)) >= n {
		return
	}
	newLen := int64(cap(s.data)) * 2
	if newLen < n {
		newLen = n
	}
	if newLen > s.size {
		newLen = s.size
	}
	grown := make([]byte, newLen)
	copy(grown, s.data)
	s.data = grown
}

// World is a GASNet job: ranks pinned to cluster nodes sharing a network.
// Concurrent Put/Get from multiple goroutines (multi-client filesystems)
// are safe: segment attachment is guarded by mu, and each segment
// serializes access to its bytes.
type World struct {
	mu       sync.RWMutex // guards segment attachment
	nodes    []*cluster.Node
	net      *cluster.Network
	segments []*segment
	reg      *metrics.Registry
}

// New creates a world over the given nodes. The metrics registry is
// optional (nil disables instrumentation).
func New(nodes []*cluster.Node, net *cluster.Network, reg *metrics.Registry) (*World, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("gasnet: world needs at least one node")
	}
	if net == nil {
		return nil, fmt.Errorf("gasnet: world needs a network")
	}
	return &World{
		nodes:    nodes,
		net:      net,
		segments: make([]*segment, len(nodes)),
		reg:      reg,
	}, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.nodes) }

// Node returns the cluster node behind a rank.
func (w *World) Node(rank int) (*cluster.Node, error) {
	if rank < 0 || rank >= len(w.nodes) {
		return nil, fmt.Errorf("gasnet: rank %d out of range [0,%d)", rank, len(w.nodes))
	}
	return w.nodes[rank], nil
}

// AttachSegment registers `size` bytes of RDMA-addressable memory on the
// rank's node. Each rank may attach once.
func (w *World) AttachSegment(rank int, size int64) error {
	node, err := w.Node(rank)
	if err != nil {
		return err
	}
	if size <= 0 {
		return fmt.Errorf("gasnet: segment size must be positive")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.segments[rank] != nil {
		return fmt.Errorf("gasnet: rank %d already has a segment", rank)
	}
	if err := node.Alloc(size); err != nil {
		return fmt.Errorf("gasnet: attaching segment: %w", err)
	}
	w.segments[rank] = &segment{size: size}
	return nil
}

// AttachAll attaches equal segments on every rank.
func (w *World) AttachAll(size int64) error {
	for r := range w.nodes {
		if err := w.AttachSegment(r, size); err != nil {
			return err
		}
	}
	return nil
}

// SegmentSize returns the attached segment size of a rank (0 if none).
func (w *World) SegmentSize(rank int) int64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	if rank < 0 || rank >= len(w.segments) || w.segments[rank] == nil {
		return 0
	}
	return w.segments[rank].size
}

// TotalMemory returns the aggregate attached memory across ranks —
// GassyFS's headline feature ("aggregates memory of multiple nodes").
func (w *World) TotalMemory() int64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	var total int64
	for _, s := range w.segments {
		if s != nil {
			total += s.size
		}
	}
	return total
}

// checkAccess validates the access and returns the target segment.
func (w *World) checkAccess(caller int, target Addr, n int64) (*segment, error) {
	if caller < 0 || caller >= len(w.nodes) {
		return nil, fmt.Errorf("gasnet: caller rank %d out of range", caller)
	}
	if target.Rank < 0 || target.Rank >= len(w.nodes) {
		return nil, fmt.Errorf("gasnet: target rank %d out of range", target.Rank)
	}
	w.mu.RLock()
	seg := w.segments[target.Rank]
	w.mu.RUnlock()
	if seg == nil {
		return nil, fmt.Errorf("gasnet: rank %d has no segment", target.Rank)
	}
	if target.Offset < 0 || n < 0 || target.Offset+n > seg.size {
		return nil, fmt.Errorf("gasnet: access [%d, %d) outside segment of rank %d (size %d)",
			target.Offset, target.Offset+n, target.Rank, seg.size)
	}
	return seg, nil
}

// Put writes data into the target segment with one-sided semantics; the
// caller's clock advances by the transfer cost.
func (w *World) Put(caller int, target Addr, data []byte) error {
	seg, err := w.checkAccess(caller, target, int64(len(data)))
	if err != nil {
		return err
	}
	elapsed := w.net.RDMAWrite(w.nodes[caller], w.nodes[target.Rank], int64(len(data)))
	seg.mu.Lock()
	seg.ensure(target.Offset + int64(len(data)))
	copy(seg.data[target.Offset:], data)
	seg.mu.Unlock()
	w.observe(caller, target.Rank, "put", len(data), elapsed)
	return nil
}

// Get reads n bytes from the target segment into a fresh buffer; the
// caller's clock advances by the transfer cost.
func (w *World) Get(caller int, target Addr, n int64) ([]byte, error) {
	seg, err := w.checkAccess(caller, target, n)
	if err != nil {
		return nil, err
	}
	elapsed := w.net.RDMARead(w.nodes[caller], w.nodes[target.Rank], n)
	out := make([]byte, n)
	seg.mu.Lock()
	if target.Offset < int64(len(seg.data)) {
		end := target.Offset + n
		if end > int64(len(seg.data)) {
			end = int64(len(seg.data))
		}
		copy(out, seg.data[target.Offset:end])
	}
	seg.mu.Unlock()
	w.observe(caller, target.Rank, "get", int(n), elapsed)
	return out, nil
}

func (w *World) observe(caller, target int, op string, bytes int, elapsed float64) {
	if w.reg == nil {
		return
	}
	kind := "local"
	if caller != target {
		kind = "remote"
	}
	w.reg.Add("gasnet_"+op+"_ops_"+kind, 1)
	w.reg.Add("gasnet_"+op+"_bytes_"+kind, float64(bytes))
	w.reg.Observe("gasnet_"+op+"_seconds", elapsed)
}

// Barrier synchronizes every rank's clock.
func (w *World) Barrier() float64 {
	return w.net.Barrier(w.nodes)
}

// MaxClock returns the latest logical clock across ranks (the makespan).
func (w *World) MaxClock() float64 {
	return cluster.MaxClock(w.nodes)
}

// Compute runs work on a rank's node and returns the elapsed time.
func (w *World) Compute(rank int, work cluster.Work) (float64, error) {
	node, err := w.Node(rank)
	if err != nil {
		return 0, err
	}
	return node.Run(work), nil
}
