package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"popper/internal/table"
)

func TestObserveAndSeries(t *testing.T) {
	r := NewRegistry(Labels{"machine": "m0"}, nil)
	r.Observe("time", 10)
	r.Observe("time", 20)
	r.Observe("other", 5)
	got := r.Series("time", nil)
	if len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Fatalf("series = %v", got)
	}
	if n := r.Len(); n != 3 {
		t.Fatalf("len = %d", n)
	}
}

func TestCounters(t *testing.T) {
	r := NewRegistry(nil, nil)
	r.Add("ops", 3)
	r.Add("ops", 4)
	if v := r.Counter("ops"); v != 7 {
		t.Fatalf("counter = %v", v)
	}
	series := r.Series("ops", nil)
	if len(series) != 2 || series[1] != 7 {
		t.Fatalf("counter series = %v", series)
	}
}

func TestGauges(t *testing.T) {
	r := NewRegistry(nil, nil)
	r.Set("mem", 100)
	r.Set("mem", 50)
	if v := r.Gauge("mem"); v != 50 {
		t.Fatalf("gauge = %v", v)
	}
	if v := r.Gauge("absent"); v != 0 {
		t.Fatalf("absent gauge = %v", v)
	}
}

func TestLabelsAndViews(t *testing.T) {
	r := NewRegistry(Labels{"exp": "gassyfs"}, nil)
	v := r.WithLabels(Labels{"machine": "n1"})
	v.Observe("time", 42)
	v2 := v.WithLabels(Labels{"run": "3"})
	v2.Observe("time", 43)

	if got := r.Series("time", Labels{"machine": "n1"}); len(got) != 2 {
		t.Fatalf("machine series = %v", got)
	}
	if got := r.Series("time", Labels{"run": "3"}); len(got) != 1 || got[0] != 43 {
		t.Fatalf("run series = %v", got)
	}
	if got := r.Series("time", Labels{"run": "9"}); len(got) != 0 {
		t.Fatalf("mismatched filter should be empty, got %v", got)
	}
	// base labels present on everything
	if got := r.Series("time", Labels{"exp": "gassyfs"}); len(got) != 2 {
		t.Fatalf("base label series = %v", got)
	}
}

func TestViewLabelsDoNotLeak(t *testing.T) {
	r := NewRegistry(nil, nil)
	v := r.WithLabels(Labels{"a": "1"})
	_ = v.WithLabels(Labels{"b": "2"}) // deriving must not mutate v
	v.Observe("m", 1)
	obs := r.Observations()
	if _, ok := obs[0].Labels["b"]; ok {
		t.Fatal("derived view labels leaked into parent view")
	}
}

func TestTimer(t *testing.T) {
	var now int64
	r := NewRegistry(nil, func() int64 { return now })
	v := r.WithLabels(nil)
	now = 100
	tm := v.StartTimer("elapsed")
	now = 250
	if got := tm.Stop(); got != 150 {
		t.Fatalf("elapsed = %v", got)
	}
	if s := r.Series("elapsed", nil); len(s) != 1 || s[0] != 150 {
		t.Fatalf("series = %v", s)
	}
}

func TestTableExport(t *testing.T) {
	r := NewRegistry(Labels{"workload": "compile"}, nil)
	r.WithLabels(Labels{"nodes": "2"}).Observe("time", 55)
	tb := r.Table()
	cols := tb.Columns()
	want := []string{"tick", "metric", "value", "nodes", "workload"}
	if len(cols) != len(want) {
		t.Fatalf("cols = %v", cols)
	}
	for i := range want {
		if cols[i] != want[i] {
			t.Fatalf("cols = %v, want %v", cols, want)
		}
	}
	if tb.Len() != 1 {
		t.Fatalf("rows = %d", tb.Len())
	}
	if v := tb.MustCell(0, "value").Num; v != 55 {
		t.Fatalf("value = %v", v)
	}
}

func TestResultTablePivot(t *testing.T) {
	r := NewRegistry(Labels{"workload": "compile-git"}, nil)
	for _, n := range []string{"1", "2", "4"} {
		v := r.WithLabels(Labels{"nodes": n})
		v.Observe("time", 100/float64(len(n))) // arbitrary
		v.Observe("mem", 7)
	}
	rt := r.ResultTable()
	if rt.Len() != 3 {
		t.Fatalf("pivot rows = %d\n%s", rt.Len(), rt.Format())
	}
	if !rt.HasColumn("time") || !rt.HasColumn("mem") || !rt.HasColumn("nodes") {
		t.Fatalf("pivot cols = %v", rt.Columns())
	}
	row, err := rt.Where("nodes", rt.MustCell(0, "nodes"))
	if err != nil || row.Len() != 1 {
		t.Fatalf("where: %v", err)
	}
}

func TestResultTableLastWins(t *testing.T) {
	r := NewRegistry(nil, nil)
	r.Observe("x", 1)
	r.Observe("x", 2)
	rt := r.ResultTable()
	if rt.Len() != 1 {
		t.Fatalf("rows = %d", rt.Len())
	}
	if v := rt.MustCell(0, "x").Num; v != 2 {
		t.Fatalf("x = %v (last value should win)", v)
	}
}

func TestSummarize(t *testing.T) {
	r := NewRegistry(nil, nil)
	for _, x := range []float64{1, 2, 3, 4} {
		r.Observe("t", x)
	}
	s := r.Summarize("t", nil)
	if s.Count != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Median != 2.5 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.StdDev-1.2909944487358056) > 1e-12 {
		t.Fatalf("sd = %v", s.StdDev)
	}
	empty := r.Summarize("absent", nil)
	if empty.Count != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}
	if s.String() == "" {
		t.Fatal("summary string empty")
	}
}

func TestReset(t *testing.T) {
	r := NewRegistry(nil, nil)
	r.Add("c", 5)
	r.Set("g", 2)
	r.Reset()
	if r.Len() != 0 || r.Counter("c") != 0 || r.Gauge("g") != 0 {
		t.Fatal("reset did not clear state")
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry(nil, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Add("ops", 1)
				r.Observe("x", float64(i))
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("ops"); v != 800 {
		t.Fatalf("ops = %v", v)
	}
	if n := r.Len(); n != 1600 {
		t.Fatalf("observations = %d", n)
	}
}

// Property: ticks are strictly increasing with the default clock.
func TestQuickMonotonicTicks(t *testing.T) {
	f := func(vals []float64) bool {
		r := NewRegistry(nil, nil)
		for _, v := range vals {
			if math.IsNaN(v) {
				v = 0
			}
			r.Observe("m", v)
		}
		obs := r.Observations()
		for i := 1; i < len(obs); i++ {
			if obs[i].Tick <= obs[i-1].Tick {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Series returns exactly the observed values, in order.
func TestQuickSeriesFaithful(t *testing.T) {
	f := func(vals []float64) bool {
		r := NewRegistry(nil, nil)
		clean := make([]float64, 0, len(vals))
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			clean = append(clean, v)
			r.Observe("m", v)
		}
		got := r.Series("m", nil)
		if len(got) != len(clean) {
			return false
		}
		for i := range got {
			if got[i] != clean[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBootstrapCI(t *testing.T) {
	samples := []float64{10, 11, 9, 10.5, 9.5, 10, 10.2, 9.8}
	lo, hi, err := BootstrapCI(samples, func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}, 1000, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lo >= hi {
		t.Fatalf("interval [%v, %v]", lo, hi)
	}
	if lo > 10 || hi < 10 {
		t.Fatalf("true mean 10 outside [%v, %v]", lo, hi)
	}
	// deterministic in the seed
	lo2, hi2, _ := BootstrapCI(samples, func(xs []float64) float64 { return xs[0] }, 1000, 0.95, 7)
	lo3, hi3, _ := BootstrapCI(samples, func(xs []float64) float64 { return xs[0] }, 1000, 0.95, 7)
	if lo2 != lo3 || hi2 != hi3 {
		t.Fatal("bootstrap must be deterministic for a seed")
	}
}

func TestBootstrapValidation(t *testing.T) {
	id := func(xs []float64) float64 { return xs[0] }
	if _, _, err := BootstrapCI([]float64{1}, id, 1000, 0.95, 1); err == nil {
		t.Fatal("too few samples must fail")
	}
	if _, _, err := BootstrapCI([]float64{1, 2}, id, 10, 0.95, 1); err == nil {
		t.Fatal("too few iterations must fail")
	}
	if _, _, err := BootstrapCI([]float64{1, 2}, id, 1000, 1.5, 1); err == nil {
		t.Fatal("bad confidence must fail")
	}
}

func TestCompareSystems(t *testing.T) {
	// B is clearly ~10x faster than A (lower is better).
	a := []float64{100, 104, 96, 99, 101, 103, 97, 100}
	b := []float64{10, 10.3, 9.6, 10.1, 9.9, 10.2, 9.8, 10}
	c, err := CompareSystems(a, b, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Factor < 9 || c.Factor > 11 {
		t.Fatalf("factor = %v", c.Factor)
	}
	if !c.Better() {
		t.Fatalf("B should be confidently better: %s", c.String())
	}
	if c.Lo > c.Factor || c.Hi < c.Factor {
		t.Fatalf("point estimate outside CI: %s", c.String())
	}
	if c.String() == "" {
		t.Fatal("empty statement")
	}
	// overlapping systems are not confidently different
	c2, err := CompareSystems(a, []float64{98, 102, 95, 105, 99, 101}, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Better() {
		t.Fatalf("similar systems must not be confidently different: %s", c2.String())
	}
}

func TestCompareSystemsValidation(t *testing.T) {
	if _, err := CompareSystems([]float64{1}, []float64{1, 2}, 0.95, 1); err == nil {
		t.Fatal("too few samples must fail")
	}
	if _, err := CompareSystems([]float64{0, 0}, []float64{0, 0}, 0.95, 1); err == nil {
		t.Fatal("zero means must fail")
	}
	if _, err := CompareSystems([]float64{1, 2}, []float64{1, 2}, 2, 1); err == nil {
		t.Fatal("bad confidence must fail")
	}
}

// TestConcurrentStages drives the registry the way parallel pipeline
// stages do — timers, counters, gauges and raw samples from many
// goroutines, with readers interleaved — and relies on the race
// detector to catch unguarded access (the timer path used to call the
// mutating logical clock without the lock).
func TestConcurrentStages(t *testing.T) {
	r := NewRegistry(Labels{"experiment": "race"}, nil)
	const workers, rounds = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := r.WithLabels(Labels{"worker": string(rune('a' + w))})
			for i := 0; i < rounds; i++ {
				tm := v.StartTimer("stage")
				r.Add("ops", 1)
				r.Set("depth", float64(i))
				v.Observe("sample", float64(i))
				tm.Stop()
				// Interleave readers with the writers.
				_ = r.Counter("ops")
				_ = r.Len()
				_ = r.Series("sample", Labels{"worker": string(rune('a' + w))})
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("ops"); got != workers*rounds {
		t.Fatalf("ops counter = %v, want %d", got, workers*rounds)
	}
	// timer + counter + gauge + sample per round per worker
	if got := r.Len(); got != 4*workers*rounds {
		t.Fatalf("observations = %d, want %d", got, 4*workers*rounds)
	}
	if r.Table().Len() != r.Len() {
		t.Fatal("table export must carry every observation")
	}
}

func TestStreamInto(t *testing.T) {
	r := NewRegistry(Labels{"machine": "m0"}, nil)
	w := table.NewWindow("metric", "value", "tick", "machine", "phase")
	r.WithLabels(Labels{"phase": "warm"}).Observe("time", 10)
	r.Observe("time", 20)
	mark, err := r.StreamInto(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mark != 2 || w.Len() != 2 || w.Batches() != 1 {
		t.Fatalf("mark=%d len=%d batches=%d", mark, w.Len(), w.Batches())
	}
	tb := w.Table()
	if tb.MustCell(0, "metric").Text() != "time" || tb.MustCell(0, "value").Num != 10 {
		t.Fatalf("row 0 = %v %v", tb.MustCell(0, "metric").Text(), tb.MustCell(0, "value").Num)
	}
	if tb.MustCell(0, "phase").Text() != "warm" || tb.MustCell(1, "phase").Text() != "" {
		t.Fatalf("phase labels: %q %q", tb.MustCell(0, "phase").Text(), tb.MustCell(1, "phase").Text())
	}
	if tb.MustCell(1, "machine").Text() != "m0" {
		t.Fatalf("base label lost: %q", tb.MustCell(1, "machine").Text())
	}
	// Incremental drain: nothing new is a no-op, new rows land in a
	// fresh batch.
	if mark2, err := r.StreamInto(w, mark); err != nil || mark2 != mark || w.Batches() != 1 {
		t.Fatalf("no-op drain: mark=%d err=%v batches=%d", mark2, err, w.Batches())
	}
	r.Observe("time", 30)
	mark3, err := r.StreamInto(w, mark)
	if err != nil || mark3 != 3 || w.Len() != 3 || w.Batches() != 2 {
		t.Fatalf("mark=%d err=%v len=%d batches=%d", mark3, err, w.Len(), w.Batches())
	}
	if _, err := r.StreamInto(w, 99); err == nil {
		t.Fatal("out-of-range mark must error")
	}
}
