// Package metrics implements the performance-monitoring substrate of the
// Popper toolchain (the role Nagios/CollectD/StatD play in the paper).
//
// Experiments register counters, gauges and timers in a Registry; sampled
// observations accumulate into time series. At the end of a run the
// registry exports a flat metrics table (one row per observation, with
// experiment context labels) that post-processing scripts and the Aver
// validator consume — "many of the graphs included in the article can
// come directly from running analysis scripts on top of this data".
package metrics

import (
	"fmt"
	"sort"
	"sync"

	"popper/internal/table"
)

// Labels attach experiment context (workload, machine, run id ...) to
// every observation recorded through a registry.
type Labels map[string]string

// clone copies the label set.
func (l Labels) clone() Labels {
	out := make(Labels, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

// merged returns l overlaid with extra.
func (l Labels) merged(extra Labels) Labels {
	out := l.clone()
	for k, v := range extra {
		out[k] = v
	}
	return out
}

// Observation is one recorded metric sample.
type Observation struct {
	Name   string
	Value  float64
	Tick   int64 // logical timestamp (virtual ns in simulated substrates)
	Labels Labels
}

// Registry collects observations. It is safe for concurrent use:
// writers serialize on the lock, readers (Counter, Gauge, Len,
// Observations, Series, Table, ResultTable) share it.
type Registry struct {
	mu       sync.RWMutex
	base     Labels
	obs      []Observation
	counters map[string]float64
	gauges   map[string]float64
	clock    func() int64
}

// NewRegistry creates a registry with base labels applied to every
// observation. clock supplies logical timestamps; nil means a
// monotonically increasing sequence number.
func NewRegistry(base Labels, clock func() int64) *Registry {
	r := &Registry{
		base:     base.clone(),
		counters: make(map[string]float64),
		gauges:   make(map[string]float64),
		clock:    clock,
	}
	if r.clock == nil {
		var seq int64
		r.clock = func() int64 { seq++; return seq }
	}
	return r
}

// WithLabels returns a view of the registry with extra labels merged into
// the base set. Observations still land in the parent registry.
func (r *Registry) WithLabels(extra Labels) *View {
	return &View{reg: r, labels: extra.clone()}
}

// now advances the logical clock under the lock. The default clock is a
// mutating sequence counter, so every caller outside the write path
// (timers in particular) must go through here rather than calling
// r.clock directly.
func (r *Registry) now() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.clock()
}

// record appends an observation under the lock.
func (r *Registry) record(name string, v float64, extra Labels) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.obs = append(r.obs, Observation{
		Name:   name,
		Value:  v,
		Tick:   r.clock(),
		Labels: r.base.merged(extra),
	})
}

// Observe records a raw sample.
func (r *Registry) Observe(name string, v float64) { r.record(name, v, nil) }

// Add increments a named counter and records the new total.
func (r *Registry) Add(name string, delta float64) {
	r.mu.Lock()
	r.counters[name] += delta
	total := r.counters[name]
	r.obs = append(r.obs, Observation{
		Name: name, Value: total, Tick: r.clock(), Labels: r.base.clone(),
	})
	r.mu.Unlock()
}

// Counter returns the current value of a counter.
func (r *Registry) Counter(name string) float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.counters[name]
}

// Set updates a gauge and records the observation.
func (r *Registry) Set(name string, v float64) {
	r.mu.Lock()
	r.gauges[name] = v
	r.obs = append(r.obs, Observation{
		Name: name, Value: v, Tick: r.clock(), Labels: r.base.clone(),
	})
	r.mu.Unlock()
}

// Gauge returns the current value of a gauge.
func (r *Registry) Gauge(name string) float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.gauges[name]
}

// Len returns the number of recorded observations.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.obs)
}

// Observations returns a copy of all recorded observations.
func (r *Registry) Observations() []Observation {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]Observation(nil), r.obs...)
}

// Series returns the values of a named metric in record order, filtered
// by the given label constraints (nil matches everything).
func (r *Registry) Series(name string, match Labels) []float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []float64
	for _, o := range r.obs {
		if o.Name != name {
			continue
		}
		if !matches(o.Labels, match) {
			continue
		}
		out = append(out, o.Value)
	}
	return out
}

func matches(have, want Labels) bool {
	for k, v := range want {
		if have[k] != v {
			return false
		}
	}
	return true
}

// labelKeys returns the union of label keys across observations, sorted.
func (r *Registry) labelKeys() []string {
	set := make(map[string]bool)
	for _, o := range r.obs {
		for k := range o.Labels {
			set[k] = true
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Table exports all observations as a flat table with columns
// tick, metric, value plus one column per label key.
func (r *Registry) Table() *table.Table {
	r.mu.RLock()
	defer r.mu.RUnlock()
	keys := r.labelKeys()
	cols := append([]string{"tick", "metric", "value"}, keys...)
	t := table.New(cols...)
	row := make([]table.Value, 0, len(cols))
	for _, o := range r.obs {
		row = append(row[:0],
			table.Number(float64(o.Tick)),
			table.String(o.Name),
			table.Number(o.Value),
		)
		for _, k := range keys {
			row = append(row, table.String(o.Labels[k]))
		}
		t.MustAppend(row...)
	}
	return t
}

// StreamInto appends the observations recorded since index `since`
// (a previous return value; 0 for all) to a windowed buffer as one
// batch, and returns the new high-water mark. The window's schema is
// fixed by its creator: columns named "tick", "metric" and "value" map
// to the observation fields, every other column reads the label of
// that name (missing labels become empty strings) — so label keys that
// first appear mid-stream never reshape the schema the way Table's
// union-of-keys columns would. No rows since the mark is a no-op (no
// empty batch is appended). This is the metrics half of streaming
// validation: a producer drains the registry into a Window batch by
// batch and hands each increment to the Aver stream evaluator.
func (r *Registry) StreamInto(w *table.Window, since int) (int, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := len(r.obs)
	if since < 0 || since > n {
		return n, fmt.Errorf("metrics: stream mark %d out of range [0,%d]", since, n)
	}
	if since == n {
		return n, nil
	}
	cols := w.Table().Columns()
	batch := table.New(cols...)
	row := make([]table.Value, len(cols))
	for _, o := range r.obs[since:] {
		for i, c := range cols {
			switch c {
			case "tick":
				row[i] = table.Number(float64(o.Tick))
			case "metric":
				row[i] = table.String(o.Name)
			case "value":
				row[i] = table.Number(o.Value)
			default:
				row[i] = table.String(o.Labels[c])
			}
		}
		batch.MustAppend(row...)
	}
	if err := w.Append(batch); err != nil {
		return since, err
	}
	return n, nil
}

// ResultTable pivots observations into one row per (label-set) group with
// one column per metric name (last value wins within a group). This is the
// "results.csv" shape the Popper convention stores and Aver validates.
func (r *Registry) ResultTable() *table.Table {
	r.mu.RLock()
	defer r.mu.RUnlock()
	keys := r.labelKeys()
	metricSet := make(map[string]bool)
	for _, o := range r.obs {
		metricSet[o.Name] = true
	}
	metricNames := make([]string, 0, len(metricSet))
	for m := range metricSet {
		metricNames = append(metricNames, m)
	}
	sort.Strings(metricNames)

	type group struct {
		labels Labels
		vals   map[string]float64
	}
	// Group observations by their label tuple without building a
	// composite key string per observation: label values intern to dense
	// ids and group ids thread through a per-level (parent-group, id)
	// hash. Groups come out dense in first-seen order, so row order is
	// deterministic for a given observation sequence.
	intern := make(map[string]int32)
	internID := func(s string) int32 {
		id, ok := intern[s]
		if !ok {
			id = int32(len(intern))
			intern[s] = id
		}
		return id
	}
	type gkey struct {
		parent int32
		id     int32
	}
	seen := make([]map[gkey]int32, len(keys))
	for i := range seen {
		seen[i] = make(map[gkey]int32)
	}
	var groups []*group
	for _, o := range r.obs {
		g := int32(0)
		for ki, k := range keys {
			kk := gkey{parent: g, id: internID(o.Labels[k])}
			ng, ok := seen[ki][kk]
			if !ok {
				ng = int32(len(seen[ki]))
				seen[ki][kk] = ng
			}
			g = ng
		}
		if int(g) >= len(groups) {
			groups = append(groups, &group{labels: o.Labels, vals: make(map[string]float64)})
		}
		groups[g].vals[o.Name] = o.Value
	}

	cols := append(append([]string(nil), keys...), metricNames...)
	t := table.New(cols...)
	row := make([]table.Value, 0, len(cols))
	for _, g := range groups {
		row = row[:0]
		for _, k := range keys {
			row = append(row, table.String(g.labels[k]))
		}
		for _, m := range metricNames {
			if v, ok := g.vals[m]; ok {
				row = append(row, table.Number(v))
			} else {
				row = append(row, table.String(""))
			}
		}
		t.MustAppend(row...)
	}
	return t
}

// Reset drops all observations, counters and gauges.
func (r *Registry) Reset() {
	r.mu.Lock()
	r.obs = nil
	r.counters = make(map[string]float64)
	r.gauges = make(map[string]float64)
	r.mu.Unlock()
}

// View is a labeled window onto a registry.
type View struct {
	reg    *Registry
	labels Labels
}

// Observe records a sample with the view's labels merged in.
func (v *View) Observe(name string, val float64) { v.reg.record(name, val, v.labels) }

// WithLabels stacks more labels on top of the view.
func (v *View) WithLabels(extra Labels) *View {
	return &View{reg: v.reg, labels: v.labels.merged(extra)}
}

// Timer measures an interval on the registry's logical clock.
type Timer struct {
	view  *View
	name  string
	start int64
}

// StartTimer begins timing; Stop records the elapsed ticks as a sample.
func (v *View) StartTimer(name string) *Timer {
	return &Timer{view: v, name: name, start: v.reg.now()}
}

// Stop records the elapsed logical time and returns it.
func (t *Timer) Stop() float64 {
	elapsed := float64(t.view.reg.now() - t.start)
	t.view.Observe(t.name, elapsed)
	return elapsed
}

// Summary describes the distribution of a metric series.
type Summary struct {
	Name               string
	Count              int
	Mean, Min, Max     float64
	Median, StdDev, CV float64
}

// Summarize computes distribution statistics for a named metric.
func (r *Registry) Summarize(name string, match Labels) Summary {
	xs := r.Series(name, match)
	s := Summary{Name: name, Count: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Mean = table.Mean(xs)
	s.Median = table.Median(xs)
	s.StdDev = table.StdDev(xs)
	s.CV = table.CoeffVar(xs)
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	return s
}

// String renders a one-line summary.
func (s Summary) String() string {
	return fmt.Sprintf("%s: n=%d mean=%.4g median=%.4g min=%.4g max=%.4g sd=%.4g cv=%.4g",
		s.Name, s.Count, s.Mean, s.Median, s.Min, s.Max, s.StdDev, s.CV)
}
