package metrics

import (
	"fmt"
	"math/rand"
	"sort"

	"popper/internal/table"
)

// This file implements the *statistical* reproducibility method the
// paper contrasts with controlled experiments: "after taking a
// significant number of samples, the claims of the behavior of each
// system are formed in statistical terms, e.g. with 95% confidence one
// system is 10x better than the other."

// Comparison is a statistical claim about two systems' samples.
type Comparison struct {
	// Factor is the point estimate of how many times better (lower) B's
	// central value is than A's: mean(A)/mean(B) for a lower-is-better
	// metric such as runtime.
	Factor float64
	// Lo and Hi bound the factor at the requested confidence.
	Lo, Hi float64
	// Confidence in (0,1), e.g. 0.95.
	Confidence float64
}

// Better reports whether B beats A at the stated confidence (the whole
// interval lies above 1).
func (c Comparison) Better() bool { return c.Lo > 1 }

// String renders the claim the way the paper phrases it.
func (c Comparison) String() string {
	return fmt.Sprintf("with %.0f%% confidence, B is %.2fx better than A (CI [%.2f, %.2f])",
		c.Confidence*100, c.Factor, c.Lo, c.Hi)
}

// BootstrapCI estimates a confidence interval for a statistic of the
// samples by seeded bootstrap resampling (deterministic for a given
// seed, as everything in this toolchain must be).
func BootstrapCI(samples []float64, stat func([]float64) float64, iters int, conf float64, seed int64) (lo, hi float64, err error) {
	if len(samples) < 2 {
		return 0, 0, fmt.Errorf("metrics: bootstrap needs at least 2 samples, have %d", len(samples))
	}
	if iters < 100 {
		return 0, 0, fmt.Errorf("metrics: bootstrap needs at least 100 iterations")
	}
	if conf <= 0 || conf >= 1 {
		return 0, 0, fmt.Errorf("metrics: confidence %g out of (0,1)", conf)
	}
	rng := rand.New(rand.NewSource(seed))
	stats := make([]float64, iters)
	resample := make([]float64, len(samples))
	for i := 0; i < iters; i++ {
		for j := range resample {
			resample[j] = samples[rng.Intn(len(samples))]
		}
		stats[i] = stat(resample)
	}
	sort.Float64s(stats)
	alpha := (1 - conf) / 2
	loIdx := int(alpha * float64(iters))
	hiIdx := int((1 - alpha) * float64(iters))
	if hiIdx >= iters {
		hiIdx = iters - 1
	}
	return stats[loIdx], stats[hiIdx], nil
}

// CompareSystems forms the statistical claim "B is X times better than
// A" for a lower-is-better metric (runtime, latency): the factor is
// mean(A)/mean(B), bounded by a bootstrap over both sample sets.
func CompareSystems(a, b []float64, conf float64, seed int64) (Comparison, error) {
	if len(a) < 2 || len(b) < 2 {
		return Comparison{}, fmt.Errorf("metrics: need at least 2 samples per system (have %d, %d)", len(a), len(b))
	}
	mb := table.Mean(b)
	if mb == 0 || table.Mean(a) == 0 {
		return Comparison{}, fmt.Errorf("metrics: zero-mean samples")
	}
	// Bootstrap the ratio jointly: resample both sides each iteration.
	if conf <= 0 || conf >= 1 {
		return Comparison{}, fmt.Errorf("metrics: confidence %g out of (0,1)", conf)
	}
	const iters = 2000
	rng := rand.New(rand.NewSource(seed))
	ratios := make([]float64, iters)
	ra := make([]float64, len(a))
	rb := make([]float64, len(b))
	for i := 0; i < iters; i++ {
		for j := range ra {
			ra[j] = a[rng.Intn(len(a))]
		}
		for j := range rb {
			rb[j] = b[rng.Intn(len(b))]
		}
		denom := table.Mean(rb)
		if denom == 0 {
			denom = 1e-300
		}
		ratios[i] = table.Mean(ra) / denom
	}
	sort.Float64s(ratios)
	alpha := (1 - conf) / 2
	c := Comparison{
		Factor:     table.Mean(a) / mb,
		Lo:         ratios[int(alpha*iters)],
		Hi:         ratios[min(iters-1, int((1-alpha)*iters))],
		Confidence: conf,
	}
	return c, nil
}
