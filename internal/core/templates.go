package core

import (
	"fmt"
	"sort"
	"strings"
)

// Template is one curated, Popperized experiment — the units behind
// `popper experiment list` and `popper add <template> <name>`
// (Listing lst:poppercli). Each template carries the convention files
// it instantiates and an executable binding that drives the simulated
// substrates when the experiment runs.
type Template struct {
	Name        string
	Description string
	// files returns the experiment-relative convention files.
	files func() map[string]string
	// run is the executable binding (see executors.go).
	run Executor
}

// registry holds the paper's template list (Listing lst:poppercli names
// exactly these nine) plus jupyter-bww from the data-science use case
// and adhoc, the runnable skeleton Popperize instantiates.
var registry = map[string]*Template{}

func register(t *Template) {
	if _, dup := registry[t.Name]; dup {
		panic("core: duplicate template " + t.Name)
	}
	registry[t.Name] = t
}

// Templates lists available template names, sorted — the output of
// `popper experiment list`.
func Templates() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TemplateByName resolves a template.
func TemplateByName(name string) (*Template, error) {
	t, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown template %q (try `popper experiment list`)", name)
	}
	return t, nil
}

// FormatTemplateList renders the template table the CLI prints.
func FormatTemplateList() string {
	var sb strings.Builder
	sb.WriteString("-- available templates ---------------\n")
	names := Templates()
	for i, n := range names {
		fmt.Fprintf(&sb, "%-18s", n)
		if (i+1)%3 == 0 || i == len(names)-1 {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// AddExperiment instantiates a template under experiments/<name>/ —
// `popper add <template> <name>`.
func (p *Project) AddExperiment(template, name string) error {
	if name == "" || strings.ContainsAny(name, "/ \t") {
		return fmt.Errorf("core: invalid experiment name %q", name)
	}
	t, err := TemplateByName(template)
	if err != nil {
		return err
	}
	for _, existing := range p.Experiments() {
		if existing == name {
			return fmt.Errorf("core: experiment %q already exists", name)
		}
	}
	for rel, content := range t.files() {
		// Templates refer to their instantiation as <experiment> (e.g. the
		// `popper run` line in run.sh); bind the placeholder to the name.
		p.Files[expPath(name, rel)] = []byte(strings.ReplaceAll(content, "<experiment>", name))
	}
	return nil
}

// TemplateOf returns the template an experiment was instantiated from
// (recorded in its vars.yml).
func (p *Project) TemplateOf(name string) (*Template, error) {
	params, err := p.Params(name)
	if err != nil {
		return nil, err
	}
	tname, ok := params["template"]
	if !ok {
		return nil, fmt.Errorf("core: experiment %q does not record its template in vars.yml", name)
	}
	return TemplateByName(tname)
}

// Popperize wraps an ad-hoc experiment (loose files, e.g. scripts and
// spreadsheets) into the convention: the files move under
// experiments/<name>/, and skeleton orchestration, parametrization and
// validation files are added for the author to fill in. It returns the
// number of convention files that had to be created — the "effort"
// measure of the paper's MPI use case.
func (p *Project) Popperize(name string, adhoc map[string][]byte) (created int, err error) {
	if name == "" || strings.ContainsAny(name, "/ \t") {
		return 0, fmt.Errorf("core: invalid experiment name %q", name)
	}
	for _, existing := range p.Experiments() {
		if existing == name {
			return 0, fmt.Errorf("core: experiment %q already exists", name)
		}
	}
	for rel, content := range adhoc {
		p.Files[expPath(name, rel)] = content
	}
	skeletons := map[string]string{
		"run.sh": "#!/bin/sh\n# Replay the archived ad-hoc artifacts on the simulated substrate\n# and regenerate results.csv and the figures from them.\npopper run " + name + "\n",
		"setup.yml": "- name: setup\n  hosts: all\n  tasks:\n    - name: sanitize environment\n      ping:\n",
		"vars.yml":  "template: adhoc\nmachine: cloudlab-c220g1\ntrials: 3\nseed: 42\n",
		"validations.aver": "# Every archived artifact was replayed and measured; tighten these\n" +
			"# into the experiment's real findings as they are codified.\n" +
			"expect count(*) > 0;\nwhen file=* expect bytes >= 0\n",
		"datasets/.gitkeep": "",
	}
	for rel, content := range skeletons {
		path := expPath(name, rel)
		if _, exists := p.Files[path]; !exists {
			p.Files[path] = []byte(content)
			created++
		}
	}
	return created, nil
}

// --- template definitions -------------------------------------------------

// commonFiles builds the standard convention files around a template.
func commonFiles(template, varsYml, validations, readme string) func() map[string]string {
	return func() map[string]string {
		return map[string]string{
			"run.sh":            "#!/bin/sh\npopper run <experiment>\n",
			"setup.yml":         "- name: provision\n  hosts: all\n  tasks:\n    - name: sanity ping\n      ping:\n",
			"vars.yml":          "template: " + template + "\n" + varsYml,
			"validations.aver":  validations,
			"datasets/.gitkeep": "",
			"README.md":         readme,
		}
	}
}

func init() {
	register(&Template{
		Name:        "gassyfs",
		Description: "Scalability of the GassyFS in-memory distributed filesystem (compile-Git workload)",
		files: commonFiles("gassyfs",
			"machine: cloudlab-c220g1\nnodes: [1, 2, 4, 8]\nseed: 42\nsources: 96\nsegment_mb: 256\n",
			"# the paper's Listing lst:aver-assertion\nwhen\n  workload=* and machine=*\nexpect\n  sublinear(nodes,time)\n",
			"# GassyFS scalability\n\nCompiles Git on GassyFS over increasing GASNet cluster sizes.\n"),
		run: runGassyfs,
	})
	register(&Template{
		Name:        "torpor",
		Description: "Cross-platform performance variability profiles (stress-ng battery)",
		files: commonFiles("torpor",
			"base: xeon-2005\nmachines: [cloudlab-c220g1]\nops: 100\nseed: 42\nbucket: 0.1\n",
			"when machine=* expect speedup > 1;\nwhen machine=* expect within(speedup, 0.5, 20)\n",
			"# Torpor\n\nQuantifies per-stressor speedup of newer platforms against a 10-year-old Xeon.\n"),
		run: runTorpor,
	})
	register(&Template{
		Name:        "mpi-comm-variability",
		Description: "MPI noisy-neighbour communication variability (LULESH proxy + mpiP)",
		files: commonFiles("mpi-comm-variability",
			"machine: ec2-m4\nranks: 8\nruns: 10\niterations: 5\nproblem_size: 30\nseed: 42\n",
			"when noisy='no' expect cv(time) < 0.1;\nwhen noisy='yes' expect cv(time) > 0.1;\nwhen noisy=* expect count(*) >= 5\n",
			"# MPI communication variability\n\nRuns a LULESH-like proxy repeatedly with and without noisy neighbours.\n"),
		run: runMPIVariability,
	})
	register(&Template{
		Name:        "jupyter-bww",
		Description: "Big Weather Web air-temperature analysis (NCEP/NCAR-style reanalysis)",
		files: commonFiles("jupyter-bww",
			"days: 72\nlat_step: 10\nlon_step: 30\nseed: 7\ndataset: air-temperature\n",
			"expect within(global_mean, 275, 300);\nexpect amp_north > amp_south\n",
			"# BWW air-temperature analysis\n\nSeasonal climatology of a reanalysis-style dataset.\n"),
		run: runBWW,
	})
	register(&Template{
		Name:        "cloverleaf",
		Description: "CloverLeaf-style hydrodynamics proxy scaling",
		files: commonFiles("cloverleaf",
			"machine: probe-opteron\nnodes: [1, 2, 4, 8]\niterations: 5\nproblem_size: 24\nseed: 42\n",
			"expect sublinear(nodes,time) and decreasing(nodes,time)\n",
			"# CloverLeaf proxy\n\nStrong-scaling of a structured hydrodynamics stencil.\n"),
		run: runCloverleaf,
	})
	register(&Template{
		Name:        "spark-standalone",
		Description: "Distributed word-count on a standalone analytics cluster",
		files: commonFiles("spark-standalone",
			"machine: cloudlab-c220g1\nnodes: [1, 2, 4, 8]\nwords_millions: 64\nseed: 42\n",
			"expect sublinear(nodes,time) and decreasing(nodes,time)\n",
			"# Spark-style word count\n\nMap, shuffle and reduce over a partitioned corpus.\n"),
		run: runSpark,
	})
	register(&Template{
		Name:        "ceph-rados",
		Description: "RADOS-style replicated object-store throughput",
		files: commonFiles("ceph-rados",
			"machine: cloudlab-c8220\nnodes: [4, 8, 16]\nobjects: 64\nobject_mb: 4\nreplicas: 3\nseed: 42\n",
			"expect increasing(nodes, write_mbps) and increasing(nodes, read_mbps)\n",
			"# ceph-rados bench\n\nAggregate object throughput as OSD count grows.\n"),
		run: runCephRados,
	})
	register(&Template{
		Name:        "zlog",
		Description: "CORFU-style shared-log append throughput vs batch size",
		files: commonFiles("zlog",
			"machine: cloudlab-c8220\nstorage_nodes: 4\nbatches: [1, 4, 16, 64]\nappends: 512\nentry_kb: 4\nseed: 42\n",
			"expect increasing(batch, appends_per_sec)\n",
			"# zlog\n\nSequencer-mediated appends to a distributed shared log.\n"),
		run: runZlog,
	})
	register(&Template{
		Name:        "proteustm",
		Description: "ProteusTM-style transactional-memory contention study",
		files: commonFiles("proteustm",
			"machine: cloudlab-c220g1\nthreads: [1, 2, 4, 8, 16]\nops: 200000\nconflict: 0.05\nseed: 42\n",
			"expect increasing(threads, abort_rate);\nexpect within(abort_rate, 0, 1)\n",
			"# ProteusTM\n\nAbort rate and throughput of an STM under growing contention.\n"),
		run: runProteusTM,
	})
	register(&Template{
		Name:        "adhoc",
		Description: "Runnable skeleton for Popperizing an ad-hoc experiment (replays the archived artifacts)",
		files: commonFiles("adhoc",
			"machine: cloudlab-c220g1\ntrials: 3\nseed: 42\n",
			"# Every archived artifact was replayed and measured; tighten these\n"+
				"# into the experiment's real findings as they are codified.\n"+
				"expect count(*) > 0;\nwhen file=* expect bytes >= 0\n",
			"# An ad-hoc experiment, Popperized\n\nDrop the loose scripts and data here; `popper run` replays them\non the simulated substrate and records a provenance table.\n"),
		run: runAdhoc,
	})
	register(&Template{
		Name:        "malacology",
		Description: "Malacology-style programmable-storage metadata service saturation",
		files: commonFiles("malacology",
			"machine: cloudlab-c220g1\nclients: [1, 2, 4, 8, 16, 32]\nops_per_client: 2000\nseed: 42\n",
			"expect sublinear(clients, ops_per_sec)\n",
			"# Malacology\n\nMetadata-service throughput as client count grows past saturation.\n"),
		run: runMalacology,
	})
}
