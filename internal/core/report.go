package core

import (
	"fmt"
	"html"
	"sort"
	"strings"

	"popper/internal/aver"
	"popper/internal/table"
)

// Report renders the repository as one self-contained HTML page: the
// compliance audit, and per experiment its parameters, results table,
// figure (inline SVG when present) and the re-evaluated Aver verdicts.
// This is the "post-mortem reading" surface of the paper's reader
// workflow — everything regenerates from committed artifacts, no live
// services required.
func (p *Project) Report() (string, error) {
	var sb strings.Builder
	sb.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	sb.WriteString("<title>Popper repository report</title>\n<style>\n")
	sb.WriteString(`body{font-family:sans-serif;max-width:60em;margin:2em auto;padding:0 1em}
table{border-collapse:collapse;margin:0.7em 0}
td,th{border:1px solid #bbb;padding:0.25em 0.6em;font-size:90%}
.pass{color:#0a6b22}.fail{color:#a61b1b}
pre{background:#f4f4f4;padding:0.6em;overflow-x:auto}
h2{border-bottom:1px solid #ddd;padding-bottom:0.2em}
`)
	sb.WriteString("</style></head><body>\n")
	sb.WriteString("<h1>Popper repository report</h1>\n")

	// compliance
	rep := p.Check()
	status := `<span class="pass">compliant</span>`
	if !rep.Compliant() {
		status = `<span class="fail">NOT compliant</span>`
	}
	fmt.Fprintf(&sb, "<p>Repository status: %s</p>\n<pre>%s</pre>\n",
		status, html.EscapeString(rep.String()))

	for _, name := range p.Experiments() {
		fmt.Fprintf(&sb, "<h2>experiments/%s</h2>\n", html.EscapeString(name))
		if err := p.reportExperiment(&sb, name); err != nil {
			return "", err
		}
	}
	sb.WriteString("</body></html>\n")
	return sb.String(), nil
}

func (p *Project) reportExperiment(sb *strings.Builder, name string) error {
	// parameters
	params, err := p.Params(name)
	if err == nil {
		keys := make([]string, 0, len(params))
		for k := range params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sb.WriteString("<h3>Parameters</h3>\n<table><tr><th>key</th><th>value</th></tr>\n")
		for _, k := range keys {
			fmt.Fprintf(sb, "<tr><td>%s</td><td>%s</td></tr>\n",
				html.EscapeString(k), html.EscapeString(params[k]))
		}
		sb.WriteString("</table>\n")
	}

	// results + validation
	rawResults, hasResults := p.ExperimentFile(name, "results.csv")
	if !hasResults {
		sb.WriteString("<p><em>No results yet — run the experiment.</em></p>\n")
		return nil
	}
	tb, err := table.ParseCSV(string(rawResults))
	if err != nil {
		return fmt.Errorf("core: %s results.csv: %w", name, err)
	}
	sb.WriteString("<h3>Results</h3>\n")
	htmlTable(sb, tb)

	if rawAver, ok := p.ExperimentFile(name, "validations.aver"); ok {
		sb.WriteString("<h3>Validation</h3>\n<ul>\n")
		results, err := aver.NewEvaluator().CheckAll(string(rawAver), tb)
		if err != nil {
			fmt.Fprintf(sb, "<li class=\"fail\">validation error: %s</li>\n", html.EscapeString(err.Error()))
		} else {
			for _, r := range results {
				class, mark := "pass", "PASS"
				if !r.Passed {
					class, mark = "fail", "FAIL"
				}
				fmt.Fprintf(sb, "<li class=%q>%s — <code>%s</code></li>\n",
					class, mark, html.EscapeString(r.Assertion.Source))
			}
		}
		sb.WriteString("</ul>\n")
	}

	// figure: inline SVG preferred, ASCII fallback
	if svg, ok := p.ExperimentFile(name, "figure.svg"); ok {
		sb.WriteString("<h3>Figure</h3>\n")
		sb.Write(svg) // produced by internal/plot; trusted generated content
	} else if txt, ok := p.ExperimentFile(name, "figure.txt"); ok {
		fmt.Fprintf(sb, "<h3>Figure</h3>\n<pre>%s</pre>\n", html.EscapeString(string(txt)))
	}
	return nil
}

func htmlTable(sb *strings.Builder, tb *table.Table) {
	cols := tb.Columns()
	sb.WriteString("<table><tr>")
	for _, c := range cols {
		fmt.Fprintf(sb, "<th>%s</th>", html.EscapeString(c))
	}
	sb.WriteString("</tr>\n")
	const maxRows = 50
	n := tb.Len()
	shown := n
	if shown > maxRows {
		shown = maxRows
	}
	for r := 0; r < shown; r++ {
		sb.WriteString("<tr>")
		for _, c := range cols {
			fmt.Fprintf(sb, "<td>%s</td>", html.EscapeString(tb.MustCell(r, c).Text()))
		}
		sb.WriteString("</tr>\n")
	}
	sb.WriteString("</table>\n")
	if n > shown {
		fmt.Fprintf(sb, "<p><em>%d of %d rows shown.</em></p>\n", shown, n)
	}
}
