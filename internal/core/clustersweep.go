// Cluster-scale sweep execution: the glue between RunSweep and the
// cluster scheduler (internal/sched) when SweepOptions.Hosts asks for a
// simulated fleet. Provisioning goes through the orchestration
// substrate — orchestrate.Runner.ScaleGroup elastically grows a "sweep"
// inventory group against a cluster provider — so the same machinery
// that configures hosts in playbooks also hands fleets to the
// scheduler. See docs/SCHEDULING.md.

package core

import (
	"popper/internal/cas"
	"popper/internal/cluster"
	"popper/internal/gasnet"
	"popper/internal/orchestrate"
	"popper/internal/pipeline"
	"popper/internal/sched"
)

// DefaultHostProfile is the machine profile sweeps fan across when
// SweepOptions.HostProfile is empty.
const DefaultHostProfile = "cloudlab-c220g1"

// fedSegmentBytes is the per-host gasnet segment a federated sweep
// attaches for cache-chunk exchange. Chunks that no longer fit are
// simply not published — peers recompute instead, a graceful
// degradation that never changes artifacts.
const fedSegmentBytes = 32 << 20

// runSweepCluster provisions opts.Hosts simulated hosts, schedules the
// todo set across them, and executes runConfig in the schedule's
// dispatch order. The schedule consumes virtual time only; runConfig's
// side effects are exactly those of the flat worker-pool path.
func runSweepCluster(env *Env, opts SweepOptions, todo []int, runConfig func(k, host int) error) (*sched.ClusterReport, error) {
	profName := opts.HostProfile
	if profName == "" {
		profName = DefaultHostProfile
	}
	prof, err := cluster.Profile(profName)
	if err != nil {
		return nil, err
	}
	seed := env.Seed
	if opts.Faults != nil {
		seed = opts.Faults.Seed()
	}

	inv := orchestrate.NewInventory()
	runner := orchestrate.NewRunner(inv)
	clus := cluster.New(seed)
	if _, err := runner.ScaleGroup(clus, prof, "sweep", opts.Hosts); err != nil {
		return nil, err
	}

	// Locality hints arrive keyed by configuration index; the scheduler
	// sees the todo-compacted task space (resumed and limited configs
	// are not scheduled), so re-key them.
	var locality []int
	if len(opts.Locality) > 0 {
		locality = make([]int, len(todo))
		for k, i := range todo {
			locality[k] = -1
			if i < len(opts.Locality) {
				locality[k] = opts.Locality[i]
			}
		}
	}

	hosts := inv.HostSpecs("sweep")
	if err := federateSweepCache(opts.Cache, hosts); err != nil {
		return nil, err
	}

	cs, err := sched.NewClusterScheduler(sched.ClusterOptions{
		Hosts:     hosts,
		Placement: opts.Placement,
		Locality:  locality,
		Seed:      seed,
		Faults:    opts.Faults,
		Jobs:      opts.Jobs,
		FailFast:  opts.FailFast,
	})
	if err != nil {
		return nil, err
	}
	_, rep := cs.RunHosted(len(todo), runConfig)
	return rep, nil
}

// federateSweepCache attaches a peer-to-peer federation over the
// fleet's gasnet segments to the shared stage cache: each host
// publishes the chunks of entries it computes, and a host missing an
// entry fetches the chunks from the cheapest holder (alpha-beta
// transfer cost over the machine profiles) instead of recomputing.
// All movement is charged to the hosts' virtual clocks; artifacts are
// unaffected. A fleet whose hosts carry no cluster nodes (a mixed
// inventory) runs unfederated.
func federateSweepCache(cache *pipeline.Cache, hosts []sched.HostSpec) error {
	if cache == nil {
		return nil
	}
	nodes := make([]*cluster.Node, len(hosts))
	profiles := make([]*cluster.MachineProfile, len(hosts))
	for i, h := range hosts {
		if h.Node == nil {
			return nil
		}
		nodes[i] = h.Node
		profiles[i] = h.Profile
	}
	if len(nodes) == 0 {
		return nil
	}
	world, err := gasnet.New(nodes, cluster.NewNetwork(0), nil)
	if err != nil {
		return err
	}
	if err := world.AttachAll(fedSegmentBytes); err != nil {
		return err
	}
	fed, err := cas.NewFederation(cache.Tier(), world, profiles)
	if err != nil {
		return err
	}
	cache.Federate(fed)
	return nil
}
