// Cluster-scale sweep execution: the glue between RunSweep and the
// cluster scheduler (internal/sched) when SweepOptions.Hosts asks for a
// simulated fleet. Provisioning goes through the orchestration
// substrate — orchestrate.Runner.ScaleGroup elastically grows a "sweep"
// inventory group against a cluster provider — so the same machinery
// that configures hosts in playbooks also hands fleets to the
// scheduler. See docs/SCHEDULING.md.

package core

import (
	"popper/internal/cluster"
	"popper/internal/orchestrate"
	"popper/internal/sched"
)

// DefaultHostProfile is the machine profile sweeps fan across when
// SweepOptions.HostProfile is empty.
const DefaultHostProfile = "cloudlab-c220g1"

// runSweepCluster provisions opts.Hosts simulated hosts, schedules the
// todo set across them, and executes runConfig in the schedule's
// dispatch order. The schedule consumes virtual time only; runConfig's
// side effects are exactly those of the flat worker-pool path.
func runSweepCluster(env *Env, opts SweepOptions, todo []int, runConfig func(k int) error) (*sched.ClusterReport, error) {
	profName := opts.HostProfile
	if profName == "" {
		profName = DefaultHostProfile
	}
	prof, err := cluster.Profile(profName)
	if err != nil {
		return nil, err
	}
	seed := env.Seed
	if opts.Faults != nil {
		seed = opts.Faults.Seed()
	}

	inv := orchestrate.NewInventory()
	runner := orchestrate.NewRunner(inv)
	clus := cluster.New(seed)
	if _, err := runner.ScaleGroup(clus, prof, "sweep", opts.Hosts); err != nil {
		return nil, err
	}

	// Locality hints arrive keyed by configuration index; the scheduler
	// sees the todo-compacted task space (resumed and limited configs
	// are not scheduled), so re-key them.
	var locality []int
	if len(opts.Locality) > 0 {
		locality = make([]int, len(todo))
		for k, i := range todo {
			locality[k] = -1
			if i < len(opts.Locality) {
				locality[k] = opts.Locality[i]
			}
		}
	}

	cs, err := sched.NewClusterScheduler(sched.ClusterOptions{
		Hosts:     inv.HostSpecs("sweep"),
		Placement: opts.Placement,
		Locality:  locality,
		Seed:      seed,
		Faults:    opts.Faults,
		Jobs:      opts.Jobs,
	})
	if err != nil {
		return nil, err
	}
	_, rep := cs.Run(len(todo), runConfig)
	return rep, nil
}
