package core

import (
	"fmt"
	"strings"

	"popper/internal/ci"
	"popper/internal/orchestrate"
)

// CIRunner returns a ci.Runner that understands the commands a Popper
// repository's .travis.yml uses:
//
//	popper check                  — repository compliance audit
//	popper lint                   — parse/lint every setup.yml
//	popper run <experiment>       — full experiment execution
//	./experiments/<name>/run.sh   — same as `popper run <name>`
//	./paper/build.sh              — render the manuscript
//
// This is the glue of the paper's tier-1 automated validation: every
// commit re-checks that the paper builds, the orchestration files parse,
// and (when requested) the experiments still run and validate.
func CIRunner(env *Env) ci.Runner {
	return func(cmd string, cienv map[string]string, files map[string][]byte) (string, error) {
		proj, err := Load(files)
		if err != nil {
			return "", err
		}
		fields := strings.Fields(cmd)
		if len(fields) == 0 {
			return "", fmt.Errorf("core: empty CI command")
		}
		switch {
		case cmd == "popper check":
			rep := proj.Check()
			if !rep.Compliant() {
				return rep.String(), fmt.Errorf("core: repository is not Popper-compliant")
			}
			return rep.String(), nil
		case cmd == "popper lint":
			var out strings.Builder
			for _, name := range proj.Experiments() {
				raw, ok := proj.ExperimentFile(name, "setup.yml")
				if !ok {
					continue
				}
				if _, err := orchestrate.ParsePlaybook(string(raw)); err != nil {
					return out.String(), fmt.Errorf("core: %s: %w", name, err)
				}
				fmt.Fprintf(&out, "%s: setup.yml ok\n", name)
			}
			return out.String(), nil
		case fields[0] == "popper" && len(fields) == 3 && fields[1] == "run":
			return runForCI(proj, fields[2], env, cienv)
		case strings.HasPrefix(cmd, "./experiments/") && strings.HasSuffix(cmd, "/run.sh"):
			name := strings.TrimSuffix(strings.TrimPrefix(cmd, "./experiments/"), "/run.sh")
			return runForCI(proj, name, env, cienv)
		case cmd == "./paper/build.sh" || cmd == "popper-build-paper":
			if err := proj.BuildPaper(); err != nil {
				return "", err
			}
			// propagate the built artifact back into the checkout view
			files[PaperDir+"/paper.pdf"] = proj.Files[PaperDir+"/paper.pdf"]
			return "paper built", nil
		default:
			return "", fmt.Errorf("core: unknown CI command %q", cmd)
		}
	}
}

func runForCI(proj *Project, name string, env *Env, cienv map[string]string) (string, error) {
	// matrix entries can override experiment parameters (NODES=4 ...)
	for k, v := range cienv {
		key := strings.ToLower(k)
		if _, err := proj.Params(name); err == nil {
			if err := proj.SetParam(name, key, v); err != nil {
				return "", err
			}
		}
	}
	res, err := proj.RunExperiment(name, env)
	if err != nil {
		return res.Record.Log, err
	}
	return res.Record.Log, nil
}
