package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"popper/internal/aver"
	"popper/internal/dataset"
	"popper/internal/fault"
	"popper/internal/metrics"
	"popper/internal/orchestrate"
	"popper/internal/pipeline"
	"popper/internal/table"
)

// Env is the execution environment experiments run against: the
// simulation seed and the (optional) dataset store experiments resolve
// their data references from.
type Env struct {
	Seed  int64
	Store *dataset.Store
}

// ExecState is what an experiment's executable binding sees.
type ExecState struct {
	Ctx     *pipeline.Context
	Env     *Env
	Project *Project
	Name    string // experiment name
	// Results must be set by the executor; the post-run stage writes it
	// to results.csv.
	Results *table.Table
	// FigureASCII/FigureSVG, when set, are written to figure.txt /
	// figure.svg by the post-run stage.
	FigureASCII string
	FigureSVG   string

	// Streaming validation (RunOptions.Stream): the run stage attaches an
	// incremental Aver evaluator before invoking the executor, and the
	// executor reports progress through Checkpoint.
	stream    *aver.StreamEvaluator
	failFast  bool
	cancelled *aver.StreamViolation
}

// ErrValidationCancelled marks a run cancelled mid-flight because
// streaming validation proved an assertion unsatisfiable (fail-fast).
var ErrValidationCancelled = errors.New("core: run cancelled by streaming validation")

// Checkpoint lets an executor hand its partial Results to the streaming
// validator mid-run. Without streaming it is a no-op. New rows are
// evaluated incrementally in O(delta); if fail-fast is armed and an
// assertion group can no longer be satisfied, Checkpoint returns an
// error wrapping ErrValidationCancelled and the executor should stop
// and propagate it. Executors call it at natural batch boundaries
// (after appending each configuration's rows); calling with Results
// unset is harmless.
func (x *ExecState) Checkpoint() error {
	if x.stream == nil || x.Results == nil {
		return nil
	}
	if err := x.stream.Observe(x.Results); err != nil {
		// A recheck divergence means the incremental engine disagrees
		// with the batch evaluator — fail loudly, never silently.
		return err
	}
	if v := x.stream.Unsatisfiable(); v != nil && x.failFast {
		x.cancelled = v
		return fmt.Errorf("%w after %d rows: %v", ErrValidationCancelled, v.Row, v.Err())
	}
	return nil
}

// Executor is the executable binding of a template.
type Executor func(*ExecState) error

// Param returns an experiment parameter with a default.
func (x *ExecState) Param(key, def string) string { return x.Ctx.Param(key, def) }

// IntParam parses an integer parameter.
func (x *ExecState) IntParam(key string, def int) (int, error) {
	s := x.Param(key, "")
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, fmt.Errorf("core: parameter %s=%q is not an integer", key, s)
	}
	return v, nil
}

// FloatParam parses a float parameter.
func (x *ExecState) FloatParam(key string, def float64) (float64, error) {
	s := x.Param(key, "")
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("core: parameter %s=%q is not a number", key, s)
	}
	return v, nil
}

// IntsParam parses a comma-separated integer list parameter.
func (x *ExecState) IntsParam(key string, def []int) ([]int, error) {
	s := x.Param(key, "")
	if s == "" {
		return def, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("core: parameter %s has non-integer element %q", key, part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return def, nil
	}
	return out, nil
}

// StringsParam parses a comma-separated string list parameter.
func (x *ExecState) StringsParam(key string, def []string) []string {
	s := x.Param(key, "")
	if s == "" {
		return def
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	if len(out) == 0 {
		return def
	}
	return out
}

// Seed combines the environment seed with the experiment's seed param.
func (x *ExecState) Seed() int64 {
	s, err := x.IntParam("seed", 1)
	if err != nil {
		s = 1
	}
	return x.Env.Seed*1000003 + int64(s)
}

// RunResult is the outcome of RunExperiment.
type RunResult struct {
	Record     pipeline.Record
	Validation []aver.Result
	// Cancelled is set when streaming validation cancelled the run
	// mid-flight (fail-fast): the violation that doomed it.
	Cancelled *aver.StreamViolation
}

// Passed reports whether the pipeline and all validations succeeded.
func (r RunResult) Passed() bool {
	return !r.Record.Failed() && aver.AllPassed(r.Validation)
}

// RunOptions tunes one experiment execution.
type RunOptions struct {
	// Cache, when set, replays unchanged setup/run stages from the
	// content-addressed stage cache instead of re-executing them. The
	// cache key covers the experiment's input files, its parameters and
	// the environment seed; it assumes the dataset store contents are
	// stable for the cache's lifetime.
	Cache *pipeline.Cache
	// Jobs bounds intra-run concurrency (chunked Aver validation);
	// values <= 1 keep validation strictly serial.
	Jobs int
	// CacheHost is the simulated host this run executes on; a federated
	// Cache accounts peer-to-peer entry transfers on its virtual clock.
	// Negative disables federated accounting (the flat, un-clustered
	// path). Ignored when Cache is nil or has no federation attached.
	CacheHost int
	// Overrides are parameter overrides applied on top of vars.yml —
	// one sweep configuration.
	Overrides map[string]string
	// Faults is the deterministic chaos injector stage execution
	// consults (sites "pipeline/<scope>/<stage>"); nil disables
	// injection. Its fingerprint is mixed into the stage-cache salt so
	// chaos runs never share cache entries with clean runs.
	Faults *fault.Injector
	// FaultScope names this run in fault sites; empty means the
	// experiment name. Sweeps scope it per configuration
	// ("<experiment>/<idx>") so concurrent configurations draw from
	// independent, deterministic fault streams.
	FaultScope string
	// Retry is the per-stage retry policy applied to every defined
	// stage except teardown (Max 0 disables retrying).
	Retry fault.Retry
	// StageDeadline bounds each stage's virtual elapsed seconds (0 =
	// unbounded). Only injected latency moves the virtual clock, so
	// deadlines are deterministic functions of the fault schedule.
	StageDeadline float64
	// Stream evaluates validations.aver incrementally while the
	// experiment runs: executors that Checkpoint their partial results
	// get each appended batch checked in O(delta). The final batch
	// validation still runs unchanged — streaming only adds early
	// visibility, never replaces the authoritative verdict.
	Stream bool
	// FailFast (with Stream) cancels the run as soon as an assertion
	// group is proven unsatisfiable: the run stage fails with
	// ErrValidationCancelled instead of burning the remaining budget.
	FailFast bool
	// RecordMetrics, when set, publishes companion gauges into the
	// run's metrics registry next to the cache_* family — `popper run
	// -scrub-interval` wires the scrubber's scrub_* counters here.
	RecordMetrics func(*metrics.Registry)
}

// RunExperiment executes one experiment end to end through the staged
// pipeline: setup (orchestration check + dataset installation), run (the
// template's executable binding, which writes results.csv and figures),
// post-run (results integrity), validate (Aver over results.csv).
func (p *Project) RunExperiment(name string, env *Env) (RunResult, error) {
	return p.RunExperimentOpts(name, env, RunOptions{})
}

// RunExperimentOpts is RunExperiment with explicit options (stage
// caching, validation concurrency, parameter overrides).
func (p *Project) RunExperimentOpts(name string, env *Env, opts RunOptions) (RunResult, error) {
	if env == nil {
		env = &Env{Seed: 1}
	}
	tmpl, err := p.TemplateOf(name)
	if err != nil {
		return RunResult{}, err
	}
	params, err := p.Params(name)
	if err != nil {
		return RunResult{}, err
	}
	for k, v := range opts.Overrides {
		params[k] = v
	}
	ctx := &pipeline.Context{
		Params:    params,
		Workspace: p.Files,
		Metrics:   metrics.NewRegistry(metrics.Labels{"experiment": name}, nil),
	}
	state := &ExecState{Ctx: ctx, Env: env, Project: p, Name: name}
	var validation []aver.Result

	pl := pipeline.New(name)
	pl.RecordExtra = opts.RecordMetrics
	if opts.Cache != nil {
		pl.Cache = opts.Cache
		pl.CacheSalt = fmt.Sprintf("env-seed=%d", env.Seed)
		pl.CacheFilter = experimentInputFilter(name)
		pl.CacheHost = opts.CacheHost
	}
	pl.AddStage("setup", func(c *pipeline.Context) error {
		// Orchestration integrity: the playbook must parse and lint
		// against a minimal inventory (syntax tier of CI).
		if raw, ok := p.ExperimentFile(name, "setup.yml"); ok {
			pb, err := orchestrate.ParsePlaybook(string(raw))
			if err != nil {
				return err
			}
			inv := orchestrate.NewInventory()
			if err := inv.Add(orchestrate.NewHost("localhost", nil)); err != nil {
				return err
			}
			if err := orchestrate.NewRunner(inv).Check(pb); err != nil {
				return err
			}
			c.Logf("setup.yml: %d plays ok", len(pb.Plays))
		}
		// Dataset references: resolve and install from the store.
		refs, err := p.DatasetRefs(name)
		if err != nil {
			return err
		}
		if len(refs) > 0 && env.Store == nil {
			return fmt.Errorf("core: experiment %s references datasets but no store is configured", name)
		}
		for _, ref := range refs {
			mgr := dataset.NewManager(env.Store)
			ws := map[string][]byte{}
			pinned, err := mgr.Install(ref, ws)
			if err != nil {
				return err
			}
			for rel, content := range ws {
				p.Files[expPath(name, rel)] = content
			}
			if err := mgr.Verify(ref.Name, workspaceView(p, name)); err != nil {
				return err
			}
			c.Logf("installed dataset %s", pinned)
		}
		return nil
	})
	pl.AddStage("run", func(c *pipeline.Context) error {
		// Fresh stream per attempt: a retried run stage re-executes the
		// executor from scratch, so incremental state must restart too.
		state.stream, state.cancelled, state.failFast = nil, nil, opts.FailFast
		if opts.Stream {
			if raw, ok := p.ExperimentFile(name, "validations.aver"); ok {
				st, err := aver.NewEvaluator().Stream(string(raw), aver.StreamOptions{})
				if err == nil {
					state.stream = st
				}
				// A parse error is not reported here: the validate stage
				// fails with the identical message whether or not the run
				// streamed, keeping verdicts independent of -stream.
			}
		}
		if err := tmpl.run(state); err != nil {
			return err
		}
		// Final observation of any tail rows the executor appended after
		// its last checkpoint — observe only, never cancel: the work is
		// already done, so the batch validate stage owns the verdict.
		if state.stream != nil && state.Results != nil {
			if err := state.stream.Observe(state.Results); err != nil {
				return err
			}
			c.Logf("streamed validation: %d rows, %d incremental assertions, %d rechecks",
				state.stream.Rows(), state.stream.Incremental(), state.stream.Rechecks())
		}
		// Everything downstream (post-run, validate, cached replay)
		// reads from the workspace, so the run stage is the single
		// writer of the experiment's outputs.
		if state.Results == nil || state.Results.Len() == 0 {
			return fmt.Errorf("core: experiment %s produced no results", name)
		}
		c.Workspace[expPath(name, "results.csv")] = []byte(state.Results.CSV())
		if state.FigureASCII != "" {
			c.Workspace[expPath(name, "figure.txt")] = []byte(state.FigureASCII)
		}
		if state.FigureSVG != "" {
			c.Workspace[expPath(name, "figure.svg")] = []byte(state.FigureSVG)
		}
		return nil
	})
	pl.AddStage("post-run", func(c *pipeline.Context) error {
		raw, ok := c.Workspace[expPath(name, "results.csv")]
		if !ok {
			return fmt.Errorf("core: experiment %s produced no results", name)
		}
		results, err := table.ParseCSV(string(raw))
		if err != nil {
			return fmt.Errorf("core: experiment %s results.csv: %w", name, err)
		}
		c.Logf("results: %d rows", results.Len())
		return nil
	})
	pl.AddStage("validate", func(c *pipeline.Context) error {
		raw, ok := p.ExperimentFile(name, "validations.aver")
		if !ok {
			c.Logf("no validations.aver; skipping result validation")
			return nil
		}
		resRaw, ok := c.Workspace[expPath(name, "results.csv")]
		if !ok {
			return fmt.Errorf("core: experiment %s has no results to validate", name)
		}
		resultsTable, err := table.ParseCSV(string(resRaw))
		if err != nil {
			return err
		}
		ev := aver.NewEvaluator()
		ev.Jobs = opts.Jobs
		results, err := ev.CheckAll(string(raw), resultsTable)
		if err != nil {
			return err
		}
		validation = results
		c.Logf("%s", aver.FormatResults(results))
		if !aver.AllPassed(results) {
			return fmt.Errorf("core: experiment %s failed result validation:\n%s",
				name, aver.FormatResults(results))
		}
		return nil
	})
	// The expensive stages are cacheable; validation always re-checks
	// (it feeds the RunResult.Validation side channel and embodies the
	// paper's "assertions are re-checked on every change").
	pl.CacheStage("setup", "core/setup@v1", []string{"seed"})
	pl.CacheStage("run", "core/run/"+tmpl.Name+"@v1", nil)
	pl.CacheStage("post-run", "core/post-run@v1", nil)

	// Resilience envelope: chaos injection, per-stage retry and
	// deadlines. Teardown is exempt from retrying — it must run exactly
	// once whatever happened before it.
	if opts.Faults != nil {
		pl.Faults = opts.Faults
		pl.FaultScope = opts.FaultScope
		pl.CacheSalt += "|faults=" + opts.Faults.Fingerprint()
	}
	for _, st := range pl.Stages() {
		if st == "teardown" {
			continue
		}
		if opts.Retry.Max > 0 {
			pl.RetryStage(st, opts.Retry)
		}
		if opts.StageDeadline > 0 {
			pl.StageDeadline(st, opts.StageDeadline)
		}
	}

	rec := pl.Run(ctx)
	return RunResult{Record: rec, Validation: validation, Cancelled: state.cancelled}, rec.Err
}

// experimentInputFilter admits the experiment's input files — its
// convention artifacts and datasets — while excluding generated outputs
// (results.csv, figures, per-config sweep directories) and every other
// experiment's files, so a re-run keyed on unchanged inputs replays
// from cache even after outputs landed in the workspace.
func experimentInputFilter(name string) func(string) bool {
	prefix := ExperimentDir + "/" + name + "/"
	return func(path string) bool {
		if !strings.HasPrefix(path, prefix) {
			return false
		}
		switch rest := strings.TrimPrefix(path, prefix); {
		case rest == "results.csv" || rest == "figure.txt" || rest == "figure.svg":
			return false
		case strings.HasPrefix(rest, SweepDir+"/"):
			return false
		}
		return true
	}
}

// workspaceView exposes one experiment's files with experiment-relative
// paths (for dataset verification).
func workspaceView(p *Project, name string) map[string][]byte {
	prefix := ExperimentDir + "/" + name + "/"
	out := make(map[string][]byte)
	for path, content := range p.Files {
		if strings.HasPrefix(path, prefix) {
			out[strings.TrimPrefix(path, prefix)] = content
		}
	}
	return out
}
