package core

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"popper/internal/aver"
	"popper/internal/table"
)

// averBenchSrc mirrors the streaming benchmark source in
// internal/aver: four incrementally-maintained assertions over the
// sweep-shaped observation schema.
const averBenchSrc = `
expect count(time) > 0
expect within(time, 0, 1000)
when workload=* expect avg(time) < 200
when machine=* expect min(time) >= 0
`

// averBenchBatch is the appended-batch size (one checkpoint of new
// observations).
const averBenchBatch = 256

func averBenchRow(t *table.Table, i int) {
	workloads := [...]string{"compile", "fsbench", "rados", "query", "sort", "join", "scan", "merge"}
	machines := [...]string{"cloudlab", "ec2", "chameleon", "probe"}
	t.MustAppend(
		table.String(workloads[i%len(workloads)]),
		table.String(machines[(i/3)%len(machines)]),
		table.Number(float64(int(1)<<uint(i%4))),
		table.Number(float64(i%97)+0.5),
	)
}

func averBenchTable(n int) *table.Table {
	t := table.New("workload", "machine", "nodes", "time")
	for i := 0; i < n; i++ {
		averBenchRow(t, i)
	}
	return t
}

// averStreamSpeedup times validating one appended batch at window size
// n, both ways: the streaming evaluator's incremental step vs a full
// CheckAll over the window.
func averStreamSpeedup(tb testing.TB, n, reps int) (incNs, batchNs float64) {
	tb.Helper()
	grow := averBenchTable(n)
	sev, err := aver.NewEvaluator().Stream(averBenchSrc, aver.StreamOptions{RecheckEvery: -1})
	if err != nil {
		tb.Fatal(err)
	}
	if err := sev.Observe(grow); err != nil {
		tb.Fatal(err)
	}
	appendRows := func(k int) {
		base := grow.Len()
		for i := 0; i < k; i++ {
			averBenchRow(grow, base+i)
		}
	}
	appendRows(averBenchBatch) // warm the bind path
	if err := sev.Observe(grow); err != nil {
		tb.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < reps; i++ {
		appendRows(averBenchBatch)
		if err := sev.Observe(grow); err != nil {
			tb.Fatal(err)
		}
	}
	incNs = float64(time.Since(start).Nanoseconds()) / float64(reps)

	ev := aver.NewEvaluator()
	base := averBenchTable(n)
	if _, err := ev.CheckAll(averBenchSrc, base); err != nil {
		tb.Fatal(err)
	}
	const batchReps = 3
	start = time.Now()
	for i := 0; i < batchReps; i++ {
		if _, err := ev.CheckAll(averBenchSrc, base); err != nil {
			tb.Fatal(err)
		}
	}
	batchNs = float64(time.Since(start).Nanoseconds()) / float64(batchReps)
	return incNs, batchNs
}

// averBenchRecord is one BENCH_aver.json entry.
type averBenchRecord struct {
	NsPerOp          float64 `json:"ns_per_op"`
	Speedup          float64 `json:"incremental_speedup,omitempty"`
	RowsExecuted     int64   `json:"rows_executed,omitempty"`
	ComputeSaved     float64 `json:"compute_saved,omitempty"`
	Configs          int     `json:"configs,omitempty"`
	ViolatingConfigs int     `json:"violating_configs,omitempty"`
}

// failFastBenchConfigs enumerates n configurations of which every
// fifth (seeded by position — deterministic across runs) violates
// `expect nodes < 16` at its second executor iteration.
func failFastBenchConfigs(n int) (configs []map[string]string, violating int) {
	for i := 0; i < n; i++ {
		nodes := "1,2,4,8"
		if i%5 == 0 {
			nodes = "1,32,4,8"
			violating++
		}
		configs = append(configs, map[string]string{"nodes": nodes})
	}
	return configs, violating
}

// TestWriteAverBenchJSON records the streaming-validation perf
// trajectory when BENCH_JSON names an output file (`make bench-json`):
// incremental vs full-table per-batch validation cost at 1k/100k/1M
// observations, and the compute saved by fail-fast cancellation on a
// 20%-violating sweep. BENCH_SMOKE=1 (wired into `make verify`)
// shrinks the matrix so regressions fail the full loop quickly.
func TestWriteAverBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_JSON")
	if out == "" {
		t.Skip("set BENCH_JSON=<path> to record streaming-validation benchmarks")
	}
	smoke := os.Getenv("BENCH_SMOKE") != ""
	sizes := []struct {
		name string
		n    int
		reps int
	}{{"1k", 1_000, 200}, {"100k", 100_000, 100}, {"1M", 1_000_000, 50}}
	sweepConfigs := 20
	if smoke {
		sizes = []struct {
			name string
			n    int
			reps int
		}{{"1k", 1_000, 10}, {"10k", 10_000, 10}}
		sweepConfigs = 5
	}
	records := make(map[string]averBenchRecord)

	var lastSpeedup float64
	for _, sz := range sizes {
		inc, batch := averStreamSpeedup(t, sz.n, sz.reps)
		lastSpeedup = batch / inc
		records["BenchmarkAverStreaming/incremental-"+sz.name] = averBenchRecord{
			NsPerOp: inc, Speedup: lastSpeedup,
		}
		records["BenchmarkAverStreaming/batch-"+sz.name] = averBenchRecord{NsPerOp: batch}
	}
	if !smoke && lastSpeedup < 10 {
		t.Errorf("incremental streaming speedup %.1fx at 1M observations, want >= 10x", lastSpeedup)
	}

	// Fail-fast compute saved: every config runs to its verdict — no
	// pool-level stop — so the saving is purely cancelled iterations.
	configs, violating := failFastBenchConfigs(sweepConfigs)
	runAll := func(failFast bool) (rows int64, elapsed time.Duration) {
		start := time.Now()
		for i, cfg := range configs {
			p := failFastProject(t)
			p.SetParam("sweep", "nodes", cfg["nodes"])
			p.Files[expPath("sweep", "validations.aver")] = []byte("expect nodes < 16\n")
			res, err := p.RunExperimentOpts("sweep", &Env{Seed: int64(i + 1)},
				RunOptions{Stream: failFast, FailFast: failFast})
			if i%5 != 0 && err != nil {
				t.Fatalf("passing config %d failed: %v", i, err)
			}
			if res.Cancelled != nil {
				rows += int64(res.Cancelled.Row)
			} else {
				rows += 4 // the full nodes axis ran (violating configs fail batch validation after it)
			}
		}
		return rows, time.Since(start)
	}
	batchRows, batchTime := runAll(false)
	ffRows, ffTime := runAll(true)
	if ffRows >= batchRows {
		t.Errorf("fail-fast executed %d rows vs batch %d — cancellation saved nothing", ffRows, batchRows)
	}
	records["BenchmarkFailFastSweep/batch"] = averBenchRecord{
		NsPerOp: float64(batchTime.Nanoseconds()), RowsExecuted: batchRows,
		Configs: len(configs), ViolatingConfigs: violating,
	}
	records["BenchmarkFailFastSweep/fail-fast"] = averBenchRecord{
		NsPerOp: float64(ffTime.Nanoseconds()), RowsExecuted: ffRows,
		ComputeSaved: 1 - float64(ffRows)/float64(batchRows),
		Configs:      len(configs), ViolatingConfigs: violating,
	}

	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d benchmark records to %s", len(records), out)
}
