package core

import (
	"strings"
	"testing"

	"popper/internal/aver"
	"popper/internal/table"
)

// runTemplate instantiates a template, shrinks its parameters for test
// speed, runs it end to end and asserts the pipeline + validations pass.
func runTemplate(t *testing.T, template string, shrink map[string]string) (*Project, RunResult) {
	t.Helper()
	p := Init()
	if err := p.AddExperiment(template, "exp"); err != nil {
		t.Fatal(err)
	}
	for k, v := range shrink {
		if err := p.SetParam("exp", k, v); err != nil {
			t.Fatal(err)
		}
	}
	res, err := p.RunExperiment("exp", &Env{Seed: 1})
	if err != nil {
		t.Fatalf("%s failed: %v\nlog:\n%s", template, err, res.Record.Log)
	}
	if !res.Passed() {
		t.Fatalf("%s validations failed:\n%s", template, aver.FormatResults(res.Validation))
	}
	return p, res
}

func resultsTable(t *testing.T, p *Project) *table.Table {
	t.Helper()
	raw, ok := p.ExperimentFile("exp", "results.csv")
	if !ok {
		t.Fatal("results.csv missing")
	}
	tb, err := table.ParseCSV(string(raw))
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestRunGassyfsTemplate(t *testing.T) {
	p, res := runTemplate(t, "gassyfs", map[string]string{
		"nodes": "1,2,4", "sources": "24", "segment_mb": "64",
	})
	tb := resultsTable(t, p)
	if tb.Len() != 3 {
		t.Fatalf("rows = %d", tb.Len())
	}
	// times decrease with nodes
	times, _ := tb.Floats("time")
	if !(times[0] > times[1] && times[1] > times[2]) {
		t.Fatalf("times not decreasing: %v", times)
	}
	// the paper's exact assertion was validated
	found := false
	for _, v := range res.Validation {
		if strings.Contains(v.Assertion.Source, "sublinear(nodes,time)") {
			found = true
			if !v.Passed {
				t.Fatalf("paper assertion failed: %s", v.String())
			}
		}
	}
	if !found {
		t.Fatal("paper assertion not present")
	}
	if fig, ok := p.ExperimentFile("exp", "figure.txt"); !ok || !strings.Contains(string(fig), "GassyFS") {
		t.Fatal("figure.txt missing or wrong")
	}
}

func TestRunTorporTemplate(t *testing.T) {
	p, _ := runTemplate(t, "torpor", map[string]string{"ops": "50"})
	tb := resultsTable(t, p)
	if tb.Len() < 20 {
		t.Fatalf("rows = %d, want one per stressor", tb.Len())
	}
	speedups, _ := tb.Floats("speedup")
	for _, s := range speedups {
		if s <= 1 {
			t.Fatalf("speedup %v <= 1", s)
		}
	}
	fig, _ := p.ExperimentFile("exp", "figure.txt")
	if !strings.Contains(string(fig), "Variability profile") {
		t.Fatalf("figure:\n%s", fig)
	}
}

func TestRunMPIVariabilityTemplate(t *testing.T) {
	p, _ := runTemplate(t, "mpi-comm-variability", map[string]string{
		"runs": "6", "iterations": "3", "problem_size": "24", "ranks": "8",
	})
	tb := resultsTable(t, p)
	if tb.Len() != 12 { // 6 runs x 2 conditions
		t.Fatalf("rows = %d", tb.Len())
	}
	noisy, _ := tb.Where("noisy", table.String("yes"))
	quiet, _ := tb.Where("noisy", table.String("no"))
	nt, _ := noisy.Floats("time")
	qt, _ := quiet.Floats("time")
	if table.CoeffVar(nt) <= table.CoeffVar(qt) {
		t.Fatalf("noisy CV %v should exceed quiet CV %v", table.CoeffVar(nt), table.CoeffVar(qt))
	}
}

func TestRunBWWTemplateSynthetic(t *testing.T) {
	p, _ := runTemplate(t, "jupyter-bww", map[string]string{
		"days": "36", "lat_step": "15", "lon_step": "45",
	})
	tb := resultsTable(t, p)
	if tb.Len() != 1 {
		t.Fatalf("rows = %d", tb.Len())
	}
	gm := tb.MustCell(0, "global_mean").Num
	if gm < 275 || gm > 300 {
		t.Fatalf("global mean = %v", gm)
	}
	if tb.MustCell(0, "amp_north").Num <= tb.MustCell(0, "amp_south").Num {
		t.Fatal("NH amplitude must exceed SH")
	}
}

func TestRunCloverleafTemplate(t *testing.T) {
	p, _ := runTemplate(t, "cloverleaf", map[string]string{
		"nodes": "1,2,4,8", "iterations": "3", "problem_size": "20",
	})
	tb := resultsTable(t, p)
	times, _ := tb.Floats("time")
	for i := 1; i < len(times); i++ {
		if times[i] >= times[i-1] {
			t.Fatalf("strong scaling not decreasing: %v", times)
		}
	}
}

func TestRunSparkTemplate(t *testing.T) {
	p, _ := runTemplate(t, "spark-standalone", map[string]string{
		"nodes": "1,2,4", "words_millions": "8",
	})
	tb := resultsTable(t, p)
	times, _ := tb.Floats("time")
	if times[len(times)-1] >= times[0] {
		t.Fatalf("word count should speed up with nodes: %v", times)
	}
}

func TestRunCephRadosTemplate(t *testing.T) {
	p, _ := runTemplate(t, "ceph-rados", map[string]string{
		"nodes": "4,8,16", "objects": "32", "object_mb": "2",
	})
	tb := resultsTable(t, p)
	ws, _ := tb.Floats("write_mbps")
	for i := 1; i < len(ws); i++ {
		if ws[i] <= ws[i-1] {
			t.Fatalf("aggregate write throughput should grow: %v", ws)
		}
	}
}

func TestRunZlogTemplate(t *testing.T) {
	p, _ := runTemplate(t, "zlog", map[string]string{
		"batches": "1,8,32", "appends": "128",
	})
	tb := resultsTable(t, p)
	rates, _ := tb.Floats("appends_per_sec")
	for i := 1; i < len(rates); i++ {
		if rates[i] <= rates[i-1] {
			t.Fatalf("batching should amortize the sequencer: %v", rates)
		}
	}
}

func TestRunProteusTMTemplate(t *testing.T) {
	p, _ := runTemplate(t, "proteustm", map[string]string{
		"threads": "1,2,4,8", "ops": "50000",
	})
	tb := resultsTable(t, p)
	aborts, _ := tb.Floats("abort_rate")
	for i := 1; i < len(aborts); i++ {
		if aborts[i] <= aborts[i-1] {
			t.Fatalf("abort rate must grow with contention: %v", aborts)
		}
	}
	if aborts[0] != 0 {
		t.Fatalf("single thread should never abort: %v", aborts[0])
	}
}

func TestRunMalacologyTemplate(t *testing.T) {
	p, _ := runTemplate(t, "malacology", map[string]string{
		"clients": "1,4,16", "ops_per_client": "500",
	})
	tb := resultsTable(t, p)
	rates, _ := tb.Floats("ops_per_sec")
	// saturation: rate grows sublinearly (16x clients far from 16x rate)
	if rates[len(rates)-1] > rates[0]*8 {
		t.Fatalf("service should saturate: %v", rates)
	}
}

func TestExecutorParameterErrors(t *testing.T) {
	cases := []struct {
		template string
		key, val string
	}{
		{"gassyfs", "nodes", "zero,abc"},
		{"gassyfs", "nodes", "0"},
		{"gassyfs", "sources", "x"},
		{"torpor", "ops", "NaNish"},
		{"torpor", "base", "unknown-machine"},
		{"mpi-comm-variability", "runs", "1"},
		{"proteustm", "conflict", "1.5"},
		{"zlog", "batches", "0"},
		{"ceph-rados", "nodes", "1"},
		{"ceph-rados", "nodes", "2"}, // below the replica count
	}
	for _, c := range cases {
		p := Init()
		if err := p.AddExperiment(c.template, "exp"); err != nil {
			t.Fatal(err)
		}
		if err := p.SetParam("exp", c.key, c.val); err != nil {
			t.Fatal(err)
		}
		if _, err := p.RunExperiment("exp", &Env{Seed: 1}); err == nil {
			t.Errorf("%s with %s=%s should fail", c.template, c.key, c.val)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() string {
		p := Init()
		p.AddExperiment("gassyfs", "exp")
		p.SetParam("exp", "nodes", "1,2,4")
		p.SetParam("exp", "sources", "24")
		p.SetParam("exp", "segment_mb", "64")
		if _, err := p.RunExperiment("exp", &Env{Seed: 5}); err != nil {
			t.Fatal(err)
		}
		raw, _ := p.ExperimentFile("exp", "results.csv")
		return string(raw)
	}
	if run() != run() {
		t.Fatal("same seed must reproduce identical results.csv")
	}
}

func TestGassyfsTemplateWithCache(t *testing.T) {
	p, _ := runTemplate(t, "gassyfs", map[string]string{
		"nodes": "1,2,4", "sources": "24", "segment_mb": "64", "cache_blocks": "256",
	})
	tb := resultsTable(t, p)
	times, _ := tb.Floats("time")
	for i := 1; i < len(times); i++ {
		if times[i] >= times[i-1] {
			t.Fatalf("cached run must still scale: %v", times)
		}
	}
}
