package core

import (
	"fmt"
	"testing"

	"popper/internal/fault"
	"popper/internal/sched"
)

// clusterChaosSpec layers scheduler-level chaos on top of the golden
// pipeline chaos: a straggler host, a flaky host and a mid-sweep crash
// in the simulated fleet (hosts are named sweep-<k> by the elastic
// provisioner), alongside the usual stage faults. The scheduler reacts
// — steals, re-places, redistributes — entirely in virtual time, so
// every artifact must still come out byte-identical to the flat serial
// sweep.
const clusterChaosSpec = chaosSpec + `
  - site: sched/host/sweep-1
    kind: latency
    delay: 25
    after: 1
    times: 1
  - site: sched/host/sweep-2
    kind: error
    times: 1
    msg: flaky sweep host
  - site: sched/host/sweep-3
    kind: crash
    after: 1
    msg: sweep host died
`

func clusterChaosInjector(t *testing.T) *fault.Injector {
	t.Helper()
	spec, err := fault.ParseSpec(clusterChaosSpec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Seed = chaosSeed(t)
	return spec.Injector()
}

// TestChaosClusterSweepByteIdenticalToSerial is the cluster half of the
// resilience contract: a sweep fanned across a simulated fleet — with
// work stealing, speculation, a straggler, a flaky host and a host
// crash all active — produces byte-identical results.csv, failures.csv
// and journal to the flat serial sweep, at every hosts × jobs level,
// under -race.
func TestChaosClusterSweepByteIdenticalToSerial(t *testing.T) {
	retry := fault.Retry{Max: 3, Backoff: 0.25, Jitter: 0.5}
	pSerial, srSerial := runChaosSweep(t, 1, SweepOptions{
		Retry: retry, Faults: clusterChaosInjector(t),
	})
	want := chaosFiles(t, pSerial)
	if srSerial.Sched != nil {
		t.Fatal("flat sweep must not produce a cluster schedule report")
	}

	for _, hosts := range []int{4, 16} {
		for _, jobs := range []int{1, 4, 8} {
			t.Run(fmt.Sprintf("hosts=%d/jobs=%d", hosts, jobs), func(t *testing.T) {
				p, sr := runChaosSweep(t, jobs, SweepOptions{
					Retry: retry, Faults: clusterChaosInjector(t),
					Hosts: hosts,
				})
				if sr.Sched == nil {
					t.Fatal("cluster sweep must report its schedule")
				}
				if got, want := len(sr.Sched.Hosts), hosts; got != want {
					t.Fatalf("fleet size %d, want %d", got, want)
				}
				if sr.Sched.Tasks == 0 {
					t.Fatal("schedule completed no configurations")
				}
				got := chaosFiles(t, p)
				for _, rel := range chaosArtifacts {
					if got[rel] != want[rel] {
						t.Errorf("%s diverged from serial run:\n--- cluster (hosts=%d jobs=%d)\n%s\n--- serial\n%s",
							rel, hosts, jobs, got[rel], want[rel])
					}
				}
				// The schedule's outcome bookkeeping must agree with the
				// sweep's: same quarantine set, same pass/fail.
				if gotF, wantF := len(sr.Failed()), len(srSerial.Failed()); gotF != wantF {
					t.Errorf("quarantined %d configs, serial quarantined %d", gotF, wantF)
				}
			})
		}
	}
}

// TestChaosClusterScheduleDeterministicInCore re-runs the same cluster
// sweep twice and demands identical schedule reports — placement,
// steals, speculation and makespan included — so the virtual schedule
// is as reproducible as the artifacts.
func TestChaosClusterScheduleDeterministicInCore(t *testing.T) {
	retry := fault.Retry{Max: 3, Backoff: 0.25, Jitter: 0.5}
	run := func(jobs int) *sched.ClusterReport {
		_, sr := runChaosSweep(t, jobs, SweepOptions{
			Retry: retry, Faults: clusterChaosInjector(t), Hosts: 8,
		})
		if sr.Sched == nil {
			t.Fatal("no schedule report")
		}
		return sr.Sched
	}
	a, b, c := run(1), run(4), run(8)
	if as, bs, cs := a.String(), b.String(), c.String(); as != bs || bs != cs {
		t.Fatalf("schedule diverged across jobs levels:\n1: %s\n4: %s\n8: %s", as, bs, cs)
	}
	if a.Makespan != b.Makespan || a.Steals != b.Steals || a.Speculations != b.Speculations {
		t.Fatalf("virtual schedule must not depend on worker count: %+v vs %+v", a, b)
	}
}

// TestClusterSweepLocalityPlacement drives the locality policy through
// RunSweep: hints pin every configuration to host 2, and the report
// must show placement honoring them.
func TestClusterSweepLocalityPlacement(t *testing.T) {
	p := sweepProject(t)
	configs := chaosConfigs()
	locality := make([]int, len(configs))
	for i := range locality {
		locality[i] = 2
	}
	sr, err := p.RunSweep("sweep", &Env{Seed: 5}, configs, SweepOptions{
		Jobs: 2, Hosts: 4,
		Placement: sched.PlaceLocality, Locality: locality,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Sched == nil {
		t.Fatal("no schedule report")
	}
	if got := sr.Sched.Hosts[2].Placed; got != len(configs) {
		t.Fatalf("host 2 placed %d configs, want %d (locality hints)", got, len(configs))
	}
	if !sr.Passed() {
		t.Fatalf("sweep failed: %v", sr.Err())
	}
}

// TestClusterSweepUnknownProfile surfaces a bad -hosts profile as a
// sweep-level error, not a silent fallback.
func TestClusterSweepUnknownProfile(t *testing.T) {
	p := sweepProject(t)
	_, err := p.RunSweep("sweep", &Env{Seed: 5}, chaosConfigs(), SweepOptions{
		Hosts: 2, HostProfile: "not-a-machine",
	})
	if err == nil {
		t.Fatal("unknown host profile must fail the sweep")
	}
}
