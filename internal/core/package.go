package core

import (
	"fmt"
	"strings"

	"popper/internal/container"
)

// PackageExperiment builds a container image carrying one experiment's
// convention files — the single-node deploy path of the paper's reader
// workflow ("for single-node experiments, they can be deployed locally
// too (Docker)"). The image is self-describing: labels record the
// experiment and its template, and the default command prints the
// parametrization.
func PackageExperiment(p *Project, name string, eng *container.Engine, tag string) (*container.Image, error) {
	if eng == nil {
		return nil, fmt.Errorf("core: nil container engine")
	}
	params, err := p.Params(name)
	if err != nil {
		return nil, err
	}
	context := workspaceView(p, name)
	if len(context) == 0 {
		return nil, fmt.Errorf("core: experiment %q has no files", name)
	}
	buildfile := strings.Join([]string{
		"FROM scratch",
		"COPY . /experiment",
		"LABEL popper.experiment " + name,
		"LABEL popper.template " + params["template"],
		"WORKDIR /experiment",
		"CMD cat /experiment/vars.yml",
	}, "\n")
	img, err := eng.BuildAndPush(buildfile, context, "popper-"+name, tag)
	if err != nil {
		return nil, fmt.Errorf("core: packaging %s: %w", name, err)
	}
	return img, nil
}

// UnpackExperiment installs a packaged experiment image into a project
// (the receiving side of the reader workflow). The experiment name comes
// from the image label.
func UnpackExperiment(p *Project, img *container.Image) (string, error) {
	name := img.Labels["popper.experiment"]
	if name == "" {
		return "", fmt.Errorf("core: image %s carries no popper.experiment label", img.Ref())
	}
	for _, existing := range p.Experiments() {
		if existing == name {
			return "", fmt.Errorf("core: experiment %q already exists", name)
		}
	}
	prefix := "experiment/"
	found := false
	for path, content := range img.RootFS() {
		if strings.HasPrefix(path, prefix) {
			p.Files[expPath(name, strings.TrimPrefix(path, prefix))] = content
			found = true
		}
	}
	if !found {
		return "", fmt.Errorf("core: image %s has no /experiment tree", img.Ref())
	}
	return name, nil
}
