package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"popper/internal/cluster"
	"popper/internal/gasnet"
	"popper/internal/gassyfs"
	"popper/internal/mpi"
	"popper/internal/ndarray"
	"popper/internal/plot"
	"popper/internal/sched"
	"popper/internal/table"
	"popper/internal/torpor"
	"popper/internal/weather"
	"popper/internal/workload"
)

// runGassyfs reproduces Figure gassyfs-git: compile-Git time as the
// GASNet cluster grows.
func runGassyfs(x *ExecState) error {
	machine := x.Param("machine", "cloudlab-c220g1")
	nodes, err := x.IntsParam("nodes", []int{1, 2, 4, 8})
	if err != nil {
		return err
	}
	sources, err := x.IntParam("sources", 96)
	if err != nil {
		return err
	}
	segMB, err := x.IntParam("segment_mb", 256)
	if err != nil {
		return err
	}
	cacheBlocks, err := x.IntParam("cache_blocks", 0)
	if err != nil {
		return err
	}
	jobs, err := x.IntParam("jobs", 0)
	if err != nil {
		return err
	}
	spec := workload.GitCompileSpec()
	spec.Sources = sources
	spec.Seed = x.Seed()
	// One shared host worker pool drives the per-rank clients of every
	// node count concurrently (jobs <= 0 means one worker per host CPU).
	// Simulated clocks, the results table and Aver verdicts are identical
	// for any jobs value — determinism is proven by the golden
	// equivalence tests in internal/workload and internal/core.
	pool := sched.NewPool(jobs)
	spec.Pool = pool

	results := table.New("workload", "machine", "nodes", "time", "compile_time", "link_time")
	// Results is exposed before the loop so streaming validation sees
	// each node count's row as soon as it lands (Checkpoint below).
	x.Results = results
	var xs, ys []float64
	for _, n := range nodes {
		if n <= 0 {
			return fmt.Errorf("core: gassyfs: invalid node count %d", n)
		}
		c := cluster.New(x.Seed() + int64(n))
		ns, err := c.Provision(machine, n)
		if err != nil {
			return err
		}
		world, err := gasnet.New(ns, cluster.NewNetwork(0), nil)
		if err != nil {
			return err
		}
		if err := world.AttachAll(int64(segMB) << 20); err != nil {
			return err
		}
		fs, err := gassyfs.Mount(world, gassyfs.Options{CacheBlocks: cacheBlocks, Jobs: jobs})
		if err != nil {
			return err
		}
		cl, err := fs.Client(0)
		if err != nil {
			return err
		}
		if err := workload.GenerateTree(cl, spec); err != nil {
			return err
		}
		res, err := workload.CompileOnCluster(fs, spec)
		if err != nil {
			return err
		}
		x.Ctx.Logf("nodes=%d time=%.3fs (compile=%.3f link=%.3f)", n, res.Elapsed, res.CompileTime, res.LinkTime)
		results.MustAppend(
			table.String("compile-git"), table.String(machine),
			table.Number(float64(n)), table.Number(res.Elapsed),
			table.Number(res.CompileTime), table.Number(res.LinkTime),
		)
		xs = append(xs, float64(n))
		ys = append(ys, res.Elapsed)
		if err := x.Checkpoint(); err != nil {
			return err
		}
	}

	var chart plot.LineChart
	chart.Title = "GassyFS scalability: compile Git"
	chart.XLabel, chart.YLabel = "GASNet nodes", "time (virtual s)"
	if err := chart.Add(machine, xs, ys); err != nil {
		return err
	}
	ascii, err := chart.ASCII()
	if err != nil {
		return err
	}
	svg, err := chart.SVG()
	if err != nil {
		return err
	}
	x.FigureASCII, x.FigureSVG = ascii, svg
	return nil
}

// runTorpor reproduces Figure torpor-variability: the speedup histogram
// of each machine against the base platform.
func runTorpor(x *ExecState) error {
	baseName := x.Param("base", "xeon-2005")
	machines := x.StringsParam("machines", []string{"cloudlab-c220g1"})
	ops, err := x.IntParam("ops", 100)
	if err != nil {
		return err
	}
	bucket, err := x.FloatParam("bucket", 0.1)
	if err != nil {
		return err
	}
	results := table.New("stressor", "class", "base", "machine", "speedup")
	x.Results = results
	var firstProfile *torpor.VariabilityProfile
	for i, m := range machines {
		c := cluster.New(x.Seed() + int64(i))
		baseNodes, err := c.Provision(baseName, 1)
		if err != nil {
			return err
		}
		targetNodes, err := c.Provision(m, 1)
		if err != nil {
			return err
		}
		vp, err := torpor.MeasureProfile(baseNodes[0], targetNodes[0], ops)
		if err != nil {
			return err
		}
		if firstProfile == nil {
			firstProfile = vp
		}
		for _, e := range vp.Entries {
			results.MustAppend(
				table.String(e.Stressor), table.String(string(e.Class)),
				table.String(baseName), table.String(m), table.Number(e.Speedup),
			)
		}
		lo, hi := vp.Range()
		x.Ctx.Logf("machine=%s speedup range [%.2f, %.2f] mean %.2f", m, lo, hi, vp.Mean())
		if err := x.Checkpoint(); err != nil {
			return err
		}
	}

	h, err := firstProfile.Histogram(bucket)
	if err != nil {
		return err
	}
	x.FigureASCII = h.ASCII()
	x.FigureSVG = h.SVG()
	return nil
}

// runMPIVariability reproduces the MPI noisy-neighbour study: repeated
// LULESH-proxy runs with and without background tenants.
func runMPIVariability(x *ExecState) error {
	machine := x.Param("machine", "ec2-m4")
	ranks, err := x.IntParam("ranks", 8)
	if err != nil {
		return err
	}
	runs, err := x.IntParam("runs", 10)
	if err != nil {
		return err
	}
	iters, err := x.IntParam("iterations", 5)
	if err != nil {
		return err
	}
	psize, err := x.IntParam("problem_size", 10)
	if err != nil {
		return err
	}
	if ranks <= 0 || runs <= 1 {
		return fmt.Errorf("core: mpi-comm-variability needs ranks > 0 and runs > 1")
	}
	spec := workload.DefaultLuleshSpec()
	spec.Iterations = iters
	spec.ProblemSize = psize

	results := table.New("run", "noisy", "ranks", "time", "mpi_fraction")
	x.Results = results
	for _, noisy := range []bool{false, true} {
		for r := 0; r < runs; r++ {
			c := cluster.New(x.Seed() + int64(r)*37 + boolSeed(noisy))
			ns, err := c.Provision(machine, ranks)
			if err != nil {
				return err
			}
			if noisy {
				// Tenancy varies run to run: a random placement gives a
				// few nodes a co-located tenant of random intensity; the
				// straggler then pins the whole job (collectives).
				rng := rand.New(rand.NewSource(x.Seed() + int64(r)*7919))
				victims := 1 + rng.Intn(2)
				for v := 0; v < victims; v++ {
					node := ns[rng.Intn(len(ns))]
					if err := node.SetBackgroundLoad(0.7 * rng.Float64()); err != nil {
						return err
					}
				}
			}
			cm, err := mpi.NewComm(ns, cluster.NewNetwork(0))
			if err != nil {
				return err
			}
			res, err := workload.RunLulesh(cm, spec)
			if err != nil {
				return err
			}
			results.MustAppend(
				table.Number(float64(r)), table.String(yesNo(noisy)),
				table.Number(float64(ranks)), table.Number(res.Elapsed),
				table.Number(res.MPIFraction),
			)
			if err := x.Checkpoint(); err != nil {
				return err
			}
		}
	}

	// Figure: per-run times of both conditions.
	var quietY, noisyY, runsX []float64
	for r := 0; r < results.Len(); r++ {
		t := results.MustCell(r, "time").Num
		if results.MustCell(r, "noisy").Str == "yes" {
			noisyY = append(noisyY, t)
		} else {
			quietY = append(quietY, t)
			runsX = append(runsX, results.MustCell(r, "run").Num)
		}
	}
	var chart plot.LineChart
	chart.Title = "LULESH proxy: run-to-run variability"
	chart.XLabel, chart.YLabel = "run", "time (virtual s)"
	if err := chart.Add("isolated", runsX, quietY); err != nil {
		return err
	}
	if err := chart.Add("noisy neighbours", runsX, noisyY); err != nil {
		return err
	}
	ascii, err := chart.ASCII()
	if err != nil {
		return err
	}
	svg, err := chart.SVG()
	if err != nil {
		return err
	}
	x.FigureASCII, x.FigureSVG = ascii, svg
	return nil
}

func boolSeed(b bool) int64 {
	if b {
		return 100000
	}
	return 0
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// runBWW reproduces Figure bww-airtemp: the reanalysis air-temperature
// climatology. When the experiment carries a dataset reference that was
// installed during setup, the analysis runs on the installed CSV;
// otherwise a synthetic dataset is generated from the parameters.
func runBWW(x *ExecState) error {
	dsName := x.Param("dataset", "air-temperature")
	var arr *ndarray.Array
	if csv, ok := x.Project.ExperimentFile(x.Name, "datasets/"+dsName+"/air.csv"); ok {
		a, err := weather.DecodeCSV(csv)
		if err != nil {
			return err
		}
		arr = a
		x.Ctx.Logf("analyzing installed dataset %s (%d cells)", dsName, a.Size())
	} else {
		days, err := x.IntParam("days", 72)
		if err != nil {
			return err
		}
		latStep, err := x.FloatParam("lat_step", 10)
		if err != nil {
			return err
		}
		lonStep, err := x.FloatParam("lon_step", 30)
		if err != nil {
			return err
		}
		a, err := weather.Generate(weather.ReanalysisSpec{
			Days: days, LatStep: latStep, LonStep: lonStep, NoiseK: 0.5, Seed: x.Seed(),
		})
		if err != nil {
			return err
		}
		arr = a
		x.Ctx.Logf("generated synthetic reanalysis (%d cells)", a.Size())
	}
	an, err := weather.Analyze(arr)
	if err != nil {
		return err
	}
	results := table.New("dataset", "global_mean", "amp_north", "amp_south")
	results.MustAppend(
		table.String(dsName), table.Number(an.GlobalMeanK),
		table.Number(an.AmplitudeNorth), table.Number(an.AmplitudeSouth),
	)
	x.Results = results

	h, err := an.Heatmap()
	if err != nil {
		return err
	}
	ascii, err := h.ASCII()
	if err != nil {
		return err
	}
	svg, err := h.SVG()
	if err != nil {
		return err
	}
	x.FigureASCII, x.FigureSVG = ascii, svg
	return nil
}

// runCloverleaf: strong scaling of a structured hydro stencil (the
// LULESH machinery with a shrinking per-rank domain).
func runCloverleaf(x *ExecState) error {
	machine := x.Param("machine", "probe-opteron")
	nodes, err := x.IntsParam("nodes", []int{1, 2, 4, 8})
	if err != nil {
		return err
	}
	iters, err := x.IntParam("iterations", 5)
	if err != nil {
		return err
	}
	baseSize, err := x.IntParam("problem_size", 12)
	if err != nil {
		return err
	}
	results := table.New("workload", "machine", "nodes", "time")
	x.Results = results
	var xs, ys []float64
	for _, n := range nodes {
		c := cluster.New(x.Seed() + int64(n))
		ns, err := c.Provision(machine, n)
		if err != nil {
			return err
		}
		cm, err := mpi.NewComm(ns, cluster.NewNetwork(0))
		if err != nil {
			return err
		}
		spec := workload.DefaultLuleshSpec()
		spec.Iterations = iters
		// strong scaling: total elements fixed, per-rank domain shrinks
		perRank := int(math.Round(float64(baseSize) / math.Cbrt(float64(n))))
		if perRank < 1 {
			perRank = 1
		}
		spec.ProblemSize = perRank
		res, err := workload.RunLulesh(cm, spec)
		if err != nil {
			return err
		}
		results.MustAppend(table.String("cloverleaf"), table.String(machine),
			table.Number(float64(n)), table.Number(res.Elapsed))
		xs = append(xs, float64(n))
		ys = append(ys, res.Elapsed)
		if err := x.Checkpoint(); err != nil {
			return err
		}
	}
	return lineFigure(x, "CloverLeaf proxy strong scaling", machine, xs, ys)
}

// runSpark: distributed word count — map on each node, shuffle across
// the network, reduce on the driver.
func runSpark(x *ExecState) error {
	machine := x.Param("machine", "cloudlab-c220g1")
	nodes, err := x.IntsParam("nodes", []int{1, 2, 4, 8})
	if err != nil {
		return err
	}
	wordsM, err := x.IntParam("words_millions", 64)
	if err != nil {
		return err
	}
	totalWords := float64(wordsM) * 1e6
	const bytesPerWord = 8
	const opsPerWord = 150

	results := table.New("workload", "machine", "nodes", "time")
	x.Results = results
	var xs, ys []float64
	for _, n := range nodes {
		c := cluster.New(x.Seed() + int64(n))
		ns, err := c.Provision(machine, n)
		if err != nil {
			return err
		}
		net := cluster.NewNetwork(0)
		perNode := totalWords / float64(n)
		// map phase: tokenize + count locally, parallel across cores
		for _, node := range ns {
			node.RunParallel(cluster.Work{
				CPUOps:   perNode * opsPerWord,
				MemBytes: perNode * bytesPerWord,
			}, node.Profile().Cores, 0.05)
		}
		// shuffle: every node exchanges (n-1)/n of its partial counts
		shuffleBytes := int64(perNode * bytesPerWord * float64(n-1) / float64(n) * 0.1)
		for i, src := range ns {
			if n > 1 {
				dst := ns[(i+1)%n]
				net.Send(src, dst, shuffleBytes)
			}
		}
		net.Barrier(ns)
		// reduce on the driver
		ns[0].Run(cluster.Work{CPUOps: totalWords * 2, MemBytes: totalWords})
		elapsed := cluster.MaxClock(ns)
		results.MustAppend(table.String("wordcount"), table.String(machine),
			table.Number(float64(n)), table.Number(elapsed))
		xs = append(xs, float64(n))
		ys = append(ys, elapsed)
		if err := x.Checkpoint(); err != nil {
			return err
		}
	}
	return lineFigure(x, "Word count on a standalone cluster", machine, xs, ys)
}

// runCephRados: replicated object store aggregate throughput.
func runCephRados(x *ExecState) error {
	machine := x.Param("machine", "cloudlab-c8220")
	nodes, err := x.IntsParam("nodes", []int{2, 4, 8})
	if err != nil {
		return err
	}
	objects, err := x.IntParam("objects", 64)
	if err != nil {
		return err
	}
	objMB, err := x.IntParam("object_mb", 4)
	if err != nil {
		return err
	}
	replicas, err := x.IntParam("replicas", 3)
	if err != nil {
		return err
	}
	objBytes := int64(objMB) << 20

	results := table.New("machine", "nodes", "write_mbps", "read_mbps")
	x.Results = results
	for _, n := range nodes {
		if n < 2 {
			return fmt.Errorf("core: ceph-rados needs at least 2 nodes")
		}
		if n < replicas {
			return fmt.Errorf("core: ceph-rados needs nodes >= replicas (%d < %d)", n, replicas)
		}
		c := cluster.New(x.Seed() + int64(n))
		osds, err := c.Provision(machine, n)
		if err != nil {
			return err
		}
		clients, err := c.Provision(machine, n)
		if err != nil {
			return err
		}
		net := cluster.NewNetwork(0)
		rep := replicas
		if rep > n {
			rep = n
		}
		// writes: each client stripes its share of objects over OSDs;
		// the primary pipelines one-sided replication writes.
		perClient := objects / n
		if perClient == 0 {
			perClient = 1
		}
		for ci, cl := range clients {
			for o := 0; o < perClient; o++ {
				primary := (ci + o) % n
				net.Send(cl, osds[primary], objBytes)
				for r := 1; r < rep; r++ {
					net.RDMAWrite(osds[primary], osds[(primary+r)%n], objBytes)
				}
			}
		}
		all := append(append([]*cluster.Node{}, osds...), clients...)
		writeElapsed := cluster.MaxClock(all)
		moved := float64(perClient*n) * float64(objBytes)
		writeMBps := moved / writeElapsed / 1e6

		// reads: clients fetch their objects from the primaries with
		// one-sided gets.
		readStart := net.Barrier(all)
		for ci, cl := range clients {
			for o := 0; o < perClient; o++ {
				primary := (ci + o) % n
				net.RDMARead(cl, osds[primary], objBytes)
			}
		}
		readElapsed := cluster.MaxClock(clients) - readStart
		readMBps := moved / readElapsed / 1e6
		results.MustAppend(table.String(machine), table.Number(float64(n)),
			table.Number(writeMBps), table.Number(readMBps))
		x.Ctx.Logf("nodes=%d write=%.1f MB/s read=%.1f MB/s", n, writeMBps, readMBps)
		if err := x.Checkpoint(); err != nil {
			return err
		}
	}
	ws, _ := results.Floats("write_mbps")
	ns := make([]float64, len(nodes))
	for i, n := range nodes {
		ns[i] = float64(n)
	}
	return lineFigure(x, "RADOS-style aggregate write throughput", machine, ns, ws)
}

// runZlog: shared-log append throughput vs sequencer batch size.
func runZlog(x *ExecState) error {
	machine := x.Param("machine", "cloudlab-c8220")
	storageN, err := x.IntParam("storage_nodes", 4)
	if err != nil {
		return err
	}
	batches, err := x.IntsParam("batches", []int{1, 4, 16, 64})
	if err != nil {
		return err
	}
	appends, err := x.IntParam("appends", 512)
	if err != nil {
		return err
	}
	entryKB, err := x.IntParam("entry_kb", 4)
	if err != nil {
		return err
	}
	entryBytes := int64(entryKB) << 10

	results := table.New("machine", "batch", "appends_per_sec")
	x.Results = results
	var xs, ys []float64
	for _, b := range batches {
		if b <= 0 {
			return fmt.Errorf("core: zlog batch must be positive")
		}
		c := cluster.New(x.Seed() + int64(b))
		nodes, err := c.Provision(machine, storageN+2) // sequencer + client + storage
		if err != nil {
			return err
		}
		seq, client, storage := nodes[0], nodes[1], nodes[2:]
		net := cluster.NewNetwork(0)
		start := client.Now()
		done := 0
		for done < appends {
			batch := b
			if done+batch > appends {
				batch = appends - done
			}
			// position grant: one round trip to the sequencer per batch
			net.Send(client, seq, 64)
			net.Send(seq, client, 64)
			// appends stripe over storage, pipelined per batch
			for e := 0; e < batch; e++ {
				net.Send(client, storage[(done+e)%len(storage)], entryBytes)
			}
			done += batch
		}
		elapsed := client.Now() - start
		rate := float64(appends) / elapsed
		results.MustAppend(table.String(machine), table.Number(float64(b)), table.Number(rate))
		xs = append(xs, float64(b))
		ys = append(ys, rate)
		if err := x.Checkpoint(); err != nil {
			return err
		}
	}
	return lineFigure(x, "Shared-log appends vs batch size", machine, xs, ys)
}

// runProteusTM: STM throughput and abort rate under contention.
func runProteusTM(x *ExecState) error {
	machine := x.Param("machine", "cloudlab-c220g1")
	threads, err := x.IntsParam("threads", []int{1, 2, 4, 8, 16})
	if err != nil {
		return err
	}
	ops, err := x.IntParam("ops", 200000)
	if err != nil {
		return err
	}
	conflict, err := x.FloatParam("conflict", 0.05)
	if err != nil {
		return err
	}
	if conflict < 0 || conflict >= 1 {
		return fmt.Errorf("core: proteustm conflict must be in [0,1)")
	}
	results := table.New("machine", "threads", "throughput", "abort_rate")
	x.Results = results
	var xs, ys []float64
	for _, t := range threads {
		if t <= 0 {
			return fmt.Errorf("core: proteustm threads must be positive")
		}
		c := cluster.New(x.Seed() + int64(t))
		ns, err := c.Provision(machine, 1)
		if err != nil {
			return err
		}
		node := ns[0]
		// abort probability grows with the number of concurrent peers
		abortRate := 1 - math.Pow(1-conflict, float64(t-1))
		// each committed op costs work; aborts cost retries
		retries := 1 / (1 - abortRate)
		work := cluster.Work{
			CPUOps:     float64(ops) * 400 * retries,
			RandAccess: float64(ops) * 2 * retries,
		}
		start := node.Now()
		node.RunParallel(work, t, 0.02)
		elapsed := node.Now() - start
		throughput := float64(ops) / elapsed
		results.MustAppend(table.String(machine), table.Number(float64(t)),
			table.Number(throughput), table.Number(abortRate))
		xs = append(xs, float64(t))
		ys = append(ys, throughput)
		if err := x.Checkpoint(); err != nil {
			return err
		}
	}
	return lineFigure(x, "STM throughput under contention", machine, xs, ys)
}

// runMalacology: metadata-service saturation as clients grow.
func runMalacology(x *ExecState) error {
	machine := x.Param("machine", "cloudlab-c220g1")
	clients, err := x.IntsParam("clients", []int{1, 2, 4, 8, 16, 32})
	if err != nil {
		return err
	}
	opsPerClient, err := x.IntParam("ops_per_client", 2000)
	if err != nil {
		return err
	}
	results := table.New("machine", "clients", "ops_per_sec")
	x.Results = results
	var xs, ys []float64
	for _, nc := range clients {
		if nc <= 0 {
			return fmt.Errorf("core: malacology clients must be positive")
		}
		c := cluster.New(x.Seed() + int64(nc))
		ns, err := c.Provision(machine, nc+1)
		if err != nil {
			return err
		}
		server, clis := ns[0], ns[1:]
		net := cluster.NewNetwork(0)
		totalOps := nc * opsPerClient
		// the server processes every op serially (the bottleneck)
		server.Run(cluster.Work{Syscalls: float64(totalOps) * 4, CPUOps: float64(totalOps) * 3e4})
		// each client pays its own submission overhead + round trips
		for _, cl := range clis {
			cl.Run(cluster.Work{CPUOps: float64(opsPerClient) * 1e4})
			net.Send(cl, server, int64(opsPerClient)*128)
		}
		elapsed := math.Max(cluster.MaxClock(clis), server.Now())
		rate := float64(totalOps) / elapsed
		results.MustAppend(table.String(machine), table.Number(float64(nc)), table.Number(rate))
		xs = append(xs, float64(nc))
		ys = append(ys, rate)
		if err := x.Checkpoint(); err != nil {
			return err
		}
	}
	return lineFigure(x, "Metadata service saturation", machine, xs, ys)
}

// lineFigure attaches a one-series line chart to the execution state.
func lineFigure(x *ExecState, title, series string, xs, ys []float64) error {
	var chart plot.LineChart
	chart.Title = title
	chart.XLabel, chart.YLabel = "x", "y"
	if err := chart.Add(series, xs, ys); err != nil {
		return err
	}
	ascii, err := chart.ASCII()
	if err != nil {
		return err
	}
	svg, err := chart.SVG()
	if err != nil {
		return err
	}
	x.FigureASCII, x.FigureSVG = ascii, svg
	return nil
}

// adhocGenerated reports experiment-relative paths that are run
// outputs rather than archived inputs — the ad-hoc replay must not
// feed its own previous results back into the provenance table.
func adhocGenerated(rel string) bool {
	switch rel {
	case "results.csv", "figure.txt", "figure.svg", FailuresFile:
		return true
	}
	return strings.HasPrefix(rel, "sweep/")
}

// runAdhoc is the executable binding behind Popperized ad-hoc
// experiments: every archived artifact (scripts, spreadsheets, the
// convention files themselves) is replayed on one simulated node —
// checksum-and-archive work charged per byte, per trial — and recorded
// in a provenance table, so a freshly wrapped experiment runs end to
// end and its skeleton validations hold before the author codifies the
// real findings.
func runAdhoc(x *ExecState) error {
	machine := x.Param("machine", "cloudlab-c220g1")
	trials, err := x.IntParam("trials", 3)
	if err != nil {
		return err
	}
	if trials <= 0 {
		return fmt.Errorf("core: adhoc trials must be positive")
	}
	prefix := expPath(x.Name, "")
	var paths []string
	for path := range x.Project.Files {
		if !strings.HasPrefix(path, prefix) {
			continue
		}
		if rel := strings.TrimPrefix(path, prefix); !adhocGenerated(rel) {
			paths = append(paths, rel)
		}
	}
	sort.Strings(paths)
	c := cluster.New(x.Seed())
	ns, err := c.Provision(machine, 1)
	if err != nil {
		return err
	}
	node := ns[0]
	results := table.New("file", "bytes", "time")
	x.Results = results
	var xs, ys []float64
	for i, rel := range paths {
		content := x.Project.Files[prefix+rel]
		start := node.Now()
		node.Run(cluster.Work{
			CPUOps:   float64(trials) * (1e5 + 50*float64(len(content))),
			Syscalls: float64(trials),
		})
		elapsed := node.Now() - start
		results.MustAppend(table.String(rel), table.Number(float64(len(content))), table.Number(elapsed))
		xs, ys = append(xs, float64(i+1)), append(ys, elapsed)
		if err := x.Checkpoint(); err != nil {
			return err
		}
	}
	return lineFigure(x, "Ad-hoc artifact replay", machine, xs, ys)
}
