package core

import (
	"strings"
	"testing"

	"popper/internal/aver"
)

// The Popperize skeleton must be runnable out of the box: wrapping an
// ad-hoc experiment and immediately invoking `popper run` replays the
// archived artifacts and passes the skeleton validations — no TODO
// placeholders left for the author to unbreak first.

func TestPopperizedExperimentRunsEndToEnd(t *testing.T) {
	p := Init()
	adhoc := map[string][]byte{
		"measure.sh":    []byte("#!/bin/sh\nmpirun lulesh"),
		"analysis.xlsx": []byte("binary spreadsheet"),
	}
	if _, err := p.Popperize("lulesh-study", adhoc); err != nil {
		t.Fatal(err)
	}
	// The skeletons are runnable defaults, not placeholders.
	for _, rel := range []string{"run.sh", "vars.yml", "validations.aver", "setup.yml"} {
		raw, ok := p.ExperimentFile("lulesh-study", rel)
		if !ok {
			t.Fatalf("%s missing after Popperize", rel)
		}
		if strings.Contains(string(raw), "TODO") {
			t.Fatalf("%s still carries a TODO placeholder:\n%s", rel, raw)
		}
	}
	res, err := p.RunExperiment("lulesh-study", &Env{Seed: 1})
	if err != nil {
		t.Fatalf("popperized run failed: %v\nlog:\n%s", err, res.Record.Log)
	}
	if !res.Passed() {
		t.Fatalf("skeleton validations failed:\n%s", aver.FormatResults(res.Validation))
	}
	// The provenance table covers the archived ad-hoc artifacts.
	raw, ok := p.ExperimentFile("lulesh-study", "results.csv")
	if !ok {
		t.Fatal("results.csv missing")
	}
	for _, artifact := range []string{"measure.sh", "analysis.xlsx", "run.sh"} {
		if !strings.Contains(string(raw), artifact) {
			t.Fatalf("results.csv does not record %s:\n%s", artifact, raw)
		}
	}
}

func TestAdhocTemplateRunsEndToEnd(t *testing.T) {
	p, res := runTemplate(t, "adhoc", nil)
	tb := resultsTable(t, p)
	if tb.Len() == 0 {
		t.Fatal("adhoc replay recorded no artifacts")
	}
	if res.Record.Log == "" {
		t.Fatal("run record has no log")
	}
	// Re-running must not feed the previous results back in: the row
	// count stays stable because generated outputs are excluded.
	res2, err := p.RunExperiment("exp", &Env{Seed: 1})
	if err != nil || !res2.Passed() {
		t.Fatalf("second adhoc run failed: %v", err)
	}
	if tb2 := resultsTable(t, p); tb2.Len() != tb.Len() {
		t.Fatalf("replay fed its own outputs back: %d rows, then %d", tb.Len(), tb2.Len())
	}
}

func TestAddExperimentBindsPlaceholder(t *testing.T) {
	p := Init()
	if err := p.AddExperiment("gassyfs", "myexp"); err != nil {
		t.Fatal(err)
	}
	raw, ok := p.ExperimentFile("myexp", "run.sh")
	if !ok {
		t.Fatal("run.sh missing")
	}
	if strings.Contains(string(raw), "<experiment>") {
		t.Fatalf("run.sh still carries the template placeholder:\n%s", raw)
	}
	if !strings.Contains(string(raw), "popper run myexp") {
		t.Fatalf("run.sh does not invoke the instantiated experiment:\n%s", raw)
	}
}
