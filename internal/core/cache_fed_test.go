package core

import (
	"testing"

	"popper/internal/fault"
	"popper/internal/pipeline"
)

// fedCacheConfigs is the small sweep matrix the federation tests share.
func fedCacheConfigs() []map[string]string {
	return []map[string]string{{"iterations": "2"}, {"iterations": "3"}}
}

// runFedSweep runs the canonical sweep across a 4-host simulated fleet
// with the given shared cache (federated over gasnet by RunSweep).
func runFedSweep(t *testing.T, cache *pipeline.Cache, opts SweepOptions) (*Project, SweepResult) {
	t.Helper()
	p := sweepProject(t)
	opts.Jobs = 1
	opts.Hosts = 4
	opts.Cache = cache
	sr, err := p.RunSweep("sweep", &Env{Seed: 2}, fedCacheConfigs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return p, sr
}

// TestSweepFaultSaltIsolatesFederatedCache pins the cache-universe
// contract for chaos runs: an attached fault injector mixes its
// Fingerprint into the stage-cache salt, so a faulted sweep must never
// replay entries a clean sweep published into the federated tier (and
// vice versa), even though parameters, workspace and environment seed
// are identical.
func TestSweepFaultSaltIsolatesFederatedCache(t *testing.T) {
	cache := pipeline.NewCache()

	if _, sr := runFedSweep(t, cache, SweepOptions{}); !sr.Passed() {
		t.Fatalf("populating sweep failed: %v", sr.Err())
	}
	_, warm := runFedSweep(t, cache, SweepOptions{})
	if !warm.Passed() {
		t.Fatalf("warm sweep failed: %v", warm.Err())
	}
	for _, r := range warm.Runs {
		if r.Result.Record.CacheHits != 3 {
			t.Fatalf("config %d replayed %d stages from the tier, want 3", r.Index, r.Result.Record.CacheHits)
		}
	}
	st := cache.Stats()
	if st.LocalPeerHits+st.RemoteFetches == 0 {
		t.Fatal("warm federated sweep never consulted the peer index")
	}

	// The spec's only fault sits on a site no stage matches, so the run
	// is behaviorally identical to the clean ones — only the salt
	// differs. Every stage must still miss.
	spec, err := fault.ParseSpec("seed: 9\nfaults:\n  - site: pipeline/ghost/*\n    kind: latency\n    delay: 1\n")
	if err != nil {
		t.Fatal(err)
	}
	_, salted := runFedSweep(t, cache, SweepOptions{Faults: spec.Injector()})
	if !salted.Passed() {
		t.Fatalf("fault-salted sweep failed: %v", salted.Err())
	}
	// The salted sweep must look exactly like a cold one: config 0 all
	// misses, config 1 sharing only the setup entry config 0 just
	// stored inside the salted universe. A warm pattern (3 hits) would
	// mean entries leaked across the fault-salt boundary.
	if h0, h1 := salted.Runs[0].Result.Record.CacheHits, salted.Runs[1].Result.Record.CacheHits; h0 != 0 || h1 > 1 {
		t.Fatalf("fault-salted sweep shared the federated tier across the salt boundary (hits %d/%d, want 0/<=1)", h0, h1)
	}
}

// TestResumeSweepHitsFederatedCache drives the interruption path: a
// sweep cut off by Limit, then finished with -resume semantics, serves
// every re-executed configuration from the federated tier (populated by
// an earlier tenant's full sweep) without a single recompute, and its
// artifacts match an uninterrupted uncached run byte-for-byte.
func TestResumeSweepHitsFederatedCache(t *testing.T) {
	ref := sweepProject(t)
	srRef, err := ref.RunSweep("sweep", &Env{Seed: 2}, fedCacheConfigs(), SweepOptions{Jobs: 1})
	if err != nil || !srRef.Passed() {
		t.Fatalf("reference sweep: %v / %v", err, srRef.Err())
	}

	cache := pipeline.NewCache()
	if _, sr := runFedSweep(t, cache, SweepOptions{}); !sr.Passed() {
		t.Fatalf("tenant-1 sweep failed: %v", sr.Err())
	}

	// Tenant 2 is interrupted after one configuration...
	p2, srA := runFedSweep(t, cache, SweepOptions{Limit: 1})
	if srA.Passed() {
		t.Fatal("limited sweep must report itself incomplete")
	}

	// ...and resumed. The journaled configuration is adopted; the
	// pending one replays entirely from the tier.
	before := cache.Stats()
	srB, err := p2.RunSweep("sweep", &Env{Seed: 2}, fedCacheConfigs(), SweepOptions{
		Jobs: 1, Hosts: 4, Cache: cache, Resume: true,
	})
	if err != nil || !srB.Passed() {
		t.Fatalf("resumed sweep: %v / %v", err, srB.Err())
	}
	after := cache.Stats()
	if after.Misses != before.Misses {
		t.Fatalf("resumed sweep recomputed stages (%d new misses)", after.Misses-before.Misses)
	}
	if after.Hits <= before.Hits {
		t.Fatal("resumed sweep never hit the federated tier")
	}
	resumed, replayed := 0, 0
	for _, r := range srB.Runs {
		if r.Resumed {
			resumed++
			continue
		}
		replayed++
		if r.Result.Record.CacheHits != 3 {
			t.Fatalf("resumed config %d hit %d stages, want full replay (3)", r.Index, r.Result.Record.CacheHits)
		}
	}
	if resumed != 1 || replayed != 1 {
		t.Fatalf("resumed=%d replayed=%d, want 1/1", resumed, replayed)
	}

	// Interruption + resume + federated replay leaves the workspace
	// indistinguishable from the plain run.
	for _, rel := range []string{"results.csv", SweepJournalFile} {
		if got, want := string(p2.Files[expPath("sweep", rel)]), string(ref.Files[expPath("sweep", rel)]); got != want {
			t.Errorf("%s diverged from the uninterrupted run:\n--- resumed\n%s\n--- reference\n%s", rel, got, want)
		}
	}
}

// TestClusterFederatedEvictionSweepByteIdenticalToSerial is the
// acceptance pin for the whole tier: a sweep fanned across 16 simulated
// hosts, sharing a federated cache whose size bound is tight enough to
// force evictions mid-sweep, still produces results, failures and
// journal byte-identical to the flat serial uncached run — twice, so
// the second round exercises hit, peer-fetch and evicted-entry-miss
// paths together.
func TestClusterFederatedEvictionSweepByteIdenticalToSerial(t *testing.T) {
	configs := chaosConfigs()
	pRef := sweepProject(t)
	srRef, err := pRef.RunSweep("sweep", &Env{Seed: 5}, configs, SweepOptions{Jobs: 1})
	if err != nil || !srRef.Passed() {
		t.Fatalf("serial reference sweep: %v / %v", err, srRef.Err())
	}
	want := chaosFiles(t, pRef)

	cache := pipeline.NewCacheOpts(pipeline.CacheOptions{MaxBytes: 4 << 10})
	for round := 1; round <= 2; round++ {
		p := sweepProject(t)
		sr, err := p.RunSweep("sweep", &Env{Seed: 5}, configs, SweepOptions{
			Jobs: 4, Hosts: 16, Cache: cache,
		})
		if err != nil || !sr.Passed() {
			t.Fatalf("round %d cluster sweep: %v / %v", round, err, sr.Err())
		}
		if sr.Sched == nil || len(sr.Sched.Hosts) != 16 {
			t.Fatalf("round %d: expected a 16-host schedule report", round)
		}
		got := chaosFiles(t, p)
		for _, rel := range chaosArtifacts {
			if got[rel] != want[rel] {
				t.Errorf("round %d: %s diverged from serial uncached run:\n--- cluster\n%s\n--- serial\n%s",
					round, rel, got[rel], want[rel])
			}
		}
	}
	st := cache.Stats()
	if st.Evictions == 0 {
		t.Fatalf("4 KiB bound never evicted (resident=%d added=%d) — the test no longer exercises eviction",
			st.BytesResident, st.BytesAdded)
	}
}
