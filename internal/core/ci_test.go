package core

import (
	"strings"
	"testing"

	"popper/internal/ci"
	"popper/internal/vcs"
)

// TestCIIntegration wires a Popper repository into the VCS and CI
// services and exercises the paper's tier-1 validation loop: every
// commit re-checks compliance, lints orchestration, builds the paper
// and (on request) re-runs an experiment.
func TestCIIntegration(t *testing.T) {
	proj := Init()
	if err := proj.AddExperiment("torpor", "myexp"); err != nil {
		t.Fatal(err)
	}
	proj.SetParam("myexp", "ops", "20")
	proj.Files[CIFile] = []byte(`
language: popper
script:
  - popper check
  - popper lint
  - ./paper/build.sh
  - ./experiments/myexp/run.sh
`)

	repo := vcs.NewRepository()
	svc, err := ci.NewService(repo, CIRunner(&Env{Seed: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repo.Commit(proj.Files, "ivo", "popperize torpor"); err != nil {
		t.Fatal(err)
	}
	b, ok := svc.Latest()
	if !ok {
		t.Fatal("no build")
	}
	if b.Status != ci.StatusPassed {
		t.Fatalf("build = %s\n%s", b.Status, b.Log)
	}
	if len(b.Steps) != 4 {
		t.Fatalf("steps = %d", len(b.Steps))
	}
	if !strings.Contains(b.Log, "Popperized") {
		t.Fatalf("log missing compliance report:\n%s", b.Log)
	}
}

func TestCICatchesBrokenOrchestration(t *testing.T) {
	proj := Init()
	proj.AddExperiment("gassyfs", "e")
	// a commit breaks setup.yml
	proj.Files[ExperimentDir+"/e/setup.yml"] = []byte("- name: broken\n  hosts: all")
	proj.Files[CIFile] = []byte("script:\n  - popper lint\n")

	repo := vcs.NewRepository()
	svc, _ := ci.NewService(repo, CIRunner(&Env{Seed: 1}))
	repo.Commit(proj.Files, "x", "break the playbook")
	b, _ := svc.Latest()
	if b.Status != ci.StatusFailed {
		t.Fatalf("lint should fail the build: %s\n%s", b.Status, b.Log)
	}
}

func TestCICatchesNonCompliance(t *testing.T) {
	proj := Init()
	proj.AddExperiment("gassyfs", "e")
	delete(proj.Files, ExperimentDir+"/e/validations.aver")
	proj.Files[CIFile] = []byte("script:\n  - popper check\n")

	repo := vcs.NewRepository()
	svc, _ := ci.NewService(repo, CIRunner(&Env{Seed: 1}))
	repo.Commit(proj.Files, "x", "drop validations")
	b, _ := svc.Latest()
	if b.Status != ci.StatusFailed {
		t.Fatalf("check should fail: %s", b.Status)
	}
	if !strings.Contains(b.Log, "NOT compliant") {
		t.Fatalf("log:\n%s", b.Log)
	}
}

func TestCICatchesBrokenPaper(t *testing.T) {
	proj := Init()
	proj.Files["paper/paper.tex"] = []byte("no longer latex")
	proj.Files[CIFile] = []byte("script:\n  - ./paper/build.sh\n")

	repo := vcs.NewRepository()
	svc, _ := ci.NewService(repo, CIRunner(&Env{Seed: 1}))
	repo.Commit(proj.Files, "x", "break the paper")
	b, _ := svc.Latest()
	if b.Status != ci.StatusFailed {
		t.Fatalf("paper build should fail: %s", b.Status)
	}
}

func TestCIMatrixOverridesParams(t *testing.T) {
	proj := Init()
	proj.AddExperiment("zlog", "log")
	proj.SetParam("log", "appends", "64")
	proj.Files[CIFile] = []byte(`
script:
  - ./experiments/log/run.sh
env:
  matrix:
    - BATCHES=1,8
`)
	repo := vcs.NewRepository()
	svc, _ := ci.NewService(repo, CIRunner(&Env{Seed: 1}))
	repo.Commit(proj.Files, "x", "run matrix")
	b, _ := svc.Latest()
	if b.Status != ci.StatusPassed {
		t.Fatalf("matrix run failed: %s\n%s", b.Status, b.Log)
	}
}

func TestCIUnknownCommand(t *testing.T) {
	proj := Init()
	proj.Files[CIFile] = []byte("script:\n  - make moonshot\n")
	repo := vcs.NewRepository()
	svc, _ := ci.NewService(repo, CIRunner(&Env{Seed: 1}))
	repo.Commit(proj.Files, "x", "bad script")
	b, _ := svc.Latest()
	if b.Status != ci.StatusFailed {
		t.Fatalf("unknown command should fail: %s", b.Status)
	}
}

// TestPerformanceRegressionLoop demonstrates the paper's automated
// performance-regression workflow: a code change that destroys the
// scalability property is caught by the Aver assertion on the next CI
// build.
func TestPerformanceRegressionLoop(t *testing.T) {
	proj := Init()
	proj.AddExperiment("gassyfs", "scaling")
	proj.SetParam("scaling", "nodes", "1,2,4")
	proj.SetParam("scaling", "sources", "24")
	proj.SetParam("scaling", "segment_mb", "64")
	proj.Files[CIFile] = []byte("script:\n  - ./experiments/scaling/run.sh\n")

	repo := vcs.NewRepository()
	svc, _ := ci.NewService(repo, CIRunner(&Env{Seed: 1}))
	repo.Commit(proj.Files, "x", "good experiment")
	b, _ := svc.Latest()
	if b.Status != ci.StatusPassed {
		t.Fatalf("baseline build failed:\n%s", b.Log)
	}

	// A "regression": someone pins the experiment to a single node,
	// silently breaking the scalability claim.
	proj.SetParam("scaling", "nodes", "4,4")
	repo.Commit(proj.Files, "x", "accidental regression")
	b, _ = svc.Latest()
	if b.Status != ci.StatusFailed {
		t.Fatalf("regression must fail CI: %s\n%s", b.Status, b.Log)
	}
}
