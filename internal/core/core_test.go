package core

import (
	"strings"
	"testing"

	"popper/internal/container"
	"popper/internal/dataset"
	"popper/internal/weather"
)

func TestInitLayout(t *testing.T) {
	p := Init()
	for _, path := range []string{ConfigFile, "README.md", CIFile, "paper/build.sh", "paper/paper.tex"} {
		if _, ok := p.Files[path]; !ok {
			t.Errorf("init missing %s", path)
		}
	}
	if !Initialized(p.Files) {
		t.Fatal("Initialized should be true")
	}
	if len(p.Experiments()) != 0 {
		t.Fatalf("fresh repo has experiments: %v", p.Experiments())
	}
}

func TestLoadValidation(t *testing.T) {
	if _, err := Load(nil); err == nil {
		t.Fatal("nil workspace must fail")
	}
	if _, err := Load(map[string][]byte{"README.md": nil}); err == nil {
		t.Fatal("uninitialized workspace must fail")
	}
	p := Init()
	if _, err := Load(p.Files); err != nil {
		t.Fatal(err)
	}
}

func TestTemplateRegistryMatchesPaper(t *testing.T) {
	// Listing lst:poppercli names exactly these nine templates.
	paperList := []string{
		"ceph-rados", "proteustm", "mpi-comm-variability",
		"cloverleaf", "gassyfs", "zlog",
		"spark-standalone", "torpor", "malacology",
	}
	have := map[string]bool{}
	for _, n := range Templates() {
		have[n] = true
	}
	for _, want := range paperList {
		if !have[want] {
			t.Errorf("template %q from the paper's listing is missing", want)
		}
	}
	if !have["jupyter-bww"] {
		t.Error("jupyter-bww (Listing lst:bootstrap) is missing")
	}
	if _, err := TemplateByName("gassyfs"); err != nil {
		t.Fatal(err)
	}
	if _, err := TemplateByName("nope"); err == nil {
		t.Fatal("unknown template must fail")
	}
	listing := FormatTemplateList()
	if !strings.Contains(listing, "available templates") || !strings.Contains(listing, "gassyfs") {
		t.Fatalf("listing:\n%s", listing)
	}
}

func TestAddExperiment(t *testing.T) {
	p := Init()
	if err := p.AddExperiment("torpor", "myexp"); err != nil {
		t.Fatal(err)
	}
	for _, rel := range []string{"run.sh", "setup.yml", "vars.yml", "validations.aver", "README.md"} {
		if _, ok := p.ExperimentFile("myexp", rel); !ok {
			t.Errorf("myexp missing %s", rel)
		}
	}
	if got := p.Experiments(); len(got) != 1 || got[0] != "myexp" {
		t.Fatalf("experiments = %v", got)
	}
	// errors
	if err := p.AddExperiment("torpor", "myexp"); err == nil {
		t.Fatal("duplicate must fail")
	}
	if err := p.AddExperiment("ghost", "x"); err == nil {
		t.Fatal("unknown template must fail")
	}
	for _, bad := range []string{"", "a/b", "a b"} {
		if err := p.AddExperiment("torpor", bad); err == nil {
			t.Errorf("name %q must fail", bad)
		}
	}
}

func TestParamsFlattening(t *testing.T) {
	p := Init()
	p.Files[expPath("e", "vars.yml")] = []byte(`
template: gassyfs
nodes: [1, 2, 4]
nested:
  key: value
flag: true
count: 7
`)
	params, err := p.Params("e")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"template": "gassyfs", "nodes": "1,2,4",
		"nested.key": "value", "flag": "true", "count": "7",
	}
	for k, v := range want {
		if params[k] != v {
			t.Errorf("param %s = %q, want %q", k, params[k], v)
		}
	}
	if _, err := p.Params("ghost"); err == nil {
		t.Fatal("missing vars.yml must fail")
	}
}

func TestSetParam(t *testing.T) {
	p := Init()
	p.AddExperiment("gassyfs", "e")
	if err := p.SetParam("e", "nodes", "1,2"); err != nil {
		t.Fatal(err)
	}
	params, _ := p.Params("e")
	if params["nodes"] != "1,2" {
		t.Fatalf("nodes = %q", params["nodes"])
	}
	if err := p.SetParam("ghost", "k", "v"); err == nil {
		t.Fatal("missing experiment must fail")
	}
}

func TestComplianceCheck(t *testing.T) {
	p := Init()
	p.AddExperiment("gassyfs", "scaling")
	rep := p.Check()
	if !rep.Compliant() {
		t.Fatalf("fresh template should be compliant:\n%s", rep.String())
	}
	if !strings.Contains(rep.String(), "Popperized") {
		t.Fatalf("report:\n%s", rep.String())
	}
	// break it: remove the validation criteria
	delete(p.Files, expPath("scaling", "validations.aver"))
	rep = p.Check()
	if rep.Compliant() {
		t.Fatal("missing validations must break compliance")
	}
	found := false
	for _, e := range rep.Experiments {
		for _, m := range e.Missing() {
			if m == "validation criteria" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("missing element not reported:\n%s", rep.String())
	}
	if !strings.Contains(rep.String(), "NOT compliant") {
		t.Fatalf("report:\n%s", rep.String())
	}
	// break repo-level items
	p2 := Init()
	delete(p2.Files, CIFile)
	if p2.Check().Compliant() {
		t.Fatal("missing CI config must break compliance")
	}
}

func TestPopperize(t *testing.T) {
	p := Init()
	adhoc := map[string][]byte{
		"measure.sh":    []byte("#!/bin/sh\nmpirun lulesh"),
		"analysis.xlsx": []byte("binary spreadsheet"),
		"run.sh":        []byte("#!/bin/sh\nexisting driver"),
	}
	created, err := p.Popperize("lulesh-study", adhoc)
	if err != nil {
		t.Fatal(err)
	}
	// run.sh existed; setup.yml, vars.yml, validations.aver, datasets/.gitkeep created
	if created != 4 {
		t.Fatalf("created = %d, want 4", created)
	}
	if b, ok := p.ExperimentFile("lulesh-study", "run.sh"); !ok || !strings.Contains(string(b), "existing driver") {
		t.Fatal("existing files must be preserved")
	}
	rep := p.Check()
	if !rep.Compliant() {
		t.Fatalf("popperized experiment should be compliant:\n%s", rep.String())
	}
	if _, err := p.Popperize("lulesh-study", nil); err == nil {
		t.Fatal("duplicate must fail")
	}
	if _, err := p.Popperize("bad name", nil); err == nil {
		t.Fatal("bad name must fail")
	}
}

func TestBuildPaper(t *testing.T) {
	p := Init()
	if err := p.BuildPaper(); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Files["paper/paper.pdf"]; !ok {
		t.Fatal("pdf artifact missing")
	}
	// figures get referenced
	p.Files[expPath("e", "figure.svg")] = []byte("<svg/>")
	p.BuildPaper()
	if !strings.Contains(string(p.Files["paper/paper.pdf"]), "experiments/e/figure.svg") {
		t.Fatal("figure not embedded in paper manifest")
	}
	// errors
	p.Files["paper/paper.tex"] = []byte("not latex")
	if err := p.BuildPaper(); err == nil {
		t.Fatal("non-latex must fail")
	}
	p.Files["paper/paper.tex"] = []byte("\\documentclass{x}\n\\begin{document}")
	if err := p.BuildPaper(); err == nil {
		t.Fatal("unbalanced document must fail")
	}
	delete(p.Files, "paper/paper.tex")
	if err := p.BuildPaper(); err == nil {
		t.Fatal("missing source must fail")
	}
}

func TestDatasetRefs(t *testing.T) {
	p := Init()
	p.AddExperiment("jupyter-bww", "airtemp")
	ref := dataset.Ref{Name: "air-temperature", Version: "1.0", ManifestHash: "abc"}
	p.AddDatasetRef("airtemp", ref)
	refs, err := p.DatasetRefs("airtemp")
	if err != nil || len(refs) != 1 || refs[0] != ref {
		t.Fatalf("refs = %v, %v", refs, err)
	}
	// corrupt ref fails
	p.Files[expPath("airtemp", "datasets/bad.ref")] = []byte("junk")
	if _, err := p.DatasetRefs("airtemp"); err == nil {
		t.Fatal("corrupt ref must fail")
	}
}

// publishAirTemp puts a small weather dataset in a store.
func publishAirTemp(t *testing.T) (*dataset.Store, dataset.Ref) {
	t.Helper()
	arr, err := weather.Generate(weather.ReanalysisSpec{
		Days: 360, LatStep: 30, LonStep: 90, NoiseK: 0.5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	csv, err := weather.EncodeCSV(arr)
	if err != nil {
		t.Fatal(err)
	}
	store := dataset.NewStore()
	ref, err := store.Publish("air-temperature", "1.0.0", "NCEP/NCAR-style reanalysis", "bigweatherweb.org",
		map[string][]byte{"air.csv": csv})
	if err != nil {
		t.Fatal(err)
	}
	return store, ref
}

func TestRunBWWWithInstalledDataset(t *testing.T) {
	store, ref := publishAirTemp(t)
	p := Init()
	p.AddExperiment("jupyter-bww", "airtemp")
	p.AddDatasetRef("airtemp", ref)

	res, err := p.RunExperiment("airtemp", &Env{Seed: 1, Store: store})
	if err != nil {
		t.Fatalf("%v\nlog:\n%s", err, res.Record.Log)
	}
	if !res.Passed() {
		t.Fatalf("run did not pass:\n%s", res.Record.Log)
	}
	if !strings.Contains(res.Record.Log, "installed dataset air-temperature@1.0.0") {
		t.Fatalf("dataset not installed:\n%s", res.Record.Log)
	}
	if _, ok := p.ExperimentFile("airtemp", "results.csv"); !ok {
		t.Fatal("results.csv missing")
	}
	if _, ok := p.ExperimentFile("airtemp", "figure.txt"); !ok {
		t.Fatal("figure.txt missing")
	}
	if _, ok := p.ExperimentFile("airtemp", "figure.svg"); !ok {
		t.Fatal("figure.svg missing")
	}
}

func TestRunWithDatasetRefButNoStore(t *testing.T) {
	_, ref := publishAirTemp(t)
	p := Init()
	p.AddExperiment("jupyter-bww", "airtemp")
	p.AddDatasetRef("airtemp", ref)
	if _, err := p.RunExperiment("airtemp", &Env{Seed: 1}); err == nil {
		t.Fatal("dataset ref without store must fail")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	p := Init()
	if _, err := p.RunExperiment("ghost", nil); err == nil {
		t.Fatal("unknown experiment must fail")
	}
	// experiment without template record
	p.Files[expPath("e", "vars.yml")] = []byte("nodes: 2\n")
	if _, err := p.RunExperiment("e", nil); err == nil {
		t.Fatal("missing template must fail")
	}
}

func TestRunBadSetupYmlFails(t *testing.T) {
	p := Init()
	p.AddExperiment("torpor", "e")
	p.SetParam("e", "ops", "20")
	p.Files[expPath("e", "setup.yml")] = []byte("- hosts: all") // no tasks
	res, err := p.RunExperiment("e", &Env{Seed: 1})
	if err == nil {
		t.Fatalf("bad setup.yml must fail the setup stage:\n%s", res.Record.Log)
	}
}

func TestRunValidationFailureSurfaces(t *testing.T) {
	p := Init()
	p.AddExperiment("torpor", "e")
	p.SetParam("e", "ops", "20")
	// impossible criteria
	p.Files[expPath("e", "validations.aver")] = []byte("expect speedup > 1000\n")
	res, err := p.RunExperiment("e", &Env{Seed: 1})
	if err == nil {
		t.Fatal("validation failure must fail the run")
	}
	if res.Passed() {
		t.Fatal("result must not pass")
	}
	if len(res.Validation) == 0 {
		t.Fatal("validation results must be captured")
	}
}

func TestPackageAndUnpackExperiment(t *testing.T) {
	p := Init()
	p.AddExperiment("zlog", "log")
	reg := container.NewRegistry()
	eng := container.NewEngine(reg)
	img, err := PackageExperiment(p, "log", eng, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if img.Labels["popper.experiment"] != "log" || img.Labels["popper.template"] != "zlog" {
		t.Fatalf("labels = %v", img.Labels)
	}
	// running the image prints the parametrization (the self-describing
	// deploy of the reader workflow)
	ctr, err := eng.Run(img.Ref())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ctr.Logs(), "template: zlog") {
		t.Fatalf("logs = %q", ctr.Logs())
	}
	// a reader unpacks it into a fresh repository and runs it
	reader := Init()
	name, err := UnpackExperiment(reader, img)
	if err != nil || name != "log" {
		t.Fatalf("unpack = %q, %v", name, err)
	}
	if !reader.Check().Compliant() {
		t.Fatalf("unpacked repo not compliant:\n%s", reader.Check().String())
	}
	res, err := reader.RunExperiment("log", &Env{Seed: 1})
	if err != nil {
		t.Fatalf("%v\n%s", err, res.Record.Log)
	}
	// duplicate unpack refused
	if _, err := UnpackExperiment(reader, img); err == nil {
		t.Fatal("duplicate unpack must fail")
	}
}

func TestPackageExperimentErrors(t *testing.T) {
	p := Init()
	p.AddExperiment("zlog", "log")
	if _, err := PackageExperiment(p, "log", nil, "v1"); err == nil {
		t.Fatal("nil engine must fail")
	}
	reg := container.NewRegistry()
	eng := container.NewEngine(reg)
	if _, err := PackageExperiment(p, "ghost", eng, "v1"); err == nil {
		t.Fatal("unknown experiment must fail")
	}
	// unlabeled image refused on unpack
	img, _ := eng.Build("FROM scratch\nCOPY f /experiment/f\nCMD true",
		map[string][]byte{"f": []byte("x")}, "raw", "1")
	if _, err := UnpackExperiment(p, img); err == nil {
		t.Fatal("unlabeled image must fail")
	}
}

func TestBuiltPDFIsNotManuscriptSource(t *testing.T) {
	p := Init()
	if err := p.BuildPaper(); err != nil {
		t.Fatal(err)
	}
	delete(p.Files, "paper/paper.tex")
	if p.Check().HasPaper {
		t.Fatal("a built paper.pdf must not satisfy the manuscript requirement")
	}
	// a markdown manuscript does
	p.Files["paper/paper.md"] = []byte("# title")
	if !p.Check().HasPaper {
		t.Fatal("paper.md should satisfy the manuscript requirement")
	}
}

func TestPaperTemplates(t *testing.T) {
	names := PaperTemplates()
	if len(names) < 3 {
		t.Fatalf("paper templates = %v", names)
	}
	listing := FormatPaperTemplateList()
	for _, n := range []string{"article", "bams", "sigplanconf"} {
		if !strings.Contains(listing, n) {
			t.Errorf("listing missing %s:\n%s", n, listing)
		}
	}
	p := Init()
	if err := p.AddPaper("bams"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(p.Files["paper/paper.tex"]), "Data-Centric") {
		t.Fatal("bams template not applied")
	}
	// every paper template must build
	for _, n := range names {
		p2 := Init()
		if err := p2.AddPaper(n); err != nil {
			t.Fatal(err)
		}
		if err := p2.BuildPaper(); err != nil {
			t.Errorf("template %s does not build: %v", n, err)
		}
	}
	if err := p.AddPaper("ghost"); err == nil {
		t.Fatal("unknown paper template must fail")
	}
}

func TestReport(t *testing.T) {
	p := Init()
	p.AddExperiment("zlog", "log")
	p.SetParam("log", "appends", "64")
	// before running: placeholder
	out, err := p.Report()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "No results yet") {
		t.Fatalf("pre-run report:\n%s", out)
	}
	if _, err := p.RunExperiment("log", &Env{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	out, err = p.Report()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"compliant", "experiments/log", "<svg", "PASS",
		"appends_per_sec", "increasing(batch, appends_per_sec)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// a failing validation shows up as FAIL
	p.Files[expPath("log", "validations.aver")] = []byte("expect max(appends_per_sec) < 0\n")
	out, _ = p.Report()
	if !strings.Contains(out, "FAIL") {
		t.Fatal("failing assertion must render as FAIL")
	}
	// corrupt results surface an inline error, not a crash
	p.Files[expPath("log", "results.csv")] = []byte("")
	if _, err := p.Report(); err == nil {
		t.Fatal("corrupt results.csv must error")
	}
}
