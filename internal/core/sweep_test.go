package core

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"popper/internal/pipeline"
)

// sweepProject builds a small cloverleaf project cheap enough to run
// many configurations of.
func sweepProject(t *testing.T) *Project {
	t.Helper()
	p := Init()
	if err := p.AddExperiment("cloverleaf", "sweep"); err != nil {
		t.Fatal(err)
	}
	p.SetParam("sweep", "nodes", "1,2")
	p.SetParam("sweep", "iterations", "2")
	p.SetParam("sweep", "problem_size", "8")
	return p
}

func TestRunSweepParallelMatchesSerial(t *testing.T) {
	configs := []map[string]string{
		{"seed": "1"}, {"seed": "2"}, {"seed": "3"}, {"seed": "4"},
	}
	run := func(jobs int) (*Project, SweepResult) {
		p := sweepProject(t)
		sr, err := p.RunSweep("sweep", &Env{Seed: 5}, configs, SweepOptions{Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		if err := sr.Err(); err != nil {
			t.Fatal(err)
		}
		return p, sr
	}
	pSerial, srSerial := run(1)
	pParallel, srParallel := run(4)
	if !srSerial.Passed() || !srParallel.Passed() {
		t.Fatal("both sweeps must pass")
	}
	// Deterministic fan-out: the merged result table is byte-identical
	// regardless of worker count.
	serialCSV := string(pSerial.Files[expPath("sweep", "results.csv")])
	parallelCSV := string(pParallel.Files[expPath("sweep", "results.csv")])
	if serialCSV != parallelCSV {
		t.Fatalf("parallel merge diverged from serial:\n--- serial\n%s\n--- parallel\n%s", serialCSV, parallelCSV)
	}
	// Per-configuration outputs are namespaced by index.
	for _, rel := range []string{"sweep/000/results.csv", "sweep/003/results.csv"} {
		if _, ok := pParallel.Files[expPath("sweep", rel)]; !ok {
			t.Errorf("missing %s", rel)
		}
	}
	// ResultHashes line up config-by-config.
	for i := range srSerial.Runs {
		s, par := srSerial.Runs[i], srParallel.Runs[i]
		if s.Result.Record.ResultHash != par.Result.Record.ResultHash {
			t.Fatalf("config %d hash diverged: %s vs %s", i, s.Result.Record.ResultHash, par.Result.Record.ResultHash)
		}
	}
}

func TestRunSweepCollectsErrors(t *testing.T) {
	p := sweepProject(t)
	configs := []map[string]string{
		{"seed": "1"},
		{"nodes": "bogus"}, // non-integer node list fails the run stage
		{"seed": "3"},
	}
	sr, err := p.RunSweep("sweep", &Env{Seed: 1}, configs, SweepOptions{Jobs: 3})
	if err != nil {
		t.Fatalf("per-config failures must not surface as a sweep-level error: %v", err)
	}
	if sr.Passed() {
		t.Fatal("sweep with a failing config must not pass")
	}
	failed := sr.Failed()
	if len(failed) != 1 || failed[0].Index != 1 {
		t.Fatalf("failed = %+v", failed)
	}
	// The other configurations completed and merged.
	if sr.Runs[0].Err != nil || sr.Runs[2].Err != nil {
		t.Fatalf("healthy configs aborted: %v / %v", sr.Runs[0].Err, sr.Runs[2].Err)
	}
	if sr.Results == nil || sr.Results.Len() == 0 {
		t.Fatal("surviving configs must still merge results")
	}
	aggErr := sr.Err()
	if aggErr == nil {
		t.Fatal("aggregate error expected")
	}
	msg := aggErr.Error()
	if !strings.Contains(msg, "1/3 configurations failed") || !strings.Contains(msg, "nodes=bogus") {
		t.Fatalf("aggregate error = %q", msg)
	}
}

func TestRunSweepSharedCache(t *testing.T) {
	cache := pipeline.NewCache()
	// Configurations share the seed, so the setup stage (which depends
	// only on the seed parameter) is computed once and replayed for the
	// other configurations.
	configs := []map[string]string{
		{"iterations": "2"}, {"iterations": "3"},
	}
	p := sweepProject(t)
	sr, err := p.RunSweep("sweep", &Env{Seed: 2}, configs, SweepOptions{Jobs: 1, Cache: cache})
	if err != nil || sr.Err() != nil {
		t.Fatalf("first sweep: %v / %v", err, sr.Err())
	}
	coldHits := cache.Stats().Hits
	if coldHits == 0 {
		t.Fatal("setup stage should replay across same-seed configurations")
	}

	// An identical sweep replays every cacheable stage.
	p2 := sweepProject(t)
	sr2, err := p2.RunSweep("sweep", &Env{Seed: 2}, configs, SweepOptions{Jobs: 2, Cache: cache})
	if err != nil || sr2.Err() != nil {
		t.Fatalf("second sweep: %v / %v", err, sr2.Err())
	}
	for i, run := range sr2.Runs {
		if run.Result.Record.CacheHits != 3 {
			t.Fatalf("config %d: CacheHits = %d, want 3 (setup, run, post-run)\n%s",
				i, run.Result.Record.CacheHits, run.Result.Record.Log)
		}
	}
	// Cached replay reproduces the original results exactly.
	for i := range sr.Runs {
		if sr.Runs[i].Result.Record.ResultHash != sr2.Runs[i].Result.Record.ResultHash {
			t.Fatalf("config %d: cached replay changed the result hash", i)
		}
	}
	// A different environment seed is a different cache universe.
	p3 := sweepProject(t)
	sr3, err := p3.RunSweep("sweep", &Env{Seed: 3}, configs, SweepOptions{Jobs: 1, Cache: cache})
	if err != nil || sr3.Err() != nil {
		t.Fatalf("third sweep: %v / %v", err, sr3.Err())
	}
	if sr3.Runs[0].Result.Record.CacheHits != 0 {
		t.Fatal("changed env seed must miss the cache")
	}
}

func TestRunSweepMergedAnnotations(t *testing.T) {
	p := sweepProject(t)
	configs := []map[string]string{
		{"problem_size": "8"}, {"problem_size": "12"},
	}
	sr, err := p.RunSweep("sweep", &Env{Seed: 1}, configs, SweepOptions{})
	if err != nil || sr.Err() != nil {
		t.Fatalf("%v / %v", err, sr.Err())
	}
	if sr.Results == nil || !sr.Results.HasColumn("problem_size") {
		t.Fatalf("merged table must carry the swept parameter: %v", sr.Results.Columns())
	}
	// Two configurations x two node counts = four rows.
	if sr.Results.Len() != 4 {
		t.Fatalf("merged rows = %d, want 4\n%s", sr.Results.Len(), sr.Results.CSV())
	}
	seen := map[string]int{}
	for r := 0; r < sr.Results.Len(); r++ {
		seen[sr.Results.MustCell(r, "problem_size").Text()]++
	}
	if seen["8"] != 2 || seen["12"] != 2 {
		t.Fatalf("annotation counts = %v", seen)
	}
}

func TestRunSweepDefaults(t *testing.T) {
	p := sweepProject(t)
	sr, err := p.RunSweep("sweep", nil, nil, SweepOptions{})
	if err != nil || sr.Err() != nil {
		t.Fatalf("%v / %v", err, sr.Err())
	}
	if len(sr.Runs) != 1 || FormatOverrides(sr.Runs[0].Overrides) != "defaults" {
		t.Fatalf("runs = %+v", sr.Runs)
	}
	if !sr.Passed() {
		t.Fatal("default sweep must pass")
	}
}

func TestRunSweepUnknownExperiment(t *testing.T) {
	p := Init()
	if _, err := p.RunSweep("ghost", &Env{Seed: 1}, nil, SweepOptions{}); err == nil {
		t.Fatal("unknown experiment must fail at the sweep level")
	}
}

func TestParseSweep(t *testing.T) {
	configs, err := ParseSweep("seed: [1, 2]\nproblem_size: 8\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(configs) != 2 {
		t.Fatalf("configs = %v", configs)
	}
	// Deterministic order: axes sorted by name, last axis fastest.
	if configs[0]["seed"] != "1" || configs[1]["seed"] != "2" {
		t.Fatalf("configs = %v", configs)
	}
	for _, c := range configs {
		if c["problem_size"] != "8" {
			t.Fatalf("scalar axis must pin a single value: %v", c)
		}
	}
	for _, bad := range []string{"", "axis: []\n"} {
		if _, err := ParseSweep(bad); err == nil {
			t.Fatalf("ParseSweep(%q) should fail", bad)
		}
	}
}

func TestFormatOverrides(t *testing.T) {
	if got := FormatOverrides(nil); got != "defaults" {
		t.Fatalf("nil overrides = %q", got)
	}
	if got := FormatOverrides(map[string]string{"b": "2", "a": "1"}); got != "a=1 b=2" {
		t.Fatalf("overrides = %q", got)
	}
}

func TestResumeErrorOnCorruptJournal(t *testing.T) {
	p := sweepProject(t)
	configs := []map[string]string{{"seed": "1"}, {"seed": "2"}}
	if _, err := p.RunSweep("sweep", &Env{Seed: 5}, configs, SweepOptions{Jobs: 1}); err != nil {
		t.Fatal(err)
	}
	journalPath := expPath("sweep", SweepJournalFile)
	raw := p.Files[journalPath]
	p.Files[journalPath] = raw[:len(raw)/2] // torn mid-row, as a crash would leave it
	_, err := p.RunSweep("sweep", &Env{Seed: 5}, configs, SweepOptions{Jobs: 1, Resume: true})
	var rerr *ResumeError
	if !errors.As(err, &rerr) {
		t.Fatalf("want ResumeError for a torn journal, got %v", err)
	}
	if rerr.Experiment != "sweep" || rerr.Path != journalPath {
		t.Fatalf("ResumeError fields: %+v", rerr)
	}
	if !strings.Contains(err.Error(), "popper fsck") {
		t.Fatalf("error should point at the repair path: %v", err)
	}
}

func TestResumeErrorOnMissingJournalWithOutputs(t *testing.T) {
	p := sweepProject(t)
	configs := []map[string]string{{"seed": "1"}, {"seed": "2"}}
	if _, err := p.RunSweep("sweep", &Env{Seed: 5}, configs, SweepOptions{Jobs: 1}); err != nil {
		t.Fatal(err)
	}
	delete(p.Files, expPath("sweep", SweepJournalFile))
	_, err := p.RunSweep("sweep", &Env{Seed: 5}, configs, SweepOptions{Jobs: 1, Resume: true})
	var rerr *ResumeError
	if !errors.As(err, &rerr) {
		t.Fatalf("want ResumeError when outputs exist without a journal, got %v", err)
	}
	// A genuinely fresh sweep (no outputs at all) resumes as a plain run.
	fresh := sweepProject(t)
	if _, err := fresh.RunSweep("sweep", &Env{Seed: 5}, configs, SweepOptions{Jobs: 1, Resume: true}); err != nil {
		t.Fatalf("resume on a fresh project must fall through to a full run: %v", err)
	}
}

func TestDurableJournalIncremental(t *testing.T) {
	p := sweepProject(t)
	configs := []map[string]string{{"seed": "1"}, {"seed": "2"}, {"seed": "3"}}
	var mu sync.Mutex
	var calls [][]byte
	var paths []string
	sr, err := p.RunSweep("sweep", &Env{Seed: 5}, configs, SweepOptions{
		Jobs: 3,
		Durable: func(path string, data []byte) error {
			mu.Lock()
			defer mu.Unlock()
			paths = append(paths, path)
			calls = append(calls, append([]byte(nil), data...))
			return nil
		},
	})
	if err != nil || !sr.Passed() {
		t.Fatalf("sweep: %v (passed=%v)", err, sr.Passed())
	}
	if len(calls) != len(configs) {
		t.Fatalf("want one durable write per completed config, got %d", len(calls))
	}
	journalPath := expPath("sweep", SweepJournalFile)
	for _, got := range paths {
		if got != journalPath {
			t.Fatalf("durable write path %q, want %q", got, journalPath)
		}
	}
	// The last incremental write is byte-identical to the journal the
	// final sync persists: the store sees it as already clean.
	if want := string(p.Files[journalPath]); string(calls[len(calls)-1]) != want {
		t.Fatalf("final incremental journal differs from synced journal:\n--- incremental\n%s\n--- synced\n%s",
			calls[len(calls)-1], want)
	}
	// Every intermediate write parses and only ever grows.
	for i, c := range calls {
		ents, err := parseSweepJournal(c)
		if err != nil {
			t.Fatalf("incremental journal %d does not parse: %v", i, err)
		}
		if len(ents) != i+1 {
			t.Fatalf("incremental journal %d has %d rows, want %d", i, len(ents), i+1)
		}
	}
}

func TestDurableJournalErrorFailsSweep(t *testing.T) {
	p := sweepProject(t)
	configs := []map[string]string{{"seed": "1"}, {"seed": "2"}, {"seed": "3"}}
	boom := errors.New("disk on fire")
	var n int32
	_, err := p.RunSweep("sweep", &Env{Seed: 5}, configs, SweepOptions{
		Jobs: 1,
		Durable: func(string, []byte) error {
			atomic.AddInt32(&n, 1)
			return boom
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("durable sink failure must fail the sweep: %v", err)
	}
	if atomic.LoadInt32(&n) != 1 {
		t.Fatalf("first durable error must stop further writes, got %d calls", n)
	}
}
