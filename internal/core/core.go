// Package core implements the Popper convention — the paper's primary
// contribution. It defines the repository layout (paper/ +
// experiments/<name>/ with datasets/, run.sh, setup.yml, vars.yml,
// validations.aver, results.csv, figure), the compliance check
// ("Popperized" = all artifacts available in one repository), the
// template registry behind `popper experiment list` / `popper add`, the
// experiment lifecycle runner, and the CI binding.
package core

import (
	"fmt"
	"sort"
	"strings"

	"popper/internal/dataset"
	"popper/internal/yamlite"
)

// Standard paths of the convention (Listing lst:dir of the paper).
const (
	ConfigFile    = ".popper.yml"
	CIFile        = ".travis.yml"
	PaperDir      = "paper"
	ExperimentDir = "experiments"
)

// Project is a Popper repository workspace: a flat path→content map that
// the caller typically keeps under version control (internal/vcs).
type Project struct {
	Files map[string][]byte
}

// Init creates a fresh Popper repository — `popper init`.
func Init() *Project {
	p := &Project{Files: map[string][]byte{}}
	cfg := map[string]any{
		"version":  "1",
		"metadata": map[string]any{"convention": "popper"},
	}
	p.Files[ConfigFile] = []byte(yamlite.Encode(cfg))
	p.Files["README.md"] = []byte("# A Popperized exploration\n\n" +
		"This repository follows the Popper convention: every experiment under\n" +
		"`experiments/` carries its code, orchestration, parameters, data\n" +
		"references, validation criteria and results.\n")
	p.Files[CIFile] = []byte("language: popper\nscript:\n  - popper check\n")
	p.Files[PaperDir+"/build.sh"] = []byte("#!/bin/sh\n# renders paper/paper.tex into paper.pdf\npopper-build-paper\n")
	p.Files[PaperDir+"/paper.tex"] = []byte("\\documentclass{article}\n\\begin{document}\nTitle goes here.\n\\end{document}\n")
	p.Files[ExperimentDir+"/.gitkeep"] = []byte{}
	return p
}

// Load wraps an existing workspace, verifying it was initialized.
func Load(files map[string][]byte) (*Project, error) {
	if files == nil {
		return nil, fmt.Errorf("core: nil workspace")
	}
	if _, ok := files[ConfigFile]; !ok {
		return nil, fmt.Errorf("core: not a Popper repository (no %s); run `popper init`", ConfigFile)
	}
	return &Project{Files: files}, nil
}

// Initialized reports whether the workspace carries a Popper config.
func Initialized(files map[string][]byte) bool {
	_, ok := files[ConfigFile]
	return ok
}

// Experiments lists the experiment names present in the repository.
func (p *Project) Experiments() []string {
	seen := map[string]bool{}
	prefix := ExperimentDir + "/"
	for path := range p.Files {
		if !strings.HasPrefix(path, prefix) {
			continue
		}
		rest := strings.TrimPrefix(path, prefix)
		name, _, ok := strings.Cut(rest, "/")
		if ok && name != "" {
			seen[name] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// expPath joins a path under one experiment's directory.
func expPath(name, rest string) string {
	return ExperimentDir + "/" + name + "/" + rest
}

// ExperimentFile reads a file from an experiment directory.
func (p *Project) ExperimentFile(name, rest string) ([]byte, bool) {
	b, ok := p.Files[expPath(name, rest)]
	return b, ok
}

// Params loads an experiment's vars.yml as flat string parameters.
// Nested values are flattened with dotted keys; lists are joined with
// commas.
func (p *Project) Params(name string) (map[string]string, error) {
	raw, ok := p.ExperimentFile(name, "vars.yml")
	if !ok {
		return nil, fmt.Errorf("core: experiment %q has no vars.yml", name)
	}
	doc, err := yamlite.DecodeMap(string(raw))
	if err != nil {
		return nil, fmt.Errorf("core: %s vars.yml: %w", name, err)
	}
	out := make(map[string]string)
	flatten("", doc, out)
	return out, nil
}

func flatten(prefix string, v any, out map[string]string) {
	switch t := v.(type) {
	case map[string]any:
		for k, child := range t {
			key := k
			if prefix != "" {
				key = prefix + "." + k
			}
			flatten(key, child, out)
		}
	case []any:
		parts := make([]string, len(t))
		for i, e := range t {
			parts[i] = scalarText(e)
		}
		out[prefix] = strings.Join(parts, ",")
	default:
		out[prefix] = scalarText(v)
	}
}

func scalarText(v any) string {
	switch t := v.(type) {
	case nil:
		return ""
	case string:
		return t
	case bool:
		if t {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprint(t)
	}
}

// SetParam updates one key of an experiment's vars.yml (re-encoded
// deterministically). Only top-level scalar keys are supported.
func (p *Project) SetParam(name, key, value string) error {
	raw, ok := p.ExperimentFile(name, "vars.yml")
	if !ok {
		return fmt.Errorf("core: experiment %q has no vars.yml", name)
	}
	doc, err := yamlite.DecodeMap(string(raw))
	if err != nil {
		return err
	}
	doc[key] = value
	p.Files[expPath(name, "vars.yml")] = []byte(yamlite.Encode(doc))
	return nil
}

// DatasetRefs lists the dataset references of an experiment
// (datasets/*.ref files holding dataset.Ref JSON).
func (p *Project) DatasetRefs(name string) ([]dataset.Ref, error) {
	prefix := expPath(name, "datasets/")
	var refs []dataset.Ref
	var paths []string
	for path := range p.Files {
		if strings.HasPrefix(path, prefix) && strings.HasSuffix(path, ".ref") {
			paths = append(paths, path)
		}
	}
	sort.Strings(paths)
	for _, path := range paths {
		ref, err := dataset.DecodeRef(p.Files[path])
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", path, err)
		}
		refs = append(refs, ref)
	}
	return refs, nil
}

// AddDatasetRef commits a dataset reference into an experiment.
func (p *Project) AddDatasetRef(name string, ref dataset.Ref) {
	p.Files[expPath(name, "datasets/"+ref.Name+".ref")] = dataset.EncodeRef(ref)
}

// ComplianceElement is one artifact the convention requires.
type ComplianceElement struct {
	Name    string
	Path    string
	Present bool
}

// ExperimentReport is the compliance state of one experiment.
type ExperimentReport struct {
	Name     string
	Elements []ComplianceElement
}

// Compliant reports whether every required element is present.
func (r ExperimentReport) Compliant() bool {
	for _, e := range r.Elements {
		if !e.Present {
			return false
		}
	}
	return true
}

// Missing lists the absent elements.
func (r ExperimentReport) Missing() []string {
	var out []string
	for _, e := range r.Elements {
		if !e.Present {
			out = append(out, e.Name)
		}
	}
	return out
}

// ComplianceReport covers the whole repository.
type ComplianceReport struct {
	HasPaper    bool
	HasCI       bool
	Experiments []ExperimentReport
}

// Compliant reports whole-repository compliance: paper, CI wiring and
// every experiment complete.
func (r ComplianceReport) Compliant() bool {
	if !r.HasPaper || !r.HasCI {
		return false
	}
	for _, e := range r.Experiments {
		if !e.Compliant() {
			return false
		}
	}
	return true
}

// String renders the `popper check` output.
func (r ComplianceReport) String() string {
	var sb strings.Builder
	mark := func(ok bool) string {
		if ok {
			return "ok "
		}
		return "MISSING"
	}
	fmt.Fprintf(&sb, "paper/          %s\n", mark(r.HasPaper))
	fmt.Fprintf(&sb, "ci config       %s\n", mark(r.HasCI))
	for _, e := range r.Experiments {
		status := "Popperized"
		if !e.Compliant() {
			status = "NOT compliant: missing " + strings.Join(e.Missing(), ", ")
		}
		fmt.Fprintf(&sb, "experiments/%-18s %s\n", e.Name, status)
	}
	return sb.String()
}

// requiredElements is what the paper's self-containment section demands
// of every experiment: code, orchestration, parametrization, data
// references, validation criteria (results arrive after the first run).
func requiredElements(p *Project, name string) []ComplianceElement {
	present := func(rest string) bool {
		_, ok := p.ExperimentFile(name, rest)
		return ok
	}
	hasDataset := false
	prefix := expPath(name, "datasets/")
	for path := range p.Files {
		if strings.HasPrefix(path, prefix) {
			hasDataset = true
			break
		}
	}
	return []ComplianceElement{
		{Name: "experiment code", Path: "run.sh", Present: present("run.sh")},
		{Name: "orchestration", Path: "setup.yml", Present: present("setup.yml")},
		{Name: "parametrization", Path: "vars.yml", Present: present("vars.yml")},
		{Name: "validation criteria", Path: "validations.aver", Present: present("validations.aver")},
		{Name: "data references", Path: "datasets/", Present: hasDataset},
	}
}

// Check audits the repository against the convention — `popper check`.
func (p *Project) Check() ComplianceReport {
	rep := ComplianceReport{}
	_, rep.HasPaper = p.Files[PaperDir+"/build.sh"]
	if _, ok := p.Files[PaperDir+"/paper.tex"]; !ok {
		// any manuscript *source* counts (paper/paper.md, .adoc, ...);
		// a built paper.pdf does not.
		found := false
		for path := range p.Files {
			if strings.HasPrefix(path, PaperDir+"/paper.") && !strings.HasSuffix(path, ".pdf") {
				found = true
				break
			}
		}
		rep.HasPaper = rep.HasPaper && found
	}
	for _, ciName := range []string{".popper-ci.yml", CIFile} {
		if _, ok := p.Files[ciName]; ok {
			rep.HasCI = true
			break
		}
	}
	for _, name := range p.Experiments() {
		rep.Experiments = append(rep.Experiments, ExperimentReport{
			Name:     name,
			Elements: requiredElements(p, name),
		})
	}
	return rep
}

// BuildPaper renders the manuscript (the `paper/build.sh` contract):
// it fails when sources are missing and otherwise produces a
// deterministic "PDF" artifact that embeds the figure list, so CI can
// verify "the paper is always in a state that can be built".
func (p *Project) BuildPaper() error {
	tex, ok := p.Files[PaperDir+"/paper.tex"]
	if !ok {
		return fmt.Errorf("core: paper/paper.tex missing")
	}
	if !strings.Contains(string(tex), "\\documentclass") {
		return fmt.Errorf("core: paper/paper.tex is not a LaTeX document")
	}
	if !strings.Contains(string(tex), "\\begin{document}") || !strings.Contains(string(tex), "\\end{document}") {
		return fmt.Errorf("core: paper/paper.tex has unbalanced document environment")
	}
	var figures []string
	for path := range p.Files {
		if strings.HasPrefix(path, ExperimentDir+"/") &&
			(strings.HasSuffix(path, "figure.svg") || strings.HasSuffix(path, "figure.txt")) {
			figures = append(figures, path)
		}
	}
	sort.Strings(figures)
	var sb strings.Builder
	sb.WriteString("%PDF-popper\n")
	fmt.Fprintf(&sb, "source-bytes: %d\n", len(tex))
	for _, f := range figures {
		fmt.Fprintf(&sb, "figure: %s\n", f)
	}
	p.Files[PaperDir+"/paper.pdf"] = []byte(sb.String())
	return nil
}
