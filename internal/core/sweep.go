package core

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"popper/internal/fault"
	"popper/internal/metrics"
	"popper/internal/pipeline"
	"popper/internal/sched"
	"popper/internal/table"
	"popper/internal/yamlite"
)

// SweepDir is the directory under an experiment where per-configuration
// sweep outputs are stored (experiments/<name>/sweep/<idx>/...).
const SweepDir = "sweep"

// SweepFile is the optional per-experiment sweep axes declaration; when
// present, `popper run` expands it into a configuration matrix.
const SweepFile = "sweep.yml"

// SweepJournalFile is the sweep journal, relative to the experiment
// directory: one row per configuration with a known outcome. It is what
// makes an interrupted sweep resumable — `-resume` adopts recorded
// outcomes instead of re-running them (see docs/RESILIENCE.md).
const SweepJournalFile = SweepDir + "/journal.csv"

// FailuresFile is the quarantine report written next to results.csv:
// one row per terminally failed configuration.
const FailuresFile = "failures.csv"

// SweepOptions tunes a parameter sweep.
type SweepOptions struct {
	// Jobs is the worker-pool bound: how many configurations execute
	// concurrently. <= 0 means one worker per CPU; 1 is serial.
	Jobs int
	// Cache, when set, is shared by every configuration: stages whose
	// key material is unchanged replay instead of re-executing, both
	// across configurations (setup) and across repeated sweeps.
	Cache *pipeline.Cache
	// Faults is the deterministic chaos injector threaded through every
	// configuration's pipeline (sites "pipeline/<name>/<idx>/<stage>")
	// and consulted before each configuration attempt (sites
	// "sweep/<name>/config/<idx>"). Each configuration owns its sites,
	// so the failure schedule is identical at every Jobs level.
	Faults *fault.Injector
	// Retry is the per-configuration retry policy: a configuration that
	// fails retryably is re-run from a fresh workspace clone up to
	// Retry.Max more times; injected crashes are terminal. Backoff
	// delays are deterministic (ConfigRun.BackoffSeconds).
	Retry fault.Retry
	// Resume adopts outcomes recorded in the sweep journal instead of
	// re-running configurations that already completed — the recovery
	// path after an interrupted sweep. Entries whose parameters no
	// longer match the configuration matrix are re-run.
	Resume bool
	// Limit, when > 0, executes at most that many pending
	// configurations this invocation, leaving the rest unjournaled —
	// a deterministic model of a mid-sweep interruption (the sweep
	// stops cleanly after Limit configurations; a later Resume run
	// finishes the rest).
	Limit int
	// RecordMetrics, when set, is passed through to every
	// configuration's RunOptions: each pipeline publishes the caller's
	// companion gauges (e.g. scrub_*) into its metrics registry
	// alongside cache_*.
	RecordMetrics func(*metrics.Registry)
	// Durable, when set, is called with the sweep journal (workspace
	// path + full content) after every configuration completes, so
	// progress reaches stable storage mid-sweep instead of only at the
	// final workspace sync. `popper run` wires this to the artifact
	// store's Put: a crash between configurations loses at most the
	// in-flight ones. Calls are serialized; the first error stops
	// further calls and fails the sweep.
	Durable func(path string, data []byte) error
	// Hosts, when > 0, fans the sweep across that many simulated
	// cluster hosts through the cluster scheduler (locality-aware
	// placement, work stealing, speculative straggler re-execution —
	// see docs/SCHEDULING.md). The fleet is provisioned elastically via
	// orchestrate.Runner.ScaleGroup from HostProfile machines. The
	// virtual schedule shapes SweepResult.Sched only: results, journal
	// and failures stay byte-identical to a Hosts == 0 run.
	Hosts int
	// HostProfile names the cluster.MachineProfile the simulated fleet
	// is built from; empty means "cloudlab-c220g1".
	HostProfile string
	// Placement selects how configurations are assigned to hosts
	// (sched.PlaceRoundRobin or sched.PlaceLocality).
	Placement sched.PlacementPolicy
	// Locality gives configuration i a preferred host rank — typically
	// gassyfs SweepLocality output mapping each configuration's dataset
	// to the rank holding its blocks. Consulted by PlaceLocality; -1 or
	// missing entries mean "no hint".
	Locality []int
	// Stream turns on streaming validation inside every configuration:
	// executors checkpoint partial results and assertions are evaluated
	// incrementally as rows land (RunOptions.Stream).
	Stream bool
	// FailFast (with Stream) arms early cancellation: a configuration
	// whose assertions are proven unsatisfiable mid-run is stopped on
	// the spot, and the sweep stops dispatching the remaining pending
	// configurations. Cancelled and undispatched configurations are NOT
	// journaled — like Limit cut-offs they stay pending, so a later
	// -resume run (without fail-fast) finishes the sweep with results,
	// journal and failures byte-identical to a batch-mode sweep.
	FailFast bool
}

// ResumeError reports that -resume cannot trust the sweep journal: it
// is missing while per-configuration outputs exist, or it does not
// parse (torn by a crash, or damaged). The repair path is `popper fsck
// --repair`, which restores the journal from the artifact store's
// object cache — or quarantines it, after which a plain re-run
// regenerates every configuration.
type ResumeError struct {
	Experiment string
	Path       string
	Err        error
}

func (e *ResumeError) Error() string {
	return fmt.Sprintf("core: sweep %s: cannot resume: journal %s: %v; run `popper fsck --repair`, or re-run without -resume to regenerate everything",
		e.Experiment, e.Path, e.Err)
}

func (e *ResumeError) Unwrap() error { return e.Err }

// ConfigRun is the outcome of one sweep configuration. Errors are
// collected per configuration — a failing configuration never aborts
// the remaining ones.
type ConfigRun struct {
	Index     int
	Overrides map[string]string
	Result    RunResult
	Err       error
	// Attempts is how many times the configuration executed this
	// invocation (0 when the outcome was resumed or the configuration
	// was skipped).
	Attempts int
	// Quarantined marks a terminally failed configuration: its error
	// exhausted the retry policy (or was a crash), it is excluded from
	// the merged results, and it is recorded in failures.csv.
	Quarantined bool
	// Resumed marks an outcome adopted from a prior sweep's journal
	// without re-running the configuration.
	Resumed bool
	// Skipped marks a configuration this invocation never ran to a
	// recorded outcome: SweepOptions.Limit cut it off, a fail-fast stop
	// skipped its dispatch, or streaming validation cancelled it
	// mid-run (Cancelled below).
	Skipped bool
	// Cancelled marks a configuration stopped mid-run by streaming
	// fail-fast: an assertion group was proven unsatisfiable, execution
	// was abandoned, and no outcome was journaled — it stays pending
	// and -resume re-runs it to the authoritative batch verdict.
	Cancelled bool
	// BackoffSeconds is the total virtual backoff delay charged between
	// attempts.
	BackoffSeconds float64
}

// SweepResult is the outcome of RunSweep, in configuration (index)
// order regardless of completion order.
type SweepResult struct {
	Experiment string
	Runs       []ConfigRun
	// Results is the merged result table: every completed
	// configuration's rows, annotated with the swept parameter values.
	// Nil when no configuration produced results.
	Results *table.Table
	// Failures is the quarantine table mirrored to failures.csv; nil
	// when every configuration completed.
	Failures *table.Table
	// Sched is the cluster schedule report when the sweep ran with
	// SweepOptions.Hosts > 0 (nil otherwise): per-host placement and
	// steal counts, speculation outcomes, and the virtual makespan.
	Sched *sched.ClusterReport
}

// Passed reports whether every configuration ran (or was resumed) and
// validated; a quarantined or still-pending configuration fails the
// sweep.
func (s SweepResult) Passed() bool {
	for _, r := range s.Runs {
		if r.Skipped || r.Err != nil {
			return false
		}
		if !r.Resumed && !r.Result.Passed() {
			return false
		}
	}
	return len(s.Runs) > 0
}

// Failed lists the configurations that errored (the quarantine set).
func (s SweepResult) Failed() []ConfigRun {
	var out []ConfigRun
	for _, r := range s.Runs {
		if r.Err != nil {
			out = append(out, r)
		}
	}
	return out
}

// Pending lists the configurations this invocation never ran (Limit
// interruptions); resume the sweep to finish them.
func (s SweepResult) Pending() []ConfigRun {
	var out []ConfigRun
	for _, r := range s.Runs {
		if r.Skipped {
			out = append(out, r)
		}
	}
	return out
}

// Err aggregates per-configuration failures into one error (nil when
// every configuration succeeded) — collect-and-report, not fail-fast.
func (s SweepResult) Err() error {
	failed := s.Failed()
	if len(failed) == 0 {
		return nil
	}
	lines := make([]string, 0, len(failed))
	for _, r := range failed {
		attempts := ""
		if r.Attempts > 1 {
			attempts = fmt.Sprintf(" after %d attempts", r.Attempts)
		}
		lines = append(lines, fmt.Sprintf("config %d (%s)%s: %v", r.Index, FormatOverrides(r.Overrides), attempts, r.Err))
	}
	return fmt.Errorf("core: sweep %s: %d/%d configurations failed:\n  %s",
		s.Experiment, len(failed), len(s.Runs), strings.Join(lines, "\n  "))
}

// FormatOverrides renders a configuration's overrides deterministically
// (sorted key=value pairs).
func FormatOverrides(overrides map[string]string) string {
	if len(overrides) == 0 {
		return "defaults"
	}
	keys := make([]string, 0, len(overrides))
	for k := range overrides {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + overrides[k]
	}
	return strings.Join(parts, " ")
}

// sweepJournalEntry is one parsed journal row.
type sweepJournalEntry struct {
	params   string
	status   string // "ok" or "failed"
	attempts int
	detail   string // result hash (ok) or error text (failed)
}

// parseSweepJournal decodes the journal CSV into per-index entries.
func parseSweepJournal(raw []byte) (map[int]sweepJournalEntry, error) {
	t, err := table.ParseCSV(string(raw))
	if err != nil {
		return nil, fmt.Errorf("sweep journal: %w", err)
	}
	for _, col := range []string{"config", "params", "status", "attempts", "detail"} {
		if !t.HasColumn(col) {
			return nil, fmt.Errorf("sweep journal: missing column %q", col)
		}
	}
	out := make(map[int]sweepJournalEntry, t.Len())
	for r := 0; r < t.Len(); r++ {
		idx, err := strconv.Atoi(t.MustCell(r, "config").Text())
		if err != nil {
			return nil, fmt.Errorf("sweep journal row %d: bad config index: %w", r, err)
		}
		attempts, err := strconv.Atoi(t.MustCell(r, "attempts").Text())
		if err != nil {
			return nil, fmt.Errorf("sweep journal row %d: bad attempts: %w", r, err)
		}
		out[idx] = sweepJournalEntry{
			params:   t.MustCell(r, "params").Text(),
			status:   t.MustCell(r, "status").Text(),
			attempts: attempts,
			detail:   t.MustCell(r, "detail").Text(),
		}
	}
	return out, nil
}

// journalDetail flattens an outcome detail to a single CSV-stable line.
func journalDetail(s string) string {
	return strings.ReplaceAll(strings.ReplaceAll(s, "\r", ""), "\n", " \\ ")
}

// journalRow is one configuration's journal record, owned by the
// worker that produced it.
type journalRow struct {
	index    int
	params   string
	status   string
	attempts int
	detail   string
}

// durableJournal serializes incremental journal writes: each completed
// configuration re-renders the full journal (index order, identical
// bytes to the final one) and hands it to the Durable sink. The first
// sink error stops further writes and fails the sweep.
type durableJournal struct {
	path  string
	write func(path string, data []byte) error
	mu    sync.Mutex
	rows  []journalRow
	werr  error
}

func (d *durableJournal) record(row journalRow) {
	if d.write == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.werr != nil {
		return
	}
	d.rows = append(d.rows, row)
	d.werr = d.write(d.path, journalCSV(d.rows))
}

func (d *durableJournal) err() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.werr
}

// journalCSV renders journal rows in configuration order — the same
// column set and formatting the final journal uses, so the last
// incremental write and the final sync are byte-identical.
func journalCSV(rows []journalRow) []byte {
	sorted := append([]journalRow(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].index < sorted[j].index })
	t := table.New("config", "params", "status", "attempts", "detail")
	for _, r := range sorted {
		t.MustAppend(
			table.Number(float64(r.index)), table.String(r.params), table.String(r.status),
			table.Number(float64(r.attempts)), table.String(r.detail))
	}
	return []byte(t.CSV())
}

// hasSweepOutputs reports whether any per-configuration sweep output
// exists for the experiment (journal aside) — evidence that a sweep ran
// here before.
func (p *Project) hasSweepOutputs(name string) bool {
	prefix := expPath(name, SweepDir) + "/"
	journal := expPath(name, SweepJournalFile)
	for path := range p.Files {
		if strings.HasPrefix(path, prefix) && path != journal {
			return true
		}
	}
	return false
}

// sweepConfigPath is a path under one configuration's sweep output
// directory.
func sweepConfigPath(name string, idx int, rest string) string {
	return expPath(name, fmt.Sprintf("%s/%03d/%s", SweepDir, idx, rest))
}

// RunSweep executes one experiment once per configuration, fanning the
// configurations out over a bounded worker pool. Each configuration
// runs against its own clone of the workspace, so configurations never
// race on files; outputs are merged back deterministically (index
// order) under experiments/<name>/sweep/<idx>/, and a combined result
// table — every configuration's rows annotated with its overrides —
// lands at experiments/<name>/results.csv.
//
// The sweep degrades gracefully under faults: a configuration that
// fails retryably is re-run per SweepOptions.Retry from a fresh clone;
// a configuration that fails terminally is quarantined — excluded from
// the merged results and recorded, with its attempt count and error, in
// experiments/<name>/failures.csv. Every completed configuration is
// journaled (see SweepJournalFile), and a sweep re-run with Resume set
// adopts journaled outcomes instead of re-running them, so an
// interrupted sweep finishes exactly where an uninterrupted one would
// have: results.csv, failures.csv and the journal come out
// byte-identical at any Jobs level.
//
// Per-configuration failures are collected in the returned SweepResult
// (see SweepResult.Err); the error return is reserved for sweep-level
// problems such as an unknown experiment or a corrupt journal.
func (p *Project) RunSweep(name string, env *Env, configs []map[string]string, opts SweepOptions) (SweepResult, error) {
	if env == nil {
		env = &Env{Seed: 1}
	}
	if _, err := p.TemplateOf(name); err != nil {
		return SweepResult{}, err
	}
	if len(configs) == 0 {
		configs = []map[string]string{nil}
	}
	sr := SweepResult{Experiment: name, Runs: make([]ConfigRun, len(configs))}
	clones := make([]map[string][]byte, len(configs))

	// Resume: adopt completed outcomes from the sweep journal. A journal
	// -resume cannot trust is a typed error pointing at fsck, not a
	// silent full re-run — silently discarding recorded outcomes would
	// hide the damage.
	prior := map[int]sweepJournalEntry{}
	if opts.Resume {
		journalPath := expPath(name, SweepJournalFile)
		if raw, ok := p.Files[journalPath]; ok {
			var err error
			prior, err = parseSweepJournal(raw)
			if err != nil {
				return SweepResult{}, &ResumeError{Experiment: name, Path: journalPath, Err: err}
			}
		} else if p.hasSweepOutputs(name) {
			return SweepResult{}, &ResumeError{Experiment: name, Path: journalPath,
				Err: errors.New("journal missing but per-configuration outputs exist")}
		}
	}
	var todo []int
	for i := range configs {
		run := &sr.Runs[i]
		run.Index, run.Overrides = i, configs[i]
		if ent, ok := prior[i]; ok && ent.params == FormatOverrides(configs[i]) {
			switch ent.status {
			case "ok":
				// Only adopt a success whose per-config outputs are
				// still present — the merge below re-reads them.
				if _, have := p.Files[sweepConfigPath(name, i, "results.csv")]; have {
					run.Resumed = true
					continue
				}
			case "failed":
				run.Resumed, run.Quarantined = true, true
				run.Err = fmt.Errorf("%s", ent.detail)
				continue
			}
		}
		todo = append(todo, i)
	}
	if opts.Limit > 0 && len(todo) > opts.Limit {
		for _, i := range todo[opts.Limit:] {
			sr.Runs[i].Skipped = true
		}
		todo = todo[:opts.Limit]
	}

	// Incremental durability: every completed configuration's outcome
	// reaches stable storage immediately, not just at the final sync.
	// The row set is guarded by its own mutex — workers only ever write
	// their own ConfigRun, so the journal builder must not read those.
	durable := &durableJournal{path: expPath(name, SweepJournalFile), write: opts.Durable}
	for i := range configs {
		run := &sr.Runs[i]
		if !run.Resumed {
			continue
		}
		ent := prior[i]
		durable.rows = append(durable.rows, journalRow{
			index: i, params: FormatOverrides(run.Overrides),
			status: ent.status, attempts: ent.attempts, detail: ent.detail,
		})
	}

	// runConfig executes configuration todo[k]. host is the simulated
	// host the cluster schedule placed it on (-1 on the flat path or for
	// a lost task): a federated cache charges peer transfers to that
	// host's clock. The host never influences artifacts — only virtual
	// accounting — so the flat and cluster paths stay byte-identical.
	runConfig := func(k, host int) error {
		i := todo[k]
		run := &sr.Runs[i]
		site := fmt.Sprintf("sweep/%s/config/%03d", name, i)
		for attempt := 1; ; attempt++ {
			run.Attempts = attempt
			var err error
			// Configuration-level faults model a whole config's host or
			// process failing before the pipeline even starts.
			if opts.Faults != nil {
				if f := opts.Faults.Check(site); f != nil && f.Kind != fault.Latency {
					err = f
				}
			}
			if err == nil {
				// Every attempt starts from a fresh clone: a failed
				// attempt can never leak partial state into the retry.
				files := sweepCloneFiles(p.Files, name)
				clones[i] = files
				proj := &Project{Files: files}
				run.Result, err = proj.RunExperimentOpts(name, env, RunOptions{
					Cache:         opts.Cache,
					CacheHost:     host,
					Overrides:     configs[i],
					Faults:        opts.Faults,
					FaultScope:    fmt.Sprintf("%s/%03d", name, i),
					Stream:        opts.Stream,
					FailFast:      opts.FailFast,
					RecordMetrics: opts.RecordMetrics,
				})
			}
			run.Err = err
			if errors.Is(err, ErrValidationCancelled) {
				// Streaming fail-fast abandoned the configuration mid-run.
				// Nothing is journaled: like a Limit cut-off it stays
				// pending, which keeps the journal a record of
				// authoritative batch verdicts only — a -resume run
				// re-executes it in full and lands the same journal and
				// quarantine rows a batch-mode sweep would have.
				run.Skipped, run.Cancelled, run.Err = true, true, nil
				return err // non-nil: tells a fail-fast pool to stop dispatching
			}
			if err == nil {
				durable.record(journalRow{
					index: i, params: FormatOverrides(run.Overrides),
					status: "ok", attempts: attempt, detail: run.Result.Record.ResultHash,
				})
				return nil
			}
			if fault.IsTerminal(err) || attempt > opts.Retry.Max {
				run.Quarantined = true
				durable.record(journalRow{
					index: i, params: FormatOverrides(run.Overrides),
					status: "failed", attempts: attempt, detail: journalDetail(err.Error()),
				})
				return err
			}
			run.BackoffSeconds += opts.Retry.Delay(opts.Faults.Seed(), site, attempt)
		}
	}
	if opts.Hosts > 0 {
		// Cluster path: the scheduler decides placement, steals and
		// speculation in virtual time, then executes runConfig exactly
		// once per configuration in its dispatch order — same worker
		// pool underneath, so artifacts match the flat path byte for
		// byte; only sr.Sched differs.
		rep, err := runSweepCluster(env, opts, todo, runConfig)
		if err != nil {
			return sr, fmt.Errorf("core: sweep %s: %w", name, err)
		}
		sr.Sched = rep
	} else {
		sched.NewPool(opts.Jobs).EachOpts(len(todo), func(k int) error { return runConfig(k, -1) },
			sched.Options{FailFast: opts.FailFast})
	}
	// Any scheduled configuration that never attempted execution — the
	// cluster schedule lost it, or a fail-fast stop skipped its dispatch
	// — stays pending, exactly like a Limit cut-off.
	for _, i := range todo {
		if sr.Runs[i].Attempts == 0 {
			sr.Runs[i].Skipped = true
		}
	}
	if err := durable.err(); err != nil {
		return sr, fmt.Errorf("core: sweep %s: durable journal: %w", name, err)
	}

	// Deterministic merge: index order, regardless of completion order.
	prefix := ExperimentDir + "/" + name + "/"
	var merged *table.Table
	for i := range configs {
		run := &sr.Runs[i]
		if run.Skipped || run.Err != nil {
			continue
		}
		var raw []byte
		if run.Resumed {
			// Adopted outcome: the per-config outputs already live in
			// the workspace from the journaled run.
			raw = p.Files[sweepConfigPath(name, i, "results.csv")]
		} else {
			for path, content := range clones[i] {
				if !strings.HasPrefix(path, prefix) {
					continue
				}
				rest := strings.TrimPrefix(path, prefix)
				if strings.HasPrefix(rest, SweepDir+"/") {
					continue
				}
				if orig, ok := p.Files[path]; ok && bytes.Equal(orig, content) {
					continue
				}
				p.Files[sweepConfigPath(name, i, rest)] = content
			}
			var ok bool
			raw, ok = clones[i][expPath(name, "results.csv")]
			if !ok {
				continue
			}
		}
		t, err := table.ParseCSV(string(raw))
		if err != nil {
			run.Err = fmt.Errorf("core: sweep config %d results.csv: %w", i, err)
			run.Quarantined = true
			continue
		}
		var mergeErr error
		merged, mergeErr = appendConfigRows(merged, t, configs[i])
		if mergeErr != nil {
			run.Err = fmt.Errorf("core: sweep config %d: %w", i, mergeErr)
			run.Quarantined = true
		}
	}
	sr.Results = merged
	if merged != nil {
		p.Files[expPath(name, "results.csv")] = []byte(merged.CSV())
	}

	// Quarantine report: one row per terminally failed configuration.
	failures := table.New("config", "params", "attempts", "error")
	journal := table.New("config", "params", "status", "attempts", "detail")
	for i := range configs {
		run := &sr.Runs[i]
		if run.Skipped {
			continue
		}
		params := FormatOverrides(run.Overrides)
		status, attempts, detail := "ok", run.Attempts, ""
		if run.Resumed {
			// Carry the journaled record forward verbatim so a resumed
			// sweep journals byte-identically to an uninterrupted one.
			ent := prior[i]
			attempts, detail = ent.attempts, ent.detail
		} else if run.Err != nil {
			detail = journalDetail(run.Err.Error())
		} else {
			detail = run.Result.Record.ResultHash
		}
		if run.Err != nil {
			status = "failed"
			failures.MustAppend(
				table.Number(float64(i)), table.String(params),
				table.Number(float64(attempts)), table.String(detail))
		}
		journal.MustAppend(
			table.Number(float64(i)), table.String(params), table.String(status),
			table.Number(float64(attempts)), table.String(detail))
	}
	if failures.Len() > 0 {
		sr.Failures = failures
		p.Files[expPath(name, FailuresFile)] = []byte(failures.CSV())
	} else {
		delete(p.Files, expPath(name, FailuresFile))
	}
	if journal.Len() > 0 {
		p.Files[expPath(name, SweepJournalFile)] = []byte(journal.CSV())
	}
	return sr, nil
}

// appendConfigRows folds one configuration's result rows into the
// merged sweep table, annotating them with the swept parameter values
// (override keys become columns unless the results already carry them).
func appendConfigRows(merged, t *table.Table, overrides map[string]string) (*table.Table, error) {
	var extra []string
	for k := range overrides {
		if !t.HasColumn(k) {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	if merged == nil {
		merged = table.New(append(append([]string(nil), t.Columns()...), extra...)...)
	}
	fill := make(map[string]table.Value, len(overrides))
	for k, v := range overrides {
		fill[k] = table.String(v)
	}
	return merged, merged.AppendFrom(t, fill)
}

// cloneFiles shallow-copies a workspace: paths are copied, content
// slices are shared. Stages replace entries rather than mutating bytes
// in place (the pipeline.Context contract), so clones are safe to run
// concurrently.
func cloneFiles(files map[string][]byte) map[string][]byte {
	out := make(map[string][]byte, len(files))
	for k, v := range files {
		out[k] = v
	}
	return out
}

// sweepCloneFiles clones the workspace for one configuration run,
// excluding artifacts a previous sweep invocation generated (per-config
// outputs, journal, merged results, quarantine report). A resumed
// sweep's configurations therefore see exactly the workspace an
// uninterrupted run's configurations saw — which is what makes resumed
// results (and their workspace hashes) byte-identical.
func sweepCloneFiles(files map[string][]byte, name string) map[string][]byte {
	sweepPrefix := expPath(name, SweepDir) + "/"
	skip := map[string]bool{
		expPath(name, "results.csv"): true,
		expPath(name, FailuresFile):  true,
	}
	out := make(map[string][]byte, len(files))
	for k, v := range files {
		if skip[k] || strings.HasPrefix(k, sweepPrefix) {
			continue
		}
		out[k] = v
	}
	return out
}

// ParseSweep decodes a sweep.yml document — a mapping from parameter
// name to the list of values to sweep (scalars mean a single value) —
// into the cross-product configuration matrix, in deterministic order.
func ParseSweep(src string) ([]map[string]string, error) {
	doc, err := yamlite.DecodeMap(src)
	if err != nil {
		return nil, fmt.Errorf("core: sweep.yml: %w", err)
	}
	if len(doc) == 0 {
		return nil, fmt.Errorf("core: sweep.yml declares no axes")
	}
	axes := make(map[string][]string, len(doc))
	for key, val := range doc {
		switch v := val.(type) {
		case []any:
			if len(v) == 0 {
				return nil, fmt.Errorf("core: sweep.yml axis %q has no values", key)
			}
			values := make([]string, len(v))
			for i, e := range v {
				values[i] = scalarText(e)
			}
			axes[key] = values
		default:
			axes[key] = []string{scalarText(val)}
		}
	}
	return sched.MatrixFromMap(axes), nil
}
