package core

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"popper/internal/pipeline"
	"popper/internal/sched"
	"popper/internal/table"
	"popper/internal/yamlite"
)

// SweepDir is the directory under an experiment where per-configuration
// sweep outputs are stored (experiments/<name>/sweep/<idx>/...).
const SweepDir = "sweep"

// SweepFile is the optional per-experiment sweep axes declaration; when
// present, `popper run` expands it into a configuration matrix.
const SweepFile = "sweep.yml"

// SweepOptions tunes a parameter sweep.
type SweepOptions struct {
	// Jobs is the worker-pool bound: how many configurations execute
	// concurrently. <= 0 means one worker per CPU; 1 is serial.
	Jobs int
	// Cache, when set, is shared by every configuration: stages whose
	// key material is unchanged replay instead of re-executing, both
	// across configurations (setup) and across repeated sweeps.
	Cache *pipeline.Cache
}

// ConfigRun is the outcome of one sweep configuration. Errors are
// collected per configuration — a failing configuration never aborts
// the remaining ones.
type ConfigRun struct {
	Index     int
	Overrides map[string]string
	Result    RunResult
	Err       error
}

// SweepResult is the outcome of RunSweep, in configuration (index)
// order regardless of completion order.
type SweepResult struct {
	Experiment string
	Runs       []ConfigRun
	// Results is the merged result table: every configuration's rows,
	// annotated with the swept parameter values. Nil when no
	// configuration produced results.
	Results *table.Table
}

// Passed reports whether every configuration ran and validated.
func (s SweepResult) Passed() bool {
	for _, r := range s.Runs {
		if r.Err != nil || !r.Result.Passed() {
			return false
		}
	}
	return len(s.Runs) > 0
}

// Failed lists the configurations that errored.
func (s SweepResult) Failed() []ConfigRun {
	var out []ConfigRun
	for _, r := range s.Runs {
		if r.Err != nil {
			out = append(out, r)
		}
	}
	return out
}

// Err aggregates per-configuration failures into one error (nil when
// every configuration succeeded) — collect-and-report, not fail-fast.
func (s SweepResult) Err() error {
	failed := s.Failed()
	if len(failed) == 0 {
		return nil
	}
	lines := make([]string, 0, len(failed))
	for _, r := range failed {
		lines = append(lines, fmt.Sprintf("config %d (%s): %v", r.Index, FormatOverrides(r.Overrides), r.Err))
	}
	return fmt.Errorf("core: sweep %s: %d/%d configurations failed:\n  %s",
		s.Experiment, len(failed), len(s.Runs), strings.Join(lines, "\n  "))
}

// FormatOverrides renders a configuration's overrides deterministically
// (sorted key=value pairs).
func FormatOverrides(overrides map[string]string) string {
	if len(overrides) == 0 {
		return "defaults"
	}
	keys := make([]string, 0, len(overrides))
	for k := range overrides {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + overrides[k]
	}
	return strings.Join(parts, " ")
}

// RunSweep executes one experiment once per configuration, fanning the
// configurations out over a bounded worker pool. Each configuration
// runs against its own clone of the workspace, so configurations never
// race on files; outputs are merged back deterministically (index
// order) under experiments/<name>/sweep/<idx>/, and a combined result
// table — every configuration's rows annotated with its overrides —
// lands at experiments/<name>/results.csv.
//
// Per-configuration failures are collected in the returned SweepResult
// (see SweepResult.Err); the error return is reserved for sweep-level
// problems such as an unknown experiment.
func (p *Project) RunSweep(name string, env *Env, configs []map[string]string, opts SweepOptions) (SweepResult, error) {
	if env == nil {
		env = &Env{Seed: 1}
	}
	if _, err := p.TemplateOf(name); err != nil {
		return SweepResult{}, err
	}
	if len(configs) == 0 {
		configs = []map[string]string{nil}
	}
	sr := SweepResult{Experiment: name, Runs: make([]ConfigRun, len(configs))}
	clones := make([]map[string][]byte, len(configs))

	pool := sched.NewPool(opts.Jobs)
	pool.Each(len(configs), func(i int) error {
		files := cloneFiles(p.Files)
		clones[i] = files
		proj := &Project{Files: files}
		res, err := proj.RunExperimentOpts(name, env, RunOptions{
			Cache:     opts.Cache,
			Overrides: configs[i],
		})
		sr.Runs[i] = ConfigRun{Index: i, Overrides: configs[i], Result: res, Err: err}
		return err
	})

	// Deterministic merge: index order, regardless of completion order.
	prefix := ExperimentDir + "/" + name + "/"
	var merged *table.Table
	for i := range configs {
		run := &sr.Runs[i]
		if run.Err != nil {
			continue
		}
		for path, content := range clones[i] {
			if !strings.HasPrefix(path, prefix) {
				continue
			}
			rest := strings.TrimPrefix(path, prefix)
			if strings.HasPrefix(rest, SweepDir+"/") {
				continue
			}
			if orig, ok := p.Files[path]; ok && bytes.Equal(orig, content) {
				continue
			}
			p.Files[expPath(name, fmt.Sprintf("%s/%03d/%s", SweepDir, i, rest))] = content
		}
		raw, ok := clones[i][expPath(name, "results.csv")]
		if !ok {
			continue
		}
		t, err := table.ParseCSV(string(raw))
		if err != nil {
			run.Err = fmt.Errorf("core: sweep config %d results.csv: %w", i, err)
			continue
		}
		var mergeErr error
		merged, mergeErr = appendConfigRows(merged, t, configs[i])
		if mergeErr != nil {
			run.Err = fmt.Errorf("core: sweep config %d: %w", i, mergeErr)
		}
	}
	sr.Results = merged
	if merged != nil {
		p.Files[expPath(name, "results.csv")] = []byte(merged.CSV())
	}
	return sr, nil
}

// appendConfigRows folds one configuration's result rows into the
// merged sweep table, annotating them with the swept parameter values
// (override keys become columns unless the results already carry them).
func appendConfigRows(merged, t *table.Table, overrides map[string]string) (*table.Table, error) {
	var extra []string
	for k := range overrides {
		if !t.HasColumn(k) {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	if merged == nil {
		merged = table.New(append(append([]string(nil), t.Columns()...), extra...)...)
	}
	fill := make(map[string]table.Value, len(overrides))
	for k, v := range overrides {
		fill[k] = table.String(v)
	}
	return merged, merged.AppendFrom(t, fill)
}

// cloneFiles shallow-copies a workspace: paths are copied, content
// slices are shared. Stages replace entries rather than mutating bytes
// in place (the pipeline.Context contract), so clones are safe to run
// concurrently.
func cloneFiles(files map[string][]byte) map[string][]byte {
	out := make(map[string][]byte, len(files))
	for k, v := range files {
		out[k] = v
	}
	return out
}

// ParseSweep decodes a sweep.yml document — a mapping from parameter
// name to the list of values to sweep (scalars mean a single value) —
// into the cross-product configuration matrix, in deterministic order.
func ParseSweep(src string) ([]map[string]string, error) {
	doc, err := yamlite.DecodeMap(src)
	if err != nil {
		return nil, fmt.Errorf("core: sweep.yml: %w", err)
	}
	if len(doc) == 0 {
		return nil, fmt.Errorf("core: sweep.yml declares no axes")
	}
	axes := make(map[string][]string, len(doc))
	for key, val := range doc {
		switch v := val.(type) {
		case []any:
			if len(v) == 0 {
				return nil, fmt.Errorf("core: sweep.yml axis %q has no values", key)
			}
			values := make([]string, len(v))
			for i, e := range v {
				values[i] = scalarText(e)
			}
			axes[key] = values
		default:
			axes[key] = []string{scalarText(val)}
		}
	}
	return sched.MatrixFromMap(axes), nil
}
