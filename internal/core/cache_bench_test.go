package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"popper/internal/cas"
	"popper/internal/cluster"
	"popper/internal/gasnet"
	"popper/internal/pipeline"
)

// cacheBenchSweepSize is the overlapping-sweep benchmark's matrix
// width: the acceptance criterion is pinned on a 64-configuration
// sweep.
const cacheBenchSweepSize = 64

// cacheBenchHostCounts is the federation scaling curve BENCH_cache.json
// records.
var cacheBenchHostCounts = []int{1, 16, 256}

// cacheBenchProject is sweepProject with a problem size large enough
// that stage compute — the thing the cache elides — dominates the
// per-configuration fixed costs (journaling, validation, merge), as in
// a real experiment.
func cacheBenchProject(tb testing.TB) *Project {
	tb.Helper()
	p := Init()
	if err := p.AddExperiment("cloverleaf", "sweep"); err != nil {
		tb.Fatal(err)
	}
	p.SetParam("sweep", "nodes", "1,2,4,8")
	p.SetParam("sweep", "iterations", "50")
	p.SetParam("sweep", "problem_size", "20")
	return p
}

// cacheBenchMatrix enumerates n single-parameter configurations.
func cacheBenchMatrix(n int) []map[string]string {
	configs := make([]map[string]string, n)
	for i := range configs {
		configs[i] = map[string]string{"seed": fmt.Sprintf("%d", i+1)}
	}
	return configs
}

// timeCachedSweep runs one n-configuration sweep on a fresh project
// sharing cache (federating across hosts simulated hosts when
// hosts > 0) and returns the wall-clock duration of the sweep alone.
func timeCachedSweep(tb testing.TB, cache *pipeline.Cache, n, hosts int) time.Duration {
	tb.Helper()
	p := cacheBenchProject(tb)
	start := time.Now()
	sr, err := p.RunSweep("sweep", &Env{Seed: 2}, cacheBenchMatrix(n), SweepOptions{
		Jobs: 1, Hosts: hosts, Cache: cache,
	})
	elapsed := time.Since(start)
	if err != nil || !sr.Passed() {
		tb.Fatalf("bench sweep (hosts=%d): %v / %v", hosts, err, sr.Err())
	}
	return elapsed
}

// TestWarmSweepSpeedupAtLeast5x is the overlapping-sweep acceptance
// criterion: re-running a 64-configuration sweep against the cache the
// first run populated must complete at least 5x faster, because every
// stage replays from the tier instead of executing. The warm time is
// the best of three runs so scheduler noise on a loaded machine cannot
// fail a genuine speedup.
func TestWarmSweepSpeedupAtLeast5x(t *testing.T) {
	cache := pipeline.NewCache()
	cold := timeCachedSweep(t, cache, cacheBenchSweepSize, 0)
	afterCold := cache.Stats()

	warm := timeCachedSweep(t, cache, cacheBenchSweepSize, 0)
	for i := 0; i < 2; i++ {
		if w := timeCachedSweep(t, cache, cacheBenchSweepSize, 0); w < warm {
			warm = w
		}
	}
	if st := cache.Stats(); st.Misses != afterCold.Misses {
		t.Fatalf("warm sweeps recomputed %d stages; every stage must replay", st.Misses-afterCold.Misses)
	}
	if warm*5 > cold {
		t.Fatalf("warm 64-config sweep took %v vs cold %v — %.1fx, want >= 5x",
			warm, cold, float64(cold)/float64(warm))
	}
}

// benchFederation builds a tier federated over `hosts` simulated
// default-profile nodes, mirroring what federateSweepCache attaches to
// a sweep fleet.
func benchFederation(tb testing.TB, hosts int) (*cas.Federation, *cas.Tier) {
	tb.Helper()
	c := cluster.New(21)
	nodes, err := c.Provision(DefaultHostProfile, hosts)
	if err != nil {
		tb.Fatal(err)
	}
	w, err := gasnet.New(nodes, cluster.NewNetwork(0), nil)
	if err != nil {
		tb.Fatal(err)
	}
	if err := w.AttachAll(fedSegmentBytes); err != nil {
		tb.Fatal(err)
	}
	profiles := make([]*cluster.MachineProfile, hosts)
	for i := range profiles {
		profiles[i] = nodes[i].Profile()
	}
	tier := cas.NewTier(cas.Options{})
	fed, err := cas.NewFederation(tier, w, profiles)
	if err != nil {
		tb.Fatal(err)
	}
	return fed, tier
}

// peerFetchCost publishes a ~200 KB stage entry on host 0 and fetches
// it from the farthest host, returning the virtual seconds charged.
func peerFetchCost(tb testing.TB, hosts int) float64 {
	tb.Helper()
	fed, tier := benchFederation(tb, hosts)
	content := bytes.Repeat([]byte("stage entry bytes "), 12<<10) // ~216 KB
	refs := tier.PutChunked(content)
	key := [32]byte{1}
	if err := fed.Publish(0, key, refs); err != nil {
		tb.Fatal(err)
	}
	res, err := fed.Fetch(hosts-1, key)
	if err != nil {
		tb.Fatal(err)
	}
	if res.Kind == cas.FetchMiss {
		tb.Fatalf("hosts=%d: published entry missed", hosts)
	}
	return res.Cost
}

// cacheBenchRecord is one BENCH_cache.json entry.
type cacheBenchRecord struct {
	NsPerOp         float64 `json:"ns_per_op"`
	Speedup         float64 `json:"warm_speedup,omitempty"`
	HitRate         float64 `json:"hit_rate,omitempty"`
	FetchVSeconds   float64 `json:"peer_fetch_vseconds,omitempty"`
	RecomputeVSecs  float64 `json:"recompute_vseconds,omitempty"`
	FetchVsRecomp   float64 `json:"fetch_over_recompute,omitempty"`
	RemoteFetches   int64   `json:"remote_fetches,omitempty"`
	BytesDedupRatio float64 `json:"bytes_dedup_ratio,omitempty"`
}

// TestWriteCacheBenchJSON records the federated cache's perf
// trajectory: when BENCH_JSON names an output file (`make bench-json`),
// it times the cold/warm 64-configuration overlapping sweep, the warm
// hit-rate across simulated fleet sizes, and the peer-fetch vs
// recompute virtual-cost curve, writing name → record JSON.
// BENCH_SMOKE=1 (wired into `make verify`) shrinks the matrix so
// regressions in the cache path fail the full loop without a long
// bench run.
func TestWriteCacheBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_JSON")
	if out == "" {
		t.Skip("set BENCH_JSON=<path> to record cache benchmarks")
	}
	smoke := os.Getenv("BENCH_SMOKE") != ""
	sweepSize := cacheBenchSweepSize
	hostCounts := cacheBenchHostCounts
	if smoke {
		sweepSize = 8
		hostCounts = []int{1, 16}
	}
	records := make(map[string]cacheBenchRecord)

	// Overlapping sweep: cold populate, then warm replays.
	cache := pipeline.NewCache()
	cold := timeCachedSweep(t, cache, sweepSize, 0)
	warm := timeCachedSweep(t, cache, sweepSize, 0)
	if !smoke {
		for i := 0; i < 2; i++ {
			if w := timeCachedSweep(t, cache, sweepSize, 0); w < warm {
				warm = w
			}
		}
	}
	st := cache.Stats()
	dedup := 0.0
	if st.BytesAdded+st.BytesDeduped > 0 {
		dedup = float64(st.BytesDeduped) / float64(st.BytesAdded+st.BytesDeduped)
	}
	records["BenchmarkOverlappingSweep/cold"] = cacheBenchRecord{NsPerOp: float64(cold.Nanoseconds())}
	records["BenchmarkOverlappingSweep/warm"] = cacheBenchRecord{
		NsPerOp:         float64(warm.Nanoseconds()),
		Speedup:         float64(cold) / float64(warm),
		BytesDedupRatio: dedup,
	}
	if !smoke && warm*5 > cold {
		t.Errorf("warm sweep speedup %.1fx below the 5x acceptance bar", float64(cold)/float64(warm))
	}

	// Warm hit-rate across fleet sizes: one federated cache per fleet,
	// cold cluster sweep then warm cluster sweep.
	for _, hosts := range hostCounts {
		fleetCache := pipeline.NewCache()
		timeCachedSweep(t, fleetCache, sweepSize, hosts)
		coldStats := fleetCache.Stats()
		elapsed := timeCachedSweep(t, fleetCache, sweepSize, hosts)
		ws := fleetCache.Stats()
		hits := ws.Hits - coldStats.Hits
		misses := ws.Misses - coldStats.Misses
		rec := cacheBenchRecord{
			NsPerOp:       float64(elapsed.Nanoseconds()),
			RemoteFetches: ws.RemoteFetches,
		}
		if hits+misses > 0 {
			rec.HitRate = float64(hits) / float64(hits+misses)
		}
		records[fmt.Sprintf("BenchmarkOverlappingSweep/warm-hosts=%d", hosts)] = rec
		if rec.HitRate < 1.0 {
			t.Errorf("hosts=%d: warm cluster sweep hit rate %.2f, want 1.0", hosts, rec.HitRate)
		}
	}

	// Peer fetch vs recompute, in virtual seconds (the same 1-second
	// stage baseline the cas acceptance test uses).
	const recomputeSeconds = 1.0
	for _, hosts := range hostCounts {
		start := time.Now()
		cost := peerFetchCost(t, hosts)
		records[fmt.Sprintf("BenchmarkPeerFetchVsRecompute/hosts=%d", hosts)] = cacheBenchRecord{
			NsPerOp:        float64(time.Since(start).Nanoseconds()),
			FetchVSeconds:  cost,
			RecomputeVSecs: recomputeSeconds,
			FetchVsRecomp:  cost / recomputeSeconds,
		}
		if cost >= recomputeSeconds {
			t.Errorf("hosts=%d: peer fetch costs %.6f virtual seconds, recompute %.1f — fetch must win",
				hosts, cost, recomputeSeconds)
		}
	}

	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d benchmark records to %s", len(records), out)
}
