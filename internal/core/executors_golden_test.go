package core

import (
	"testing"

	"popper/internal/aver"
)

// The gassyfs executor drives its clients concurrently; this pins the
// end-to-end determinism claim at the artifact level: the results.csv
// the pipeline archives, and the Aver verdicts derived from it, are
// byte-identical whether the hosts run serially or in parallel.
func TestGassyfsExecutorHostJobsInvariant(t *testing.T) {
	run := func(jobs string) ([]byte, string) {
		p, res := runTemplate(t, "gassyfs", map[string]string{
			"nodes": "1,2,4", "sources": "24", "segment_mb": "64", "jobs": jobs,
		})
		csv, ok := p.ExperimentFile("exp", "results.csv")
		if !ok {
			t.Fatal("results.csv missing")
		}
		return csv, aver.FormatResults(res.Validation)
	}
	csvSerial, verdictSerial := run("1")
	csvParallel, verdictParallel := run("8")
	if string(csvSerial) != string(csvParallel) {
		t.Fatalf("results.csv differs between jobs=1 and jobs=8:\n--- jobs=1\n%s\n--- jobs=8\n%s",
			csvSerial, csvParallel)
	}
	if verdictSerial != verdictParallel {
		t.Fatalf("verdicts differ:\n--- jobs=1\n%s\n--- jobs=8\n%s", verdictSerial, verdictParallel)
	}
}
