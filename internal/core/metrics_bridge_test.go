package core

import (
	"testing"

	"popper/internal/metrics"
	"popper/internal/pipeline"
)

// TestRunRecordMetricsSharesTheCacheRegistry pins the metrics bridge
// `popper run -scrub-interval` rides: RecordMetrics receives the same
// per-run registry the cache records into, so companion gauge families
// (scrub_*) land alongside cache_* and one report can read both.
func TestRunRecordMetricsSharesTheCacheRegistry(t *testing.T) {
	p := sweepProject(t)
	var seen []*metrics.Registry
	res, err := p.RunExperimentOpts("sweep", &Env{Seed: 2}, RunOptions{
		Cache: pipeline.NewCache(),
		RecordMetrics: func(reg *metrics.Registry) {
			reg.Set("scrub_passes", 1)
			seen = append(seen, reg)
		},
	})
	if err != nil || !res.Passed() {
		t.Fatalf("run: %v / passed=%v", err, res.Passed())
	}
	if len(seen) != 1 {
		t.Fatalf("RecordMetrics invoked %d times, want once per run", len(seen))
	}
	// Both families live in the one registry: the cache recorded its
	// gauges into the same instance the hook received.
	if seen[0].Gauge("cache_hits")+seen[0].Gauge("cache_misses") == 0 {
		t.Fatal("cache_* gauges absent from the registry the hook received")
	}
	if seen[0].Gauge("scrub_passes") != 1 {
		t.Fatal("scrub_* gauge did not survive in the run registry")
	}
}

// TestSweepRecordMetricsReachesEveryConfiguration pins the sweep
// pass-through: every configuration's pipeline invokes the hook.
func TestSweepRecordMetricsReachesEveryConfiguration(t *testing.T) {
	p := sweepProject(t)
	configs := []map[string]string{{"seed": "1"}, {"seed": "2"}, {"seed": "3"}}
	calls := 0
	sr, err := p.RunSweep("sweep", &Env{Seed: 2}, configs, SweepOptions{
		Jobs: 1,
		RecordMetrics: func(reg *metrics.Registry) {
			calls++
		},
	})
	if err != nil || !sr.Passed() {
		t.Fatalf("sweep: %v / %v", err, sr.Err())
	}
	if calls != len(configs) {
		t.Fatalf("RecordMetrics invoked %d times across %d configurations", calls, len(configs))
	}
}
