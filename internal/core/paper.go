package core

import (
	"fmt"
	"sort"
	"strings"
)

// PaperTemplate is one manuscript template — the `popper paper list` /
// `popper paper add` flow of the BWW use case ("We can use the generic
// article latex template or other more domain-specific ones").
type PaperTemplate struct {
	Name        string
	Description string
	files       map[string]string // paper/-relative files
}

var paperRegistry = map[string]*PaperTemplate{
	"article": {
		Name:        "article",
		Description: "generic LaTeX article",
		files: map[string]string{
			"paper.tex": "\\documentclass{article}\n" +
				"\\title{An Exploration Following the Popper Convention}\n" +
				"\\author{}\n\\begin{document}\n\\maketitle\n" +
				"\\section{Introduction}\n\n" +
				"\\section{Evaluation}\n% reference figures under experiments/<name>/figure.svg\n\n" +
				"\\end{document}\n",
			"build.sh":       "#!/bin/sh\npopper-build-paper\n",
			"references.bib": "% add references here\n",
		},
	},
	"bams": {
		Name:        "bams",
		Description: "Bulletin of the American Meteorological Society article",
		files: map[string]string{
			"paper.tex": "\\documentclass{article}\n% BAMS-style front matter\n" +
				"\\title{A Data-Centric Exploration}\n" +
				"\\begin{document}\n" +
				"\\section*{Abstract}\n\n" +
				"\\section{Data}\n% the dataset is referenced via datasets/*.ref\n\n" +
				"\\section{Analysis}\n\n" +
				"\\end{document}\n",
			"build.sh":       "#!/bin/sh\npopper-build-paper\n",
			"references.bib": "% add references here\n",
		},
	},
	"sigplanconf": {
		Name:        "sigplanconf",
		Description: "ACM SIGPLAN conference paper",
		files: map[string]string{
			"paper.tex": "\\documentclass{sigplanconf}\n" +
				"\\begin{document}\n" +
				"\\title{Title}\n\\maketitle\n" +
				"\\section{Introduction}\n\n" +
				"\\end{document}\n",
			"build.sh":       "#!/bin/sh\npopper-build-paper\n",
			"references.bib": "% add references here\n",
		},
	},
}

// PaperTemplates lists manuscript template names, sorted — the output
// of `popper paper list`.
func PaperTemplates() []string {
	out := make([]string, 0, len(paperRegistry))
	for n := range paperRegistry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// FormatPaperTemplateList renders the `popper paper list` table.
func FormatPaperTemplateList() string {
	var sb strings.Builder
	sb.WriteString("-- available paper templates ---------\n")
	for _, n := range PaperTemplates() {
		fmt.Fprintf(&sb, "%-14s %s\n", n, paperRegistry[n].Description)
	}
	return sb.String()
}

// AddPaper instantiates a manuscript template into paper/, replacing the
// default scaffold — `popper paper add <template>`.
func (p *Project) AddPaper(template string) error {
	t, ok := paperRegistry[template]
	if !ok {
		return fmt.Errorf("core: unknown paper template %q (try `popper paper list`)", template)
	}
	for rel, content := range t.files {
		p.Files[PaperDir+"/"+rel] = []byte(content)
	}
	return nil
}
