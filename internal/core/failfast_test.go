package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"popper/internal/fault"
)

// failFastProject builds a cloverleaf sweep project whose validations
// make early rows decide the verdict: `expect nodes < 5` is violated
// the moment an executor appends a row with nodes >= 5, so streaming
// fail-fast can prove the assertion unsatisfiable mid-run.
func failFastProject(t *testing.T) *Project {
	t.Helper()
	p := Init()
	if err := p.AddExperiment("cloverleaf", "sweep"); err != nil {
		t.Fatal(err)
	}
	p.SetParam("sweep", "iterations", "2")
	p.SetParam("sweep", "problem_size", "8")
	p.Files[expPath("sweep", "validations.aver")] = []byte("expect nodes < 5\n")
	return p
}

// filesEqual asserts two workspaces are byte-identical.
func filesEqual(t *testing.T, label string, a, b map[string][]byte) {
	t.Helper()
	paths := map[string]bool{}
	for k := range a {
		paths[k] = true
	}
	for k := range b {
		paths[k] = true
	}
	sorted := make([]string, 0, len(paths))
	for k := range paths {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		av, aok := a[k]
		bv, bok := b[k]
		if !aok {
			t.Errorf("%s: %s only in second workspace", label, k)
			continue
		}
		if !bok {
			t.Errorf("%s: %s only in first workspace", label, k)
			continue
		}
		if string(av) != string(bv) {
			t.Errorf("%s: %s diverged:\n--- first\n%s\n--- second\n%s", label, k, av, bv)
		}
	}
}

// TestFailFastCancelsRunMidFlight: a violating run is cancelled at the
// first row that proves the assertion unsatisfiable — before the
// remaining (more expensive) iterations execute.
func TestFailFastCancelsRunMidFlight(t *testing.T) {
	p := failFastProject(t)
	p.SetParam("sweep", "nodes", "1,2,8,16")
	_, err := p.RunExperimentOpts("sweep", &Env{Seed: 1}, RunOptions{Stream: true, FailFast: true})
	if !errors.Is(err, ErrValidationCancelled) {
		t.Fatalf("err = %v, want ErrValidationCancelled", err)
	}
	p2 := failFastProject(t)
	p2.SetParam("sweep", "nodes", "1,2,8,16")
	res, _ := p2.RunExperimentOpts("sweep", &Env{Seed: 1}, RunOptions{Stream: true, FailFast: true})
	if res.Cancelled == nil {
		t.Fatal("RunResult.Cancelled not set")
	}
	// nodes=8 lands as the third row; the 16-node iteration never ran.
	if res.Cancelled.Row != 3 {
		t.Fatalf("cancelled after %d rows, want 3 (before the 4th iteration)", res.Cancelled.Row)
	}
	if !res.Cancelled.Final || res.Cancelled.Err() == nil {
		t.Fatalf("violation = %+v", res.Cancelled)
	}

	// Streaming without fail-fast observes the same violation but lets
	// the run finish; the batch validate stage owns the verdict.
	p3 := failFastProject(t)
	p3.SetParam("sweep", "nodes", "1,2,8,16")
	res3, err3 := p3.RunExperimentOpts("sweep", &Env{Seed: 1}, RunOptions{Stream: true})
	if err3 == nil {
		t.Fatal("violating run must still fail batch validation")
	}
	if res3.Cancelled != nil {
		t.Fatalf("stream without fail-fast must not cancel: %+v", res3.Cancelled)
	}
	if got := string(p3.Files[expPath("sweep", "results.csv")]); got == "" {
		t.Fatal("non-cancelled run must write full results.csv")
	}
}

// TestFailFastStreamingPreservesArtifacts: a streamed run (no
// fail-fast) produces byte-identical workspaces and verdicts to a
// batch run, passing or failing.
func TestFailFastStreamingPreservesArtifacts(t *testing.T) {
	for _, nodes := range []string{"1,2,4", "1,2,8"} {
		batch := failFastProject(t)
		batch.SetParam("sweep", "nodes", nodes)
		resB, errB := batch.RunExperimentOpts("sweep", &Env{Seed: 1}, RunOptions{})

		streamed := failFastProject(t)
		streamed.SetParam("sweep", "nodes", nodes)
		resS, errS := streamed.RunExperimentOpts("sweep", &Env{Seed: 1}, RunOptions{Stream: true})

		if (errB == nil) != (errS == nil) {
			t.Fatalf("nodes=%s: batch err %v, streamed err %v", nodes, errB, errS)
		}
		if resB.Record.ResultHash != resS.Record.ResultHash {
			t.Fatalf("nodes=%s: result hash diverged", nodes)
		}
		filesEqual(t, "nodes="+nodes, batch.Files, streamed.Files)
	}
}

// TestFailFastSweepResumeByteIdentical is the journal proof: a
// streamed fail-fast sweep cancels doomed configurations and skips the
// rest, and a subsequent -resume run lands results.csv, failures.csv
// and the journal byte-identical to a batch-mode sweep that ran
// everything to completion.
func TestFailFastSweepResumeByteIdentical(t *testing.T) {
	configs := []map[string]string{
		{"nodes": "1,2"},     // passes
		{"nodes": "1,2,8"},   // violated at the third row
		{"nodes": "4,2"},     // passes
		{"nodes": "1,16,32"}, // violated at the second row
	}

	batch := failFastProject(t)
	srBatch, err := batch.RunSweep("sweep", &Env{Seed: 1}, configs, SweepOptions{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if srBatch.Err() == nil {
		t.Fatal("batch sweep must quarantine the violating configs")
	}

	ff := failFastProject(t)
	srFF, err := ff.RunSweep("sweep", &Env{Seed: 1}, configs, SweepOptions{
		Jobs: 1, Stream: true, FailFast: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var cancelled, skipped int
	for _, run := range srFF.Runs {
		if run.Cancelled {
			cancelled++
			if !run.Skipped || run.Err != nil {
				t.Fatalf("cancelled config %d must be pending with no recorded error: %+v", run.Index, run)
			}
		} else if run.Skipped {
			skipped++
		}
	}
	if cancelled == 0 {
		t.Fatal("fail-fast sweep cancelled nothing")
	}
	if skipped == 0 {
		t.Fatal("fail-fast sweep should stop dispatching after the first cancellation")
	}
	// Cancelled and skipped configurations are unjournaled (pending).
	journal := string(ff.Files[expPath("sweep", SweepJournalFile)])
	for _, run := range srFF.Runs {
		if run.Skipped {
			if strings.Contains(journal, fmt.Sprintf("\n%d,", run.Index)) {
				t.Fatalf("pending config %d must not be journaled:\n%s", run.Index, journal)
			}
		}
	}

	// Resume without fail-fast: pending configurations run to their
	// authoritative batch verdicts.
	srResumed, err := ff.RunSweep("sweep", &Env{Seed: 1}, configs, SweepOptions{Jobs: 1, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if srResumed.Err() == nil {
		t.Fatal("resumed sweep must quarantine the violating configs")
	}
	filesEqual(t, "fail-fast+resume vs batch", batch.Files, ff.Files)
}

// TestFailFastClusterSweepResume: the same pending-then-resume
// convergence through the cluster scheduler's real-execution pool.
func TestFailFastClusterSweepResume(t *testing.T) {
	configs := []map[string]string{
		{"nodes": "1,2"},
		{"nodes": "1,2,8"},
		{"nodes": "4,2"},
		{"nodes": "1,16,32"},
	}
	batch := failFastProject(t)
	if _, err := batch.RunSweep("sweep", &Env{Seed: 1}, configs, SweepOptions{Jobs: 1}); err != nil {
		t.Fatal(err)
	}

	ff := failFastProject(t)
	srFF, err := ff.RunSweep("sweep", &Env{Seed: 1}, configs, SweepOptions{
		Jobs: 1, Hosts: 3, Stream: true, FailFast: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var cancelled int
	for _, run := range srFF.Runs {
		if run.Cancelled {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatal("cluster fail-fast sweep cancelled nothing")
	}
	if _, err := ff.RunSweep("sweep", &Env{Seed: 1}, configs, SweepOptions{Jobs: 1, Resume: true}); err != nil {
		t.Fatal(err)
	}
	filesEqual(t, "cluster fail-fast+resume vs batch", batch.Files, ff.Files)
}

// TestFailFastStreamUnderFaults: streaming changes nothing about the
// chaos envelope — a streamed sweep under an injected fault schedule
// (config-level errors, per-stage retries) lands byte-identical
// artifacts to a batch sweep under the same schedule.
func TestFailFastStreamUnderFaults(t *testing.T) {
	spec, err := fault.ParseSpec(`
seed: 42
faults:
  - site: sweep/sweep/config/*
    kind: error
    prob: 0.4
    times: 2
`)
	if err != nil {
		t.Fatal(err)
	}
	configs := []map[string]string{
		{"nodes": "1,2"}, {"nodes": "2,4"}, {"nodes": "1,4"},
	}
	run := func(stream bool) *Project {
		p := failFastProject(t)
		sr, err := p.RunSweep("sweep", &Env{Seed: 1}, configs, SweepOptions{
			Jobs: 1, Stream: stream,
			Faults: spec.Injector(),
			Retry:  fault.Retry{Max: 3, Backoff: 0.5},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sr.Err(); err != nil {
			t.Fatalf("retries should absorb the injected errors: %v", err)
		}
		return p
	}
	filesEqual(t, "faulted streamed vs batch", run(false).Files, run(true).Files)
}
