package core

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"popper/internal/fault"
)

// chaosSeed returns the fault seed for golden chaos tests. `make chaos`
// re-runs the suite across a seed matrix via CHAOS_SEED; the default
// keeps plain `go test` deterministic.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	raw := os.Getenv("CHAOS_SEED")
	if raw == "" {
		return 42
	}
	seed, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		t.Fatalf("CHAOS_SEED=%q is not an integer", raw)
	}
	return seed
}

// chaosSpec is the canonical faults.yml used by the golden suite: a mix
// of retryable stage errors, a crash that permanently quarantines one
// configuration, and latency on another.
const chaosSpec = `
faults:
  - site: pipeline/sweep/001/run
    kind: error
    times: 2
    msg: flaky stage on config 001
  - site: sweep/sweep/config/003
    kind: crash
    msg: host for config 003 died
  - site: pipeline/sweep/004/run
    kind: latency
    delay: 0.5
    times: 1
  - site: pipeline/sweep/005/setup
    kind: error
    prob: 1
    msg: setup always fails on config 005
`

func chaosInjector(t *testing.T) *fault.Injector {
	t.Helper()
	spec, err := fault.ParseSpec(chaosSpec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Seed = chaosSeed(t)
	return spec.Injector()
}

func chaosConfigs() []map[string]string {
	configs := make([]map[string]string, 6)
	for i := range configs {
		configs[i] = map[string]string{"seed": fmt.Sprintf("%d", i+1)}
	}
	return configs
}

// chaosArtifacts are the files whose byte-identity the resilience
// contract guarantees across Jobs levels and interruptions.
var chaosArtifacts = []string{"results.csv", FailuresFile, SweepJournalFile}

func runChaosSweep(t *testing.T, jobs int, opts SweepOptions) (*Project, SweepResult) {
	t.Helper()
	p := sweepProject(t)
	opts.Jobs = jobs
	if opts.Faults == nil {
		opts.Faults = chaosInjector(t)
	}
	sr, err := p.RunSweep("sweep", &Env{Seed: 5}, chaosConfigs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return p, sr
}

func chaosFiles(t *testing.T, p *Project) map[string]string {
	t.Helper()
	out := make(map[string]string, len(chaosArtifacts))
	for _, rel := range chaosArtifacts {
		out[rel] = string(p.Files[expPath("sweep", rel)])
	}
	return out
}

// TestChaosSweepGoldenDeterminism is the golden chaos suite: the same
// seeded fault spec produces byte-identical results.csv, failures.csv
// and sweep journal whether the sweep runs serially or on eight
// workers.
func TestChaosSweepGoldenDeterminism(t *testing.T) {
	retry := fault.Retry{Max: 3, Backoff: 0.25, Jitter: 0.5}
	pSerial, srSerial := runChaosSweep(t, 1, SweepOptions{Retry: retry})
	pParallel, srParallel := runChaosSweep(t, 8, SweepOptions{Retry: retry})

	// The retryable configs recovered; the crash and the always-failing
	// setup are quarantined.
	if srSerial.Passed() {
		t.Fatal("sweep with quarantined configs must not pass")
	}
	failed := srSerial.Failed()
	if len(failed) != 2 {
		t.Fatalf("failed = %d configs, want 2 (crash + persistent setup): %v", len(failed), srSerial.Err())
	}
	for _, r := range failed {
		if !r.Quarantined {
			t.Fatalf("config %d failed but was not quarantined", r.Index)
		}
	}
	if !fault.IsCrash(srSerial.Runs[3].Err) {
		t.Fatalf("config 3 must fail with the injected crash: %v", srSerial.Runs[3].Err)
	}
	if srSerial.Runs[3].Attempts != 1 {
		t.Fatalf("crash must be terminal: attempts = %d", srSerial.Runs[3].Attempts)
	}
	if got := srSerial.Runs[1].Attempts; got != 3 {
		t.Fatalf("config 1 attempts = %d, want 3 (two injected errors absorbed)", got)
	}
	if srSerial.Runs[1].BackoffSeconds <= 0 {
		t.Fatal("retried config must accumulate virtual backoff")
	}
	if got := srSerial.Runs[5].Attempts; got != retry.Max+1 {
		t.Fatalf("config 5 attempts = %d, want %d (retries exhausted)", got, retry.Max+1)
	}

	// Byte-identity across Jobs levels — the paper's re-execution
	// contract extended to chaos runs.
	serial, parallel := chaosFiles(t, pSerial), chaosFiles(t, pParallel)
	for _, rel := range chaosArtifacts {
		if serial[rel] != parallel[rel] {
			t.Fatalf("%s diverged between jobs=1 and jobs=8:\n--- serial\n%s\n--- parallel\n%s",
				rel, serial[rel], parallel[rel])
		}
	}
	if serial[FailuresFile] == "" {
		t.Fatal("failures.csv must be written when configs are quarantined")
	}
	// Per-run metadata also matches.
	for i := range srSerial.Runs {
		s, par := srSerial.Runs[i], srParallel.Runs[i]
		if s.Attempts != par.Attempts || s.Quarantined != par.Quarantined ||
			s.BackoffSeconds != par.BackoffSeconds {
			t.Fatalf("config %d metadata diverged: serial %+v vs parallel %+v", i, s, par)
		}
	}
}

// TestChaosSweepResumeByteIdentical interrupts a seeded chaos sweep
// mid-run (Limit) and resumes it; the final artifacts must be
// byte-identical to an uninterrupted run, at serial and parallel Jobs
// levels. This is the headline acceptance criterion of the resilience
// substrate.
func TestChaosSweepResumeByteIdentical(t *testing.T) {
	retry := fault.Retry{Max: 3, Backoff: 0.25, Jitter: 0.5}
	for _, jobs := range []int{1, 8} {
		t.Run(fmt.Sprintf("jobs=%d", jobs), func(t *testing.T) {
			pFull, _ := runChaosSweep(t, jobs, SweepOptions{Retry: retry})
			want := chaosFiles(t, pFull)

			// Interrupted run: only the first three configurations
			// complete before the sweep stops.
			p := sweepProject(t)
			sr1, err := p.RunSweep("sweep", &Env{Seed: 5}, chaosConfigs(), SweepOptions{
				Jobs: jobs, Retry: retry, Faults: chaosInjector(t), Limit: 3,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := len(sr1.Pending()); got != 3 {
				t.Fatalf("pending after interruption = %d, want 3", got)
			}
			if sr1.Passed() {
				t.Fatal("interrupted sweep must not pass")
			}

			// Resume with a fresh injector (same spec): per-site fault
			// streams restart at occurrence zero, exactly as an
			// uninterrupted run saw them, and completed configs are
			// adopted from the journal.
			sr2, err := p.RunSweep("sweep", &Env{Seed: 5}, chaosConfigs(), SweepOptions{
				Jobs: jobs, Retry: retry, Faults: chaosInjector(t), Resume: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := len(sr2.Pending()); got != 0 {
				t.Fatalf("pending after resume = %d, want 0", got)
			}
			resumed := 0
			for _, r := range sr2.Runs {
				if r.Resumed {
					resumed++
					if r.Attempts != 0 {
						t.Fatalf("resumed config %d re-ran (attempts=%d)", r.Index, r.Attempts)
					}
				}
			}
			if resumed != 3 {
				t.Fatalf("resumed = %d configs, want 3", resumed)
			}
			got := chaosFiles(t, p)
			for _, rel := range chaosArtifacts {
				if got[rel] != want[rel] {
					t.Fatalf("%s after interrupt+resume diverged from uninterrupted run:\n--- uninterrupted\n%s\n--- resumed\n%s",
						rel, want[rel], got[rel])
				}
			}
		})
	}
}

// TestSweepResumeSkipsCompletedWork re-running a fully journaled sweep
// with Resume executes nothing and reproduces the artifacts.
func TestSweepResumeSkipsCompletedWork(t *testing.T) {
	retry := fault.Retry{Max: 3, Backoff: 0.25}
	p := sweepProject(t)
	if _, err := p.RunSweep("sweep", &Env{Seed: 5}, chaosConfigs(), SweepOptions{
		Retry: retry, Faults: chaosInjector(t),
	}); err != nil {
		t.Fatal(err)
	}
	want := chaosFiles(t, p)
	sr, err := p.RunSweep("sweep", &Env{Seed: 5}, chaosConfigs(), SweepOptions{
		Retry: retry, Faults: chaosInjector(t), Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sr.Runs {
		if !r.Resumed || r.Attempts != 0 {
			t.Fatalf("config %d was re-run on a fully journaled resume: %+v", r.Index, r)
		}
	}
	if got := chaosFiles(t, p); got[SweepJournalFile] != want[SweepJournalFile] ||
		got["results.csv"] != want["results.csv"] || got[FailuresFile] != want[FailuresFile] {
		t.Fatal("fully resumed sweep must reproduce artifacts byte-identically")
	}
}

// TestSweepResumeRerunsChangedParams a journal entry whose parameters no
// longer match the configuration matrix is stale and must re-run.
func TestSweepResumeRerunsChangedParams(t *testing.T) {
	p := sweepProject(t)
	configs := []map[string]string{{"seed": "1"}, {"seed": "2"}}
	if _, err := p.RunSweep("sweep", &Env{Seed: 5}, configs, SweepOptions{}); err != nil {
		t.Fatal(err)
	}
	changed := []map[string]string{{"seed": "1"}, {"seed": "9"}}
	sr, err := p.RunSweep("sweep", &Env{Seed: 5}, changed, SweepOptions{Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if !sr.Runs[0].Resumed {
		t.Fatal("unchanged config 0 must be adopted from the journal")
	}
	if sr.Runs[1].Resumed || sr.Runs[1].Attempts != 1 {
		t.Fatalf("changed config 1 must re-run: %+v", sr.Runs[1])
	}
	if err := sr.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestSweepQuarantineReport failures.csv carries config index, params,
// attempts and the error, and disappears once the sweep is clean.
func TestSweepQuarantineReport(t *testing.T) {
	p := sweepProject(t)
	configs := []map[string]string{{"seed": "1"}, {"nodes": "bogus"}}
	sr, err := p.RunSweep("sweep", &Env{Seed: 1}, configs, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Failures == nil || sr.Failures.Len() != 1 {
		t.Fatalf("failures table = %+v, want 1 row", sr.Failures)
	}
	raw := string(p.Files[expPath("sweep", FailuresFile)])
	for _, want := range []string{"config,params,attempts,error", "nodes=bogus"} {
		if !strings.Contains(raw, want) {
			t.Fatalf("failures.csv missing %q:\n%s", want, raw)
		}
	}
	// A clean re-run clears the stale quarantine report.
	clean := []map[string]string{{"seed": "1"}, {"seed": "2"}}
	if _, err := p.RunSweep("sweep", &Env{Seed: 1}, clean, SweepOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, stale := p.Files[expPath("sweep", FailuresFile)]; stale {
		t.Fatal("clean sweep must remove the stale failures.csv")
	}
}

// BenchmarkSweepWithFaults measures the sweep hot path under an active
// chaos schedule (retries included).
func BenchmarkSweepWithFaults(b *testing.B) {
	spec, err := fault.ParseSpec(chaosSpec)
	if err != nil {
		b.Fatal(err)
	}
	spec.Seed = 42
	base := Init()
	if err := base.AddExperiment("cloverleaf", "sweep"); err != nil {
		b.Fatal(err)
	}
	base.SetParam("sweep", "nodes", "1,2")
	base.SetParam("sweep", "iterations", "2")
	base.SetParam("sweep", "problem_size", "8")
	configs := chaosConfigs()
	retry := fault.Retry{Max: 3, Backoff: 0.25}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := &Project{Files: cloneFiles(base.Files)}
		if _, err := p.RunSweep("sweep", &Env{Seed: 5}, configs, SweepOptions{
			Jobs: 4, Retry: retry, Faults: spec.Injector(),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepNoFaults is the clean-path baseline for the chaos
// benchmark above.
func BenchmarkSweepNoFaults(b *testing.B) {
	base := Init()
	if err := base.AddExperiment("cloverleaf", "sweep"); err != nil {
		b.Fatal(err)
	}
	base.SetParam("sweep", "nodes", "1,2")
	base.SetParam("sweep", "iterations", "2")
	base.SetParam("sweep", "problem_size", "8")
	configs := chaosConfigs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := &Project{Files: cloneFiles(base.Files)}
		if _, err := p.RunSweep("sweep", &Env{Seed: 5}, configs, SweepOptions{Jobs: 4}); err != nil {
			b.Fatal(err)
		}
	}
}
