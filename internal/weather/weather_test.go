package weather

import (
	"math"
	"strings"
	"testing"
)

// coarse is a fast grid for tests: 10-degree cells, 6-day sampling.
func coarse() ReanalysisSpec {
	return ReanalysisSpec{Days: 72, LatStep: 10, LonStep: 30, NoiseK: 0.5, Seed: 7}
}

func TestSpecValidation(t *testing.T) {
	bad := []ReanalysisSpec{
		{},
		{Days: 1, LatStep: 0, LonStep: 1},
		{Days: 1, LatStep: 100, LonStep: 1},
		{Days: 1, LatStep: 1, LonStep: 0},
		{Days: 1, LatStep: 1, LonStep: 1, NoiseK: -1},
	}
	for i, s := range bad {
		if _, err := Generate(s); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	a, err := Generate(coarse())
	if err != nil {
		t.Fatal(err)
	}
	sh := a.Shape()
	if sh[0] != 72 || sh[1] != 19 || sh[2] != 12 {
		t.Fatalf("shape = %v", sh)
	}
	// physically sane temperatures (Kelvin)
	for _, v := range a.Values() {
		if v < 180 || v > 340 {
			t.Fatalf("temperature %v K out of physical range", v)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(coarse())
	b, _ := Generate(coarse())
	av, bv := a.Values(), b.Values()
	for i := range av {
		if av[i] != bv[i] {
			t.Fatal("generation must be deterministic in the seed")
		}
	}
	spec := coarse()
	spec.Seed = 8
	c, _ := Generate(spec)
	if c.Values()[0] == a.Values()[0] {
		t.Fatal("different seeds should differ")
	}
}

func TestDefaultSpecIsReanalysisShaped(t *testing.T) {
	s := DefaultReanalysisSpec()
	if s.LatStep != 2.5 || s.LonStep != 2.5 || s.Days != 365 {
		t.Fatalf("default spec = %+v", s)
	}
}

func TestAnalyzePaperShape(t *testing.T) {
	// The qualitative facts the BWW figure shows.
	a, err := Generate(coarse())
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(a)
	if err != nil {
		t.Fatal(err)
	}
	// 1. Equator warmer than poles in the annual mean.
	lats, _ := an.ZonalAnnualMean.Coords("lat")
	profile := an.ZonalAnnualMean.Values()
	var equator, northPole, southPole float64
	for i, lat := range lats {
		switch {
		case lat == 0:
			equator = profile[i]
		case lat == 90:
			northPole = profile[i]
		case lat == -90:
			southPole = profile[i]
		}
	}
	if equator <= northPole+20 || equator <= southPole+20 {
		t.Fatalf("equator %v must be much warmer than poles (%v, %v)", equator, northPole, southPole)
	}
	// 2. Northern hemisphere has the larger seasonal swing.
	if an.AmplitudeNorth <= an.AmplitudeSouth {
		t.Fatalf("NH amplitude %v must exceed SH %v", an.AmplitudeNorth, an.AmplitudeSouth)
	}
	// 3. Global mean near the observed ~288 K.
	if an.GlobalMeanK < 275 || an.GlobalMeanK > 300 {
		t.Fatalf("global mean = %v K", an.GlobalMeanK)
	}
}

func TestSeasonalAntiphase(t *testing.T) {
	a, _ := Generate(coarse())
	an, _ := Analyze(a)
	// Mid-year months should be warm at +60 and cold at -60.
	sz := an.SeasonalZonal
	lats, _ := sz.Coords("lat")
	months, _ := sz.Coords("time")
	var n60, s60 int
	for i, lat := range lats {
		if lat == 60 {
			n60 = i
		}
		if lat == -60 {
			s60 = i
		}
	}
	warmest := func(latIdx int) float64 {
		best, bestM := math.Inf(-1), 0.0
		for mi, m := range months {
			v, _ := sz.At(mi, latIdx)
			if v > best {
				best, bestM = v, m
			}
		}
		return bestM
	}
	wn, ws := warmest(n60), warmest(s60)
	// Peaks should be roughly half a year apart (indices differ by >= 2 months).
	diff := math.Abs(wn - ws)
	if diff > 6 {
		diff = 12 - diff
	}
	if diff < 2 {
		t.Fatalf("hemispheres not in antiphase: peaks at months %v and %v", wn, ws)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	spec := ReanalysisSpec{Days: 4, LatStep: 45, LonStep: 90, NoiseK: 0, Seed: 1}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeCSV(a)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "day,lat,lon,temp\n") {
		t.Fatalf("csv header: %q", string(data[:40]))
	}
	back, err := DecodeCSV(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Values()) != len(a.Values()) {
		t.Fatal("size mismatch after round trip")
	}
	av, bv := a.Values(), back.Values()
	for i := range av {
		if math.Abs(av[i]-bv[i]) > 0.002 { // CSV stores 3 decimals
			t.Fatalf("value %d: %v vs %v", i, av[i], bv[i])
		}
	}
}

func TestDecodeCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"a,b\n1,2\n",
		"day,lat,lon,temp\n0,0,0,280\n0,0,0,281\n", // duplicate cell -> row/grid mismatch
		"day,lat,lon,temp\nx,0,0,280\n",            // non-numeric coordinate
	}
	for i, src := range cases {
		if _, err := DecodeCSV([]byte(src)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestHeatmapFigure(t *testing.T) {
	a, _ := Generate(coarse())
	an, _ := Analyze(a)
	h, err := an.Heatmap()
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Rows) != 19 {
		t.Fatalf("rows = %d", len(h.Rows))
	}
	if h.RowLabels[0] != "+90" { // north on top
		t.Fatalf("top label = %q", h.RowLabels[0])
	}
	ascii, err := h.ASCII()
	if err != nil || !strings.Contains(ascii, "zonal mean") {
		t.Fatalf("ascii render: %v", err)
	}
	svg, err := h.SVG()
	if err != nil || !strings.Contains(svg, "<rect") {
		t.Fatalf("svg render: %v", err)
	}
}
