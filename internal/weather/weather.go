// Package weather reproduces the paper's data-science use case: the Big
// Weather Web air-temperature analysis of the NCEP/NCAR Reanalysis 1
// dataset, performed with an xarray-style library (internal/ndarray).
//
// The real reanalysis is a proprietary-scale external data product, so
// this package generates a synthetic equivalent with the same structure
// (a global latitude/longitude grid sampled through time, in Kelvin) and
// the same first-order physics the published figure shows: temperature
// decreasing from equator to poles, a seasonal cycle in antiphase
// between hemispheres, and larger seasonal amplitude in the
// land-dominated northern hemisphere. The analysis code paths —
// selection, zonal means, seasonal group-bys, area-weighted global
// means — are identical to what would run on the real data.
package weather

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"popper/internal/ndarray"
	"popper/internal/plot"
	"popper/internal/table"
)

// ReanalysisSpec configures the synthetic dataset.
type ReanalysisSpec struct {
	Days    int     // number of daily samples
	LatStep float64 // degrees between latitude grid lines
	LonStep float64 // degrees between longitude grid lines
	NoiseK  float64 // white-noise amplitude, Kelvin
	Seed    int64
}

// DefaultReanalysisSpec matches the Reanalysis-1 2.5-degree grid over
// one year.
func DefaultReanalysisSpec() ReanalysisSpec {
	return ReanalysisSpec{Days: 365, LatStep: 2.5, LonStep: 2.5, NoiseK: 1.5, Seed: 1}
}

func (s ReanalysisSpec) validate() error {
	switch {
	case s.Days <= 0:
		return fmt.Errorf("weather: days must be positive")
	case s.LatStep <= 0 || s.LatStep > 90 || s.LonStep <= 0 || s.LonStep > 180:
		return fmt.Errorf("weather: invalid grid resolution")
	case s.NoiseK < 0:
		return fmt.Errorf("weather: negative noise")
	}
	return nil
}

// landFraction approximates how land-dominated a latitude band is; the
// northern hemisphere holds most land, which drives its larger seasonal
// swing.
func landFraction(lat float64) float64 {
	if lat > 0 {
		return 0.45 + 0.25*math.Sin(lat*math.Pi/180)
	}
	return 0.25
}

// meanTemp is the annual-mean temperature at a latitude (Kelvin).
func meanTemp(lat float64) float64 {
	rad := lat * math.Pi / 180
	return 250 + 49*math.Cos(rad)*math.Cos(rad)
}

// seasonalAmplitude is the half peak-to-peak annual swing at a latitude.
func seasonalAmplitude(lat float64) float64 {
	return (2 + 26*math.Abs(lat)/90) * landFraction(lat) * 2
}

// Generate builds the synthetic reanalysis array with dimensions
// (time, lat, lon). Time coordinates are day numbers starting at 0
// (January 1).
func Generate(spec ReanalysisSpec) (*ndarray.Array, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	var lats, lons, days []float64
	for lat := -90.0; lat <= 90.0+1e-9; lat += spec.LatStep {
		lats = append(lats, lat)
	}
	for lon := 0.0; lon < 360.0-1e-9; lon += spec.LonStep {
		lons = append(lons, lon)
	}
	for d := 0; d < spec.Days; d++ {
		days = append(days, float64(d))
	}
	arr, err := ndarray.New([]string{"time", "lat", "lon"}, map[string][]float64{
		"time": days, "lat": lats, "lon": lons,
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	arr.Fill(func(idx []int) float64 {
		day := days[idx[0]]
		lat := lats[idx[1]]
		lon := lons[idx[2]]
		// Seasonal phase: NH coldest near day 15, SH in antiphase.
		phase := 2 * math.Pi * (day - 196) / 365.25
		season := seasonalAmplitude(lat) * math.Cos(phase)
		if lat < 0 {
			season = -season
		}
		// A weak stationary wave pattern in longitude (continents).
		wave := 3 * math.Cos(2*lon*math.Pi/180) * landFraction(lat)
		return meanTemp(lat) + season + wave + rng.NormFloat64()*spec.NoiseK
	})
	return arr, nil
}

// EncodeCSV serializes the dataset as (day, lat, lon, temp) rows — the
// form published to the datapackage store.
func EncodeCSV(a *ndarray.Array) ([]byte, error) {
	days, err := a.Coords("time")
	if err != nil {
		return nil, err
	}
	lats, err := a.Coords("lat")
	if err != nil {
		return nil, err
	}
	lons, err := a.Coords("lon")
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.WriteString("day,lat,lon,temp\n")
	for ti, d := range days {
		for li, lat := range lats {
			for gi, lon := range lons {
				v, err := a.At(ti, li, gi)
				if err != nil {
					return nil, err
				}
				buf.WriteString(strconv.FormatFloat(d, 'g', -1, 64))
				buf.WriteByte(',')
				buf.WriteString(strconv.FormatFloat(lat, 'g', -1, 64))
				buf.WriteByte(',')
				buf.WriteString(strconv.FormatFloat(lon, 'g', -1, 64))
				buf.WriteByte(',')
				buf.WriteString(strconv.FormatFloat(v, 'f', 3, 64))
				buf.WriteByte('\n')
			}
		}
	}
	return buf.Bytes(), nil
}

// DecodeCSV rebuilds the array from its CSV serialization.
func DecodeCSV(data []byte) (*ndarray.Array, error) {
	tb, err := table.ParseCSV(string(data))
	if err != nil {
		return nil, fmt.Errorf("weather: %w", err)
	}
	for _, col := range []string{"day", "lat", "lon", "temp"} {
		if !tb.HasColumn(col) {
			return nil, fmt.Errorf("weather: CSV missing column %q", col)
		}
	}
	uniq := func(col string) ([]float64, error) {
		vs, err := tb.Unique(col)
		if err != nil {
			return nil, err
		}
		out := make([]float64, len(vs))
		for i, v := range vs {
			if !v.IsNum {
				return nil, fmt.Errorf("weather: non-numeric %s value %q", col, v.Text())
			}
			out[i] = v.Num
		}
		return out, nil
	}
	days, err := uniq("day")
	if err != nil {
		return nil, err
	}
	lats, err := uniq("lat")
	if err != nil {
		return nil, err
	}
	lons, err := uniq("lon")
	if err != nil {
		return nil, err
	}
	arr, err := ndarray.New([]string{"time", "lat", "lon"}, map[string][]float64{
		"time": days, "lat": lats, "lon": lons,
	})
	if err != nil {
		return nil, err
	}
	if tb.Len() != len(days)*len(lats)*len(lons) {
		return nil, fmt.Errorf("weather: CSV has %d rows, grid needs %d",
			tb.Len(), len(days)*len(lats)*len(lons))
	}
	index := func(coords []float64, v float64) int {
		for i, c := range coords {
			if c == v {
				return i
			}
		}
		return -1
	}
	for r := 0; r < tb.Len(); r++ {
		ti := index(days, tb.MustCell(r, "day").Num)
		li := index(lats, tb.MustCell(r, "lat").Num)
		gi := index(lons, tb.MustCell(r, "lon").Num)
		if ti < 0 || li < 0 || gi < 0 {
			return nil, fmt.Errorf("weather: row %d has off-grid coordinates", r)
		}
		if err := arr.Set(tb.MustCell(r, "temp").Num, ti, li, gi); err != nil {
			return nil, err
		}
	}
	return arr, nil
}

// Analysis holds the derived climatology products of the use case.
type Analysis struct {
	// ZonalAnnualMean is mean temperature by latitude (time and lon
	// averaged out).
	ZonalAnnualMean *ndarray.Array // dims: lat
	// SeasonalZonal is mean temperature by (month, lat).
	SeasonalZonal *ndarray.Array // dims: time(=month), lat
	// GlobalMeanK is the area-weighted global mean temperature.
	GlobalMeanK float64
	// AmplitudeNorth and AmplitudeSouth are the mean seasonal
	// peak-to-peak swings per hemisphere.
	AmplitudeNorth, AmplitudeSouth float64
}

// Analyze runs the BWW air-temperature analysis.
func Analyze(a *ndarray.Array) (*Analysis, error) {
	zonal, err := a.Reduce("lon", "mean") // (time, lat)
	if err != nil {
		return nil, err
	}
	annual, err := zonal.Reduce("time", "mean") // (lat)
	if err != nil {
		return nil, err
	}
	monthly, err := zonal.GroupBy("time", func(day float64) float64 {
		return math.Floor(day / 30.44)
	}, "mean")
	if err != nil {
		return nil, err
	}
	monthMax, err := monthly.Reduce("time", "max")
	if err != nil {
		return nil, err
	}
	monthMin, err := monthly.Reduce("time", "min")
	if err != nil {
		return nil, err
	}
	lats, err := a.Coords("lat")
	if err != nil {
		return nil, err
	}
	var north, south []float64
	maxV, minV := monthMax.Values(), monthMin.Values()
	for i, lat := range lats {
		amp := maxV[i] - minV[i]
		switch {
		case lat > 15:
			north = append(north, amp)
		case lat < -15:
			south = append(south, amp)
		}
	}
	an := &Analysis{
		ZonalAnnualMean: annual,
		SeasonalZonal:   monthly,
		AmplitudeNorth:  table.Mean(north),
		AmplitudeSouth:  table.Mean(south),
	}
	an.GlobalMeanK, err = areaWeightedMean(annual, lats)
	if err != nil {
		return nil, err
	}
	return an, nil
}

func areaWeightedMean(byLat *ndarray.Array, lats []float64) (float64, error) {
	vals := byLat.Values()
	if len(vals) != len(lats) {
		return 0, fmt.Errorf("weather: latitude profile length mismatch")
	}
	num, den := 0.0, 0.0
	for i, lat := range lats {
		w := math.Cos(lat * math.Pi / 180)
		if w < 0 {
			w = 0
		}
		num += vals[i] * w
		den += w
	}
	if den == 0 {
		return 0, fmt.Errorf("weather: degenerate latitude grid")
	}
	return num / den, nil
}

// Heatmap renders the seasonal zonal-mean climatology as the figure of
// the use case (latitude rows, month columns).
func (an *Analysis) Heatmap() (*plot.Heatmap, error) {
	// SeasonalZonal is (month, lat); transpose into lat rows.
	m, err := an.SeasonalZonal.Matrix()
	if err != nil {
		return nil, err
	}
	lats, err := an.SeasonalZonal.Coords("lat")
	if err != nil {
		return nil, err
	}
	rows := make([][]float64, len(lats))
	labels := make([]string, len(lats))
	for li := range lats {
		row := make([]float64, len(m))
		for mi := range m {
			row[mi] = m[mi][li]
		}
		// render north at the top
		rows[len(lats)-1-li] = row
		labels[len(lats)-1-li] = fmt.Sprintf("%+.0f", lats[li])
	}
	return &plot.Heatmap{
		Title:     "NCEP/NCAR-style reanalysis: zonal mean air temperature (K)",
		XLabel:    "month",
		YLabel:    "latitude",
		Rows:      rows,
		RowLabels: labels,
	}, nil
}
