package sched

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"popper/internal/cluster"
	"popper/internal/fault"
)

// testFleet builds a uniform fleet of n hosts on the default profile.
func testFleet(t testing.TB, n int) []HostSpec {
	t.Helper()
	p, err := cluster.Profile("cloudlab-c220g1")
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]HostSpec, n)
	for i := range specs {
		specs[i] = HostSpec{Name: hostName(i), Profile: p}
	}
	return specs
}

func hostName(i int) string {
	return fmt.Sprintf("h%04d", i)
}

func TestDequePushPopFIFO(t *testing.T) {
	var d deque
	for i := 0; i < 100; i++ {
		d.push(i)
	}
	for i := 0; i < 100; i++ {
		got, ok := d.pop()
		if !ok || got != i {
			t.Fatalf("pop %d = %d, %v; want FIFO order", i, got, ok)
		}
	}
	if _, ok := d.pop(); ok {
		t.Fatal("pop on empty deque must report empty")
	}
}

func TestDequeStealTakesBackHalf(t *testing.T) {
	var victim, thief deque
	for i := 0; i < 10; i++ {
		victim.push(i)
	}
	if moved := victim.stealInto(&thief); moved != 5 {
		t.Fatalf("stole %d tasks, want 5", moved)
	}
	// The victim keeps its imminent work (front), the thief gets the
	// back half in preserved order.
	for i := 0; i < 5; i++ {
		if got, _ := victim.pop(); got != i {
			t.Fatalf("victim pop = %d, want %d", got, i)
		}
	}
	for i := 5; i < 10; i++ {
		if got, _ := thief.pop(); got != i {
			t.Fatalf("thief pop = %d, want %d", got, i)
		}
	}
	var empty deque
	if moved := empty.stealInto(&thief); moved != 0 {
		t.Fatalf("steal from empty deque moved %d", moved)
	}
}

func TestDequeStealOddSizeRoundsUp(t *testing.T) {
	var victim, thief deque
	victim.push(1)
	if moved := victim.stealInto(&thief); moved != 1 {
		t.Fatalf("stealing a 1-task queue moved %d, want 1", moved)
	}
	if victim.len() != 0 || thief.len() != 1 {
		t.Fatalf("after steal: victim %d thief %d", victim.len(), thief.len())
	}
}

func TestParsePlacement(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want PlacementPolicy
	}{{"roundrobin", PlaceRoundRobin}, {"rr", PlaceRoundRobin}, {"", PlaceRoundRobin},
		{"locality", PlaceLocality}, {"local", PlaceLocality}} {
		got, err := ParsePlacement(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParsePlacement(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParsePlacement("chaos-monkey"); err == nil {
		t.Fatal("unknown policy must error")
	}
	if PlaceLocality.String() != "locality" || PlaceRoundRobin.String() != "roundrobin" {
		t.Fatal("policy names must round-trip with the -placement flag")
	}
}

func TestClusterSchedulerValidation(t *testing.T) {
	if _, err := NewClusterScheduler(ClusterOptions{}); err == nil {
		t.Fatal("empty fleet must be rejected")
	}
	if _, err := NewClusterScheduler(ClusterOptions{Hosts: []HostSpec{{Name: "h"}}}); err == nil {
		t.Fatal("host without profile must be rejected")
	}
	if _, err := NewClusterScheduler(ClusterOptions{
		Hosts: []HostSpec{{Profile: &cluster.MachineProfile{}}}}); err == nil {
		t.Fatal("host without name must be rejected")
	}
}

func TestClusterSchedulerRunsEveryTaskOnce(t *testing.T) {
	const n, hosts = 333, 16
	cs, err := NewClusterScheduler(ClusterOptions{Hosts: testFleet(t, hosts), Jobs: 8})
	if err != nil {
		t.Fatal(err)
	}
	var calls [n]atomic.Int32
	errs, rep := cs.Run(n, func(i int) error {
		calls[i].Add(1)
		return nil
	})
	for i := range calls {
		if got := calls[i].Load(); got != 1 {
			t.Fatalf("task %d ran %d times, want exactly once", i, got)
		}
		if errs[i] != nil {
			t.Fatalf("task %d: %v", i, errs[i])
		}
		if rep.Winner[i] < 0 || rep.Winner[i] >= hosts {
			t.Fatalf("task %d has no winning host: %d", i, rep.Winner[i])
		}
	}
	if rep.Tasks != n || rep.Lost != 0 {
		t.Fatalf("report: %d tasks, %d lost; want %d, 0", rep.Tasks, rep.Lost, n)
	}
	var executed, placed int
	for _, h := range rep.Hosts {
		executed += h.Executed
		placed += h.Placed
	}
	if executed != n || placed != n {
		t.Fatalf("executed %d placed %d, want %d each", executed, placed, n)
	}
	// Uniform tasks on a uniform fleet: round-robin placement keeps
	// every host busy, so the makespan is the ideal n/hosts (with a
	// possible remainder task).
	if rep.Makespan > float64(n/hosts+1)+0.01 {
		t.Fatalf("makespan %.3f, want about %d", rep.Makespan, n/hosts+1)
	}
	if got := rep.ConfigsPerSec(); got <= 0 {
		t.Fatalf("ConfigsPerSec = %v", got)
	}
	if s := rep.String(); !strings.Contains(s, "configs") {
		t.Fatalf("report string %q", s)
	}
}

func TestClusterSchedulerFnErrorsSurface(t *testing.T) {
	cs, err := NewClusterScheduler(ClusterOptions{Hosts: testFleet(t, 4), Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	errs, rep := cs.Run(10, func(i int) error {
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(errs[3], boom) {
		t.Fatalf("errs[3] = %v", errs[3])
	}
	// A real failure is the caller's business; the virtual schedule
	// still completes every configuration.
	if rep.Tasks != 10 {
		t.Fatalf("virtual tasks = %d, want 10", rep.Tasks)
	}
}

func TestPlacementLocalityHonorsHints(t *testing.T) {
	const hosts = 8
	// Every task hints at host 5; without stealing they must all be
	// placed — and executed — there.
	locality := make([]int, 24)
	for i := range locality {
		locality[i] = 5
	}
	cs, err := NewClusterScheduler(ClusterOptions{
		Hosts: testFleet(t, hosts), Placement: PlaceLocality,
		Locality: locality, NoSteal: true, NoSpeculate: true, Jobs: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, rep := cs.Run(len(locality), nil)
	if rep.Hosts[5].Placed != len(locality) || rep.Hosts[5].Executed != len(locality) {
		t.Fatalf("host 5 placed %d executed %d, want %d each",
			rep.Hosts[5].Placed, rep.Hosts[5].Executed, len(locality))
	}
}

func TestPlacementLocalityFallbackSpreads(t *testing.T) {
	const hosts, n = 4, 40
	// No hints at all: the locality policy must fall back to the
	// deterministic cheapest-host rotation, not pile onto one host.
	cs, err := NewClusterScheduler(ClusterOptions{
		Hosts: testFleet(t, hosts), Placement: PlaceLocality,
		NoSteal: true, NoSpeculate: true, Jobs: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, rep := cs.Run(n, nil)
	for i, h := range rep.Hosts {
		if h.Placed != n/hosts {
			t.Fatalf("host %d placed %d, want %d (uniform fallback rotation)", i, h.Placed, n/hosts)
		}
	}
}

func TestCostOrderStartsAtSelf(t *testing.T) {
	specs := testFleet(t, 6)
	for from := 0; from < 6; from++ {
		order := costOrder(specs, from)
		if order[0] != from {
			t.Fatalf("costOrder(%d)[0] = %d; loopback must be cheapest", from, order[0])
		}
		seen := make(map[int]bool)
		for _, r := range order {
			seen[r] = true
		}
		if len(seen) != 6 {
			t.Fatalf("costOrder(%d) = %v, not a permutation", from, order)
		}
	}
}

func TestWorkStealingDrainsImbalance(t *testing.T) {
	const hosts, n = 8, 64
	// All work lands on host 0 via hints; stealing must spread it so
	// the makespan is far below the n-seconds serial pile-up.
	locality := make([]int, n)
	cs, err := NewClusterScheduler(ClusterOptions{
		Hosts: testFleet(t, hosts), Placement: PlaceLocality,
		Locality: locality, NoSpeculate: true, Jobs: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, rep := cs.Run(n, nil)
	if rep.Tasks != n {
		t.Fatalf("tasks = %d, want %d", rep.Tasks, n)
	}
	if rep.Steals == 0 {
		t.Fatal("an 8-host fleet with all work on host 0 must steal")
	}
	// Ideal is n/hosts = 8s; allow generous slack for steal ramp-up.
	if rep.Makespan > float64(n)/float64(hosts)*2 {
		t.Fatalf("makespan %.2f, want near %.2f (stealing must rebalance)",
			rep.Makespan, float64(n)/float64(hosts))
	}
	var stolen int
	for _, h := range rep.Hosts {
		stolen += h.StolenTasks
	}
	if stolen == 0 {
		t.Fatal("per-host stolen-task counters must record the rebalance")
	}
}

func TestNoStealLeavesImbalance(t *testing.T) {
	const hosts, n = 8, 64
	locality := make([]int, n)
	cs, err := NewClusterScheduler(ClusterOptions{
		Hosts: testFleet(t, hosts), Placement: PlaceLocality,
		Locality: locality, NoSteal: true, NoSpeculate: true, Jobs: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, rep := cs.Run(n, nil)
	if rep.Steals != 0 {
		t.Fatalf("NoSteal run recorded %d steals", rep.Steals)
	}
	if rep.Makespan < float64(n)-0.01 {
		t.Fatalf("makespan %.2f; without stealing host 0 must run all %d tasks serially", rep.Makespan, n)
	}
}

func TestSpeculationRescuesStraggler(t *testing.T) {
	const hosts, n = 4, 16
	spec := func(noSpec bool) *ClusterReport {
		inj := fault.NewInjector(chaosSeedEnv(t), []fault.Rule{
			// The second task host 3 starts runs 50 virtual seconds
			// long — a straggler an idle peer should duplicate.
			{Site: "sched/host/" + hostName(3), Kind: fault.Latency, Delay: 50, After: 1, Times: 1},
		})
		cs, err := NewClusterScheduler(ClusterOptions{
			Hosts: testFleet(t, hosts), Faults: inj,
			NoSpeculate: noSpec, Jobs: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		_, rep := cs.Run(n, nil)
		if rep.Tasks != n {
			t.Fatalf("tasks = %d, want %d", rep.Tasks, n)
		}
		return rep
	}
	slow := spec(true)
	fast := spec(false)
	if slow.Makespan < 50 {
		t.Fatalf("no-speculation makespan %.2f, want >= 50 (the straggler)", slow.Makespan)
	}
	if fast.Speculations == 0 || fast.SpeculationWins == 0 {
		t.Fatalf("speculation run: %d copies, %d wins; want > 0", fast.Speculations, fast.SpeculationWins)
	}
	if fast.Makespan >= slow.Makespan/2 {
		t.Fatalf("speculation makespan %.2f vs %.2f; the duplicate copy must beat the straggler",
			fast.Makespan, slow.Makespan)
	}
}

func TestSpeculationExecutesTaskOnce(t *testing.T) {
	const hosts, n = 4, 16
	inj := fault.NewInjector(chaosSeedEnv(t), []fault.Rule{
		{Site: "sched/host/" + hostName(3), Kind: fault.Latency, Delay: 50, After: 1, Times: 1},
	})
	cs, err := NewClusterScheduler(ClusterOptions{Hosts: testFleet(t, hosts), Faults: inj, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	var calls [n]atomic.Int32
	errs, rep := cs.Run(n, func(i int) error {
		calls[i].Add(1)
		return nil
	})
	if rep.Speculations == 0 {
		t.Fatal("the straggler must draw a speculative copy")
	}
	// Idempotence: two virtual copies, one real execution.
	for i := range calls {
		if got := calls[i].Load(); got != 1 {
			t.Fatalf("task %d ran %d times; speculation must not re-execute work", i, got)
		}
		if errs[i] != nil {
			t.Fatalf("task %d: %v", i, errs[i])
		}
	}
}

func TestInjectedErrorReplacesTask(t *testing.T) {
	const hosts, n = 4, 12
	inj := fault.NewInjector(chaosSeedEnv(t), []fault.Rule{
		{Site: "sched/host/" + hostName(1), Kind: fault.Error, Times: 1, Msg: "flaky host"},
	})
	cs, err := NewClusterScheduler(ClusterOptions{Hosts: testFleet(t, hosts), Faults: inj, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	errs, rep := cs.Run(n, nil)
	if rep.Replaced != 1 {
		t.Fatalf("replaced = %d, want 1", rep.Replaced)
	}
	if rep.Tasks != n || rep.Lost != 0 {
		t.Fatalf("tasks %d lost %d; a flaky attempt must not lose the configuration", rep.Tasks, rep.Lost)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("task %d: %v", i, e)
		}
	}
}

func TestCrashRedistributesQueue(t *testing.T) {
	const hosts, n = 4, 40
	inj := fault.NewInjector(chaosSeedEnv(t), []fault.Rule{
		{Site: "sched/host/" + hostName(2), Kind: fault.Crash, Msg: "host died"},
	})
	cs, err := NewClusterScheduler(ClusterOptions{Hosts: testFleet(t, hosts), Faults: inj, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	errs, rep := cs.Run(n, nil)
	if !rep.Hosts[2].Failed {
		t.Fatal("crashed host must be reported failed")
	}
	if rep.Hosts[2].Executed != 0 {
		t.Fatalf("crashed host executed %d tasks", rep.Hosts[2].Executed)
	}
	if rep.Tasks != n || rep.Lost != 0 {
		t.Fatalf("tasks %d lost %d; survivors must absorb the dead host's queue", rep.Tasks, rep.Lost)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("task %d: %v", i, e)
		}
	}
}

func TestWholeFleetCrashLosesRemainingTasks(t *testing.T) {
	inj := fault.NewInjector(chaosSeedEnv(t), []fault.Rule{
		{Site: "sched/host/*", Kind: fault.Crash, Msg: "rack power loss"},
	})
	cs, err := NewClusterScheduler(ClusterOptions{Hosts: testFleet(t, 2), Faults: inj, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	errs, rep := cs.Run(10, nil)
	if rep.Lost != 10 || rep.Tasks != 0 {
		t.Fatalf("lost %d done %d; the whole fleet died before running anything", rep.Lost, rep.Tasks)
	}
	for i, e := range errs {
		if !errors.Is(e, ErrSkipped) {
			t.Fatalf("task %d = %v, want ErrSkipped (never dispatched)", i, e)
		}
		if rep.Winner[i] != -1 {
			t.Fatalf("task %d has winner %d, want -1", i, rep.Winner[i])
		}
	}
}

func TestAttemptCapStopsErrorLivelock(t *testing.T) {
	// A prob-1 error rule across the whole fleet would re-place every
	// task forever; the attempt cap must abandon them instead.
	inj := fault.NewInjector(chaosSeedEnv(t), []fault.Rule{
		{Site: "sched/host/*", Kind: fault.Error, Prob: 1, Msg: "fleet-wide flake"},
	})
	cs, err := NewClusterScheduler(ClusterOptions{
		Hosts: testFleet(t, 3), Faults: inj, MaxTaskAttempts: 4, Jobs: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	errs, rep := cs.Run(6, nil)
	if rep.Tasks != 0 || rep.Lost != 6 {
		t.Fatalf("tasks %d lost %d; every configuration must be abandoned at the cap", rep.Tasks, rep.Lost)
	}
	for i, e := range errs {
		if !errors.Is(e, ErrSkipped) {
			t.Fatalf("task %d = %v, want ErrSkipped", i, e)
		}
	}
}

func TestNodeClockAdvancesWithSchedule(t *testing.T) {
	clus := cluster.New(1)
	nodes, err := clus.Provision("cloudlab-c220g1", 4)
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]HostSpec, len(nodes))
	for i, n := range nodes {
		specs[i] = HostSpec{Name: n.ID(), Profile: n.Profile(), Node: n}
	}
	cs, err := NewClusterScheduler(ClusterOptions{Hosts: specs, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, rep := cs.Run(16, nil)
	var maxClock float64
	for _, n := range nodes {
		if n.Now() > maxClock {
			maxClock = n.Now()
		}
	}
	if maxClock != rep.Makespan {
		t.Fatalf("max node clock %.3f != makespan %.3f; the schedule must drive logical time", maxClock, rep.Makespan)
	}
}
