package sched

import (
	"os"
	"reflect"
	"strconv"
	"sync/atomic"
	"testing"

	"popper/internal/fault"
)

// chaosSeedEnv returns the fault seed for the scheduler chaos suite.
// `make chaos` sweeps it via CHAOS_SEED; plain `go test` stays pinned.
func chaosSeedEnv(t testing.TB) int64 {
	t.Helper()
	raw := os.Getenv("CHAOS_SEED")
	if raw == "" {
		return 42
	}
	seed, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		t.Fatalf("CHAOS_SEED=%q is not an integer", raw)
	}
	return seed
}

// chaosClusterRules is the scheduler chaos schedule: a straggler, a
// flaky host and a crash, all in one sweep.
func chaosClusterRules() []fault.Rule {
	return []fault.Rule{
		{Site: "sched/host/" + hostName(3), Kind: fault.Latency, Delay: 30, After: 1, Times: 1},
		{Site: "sched/host/" + hostName(5), Kind: fault.Error, Times: 2, Msg: "flaky"},
		{Site: "sched/host/" + hostName(7), Kind: fault.Crash, After: 2, Msg: "died mid-sweep"},
	}
}

func runChaosCluster(t testing.TB, hosts, n, jobs int) *ClusterReport {
	t.Helper()
	cs, err := NewClusterScheduler(ClusterOptions{
		Hosts:  testFleet(t, hosts),
		Seed:   chaosSeedEnv(t),
		Faults: fault.NewInjector(chaosSeedEnv(t), chaosClusterRules()),
		Jobs:   jobs,
	})
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	errs, rep := cs.Run(n, func(i int) error {
		calls.Add(1)
		return nil
	})
	for i, e := range errs {
		if e != nil {
			t.Fatalf("task %d: %v", i, e)
		}
	}
	if int(calls.Load()) != n {
		t.Fatalf("fn ran %d times, want %d (exactly once per task)", calls.Load(), n)
	}
	return rep
}

// TestChaosClusterScheduleDeterministic is the scheduling determinism
// contract: with stealing, speculation, a straggler, a flaky host and
// a crash all active, the virtual schedule — placement, steal counts,
// speculation outcomes, winners, makespan — is a pure function of
// (seed, fleet, rules). Worker count shapes only wall-clock execution,
// so reports are identical at every Jobs level, run after run, under
// -race.
func TestChaosClusterScheduleDeterministic(t *testing.T) {
	const hosts, n = 12, 96
	base := runChaosCluster(t, hosts, n, 1)
	if base.Tasks != n {
		t.Fatalf("tasks = %d, want %d (survivors absorb the chaos)", base.Tasks, n)
	}
	if base.Steals == 0 {
		t.Fatal("the crash + straggler schedule must trigger stealing")
	}
	if !base.Hosts[7].Failed {
		t.Fatal("host 7 must crash under the chaos schedule")
	}
	if base.Replaced == 0 {
		t.Fatal("the flaky host must force re-placements")
	}
	for _, jobs := range []int{1, 2, 4, 8} {
		for round := 0; round < 2; round++ {
			got := runChaosCluster(t, hosts, n, jobs)
			if !reflect.DeepEqual(got, base) {
				t.Fatalf("schedule diverged at jobs=%d round=%d:\n got %+v\nwant %+v", jobs, round, got, base)
			}
		}
	}
}

// TestChaosVictimSelectionSeeded pins the other half of the determinism
// trick: victim selection among tied queues is a seeded counter-mode
// coin, so two runs with the same seed agree steal for steal, while a
// different seed is free to pick different victims without changing
// what completes.
func TestChaosVictimSelectionSeeded(t *testing.T) {
	run := func(seed int64) *ClusterReport {
		// All work pinned to two equal piles so thieves always face a
		// tie.
		locality := make([]int, 64)
		for i := range locality {
			locality[i] = i % 2
		}
		cs, err := NewClusterScheduler(ClusterOptions{
			Hosts: testFleet(t, 8), Placement: PlaceLocality,
			Locality: locality, Seed: seed, NoSpeculate: true, Jobs: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		_, rep := cs.Run(len(locality), nil)
		return rep
	}
	a1, a2 := run(1), run(1)
	if !reflect.DeepEqual(a1, a2) {
		t.Fatalf("same seed must reproduce the same steal schedule:\n%+v\n%+v", a1, a2)
	}
	b := run(99)
	if b.Tasks != a1.Tasks {
		t.Fatalf("seed changes completions: %d vs %d", b.Tasks, a1.Tasks)
	}
}

// TestStealHotPathAllocationBounds pins the steal hot path's allocation
// profile: popping queued work and probing an empty victim must not
// allocate — a drained 1024-host fleet probes constantly, and garbage
// there would dominate the event loop.
func TestStealHotPathAllocationBounds(t *testing.T) {
	var victim, thief deque
	for i := 0; i < 1024; i++ {
		victim.push(i)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, ok := victim.pop(); !ok {
			// Refill outside the measured path is impossible here; the
			// 1024-deep queue outlasts 200 runs.
			t.Fatal("victim drained mid-measurement")
		}
	}); avg != 0 {
		t.Fatalf("pop allocates %.1f times per run, want 0", avg)
	}
	var empty deque
	if avg := testing.AllocsPerRun(200, func() {
		if moved := empty.stealInto(&thief); moved != 0 {
			t.Fatal("steal from empty deque moved tasks")
		}
	}); avg != 0 {
		t.Fatalf("empty-deque steal allocates %.1f times per run, want 0", avg)
	}
	// A steal whose thief ring already has capacity moves tasks without
	// allocating either — the grow is the only allocation site.
	thief.grow(1024)
	if avg := testing.AllocsPerRun(100, func() {
		victim.stealInto(&thief)
		for {
			if _, ok := thief.pop(); !ok {
				break
			}
		}
	}); avg != 0 {
		t.Fatalf("warm steal allocates %.1f times per run, want 0", avg)
	}
}
