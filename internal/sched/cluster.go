// Cluster-wide sweep scheduling: locality-aware placement, per-host
// deques with work stealing, and speculative re-execution of stragglers,
// scaled to thousands of simulated hosts.
//
// The design splits the problem the way the rest of the toolchain splits
// simulation from execution: all scheduling decisions — which host runs
// which configuration, who steals from whom, which in-flight task gets a
// speculative copy, which copy wins — are made by a single-threaded
// discrete-event loop over the hosts' virtual clocks. The loop is a pure
// function of (options, fleet, fault schedule): it never reads wall
// time, goroutine interleaving or worker counts, so the schedule it
// produces is deterministic by construction — the same trick
// internal/fault plays with counter-mode hashing, applied to a whole
// scheduler. The real task functions then execute on the ordinary
// bounded worker pool in the loop's dispatch order, each task exactly
// once, depositing results into index-owned slots. Journals therefore
// come out byte-identical to a serial run: parallelism, steals and
// speculation reshape virtual time and the fleet report, never the
// artifacts.
//
// Speculative re-execution is race-clean and idempotent for the same
// reason: copies race only in virtual time, first (virtual) completion
// wins deterministically, and the configuration's side effects are
// applied exactly once no matter how many copies the schedule launched —
// equivalent to racing two copies of an idempotent task and keeping the
// winner, without paying twice. See docs/SCHEDULING.md.

package sched

import (
	"errors"
	"fmt"

	"popper/internal/cluster"
	"popper/internal/fault"
)

// HostSpec describes one simulated host of the scheduling fleet.
type HostSpec struct {
	// Name identifies the host in reports and fault sites
	// ("sched/host/<name>").
	Name string
	// Profile supplies the network parameters placement cost orders and
	// steal round trips are computed from. Required.
	Profile *cluster.MachineProfile
	// Node, when set, is the host's cluster node: its logical clock is
	// advanced to each completion the host wins, so cluster.MaxClock
	// over the fleet reports the sweep's virtual makespan.
	Node *cluster.Node
}

// ClusterOptions configure a cluster scheduler.
type ClusterOptions struct {
	// Hosts is the simulated fleet; at least one host is required.
	Hosts []HostSpec
	// Placement selects the initial assignment policy.
	Placement PlacementPolicy
	// Locality gives task i a preferred host rank (PlaceLocality reads
	// it; typically gassyfs.SweepLocality output). -1 or out-of-range
	// means "no hint"; shorter-than-n slices imply no hint for the rest.
	Locality []int
	// Seed drives the deterministic victim-selection coin (and nothing
	// else — placement and speculation are seed-free).
	Seed int64
	// NoSteal disables work stealing; drained hosts idle instead.
	NoSteal bool
	// NoSpeculate disables speculative straggler re-execution.
	NoSpeculate bool
	// SpeculationFactor is the straggler threshold: a running copy whose
	// virtual duration exceeds factor × the mean completed-copy duration
	// is a speculation candidate. <= 0 means the default of 2.
	SpeculationFactor float64
	// TaskCost returns task's virtual duration on host, in seconds; nil
	// means a uniform 1s. Must be a pure function of its arguments.
	TaskCost func(task, host int) float64
	// Faults is consulted once per copy start at site
	// "sched/host/<name>": latency faults slow the copy by Delay
	// (stragglers), errors fail the attempt (the task is re-placed by
	// cost order), crashes kill the host (its queue is redistributed).
	// The loop is single-threaded, so per-site occurrence counters are
	// deterministic. Nil disables injection.
	Faults *fault.Injector
	// MaxTaskAttempts bounds how many times one task is re-placed after
	// injected host errors before it is abandoned as lost (<= 0 means
	// the default of 8) — the backstop against a fleet-wide prob-1 error
	// rule livelocking the loop.
	MaxTaskAttempts int
	// Jobs bounds the real worker pool that executes task functions
	// (<= 0 means one per CPU). Purely a wall-clock knob: the virtual
	// schedule and every artifact are identical at any value.
	Jobs int
	// FailFast stops the real-execution pool from dispatching further
	// task functions after the first one returns a non-nil error;
	// undispatched tasks get ErrSkipped slots. The virtual schedule is
	// unaffected — only real execution is cut short, so which tasks
	// were skipped depends on the dispatch order (see Options.FailFast).
	FailFast bool
}

// HostReport is one host's slice of the fleet report.
type HostReport struct {
	Name string
	// Placed is how many tasks initial placement queued here.
	Placed int
	// Executed counts tasks whose winning copy ran here.
	Executed int
	// StolenTasks counts tasks this host acquired by stealing; Steals
	// counts the steal operations that acquired them.
	StolenTasks, Steals int
	// Speculated counts speculative copies launched here.
	Speculated int
	// Busy is the host's virtual seconds spent running copies.
	Busy float64
	// Failed marks a host killed by an injected crash.
	Failed bool
}

// ClusterReport summarizes one scheduled run.
type ClusterReport struct {
	Hosts []HostReport
	// Tasks is the number of tasks that completed (virtually).
	Tasks int
	// Steals, Speculations and SpeculationWins count steal operations,
	// speculative copies launched, and tasks whose speculative copy beat
	// the original.
	Steals, Speculations, SpeculationWins int
	// Replaced counts task attempts that failed with an injected host
	// error and were re-placed elsewhere.
	Replaced int
	// Lost counts tasks abandoned because every host died or the attempt
	// cap ran out; their error slots hold ErrSkipped unless a copy had
	// already been dispatched.
	Lost int
	// Makespan is the virtual time the last task completed at.
	Makespan float64
	// Winner[i] is the host index whose copy of task i won, -1 if lost.
	Winner []int
}

// ConfigsPerSec is the virtual sweep throughput — the scaling curve
// BenchmarkSweepScaling pins.
func (r *ClusterReport) ConfigsPerSec() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.Tasks) / r.Makespan
}

// String renders the one-line recap `popper run -hosts` prints.
func (r *ClusterReport) String() string {
	return fmt.Sprintf("%d hosts: %d configs in %.3f virtual s (%.1f configs/s), %d steals, %d speculative copies (%d won)",
		len(r.Hosts), r.Tasks, r.Makespan, r.ConfigsPerSec(), r.Steals, r.Speculations, r.SpeculationWins)
}

// ClusterScheduler drives one sweep across a simulated fleet. Create
// with NewClusterScheduler; one scheduler is good for one Run.
type ClusterScheduler struct {
	opts ClusterOptions
}

// NewClusterScheduler validates the options and builds a scheduler.
func NewClusterScheduler(opts ClusterOptions) (*ClusterScheduler, error) {
	if len(opts.Hosts) == 0 {
		return nil, fmt.Errorf("sched: cluster scheduler needs at least one host")
	}
	for i, h := range opts.Hosts {
		if h.Profile == nil {
			return nil, fmt.Errorf("sched: host %d (%q) has no machine profile", i, h.Name)
		}
		if h.Name == "" {
			return nil, fmt.Errorf("sched: host %d has no name", i)
		}
	}
	if opts.SpeculationFactor <= 0 {
		opts.SpeculationFactor = 2
	}
	if opts.MaxTaskAttempts <= 0 {
		opts.MaxTaskAttempts = 8
	}
	return &ClusterScheduler{opts: opts}, nil
}

// Task lifecycle states.
const (
	taskQueued  uint8 = iota // waiting in some host's deque
	taskRunning              // at least one copy in flight
	taskDone                 // a copy completed (winner recorded)
	taskLost                 // abandoned: no alive host / attempt cap
)

// schedHost is one host's mutable scheduling state. All fields are
// owned by the event loop — no locks, by design.
type schedHost struct {
	spec   HostSpec
	site   string // fault site, "sched/host/<name>", built once at init
	dq     deque
	clock  float64 // virtual now (== busyUntil while running)
	alive  bool
	parked bool

	cur          int     // running task, -1 when idle
	curStart     float64 // when the running copy started
	busyUntil    float64 // when the running copy completes
	curFailed    bool    // the running copy drew an injected error
	curSpec      bool    // the running copy is speculative
	curCandidate bool    // the running copy qualifies for speculation

	ver        uint32 // bumped to invalidate a pending completion event
	stealTries int    // counter feeding the seeded victim coin
	order      []int  // memoized cost order from this rank

	placed, executed, stolenTasks, steals, speculated int
	busy                                              float64
}

type taskState struct {
	state      uint8
	copies     uint8
	attempts   uint8
	dispatched bool
	winner     int32
	runnerA    int32 // primary copy's host
	runnerB    int32 // speculative copy's host (-1 when none)
	finish     float64
}

// completion event: host's running copy finishes at t. ver guards
// against cancelled copies (speculation losers).
type schedEvent struct {
	t    float64
	host int32
	ver  uint32
}

type eventHeap []schedEvent

func (h *eventHeap) push(e schedEvent) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess((*h)[i], (*h)[parent]) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *eventHeap) pop() schedEvent {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && eventLess(old[l], old[small]) {
			small = l
		}
		if r < n && eventLess(old[r], old[small]) {
			small = r
		}
		if small == i {
			break
		}
		old[i], old[small] = old[small], old[i]
		i = small
	}
	return top
}

// eventLess orders events by (time, host index) — the deterministic
// tie-break that makes simultaneous completions replay identically.
func eventLess(a, b schedEvent) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.host < b.host
}

// clusterRun is the event loop's working state.
type clusterRun struct {
	opts       ClusterOptions
	hosts      []*schedHost
	tasks      []taskState
	events     eventHeap
	dispatch   []int // real-execution order (each task at most once)
	queued     int   // tasks sitting in deques, fleet-wide
	alive      int   // hosts still alive
	candidates int   // running copies eligible for speculation
	parked     int   // idle hosts waiting for work

	sumDur float64 // completed copy durations (the straggler baseline)
	nDur   int

	report ClusterReport
}

// Run schedules n tasks across the fleet and executes fn for each task
// the schedule dispatched (every task, absent injected host crashes that
// kill the whole fleet). fn may be nil for simulation-only runs — the
// benchmarks measure the scheduler itself that way. The returned error
// slice has one slot per task, in index order: fn's result, or
// ErrSkipped for tasks the schedule never dispatched.
func (s *ClusterScheduler) Run(n int, fn func(i int) error) ([]error, *ClusterReport) {
	if fn == nil {
		return s.RunHosted(n, nil)
	}
	return s.RunHosted(n, func(i, _ int) error { return fn(i) })
}

// RunHosted is Run with host attribution: fn additionally receives the
// index of the host whose copy of the task won the virtual schedule
// (-1 for a task the schedule dispatched but later lost to a fleet
// crash). Task functions that account per-host state — the federated
// cache charges transfers to the winning host's clock — use this; the
// host index must not influence fn's artifacts, only its accounting,
// or the byte-identical-to-serial guarantee is forfeit.
func (s *ClusterScheduler) RunHosted(n int, fn func(i, host int) error) ([]error, *ClusterReport) {
	errs := make([]error, n)
	r := &clusterRun{
		opts:  s.opts,
		hosts: make([]*schedHost, len(s.opts.Hosts)),
		tasks: make([]taskState, n),
		alive: len(s.opts.Hosts),
	}
	for i := range r.tasks {
		r.tasks[i].winner, r.tasks[i].runnerA, r.tasks[i].runnerB = -1, -1, -1
	}
	for i, spec := range s.opts.Hosts {
		r.hosts[i] = &schedHost{spec: spec, site: "sched/host/" + spec.Name, cur: -1, alive: true}
	}
	r.dispatch = make([]int, 0, n)
	r.report.Hosts = make([]HostReport, len(r.hosts))
	r.report.Winner = make([]int, n)
	for i := range r.report.Winner {
		r.report.Winner[i] = -1
	}

	if n > 0 {
		place(n, r.hosts, s.opts.Hosts, s.opts.Placement, s.opts.Locality)
		r.queued = n
		for i := range r.hosts {
			r.acquire(i, 0)
		}
		for len(r.events) > 0 {
			ev := r.events.pop()
			h := r.hosts[ev.host]
			if ev.ver != h.ver {
				continue // cancelled copy (speculation loser)
			}
			r.complete(int(ev.host), ev.t)
			// Completions can mint speculation candidates (the baseline
			// mean moves) and re-placements can repopulate queues; give
			// parked hosts a chance to pick the new work up.
			if r.parked > 0 && (r.candidates > 0 || r.queued > 0) {
				for i, sh := range r.hosts {
					if sh.parked && sh.alive {
						r.acquire(i, ev.t)
					}
				}
			}
		}
	}

	// Anything still queued or running has no host left to finish it.
	for i := range r.tasks {
		if st := r.tasks[i].state; st != taskDone {
			r.tasks[i].state = taskLost
			r.report.Lost++
			if !r.tasks[i].dispatched {
				errs[i] = ErrSkipped
			}
		}
	}
	for i, sh := range r.hosts {
		r.report.Hosts[i] = HostReport{
			Name: sh.spec.Name, Placed: sh.placed, Executed: sh.executed,
			StolenTasks: sh.stolenTasks, Steals: sh.steals,
			Speculated: sh.speculated, Busy: sh.busy, Failed: !sh.alive,
		}
	}

	// Real execution: the loop's dispatch order, each task exactly once,
	// on the ordinary bounded pool. Slot i of errs is owned by task i,
	// so workers deposit results without synchronization — and because
	// fn(i) is independent of which host virtually ran it, the artifacts
	// are byte-identical to a serial sweep.
	if fn != nil && len(r.dispatch) > 0 {
		slots := NewPool(s.opts.Jobs).EachOpts(len(r.dispatch), func(k int) error {
			i := r.dispatch[k]
			errs[i] = fn(i, r.report.Winner[i])
			return errs[i]
		}, Options{FailFast: s.opts.FailFast})
		// A fail-fast stop leaves dispatch slots unexecuted: surface
		// them as ErrSkipped in task-index space too.
		for k, e := range slots {
			if errors.Is(e, ErrSkipped) {
				errs[r.dispatch[k]] = ErrSkipped
			}
		}
	}
	rep := r.report
	return errs, &rep
}

// cost returns task's virtual duration on host rank.
func (r *clusterRun) cost(task, host int) float64 {
	if r.opts.TaskCost == nil {
		return 1
	}
	d := r.opts.TaskCost(task, host)
	if d < 0 {
		return 0
	}
	return d
}

// acquire gives idle host h work at virtual time t: pop its own deque,
// else steal, else speculate, else park.
func (r *clusterRun) acquire(h int, t float64) {
	sh := r.hosts[h]
	if !sh.alive || sh.cur >= 0 {
		return
	}
	if t > sh.clock {
		sh.clock = t
	}
	sh.parked = false
	for {
		task, ok := sh.dq.pop()
		if !ok && !r.opts.NoSteal {
			if victim := r.pickVictim(h); victim >= 0 {
				vh := r.hosts[victim]
				// A steal is one control round trip between the thief
				// and the victim — cheap, but not free.
				sh.clock += 2 * (sh.spec.Profile.NICLatS + vh.spec.Profile.NICLatS)
				moved := vh.dq.stealInto(&sh.dq)
				sh.steals++
				sh.stolenTasks += moved
				r.report.Steals++
				task, ok = sh.dq.pop()
			}
		}
		if ok {
			r.queued--
			if r.start(h, task, false) {
				return
			}
			if !sh.alive {
				return // the start drew a crash; host is gone
			}
			continue // attempt cap abandoned the task; take the next one
		}
		if !r.opts.NoSpeculate {
			if task := r.pickStraggler(h, sh.clock); task >= 0 {
				r.start(h, task, true)
				return
			}
		}
		sh.parked = true
		r.parked++
		return
	}
}

// pickVictim returns the alive host with the longest queue (nil when
// every queue is empty). Ties are broken by the seeded counter-mode
// coin — deterministic in (seed, thief, attempt number), exactly like
// a fault-injection decision, so victim selection replays identically
// while still spreading contending thieves across tied victims.
func (r *clusterRun) pickVictim(h int) int {
	sh := r.hosts[h]
	attempt := sh.stealTries
	sh.stealTries++
	longest, ties := 0, 0
	for i, other := range r.hosts {
		if i == h || !other.alive {
			continue
		}
		switch l := other.dq.len(); {
		case l == 0:
		case l > longest:
			longest, ties = l, 1
		case l == longest:
			ties++
		}
	}
	if longest == 0 {
		return -1
	}
	pick := 0
	if ties > 1 {
		pick = int(fault.Hash01(r.opts.Seed, sh.spec.Name, attempt) * float64(ties))
		if pick >= ties {
			pick = ties - 1
		}
	}
	for i, other := range r.hosts {
		if i == h || !other.alive || other.dq.len() != longest {
			continue
		}
		if pick == 0 {
			return i
		}
		pick--
	}
	return -1
}

// pickStraggler finds the in-flight straggler whose copy host h should
// duplicate: a single-copy task flagged as a speculation candidate at
// start, whose expected completion h would beat. Among several, the
// latest finisher (ties: lowest host index) — the one hurting the
// makespan most.
func (r *clusterRun) pickStraggler(h int, t float64) int {
	if r.candidates == 0 {
		return -1
	}
	best, bestFinish := -1, 0.0
	for _, other := range r.hosts {
		if other.cur < 0 || !other.curCandidate || r.tasks[other.cur].copies != 1 {
			continue
		}
		if t+r.cost(other.cur, h) >= other.busyUntil {
			continue // h would not beat the original copy
		}
		if best < 0 || other.busyUntil > bestFinish {
			best, bestFinish = other.cur, other.busyUntil
		}
	}
	return best
}

// start launches a copy of task on host h at the host's current clock.
// Returns true when the copy is in flight; false when the host crashed
// or the task was abandoned at its attempt cap.
func (r *clusterRun) start(h, task int, speculative bool) bool {
	sh := r.hosts[h]
	ts := &r.tasks[task]
	if !speculative {
		if int(ts.attempts) >= r.opts.MaxTaskAttempts {
			ts.state = taskLost
			return false
		}
		ts.attempts++
	}
	dur := r.cost(task, h)
	failed := false
	if r.opts.Faults != nil {
		if f := r.opts.Faults.Check(sh.site); f != nil {
			switch f.Kind {
			case fault.Latency:
				dur += f.Delay
			case fault.Crash, fault.DiskCrash: // terminal: the host dies
				r.killHost(h, task, sh.clock)
				return false
			default: // error/partition: this attempt fails, host survives
				failed = true
			}
		}
	}
	if !ts.dispatched && !failed {
		ts.dispatched = true
		r.dispatch = append(r.dispatch, task)
	}
	ts.state = taskRunning
	ts.copies++
	if speculative {
		ts.runnerB = int32(h)
		sh.speculated++
		r.report.Speculations++
	} else {
		ts.runnerA = int32(h)
	}
	sh.cur, sh.curStart, sh.curFailed, sh.curSpec = task, sh.clock, failed, speculative
	sh.busyUntil = sh.clock + dur
	// Straggler flag, judged against the fleet's completed-copy mean at
	// launch time: a copy expected to run far past typical durations is
	// what idle hosts look for. Deterministic — the mean only moves at
	// completions, which the loop orders totally.
	sh.curCandidate = false
	if !r.opts.NoSpeculate && !speculative && r.nDur > 0 &&
		dur > r.opts.SpeculationFactor*(r.sumDur/float64(r.nDur)) {
		sh.curCandidate = true
		r.candidates++
	}
	r.events.push(schedEvent{t: sh.busyUntil, host: int32(h), ver: sh.ver})
	return true
}

// complete processes host h's running copy finishing at time t.
func (r *clusterRun) complete(h int, t float64) {
	sh := r.hosts[h]
	task := sh.cur
	ts := &r.tasks[task]
	dur := t - sh.curStart
	sh.busy += dur
	sh.clock = t
	sh.cur = -1
	if sh.curCandidate {
		r.candidates--
		sh.curCandidate = false
	}
	r.sumDur += dur
	r.nDur++
	ts.copies--
	wasSpec := sh.curSpec
	if wasSpec {
		ts.runnerB = -1
	} else {
		ts.runnerA = -1
	}

	switch {
	case sh.curFailed:
		// The attempt failed with an injected host error. If a second
		// copy is still running, it carries the task; otherwise re-place
		// the task by cost order from the failing host.
		r.report.Replaced++
		if ts.copies == 0 && ts.state == taskRunning {
			r.requeue(task, h, t)
		}
	case ts.state == taskRunning:
		// First completion wins.
		ts.state = taskDone
		ts.winner = int32(h)
		ts.finish = t
		sh.executed++
		r.report.Tasks++
		r.report.Winner[task] = h
		if t > r.report.Makespan {
			r.report.Makespan = t
		}
		if wasSpec {
			r.report.SpeculationWins++
		}
		if sh.spec.Node != nil {
			sh.spec.Node.AdvanceTo(t)
		}
		// Cancel the losing copy: its host frees immediately.
		if ts.copies > 0 {
			loser := ts.runnerA
			if loser < 0 {
				loser = ts.runnerB
			}
			if loser >= 0 {
				r.cancel(int(loser), t)
				ts.copies = 0
				ts.runnerA, ts.runnerB = -1, -1
			}
		}
	}
	r.acquire(h, t)
}

// cancel aborts host h's running copy at time t (its task was won by
// another copy) and frees the host.
func (r *clusterRun) cancel(h int, t float64) {
	sh := r.hosts[h]
	if sh.cur < 0 {
		return
	}
	sh.ver++ // invalidate the pending completion event
	sh.busy += t - sh.curStart
	if sh.curCandidate {
		r.candidates--
		sh.curCandidate = false
	}
	sh.cur = -1
	sh.clock = t
	r.acquire(h, t)
}

// requeue re-places a task after a failed attempt on host `from`: the
// next alive host in `from`'s deterministic cost order takes it (the
// failing host itself is the fallback of last resort).
func (r *clusterRun) requeue(task, from int, t float64) {
	sh := r.hosts[from]
	if sh.order == nil {
		sh.order = costOrder(r.opts.Hosts, from)
	}
	target := -1
	for _, cand := range sh.order[1:] {
		if r.hosts[cand].alive {
			target = cand
			break
		}
	}
	if target < 0 {
		if !sh.alive {
			r.tasks[task].state = taskLost
			return
		}
		target = from
	}
	r.tasks[task].state = taskQueued
	r.hosts[target].dq.push(task)
	r.queued++
	if r.hosts[target].parked {
		r.parked--
		r.hosts[target].parked = false
		r.acquire(target, t)
	}
}

// killHost processes an injected crash on host h at time t while it was
// about to run `task`: the host dies, and its queued work — plus the
// triggering task — is redistributed across the surviving fleet by the
// host's cost order.
func (r *clusterRun) killHost(h, task int, t float64) {
	sh := r.hosts[h]
	sh.alive = false
	sh.ver++
	r.alive--
	if sh.parked {
		sh.parked = false
		r.parked--
	}
	if sh.order == nil {
		sh.order = costOrder(r.opts.Hosts, h)
	}
	var survivors []int
	for _, cand := range sh.order[1:] {
		if r.hosts[cand].alive {
			survivors = append(survivors, cand)
		}
	}
	orphans := make([]int, 0, sh.dq.len()+1)
	orphans = append(orphans, task)
	for {
		q, ok := sh.dq.pop()
		if !ok {
			break
		}
		r.queued--
		orphans = append(orphans, q)
	}
	if len(survivors) == 0 {
		for _, o := range orphans {
			r.tasks[o].state = taskLost
		}
		return
	}
	for k, o := range orphans {
		target := survivors[k%len(survivors)]
		r.tasks[o].state = taskQueued
		r.hosts[target].dq.push(o)
		r.queued++
	}
	for _, target := range survivors {
		if r.hosts[target].parked {
			r.parked--
			r.hosts[target].parked = false
			r.acquire(target, t)
		}
	}
}
