package sched

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"popper/internal/fault"
)

// tasksPerHost is the weak-scaling load: every fleet size schedules 64
// configurations per host, so ideal makespan — and therefore ideal
// configs/sec per host — is constant across the curve.
const tasksPerHost = 64

// benchHostCounts is the scaling curve BENCH_sched.json records.
var benchHostCounts = []int{1, 16, 256, 1024}

// scheduleFleet runs a simulation-only sweep of hosts*tasksPerHost
// configurations and returns the report.
func scheduleFleet(tb testing.TB, hosts int, rules []fault.Rule, noSteal bool) *ClusterReport {
	opts := ClusterOptions{
		Hosts:       testFleet(tb, hosts),
		Seed:        42,
		NoSteal:     noSteal,
		NoSpeculate: true,
		Jobs:        1,
	}
	if rules != nil {
		opts.Faults = fault.NewInjector(42, rules)
	}
	cs, err := NewClusterScheduler(opts)
	if err != nil {
		tb.Fatal(err)
	}
	_, rep := cs.Run(hosts*tasksPerHost, nil)
	return rep
}

// stragglerRules makes host 0 run every configuration 10× slow (1s base
// + 9s injected latency) — the fault-injected straggler of the
// recovery benchmark.
func stragglerRules() []fault.Rule {
	return []fault.Rule{{Site: "sched/host/" + hostName(0), Kind: fault.Latency, Delay: 9, Prob: 1}}
}

// BenchmarkSweepScaling pins the scheduler's scaling curve: weak
// scaling at 64 configurations per host, from 1 to 1024 simulated
// hosts. ns/op is the real cost of computing the schedule; the
// configs/s metric is virtual sweep throughput, which must grow
// near-linearly with the fleet (TestSweepScalingNearLinear asserts the
// 20% envelope; `make bench-json` records the curve).
func BenchmarkSweepScaling(b *testing.B) {
	for _, hosts := range benchHostCounts {
		b.Run(fmt.Sprintf("hosts=%d", hosts), func(b *testing.B) {
			var rep *ClusterReport
			for i := 0; i < b.N; i++ {
				rep = scheduleFleet(b, hosts, nil, false)
			}
			if rep.Tasks != hosts*tasksPerHost {
				b.Fatalf("tasks = %d, want %d", rep.Tasks, hosts*tasksPerHost)
			}
			b.ReportMetric(rep.ConfigsPerSec(), "configs/s")
		})
	}
}

// BenchmarkStragglerRecovery measures the same 16-host sweep three
// ways: healthy, with a 10×-slow host and no stealing, and with
// stealing rescuing the backlog.
func BenchmarkStragglerRecovery(b *testing.B) {
	for _, tc := range []struct {
		name    string
		rules   []fault.Rule
		noSteal bool
	}{
		{"healthy", nil, false},
		{"straggler-nosteal", stragglerRules(), true},
		{"straggler-steal", stragglerRules(), false},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var rep *ClusterReport
			for i := 0; i < b.N; i++ {
				rep = scheduleFleet(b, 16, tc.rules, tc.noSteal)
			}
			b.ReportMetric(rep.ConfigsPerSec(), "configs/s")
			b.ReportMetric(rep.Makespan, "vsec-makespan")
		})
	}
}

// TestSweepScalingNearLinear asserts the acceptance envelope on the
// virtual schedule itself (deterministic, so a plain test can pin it):
// weak-scaling configs/sec from 16 to 1024 hosts stays within 20% of
// linear.
func TestSweepScalingNearLinear(t *testing.T) {
	cps := make(map[int]float64)
	for _, hosts := range []int{16, 1024} {
		rep := scheduleFleet(t, hosts, nil, false)
		if rep.Tasks != hosts*tasksPerHost || rep.Lost != 0 {
			t.Fatalf("hosts=%d: %d tasks %d lost", hosts, rep.Tasks, rep.Lost)
		}
		cps[hosts] = rep.ConfigsPerSec()
	}
	ideal := float64(1024) / float64(16)
	got := cps[1024] / cps[16]
	if got < 0.8*ideal {
		t.Fatalf("scaling 16→1024 hosts: %.1f× throughput, want >= %.1f× (80%% of linear %.0f×)",
			got, 0.8*ideal, ideal)
	}
}

// stragglerRecovery computes the fraction of straggler-lost throughput
// work stealing wins back on a 16-host fleet: 0 = as bad as no
// stealing, 1 = as good as a healthy fleet.
func stragglerRecovery(tb testing.TB) (recovery, healthy, noSteal, steal float64) {
	healthy = scheduleFleet(tb, 16, nil, false).Makespan
	noSteal = scheduleFleet(tb, 16, stragglerRules(), true).Makespan
	steal = scheduleFleet(tb, 16, stragglerRules(), false).Makespan
	if noSteal <= healthy {
		tb.Fatalf("straggler must hurt: healthy %.1f vs no-steal %.1f", healthy, noSteal)
	}
	recovery = (noSteal - steal) / (noSteal - healthy)
	return recovery, healthy, noSteal, steal
}

// TestStealRecoversStragglerThroughput is the second acceptance
// criterion: stealing recovers at least 80% of the virtual throughput
// a 10×-slow host costs a 16-host sweep.
func TestStealRecoversStragglerThroughput(t *testing.T) {
	recovery, healthy, noSteal, steal := stragglerRecovery(t)
	t.Logf("makespans: healthy %.1f, straggler+nosteal %.1f, straggler+steal %.1f (recovery %.1f%%)",
		healthy, noSteal, steal, 100*recovery)
	if recovery < 0.8 {
		t.Fatalf("stealing recovered %.1f%% of straggler-lost throughput, want >= 80%%", 100*recovery)
	}
}

// benchRecord is one BENCH_sched.json entry.
type benchRecord struct {
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	ConfigsPerSec float64 `json:"configs_per_sec,omitempty"`
	Makespan      float64 `json:"virtual_makespan_s,omitempty"`
	Recovery      float64 `json:"straggler_recovery,omitempty"`
}

// TestWriteBenchJSON records the scheduler's perf trajectory: when
// BENCH_JSON names an output file (`make bench-json`), it benchmarks
// the scaling curve and the straggler-recovery triple and writes
// benchmark name → {ns/op, allocs/op, configs/sec} JSON. BENCH_SMOKE=1
// (wired into `make verify`) shrinks the matrix to one quick iteration
// per point so regressions in the scheduling path fail the full loop
// without a long bench run.
func TestWriteBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_JSON")
	if out == "" {
		t.Skip("set BENCH_JSON=<path> to record scheduler benchmarks")
	}
	smoke := os.Getenv("BENCH_SMOKE") != ""
	hostCounts := benchHostCounts
	if smoke {
		hostCounts = []int{1, 16}
	}

	records := make(map[string]benchRecord)
	bench := func(name string, fleet int, rules []fault.Rule, noSteal bool) *ClusterReport {
		rep := scheduleFleet(t, fleet, rules, noSteal)
		var res testing.BenchmarkResult
		if smoke {
			// One hand-timed iteration: verify the scheduling path end
			// to end without testing.Benchmark's auto-scaling (the
			// output file is a throwaway).
			start := time.Now()
			scheduleFleet(t, fleet, rules, noSteal)
			res = testing.BenchmarkResult{N: 1, T: time.Since(start)}
		} else {
			res = testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					scheduleFleet(b, fleet, rules, noSteal)
				}
				b.ReportAllocs()
			})
		}
		records[name] = benchRecord{
			NsPerOp:       float64(res.NsPerOp()),
			AllocsPerOp:   res.AllocsPerOp(),
			ConfigsPerSec: rep.ConfigsPerSec(),
			Makespan:      rep.Makespan,
		}
		return rep
	}

	for _, hosts := range hostCounts {
		bench(fmt.Sprintf("BenchmarkSweepScaling/hosts=%d", hosts), hosts, nil, false)
	}
	bench("BenchmarkStragglerRecovery/healthy", 16, nil, false)
	bench("BenchmarkStragglerRecovery/straggler-nosteal", 16, stragglerRules(), true)
	bench("BenchmarkStragglerRecovery/straggler-steal", 16, stragglerRules(), false)

	recovery, _, _, _ := stragglerRecovery(t)
	rec := records["BenchmarkStragglerRecovery/straggler-steal"]
	rec.Recovery = recovery
	records["BenchmarkStragglerRecovery/straggler-steal"] = rec
	if recovery < 0.8 {
		t.Errorf("straggler recovery %.2f below the 0.8 acceptance bar", recovery)
	}

	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d benchmark records to %s", len(records), out)
}
