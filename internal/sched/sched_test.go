package sched

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

func TestJobs(t *testing.T) {
	if Jobs(4) != 4 {
		t.Fatal("explicit job count must pass through")
	}
	if Jobs(0) < 1 || Jobs(-3) < 1 {
		t.Fatal("non-positive job counts must normalize to >= 1")
	}
}

func TestEachOrderingAndErrors(t *testing.T) {
	p := NewPool(4)
	out := make([]int, 100)
	errs := p.Each(100, func(i int) error {
		out[i] = i * i
		if i%7 == 3 {
			return fmt.Errorf("boom %d", i)
		}
		return nil
	})
	for i := 0; i < 100; i++ {
		if out[i] != i*i {
			t.Fatalf("slot %d = %d, want %d", i, out[i], i*i)
		}
		wantErr := i%7 == 3
		if (errs[i] != nil) != wantErr {
			t.Fatalf("errs[%d] = %v", i, errs[i])
		}
	}
	if err := FirstError(errs); err == nil || err.Error() != "boom 3" {
		t.Fatalf("FirstError = %v, want boom 3", err)
	}
	if err := FirstError(make([]error, 5)); err != nil {
		t.Fatalf("FirstError over nils = %v", err)
	}
}

func TestEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak int64
	var mu sync.Mutex
	p := NewPool(workers)
	p.Each(64, func(i int) error {
		cur := atomic.AddInt64(&inFlight, 1)
		mu.Lock()
		if cur > peak {
			peak = cur
		}
		mu.Unlock()
		for j := 0; j < 1000; j++ {
			_ = j * j
		}
		atomic.AddInt64(&inFlight, -1)
		return nil
	})
	if peak > workers {
		t.Fatalf("observed %d concurrent workers, bound is %d", peak, workers)
	}
}

func TestEachZeroAndSerial(t *testing.T) {
	p := NewPool(1)
	if errs := p.Each(0, func(int) error { return nil }); len(errs) != 0 {
		t.Fatal("n=0 must return empty error slice")
	}
	var order []int
	p.Each(5, func(i int) error { order = append(order, i); return nil })
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("serial pool must preserve submission order, got %v", order)
	}
}

func TestMap(t *testing.T) {
	p := NewPool(8)
	vals, errs := Map(p, 10, func(i int) (string, error) {
		if i == 4 {
			return "", fmt.Errorf("no")
		}
		return fmt.Sprintf("v%d", i), nil
	})
	if vals[2] != "v2" || vals[9] != "v9" {
		t.Fatalf("vals = %v", vals)
	}
	if errs[4] == nil || FirstError(errs) == nil {
		t.Fatal("error at index 4 must surface")
	}
}

func TestMatrixDeterministicOrder(t *testing.T) {
	// Axis order in the input must not matter.
	a := Matrix([]Axis{
		{Name: "b", Values: []string{"1", "2"}},
		{Name: "a", Values: []string{"x", "y", "z"}},
	})
	b := Matrix([]Axis{
		{Name: "a", Values: []string{"x", "y", "z"}},
		{Name: "b", Values: []string{"1", "2"}},
	})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("matrix order depends on axis order:\n%v\n%v", a, b)
	}
	if len(a) != 6 {
		t.Fatalf("cross product size = %d, want 6", len(a))
	}
	// a sorts before b, so a varies slowest, b fastest.
	want := []map[string]string{
		{"a": "x", "b": "1"}, {"a": "x", "b": "2"},
		{"a": "y", "b": "1"}, {"a": "y", "b": "2"},
		{"a": "z", "b": "1"}, {"a": "z", "b": "2"},
	}
	if !reflect.DeepEqual(a, want) {
		t.Fatalf("matrix = %v", a)
	}
}

func TestMatrixEdgeCases(t *testing.T) {
	if got := Matrix(nil); len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("empty axes must yield one empty config, got %v", got)
	}
	if got := Matrix([]Axis{{Name: "a"}}); got != nil {
		t.Fatalf("axis without values must yield no configs, got %v", got)
	}
	got := MatrixFromMap(map[string][]string{"n": {"1", "2"}})
	if len(got) != 2 || got[0]["n"] != "1" || got[1]["n"] != "2" {
		t.Fatalf("MatrixFromMap = %v", got)
	}
}

func TestChunks(t *testing.T) {
	spans := Chunks(10, 3)
	if len(spans) != 3 {
		t.Fatalf("spans = %v", spans)
	}
	covered := 0
	prev := 0
	for _, s := range spans {
		if s.Lo != prev || s.Hi <= s.Lo {
			t.Fatalf("non-contiguous spans: %v", spans)
		}
		covered += s.Hi - s.Lo
		prev = s.Hi
	}
	if covered != 10 || prev != 10 {
		t.Fatalf("spans do not cover range: %v", spans)
	}
	if got := Chunks(2, 8); len(got) != 2 {
		t.Fatalf("more parts than items must clamp: %v", got)
	}
	if Chunks(0, 3) != nil || Chunks(5, 0) != nil {
		t.Fatal("degenerate chunk inputs must return nil")
	}
}
