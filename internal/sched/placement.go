package sched

import (
	"fmt"
	"sort"

	"popper/internal/cluster"
)

// PlacementPolicy selects how the cluster scheduler assigns
// configurations to hosts before execution starts.
type PlacementPolicy uint8

const (
	// PlaceRoundRobin spreads configurations evenly across the fleet in
	// index order — the placement-oblivious baseline.
	PlaceRoundRobin PlacementPolicy = iota
	// PlaceLocality sends each configuration to the host whose rank
	// holds its dataset blocks (ClusterOptions.Locality, typically from
	// the GassyFS striped allocator via gassyfs.SweepLocality).
	// Configurations without a hint, or hinted at a rank outside the
	// fleet, fall back to hosts in deterministic network-cost order.
	PlaceLocality
)

// String names the policy as the -placement flag spells it.
func (p PlacementPolicy) String() string {
	switch p {
	case PlaceRoundRobin:
		return "roundrobin"
	case PlaceLocality:
		return "locality"
	}
	return fmt.Sprintf("placement(%d)", p)
}

// ParsePlacement parses a -placement flag value.
func ParsePlacement(s string) (PlacementPolicy, error) {
	switch s {
	case "roundrobin", "rr", "":
		return PlaceRoundRobin, nil
	case "locality", "local":
		return PlaceLocality, nil
	}
	return 0, fmt.Errorf("sched: unknown placement policy %q (roundrobin, locality)", s)
}

// placementRefBytes is the reference transfer size the cost order
// weighs bandwidth against latency with — one dataset block.
const placementRefBytes = 64 << 10

// hostCost is the alpha-beta cost of moving a reference block between
// two machine profiles — the same shape as cluster.Network.RDMACost,
// computed from profiles alone so placement needs no live nodes.
func hostCost(a, b *cluster.MachineProfile) float64 {
	if a == b {
		return placementRefBytes / a.MemBWBps
	}
	rtt := 2 * (a.NICLatS + b.NICLatS)
	bw := b.NICBWBps
	if a.NICBWBps < bw {
		bw = a.NICBWBps
	}
	return rtt + placementRefBytes/bw
}

// costOrder returns every host rank sorted by rising transfer cost from
// rank `from` (ties broken by rank index, so the order is deterministic
// for uniform fleets). order[0] is `from` itself: loopback is a memory
// copy, always the cheapest.
func costOrder(hosts []HostSpec, from int) []int {
	order := make([]int, len(hosts))
	for i := range order {
		order[i] = i
	}
	src := hosts[from].Profile
	sort.SliceStable(order, func(i, j int) bool {
		a, b := order[i], order[j]
		// `from` sorts first unconditionally: uniform fleets share one
		// profile value, which would otherwise tie loopback with every
		// remote host.
		if a == from || b == from {
			return a == from
		}
		ci, cj := hostCost(src, hosts[a].Profile), hostCost(src, hosts[b].Profile)
		if ci != cj {
			return ci < cj
		}
		return a < b
	})
	return order
}

// cheapestHosts returns the fleet sorted by each host's own reference
// transfer cost (cheapest NIC first, ties by index) — the deterministic
// fallback rotation for configurations with no locality hint.
func cheapestHosts(hosts []HostSpec) []int {
	order := make([]int, len(hosts))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, b := hosts[order[i]].Profile, hosts[order[j]].Profile
		ca := a.NICLatS + placementRefBytes/a.NICBWBps
		cb := b.NICLatS + placementRefBytes/b.NICBWBps
		if ca != cb {
			return ca < cb
		}
		return order[i] < order[j]
	})
	return order
}

// place distributes n tasks into the per-host deques according to the
// policy. Placement is a pure function of (policy, locality, fleet), so
// the initial schedule is identical across runs, worker counts and
// machine load — stealing and speculation then adapt it without
// perturbing journaled artifacts (results are keyed by task index, never
// by host).
func place(n int, hosts []*schedHost, specs []HostSpec, policy PlacementPolicy, locality []int) {
	h := len(hosts)
	switch policy {
	case PlaceLocality:
		fallback := cheapestHosts(specs)
		fi := 0
		for i := 0; i < n; i++ {
			rank := -1
			if i < len(locality) {
				rank = locality[i]
			}
			if rank < 0 || rank >= h {
				rank = fallback[fi%h]
				fi++
			}
			hosts[rank].dq.push(i)
			hosts[rank].placed++
		}
	default: // PlaceRoundRobin
		for i := 0; i < n; i++ {
			hosts[i%h].dq.push(i)
			hosts[i%h].placed++
		}
	}
}
