package sched

// deque is the per-host work queue of the cluster scheduler: a growable
// ring buffer of task indices. The owner host drains it from the front,
// so a host executes its placed configurations in index order; thieves
// take from the back — the work the owner would reach last — which keeps
// a steal from reordering the victim's imminent work.
//
// The scheduler's event loop is single-threaded (see cluster.go), so
// deques need no synchronization; what they do need is to stay off the
// steal hot path's allocation profile. The contract, pinned by
// TestStealHotPathAllocationBounds: pop and stealInto never allocate —
// only push (and a stealInto whose thief ring must grow) may — so a
// drained host probing victims costs no garbage even when every probe
// finds an empty queue.
type deque struct {
	buf  []int32 // ring storage; len(buf) is always a power of two
	head int     // index of the front element
	size int     // number of queued tasks
}

// len reports the number of queued tasks.
func (d *deque) len() int { return d.size }

// grow resizes the ring to hold at least need tasks.
func (d *deque) grow(need int) {
	capacity := len(d.buf) * 2
	if capacity < 8 {
		capacity = 8
	}
	for capacity < need {
		capacity *= 2
	}
	nb := make([]int32, capacity)
	mask := len(d.buf) - 1
	for i := 0; i < d.size; i++ {
		nb[i] = d.buf[(d.head+i)&mask]
	}
	d.buf, d.head = nb, 0
}

// push appends a task to the back of the queue.
func (d *deque) push(task int) {
	if d.size == len(d.buf) {
		d.grow(d.size + 1)
	}
	d.buf[(d.head+d.size)&(len(d.buf)-1)] = int32(task)
	d.size++
}

// pop removes and returns the front task. Never allocates.
func (d *deque) pop() (int, bool) {
	if d.size == 0 {
		return -1, false
	}
	t := d.buf[d.head]
	d.head = (d.head + 1) & (len(d.buf) - 1)
	d.size--
	return int(t), true
}

// stealInto moves the back half (rounded up) of the queue into thief,
// preserving the stolen tasks' relative order, and returns how many
// moved. Stealing half rather than one task is what lets a single steal
// rebalance a straggler's whole backlog in O(log n) steals. A steal from
// an empty queue moves nothing and never allocates.
func (d *deque) stealInto(thief *deque) int {
	k := (d.size + 1) / 2
	if k == 0 {
		return 0
	}
	if thief.size+k > len(thief.buf) {
		thief.grow(thief.size + k)
	}
	srcMask, dstMask := len(d.buf)-1, len(thief.buf)-1
	start := d.size - k
	for i := 0; i < k; i++ {
		thief.buf[(thief.head+thief.size)&dstMask] = d.buf[(d.head+start+i)&srcMask]
		thief.size++
	}
	d.size -= k
	return k
}
