package sched

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"popper/internal/fault"
)

func TestEachOptsFailFastSerial(t *testing.T) {
	var ran atomic.Int32
	boom := errors.New("boom")
	errs := NewPool(1).EachOpts(10, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	}, Options{FailFast: true})
	if got := ran.Load(); got != 4 {
		t.Fatalf("serial fail-fast ran %d tasks, want 4", got)
	}
	if errs[3] != boom {
		t.Fatalf("errs[3] = %v", errs[3])
	}
	for i := 4; i < 10; i++ {
		if errs[i] != ErrSkipped {
			t.Fatalf("errs[%d] = %v, want ErrSkipped", i, errs[i])
		}
	}
	if FirstError(errs) != boom {
		t.Fatalf("FirstError must report the failure, not the skips: %v", FirstError(errs))
	}
}

func TestEachOptsFailFastParallel(t *testing.T) {
	var ran atomic.Int32
	errs := NewPool(2).EachOpts(200, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("early failure")
		}
		return nil
	}, Options{FailFast: true})
	skipped := 0
	for _, err := range errs {
		if err == ErrSkipped {
			skipped++
		}
	}
	// Which tasks were in flight when the failure landed is
	// scheduling-dependent, but dispatch must stop: with 200 tasks and
	// 2 workers, at least one task is skipped and skipped + ran covers
	// every slot.
	if skipped == 0 {
		t.Fatal("parallel fail-fast dispatched every task")
	}
	if int(ran.Load())+skipped != 200 {
		t.Fatalf("ran %d + skipped %d != 200", ran.Load(), skipped)
	}
}

func TestEachDefaultRunsEverything(t *testing.T) {
	// The historical contract is unchanged by default: every index runs
	// even when earlier ones fail.
	var ran atomic.Int32
	errs := NewPool(4).Each(50, func(i int) error {
		ran.Add(1)
		if i%7 == 0 {
			return fmt.Errorf("task %d", i)
		}
		return nil
	})
	if got := ran.Load(); got != 50 {
		t.Fatalf("default Each ran %d/50 tasks", got)
	}
	for i, err := range errs {
		if err == ErrSkipped {
			t.Fatalf("default Each skipped task %d", i)
		}
	}
}

func TestEachOptsCancel(t *testing.T) {
	var canceled atomic.Bool
	var ran atomic.Int32
	errs := NewPool(1).EachOpts(10, func(i int) error {
		ran.Add(1)
		if i == 1 {
			canceled.Store(true)
		}
		return nil
	}, Options{Cancel: canceled.Load})
	if got := ran.Load(); got != 2 {
		t.Fatalf("ran %d tasks after cancellation, want 2", got)
	}
	for i := 2; i < 10; i++ {
		if errs[i] != ErrSkipped {
			t.Fatalf("errs[%d] = %v, want ErrSkipped", i, errs[i])
		}
	}
}

func TestMapOptsSkippedZeroValue(t *testing.T) {
	vals, errs := MapOpts(NewPool(1), 5, func(i int) (int, error) {
		if i == 1 {
			return 0, errors.New("stop")
		}
		return i * 10, nil
	}, Options{FailFast: true})
	if vals[0] != 0 || vals[1] != 0 {
		t.Fatalf("vals = %v", vals)
	}
	for i := 2; i < 5; i++ {
		if vals[i] != 0 || errs[i] != ErrSkipped {
			t.Fatalf("slot %d = (%d, %v), want zero/skipped", i, vals[i], errs[i])
		}
	}
}

func TestEachTimedDeadline(t *testing.T) {
	// Tasks advance their own virtual clock; the deadline is enforced
	// on virtual time only, so outcomes are identical at any pool size.
	for _, workers := range []int{1, 4} {
		errs := NewPool(workers).EachTimed(6, func(i int, clk *fault.Clock) error {
			clk.Advance(float64(i)) // task i takes i virtual seconds
			if i == 5 {
				return errors.New("task error wins over deadline tagging")
			}
			return nil
		}, Options{TaskDeadline: 3})
		for i := 0; i <= 3; i++ {
			if errs[i] != nil {
				t.Fatalf("workers=%d: task %d within deadline failed: %v", workers, i, errs[i])
			}
		}
		var de *DeadlineError
		if !errors.As(errs[4], &de) || de.Task != 4 || de.Elapsed != 4 || de.Deadline != 3 {
			t.Fatalf("workers=%d: errs[4] = %v", workers, errs[4])
		}
		if errs[5] == nil || errors.As(errs[5], &de) && errs[5].Error() == de.Error() {
			t.Fatalf("workers=%d: task error must be preserved: %v", workers, errs[5])
		}
	}
}

func TestEachTimedNoDeadline(t *testing.T) {
	errs := NewPool(2).EachTimed(3, func(i int, clk *fault.Clock) error {
		clk.Advance(1e6)
		return nil
	}, Options{})
	if FirstError(errs) != nil {
		t.Fatalf("no deadline must mean no deadline errors: %v", FirstError(errs))
	}
}

// TestEachNoFaultAllocationBounds pins the no-fault hot path: dispatch
// through EachOpts must not allocate per task beyond the caller-visible
// error slice, so threading resilience options through every layer
// costs nothing when no injector or policy is configured.
func TestEachNoFaultAllocationBounds(t *testing.T) {
	pool := NewPool(1)
	fn := func(i int) error { return nil }
	const n = 100
	allocs := testing.AllocsPerRun(20, func() {
		pool.EachOpts(n, fn, Options{})
	})
	// One allocation for the errs slice; nothing per task.
	if allocs > 1 {
		t.Fatalf("EachOpts allocates %.1f/call for %d tasks, want <= 1 (zero per task)", allocs, n)
	}
}
