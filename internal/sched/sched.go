// Package sched implements the concurrent fan-out engine behind the
// Popper toolchain's parameter sweeps: a bounded worker pool with
// deterministic result ordering, the parameter-matrix expansion that
// turns sweep axes into concrete configurations, and the chunking
// helper row-parallel evaluators use.
//
// The pool is deliberately tiny and dependency-free so every layer of
// the stack (core sweeps, Aver validation, orchestration forks) can
// share it without import cycles. Determinism is the design constraint
// the paper's re-execution story imposes: results are always delivered
// in submission (index) order, never completion order, so a parallel
// sweep journals identically to a serial one.
package sched

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"popper/internal/fault"
)

// Jobs normalizes a requested worker count: values <= 0 mean "one
// worker per available CPU" (GOMAXPROCS).
func Jobs(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Pool is a bounded worker pool. The zero value is not usable; create
// one with NewPool. A Pool is stateless between calls and safe for
// concurrent use.
type Pool struct {
	workers int
}

// NewPool creates a pool with the given concurrency bound (<= 0 means
// GOMAXPROCS).
func NewPool(workers int) *Pool { return &Pool{workers: Jobs(workers)} }

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// ErrSkipped marks a task the pool never dispatched because it stopped
// early (FailFast after a failure, or an external cancellation). A
// skipped slot is distinguishable from success so collect-and-report
// callers can tell "ran and passed" from "never ran".
var ErrSkipped = errors.New("sched: task skipped (pool stopped early)")

// DeadlineError reports a task that exceeded its virtual deadline in
// EachTimed. It is retryable in the fault-model sense: a retry may hit
// fewer injected latency faults.
type DeadlineError struct {
	Task              int
	Elapsed, Deadline float64
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("sched: task %d exceeded deadline: %.3fs elapsed > %.3fs allowed", e.Task, e.Elapsed, e.Deadline)
}

// Options tunes Each/Map dispatch. The zero value preserves the
// historical semantics: every index runs even when earlier ones fail.
type Options struct {
	// FailFast stops dispatching remaining tasks after the first
	// non-nil error. In-flight tasks finish; undispatched slots are
	// marked ErrSkipped. Which tasks were already in flight when the
	// failure landed depends on scheduling, so FailFast trades the
	// deterministic all-indexes-ran contract for earlier termination —
	// callers that journal results should keep the default.
	FailFast bool
	// Cancel, when non-nil, is polled before each dispatch; once it
	// returns true no further tasks start and their slots are marked
	// ErrSkipped. The pool never blocks on Cancel — it is a plain
	// function so layers can wire it to a fault injector, a deadline,
	// or an external stop signal.
	Cancel func() bool
	// TaskDeadline bounds each task's virtual duration in EachTimed
	// (seconds on the task's own fault.Clock); 0 means unbounded. A
	// task whose clock advances past the deadline gets a *DeadlineError
	// slot even if its function returned nil.
	TaskDeadline float64
}

// Each runs fn(0) .. fn(n-1) across the pool and returns one error slot
// per index (nil on success). Every index runs even when earlier ones
// fail — sweep semantics are collect-and-report, not fail-fast (see
// Options.FailFast for the opt-in alternative). Slot i of any
// caller-owned result slice is exclusively owned by call i, so workers
// need no synchronization to deposit results.
func (p *Pool) Each(n int, fn func(i int) error) []error {
	return p.EachOpts(n, fn, Options{})
}

// EachOpts is Each with dispatch options (fail-fast, cancellation).
func (p *Pool) EachOpts(n int, fn func(i int) error, opts Options) []error {
	errs := make([]error, n)
	if n == 0 {
		return errs
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		stopped := false
		for i := 0; i < n; i++ {
			if stopped || (opts.Cancel != nil && opts.Cancel()) {
				errs[i] = ErrSkipped
				continue
			}
			errs[i] = fn(i)
			if errs[i] != nil && opts.FailFast {
				stopped = true
			}
		}
		return errs
	}
	var (
		wg      sync.WaitGroup
		next    = make(chan int)
		stopped atomic.Bool
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = fn(i)
				if errs[i] != nil && opts.FailFast {
					stopped.Store(true)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		if stopped.Load() || (opts.Cancel != nil && opts.Cancel()) {
			errs[i] = ErrSkipped
			continue
		}
		next <- i
	}
	close(next)
	wg.Wait()
	return errs
}

// EachTimed is EachOpts with per-task virtual time: every task gets its
// own fault.Clock (starting at zero), and when Options.TaskDeadline is
// set, a task whose clock ran past the deadline has its slot replaced
// by a *DeadlineError. Latency faults and retry backoff advance the
// clock, so deadlines are deterministic functions of the fault schedule
// — never of wall time or goroutine interleaving.
func (p *Pool) EachTimed(n int, fn func(i int, clk *fault.Clock) error, opts Options) []error {
	return p.EachOpts(n, func(i int) error {
		clk := fault.NewClock()
		err := fn(i, clk)
		if opts.TaskDeadline > 0 {
			if elapsed := clk.Now(); elapsed > opts.TaskDeadline {
				if err == nil {
					return &DeadlineError{Task: i, Elapsed: elapsed, Deadline: opts.TaskDeadline}
				}
				return fmt.Errorf("%w (and task %d ran %.3fs past its %.3fs deadline)", err, i, elapsed, opts.TaskDeadline)
			}
		}
		return err
	}, opts)
}

// Map fans fn out over the pool and returns the results in index
// order, plus the per-index error slots (see Each).
func Map[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, []error) {
	return MapOpts(p, n, fn, Options{})
}

// MapOpts is Map with dispatch options; skipped indexes keep the zero
// value of T and an ErrSkipped slot.
func MapOpts[T any](p *Pool, n int, fn func(i int) (T, error), opts Options) ([]T, []error) {
	out := make([]T, n)
	errs := p.EachOpts(n, func(i int) error {
		v, err := fn(i)
		out[i] = v
		return err
	}, opts)
	return out, errs
}

// FirstError returns the lowest-index non-nil error, or nil. Using the
// lowest index (not completion order) keeps parallel error reporting
// identical to serial execution.
func FirstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Axis is one swept parameter: a name and its candidate values.
type Axis struct {
	Name   string
	Values []string
}

// Matrix expands axes into their cross product of parameter overrides.
// Axes are ordered by name and the last axis varies fastest, so the
// configuration order is deterministic regardless of input order. An
// empty axis list yields a single empty configuration; an axis with no
// values yields no configurations.
func Matrix(axes []Axis) []map[string]string {
	sorted := append([]Axis(nil), axes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	configs := []map[string]string{{}}
	for _, ax := range sorted {
		if len(ax.Values) == 0 {
			return nil
		}
		grown := make([]map[string]string, 0, len(configs)*len(ax.Values))
		for _, base := range configs {
			for _, v := range ax.Values {
				cfg := make(map[string]string, len(base)+1)
				for k, bv := range base {
					cfg[k] = bv
				}
				cfg[ax.Name] = v
				grown = append(grown, cfg)
			}
		}
		configs = grown
	}
	return configs
}

// MatrixFromMap is Matrix over a name -> values mapping.
func MatrixFromMap(axes map[string][]string) []map[string]string {
	list := make([]Axis, 0, len(axes))
	for name, values := range axes {
		list = append(list, Axis{Name: name, Values: values})
	}
	return Matrix(list)
}

// Span is a half-open index range [Lo, Hi).
type Span struct {
	Lo, Hi int
}

// Chunks splits n items into at most parts contiguous spans of
// near-equal size, in index order. Useful for chunked row-parallel
// scans that must report the same first failure a serial scan would.
func Chunks(n, parts int) []Span {
	if n <= 0 || parts <= 0 {
		return nil
	}
	if parts > n {
		parts = n
	}
	out := make([]Span, 0, parts)
	base, rem := n/parts, n%parts
	lo := 0
	for i := 0; i < parts; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, Span{Lo: lo, Hi: lo + size})
		lo += size
	}
	return out
}
