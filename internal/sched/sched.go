// Package sched implements the concurrent fan-out engine behind the
// Popper toolchain's parameter sweeps: a bounded worker pool with
// deterministic result ordering, the parameter-matrix expansion that
// turns sweep axes into concrete configurations, and the chunking
// helper row-parallel evaluators use.
//
// The pool is deliberately tiny and dependency-free so every layer of
// the stack (core sweeps, Aver validation, orchestration forks) can
// share it without import cycles. Determinism is the design constraint
// the paper's re-execution story imposes: results are always delivered
// in submission (index) order, never completion order, so a parallel
// sweep journals identically to a serial one.
package sched

import (
	"runtime"
	"sort"
	"sync"
)

// Jobs normalizes a requested worker count: values <= 0 mean "one
// worker per available CPU" (GOMAXPROCS).
func Jobs(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Pool is a bounded worker pool. The zero value is not usable; create
// one with NewPool. A Pool is stateless between calls and safe for
// concurrent use.
type Pool struct {
	workers int
}

// NewPool creates a pool with the given concurrency bound (<= 0 means
// GOMAXPROCS).
func NewPool(workers int) *Pool { return &Pool{workers: Jobs(workers)} }

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Each runs fn(0) .. fn(n-1) across the pool and returns one error slot
// per index (nil on success). Every index runs even when earlier ones
// fail — sweep semantics are collect-and-report, not fail-fast. Slot i
// of any caller-owned result slice is exclusively owned by call i, so
// workers need no synchronization to deposit results.
func (p *Pool) Each(n int, fn func(i int) error) []error {
	errs := make([]error, n)
	if n == 0 {
		return errs
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
		return errs
	}
	var (
		wg   sync.WaitGroup
		next = make(chan int)
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return errs
}

// Map fans fn out over the pool and returns the results in index
// order, plus the per-index error slots (see Each).
func Map[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, []error) {
	out := make([]T, n)
	errs := p.Each(n, func(i int) error {
		v, err := fn(i)
		out[i] = v
		return err
	})
	return out, errs
}

// FirstError returns the lowest-index non-nil error, or nil. Using the
// lowest index (not completion order) keeps parallel error reporting
// identical to serial execution.
func FirstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Axis is one swept parameter: a name and its candidate values.
type Axis struct {
	Name   string
	Values []string
}

// Matrix expands axes into their cross product of parameter overrides.
// Axes are ordered by name and the last axis varies fastest, so the
// configuration order is deterministic regardless of input order. An
// empty axis list yields a single empty configuration; an axis with no
// values yields no configurations.
func Matrix(axes []Axis) []map[string]string {
	sorted := append([]Axis(nil), axes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	configs := []map[string]string{{}}
	for _, ax := range sorted {
		if len(ax.Values) == 0 {
			return nil
		}
		grown := make([]map[string]string, 0, len(configs)*len(ax.Values))
		for _, base := range configs {
			for _, v := range ax.Values {
				cfg := make(map[string]string, len(base)+1)
				for k, bv := range base {
					cfg[k] = bv
				}
				cfg[ax.Name] = v
				grown = append(grown, cfg)
			}
		}
		configs = grown
	}
	return configs
}

// MatrixFromMap is Matrix over a name -> values mapping.
func MatrixFromMap(axes map[string][]string) []map[string]string {
	list := make([]Axis, 0, len(axes))
	for name, values := range axes {
		list = append(list, Axis{Name: name, Values: values})
	}
	return Matrix(list)
}

// Span is a half-open index range [Lo, Hi).
type Span struct {
	Lo, Hi int
}

// Chunks splits n items into at most parts contiguous spans of
// near-equal size, in index order. Useful for chunked row-parallel
// scans that must report the same first failure a serial scan would.
func Chunks(n, parts int) []Span {
	if n <= 0 || parts <= 0 {
		return nil
	}
	if parts > n {
		parts = n
	}
	out := make([]Span, 0, parts)
	base, rem := n/parts, n%parts
	lo := 0
	for i := 0; i < parts; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, Span{Lo: lo, Hi: lo + size})
		lo += size
	}
	return out
}
