package workload

import (
	"fmt"
	"math"
	"testing"

	"popper/internal/cluster"
	"popper/internal/gasnet"
	"popper/internal/gassyfs"
	"popper/internal/mpi"
)

// smallSpec is a fast version of the Git compile tree for tests.
func smallSpec() CompileSpec {
	s := GitCompileSpec()
	s.Sources = 48
	s.AvgSrcSize = 4 << 10
	s.Headers = 6
	s.HdrSize = 2 << 10
	return s
}

func buildFS(t *testing.T, nodes int, seed int64) *gassyfs.FS {
	t.Helper()
	c := cluster.New(seed)
	ns, err := c.Provision("cloudlab-c220g1", nodes)
	if err != nil {
		t.Fatal(err)
	}
	w, err := gasnet.New(ns, cluster.NewNetwork(0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AttachAll(64 << 20); err != nil {
		t.Fatal(err)
	}
	fs, err := gassyfs.Mount(w, gassyfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestGenerateTree(t *testing.T) {
	fs := buildFS(t, 2, 1)
	cl, _ := fs.Client(0)
	spec := smallSpec()
	if err := GenerateTree(cl, spec); err != nil {
		t.Fatal(err)
	}
	entries, err := cl.Readdir("/src/c")
	if err != nil || len(entries) != spec.Sources {
		t.Fatalf("sources = %d, %v", len(entries), err)
	}
	hdrs, _ := cl.Readdir("/src/include")
	if len(hdrs) != spec.Headers {
		t.Fatalf("headers = %d", len(hdrs))
	}
	st, err := cl.Stat("/src/c/file0000.c")
	if err != nil || st.Size < int64(spec.AvgSrcSize/2) {
		t.Fatalf("source size = %d, %v", st.Size, err)
	}
}

func TestGenerateTreeDeterministic(t *testing.T) {
	spec := smallSpec()
	read := func(seed int64) []byte {
		fs := buildFS(t, 1, seed)
		cl, _ := fs.Client(0)
		if err := GenerateTree(cl, spec); err != nil {
			t.Fatal(err)
		}
		b, _ := cl.ReadFile("/src/c/file0007.c")
		return b
	}
	a, b := read(5), read(9) // different cluster seeds, same tree seed
	if string(a) != string(b) {
		t.Fatal("tree generation must be deterministic in spec.Seed")
	}
}

func TestCompileSpecValidation(t *testing.T) {
	fs := buildFS(t, 1, 2)
	cl, _ := fs.Client(0)
	bad := []CompileSpec{
		{},
		{Sources: 1, AvgSrcSize: 1, CompileOpsPerByte: 1, ObjRatio: 1, JobsPerNode: 0},
		{Sources: 1, AvgSrcSize: 1, CompileOpsPerByte: 0, ObjRatio: 1, JobsPerNode: 1},
		{Sources: 1, AvgSrcSize: 1, CompileOpsPerByte: 1, ObjRatio: 0, JobsPerNode: 1},
		{Sources: -1, AvgSrcSize: 1, CompileOpsPerByte: 1, ObjRatio: 1, JobsPerNode: 1},
	}
	for i, s := range bad {
		if err := GenerateTree(cl, s); err == nil {
			t.Errorf("case %d: GenerateTree should reject", i)
		}
		if _, err := CompileOnCluster(fs, s); err == nil {
			t.Errorf("case %d: CompileOnCluster should reject", i)
		}
	}
}

func TestCompileProducesArtifacts(t *testing.T) {
	fs := buildFS(t, 2, 3)
	cl, _ := fs.Client(0)
	spec := smallSpec()
	if err := GenerateTree(cl, spec); err != nil {
		t.Fatal(err)
	}
	res, err := CompileOnCluster(fs, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 || res.CompileTime <= 0 || res.LinkTime <= 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.Nodes != 2 || res.ObjectBytes <= 0 {
		t.Fatalf("result = %+v", res)
	}
	objs, _ := cl.Readdir("/src/obj")
	if len(objs) != spec.Sources {
		t.Fatalf("objects = %d", len(objs))
	}
	if _, err := cl.Stat("/src/bin/git"); err != nil {
		t.Fatal("binary missing after link")
	}
}

func TestCompileScalesSublinearly(t *testing.T) {
	// The headline property of Figure gassyfs-git: more nodes reduce
	// runtime, but below the ideal linear speedup.
	spec := smallSpec()
	elapsed := map[int]float64{}
	for _, n := range []int{1, 2, 4, 8} {
		fs := buildFS(t, n, 42)
		cl, _ := fs.Client(0)
		if err := GenerateTree(cl, spec); err != nil {
			t.Fatal(err)
		}
		res, err := CompileOnCluster(fs, spec)
		if err != nil {
			t.Fatal(err)
		}
		elapsed[n] = res.Elapsed
	}
	for _, pair := range [][2]int{{1, 2}, {2, 4}, {4, 8}} {
		a, b := elapsed[pair[0]], elapsed[pair[1]]
		if b >= a {
			t.Fatalf("time must fall with nodes: t(%d)=%v t(%d)=%v", pair[0], a, pair[1], b)
		}
	}
	// sublinear: speedup(8) < 8
	if sp := elapsed[1] / elapsed[8]; sp >= 8 {
		t.Fatalf("speedup(8) = %.2f, must be sublinear", sp)
	}
	// but still meaningful parallelism: speedup(8) > 1.5
	if sp := elapsed[1] / elapsed[8]; sp < 1.5 {
		t.Fatalf("speedup(8) = %.2f, too little parallelism to be credible", sp)
	}
}

func TestGrid3(t *testing.T) {
	cases := map[int][3]int{
		1:  {1, 1, 1},
		8:  {2, 2, 2},
		27: {3, 3, 3},
		12: {2, 2, 3},
		7:  {1, 1, 7},
	}
	for n, want := range cases {
		got := grid3(n)
		if got != want {
			t.Errorf("grid3(%d) = %v, want %v", n, got, want)
		}
		if got[0]*got[1]*got[2] != n {
			t.Errorf("grid3(%d) product mismatch", n)
		}
	}
}

func TestLuleshRuns(t *testing.T) {
	c := cluster.New(4)
	nodes, _ := c.Provision("probe-opteron", 8)
	cm, _ := mpi.NewComm(nodes, cluster.NewNetwork(0))
	spec := DefaultLuleshSpec()
	spec.Iterations = 5
	spec.ProblemSize = 10
	res, err := RunLulesh(cm, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 || res.Ranks != 8 || res.Grid != [3]int{2, 2, 2} {
		t.Fatalf("result = %+v", res)
	}
	if res.MPITime <= 0 || res.MPIFraction <= 0 || res.MPIFraction >= 1 {
		t.Fatalf("mpi accounting = %+v", res)
	}
	// profiler captured the traffic
	if cm.Profiler().TotalMPITime() <= 0 {
		t.Fatal("profiler empty")
	}
}

func TestLuleshValidation(t *testing.T) {
	c := cluster.New(5)
	nodes, _ := c.Provision("probe-opteron", 1)
	cm, _ := mpi.NewComm(nodes, cluster.NewNetwork(0))
	for _, s := range []LuleshSpec{
		{},
		{Iterations: 1, ProblemSize: 0, OpsPerElement: 1, FieldsPerElement: 1},
		{Iterations: 1, ProblemSize: 1, OpsPerElement: 0, FieldsPerElement: 1},
	} {
		if _, err := RunLulesh(cm, s); err == nil {
			t.Errorf("spec %+v should be rejected", s)
		}
	}
}

func TestLuleshNoisyNeighbourVariability(t *testing.T) {
	// The paper's MPI experiment: run-to-run variability is much larger
	// when neighbours share the machines.
	spec := DefaultLuleshSpec()
	spec.Iterations = 5
	spec.ProblemSize = 10

	run := func(seed int64, noisy bool) float64 {
		c := cluster.New(seed)
		nodes, _ := c.Provision("ec2-m4", 8)
		if noisy {
			// background load varies run to run
			for i, n := range nodes {
				load := 0.1 + 0.6*float64((int(seed)+i*3)%7)/7.0
				n.SetBackgroundLoad(load)
			}
		}
		cm, _ := mpi.NewComm(nodes, cluster.NewNetwork(0))
		res, err := RunLulesh(cm, spec)
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	var quiet, noisy []float64
	for s := int64(0); s < 10; s++ {
		quiet = append(quiet, run(s, false))
		noisy = append(noisy, run(s, true))
	}
	cvQ := coeffVar(quiet)
	cvN := coeffVar(noisy)
	if cvN < cvQ*3 {
		t.Fatalf("noisy CV %.4f should be >= 3x quiet CV %.4f", cvN, cvQ)
	}
}

func coeffVar(xs []float64) float64 {
	m, ss := 0.0, 0.0
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	for _, x := range xs {
		ss += (x - m) * (x - m)
	}
	return math.Sqrt(ss/float64(len(xs)-1)) / m
}

func TestFSBench(t *testing.T) {
	fs := buildFS(t, 2, 6)
	cl, _ := fs.Client(0)
	res, err := RunFSBench(cl, "/bench", FSBenchSpec{
		FileSize: 8 << 20, IOSize: 64 << 10, Ops: 50, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteMBps <= 0 || res.ReadMBps <= 0 {
		t.Fatalf("result = %+v", res)
	}
	// sequential should beat random for this remote-heavy config
	rnd, err := RunFSBench(cl, "/bench2", FSBenchSpec{
		FileSize: 8 << 20, IOSize: 64 << 10, Ops: 50, Seed: 1, RandomIO: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rnd.ReadMBps <= 0 {
		t.Fatalf("random = %+v", rnd)
	}
	// write-only skips read phase
	wo, err := RunFSBench(cl, "/bench3", FSBenchSpec{
		FileSize: 1 << 20, IOSize: 4 << 10, Ops: 10, Seed: 2, WriteOnly: true,
	})
	if err != nil || wo.ReadSeconds != 0 {
		t.Fatalf("write-only = %+v, %v", wo, err)
	}
}

func TestFSBenchValidation(t *testing.T) {
	fs := buildFS(t, 1, 7)
	cl, _ := fs.Client(0)
	for i, s := range []FSBenchSpec{
		{},
		{FileSize: 10, IOSize: 100, Ops: 1},
		{FileSize: 100, IOSize: 0, Ops: 1},
		{FileSize: 100, IOSize: 10, Ops: 0},
	} {
		if _, err := RunFSBench(cl, fmt.Sprintf("/b%d", i), s); err == nil {
			t.Errorf("spec %d should be rejected", i)
		}
	}
}

func TestLuleshOverlapFasterThanBlocking(t *testing.T) {
	run := func(overlap bool) float64 {
		c := cluster.New(9)
		nodes, _ := c.Provision("probe-opteron", 8)
		cm, _ := mpi.NewComm(nodes, cluster.NewNetwork(0))
		spec := DefaultLuleshSpec()
		spec.Iterations = 4
		spec.ProblemSize = 12
		spec.Overlap = overlap
		res, err := RunLulesh(cm, spec)
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	blocking, overlapped := run(false), run(true)
	if overlapped >= blocking {
		t.Fatalf("overlap %v must beat blocking %v", overlapped, blocking)
	}
}
