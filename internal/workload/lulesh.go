package workload

import (
	"fmt"

	"popper/internal/cluster"
	"popper/internal/mpi"
)

// LuleshSpec configures the LULESH-like shock-hydrodynamics proxy
// application used in the paper's MPI noisy-neighbour study. Each rank
// owns a ProblemSize^3 sub-domain; every iteration performs the stencil
// compute, exchanges halo faces with up to six neighbours in a 3D
// decomposition, and agrees on the next timestep with an allreduce.
type LuleshSpec struct {
	Iterations  int
	ProblemSize int // elements per dimension per rank (LULESH -s)
	// OpsPerElement is CPU ops per element per iteration.
	OpsPerElement float64
	// BytesPerFace is transferred per halo face per iteration.
	FieldsPerElement int // doubles exchanged per face element
	// Overlap posts nonblocking halo exchanges before the stencil
	// compute and waits after it, hiding wire time behind computation.
	Overlap bool
}

// DefaultLuleshSpec mirrors the common LULESH configuration (-s 30).
func DefaultLuleshSpec() LuleshSpec {
	return LuleshSpec{
		Iterations:       50,
		ProblemSize:      30,
		OpsPerElement:    450,
		FieldsPerElement: 3,
	}
}

func (s LuleshSpec) validate() error {
	switch {
	case s.Iterations <= 0:
		return fmt.Errorf("workload: lulesh iterations must be positive")
	case s.ProblemSize <= 0:
		return fmt.Errorf("workload: lulesh problem size must be positive")
	case s.OpsPerElement <= 0 || s.FieldsPerElement <= 0:
		return fmt.Errorf("workload: lulesh cost model must be positive")
	}
	return nil
}

// grid3 factors n into three dimensions as evenly as possible.
func grid3(n int) [3]int {
	best := [3]int{1, 1, n}
	bestScore := n * n
	for a := 1; a*a*a <= n; a++ {
		if n%a != 0 {
			continue
		}
		rem := n / a
		for b := a; b*b <= rem; b++ {
			if rem%b != 0 {
				continue
			}
			c := rem / b
			score := c - a // spread: smaller is more cubic
			if score < bestScore {
				bestScore = score
				best = [3]int{a, b, c}
			}
		}
	}
	return best
}

// LuleshResult summarizes one run of the proxy app.
type LuleshResult struct {
	Ranks       int
	Grid        [3]int
	Elapsed     float64 // makespan, virtual seconds
	MPITime     float64 // summed across ranks (mpiP's headline number)
	MPIFraction float64 // mean per-rank MPI time / elapsed
}

// RunLulesh executes the proxy application on the communicator.
func RunLulesh(cm *mpi.Comm, spec LuleshSpec) (LuleshResult, error) {
	if err := spec.validate(); err != nil {
		return LuleshResult{}, err
	}
	n := cm.Size()
	dims := grid3(n)
	coord := func(rank int) [3]int {
		return [3]int{rank % dims[0], (rank / dims[0]) % dims[1], rank / (dims[0] * dims[1])}
	}
	rankAt := func(c [3]int) int {
		return c[0] + c[1]*dims[0] + c[2]*dims[0]*dims[1]
	}

	s := spec.ProblemSize
	elemsPerRank := float64(s * s * s)
	faceBytes := int64(s*s) * int64(spec.FieldsPerElement) * 8

	cm.Profiler().Reset()
	cm.Barrier()
	start := cm.MaxClock()

	work := cluster.Work{
		VecOps:   elemsPerRank * spec.OpsPerElement * 0.6,
		CPUOps:   elemsPerRank * spec.OpsPerElement * 0.4,
		MemBytes: elemsPerRank * 8 * float64(spec.FieldsPerElement),
	}
	for it := 0; it < spec.Iterations; it++ {
		if spec.Overlap {
			// nonblocking: post the halo sends, compute, then wait —
			// wire time hides behind the stencil.
			var reqs []*mpi.Request
			for dim := 0; dim < 3; dim++ {
				for r := 0; r < n; r++ {
					c := coord(r)
					if c[dim]+1 < dims[dim] {
						nb := c
						nb[dim]++
						s1, err := cm.Isend(r, rankAt(nb), faceBytes)
						if err != nil {
							return LuleshResult{}, err
						}
						s2, err := cm.Isend(rankAt(nb), r, faceBytes)
						if err != nil {
							return LuleshResult{}, err
						}
						reqs = append(reqs, s1, s2)
					}
				}
			}
			for r := 0; r < n; r++ {
				if err := cm.Compute(r, work); err != nil {
					return LuleshResult{}, err
				}
			}
			for dim := 0; dim < 3; dim++ {
				for r := 0; r < n; r++ {
					c := coord(r)
					if c[dim]+1 < dims[dim] {
						nb := c
						nb[dim]++
						r1, err := cm.Irecv(rankAt(nb), r)
						if err != nil {
							return LuleshResult{}, err
						}
						r2, err := cm.Irecv(r, rankAt(nb))
						if err != nil {
							return LuleshResult{}, err
						}
						reqs = append(reqs, r1, r2)
					}
				}
			}
			if err := cm.Waitall(reqs); err != nil {
				return LuleshResult{}, err
			}
		} else {
			// blocking: compute, then exchange halos
			for r := 0; r < n; r++ {
				if err := cm.Compute(r, work); err != nil {
					return LuleshResult{}, err
				}
			}
			for dim := 0; dim < 3; dim++ {
				for r := 0; r < n; r++ {
					c := coord(r)
					if c[dim]+1 < dims[dim] {
						nb := c
						nb[dim]++
						if err := cm.Sendrecv(r, rankAt(nb), faceBytes); err != nil {
							return LuleshResult{}, err
						}
					}
				}
			}
		}
		// global timestep computation
		cm.Allreduce(8)
	}
	end := cm.MaxClock()

	p := cm.Profiler()
	meanMPI := p.TotalMPITime() / float64(n)
	res := LuleshResult{
		Ranks:   n,
		Grid:    dims,
		Elapsed: end - start,
		MPITime: p.TotalMPITime(),
	}
	if res.Elapsed > 0 {
		res.MPIFraction = meanMPI / res.Elapsed
	}
	return res, nil
}
