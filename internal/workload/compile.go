// Package workload implements the applications the paper's experiments
// drive through the substrates: the "compile Git" build job used to
// evaluate GassyFS scalability (Figure gassyfs-git), a LULESH-like
// stencil proxy application for the MPI noisy-neighbour study, and a
// filesystem microbenchmark.
package workload

import (
	"fmt"
	"math/rand"

	"popper/internal/cluster"
	"popper/internal/gassyfs"
	"popper/internal/sched"
)

// CompileSpec describes a synthetic source tree and build cost model,
// sized by default like the Git build the paper uses as its workload.
type CompileSpec struct {
	Sources    int   // number of translation units
	AvgSrcSize int   // mean bytes per source file
	Headers    int   // shared headers every unit includes
	HdrSize    int   // bytes per header
	Seed       int64 // tree generation seed

	// CompileOpsPerByte is CPU ops spent per byte of source+headers.
	CompileOpsPerByte float64
	// ObjRatio is object-file size relative to source size.
	ObjRatio float64
	// LinkOpsPerByte is CPU ops per byte of objects during the link.
	LinkOpsPerByte float64
	// JobsPerNode bounds per-node build parallelism (make -j).
	JobsPerNode int

	// HostJobs bounds the host goroutines driving the per-rank clients
	// concurrently; <= 0 means one per host CPU, 1 runs ranks serially.
	// Simulated results are bit-identical for every value — each rank's
	// client runs on its own goroutine with its own clock, and block
	// placement is interleaving-independent (see docs/SUBSTRATES.md).
	HostJobs int
	// Pool, when set, supplies the worker pool (so a sweep can share one
	// across runs); otherwise one is created from HostJobs.
	Pool *sched.Pool
}

// GitCompileSpec returns a spec shaped like building Git from source:
// several hundred translation units plus a body of shared headers.
func GitCompileSpec() CompileSpec {
	return CompileSpec{
		Sources:           480,
		AvgSrcSize:        24 << 10,
		Headers:           40,
		HdrSize:           12 << 10,
		Seed:              1,
		CompileOpsPerByte: 12000, // a compiler does real work per byte
		ObjRatio:          1.6,
		LinkOpsPerByte:    600,
		JobsPerNode:       8,
	}
}

func (s CompileSpec) validate() error {
	switch {
	case s.Sources <= 0 || s.AvgSrcSize <= 0:
		return fmt.Errorf("workload: spec needs positive sources and sizes")
	case s.Headers < 0 || s.HdrSize < 0:
		return fmt.Errorf("workload: negative header config")
	case s.CompileOpsPerByte <= 0 || s.LinkOpsPerByte < 0 || s.ObjRatio <= 0:
		return fmt.Errorf("workload: cost model must be positive")
	case s.JobsPerNode <= 0:
		return fmt.Errorf("workload: JobsPerNode must be positive")
	}
	return nil
}

func srcPath(i int) string { return fmt.Sprintf("/src/c/file%04d.c", i) }
func objPath(i int) string { return fmt.Sprintf("/src/obj/file%04d.o", i) }
func hdrPath(i int) string { return fmt.Sprintf("/src/include/hdr%03d.h", i) }

// GenerateTree writes the synthetic source tree into the filesystem
// through the given client.
func GenerateTree(cl *gassyfs.Client, spec CompileSpec) error {
	if err := spec.validate(); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	for _, d := range []string{"/src", "/src/c", "/src/include", "/src/obj", "/src/bin"} {
		if err := cl.MkdirAll(d); err != nil {
			return err
		}
	}
	for h := 0; h < spec.Headers; h++ {
		if err := cl.WriteFile(hdrPath(h), synthBytes(rng, spec.HdrSize)); err != nil {
			return err
		}
	}
	for i := 0; i < spec.Sources; i++ {
		size := spec.AvgSrcSize/2 + rng.Intn(spec.AvgSrcSize)
		if err := cl.WriteFile(srcPath(i), synthBytes(rng, size)); err != nil {
			return err
		}
	}
	return nil
}

func synthBytes(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	const chars = "abcdefghijklmnopqrstuvwxyz(){};/* */\n\t#include int return"
	for i := range out {
		out[i] = chars[rng.Intn(len(chars))]
	}
	return out
}

// CompileResult summarizes one distributed build.
type CompileResult struct {
	Nodes       int
	Elapsed     float64 // virtual seconds, generation excluded
	CompileTime float64 // parallel phase
	LinkTime    float64 // serial phase on rank 0
	ObjectBytes int64
}

// compileShard runs one rank's share of the build: read the shared
// headers, compile the rank's round-robin slice of sources into object
// files, then charge the shard's compute. All costs land on the rank's
// own node clock and every filesystem op goes through the rank's own
// client, so the shard's simulated behaviour is independent of how
// shards interleave on the host.
func compileShard(fs *gassyfs.FS, spec CompileSpec, rank int) error {
	world := fs.World()
	cl, err := fs.Client(rank)
	if err != nil {
		return err
	}
	node, _ := world.Node(rank)
	// Each rank reads the shared headers once (they stay in page cache).
	var headerBytes int64
	for h := 0; h < spec.Headers; h++ {
		data, err := cl.ReadFile(hdrPath(h))
		if err != nil {
			return fmt.Errorf("workload: reading header: %w", err)
		}
		headerBytes += int64(len(data))
	}
	var shardCPU float64
	n := world.Size()
	for i := rank; i < spec.Sources; i += n {
		src, err := cl.ReadFile(srcPath(i))
		if err != nil {
			return fmt.Errorf("workload: reading source: %w", err)
		}
		unitBytes := float64(len(src)) + float64(headerBytes)
		shardCPU += unitBytes * spec.CompileOpsPerByte
		obj := make([]byte, int(float64(len(src))*spec.ObjRatio))
		if err := cl.WriteFile(objPath(i), obj); err != nil {
			return fmt.Errorf("workload: writing object: %w", err)
		}
	}
	// The shard's compute parallelizes across local cores (make -j).
	node.RunParallel(cluster.Work{CPUOps: shardCPU, MemBytes: shardCPU / 20}, spec.JobsPerNode, 0.02)
	return nil
}

// CompileOnCluster builds the tree on every rank of the filesystem's
// world: sources are sharded round-robin across ranks, each rank compiles
// its shard with JobsPerNode-way parallelism, and rank 0 links. This is
// the paper's Figure gassyfs-git workload.
//
// Ranks are driven concurrently on host goroutines (one per rank,
// bounded by HostJobs/Pool). The simulated result is bit-identical to a
// serial drive: each rank only ever advances its own logical clock, and
// the striped allocator places each writer's blocks independently of
// scheduling.
func CompileOnCluster(fs *gassyfs.FS, spec CompileSpec) (CompileResult, error) {
	if err := spec.validate(); err != nil {
		return CompileResult{}, err
	}
	world := fs.World()
	n := world.Size()
	start := world.Barrier()

	// --- parallel compile phase: one goroutine per rank ---
	pool := spec.Pool
	if pool == nil {
		pool = sched.NewPool(spec.HostJobs)
	}
	errs := pool.Each(n, func(rank int) error {
		return compileShard(fs, spec, rank)
	})
	if err := sched.FirstError(errs); err != nil {
		return CompileResult{}, err
	}
	compileEnd := world.Barrier()

	// --- serial link phase on rank 0 ---
	cl0, err := fs.Client(0)
	if err != nil {
		return CompileResult{}, err
	}
	var objTotal int64
	for i := 0; i < spec.Sources; i++ {
		obj, err := cl0.ReadFile(objPath(i))
		if err != nil {
			return CompileResult{}, fmt.Errorf("workload: reading object: %w", err)
		}
		objTotal += int64(len(obj))
	}
	node0, _ := world.Node(0)
	node0.Run(cluster.Work{CPUOps: float64(objTotal) * spec.LinkOpsPerByte, MemBytes: float64(objTotal)})
	if err := cl0.WriteFile("/src/bin/git", make([]byte, objTotal/3)); err != nil {
		return CompileResult{}, err
	}
	end := world.Barrier()

	return CompileResult{
		Nodes:       n,
		Elapsed:     end - start,
		CompileTime: compileEnd - start,
		LinkTime:    end - compileEnd,
		ObjectBytes: objTotal,
	}, nil
}
