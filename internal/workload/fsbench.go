package workload

import (
	"fmt"
	"math/rand"

	"popper/internal/gassyfs"
)

// FSBenchSpec configures the fio-style filesystem microbenchmark used to
// characterize GassyFS beyond the compile workload.
type FSBenchSpec struct {
	FileSize  int64 // bytes per file
	IOSize    int64 // bytes per operation
	Ops       int   // operations per phase
	Seed      int64
	RandomIO  bool // random offsets instead of sequential
	WriteOnly bool // skip the read phase
}

func (s FSBenchSpec) validate() error {
	switch {
	case s.FileSize <= 0 || s.IOSize <= 0 || s.Ops <= 0:
		return fmt.Errorf("workload: fsbench sizes and ops must be positive")
	case s.IOSize > s.FileSize:
		return fmt.Errorf("workload: io size larger than file")
	}
	return nil
}

// FSBenchResult reports virtual-time throughput for each phase.
type FSBenchResult struct {
	WriteSeconds float64
	ReadSeconds  float64
	WriteMBps    float64
	ReadMBps     float64
}

// RunFSBench writes then reads a file through the client with the
// configured access pattern, reporting virtual-time bandwidth.
func RunFSBench(cl *gassyfs.Client, path string, spec FSBenchSpec) (FSBenchResult, error) {
	if err := spec.validate(); err != nil {
		return FSBenchResult{}, err
	}
	node, err := cl.FS().World().Node(cl.Rank())
	if err != nil {
		return FSBenchResult{}, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	if err := cl.Create(path); err != nil {
		return FSBenchResult{}, err
	}
	buf := make([]byte, spec.IOSize)
	for i := range buf {
		buf[i] = byte(i)
	}
	offset := func(i int) int64 {
		if spec.RandomIO {
			return rng.Int63n(spec.FileSize - spec.IOSize + 1)
		}
		return (int64(i) * spec.IOSize) % (spec.FileSize - spec.IOSize + 1)
	}

	var res FSBenchResult
	t0 := node.Now()
	for i := 0; i < spec.Ops; i++ {
		if err := cl.WriteAt(path, offset(i), buf); err != nil {
			return FSBenchResult{}, err
		}
	}
	res.WriteSeconds = node.Now() - t0
	moved := float64(spec.Ops) * float64(spec.IOSize)
	if res.WriteSeconds > 0 {
		res.WriteMBps = moved / res.WriteSeconds / 1e6
	}
	if spec.WriteOnly {
		return res, nil
	}
	t1 := node.Now()
	for i := 0; i < spec.Ops; i++ {
		if _, err := cl.ReadAt(path, offset(i), spec.IOSize); err != nil {
			return FSBenchResult{}, err
		}
	}
	res.ReadSeconds = node.Now() - t1
	if res.ReadSeconds > 0 {
		res.ReadMBps = moved / res.ReadSeconds / 1e6
	}
	return res, nil
}
