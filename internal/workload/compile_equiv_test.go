package workload

import (
	"bytes"
	"testing"

	"popper/internal/sched"
)

// Golden equivalence for the concurrent compile driver: running the
// per-rank shards on one host goroutine or eight must produce the same
// CompileResult bit for bit, the same per-node clocks, the same block
// placement, and the same linked binary.
func TestCompileParallelMatchesSerialGolden(t *testing.T) {
	run := func(hostJobs int) (CompileResult, []float64, []int, []byte) {
		fs := buildFS(t, 4, 7)
		cl, err := fs.Client(0)
		if err != nil {
			t.Fatal(err)
		}
		spec := smallSpec()
		spec.HostJobs = hostJobs
		if err := GenerateTree(cl, spec); err != nil {
			t.Fatal(err)
		}
		res, err := CompileOnCluster(fs, spec)
		if err != nil {
			t.Fatal(err)
		}
		world := fs.World()
		clocks := make([]float64, world.Size())
		for r := range clocks {
			node, _ := world.Node(r)
			clocks[r] = node.Now()
		}
		bin, err := cl.ReadFile("/src/bin/git")
		if err != nil {
			t.Fatal(err)
		}
		return res, clocks, fs.UsedBlocks(), bin
	}

	resS, clkS, usedS, binS := run(1)
	resP, clkP, usedP, binP := run(8)

	if resS != resP {
		t.Errorf("CompileResult differs:\n  serial   %+v\n  parallel %+v", resS, resP)
	}
	for r := range clkS {
		if clkS[r] != clkP[r] {
			t.Errorf("rank %d clock: serial %.18g parallel %.18g", r, clkS[r], clkP[r])
		}
	}
	for r := range usedS {
		if usedS[r] != usedP[r] {
			t.Errorf("rank %d used blocks: serial %d parallel %d", r, usedS[r], usedP[r])
		}
	}
	if !bytes.Equal(binS, binP) {
		t.Error("linked binary differs between serial and parallel drives")
	}
	if resP.Nodes != 4 || resP.Elapsed <= 0 {
		t.Fatalf("implausible result: %+v", resP)
	}
}

// A caller-supplied shared pool must behave exactly like a per-call one.
func TestCompileSharedPool(t *testing.T) {
	run := func(pool *sched.Pool) CompileResult {
		fs := buildFS(t, 2, 7)
		cl, err := fs.Client(0)
		if err != nil {
			t.Fatal(err)
		}
		spec := smallSpec()
		spec.Pool = pool
		if err := GenerateTree(cl, spec); err != nil {
			t.Fatal(err)
		}
		res, err := CompileOnCluster(fs, spec)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	shared := sched.NewPool(4)
	a := run(shared)
	b := run(shared) // reuse across runs, as the sweep executor does
	c := run(nil)
	if a != b || a != c {
		t.Fatalf("pool sharing changed results:\n  %+v\n  %+v\n  %+v", a, b, c)
	}
}
