package fault

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"

	"popper/internal/yamlite"
)

// Spec is a parsed faults.yml document: a seed plus the rule list. The
// file format mirrors the convention's other declarative artifacts —
// everything a chaos run needs to be replayed lives in one versioned
// file:
//
//	seed: 42
//	faults:
//	  - site: pipeline/sweep/*/run
//	    kind: error        # error | latency | partition | crash | crash-disk
//	    prob: 0.5          # per-occurrence probability (default 1)
//	    after: 1           # skip the first N occurrences
//	    times: 2           # at most N injections per site (0 = unlimited)
//	    global: true       # window over all matching sites, not per site
//	    delay: 0.25        # latency faults: virtual seconds
//	    msg: flaky stage
type Spec struct {
	Seed  int64
	Rules []Rule
}

// ParseSpec decodes a faults.yml document.
func ParseSpec(src string) (*Spec, error) {
	doc, err := yamlite.DecodeMap(src)
	if err != nil {
		return nil, fmt.Errorf("fault: faults.yml: %w", err)
	}
	spec := &Spec{Seed: int64(yamlite.GetInt(doc, "seed", 1))}
	raw, ok := yamlite.Get(doc, "faults")
	if !ok {
		return nil, fmt.Errorf("fault: faults.yml declares no faults")
	}
	list, ok := raw.([]any)
	if !ok {
		return nil, fmt.Errorf("fault: faults.yml: faults must be a list")
	}
	for i, rawRule := range list {
		rm, ok := rawRule.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("fault: faults.yml: fault %d is not a mapping", i)
		}
		rule := Rule{
			Site:   yamlite.GetString(rm, "site", ""),
			Prob:   getFloat(rm, "prob", 1),
			After:  yamlite.GetInt(rm, "after", 0),
			Times:  yamlite.GetInt(rm, "times", 0),
			Global: yamlite.GetBool(rm, "global", false),
			Delay:  getFloat(rm, "delay", 0),
			Msg:    yamlite.GetString(rm, "msg", ""),
		}
		if rule.Site == "" {
			return nil, fmt.Errorf("fault: faults.yml: fault %d has no site", i)
		}
		kind, err := ParseKind(yamlite.GetString(rm, "kind", "error"))
		if err != nil {
			// Name the rule index AND its site glob: in a 20-rule file,
			// "fault 7 (site disk/read/*)" is findable; the kind string
			// alone is not.
			return nil, fmt.Errorf("fault: faults.yml: fault %d (site %q): %w", i, rule.Site, err)
		}
		rule.Kind = kind
		if rule.Kind == Latency && rule.Delay <= 0 {
			return nil, fmt.Errorf("fault: faults.yml: latency fault %d (site %q) needs delay > 0", i, rule.Site)
		}
		spec.Rules = append(spec.Rules, rule)
	}
	return spec, nil
}

// Injector builds a fresh injector (empty occurrence history) from the
// spec. Each sweep run gets its own so the schedule replays from the
// start.
func (s *Spec) Injector() *Injector { return NewInjector(s.Seed, s.Rules) }

// Fingerprint is a stable digest of the spec — mixed into stage-cache
// salts so runs under different fault schedules never share cache
// entries.
func (inj *Injector) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "seed=%d", inj.seed)
	for _, r := range inj.rules {
		fmt.Fprintf(h, "|%s;%s;%g;%d;%d;%t;%g;%s", r.Site, r.Kind, r.Prob, r.After, r.Times, r.Global, r.Delay, r.Msg)
	}
	return hex.EncodeToString(h.Sum(nil))[:12]
}

// getFloat reads a numeric mapping value that yamlite may have decoded
// as int64, float64 or a numeric string.
func getFloat(doc map[string]any, key string, def float64) float64 {
	raw, ok := yamlite.Get(doc, key)
	if !ok {
		return def
	}
	switch v := raw.(type) {
	case float64:
		return v
	case int64:
		return float64(v)
	case string:
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			return f
		}
	}
	return def
}
