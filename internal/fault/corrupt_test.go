package fault

import (
	"bytes"
	"strings"
	"testing"
)

func TestCorruptDiskKindRoundTrips(t *testing.T) {
	if CorruptDisk.String() != "corrupt-disk" {
		t.Fatalf("String() = %q", CorruptDisk.String())
	}
	k, err := ParseKind("corrupt-disk")
	if err != nil || k != CorruptDisk {
		t.Fatalf("ParseKind(corrupt-disk) = %v, %v", k, err)
	}
	spec, err := ParseSpec("seed: 7\nfaults:\n  - site: disk/read/*\n    kind: corrupt-disk\n")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Rules[0].Kind != CorruptDisk {
		t.Fatalf("spec kind = %v", spec.Rules[0].Kind)
	}
	// Silent rot is not a terminal fault: retry layers may pass it
	// through, and detection is the scrubber's job.
	f := &Fault{Kind: CorruptDisk, Site: "disk/read/x"}
	if !f.Retryable() {
		t.Fatal("corrupt-disk must not be classified terminal")
	}
}

func TestCorruptBytesDeterministicAndDamaging(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog")
	seenModes := map[string]bool{}
	for n := 0; n < 64; n++ {
		a, descA := CorruptBytes(42, "disk-rot/x", n, data)
		b, descB := CorruptBytes(42, "disk-rot/x", n, data)
		if !bytes.Equal(a, b) || descA != descB {
			t.Fatalf("occurrence %d not deterministic", n)
		}
		if bytes.Equal(a, data) {
			t.Fatalf("occurrence %d left the bytes intact (%s)", n, descA)
		}
		if len(a) > len(data) {
			t.Fatalf("occurrence %d grew the data", n)
		}
		switch {
		case strings.HasPrefix(descA, "single-bit"):
			seenModes["single"] = true
		case strings.Contains(descA, "scatter"):
			seenModes["multi"] = true
		case strings.HasPrefix(descA, "truncated"):
			seenModes["trunc"] = true
			if len(a) >= len(data) {
				t.Fatalf("truncation must be a strict prefix, got %d of %d", len(a), len(data))
			}
		default:
			t.Fatalf("unrecognized damage description %q", descA)
		}
	}
	for _, mode := range []string{"single", "multi", "trunc"} {
		if !seenModes[mode] {
			t.Fatalf("64 occurrences never produced mode %s", mode)
		}
	}
	// Different seeds rot differently (somewhere in a modest window).
	differs := false
	for n := 0; n < 8 && !differs; n++ {
		a, _ := CorruptBytes(1, "k", n, data)
		b, _ := CorruptBytes(2, "k", n, data)
		differs = !bytes.Equal(a, b)
	}
	if !differs {
		t.Fatal("seeds 1 and 2 produced identical rot for 8 occurrences")
	}
	// Tiny and empty inputs honor the contract too.
	if out, _ := CorruptBytes(3, "k", 0, nil); len(out) != 0 {
		t.Fatal("empty input must come back empty")
	}
	for n := 0; n < 16; n++ {
		one, _ := CorruptBytes(3, "k", n, []byte{0xAB})
		if len(one) == 1 && one[0] == 0xAB {
			t.Fatalf("occurrence %d left a 1-byte input intact", n)
		}
	}
}

func TestParseSpecErrorsNameRuleAndSite(t *testing.T) {
	// A bad kind deep in a multi-rule file must be findable: the error
	// names the rule index and its site glob, not just the kind string.
	src := "faults:\n" +
		"  - site: disk/write/*\n    kind: error\n" +
		"  - site: gasnet/putv/*\n    kind: warp\n"
	_, err := ParseSpec(src)
	if err == nil {
		t.Fatal("bad kind must fail")
	}
	for _, want := range []string{"fault 1", `site "gasnet/putv/*"`, `"warp"`} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("kind error %q does not mention %s", err, want)
		}
	}
	_, err = ParseSpec("faults:\n  - site: a/b\n    kind: latency\n")
	if err == nil {
		t.Fatal("latency without delay must fail")
	}
	for _, want := range []string{"fault 0", `site "a/b"`} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("latency error %q does not mention %s", err, want)
		}
	}
}

func TestMatchSiteExported(t *testing.T) {
	for _, tc := range []struct {
		pattern, site string
		want          bool
	}{
		{"disk/read/*", "disk/read/.popper/manifest", true},
		{"disk/*", "disk/read/x", true},
		{"*.popper/objects/*", "data/.popper/objects/ab/cd", true},
		{"disk/read/*", "disk/write/x", false},
	} {
		if got := MatchSite(tc.pattern, tc.site); got != tc.want {
			t.Errorf("MatchSite(%q, %q) = %v", tc.pattern, tc.site, got)
		}
	}
}
