// Package fault is the deterministic fault-injection substrate behind
// the toolchain's resilience machinery. The Popper convention promises
// that a re-run either reproduces a result or fails loudly and
// diagnosably; this package supplies the controlled failures that let
// the execution stack (sched → pipeline → sweep → orchestrate →
// gasnet/gassyfs) prove it absorbs faults without losing that promise.
//
// Faults are declared as rules scoped by a site name — a slash-separated
// path naming one injection point, such as "pipeline/sweep/001/run" or
// "gasnet/getv/r2" — plus an occurrence window (After/Times) and a
// per-occurrence probability. Every decision is a pure function of
// (seed, site, rule, occurrence): the injector keeps one occurrence
// counter per site and hashes the tuple through a splitmix64 finalizer,
// so a failure schedule replays bit-identically from the same spec and
// seed, and sites that run concurrently never perturb each other's
// stream. Determinism across worker counts therefore holds whenever
// each site is driven serially (one site per sweep configuration, per
// pipeline stage, per host/task pair) — the invariant the execution
// layers maintain — or when a rule's decision is occurrence-independent
// (probability 0 or 1 with no Times cap).
//
// The same seeded hash drives retry backoff jitter (Retry.Delay) and
// the virtual Clock that deadlines and latency faults are measured on,
// which is what makes a whole chaos run — failures, backoff delays,
// timeouts — reproducible byte for byte. See docs/RESILIENCE.md.
package fault

import (
	"fmt"
	"sync"
)

// Kind classifies an injected fault.
type Kind uint8

const (
	// Error is a transient failure: the site returns an error that
	// retry policies may absorb.
	Error Kind = iota
	// Latency delays the site by Delay virtual seconds without failing
	// it — the fault that exercises deadlines.
	Latency
	// Partition models a network partition: RDMA-layer operations fail
	// with a typed, retryable error.
	Partition
	// Crash is a hard failure: terminal, never retried.
	Crash
	// DiskCrash ("crash-disk" in faults.yml) models power loss at a disk
	// boundary: the current write may tear, everything unsynced may be
	// lost, and the store refuses further operations until "reboot".
	// Terminal, never retried. See internal/store and docs/RESILIENCE.md.
	DiskCrash
	// CorruptDisk ("corrupt-disk" in faults.yml) models silent bit-rot:
	// the site succeeds but the bytes it observes are mutated by a
	// seeded flip or truncation (CorruptBytes). No error surfaces — the
	// scrubber's Merkle verification is what must catch it. See
	// internal/scrub and docs/RESILIENCE.md.
	CorruptDisk
)

// String names the kind as it appears in faults.yml.
func (k Kind) String() string {
	switch k {
	case Error:
		return "error"
	case Latency:
		return "latency"
	case Partition:
		return "partition"
	case Crash:
		return "crash"
	case DiskCrash:
		return "crash-disk"
	case CorruptDisk:
		return "corrupt-disk"
	}
	return fmt.Sprintf("kind(%d)", k)
}

// ParseKind parses a faults.yml kind name.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "error", "":
		return Error, nil
	case "latency":
		return Latency, nil
	case "partition":
		return Partition, nil
	case "crash":
		return Crash, nil
	case "crash-disk":
		return DiskCrash, nil
	case "corrupt-disk":
		return CorruptDisk, nil
	}
	return 0, fmt.Errorf("fault: unknown kind %q (error, latency, partition, crash, crash-disk, corrupt-disk)", s)
}

// Rule is one declarative fault: where it strikes, what it does, and
// how often. The zero probability value means "always" (Prob 0 is
// normalized to 1 at injector construction).
type Rule struct {
	// Site is a glob over site names; '*' matches any run of
	// characters, including '/'.
	Site string
	// Kind is what happens when the rule fires.
	Kind Kind
	// Prob is the per-occurrence firing probability in (0, 1]; values
	// <= 0 or > 1 are clamped to 1 (always fire).
	Prob float64
	// After skips the first After occurrences of a matching site.
	After int
	// Times caps how many faults the rule injects per site (0 =
	// unlimited). The cap is per site, not global, so concurrent sites
	// stay independent.
	Times int
	// Global evaluates After/Times/Prob against one counter of matching
	// occurrences across every site the rule's glob covers, instead of
	// per-site counters — "fail the Nth disk operation overall". Only
	// deterministic when the matching sites are driven serially (the
	// store's sync path is), so reserve it for serial subsystems.
	Global bool
	// Delay is the virtual seconds a Latency fault adds.
	Delay float64
	// Msg is carried in the injected error text.
	Msg string
}

// Fault is one injected fault. It implements error; Latency faults are
// informational (callers advance a clock instead of failing).
type Fault struct {
	Kind       Kind
	Site       string
	Occurrence int
	Delay      float64
	Msg        string
}

// Error renders the fault diagnosably: kind, site and occurrence are
// what a replay needs to find the same injection point.
func (f *Fault) Error() string {
	msg := f.Msg
	if msg == "" {
		msg = "injected " + f.Kind.String()
	}
	return fmt.Sprintf("fault: %s at %s#%d: %s", f.Kind, f.Site, f.Occurrence, msg)
}

// Retryable reports whether the fault models a transient condition a
// retry policy may absorb. Crashes — process or disk — are terminal.
func (f *Fault) Retryable() bool { return f.Kind != Crash && f.Kind != DiskCrash }

// siteState is one site's mutable injection history.
type siteState struct {
	occ      int   // occurrences seen
	injected []int // faults injected so far, per rule
}

// Injector evaluates rules at sites. Safe for concurrent use; decisions
// are independent per site (see the package comment for the exact
// determinism contract).
type Injector struct {
	seed  int64
	rules []Rule

	mu    sync.Mutex
	sites map[string]*siteState
	// per-rule counters for Global rules: matching occurrences seen and
	// faults injected, across all sites.
	globalOcc []int
	globalInj []int
}

// NewInjector builds an injector over the rules. Prob values outside
// (0, 1] are normalized to 1.
func NewInjector(seed int64, rules []Rule) *Injector {
	normalized := append([]Rule(nil), rules...)
	for i := range normalized {
		if normalized[i].Prob <= 0 || normalized[i].Prob > 1 {
			normalized[i].Prob = 1
		}
	}
	return &Injector{
		seed: seed, rules: normalized, sites: make(map[string]*siteState),
		globalOcc: make([]int, len(normalized)), globalInj: make([]int, len(normalized)),
	}
}

// Seed returns the injector's seed (retry jitter shares it).
func (inj *Injector) Seed() int64 {
	if inj == nil {
		return 0
	}
	return inj.seed
}

// Rules returns a copy of the normalized rule set.
func (inj *Injector) Rules() []Rule { return append([]Rule(nil), inj.rules...) }

// Check records one occurrence of the site and returns the fault the
// first matching rule injects, or nil. Callers guard the call with a
// nil check (`if inj != nil`) so the no-fault hot path stays a single
// pointer comparison.
func (inj *Injector) Check(site string) *Fault {
	inj.mu.Lock()
	st := inj.sites[site]
	if st == nil {
		st = &siteState{injected: make([]int, len(inj.rules))}
		inj.sites[site] = st
	}
	occ := st.occ
	st.occ++
	for ri := range inj.rules {
		r := &inj.rules[ri]
		if !matchSite(r.Site, site) {
			continue
		}
		// Global rules window on the rule's cross-site occurrence stream;
		// per-site rules window on this site's.
		window, injected, coinSite := occ, st.injected[ri], site
		if r.Global {
			window, injected, coinSite = inj.globalOcc[ri], inj.globalInj[ri], "global"
			inj.globalOcc[ri]++
		}
		if window < r.After {
			continue
		}
		if r.Times > 0 && injected >= r.Times {
			continue
		}
		if r.Prob < 1 && hash01(inj.seed, coinSite, ri, window) >= r.Prob {
			continue
		}
		if r.Global {
			inj.globalInj[ri]++
		} else {
			st.injected[ri]++
		}
		inj.mu.Unlock()
		return &Fault{Kind: r.Kind, Site: site, Occurrence: window, Delay: r.Delay, Msg: r.Msg}
	}
	inj.mu.Unlock()
	return nil
}

// Occurrences returns how many occurrences of sites matching the glob
// the injector has recorded — how many times matching sites were
// checked, whether or not a fault fired. Crash-matrix tests use it to
// enumerate every injection point of a serial path.
func (inj *Injector) Occurrences(pattern string) int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	total := 0
	for site, st := range inj.sites {
		if matchSite(pattern, site) {
			total += st.occ
		}
	}
	return total
}

// Injected returns the total number of faults injected so far.
func (inj *Injector) Injected() int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	total := 0
	for _, st := range inj.sites {
		for _, n := range st.injected {
			total += n
		}
	}
	for _, n := range inj.globalInj {
		total += n
	}
	return total
}

// Reset clears the occurrence history so the same schedule replays from
// the beginning.
func (inj *Injector) Reset() {
	inj.mu.Lock()
	inj.sites = make(map[string]*siteState)
	inj.globalOcc = make([]int, len(inj.rules))
	inj.globalInj = make([]int, len(inj.rules))
	inj.mu.Unlock()
}

// IsPartition reports whether err is (or wraps) an injected partition.
func IsPartition(err error) bool {
	f, ok := As(err)
	return ok && f.Kind == Partition
}

// IsCrash reports whether err is (or wraps) an injected crash — the
// one fault kind retry policies must not absorb.
func IsCrash(err error) bool {
	f, ok := As(err)
	return ok && f.Kind == Crash
}

// IsDiskCrash reports whether err is (or wraps) an injected disk crash
// (power loss at a storage boundary).
func IsDiskCrash(err error) bool {
	f, ok := As(err)
	return ok && f.Kind == DiskCrash
}

// IsTerminal reports whether err is (or wraps) an injected fault that
// retry policies must not absorb — a process crash or a disk crash.
func IsTerminal(err error) bool {
	f, ok := As(err)
	return ok && !f.Retryable()
}

// As unwraps err to the injected *Fault, walking Unwrap chains.
func As(err error) (*Fault, bool) {
	for err != nil {
		if f, ok := err.(*Fault); ok {
			return f, true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return nil, false
		}
		err = u.Unwrap()
	}
	return nil, false
}

// matchSite matches a glob pattern against a site name; '*' matches any
// run of characters including '/'. Iterative backtracking, no
// allocation.
func matchSite(pattern, s string) bool {
	pi, si := 0, 0
	star, mark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == s[si]):
			pi++
			si++
		case pi < len(pattern) && pattern[pi] == '*':
			star, mark = pi, si
			pi++
		case star >= 0:
			mark++
			pi, si = star+1, mark
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '*' {
		pi++
	}
	return pi == len(pattern)
}

// hash01 maps (seed, site, rule, occurrence) to [0, 1) — the seeded
// per-occurrence coin every probabilistic decision flips.
func hash01(seed int64, site string, rule, occ int) float64 {
	h := uint64(seed) ^ 0x9e3779b97f4a7c15
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= 0x100000001b3
	}
	h ^= uint64(rule)<<32 ^ uint64(occ)
	return float64(splitmix64(h)>>11) / float64(1<<53)
}

// splitmix64 is the finalizer that whitens the site hash into an
// independent uniform stream.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash01 is the exported seeded coin: deterministic in (seed, key, n).
// Retry jitter and any layer needing reproducible pseudo-randomness
// outside rule evaluation share it.
func Hash01(seed int64, key string, n int) float64 {
	return hash01(seed, key, -1, n)
}

// MatchSite is the exported site glob matcher: '*' matches any run of
// characters including '/'. The MemFS at-rest rot hook and scrub tests
// use it to pick corruption targets with the same glob language rules
// use to pick injection sites.
func MatchSite(pattern, site string) bool { return matchSite(pattern, site) }

// CorruptBytes is the deterministic bit-rot mutator behind the
// corrupt-disk fault kind: it returns a corrupted copy of data (the
// input is never modified) plus a short description of the damage.
// The damage is a pure function of (seed, key, n) — the same tuple
// always flips the same bits — and is drawn from the three silent
// failure modes scrub must detect: a single-bit flip, a multi-bit
// scatter (2–4 flips), or a truncation to a strict prefix. Non-empty
// input always yields output that differs from the input; empty input
// is returned unchanged ("no bytes to rot").
func CorruptBytes(seed int64, key string, n int, data []byte) ([]byte, string) {
	if len(data) == 0 {
		return data, "no bytes to rot"
	}
	// Aspect coins: n*8+0 picks the mode, higher aspects pick positions.
	coin := func(aspect int) float64 { return Hash01(seed, key, n*8+aspect) }
	out := append([]byte(nil), data...)
	switch mode := coin(0); {
	case mode < 1.0/3:
		bit := int(coin(1) * float64(len(out)*8))
		out[bit/8] ^= 1 << uint(bit%8)
		return out, fmt.Sprintf("single-bit flip at bit %d of %d bytes", bit, len(data))
	case mode < 2.0/3:
		k := 2 + int(coin(1)*3) // 2..4 flips
		for i := 0; i < k; i++ {
			bit := int(coin(2+i) * float64(len(out)*8))
			out[bit/8] ^= 1 << uint(bit%8)
		}
		// Scattered flips can cancel pairwise on tiny inputs; the
		// contract is output != input, so force a flip if they did.
		same := true
		for i := range out {
			if out[i] != data[i] {
				same = false
				break
			}
		}
		if same {
			out[0] ^= 1
		}
		return out, fmt.Sprintf("%d-bit scatter over %d bytes", k, len(data))
	default:
		// Hash01 < 1, so the cut is always a strict prefix.
		cut := int(coin(7) * float64(len(out)))
		return out[:cut], fmt.Sprintf("truncated %d bytes to %d", len(data), cut)
	}
}

// Retry is a declarative retry policy: up to Max additional attempts
// after the first, with exponential backoff and deterministic jitter,
// all in virtual seconds.
type Retry struct {
	// Max is the number of retries (0 disables retrying; total attempts
	// = Max + 1).
	Max int
	// Backoff is the base delay before the first retry; it doubles each
	// further retry. <= 0 means no delay.
	Backoff float64
	// Jitter is the fraction of the delay randomized (deterministically)
	// around the base: delay * (1 ± Jitter).
	Jitter float64
}

// Delay returns the virtual-seconds backoff before retry `attempt`
// (1-based: the delay after the attempt'th failure). Deterministic in
// (seed, key, attempt).
func (r Retry) Delay(seed int64, key string, attempt int) float64 {
	if r.Backoff <= 0 || attempt < 1 {
		return 0
	}
	d := r.Backoff * float64(int64(1)<<uint(attempt-1))
	if r.Jitter > 0 {
		d *= 1 + r.Jitter*(2*Hash01(seed, key, attempt)-1)
	}
	return d
}

// Clock is a virtual monotonic clock: the time base deadlines, latency
// faults and backoff delays share. Safe for concurrent use.
type Clock struct {
	mu sync.Mutex
	t  float64
}

// NewClock creates a clock at time 0.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time in seconds.
func (c *Clock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d seconds (negative values are
// ignored) and returns the new time.
func (c *Clock) Advance(d float64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.t += d
	}
	return c.t
}
