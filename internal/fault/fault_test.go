package fault

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"
)

// chaosSeed returns the seed the chaos suites run under; `make chaos`
// sets CHAOS_SEED to sweep a fixed matrix.
func chaosSeed(t testing.TB) int64 {
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q: %v", s, err)
		}
		return v
	}
	return 42
}

func TestMatchSite(t *testing.T) {
	cases := []struct {
		pattern, site string
		want          bool
	}{
		{"pipeline/sweep/001/run", "pipeline/sweep/001/run", true},
		{"pipeline/*/run", "pipeline/sweep/001/run", true},
		{"pipeline/*", "pipeline/sweep/001/run", true},
		{"*", "anything/at/all", true},
		{"gasnet/getv/r*", "gasnet/getv/r7", true},
		{"gasnet/getv/r*", "gasnet/putv/r7", false},
		{"pipeline/*/setup", "pipeline/sweep/001/run", false},
		{"", "", true},
		{"", "x", false},
	}
	for _, c := range cases {
		if got := matchSite(c.pattern, c.site); got != c.want {
			t.Errorf("matchSite(%q, %q) = %v, want %v", c.pattern, c.site, got, c.want)
		}
	}
}

func TestInjectorOccurrenceWindow(t *testing.T) {
	inj := NewInjector(1, []Rule{{Site: "stage/*", Kind: Error, After: 1, Times: 2}})
	var fired []int
	for occ := 0; occ < 6; occ++ {
		if f := inj.Check("stage/a"); f != nil {
			fired = append(fired, occ)
			if f.Occurrence != occ {
				t.Fatalf("occurrence = %d, want %d", f.Occurrence, occ)
			}
		}
	}
	// After=1 skips occurrence 0; Times=2 caps the injections.
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Fatalf("fired = %v, want [1 2]", fired)
	}
	// The cap is per site: a different site gets its own budget.
	if f := inj.Check("stage/b"); f != nil {
		t.Fatal("occurrence 0 of stage/b must be skipped by After=1")
	}
	if f := inj.Check("stage/b"); f == nil {
		t.Fatal("occurrence 1 of stage/b must fire despite stage/a exhausting its own cap")
	}
}

func TestInjectorDeterministicAcrossInterleavings(t *testing.T) {
	seed := chaosSeed(t)
	rules := []Rule{{Site: "cfg/*", Kind: Error, Prob: 0.4}}
	schedule := func(siteOrder []string) map[string][]bool {
		inj := NewInjector(seed, rules)
		out := map[string][]bool{}
		for _, s := range siteOrder {
			out[s] = append(out[s], inj.Check(s) != nil)
		}
		return out
	}
	// Interleaved vs grouped arrival must produce the same per-site
	// decision streams: decisions depend only on (site, occurrence).
	interleaved := schedule([]string{"cfg/0", "cfg/1", "cfg/0", "cfg/1", "cfg/0", "cfg/1"})
	grouped := schedule([]string{"cfg/0", "cfg/0", "cfg/0", "cfg/1", "cfg/1", "cfg/1"})
	for site, want := range grouped {
		got := interleaved[site]
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("site %s: interleaved %v != grouped %v", site, got, want)
		}
	}
	// And a probabilistic rule with this seed must actually vary by
	// occurrence (sanity that the coin is wired up).
	inj := NewInjector(seed, rules)
	fired := 0
	for i := 0; i < 200; i++ {
		if inj.Check("cfg/0") != nil {
			fired++
		}
	}
	if fired == 0 || fired == 200 {
		t.Fatalf("prob 0.4 fired %d/200 — coin not wired", fired)
	}
}

func TestInjectorConcurrentSites(t *testing.T) {
	inj := NewInjector(7, []Rule{{Site: "*", Kind: Error, Prob: 0.5, Times: 3}})
	var wg sync.WaitGroup
	results := make([][]bool, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			site := fmt.Sprintf("worker/%d", g)
			for i := 0; i < 50; i++ {
				results[g] = append(results[g], inj.Check(site) != nil)
			}
		}(g)
	}
	wg.Wait()
	// Replaying serially yields identical per-site streams.
	replay := NewInjector(7, []Rule{{Site: "*", Kind: Error, Prob: 0.5, Times: 3}})
	for g := 0; g < 8; g++ {
		site := fmt.Sprintf("worker/%d", g)
		for i := 0; i < 50; i++ {
			want := replay.Check(site) != nil
			if results[g][i] != want {
				t.Fatalf("site %s occurrence %d diverged under concurrency", site, i)
			}
		}
	}
}

func TestFaultErrorAndKinds(t *testing.T) {
	inj := NewInjector(1, []Rule{{Site: "net/*", Kind: Partition, Msg: "link down"}})
	f := inj.Check("net/r0")
	if f == nil {
		t.Fatal("partition must fire")
	}
	wrapped := fmt.Errorf("gasnet: getv: %w", f)
	if !IsPartition(wrapped) {
		t.Fatal("IsPartition must unwrap")
	}
	if IsCrash(wrapped) {
		t.Fatal("partition is not a crash")
	}
	if !f.Retryable() {
		t.Fatal("partitions are retryable")
	}
	crash := &Fault{Kind: Crash, Site: "x", Msg: "boom"}
	if crash.Retryable() || !IsCrash(fmt.Errorf("outer: %w", crash)) {
		t.Fatal("crash must be terminal and unwrappable")
	}
	if _, ok := As(errors.New("plain")); ok {
		t.Fatal("plain errors are not faults")
	}
	for _, f := range []*Fault{f, crash} {
		if f.Error() == "" {
			t.Fatal("faults must render diagnosably")
		}
	}
}

func TestParseSpec(t *testing.T) {
	src := `
seed: 99
faults:
  - site: pipeline/*/run
    kind: error
    prob: 0.5
    times: 2
    msg: flaky stage
  - site: gasnet/getv/*
    kind: partition
    after: 1
  - site: pipeline/*/setup
    kind: latency
    delay: 0.25
`
	spec, err := ParseSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 99 || len(spec.Rules) != 3 {
		t.Fatalf("spec = %+v", spec)
	}
	if spec.Rules[0].Kind != Error || spec.Rules[0].Prob != 0.5 || spec.Rules[0].Times != 2 {
		t.Fatalf("rule 0 = %+v", spec.Rules[0])
	}
	if spec.Rules[1].Kind != Partition || spec.Rules[1].After != 1 {
		t.Fatalf("rule 1 = %+v", spec.Rules[1])
	}
	if spec.Rules[2].Kind != Latency || spec.Rules[2].Delay != 0.25 {
		t.Fatalf("rule 2 = %+v", spec.Rules[2])
	}
	// Two injectors from one spec replay identical schedules.
	a, b := spec.Injector(), spec.Injector()
	for i := 0; i < 20; i++ {
		site := fmt.Sprintf("pipeline/exp/%d/run", i%3)
		fa, fb := a.Check(site), b.Check(site)
		if (fa == nil) != (fb == nil) {
			t.Fatalf("schedule diverged at %s#%d", site, i)
		}
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprints of identical specs must match")
	}
	other := NewInjector(100, spec.Rules)
	if other.Fingerprint() == a.Fingerprint() {
		t.Fatal("different seeds must fingerprint differently")
	}

	for _, bad := range []string{
		"",                                       // no faults
		"faults:\n  - kind: error\n",             // no site
		"faults:\n  - site: a\n    kind: warp\n", // unknown kind
		"faults:\n  - site: a\n    kind: latency\n", // latency without delay
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) should fail", bad)
		}
	}
}

func TestRetryDelay(t *testing.T) {
	r := Retry{Max: 3, Backoff: 1, Jitter: 0.5}
	d1 := r.Delay(42, "stage/run", 1)
	d2 := r.Delay(42, "stage/run", 2)
	if d1 <= 0 || d2 <= 0 {
		t.Fatal("delays must be positive")
	}
	if d2 < d1 {
		t.Fatalf("backoff must grow: %g then %g", d1, d2)
	}
	if d1 < 0.5 || d1 > 1.5 || d2 < 1 || d2 > 3 {
		t.Fatalf("jitter out of bounds: %g, %g", d1, d2)
	}
	if r.Delay(42, "stage/run", 1) != d1 {
		t.Fatal("delays must be deterministic")
	}
	if r.Delay(43, "stage/run", 1) == d1 {
		t.Fatal("delays must depend on the seed")
	}
	if (Retry{Max: 2}).Delay(1, "k", 1) != 0 {
		t.Fatal("zero backoff means no delay")
	}
	if (Retry{Max: 2, Backoff: 1}).Delay(1, "k", 1) != 1 {
		t.Fatal("no jitter means the exact base delay")
	}
}

func TestClock(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatal("clocks start at zero")
	}
	c.Advance(1.5)
	c.Advance(-3) // ignored
	if got := c.Advance(0.5); got != 2 {
		t.Fatalf("clock = %g, want 2", got)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); c.Advance(0.125) }()
	}
	wg.Wait()
	if got := c.Now(); got != 3 {
		t.Fatalf("concurrent advance lost time: %g", got)
	}
}

func TestCheckNoAllocWhenNil(t *testing.T) {
	// The guard callers use: `if inj != nil { ... }`. With a nil
	// injector the hot path must not allocate at all; this pins the
	// contract the per-task allocation-bounds tests in sched/gasnet
	// build on.
	var inj *Injector
	allocs := testing.AllocsPerRun(100, func() {
		if inj != nil {
			inj.Check("hot/path")
		}
	})
	if allocs != 0 {
		t.Fatalf("nil-injector guard allocates %.1f/op, want 0", allocs)
	}
}

func TestDiskCrashKind(t *testing.T) {
	k, err := ParseKind("crash-disk")
	if err != nil || k != DiskCrash {
		t.Fatalf("ParseKind(crash-disk) = %v, %v", k, err)
	}
	if DiskCrash.String() != "crash-disk" {
		t.Fatalf("DiskCrash.String() = %q", DiskCrash.String())
	}
	f := &Fault{Kind: DiskCrash, Site: "disk/write/x", Msg: "power loss"}
	if f.Retryable() {
		t.Fatal("disk crashes must not be retryable")
	}
	if !IsDiskCrash(f) || IsDiskCrash(errors.New("other")) {
		t.Fatal("IsDiskCrash misclassifies")
	}
	if !IsTerminal(f) || !IsTerminal(&Fault{Kind: Crash}) || IsTerminal(&Fault{Kind: Error}) {
		t.Fatal("IsTerminal misclassifies")
	}
	wrapped := fmt.Errorf("sync: %w", f)
	if !IsDiskCrash(wrapped) || !IsTerminal(wrapped) {
		t.Fatal("IsDiskCrash/IsTerminal must unwrap")
	}
}

func TestGlobalRuleWindow(t *testing.T) {
	// After=3 with Global counts matching occurrences across all sites:
	// the 4th disk operation overall faults, regardless of which path it
	// touches.
	inj := NewInjector(chaosSeed(t), []Rule{{Site: "disk/*", Kind: DiskCrash, After: 3, Times: 1, Global: true}})
	sites := []string{"disk/write/a", "disk/fsync/a", "disk/write/b", "disk/rename/b", "disk/write/c"}
	var fired []int
	for i, s := range sites {
		if f := inj.Check(s); f != nil {
			fired = append(fired, i)
			if f.Site != "disk/rename/b" || f.Occurrence != 3 {
				t.Fatalf("fault = %+v, want site disk/rename/b occurrence 3", f)
			}
		}
	}
	if len(fired) != 1 || fired[0] != 3 {
		t.Fatalf("fired at %v, want [3]", fired)
	}
	if got := inj.Occurrences("disk/*"); got != len(sites) {
		t.Fatalf("Occurrences(disk/*) = %d, want %d", got, len(sites))
	}
	if got := inj.Occurrences("disk/write/*"); got != 3 {
		t.Fatalf("Occurrences(disk/write/*) = %d, want 3", got)
	}
	// Reset clears the global stream too.
	inj.Reset()
	if f := inj.Check("disk/write/a"); f != nil {
		t.Fatalf("post-reset occurrence 0 must not fault, got %v", f)
	}
	if got := inj.Occurrences("disk/*"); got != 1 {
		t.Fatalf("post-reset Occurrences = %d, want 1", got)
	}
}

func TestParseSpecGlobalAndDiskCrash(t *testing.T) {
	spec, err := ParseSpec(`
seed: 9
faults:
  - site: disk/*
    kind: crash-disk
    after: 5
    global: true
    msg: power loss
`)
	if err != nil {
		t.Fatal(err)
	}
	r := spec.Rules[0]
	if r.Kind != DiskCrash || !r.Global || r.After != 5 {
		t.Fatalf("rule = %+v", r)
	}
	// Global participates in the fingerprint: the same rule without it
	// must salt caches differently.
	perSite := *spec
	perSite.Rules = append([]Rule(nil), spec.Rules...)
	perSite.Rules[0].Global = false
	if spec.Injector().Fingerprint() == perSite.Injector().Fingerprint() {
		t.Fatal("Global must be part of the spec fingerprint")
	}
}
