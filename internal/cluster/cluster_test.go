package cluster

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestProfileCatalog(t *testing.T) {
	names := ProfileNames()
	if len(names) < 5 {
		t.Fatalf("profiles = %v", names)
	}
	for _, n := range names {
		p, err := Profile(n)
		if err != nil {
			t.Fatalf("Profile(%s): %v", n, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("builtin profile %s invalid: %v", n, err)
		}
	}
	if _, err := Profile("pdp-11"); err == nil {
		t.Fatal("unknown profile should fail")
	}
}

func TestProfileCopyIsIsolated(t *testing.T) {
	a := MustProfile("xeon-2005")
	a.ClockHz = 1
	b := MustProfile("xeon-2005")
	if b.ClockHz == 1 {
		t.Fatal("Profile must return a copy")
	}
}

func TestValidate(t *testing.T) {
	bad := []*MachineProfile{
		{},
		{Name: "x", Cores: 0, ClockHz: 1e9, IPC: 1, VectorWidth: 1, MemBWBps: 1e9, NICBWBps: 1e9},
		{Name: "x", Cores: 1, ClockHz: -1, IPC: 1, VectorWidth: 1, MemBWBps: 1e9, NICBWBps: 1e9},
		{Name: "x", Cores: 1, ClockHz: 1e9, IPC: 1, VectorWidth: 1, MemBWBps: 0, NICBWBps: 1e9},
		{Name: "x", Cores: 1, ClockHz: 1e9, IPC: 1, VectorWidth: 1, MemBWBps: 1e9, NICBWBps: 0},
		{Name: "x", Cores: 1, ClockHz: 1e9, IPC: 1, VectorWidth: 1, MemBWBps: 1e9, NICBWBps: 1e9, JitterSigma: -0.1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d should be invalid: %+v", i, p)
		}
	}
}

func TestWorkDuration(t *testing.T) {
	p := &MachineProfile{
		Name: "unit", Cores: 1, ClockHz: 1e9, IPC: 1, VectorWidth: 4,
		MemBWBps: 1e9, MemLatS: 100e-9, BranchCostS: 10e-9,
		SyscallS: 1e-6, DiskBWBps: 1e8, DiskLatS: 1e-3,
		NICLatS: 1e-6, NICBWBps: 1e9,
	}
	cases := []struct {
		w    Work
		want float64
	}{
		{Work{CPUOps: 1e9}, 1.0},
		{Work{VecOps: 4e9}, 1.0},
		{Work{MemBytes: 1e9}, 1.0},
		{Work{RandAccess: 1e7}, 1.0},
		{Work{BranchMiss: 1e8}, 1.0},
		{Work{Syscalls: 1e6}, 1.0},
		{Work{DiskBytes: 1e8}, 1.0},
		{Work{DiskOps: 1e3}, 1.0},
		{Work{CPUOps: 1e9, MemBytes: 1e9}, 2.0},
	}
	for i, c := range cases {
		if got := p.Duration(c.w); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: duration = %v, want %v", i, got, c.want)
		}
	}
}

func TestWorkAddScale(t *testing.T) {
	w := Work{CPUOps: 1, MemBytes: 2}.Add(Work{CPUOps: 3, Syscalls: 4})
	if w.CPUOps != 4 || w.MemBytes != 2 || w.Syscalls != 4 {
		t.Fatalf("add = %+v", w)
	}
	s := w.Scale(2)
	if s.CPUOps != 8 || s.MemBytes != 4 || s.Syscalls != 8 {
		t.Fatalf("scale = %+v", s)
	}
}

func TestProvisionAndRelease(t *testing.T) {
	c := New(1)
	nodes, err := c.Provision("xeon-2005", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 {
		t.Fatalf("nodes = %d", len(nodes))
	}
	ids := map[string]bool{}
	for _, n := range nodes {
		if ids[n.ID()] {
			t.Fatalf("duplicate node id %s", n.ID())
		}
		ids[n.ID()] = true
		if !strings.HasPrefix(n.ID(), "xeon-2005-") {
			t.Fatalf("id = %s", n.ID())
		}
	}
	if got := len(c.Nodes()); got != 3 {
		t.Fatalf("leased = %d", got)
	}
	c.Release(nodes[0])
	if got := len(c.Nodes()); got != 2 {
		t.Fatalf("after release = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("using a released node should panic")
		}
	}()
	nodes[0].Run(Work{CPUOps: 1})
}

func TestProvisionErrors(t *testing.T) {
	c := New(1)
	if _, err := c.Provision("nope", 1); err == nil {
		t.Fatal("unknown profile should fail")
	}
	if _, err := c.Provision("xeon-2005", 0); err == nil {
		t.Fatal("zero nodes should fail")
	}
	if _, err := c.ProvisionProfile(&MachineProfile{}, 1); err == nil {
		t.Fatal("invalid profile should fail")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		c := New(42)
		nodes, _ := c.Provision("ec2-m4", 2)
		var out []float64
		for i := 0; i < 20; i++ {
			out = append(out, nodes[i%2].Run(Work{CPUOps: 1e8}))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSeedChangesJitter(t *testing.T) {
	sample := func(seed int64) float64 {
		c := New(seed)
		n, _ := c.Provision("ec2-m4", 1)
		return n[0].Run(Work{CPUOps: 1e9})
	}
	if sample(1) == sample(2) {
		t.Fatal("different seeds should give different jitter")
	}
}

func TestClockAdvances(t *testing.T) {
	c := New(7)
	nodes, _ := c.Provision("cloudlab-c220g1", 1)
	n := nodes[0]
	if n.Now() != 0 {
		t.Fatalf("initial clock = %v", n.Now())
	}
	d := n.Run(Work{CPUOps: 1e9})
	if d <= 0 || n.Now() != d {
		t.Fatalf("d = %v, clock = %v", d, n.Now())
	}
	n.AdvanceTo(d - 1) // never backwards
	if n.Now() != d {
		t.Fatal("AdvanceTo moved clock backwards")
	}
	n.Advance(1)
	if math.Abs(n.Now()-(d+1)) > 1e-12 {
		t.Fatalf("clock = %v", n.Now())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance should panic")
		}
	}()
	n.Advance(-1)
}

func TestBackgroundLoadSlowsDown(t *testing.T) {
	c := New(3)
	nodes, _ := c.Provision("probe-opteron", 2)
	quiet, noisy := nodes[0], nodes[1]
	if err := noisy.SetBackgroundLoad(0.5); err != nil {
		t.Fatal(err)
	}
	w := Work{CPUOps: 1e9}
	dq := quiet.Run(w)
	dn := noisy.Run(w)
	if dn < dq*1.8 {
		t.Fatalf("noisy %v should be ~2x quiet %v", dn, dq)
	}
	if err := noisy.SetBackgroundLoad(1.5); err == nil {
		t.Fatal("load > 0.95 should fail")
	}
	if err := noisy.SetBackgroundLoad(-0.1); err == nil {
		t.Fatal("negative load should fail")
	}
}

func TestRunParallelAmdahl(t *testing.T) {
	c := New(5)
	nodes, _ := c.Provision("cloudlab-c220g1", 1)
	n := nodes[0]
	w := Work{CPUOps: 1e10}
	serial := n.Profile().Duration(w)
	elapsed := n.RunParallel(w, 16, 0) // perfectly parallel
	if ratio := serial / elapsed; ratio < 14 || ratio > 18 {
		t.Fatalf("16-way speedup = %v", ratio)
	}
	elapsed = n.RunParallel(w, 16, 0.5) // half serial: max 2x
	if ratio := serial / elapsed; ratio > 2.0 {
		t.Fatalf("speedup with 50%% serial = %v, must be < 2", ratio)
	}
	// thread count clamped to cores, floor of 1
	e1 := n.RunParallel(w, 0, 0)
	if e1 < serial*0.9 {
		t.Fatalf("threads=0 should clamp to 1: %v vs %v", e1, serial)
	}
}

func TestMemoryAccounting(t *testing.T) {
	c := New(9)
	nodes, _ := c.Provision("xeon-2005", 1)
	n := nodes[0]
	ram := n.Profile().RAMBytes
	if err := n.Alloc(ram / 2); err != nil {
		t.Fatal(err)
	}
	if err := n.Alloc(ram); err == nil {
		t.Fatal("over-allocation should fail")
	}
	if n.UsedBytes() != ram/2 {
		t.Fatalf("used = %d", n.UsedBytes())
	}
	n.Free(ram) // over-free clamps at zero
	if n.UsedBytes() != 0 {
		t.Fatalf("used after free = %d", n.UsedBytes())
	}
	if err := n.Alloc(-1); err == nil {
		t.Fatal("negative alloc should fail")
	}
}

func TestFacts(t *testing.T) {
	c := New(11)
	nodes, _ := c.Provision("cloudlab-c220g1", 1)
	f := nodes[0].Facts()
	if f["machine"] != "cloudlab-c220g1" || f["cores"] != "16" {
		t.Fatalf("facts = %v", f)
	}
	if f["year"] != "2015" {
		t.Fatalf("year = %v", f["year"])
	}
}

func TestNetworkTransferTime(t *testing.T) {
	c := New(13)
	nodes, _ := c.Provision("cloudlab-c220g1", 2)
	net := NewNetwork(0)
	a, b := nodes[0], nodes[1]
	p := a.Profile()

	// tiny message: dominated by latency
	small := net.TransferTime(a, b, 1)
	if math.Abs(small-2*p.NICLatS) > p.NICLatS {
		t.Fatalf("small transfer = %v, want ~%v", small, 2*p.NICLatS)
	}
	// large message: dominated by bandwidth
	large := net.TransferTime(a, b, 1<<30)
	wantBW := float64(1<<30) / p.NICBWBps
	if math.Abs(large-wantBW)/wantBW > 0.01 {
		t.Fatalf("large transfer = %v, want ~%v", large, wantBW)
	}
	// loopback goes through memory, much faster than NIC
	loop := net.TransferTime(a, a, 1<<30)
	if loop >= large {
		t.Fatalf("loopback %v should beat network %v", loop, large)
	}
}

func TestNetworkHeterogeneousBottleneck(t *testing.T) {
	c := New(17)
	slow, _ := c.Provision("xeon-2005", 1)      // 1 GbE
	fast, _ := c.Provision("cloudlab-c8220", 1) // 40 GbE
	net := NewNetwork(0)
	tt := net.TransferTime(slow[0], fast[0], 1<<30)
	wantBW := float64(1<<30) / slow[0].Profile().NICBWBps
	if math.Abs(tt-wantBW)/wantBW > 0.01 {
		t.Fatalf("mixed transfer should bottleneck on slow NIC: %v vs %v", tt, wantBW)
	}
}

func TestSendAdvancesBothClocks(t *testing.T) {
	c := New(19)
	nodes, _ := c.Provision("cloudlab-c220g1", 2)
	net := NewNetwork(0)
	a, b := nodes[0], nodes[1]
	b.Advance(5) // receiver is ahead
	arrival := net.Send(a, b, 1<<20)
	if a.Now() <= 0 {
		t.Fatal("sender clock did not advance")
	}
	if b.Now() != 5 {
		t.Fatalf("receiver ahead should stay at 5, got %v", b.Now())
	}
	if arrival != a.Now() {
		t.Fatalf("arrival %v != sender clock %v", arrival, a.Now())
	}
	// now sender is behind receiver; send again, receiver unchanged
	a2 := net.Send(a, b, 1<<20)
	if b.Now() != 5 && b.Now() != a2 {
		t.Fatalf("receiver clock = %v", b.Now())
	}
}

func TestRDMAOneSided(t *testing.T) {
	c := New(23)
	nodes, _ := c.Provision("probe-opteron", 2)
	net := NewNetwork(0)
	caller, target := nodes[0], nodes[1]
	before := target.Now()
	d := net.RDMARead(caller, target, 1<<20)
	if d <= 0 {
		t.Fatalf("rdma read = %v", d)
	}
	if target.Now() != before {
		t.Fatal("one-sided read must not advance target clock")
	}
	if caller.Now() != d {
		t.Fatalf("caller clock = %v, want %v", caller.Now(), d)
	}
	dw := net.RDMAWrite(caller, target, 1<<20)
	if dw <= 0 {
		t.Fatal("rdma write should cost time")
	}
	// local rdma is memory-speed
	dl := net.RDMARead(caller, caller, 1<<20)
	if dl >= d {
		t.Fatalf("local access %v should beat remote %v", dl, d)
	}
}

func TestBarrier(t *testing.T) {
	c := New(29)
	nodes, _ := c.Provision("cloudlab-c220g1", 4)
	nodes[2].Advance(10)
	end := NewNetwork(0).Barrier(nodes)
	if end < 10 {
		t.Fatalf("barrier end = %v", end)
	}
	for _, n := range nodes {
		if n.Now() != end {
			t.Fatalf("node %s at %v, want %v", n.ID(), n.Now(), end)
		}
	}
	if MaxClock(nodes) != end {
		t.Fatalf("MaxClock = %v", MaxClock(nodes))
	}
	if got := NewNetwork(0).Barrier(nil); got != 0 {
		t.Fatalf("empty barrier = %v", got)
	}
}

func TestNewerMachineIsFaster(t *testing.T) {
	old := MustProfile("xeon-2005")
	new_ := MustProfile("cloudlab-c220g1")
	w := Work{CPUOps: 1e9, MemBytes: 1e8, BranchMiss: 1e6}
	if old.Duration(w) <= new_.Duration(w) {
		t.Fatal("2015 machine should beat 2005 machine on mixed work")
	}
}

// Property: Duration is additive and scales linearly.
func TestQuickDurationLinear(t *testing.T) {
	p := MustProfile("cloudlab-c220g1")
	f := func(aOps, bOps uint32, k uint8) bool {
		wa := Work{CPUOps: float64(aOps), MemBytes: float64(bOps)}
		wb := Work{BranchMiss: float64(bOps % 1000), Syscalls: float64(aOps % 1000)}
		sum := p.Duration(wa.Add(wb))
		parts := p.Duration(wa) + p.Duration(wb)
		if math.Abs(sum-parts) > 1e-9*(1+parts) {
			return false
		}
		kk := float64(k%7 + 1)
		scaled := p.Duration(wa.Scale(kk))
		if math.Abs(scaled-kk*p.Duration(wa)) > 1e-9*(1+scaled) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: node clock is monotone under any Run sequence.
func TestQuickClockMonotone(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New(99)
		nodes, _ := c.Provision("ec2-m4", 1)
		n := nodes[0]
		prev := 0.0
		for _, o := range ops {
			n.Run(Work{CPUOps: float64(o)})
			if n.Now() < prev {
				return false
			}
			prev = n.Now()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkCongestion(t *testing.T) {
	c := New(41)
	nodes, _ := c.Provision("cloudlab-c220g1", 4)
	// With a congestion factor, concurrent transfers inflate each other;
	// a lone transfer is unaffected.
	net := NewNetwork(0.5)
	lone := net.TransferTime(nodes[0], nodes[1], 1<<20)

	var wg sync.WaitGroup
	times := make([]float64, 8)
	for i := range times {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			times[i] = net.Send(nodes[i%2], nodes[2+(i%2)], 1<<20)
		}(i)
	}
	wg.Wait()
	// no assertion on exact inflation (scheduling-dependent), but every
	// transfer completed and the model never produced nonsense
	for i, tt := range times {
		if tt <= 0 {
			t.Fatalf("transfer %d = %v", i, tt)
		}
	}
	if lone <= 0 {
		t.Fatal("lone transfer must cost time")
	}
}
