// Package cluster simulates the bare-metal-as-a-service substrate the
// paper's experiments run on (CloudLab, PRObE, EC2, lab machines).
//
// Real hardware is unavailable in this reproduction, so machines are
// modeled by MachineProfiles: a small set of capability parameters (clock,
// IPC, vector width, memory bandwidth/latency, branch-miss cost, syscall
// cost, NIC latency/bandwidth, jitter) from which the duration of any
// piece of Work is computed deterministically. Relative performance
// between profiles — the quantity the Torpor and GassyFS experiments
// study — is therefore controlled and explainable, which is exactly the
// property bare-metal providers give the paper's authors.
//
// Nodes carry logical clocks (virtual seconds). Multi-node substrates
// (gasnet, mpi, orchestrate) advance these clocks using the network cost
// model, yielding a LogP-style discrete simulation that is reproducible
// bit-for-bit for a given seed.
package cluster

import (
	"fmt"
	"sort"
)

// MachineProfile describes the capabilities of one machine model.
// All rates are in base SI units (Hz, bytes/s, seconds).
type MachineProfile struct {
	Name string
	Year int // generation marker, used in reports

	Cores       int
	ClockHz     float64 // core clock
	IPC         float64 // sustained scalar instructions/cycle
	VectorWidth float64 // float64 lanes usable by vectorizable work
	MemBWBps    float64 // sustained memory bandwidth, bytes/s
	MemLatS     float64 // random-access latency, seconds
	BranchCostS float64 // cost of one mispredicted branch, seconds
	SyscallS    float64 // cost of one syscall, seconds
	DiskBWBps   float64 // sequential disk bandwidth, bytes/s
	DiskLatS    float64 // disk access latency, seconds

	NICLatS  float64 // one-way NIC+switch latency, seconds
	NICBWBps float64 // NIC bandwidth, bytes/s

	RAMBytes int64 // installed memory

	// JitterSigma controls run-to-run variability of this platform.
	// Bare-metal research testbeds are near zero; consolidated cloud
	// infrastructure is noticeably higher (the paper's motivation for
	// bare-metal-as-a-service).
	JitterSigma float64
}

// Validate checks that the profile is physically meaningful.
func (p *MachineProfile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("cluster: profile has no name")
	case p.Cores <= 0:
		return fmt.Errorf("cluster: profile %s: cores must be positive", p.Name)
	case p.ClockHz <= 0 || p.IPC <= 0 || p.VectorWidth <= 0:
		return fmt.Errorf("cluster: profile %s: CPU parameters must be positive", p.Name)
	case p.MemBWBps <= 0 || p.MemLatS < 0:
		return fmt.Errorf("cluster: profile %s: memory parameters invalid", p.Name)
	case p.NICBWBps <= 0 || p.NICLatS < 0:
		return fmt.Errorf("cluster: profile %s: NIC parameters invalid", p.Name)
	case p.JitterSigma < 0:
		return fmt.Errorf("cluster: profile %s: jitter must be non-negative", p.Name)
	}
	return nil
}

// Builtin machine profiles. The catalog mirrors the platforms named in the
// paper: a ~10-year-old lab Xeon (the Torpor baseline), CloudLab c220g1
// nodes, an EC2-style consolidated VM, and a PRObE-style opteron.
var builtinProfiles = map[string]*MachineProfile{
	// The "10 year old Xeon" in the authors' lab (Torpor baseline machine).
	"xeon-2005": {
		Name: "xeon-2005", Year: 2005,
		Cores: 4, ClockHz: 2.0e9, IPC: 1.0, VectorWidth: 2,
		MemBWBps: 6.4e9, MemLatS: 110e-9, BranchCostS: 18e-9,
		SyscallS: 500e-9, DiskBWBps: 60e6, DiskLatS: 8e-3,
		NICLatS: 50e-6, NICBWBps: 125e6, // 1 GbE
		RAMBytes: 8 << 30, JitterSigma: 0.01,
	},
	// CloudLab Wisconsin c220g1 (Haswell E5-2630 v3 era).
	"cloudlab-c220g1": {
		Name: "cloudlab-c220g1", Year: 2015,
		Cores: 16, ClockHz: 2.4e9, IPC: 1.9, VectorWidth: 8,
		MemBWBps: 21e9, MemLatS: 85e-9, BranchCostS: 7e-9,
		SyscallS: 150e-9, DiskBWBps: 500e6, DiskLatS: 0.1e-3,
		NICLatS: 15e-6, NICBWBps: 1.25e9, // 10 GbE
		RAMBytes: 128 << 30, JitterSigma: 0.01,
	},
	// CloudLab Clemson c8220 (Ivy Bridge, bigger memory).
	"cloudlab-c8220": {
		Name: "cloudlab-c8220", Year: 2014,
		Cores: 20, ClockHz: 2.2e9, IPC: 1.7, VectorWidth: 4,
		MemBWBps: 18e9, MemLatS: 90e-9, BranchCostS: 8e-9,
		SyscallS: 170e-9, DiskBWBps: 400e6, DiskLatS: 0.12e-3,
		NICLatS: 12e-6, NICBWBps: 5e9, // 40 GbE
		RAMBytes: 256 << 30, JitterSigma: 0.01,
	},
	// Consolidated cloud VM: decent hardware, high variability
	// (the "hypervisor tax" and noisy neighbours the paper discusses).
	"ec2-m4": {
		Name: "ec2-m4", Year: 2015,
		Cores: 8, ClockHz: 2.4e9, IPC: 1.8, VectorWidth: 8,
		MemBWBps: 19e9, MemLatS: 95e-9, BranchCostS: 7.5e-9,
		SyscallS: 260e-9, DiskBWBps: 250e6, DiskLatS: 0.3e-3,
		NICLatS: 60e-6, NICBWBps: 600e6,
		RAMBytes: 64 << 30, JitterSigma: 0.08,
	},
	// PRObE-style AMD opteron HPC node with fast interconnect.
	"probe-opteron": {
		Name: "probe-opteron", Year: 2012,
		Cores: 64, ClockHz: 2.1e9, IPC: 1.4, VectorWidth: 4,
		MemBWBps: 15e9, MemLatS: 100e-9, BranchCostS: 10e-9,
		SyscallS: 200e-9, DiskBWBps: 120e6, DiskLatS: 5e-3,
		NICLatS: 3e-6, NICBWBps: 4e9, // IB QDR-ish
		RAMBytes: 128 << 30, JitterSigma: 0.005,
	},
}

// Profile returns a copy of a builtin machine profile.
func Profile(name string) (*MachineProfile, error) {
	p, ok := builtinProfiles[name]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown machine profile %q (have %v)", name, ProfileNames())
	}
	cp := *p
	return &cp, nil
}

// MustProfile is Profile that panics on unknown names; for tests and
// statically-known experiment configs.
func MustProfile(name string) *MachineProfile {
	p, err := Profile(name)
	if err != nil {
		panic(err)
	}
	return p
}

// ProfileNames lists the builtin profile names, sorted.
func ProfileNames() []string {
	names := make([]string, 0, len(builtinProfiles))
	for n := range builtinProfiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Work describes resource demands of a computation in hardware-neutral
// units. Durations are derived from a profile's capabilities; components
// are summed (no overlap), which keeps the model simple and monotone.
type Work struct {
	CPUOps     float64 // scalar ALU/integer operations
	VecOps     float64 // vectorizable floating-point operations
	MemBytes   float64 // bytes streamed through memory
	RandAccess float64 // dependent random memory accesses
	BranchMiss float64 // mispredicted branches
	Syscalls   float64 // kernel crossings
	DiskBytes  float64 // bytes of sequential disk I/O
	DiskOps    float64 // disk operations (seeks)
}

// Add returns the sum of two work descriptions.
func (w Work) Add(o Work) Work {
	return Work{
		CPUOps:     w.CPUOps + o.CPUOps,
		VecOps:     w.VecOps + o.VecOps,
		MemBytes:   w.MemBytes + o.MemBytes,
		RandAccess: w.RandAccess + o.RandAccess,
		BranchMiss: w.BranchMiss + o.BranchMiss,
		Syscalls:   w.Syscalls + o.Syscalls,
		DiskBytes:  w.DiskBytes + o.DiskBytes,
		DiskOps:    w.DiskOps + o.DiskOps,
	}
}

// Scale returns the work multiplied by k.
func (w Work) Scale(k float64) Work {
	return Work{
		CPUOps: w.CPUOps * k, VecOps: w.VecOps * k,
		MemBytes: w.MemBytes * k, RandAccess: w.RandAccess * k,
		BranchMiss: w.BranchMiss * k, Syscalls: w.Syscalls * k,
		DiskBytes: w.DiskBytes * k, DiskOps: w.DiskOps * k,
	}
}

// Duration computes how long the work takes on this profile with a single
// core and no contention, in seconds.
func (p *MachineProfile) Duration(w Work) float64 {
	t := 0.0
	t += w.CPUOps / (p.ClockHz * p.IPC)
	t += w.VecOps / (p.ClockHz * p.IPC * p.VectorWidth)
	t += w.MemBytes / p.MemBWBps
	t += w.RandAccess * p.MemLatS
	t += w.BranchMiss * p.BranchCostS
	t += w.Syscalls * p.SyscallS
	t += w.DiskBytes / p.DiskBWBps
	t += w.DiskOps * p.DiskLatS
	return t
}
