package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
)

// Cluster is a pool of simulated machines, provisioned by profile name
// the way CloudLab or PRObE lease bare-metal nodes.
type Cluster struct {
	mu    sync.Mutex
	seed  int64
	next  int
	nodes map[string]*Node
}

// New creates an empty cluster. All stochastic behaviour (jitter, noise)
// derives from seed, so a cluster is reproducible bit-for-bit.
func New(seed int64) *Cluster {
	return &Cluster{seed: seed, nodes: make(map[string]*Node)}
}

// Provision leases n fresh nodes of the named builtin profile.
func (c *Cluster) Provision(profile string, n int) ([]*Node, error) {
	p, err := Profile(profile)
	if err != nil {
		return nil, err
	}
	return c.ProvisionProfile(p, n)
}

// ProvisionProfile leases n fresh nodes with an explicit profile.
func (c *Cluster) ProvisionProfile(p *MachineProfile, n int) ([]*Node, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("cluster: cannot provision %d nodes", n)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Node, n)
	for i := range out {
		id := fmt.Sprintf("%s-%d", p.Name, c.next)
		c.next++
		node := &Node{
			id:      id,
			profile: p,
			rng:     rand.New(rand.NewSource(c.seed ^ int64(c.next)*0x5851f42d4c957f2d)),
		}
		c.nodes[id] = node
		out[i] = node
	}
	return out, nil
}

// Release returns nodes to the provider; using a released node panics.
func (c *Cluster) Release(nodes ...*Node) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range nodes {
		n.released = true
		delete(c.nodes, n.id)
	}
}

// Nodes lists currently leased nodes sorted by id.
func (c *Cluster) Nodes() []*Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Node is one simulated machine with a logical clock.
type Node struct {
	mu        sync.Mutex
	id        string
	profile   *MachineProfile
	clock     float64 // virtual seconds since provisioning
	bgLoad    float64 // background ("noisy neighbour") load in [0,1)
	rng       *rand.Rand
	released  bool
	usedBytes int64 // allocated simulated RAM
}

// ID returns the node's identifier.
func (n *Node) ID() string { return n.id }

// Profile returns the node's machine profile.
func (n *Node) Profile() *MachineProfile { return n.profile }

// Now returns the node's logical clock in virtual seconds.
func (n *Node) Now() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.clock
}

// AdvanceTo moves the clock forward to at least t (never backwards).
func (n *Node) AdvanceTo(t float64) {
	n.mu.Lock()
	if t > n.clock {
		n.clock = t
	}
	n.mu.Unlock()
}

// Advance moves the clock forward by d seconds (d must be >= 0).
func (n *Node) Advance(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("cluster: negative advance %g on %s", d, n.id))
	}
	n.mu.Lock()
	n.clock += d
	n.mu.Unlock()
}

// SetBackgroundLoad models noisy neighbours: a fraction of the machine's
// resources consumed by other tenants. load must be in [0, 0.95].
func (n *Node) SetBackgroundLoad(load float64) error {
	if load < 0 || load > 0.95 {
		return fmt.Errorf("cluster: background load %g out of range [0,0.95]", load)
	}
	n.mu.Lock()
	n.bgLoad = load
	n.mu.Unlock()
	return nil
}

// BackgroundLoad reports the current noisy-neighbour load.
func (n *Node) BackgroundLoad() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.bgLoad
}

// jitterFactor draws a multiplicative slowdown >= 1 from the node's RNG.
// Half-normal: most runs are near nominal, occasional runs are slower —
// the shape real systems show.
func (n *Node) jitterFactor() float64 {
	sigma := n.profile.JitterSigma
	if sigma == 0 {
		return 1
	}
	return 1 + math.Abs(n.rng.NormFloat64())*sigma
}

// Run executes work on the node: the duration is computed from the
// profile, inflated by background load and jitter, the clock advances,
// and the elapsed virtual seconds are returned.
func (n *Node) Run(w Work) float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.released {
		panic(fmt.Sprintf("cluster: node %s used after release", n.id))
	}
	d := n.profile.Duration(w)
	if n.bgLoad > 0 {
		d /= 1 - n.bgLoad
	}
	sigma := n.profile.JitterSigma
	if sigma > 0 {
		d *= 1 + math.Abs(n.rng.NormFloat64())*sigma
	}
	n.clock += d
	return d
}

// RunParallel executes work that parallelizes over up to `threads` cores
// following Amdahl with the given serial fraction. Returns elapsed time.
func (n *Node) RunParallel(w Work, threads int, serialFrac float64) float64 {
	if threads < 1 {
		threads = 1
	}
	if threads > n.profile.Cores {
		threads = n.profile.Cores
	}
	if serialFrac < 0 {
		serialFrac = 0
	}
	if serialFrac > 1 {
		serialFrac = 1
	}
	speedup := 1 / (serialFrac + (1-serialFrac)/float64(threads))
	serial := n.profile.Duration(w)
	d := serial / speedup
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.released {
		panic(fmt.Sprintf("cluster: node %s used after release", n.id))
	}
	if n.bgLoad > 0 {
		d /= 1 - n.bgLoad
	}
	if sigma := n.profile.JitterSigma; sigma > 0 {
		d *= 1 + math.Abs(n.rng.NormFloat64())*sigma
	}
	n.clock += d
	return d
}

// Alloc reserves simulated RAM on the node (for GassyFS segments).
func (n *Node) Alloc(bytes int64) error {
	if bytes < 0 {
		return fmt.Errorf("cluster: negative allocation")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.usedBytes+bytes > n.profile.RAMBytes {
		return fmt.Errorf("cluster: node %s out of memory: used %d + %d > %d",
			n.id, n.usedBytes, bytes, n.profile.RAMBytes)
	}
	n.usedBytes += bytes
	return nil
}

// Free releases previously allocated simulated RAM.
func (n *Node) Free(bytes int64) {
	n.mu.Lock()
	n.usedBytes -= bytes
	if n.usedBytes < 0 {
		n.usedBytes = 0
	}
	n.mu.Unlock()
}

// UsedBytes reports currently allocated simulated RAM.
func (n *Node) UsedBytes() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.usedBytes
}

// Facts returns the "facts" an orchestration tool would gather from the
// machine (the paper's baseline-sanitization input).
func (n *Node) Facts() map[string]string {
	p := n.profile
	return map[string]string{
		"node_id":     n.id,
		"machine":     p.Name,
		"year":        fmt.Sprint(p.Year),
		"cores":       fmt.Sprint(p.Cores),
		"clock_ghz":   fmt.Sprintf("%.2f", p.ClockHz/1e9),
		"mem_gb":      fmt.Sprint(p.RAMBytes >> 30),
		"mem_bw_gbps": fmt.Sprintf("%.1f", p.MemBWBps/1e9),
		"nic_gbps":    fmt.Sprintf("%.1f", p.NICBWBps*8/1e9),
	}
}

// Network models the interconnect between nodes: a latency + bandwidth
// (alpha-beta) cost model with optional per-transfer congestion.
type Network struct {
	mu sync.Mutex
	// CongestionFactor inflates transfer time by (1 + cf*(active-1))
	// where active counts concurrent transfers; 0 disables congestion.
	CongestionFactor float64
	active           int
}

// NewNetwork creates a network with the given congestion factor.
func NewNetwork(congestion float64) *Network {
	return &Network{CongestionFactor: congestion}
}

// TransferTime returns the virtual seconds needed to move `bytes` from
// src to dst without advancing any clock.
func (net *Network) TransferTime(src, dst *Node, bytes int64) float64 {
	if src == dst {
		// Loopback: memory copy at the node's memory bandwidth.
		return float64(bytes) / src.profile.MemBWBps
	}
	lat := src.profile.NICLatS + dst.profile.NICLatS
	bw := math.Min(src.profile.NICBWBps, dst.profile.NICBWBps)
	t := lat + float64(bytes)/bw
	net.mu.Lock()
	if net.CongestionFactor > 0 && net.active > 0 {
		t *= 1 + net.CongestionFactor*float64(net.active)
	}
	net.mu.Unlock()
	return t
}

// Send moves bytes from src to dst: src blocks for the transfer, and
// dst's clock is advanced to the arrival time (message-passing send).
// Returns the arrival time on dst's clock.
func (net *Network) Send(src, dst *Node, bytes int64) float64 {
	net.mu.Lock()
	net.active++
	net.mu.Unlock()
	t := net.TransferTime(src, dst, bytes)
	net.mu.Lock()
	net.active--
	net.mu.Unlock()
	src.Advance(t)
	arrival := src.Now()
	dst.AdvanceTo(arrival)
	return arrival
}

// RDMACost returns the virtual seconds a one-sided transfer of `bytes`
// between the two nodes takes, without advancing any clock. The cost is
// a pure function of the endpoints and the size (no RNG, no congestion
// state), which is what lets parallel engines compute transfer costs on
// worker goroutines and apply them to clocks later in a deterministic
// order.
func (net *Network) RDMACost(caller, target *Node, bytes int64) float64 {
	if caller == target {
		return float64(bytes) / caller.profile.MemBWBps
	}
	rtt := 2 * (caller.profile.NICLatS + target.profile.NICLatS)
	bw := math.Min(caller.profile.NICBWBps, target.profile.NICBWBps)
	return rtt + float64(bytes)/bw
}

// RDMARead models a one-sided get: the caller blocks for a round trip
// plus payload; the target's clock is untouched (one-sided semantics).
func (net *Network) RDMARead(caller, target *Node, bytes int64) float64 {
	t := net.RDMACost(caller, target, bytes)
	caller.Advance(t)
	return t
}

// RDMAWrite models a one-sided put (same cost shape as a get).
func (net *Network) RDMAWrite(caller, target *Node, bytes int64) float64 {
	return net.RDMARead(caller, target, bytes)
}

// Barrier synchronizes the nodes: all clocks advance to the maximum plus
// a log2(n) latency term, the standard tree-barrier cost.
func (net *Network) Barrier(nodes []*Node) float64 {
	if len(nodes) == 0 {
		return 0
	}
	maxT := nodes[0].Now()
	maxLat := 0.0
	for _, n := range nodes {
		if t := n.Now(); t > maxT {
			maxT = t
		}
		if l := n.profile.NICLatS; l > maxLat {
			maxLat = l
		}
	}
	rounds := math.Ceil(math.Log2(float64(len(nodes))))
	if rounds < 1 {
		rounds = 1
	}
	end := maxT + 2*maxLat*rounds
	for _, n := range nodes {
		n.AdvanceTo(end)
	}
	return end
}

// MaxClock returns the maximum logical clock across nodes — the makespan
// of a distributed computation.
func MaxClock(nodes []*Node) float64 {
	m := 0.0
	for _, n := range nodes {
		if t := n.Now(); t > m {
			m = t
		}
	}
	return m
}
