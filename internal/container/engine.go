package container

import (
	"fmt"
	"sort"
	"strings"
)

// ExecContext is what a command handler ("binary") sees inside a
// container: a mutable view of the filesystem, the environment, its
// arguments and an output buffer.
type ExecContext struct {
	FS     map[string][]byte
	Env    map[string]string
	Args   []string
	Dir    string
	stdout strings.Builder
}

// Printf writes to the container's stdout.
func (c *ExecContext) Printf(format string, args ...any) {
	fmt.Fprintf(&c.stdout, format, args...)
}

// Path resolves a possibly relative path against the working directory.
func (c *ExecContext) Path(p string) string {
	if strings.HasPrefix(p, "/") {
		return strings.TrimPrefix(p, "/")
	}
	if c.Dir == "" || c.Dir == "/" {
		return p
	}
	return strings.TrimPrefix(c.Dir, "/") + "/" + p
}

// CommandFunc is a registered in-container binary.
type CommandFunc func(*ExecContext) error

// Engine builds and runs containers. The command table plays the role of
// the binaries a real image would carry.
type Engine struct {
	registry *Registry
	commands map[string]CommandFunc
}

// NewEngine creates an engine bound to a registry, with a set of basic
// "coreutils" preinstalled (echo, touch, cp, rm, mkdir-p no-op, cat).
func NewEngine(reg *Registry) *Engine {
	e := &Engine{registry: reg, commands: make(map[string]CommandFunc)}
	e.RegisterCommand("echo", func(c *ExecContext) error {
		c.Printf("%s\n", strings.Join(c.Args, " "))
		return nil
	})
	e.RegisterCommand("touch", func(c *ExecContext) error {
		for _, a := range c.Args {
			p := c.Path(a)
			if _, ok := c.FS[p]; !ok {
				c.FS[p] = []byte{}
			}
		}
		return nil
	})
	e.RegisterCommand("cp", func(c *ExecContext) error {
		if len(c.Args) != 2 {
			return fmt.Errorf("cp: want 2 args, got %d", len(c.Args))
		}
		src, ok := c.FS[c.Path(c.Args[0])]
		if !ok {
			return fmt.Errorf("cp: %s: no such file", c.Args[0])
		}
		c.FS[c.Path(c.Args[1])] = append([]byte(nil), src...)
		return nil
	})
	e.RegisterCommand("rm", func(c *ExecContext) error {
		for _, a := range c.Args {
			p := c.Path(a)
			if _, ok := c.FS[p]; !ok {
				return fmt.Errorf("rm: %s: no such file", a)
			}
			delete(c.FS, p)
		}
		return nil
	})
	e.RegisterCommand("cat", func(c *ExecContext) error {
		for _, a := range c.Args {
			content, ok := c.FS[c.Path(a)]
			if !ok {
				return fmt.Errorf("cat: %s: no such file", a)
			}
			c.stdout.Write(content)
		}
		return nil
	})
	e.RegisterCommand("true", func(*ExecContext) error { return nil })
	e.RegisterCommand("false", func(*ExecContext) error { return fmt.Errorf("false: exit 1") })
	return e
}

// RegisterCommand installs a named binary into the engine.
func (e *Engine) RegisterCommand(name string, fn CommandFunc) {
	e.commands[name] = fn
}

// Commands lists registered command names, sorted.
func (e *Engine) Commands() []string {
	out := make([]string, 0, len(e.commands))
	for c := range e.commands {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Container is one running (or exited) instance of an image.
type Container struct {
	ID      string
	Image   *Image
	fs      map[string][]byte // mutable upper layer union
	env     map[string]string
	workdir string
	logs    strings.Builder
	exited  bool
}

// Run instantiates an image and executes the given command (or the image
// default). The returned container holds logs and the mutated upper
// filesystem; the image itself is never modified.
func (e *Engine) Run(imageRef string, cmd ...string) (*Container, error) {
	img, err := e.registry.Pull(imageRef)
	if err != nil {
		return nil, err
	}
	return e.RunImage(img, cmd...)
}

// RunImage is Run for an image object not in the registry.
func (e *Engine) RunImage(img *Image, cmd ...string) (*Container, error) {
	if len(cmd) == 0 {
		cmd = img.Cmd
	}
	if len(cmd) == 0 {
		return nil, fmt.Errorf("container: image %s has no command", img.Ref())
	}
	ctr := &Container{
		ID:      img.ID()[:12] + "-run",
		Image:   img,
		fs:      img.RootFS(),
		env:     map[string]string{},
		workdir: img.Workdir,
	}
	for k, v := range img.Env {
		ctr.env[k] = v
	}
	if err := e.exec(ctr, cmd); err != nil {
		ctr.exited = true
		return ctr, err
	}
	ctr.exited = true
	return ctr, nil
}

func (e *Engine) exec(ctr *Container, cmd []string) error {
	name := cmd[0]
	fn, ok := e.commands[name]
	if !ok {
		return fmt.Errorf("container: %s: command not found (is the binary in the image's command table?)", name)
	}
	ctx := &ExecContext{FS: ctr.fs, Env: ctr.env, Args: cmd[1:], Dir: ctr.workdir}
	err := fn(ctx)
	ctr.logs.WriteString(ctx.stdout.String())
	return err
}

// Exec runs an additional command inside an existing container (docker
// exec): the command sees the container's current filesystem and
// environment, and its changes persist in the container's upper layer
// (but never in the image).
func (e *Engine) Exec(ctr *Container, cmd ...string) error {
	if len(cmd) == 0 {
		return fmt.Errorf("container: exec needs a command")
	}
	return e.exec(ctr, cmd)
}

// Logs returns everything the container wrote to stdout.
func (ctr *Container) Logs() string { return ctr.logs.String() }

// Inspect renders image metadata (docker inspect, abbreviated).
func (img *Image) Inspect() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "image %s (id %s)\n", img.Ref(), img.ID()[:12])
	fmt.Fprintf(&sb, "layers: %d, stored bytes: %d\n", len(img.Layers), img.Size())
	envKeys := make([]string, 0, len(img.Env))
	for k := range img.Env {
		envKeys = append(envKeys, k)
	}
	sort.Strings(envKeys)
	for _, k := range envKeys {
		fmt.Fprintf(&sb, "env %s=%s\n", k, img.Env[k])
	}
	if len(img.Cmd) > 0 {
		fmt.Fprintf(&sb, "cmd %s\n", strings.Join(img.Cmd, " "))
	}
	if img.Workdir != "" {
		fmt.Fprintf(&sb, "workdir %s\n", img.Workdir)
	}
	labelKeys := make([]string, 0, len(img.Labels))
	for k := range img.Labels {
		labelKeys = append(labelKeys, k)
	}
	sort.Strings(labelKeys)
	for _, k := range labelKeys {
		fmt.Fprintf(&sb, "label %s=%s\n", k, img.Labels[k])
	}
	return sb.String()
}

// ReadFile reads from the container's (possibly mutated) filesystem.
func (ctr *Container) ReadFile(path string) ([]byte, error) {
	p := strings.TrimPrefix(path, "/")
	content, ok := ctr.fs[p]
	if !ok {
		return nil, fmt.Errorf("container: %s: no such file", path)
	}
	return content, nil
}

// Commit captures the container's changes relative to its image as a new
// image layer — the only way container-side changes persist (immutable
// infrastructure).
func (ctr *Container) Commit(name, tag string) *Image {
	base := ctr.Image.RootFS()
	delta := NewLayer()
	for p, c := range ctr.fs {
		if old, ok := base[p]; !ok || string(old) != string(c) {
			delta.Files[p] = c
		}
	}
	for p := range base {
		if _, ok := ctr.fs[p]; !ok {
			delta.Files[p] = nil // whiteout
		}
	}
	img := ctr.Image.clone()
	img.Name, img.Tag = name, tag
	img.Layers = append(img.Layers, delta)
	return img
}
