// Package container implements the packaging substrate of the Popper
// convention: a Docker-like engine with layered, content-addressed images,
// a registry, a Buildfile (Dockerfile-subset) builder and a container
// runtime.
//
// The paper's discussion section stresses two properties this package
// preserves: images are *immutable infrastructure* (changes made inside a
// running container vanish unless explicitly committed to a new image),
// and image layering ("chaining") has a real cost that communities must
// balance against orchestration-side installation. Both behaviours are
// observable here: the runtime unions layers copy-on-write, and the
// ablation benchmarks compare chained against flattened images.
//
// Processes cannot be executed in this offline reproduction, so "RUN"
// commands resolve to registered Go handlers (the engine's "binaries"),
// which receive the container filesystem, environment and arguments —
// the same contract a shell would have.
package container

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// Layer is one filesystem delta: path -> content. A nil content is a
// whiteout (the path is deleted by this layer).
type Layer struct {
	Files map[string][]byte
}

// NewLayer creates an empty layer.
func NewLayer() Layer { return Layer{Files: make(map[string][]byte)} }

// ID returns the content hash of the layer.
func (l Layer) ID() string {
	paths := make([]string, 0, len(l.Files))
	for p := range l.Files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	h := sha256.New()
	for _, p := range paths {
		h.Write([]byte(p))
		h.Write([]byte{0})
		if l.Files[p] == nil {
			h.Write([]byte("\x00whiteout\x00"))
		} else {
			h.Write(l.Files[p])
		}
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Image is an ordered stack of layers plus run metadata.
type Image struct {
	Name    string // repository name, e.g. "gassyfs"
	Tag     string // e.g. "v1"
	Layers  []Layer
	Env     map[string]string
	Cmd     []string // default command
	Workdir string
	Labels  map[string]string
}

// ID returns the content-addressed image identifier.
func (img *Image) ID() string {
	h := sha256.New()
	for _, l := range img.Layers {
		h.Write([]byte(l.ID()))
	}
	envKeys := make([]string, 0, len(img.Env))
	for k := range img.Env {
		envKeys = append(envKeys, k)
	}
	sort.Strings(envKeys)
	for _, k := range envKeys {
		fmt.Fprintf(h, "env %s=%s\n", k, img.Env[k])
	}
	fmt.Fprintf(h, "cmd %s\n", strings.Join(img.Cmd, " "))
	fmt.Fprintf(h, "workdir %s\n", img.Workdir)
	return hex.EncodeToString(h.Sum(nil))
}

// Ref returns the "name:tag" reference.
func (img *Image) Ref() string { return img.Name + ":" + img.Tag }

// clone deep-copies the image (layers share file buffers, which are
// treated as immutable).
func (img *Image) clone() *Image {
	cp := &Image{
		Name: img.Name, Tag: img.Tag, Workdir: img.Workdir,
		Layers: append([]Layer(nil), img.Layers...),
		Env:    make(map[string]string, len(img.Env)),
		Labels: make(map[string]string, len(img.Labels)),
		Cmd:    append([]string(nil), img.Cmd...),
	}
	for k, v := range img.Env {
		cp.Env[k] = v
	}
	for k, v := range img.Labels {
		cp.Labels[k] = v
	}
	return cp
}

// Flatten collapses all layers into a single layer — the "flat image"
// alternative to chaining that the discussion section weighs.
func (img *Image) Flatten() *Image {
	merged := NewLayer()
	for _, l := range img.Layers {
		for p, c := range l.Files {
			if c == nil {
				delete(merged.Files, p)
			} else {
				merged.Files[p] = c
			}
		}
	}
	out := img.clone()
	out.Layers = []Layer{merged}
	return out
}

// RootFS computes the effective filesystem of the image.
func (img *Image) RootFS() map[string][]byte {
	fs := make(map[string][]byte)
	for _, l := range img.Layers {
		for p, c := range l.Files {
			if c == nil {
				delete(fs, p)
			} else {
				fs[p] = c
			}
		}
	}
	return fs
}

// Size returns the total bytes stored across layers (including shadowed
// files — the cost of chaining).
func (img *Image) Size() int64 {
	var n int64
	for _, l := range img.Layers {
		for _, c := range l.Files {
			n += int64(len(c))
		}
	}
	return n
}

// Registry stores images by "name:tag" reference; pushes of the same
// reference with different content are rejected, keeping references
// immutable as the convention requires.
type Registry struct {
	images map[string]*Image
}

// NewRegistry creates an empty image registry.
func NewRegistry() *Registry { return &Registry{images: make(map[string]*Image)} }

// Push uploads an image. Re-pushing identical content is idempotent.
func (r *Registry) Push(img *Image) error {
	if img.Name == "" || img.Tag == "" {
		return fmt.Errorf("container: image needs name and tag")
	}
	ref := img.Ref()
	if existing, ok := r.images[ref]; ok {
		if existing.ID() == img.ID() {
			return nil
		}
		return fmt.Errorf("container: %s already pushed with different content", ref)
	}
	r.images[ref] = img.clone()
	return nil
}

// Pull retrieves an image by reference ("name" defaults to tag "latest").
func (r *Registry) Pull(ref string) (*Image, error) {
	if !strings.Contains(ref, ":") {
		ref += ":latest"
	}
	img, ok := r.images[ref]
	if !ok {
		return nil, fmt.Errorf("container: image %q not in registry", ref)
	}
	return img.clone(), nil
}

// List returns all references, sorted.
func (r *Registry) List() []string {
	out := make([]string, 0, len(r.images))
	for ref := range r.images {
		out = append(out, ref)
	}
	sort.Strings(out)
	return out
}
