package container

import (
	"fmt"
	"strings"
)

// Buildfile is the Dockerfile subset understood by the builder:
//
//	FROM <ref> | FROM scratch
//	COPY <context-path> <image-path>
//	RUN <command> [args...]
//	ENV <key> <value>
//	WORKDIR <path>
//	LABEL <key> <value>
//	CMD <command> [args...]
//
// Comments start with '#'. Each RUN executes a registered engine command
// against the image filesystem built so far; its delta becomes a new
// layer, exactly like Docker's layer-per-instruction model.
type Buildfile struct {
	Instructions []Instruction
}

// Instruction is one parsed Buildfile line.
type Instruction struct {
	Op   string
	Args []string
	Line int
}

// ParseBuildfile parses Buildfile text.
func ParseBuildfile(src string) (*Buildfile, error) {
	var bf Buildfile
	for i, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		op := strings.ToUpper(fields[0])
		args := fields[1:]
		switch op {
		case "FROM":
			if len(args) != 1 {
				return nil, fmt.Errorf("container: line %d: FROM wants 1 arg", i+1)
			}
		case "COPY":
			if len(args) != 2 {
				return nil, fmt.Errorf("container: line %d: COPY wants 2 args", i+1)
			}
		case "ENV", "LABEL":
			if len(args) != 2 {
				return nil, fmt.Errorf("container: line %d: %s wants 2 args", i+1, op)
			}
		case "WORKDIR":
			if len(args) != 1 {
				return nil, fmt.Errorf("container: line %d: WORKDIR wants 1 arg", i+1)
			}
		case "RUN", "CMD":
			if len(args) == 0 {
				return nil, fmt.Errorf("container: line %d: %s wants a command", i+1, op)
			}
		default:
			return nil, fmt.Errorf("container: line %d: unknown instruction %q", i+1, fields[0])
		}
		bf.Instructions = append(bf.Instructions, Instruction{Op: op, Args: args, Line: i + 1})
	}
	if len(bf.Instructions) == 0 || bf.Instructions[0].Op != "FROM" {
		return nil, fmt.Errorf("container: Buildfile must start with FROM")
	}
	return &bf, nil
}

// Build executes a Buildfile against a build context (path -> content)
// and produces a tagged image. Every COPY and RUN instruction creates one
// layer.
func (e *Engine) Build(src string, context map[string][]byte, name, tag string) (*Image, error) {
	bf, err := ParseBuildfile(src)
	if err != nil {
		return nil, err
	}
	var img *Image
	for _, ins := range bf.Instructions {
		switch ins.Op {
		case "FROM":
			if img != nil {
				return nil, fmt.Errorf("container: line %d: multiple FROM not supported", ins.Line)
			}
			if ins.Args[0] == "scratch" {
				img = &Image{Name: name, Tag: tag,
					Env: map[string]string{}, Labels: map[string]string{}}
			} else {
				base, err := e.registry.Pull(ins.Args[0])
				if err != nil {
					return nil, fmt.Errorf("container: line %d: %w", ins.Line, err)
				}
				img = base
				img.Name, img.Tag = name, tag
			}
		case "COPY":
			srcPath, dst := ins.Args[0], strings.TrimPrefix(ins.Args[1], "/")
			layer := NewLayer()
			matched := false
			if srcPath == "." { // whole build context
				for p, content := range context {
					layer.Files[strings.TrimSuffix(dst, "/")+"/"+p] = content
					matched = true
				}
			} else if content, ok := context[srcPath]; ok {
				layer.Files[dst] = content
				matched = true
			} else {
				// directory copy: srcPath/ prefix
				prefix := strings.TrimSuffix(srcPath, "/") + "/"
				for p, content := range context {
					if strings.HasPrefix(p, prefix) {
						layer.Files[strings.TrimSuffix(dst, "/")+"/"+strings.TrimPrefix(p, prefix)] = content
						matched = true
					}
				}
			}
			if !matched {
				return nil, fmt.Errorf("container: line %d: COPY %s: not in build context", ins.Line, srcPath)
			}
			img.Layers = append(img.Layers, layer)
		case "ENV":
			img.Env[ins.Args[0]] = ins.Args[1]
		case "LABEL":
			img.Labels[ins.Args[0]] = ins.Args[1]
		case "WORKDIR":
			img.Workdir = ins.Args[0]
		case "CMD":
			img.Cmd = append([]string(nil), ins.Args...)
		case "RUN":
			fn, ok := e.commands[ins.Args[0]]
			if !ok {
				return nil, fmt.Errorf("container: line %d: RUN %s: command not found", ins.Line, ins.Args[0])
			}
			before := img.RootFS()
			fs := img.RootFS()
			ctx := &ExecContext{FS: fs, Env: img.Env, Args: ins.Args[1:], Dir: img.Workdir}
			if err := fn(ctx); err != nil {
				return nil, fmt.Errorf("container: line %d: RUN %s: %w", ins.Line, ins.Args[0], err)
			}
			delta := NewLayer()
			for p, c := range fs {
				if old, ok := before[p]; !ok || string(old) != string(c) {
					delta.Files[p] = c
				}
			}
			for p := range before {
				if _, ok := fs[p]; !ok {
					delta.Files[p] = nil
				}
			}
			img.Layers = append(img.Layers, delta)
		}
	}
	return img, nil
}

// BuildAndPush builds an image and pushes it to the engine's registry.
func (e *Engine) BuildAndPush(src string, context map[string][]byte, name, tag string) (*Image, error) {
	img, err := e.Build(src, context, name, tag)
	if err != nil {
		return nil, err
	}
	if err := e.registry.Push(img); err != nil {
		return nil, err
	}
	return img, nil
}
