package container

import (
	"bytes"
	"compress/gzip"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
)

// Image serialization (docker save / docker load): an image becomes a
// single artifact that can be published to the dataset store and pulled
// by a reader — the convention's "reference a packaged experiment by an
// immutable identifier" story for binaries.

type exportLayer struct {
	// Files maps path to base64 content; Whiteouts lists deleted paths.
	Files     map[string]string `json:"files"`
	Whiteouts []string          `json:"whiteouts,omitempty"`
}

type exportImage struct {
	Name    string            `json:"name"`
	Tag     string            `json:"tag"`
	Env     map[string]string `json:"env,omitempty"`
	Cmd     []string          `json:"cmd,omitempty"`
	Workdir string            `json:"workdir,omitempty"`
	Labels  map[string]string `json:"labels,omitempty"`
	Layers  []exportLayer     `json:"layers"`
	// ID pins the content so imports detect corruption.
	ID string `json:"id"`
}

// Export serializes the image as a gzipped JSON archive.
func (img *Image) Export() ([]byte, error) {
	out := exportImage{
		Name: img.Name, Tag: img.Tag, Env: img.Env, Cmd: img.Cmd,
		Workdir: img.Workdir, Labels: img.Labels, ID: img.ID(),
	}
	for _, l := range img.Layers {
		el := exportLayer{Files: map[string]string{}}
		for p, c := range l.Files {
			if c == nil {
				el.Whiteouts = append(el.Whiteouts, p)
				continue
			}
			el.Files[p] = base64.StdEncoding.EncodeToString(c)
		}
		out.Layers = append(out.Layers, el)
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if err := json.NewEncoder(zw).Encode(out); err != nil {
		return nil, fmt.Errorf("container: exporting %s: %w", img.Ref(), err)
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Import deserializes an exported image and verifies its content ID.
func Import(archive []byte) (*Image, error) {
	zr, err := gzip.NewReader(bytes.NewReader(archive))
	if err != nil {
		return nil, fmt.Errorf("container: import: %w", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("container: import: %w", err)
	}
	var in exportImage
	if err := json.Unmarshal(raw, &in); err != nil {
		return nil, fmt.Errorf("container: import: %w", err)
	}
	if in.Name == "" || in.Tag == "" {
		return nil, fmt.Errorf("container: import: archive has no image reference")
	}
	img := &Image{
		Name: in.Name, Tag: in.Tag, Env: in.Env, Cmd: in.Cmd,
		Workdir: in.Workdir, Labels: in.Labels,
	}
	if img.Env == nil {
		img.Env = map[string]string{}
	}
	if img.Labels == nil {
		img.Labels = map[string]string{}
	}
	for _, el := range in.Layers {
		l := NewLayer()
		for p, enc := range el.Files {
			content, err := base64.StdEncoding.DecodeString(enc)
			if err != nil {
				return nil, fmt.Errorf("container: import: layer file %s: %w", p, err)
			}
			l.Files[p] = content
		}
		for _, p := range el.Whiteouts {
			l.Files[p] = nil
		}
		img.Layers = append(img.Layers, l)
	}
	if got := img.ID(); got != in.ID {
		return nil, fmt.Errorf("container: import: content ID mismatch (archive %s, computed %s)",
			short(in.ID), short(got))
	}
	return img, nil
}

func short(s string) string {
	if len(s) > 12 {
		return s[:12]
	}
	return s
}
