package container

import (
	"strings"
	"testing"
	"testing/quick"
)

func newEngine() (*Engine, *Registry) {
	reg := NewRegistry()
	return NewEngine(reg), reg
}

func baseImage(t *testing.T, e *Engine) *Image {
	t.Helper()
	img, err := e.BuildAndPush(`
FROM scratch
COPY run.sh /exp/run.sh
ENV NODES 4
CMD echo ready
`, map[string][]byte{"run.sh": []byte("#!/bin/sh")}, "base", "v1")
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestBuildFromScratch(t *testing.T) {
	e, _ := newEngine()
	img := baseImage(t, e)
	fs := img.RootFS()
	if string(fs["exp/run.sh"]) != "#!/bin/sh" {
		t.Fatalf("rootfs = %v", fs)
	}
	if img.Env["NODES"] != "4" {
		t.Fatalf("env = %v", img.Env)
	}
	if len(img.Cmd) != 2 || img.Cmd[0] != "echo" {
		t.Fatalf("cmd = %v", img.Cmd)
	}
	if img.ID() == "" || img.Ref() != "base:v1" {
		t.Fatal("identity broken")
	}
}

func TestBuildLayersPerInstruction(t *testing.T) {
	e, _ := newEngine()
	img, err := e.Build(`
FROM scratch
COPY a /a
COPY b /b
RUN touch /c
`, map[string][]byte{"a": []byte("A"), "b": []byte("B")}, "x", "1")
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Layers) != 3 {
		t.Fatalf("layers = %d, want 3", len(img.Layers))
	}
}

func TestBuildFromBase(t *testing.T) {
	e, _ := newEngine()
	baseImage(t, e)
	img, err := e.BuildAndPush(`
FROM base:v1
COPY extra /exp/extra
ENV NODES 8
`, map[string][]byte{"extra": []byte("x")}, "child", "v1")
	if err != nil {
		t.Fatal(err)
	}
	fs := img.RootFS()
	if _, ok := fs["exp/run.sh"]; !ok {
		t.Fatal("base layer lost")
	}
	if _, ok := fs["exp/extra"]; !ok {
		t.Fatal("child layer missing")
	}
	if img.Env["NODES"] != "8" {
		t.Fatalf("env override = %v", img.Env)
	}
}

func TestBuildDirectoryCopy(t *testing.T) {
	e, _ := newEngine()
	img, err := e.Build(`
FROM scratch
COPY src /app
`, map[string][]byte{"src/x.go": []byte("x"), "src/sub/y.go": []byte("y")}, "d", "1")
	if err != nil {
		t.Fatal(err)
	}
	fs := img.RootFS()
	if string(fs["app/x.go"]) != "x" || string(fs["app/sub/y.go"]) != "y" {
		t.Fatalf("rootfs = %v", keysOf(fs))
	}
}

func TestBuildErrors(t *testing.T) {
	e, _ := newEngine()
	cases := []string{
		"",                            // no FROM
		"COPY a b",                    // must start with FROM
		"FROM scratch\nFROM scratch",  // multiple FROM
		"FROM missing:img",            // unknown base
		"FROM scratch\nCOPY nope /x",  // not in context
		"FROM scratch\nRUN nosuchcmd", // unknown command
		"FROM scratch\nRUN false",     // failing command
		"FROM scratch\nBOGUS x",       // unknown instruction
		"FROM scratch\nCOPY a",        // wrong arity
		"FROM scratch\nENV A",         // wrong arity
	}
	for _, src := range cases {
		if _, err := e.Build(src, map[string][]byte{}, "x", "1"); err == nil {
			t.Errorf("Build(%q) should fail", src)
		}
	}
}

func TestParseBuildfileComments(t *testing.T) {
	bf, err := ParseBuildfile(`
# comment
FROM scratch

# another
CMD true
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(bf.Instructions) != 2 {
		t.Fatalf("instructions = %v", bf.Instructions)
	}
}

func TestRegistryPushPull(t *testing.T) {
	e, reg := newEngine()
	img := baseImage(t, e)
	// idempotent re-push
	if err := reg.Push(img); err != nil {
		t.Fatal(err)
	}
	got, err := reg.Pull("base:v1")
	if err != nil || got.ID() != img.ID() {
		t.Fatalf("pull = %v, %v", got, err)
	}
	// pulled copy is isolated
	got.Env["NODES"] = "999"
	again, _ := reg.Pull("base:v1")
	if again.Env["NODES"] != "4" {
		t.Fatal("registry image mutated through pulled copy")
	}
	if _, err := reg.Pull("ghost"); err == nil {
		t.Fatal("unknown pull should fail")
	}
	// conflicting push rejected
	other := img.clone()
	other.Env["X"] = "y"
	if err := reg.Push(other); err == nil {
		t.Fatal("conflicting push must fail")
	}
	if err := reg.Push(&Image{}); err == nil {
		t.Fatal("unnamed image must fail")
	}
	if got := reg.List(); len(got) != 1 || got[0] != "base:v1" {
		t.Fatalf("list = %v", got)
	}
}

func TestPullDefaultsLatest(t *testing.T) {
	e, reg := newEngine()
	img, _ := e.Build("FROM scratch\nCMD true", nil, "tool", "latest")
	reg.Push(img)
	if _, err := reg.Pull("tool"); err != nil {
		t.Fatal(err)
	}
}

func TestRunContainer(t *testing.T) {
	e, _ := newEngine()
	baseImage(t, e)
	ctr, err := e.Run("base:v1") // default CMD echo ready
	if err != nil {
		t.Fatal(err)
	}
	if ctr.Logs() != "ready\n" {
		t.Fatalf("logs = %q", ctr.Logs())
	}
	// explicit command
	ctr, err = e.Run("base:v1", "cat", "/exp/run.sh")
	if err != nil {
		t.Fatal(err)
	}
	if ctr.Logs() != "#!/bin/sh" {
		t.Fatalf("cat logs = %q", ctr.Logs())
	}
}

func TestRunErrors(t *testing.T) {
	e, _ := newEngine()
	baseImage(t, e)
	if _, err := e.Run("ghost:v0"); err == nil {
		t.Fatal("unknown image should fail")
	}
	if _, err := e.Run("base:v1", "unknown-binary"); err == nil {
		t.Fatal("unknown command should fail")
	}
	img, _ := e.Build("FROM scratch\nCOPY a /a", map[string][]byte{"a": nil}, "nocmd", "1")
	if _, err := e.RunImage(img); err == nil {
		t.Fatal("no command should fail")
	}
}

func TestImmutableInfrastructure(t *testing.T) {
	e, _ := newEngine()
	baseImage(t, e)
	// First container writes a file...
	ctr1, err := e.Run("base:v1", "touch", "/state/installed")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctr1.ReadFile("/state/installed"); err != nil {
		t.Fatal("write should be visible inside the same container")
	}
	// ...but a fresh container from the same image does not see it.
	ctr2, _ := e.Run("base:v1", "true")
	if _, err := ctr2.ReadFile("/state/installed"); err == nil {
		t.Fatal("container changes must not persist across runs (immutable infrastructure)")
	}
}

func TestCommitPersistsChanges(t *testing.T) {
	e, reg := newEngine()
	baseImage(t, e)
	ctr, err := e.Run("base:v1", "touch", "/state/installed")
	if err != nil {
		t.Fatal(err)
	}
	newImg := ctr.Commit("base", "v2")
	if err := reg.Push(newImg); err != nil {
		t.Fatal(err)
	}
	ctr2, _ := e.Run("base:v2", "true")
	if _, err := ctr2.ReadFile("/state/installed"); err != nil {
		t.Fatal("committed change must persist in new image")
	}
}

func TestCommitCapturesDeletes(t *testing.T) {
	e, _ := newEngine()
	baseImage(t, e)
	ctr, err := e.Run("base:v1", "rm", "/exp/run.sh")
	if err != nil {
		t.Fatal(err)
	}
	img2 := ctr.Commit("base", "v3")
	if _, ok := img2.RootFS()["exp/run.sh"]; ok {
		t.Fatal("whiteout not applied")
	}
}

func TestFlattenEquivalence(t *testing.T) {
	e, _ := newEngine()
	img, err := e.Build(`
FROM scratch
COPY a /f
RUN rm /f
COPY b /g
COPY a /g
`, map[string][]byte{"a": []byte("AAAA"), "b": []byte("BBBBBBBB")}, "x", "1")
	if err != nil {
		t.Fatal(err)
	}
	flat := img.Flatten()
	if len(flat.Layers) != 1 {
		t.Fatalf("flat layers = %d", len(flat.Layers))
	}
	a, b := img.RootFS(), flat.RootFS()
	if len(a) != len(b) {
		t.Fatalf("rootfs mismatch: %v vs %v", keysOf(a), keysOf(b))
	}
	for p, c := range a {
		if string(b[p]) != string(c) {
			t.Fatalf("file %s differs", p)
		}
	}
	if flat.Size() >= img.Size() {
		t.Fatalf("flat size %d should be < chained size %d (shadowed bytes dropped)",
			flat.Size(), img.Size())
	}
}

func TestCoreutils(t *testing.T) {
	e, reg := newEngine()
	img, _ := e.Build("FROM scratch\nCOPY f /f\nCMD true",
		map[string][]byte{"f": []byte("data")}, "c", "1")
	reg.Push(img)

	ctr, err := e.Run("c:1", "cp", "/f", "/f2")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := ctr.ReadFile("/f2"); string(got) != "data" {
		t.Fatalf("cp result = %q", got)
	}
	if _, err := e.Run("c:1", "cp", "/only-one"); err == nil {
		t.Fatal("cp arity should fail")
	}
	if _, err := e.Run("c:1", "cp", "/nope", "/x"); err == nil {
		t.Fatal("cp missing source should fail")
	}
	if _, err := e.Run("c:1", "rm", "/nope"); err == nil {
		t.Fatal("rm missing should fail")
	}
	if _, err := e.Run("c:1", "cat", "/nope"); err == nil {
		t.Fatal("cat missing should fail")
	}
	if cmds := e.Commands(); len(cmds) < 6 {
		t.Fatalf("commands = %v", cmds)
	}
}

func TestWorkdirResolution(t *testing.T) {
	e, reg := newEngine()
	img, err := e.Build(`
FROM scratch
WORKDIR /exp
RUN touch data.csv
CMD true
`, nil, "w", "1")
	if err != nil {
		t.Fatal(err)
	}
	reg.Push(img)
	if _, ok := img.RootFS()["exp/data.csv"]; !ok {
		t.Fatalf("workdir-relative touch: %v", keysOf(img.RootFS()))
	}
}

func TestCustomCommand(t *testing.T) {
	e, reg := newEngine()
	e.RegisterCommand("experiment", func(c *ExecContext) error {
		c.FS["results.csv"] = []byte("nodes,time\n1,100\n")
		c.Printf("experiment done (NODES=%s)\n", c.Env["NODES"])
		return nil
	})
	img, _ := e.Build("FROM scratch\nENV NODES 4\nCMD experiment", nil, "exp", "1")
	reg.Push(img)
	ctr, err := e.Run("exp:1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ctr.Logs(), "NODES=4") {
		t.Fatalf("logs = %q", ctr.Logs())
	}
	if got, _ := ctr.ReadFile("results.csv"); !strings.HasPrefix(string(got), "nodes,time") {
		t.Fatalf("results = %q", got)
	}
}

func TestLayerID(t *testing.T) {
	l1 := NewLayer()
	l1.Files["a"] = []byte("x")
	l2 := NewLayer()
	l2.Files["a"] = []byte("x")
	if l1.ID() != l2.ID() {
		t.Fatal("identical layers must share IDs")
	}
	l2.Files["a"] = nil // whiteout differs from content
	if l1.ID() == l2.ID() {
		t.Fatal("whiteout must change layer ID")
	}
}

// Property: Flatten never changes the effective filesystem.
func TestQuickFlattenInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		img := &Image{Name: "q", Tag: "1", Env: map[string]string{}, Labels: map[string]string{}}
		// build a random layer stack: op encodes (path, add/delete)
		for _, op := range ops {
			l := NewLayer()
			path := string(rune('a' + op%8))
			if op%3 == 0 {
				l.Files[path] = nil
			} else {
				l.Files[path] = []byte{op}
			}
			img.Layers = append(img.Layers, l)
		}
		a, b := img.RootFS(), img.Flatten().RootFS()
		if len(a) != len(b) {
			return false
		}
		for p, c := range a {
			if string(b[p]) != string(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func keysOf(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestExecInContainer(t *testing.T) {
	e, _ := newEngine()
	baseImage(t, e)
	ctr, err := e.Run("base:v1", "touch", "/state/a")
	if err != nil {
		t.Fatal(err)
	}
	// exec sees earlier changes and can add more
	if err := e.Exec(ctr, "cp", "/state/a", "/state/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := ctr.ReadFile("/state/b"); err != nil {
		t.Fatal("exec change not visible")
	}
	if err := e.Exec(ctr, "echo", "hi"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ctr.Logs(), "hi") {
		t.Fatalf("logs = %q", ctr.Logs())
	}
	if err := e.Exec(ctr); err == nil {
		t.Fatal("empty exec must fail")
	}
	if err := e.Exec(ctr, "no-such-bin"); err == nil {
		t.Fatal("unknown exec binary must fail")
	}
}

func TestInspect(t *testing.T) {
	e, _ := newEngine()
	img, err := e.Build(`
FROM scratch
COPY f /f
ENV MODE fast
LABEL maintainer popper
WORKDIR /exp
CMD echo run
`, map[string][]byte{"f": []byte("x")}, "tool", "v2")
	if err != nil {
		t.Fatal(err)
	}
	out := img.Inspect()
	for _, want := range []string{"tool:v2", "layers: 1", "MODE=fast", "maintainer=popper", "workdir /exp", "cmd echo run"} {
		if !strings.Contains(out, want) {
			t.Errorf("inspect missing %q:\n%s", want, out)
		}
	}
}

func TestCopyWholeContext(t *testing.T) {
	e, _ := newEngine()
	img, err := e.Build("FROM scratch\nCOPY . /app\nCMD true",
		map[string][]byte{"a": []byte("1"), "d/b": []byte("2")}, "ctx", "1")
	if err != nil {
		t.Fatal(err)
	}
	fs := img.RootFS()
	if string(fs["app/a"]) != "1" || string(fs["app/d/b"]) != "2" {
		t.Fatalf("rootfs = %v", keysOf(fs))
	}
}

func TestExportImport(t *testing.T) {
	e, _ := newEngine()
	img, err := e.Build(`
FROM scratch
COPY a /f
RUN rm /f
COPY a /g
ENV KEY value
LABEL who popper
WORKDIR /w
CMD echo hi
`, map[string][]byte{"a": []byte("payload")}, "exp", "v3")
	if err != nil {
		t.Fatal(err)
	}
	archive, err := img.Export()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Import(archive)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID() != img.ID() {
		t.Fatalf("ids differ: %s vs %s", back.ID()[:8], img.ID()[:8])
	}
	if back.Env["KEY"] != "value" || back.Labels["who"] != "popper" || back.Workdir != "/w" {
		t.Fatalf("metadata lost: %+v", back)
	}
	// whiteouts survive
	fs := back.RootFS()
	if _, ok := fs["f"]; ok {
		t.Fatal("whiteout lost in export")
	}
	if string(fs["g"]) != "payload" {
		t.Fatalf("content lost: %v", keysOf(fs))
	}
}

func TestImportRejectsCorruption(t *testing.T) {
	e, _ := newEngine()
	img, _ := e.Build("FROM scratch\nCOPY a /f\nCMD true",
		map[string][]byte{"a": []byte("data")}, "x", "1")
	archive, _ := img.Export()
	if _, err := Import([]byte("not gzip")); err == nil {
		t.Fatal("garbage must fail")
	}
	// tamper inside: decompress, flip a byte of the payload, recompress
	// is complex; instead corrupt the gzip stream mid-way
	bad := append([]byte(nil), archive...)
	bad[len(bad)/2] ^= 0xFF
	if _, err := Import(bad); err == nil {
		t.Fatal("corrupted archive must fail")
	}
}
