// Package baseliner implements the baseline-performance gate the paper
// describes under automated validation: "if the baseline performance
// cannot be reproduced, there is no point in executing the experiment".
//
// A Fingerprint is the stress-battery throughput profile of a platform
// (plus the orchestration facts gathered from it). Popper repositories
// store the fingerprint taken when an experiment's results were recorded;
// before re-execution the gate re-profiles the machine and refuses to run
// when the profiles diverge beyond tolerance — distinguishing "the code
// regressed" from "the platform changed".
package baseliner

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"popper/internal/cluster"
	"popper/internal/stress"
	"popper/internal/table"
)

// Fingerprint is a platform's baseline performance profile.
type Fingerprint struct {
	Machine string            `json:"machine"`
	Facts   map[string]string `json:"facts"`
	// Throughput maps stressor name to bogo-ops per virtual second.
	Throughput map[string]float64 `json:"throughput"`
}

// Collect profiles a node with `ops` bogo-ops per stressor.
func Collect(node *cluster.Node, ops int) *Fingerprint {
	fp := &Fingerprint{
		Machine:    node.Profile().Name,
		Facts:      node.Facts(),
		Throughput: make(map[string]float64),
	}
	for _, s := range stress.RunBattery(node, ops) {
		fp.Throughput[s.Stressor] = s.Throughput
	}
	return fp
}

// Encode serializes a fingerprint for storage in a Popper repository.
func (fp *Fingerprint) Encode() []byte {
	b, _ := json.MarshalIndent(fp, "", "  ")
	return append(b, '\n')
}

// Decode parses a stored fingerprint.
func Decode(b []byte) (*Fingerprint, error) {
	var fp Fingerprint
	if err := json.Unmarshal(b, &fp); err != nil {
		return nil, fmt.Errorf("baseliner: decoding fingerprint: %w", err)
	}
	if fp.Machine == "" || len(fp.Throughput) == 0 {
		return nil, fmt.Errorf("baseliner: fingerprint missing machine or throughputs")
	}
	return &fp, nil
}

// Table exports the fingerprint as a results table.
func (fp *Fingerprint) Table() *table.Table {
	t := table.New("machine", "stressor", "throughput")
	names := make([]string, 0, len(fp.Throughput))
	for n := range fp.Throughput {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t.MustAppend(table.String(fp.Machine), table.String(n), table.Number(fp.Throughput[n]))
	}
	return t
}

// Deviation is one stressor's relative difference between fingerprints.
type Deviation struct {
	Stressor string
	Recorded float64
	Current  float64
	// Ratio is Current/Recorded; 1.0 means identical.
	Ratio float64
}

// GateResult is the outcome of a baseline comparison.
type GateResult struct {
	Passed     bool
	Tolerance  float64
	Deviations []Deviation // all stressors, sorted by |log ratio| descending
}

// Failures returns the deviations outside tolerance.
func (g GateResult) Failures() []Deviation {
	var out []Deviation
	for _, d := range g.Deviations {
		if !withinTol(d.Ratio, g.Tolerance) {
			out = append(out, d)
		}
	}
	return out
}

// String renders a gate report.
func (g GateResult) String() string {
	var sb strings.Builder
	status := "PASS"
	if !g.Passed {
		status = "FAIL"
	}
	fmt.Fprintf(&sb, "baseline gate: %s (tolerance ±%.0f%%)\n", status, g.Tolerance*100)
	for _, d := range g.Failures() {
		fmt.Fprintf(&sb, "  %-14s recorded=%.4g current=%.4g ratio=%.3f\n",
			d.Stressor, d.Recorded, d.Current, d.Ratio)
	}
	return sb.String()
}

func withinTol(ratio, tol float64) bool {
	return ratio >= 1-tol && ratio <= 1+tol
}

// Compare checks a current fingerprint against the recorded baseline.
// Every stressor must agree within the relative tolerance, and the two
// fingerprints must cover the same stressor set.
func Compare(recorded, current *Fingerprint, tol float64) (GateResult, error) {
	if tol <= 0 || tol >= 1 {
		return GateResult{}, fmt.Errorf("baseliner: tolerance %g out of (0,1)", tol)
	}
	if len(recorded.Throughput) == 0 || len(current.Throughput) == 0 {
		return GateResult{}, fmt.Errorf("baseliner: empty fingerprint")
	}
	res := GateResult{Passed: true, Tolerance: tol}
	for name, rec := range recorded.Throughput {
		cur, ok := current.Throughput[name]
		if !ok {
			return GateResult{}, fmt.Errorf("baseliner: current fingerprint missing stressor %q", name)
		}
		if rec <= 0 {
			return GateResult{}, fmt.Errorf("baseliner: recorded throughput for %q is not positive", name)
		}
		d := Deviation{Stressor: name, Recorded: rec, Current: cur, Ratio: cur / rec}
		res.Deviations = append(res.Deviations, d)
		if !withinTol(d.Ratio, tol) {
			res.Passed = false
		}
	}
	for name := range current.Throughput {
		if _, ok := recorded.Throughput[name]; !ok {
			return GateResult{}, fmt.Errorf("baseliner: recorded fingerprint missing stressor %q", name)
		}
	}
	sort.Slice(res.Deviations, func(i, j int) bool {
		return math.Abs(math.Log(res.Deviations[i].Ratio)) > math.Abs(math.Log(res.Deviations[j].Ratio))
	})
	return res, nil
}

// Gate re-profiles a node and compares against the recorded baseline;
// it returns an error when the platform diverges — the caller must not
// run the experiment in that case.
func Gate(recorded *Fingerprint, node *cluster.Node, ops int, tol float64) (GateResult, error) {
	current := Collect(node, ops)
	res, err := Compare(recorded, current, tol)
	if err != nil {
		return res, err
	}
	if !res.Passed {
		return res, fmt.Errorf("baseliner: platform diverges from recorded baseline:\n%s", res.String())
	}
	return res, nil
}
