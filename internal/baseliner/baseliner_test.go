package baseliner

import (
	"strings"
	"testing"

	"popper/internal/cluster"
	"popper/internal/stress"
)

func node(t *testing.T, profile string, seed int64) *cluster.Node {
	t.Helper()
	c := cluster.New(seed)
	ns, err := c.Provision(profile, 1)
	if err != nil {
		t.Fatal(err)
	}
	return ns[0]
}

func TestCollect(t *testing.T) {
	fp := Collect(node(t, "cloudlab-c220g1", 1), 100)
	if fp.Machine != "cloudlab-c220g1" {
		t.Fatalf("machine = %q", fp.Machine)
	}
	if len(fp.Throughput) != len(stress.All()) {
		t.Fatalf("stressors = %d", len(fp.Throughput))
	}
	if fp.Facts["cores"] != "16" {
		t.Fatalf("facts = %v", fp.Facts)
	}
	for name, v := range fp.Throughput {
		if v <= 0 {
			t.Errorf("%s throughput = %v", name, v)
		}
	}
}

func TestEncodeDecode(t *testing.T) {
	fp := Collect(node(t, "xeon-2005", 2), 50)
	back, err := Decode(fp.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.Machine != fp.Machine || len(back.Throughput) != len(fp.Throughput) {
		t.Fatalf("round trip = %+v", back)
	}
	if _, err := Decode([]byte("junk")); err == nil {
		t.Fatal("junk must fail")
	}
	if _, err := Decode([]byte("{}")); err == nil {
		t.Fatal("empty fingerprint must fail")
	}
}

func TestTableExport(t *testing.T) {
	fp := Collect(node(t, "xeon-2005", 3), 50)
	tb := fp.Table()
	if tb.Len() != len(stress.All()) {
		t.Fatalf("rows = %d", tb.Len())
	}
	if !tb.HasColumn("throughput") {
		t.Fatal("missing column")
	}
}

func TestGatePassesOnSamePlatform(t *testing.T) {
	recorded := Collect(node(t, "cloudlab-c220g1", 4), 200)
	fresh := node(t, "cloudlab-c220g1", 99) // same profile, different jitter
	res, err := Gate(recorded, fresh, 200, 0.10)
	if err != nil {
		t.Fatalf("gate should pass on identical platform: %v", err)
	}
	if !res.Passed || len(res.Failures()) != 0 {
		t.Fatalf("result = %+v", res)
	}
	if !strings.Contains(res.String(), "PASS") {
		t.Fatal("report should say PASS")
	}
}

func TestGateFailsAcrossPlatforms(t *testing.T) {
	// The paper's HDD-vs-network example: an experiment recorded on an
	// old machine must refuse to run unvalidated on a new one.
	recorded := Collect(node(t, "xeon-2005", 5), 200)
	fresh := node(t, "cloudlab-c220g1", 6)
	res, err := Gate(recorded, fresh, 200, 0.10)
	if err == nil {
		t.Fatal("gate must fail across platforms")
	}
	if res.Passed {
		t.Fatal("result should be failed")
	}
	fails := res.Failures()
	if len(fails) != len(stress.All()) {
		t.Fatalf("every stressor should deviate, got %d", len(fails))
	}
	// worst deviation first
	if len(fails) >= 2 {
		a := logAbs(fails[0].Ratio)
		b := logAbs(fails[1].Ratio)
		if a < b {
			t.Fatal("deviations not sorted by severity")
		}
	}
	if !strings.Contains(res.String(), "FAIL") {
		t.Fatal("report should say FAIL")
	}
}

func logAbs(r float64) float64 {
	if r < 1 {
		r = 1 / r
	}
	return r
}

func TestGateDetectsNoisyNeighbour(t *testing.T) {
	recorded := Collect(node(t, "probe-opteron", 7), 200)
	loaded := node(t, "probe-opteron", 8)
	loaded.SetBackgroundLoad(0.5)
	if _, err := Gate(recorded, loaded, 200, 0.10); err == nil {
		t.Fatal("gate must detect a loaded machine")
	}
}

func TestCompareValidation(t *testing.T) {
	a := Collect(node(t, "xeon-2005", 9), 50)
	b := Collect(node(t, "xeon-2005", 10), 50)
	if _, err := Compare(a, b, 0); err == nil {
		t.Fatal("zero tolerance must fail")
	}
	if _, err := Compare(a, b, 1.5); err == nil {
		t.Fatal("tolerance >= 1 must fail")
	}
	// stressor set mismatch
	c := &Fingerprint{Machine: "x", Throughput: map[string]float64{"cpu": 1}}
	if _, err := Compare(a, c, 0.1); err == nil {
		t.Fatal("missing stressors must fail")
	}
	if _, err := Compare(c, a, 0.1); err == nil {
		t.Fatal("extra stressors must fail")
	}
	empty := &Fingerprint{Machine: "x", Throughput: map[string]float64{}}
	if _, err := Compare(empty, empty, 0.1); err == nil {
		t.Fatal("empty fingerprints must fail")
	}
	bad := &Fingerprint{Machine: "x", Throughput: map[string]float64{"cpu": 0}}
	bad2 := &Fingerprint{Machine: "x", Throughput: map[string]float64{"cpu": 1}}
	if _, err := Compare(bad, bad2, 0.1); err == nil {
		t.Fatal("non-positive recorded throughput must fail")
	}
}

func TestCompareToleranceBoundary(t *testing.T) {
	a := &Fingerprint{Machine: "m", Throughput: map[string]float64{"cpu": 100}}
	within := &Fingerprint{Machine: "m", Throughput: map[string]float64{"cpu": 109}}
	outside := &Fingerprint{Machine: "m", Throughput: map[string]float64{"cpu": 112}}
	res, err := Compare(a, within, 0.10)
	if err != nil || !res.Passed {
		t.Fatalf("9%% deviation should pass ±10%%: %+v, %v", res, err)
	}
	res, err = Compare(a, outside, 0.10)
	if err != nil || res.Passed {
		t.Fatalf("12%% deviation should fail ±10%%: %+v, %v", res, err)
	}
}
