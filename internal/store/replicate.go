package store

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// Replication support: internal/repl keeps N stores byte-identical by
// applying the same committed operation sequence to each. The helpers
// here are what the replication layer builds on — a full tree image
// for snapshot catch-up, a raw image install for a rejoining replica
// too far behind (or too divergent) to reach by log replay, and a
// deterministic whole-tree digest replica audits compare.

// Advisory reports paths that are node-local hints rather than part of
// the replicated repository state: the stage-cache sidecar is warm-
// start advice for one machine, so replica agreement and snapshot
// images exclude it (a replica with a different — or no — cache
// sidecar is not divergent).
func Advisory(path string) bool { return path == CacheStatePath }

// Object returns the verified bytes of a content-addressed object the
// store already holds — loose under .popper/objects or packed in an
// extent. This is the local-objects fallback the cas tier consults on
// a cache miss: content the repository proves it has is never worth
// recomputing.
func (s *Store) Object(hash [sha256.Size]byte) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead != nil {
		return nil, false
	}
	return s.readObjectAny(hash)
}

// Image returns every file in the tree — workspace and store metadata
// alike, advisory sidecars excluded — as a flat path map. This is the
// snapshot a replica streams to a peer that cannot be caught up by log
// replay.
func (s *Store) Image() (map[string][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead != nil {
		return nil, s.dead
	}
	paths, err := s.fs.List()
	if err != nil {
		return nil, err
	}
	img := make(map[string][]byte, len(paths))
	for _, path := range paths {
		if Advisory(path) {
			continue
		}
		content, err := s.read(path)
		if err != nil {
			return nil, err
		}
		img[path] = content
	}
	return img, nil
}

// InstallImage replaces the entire tree — workspace and store metadata
// alike — with an exact byte image of another replica's repository:
// files not in the image are removed (advisory sidecars are kept),
// differing files are rewritten atomically. The resulting tree is
// byte-identical to the image source by construction; the manifest
// cache and extent index are rebuilt from it.
func (s *Store) InstallImage(img map[string][]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead != nil {
		return s.dead
	}
	existing, err := s.fs.List()
	if err != nil {
		return err
	}
	for _, path := range existing {
		if Advisory(path) {
			continue
		}
		if _, ok := img[path]; ok {
			continue
		}
		if err := s.remove(path); err != nil {
			return err
		}
		if err := s.syncDir(parentDir(path)); err != nil {
			return err
		}
	}
	paths := make([]string, 0, len(img))
	for path := range img {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if cur, err := s.read(path); err == nil && string(cur) == string(img[path]) {
			continue
		}
		if err := s.writeFileAtomic(path, img[path]); err != nil {
			return err
		}
	}
	s.man, s.got = nil, false
	s.invalidateExtents()
	return nil
}

// TreeHash is the deterministic digest of the whole tree (advisory
// sidecars excluded): sorted paths, each contributing its name and
// content with length framing. Two stores that applied the same
// committed operation sequence have equal tree hashes — the property
// replica audits and the split convergence matrix check.
func (s *Store) TreeHash() ([sha256.Size]byte, error) {
	var zero [sha256.Size]byte
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead != nil {
		return zero, s.dead
	}
	paths, err := s.fs.List()
	if err != nil {
		return zero, err
	}
	h := sha256.New()
	var frame [8]byte
	for _, path := range paths {
		if Advisory(path) {
			continue
		}
		content, err := s.read(path)
		if err != nil {
			return zero, err
		}
		binary.BigEndian.PutUint64(frame[:], uint64(len(path)))
		h.Write(frame[:])
		h.Write([]byte(path))
		binary.BigEndian.PutUint64(frame[:], uint64(len(content)))
		h.Write(frame[:])
		h.Write(content)
	}
	var sum [sha256.Size]byte
	copy(sum[:], h.Sum(nil))
	return sum, nil
}
