package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Store layout under the repository root. The .popper directory is the
// store's own metadata; it is never part of the tracked workspace.
const (
	popperDir        = ".popper"
	manifestPath     = ".popper/manifest"
	manifestNextPath = ".popper/manifest.next"
	objectsDir       = ".popper/objects"
	extentsDir       = ".popper/extents"
	quarantineDir    = ".popper/quarantine"
	// tmpSuffix marks the store's in-flight atomic-write temp files; a
	// surviving one is debris from an interrupted sync.
	tmpSuffix = ".ptmp"
)

// Entry is one manifest line: a tracked file's path, size and content
// hash.
type Entry struct {
	Path string
	Size int64
	Hash [sha256.Size]byte
}

// Manifest is the write-ahead record of a committed workspace
// generation: for every tracked file, the content the repository is
// supposed to hold. It is the reference `popper fsck` verifies the
// tree against.
type Manifest struct {
	Generation int
	Entries    []Entry // sorted by path
	byPath     map[string]int
}

// manifestHeader versions the on-disk format.
const manifestHeader = "popper-manifest v1"

// NewManifest builds a manifest over a workspace snapshot: every
// tracked path, hashed, at the given generation.
func NewManifest(generation int, files map[string][]byte) *Manifest {
	m := &Manifest{Generation: generation}
	for path, content := range files {
		if !Tracked(path) {
			continue
		}
		m.Entries = append(m.Entries, Entry{Path: path, Size: int64(len(content)), Hash: sha256.Sum256(content)})
	}
	sort.Slice(m.Entries, func(i, j int) bool { return m.Entries[i].Path < m.Entries[j].Path })
	m.index()
	return m
}

func (m *Manifest) index() {
	m.byPath = make(map[string]int, len(m.Entries))
	for i, e := range m.Entries {
		m.byPath[e.Path] = i
	}
}

// Len returns the number of tracked files.
func (m *Manifest) Len() int { return len(m.Entries) }

// Lookup returns the entry for a path.
func (m *Manifest) Lookup(path string) (Entry, bool) {
	i, ok := m.byPath[path]
	if !ok {
		return Entry{}, false
	}
	return m.Entries[i], true
}

// Matches reports whether content is exactly what the manifest records
// for path. Allocation-free: this is the clean-sync hot path.
func (m *Manifest) Matches(path string, content []byte) bool {
	i, ok := m.byPath[path]
	if !ok {
		return false
	}
	e := &m.Entries[i]
	return e.Size == int64(len(content)) && e.Hash == sha256.Sum256(content)
}

// Encode renders the manifest:
//
//	popper-manifest v1
//	generation 4
//	<sha256hex> <size> <path>
//	...
//	checksum <sha256hex of all preceding bytes>
//
// The trailing checksum makes a damaged manifest self-evident.
func (m *Manifest) Encode() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s\ngeneration %d\n", manifestHeader, m.Generation)
	for _, e := range m.Entries {
		fmt.Fprintf(&b, "%s %d %s\n", hex.EncodeToString(e.Hash[:]), e.Size, e.Path)
	}
	sum := sha256.Sum256(b.Bytes())
	fmt.Fprintf(&b, "checksum %s\n", hex.EncodeToString(sum[:]))
	return b.Bytes()
}

// ParseManifest decodes and verifies an encoded manifest. Any
// deviation — bad header, bad checksum, torn tail — is an error; fsck
// treats an unparseable manifest as damaged.
func ParseManifest(raw []byte) (*Manifest, error) {
	text := string(raw)
	i := strings.LastIndex(text, "checksum ")
	if i < 0 || !strings.HasSuffix(text, "\n") {
		return nil, fmt.Errorf("store: manifest: missing checksum (torn or damaged)")
	}
	body, sumLine := text[:i], strings.TrimSpace(text[i+len("checksum "):])
	want := sha256.Sum256([]byte(body))
	if sumLine != hex.EncodeToString(want[:]) {
		return nil, fmt.Errorf("store: manifest: checksum mismatch (damaged)")
	}
	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	if len(lines) < 2 || lines[0] != manifestHeader {
		return nil, fmt.Errorf("store: manifest: bad header")
	}
	genStr, ok := strings.CutPrefix(lines[1], "generation ")
	if !ok {
		return nil, fmt.Errorf("store: manifest: missing generation")
	}
	gen, err := strconv.Atoi(genStr)
	if err != nil {
		return nil, fmt.Errorf("store: manifest: bad generation %q", genStr)
	}
	m := &Manifest{Generation: gen}
	for _, line := range lines[2:] {
		hashStr, rest, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("store: manifest: bad entry %q", line)
		}
		sizeStr, path, ok := strings.Cut(rest, " ")
		if !ok || path == "" {
			return nil, fmt.Errorf("store: manifest: bad entry %q", line)
		}
		size, err := strconv.ParseInt(sizeStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("store: manifest: bad size in %q", line)
		}
		hash, err := hex.DecodeString(hashStr)
		if err != nil || len(hash) != sha256.Size {
			return nil, fmt.Errorf("store: manifest: bad hash in %q", line)
		}
		e := Entry{Path: path, Size: size}
		copy(e.Hash[:], hash)
		m.Entries = append(m.Entries, e)
	}
	m.index()
	return m, nil
}

// Tracked reports whether a path belongs to the manifested workspace.
// The rules mirror what `popper` loads: dot-directories (including the
// store's own .popper) and dot-files are out, except the convention's
// own dot-configs; the store's temp files are never workspace content.
func Tracked(path string) bool {
	if strings.HasSuffix(path, tmpSuffix) {
		return false
	}
	rest := path
	for {
		seg, tail, more := strings.Cut(rest, "/")
		if seg == "" {
			return false
		}
		if seg[0] == '.' {
			if more {
				return false // inside a dot-directory
			}
			switch seg {
			case ".popper.yml", ".travis.yml", ".popper-ci.yml", ".gitkeep":
				return true
			}
			return false
		}
		if !more {
			return true
		}
		rest = tail
	}
}

// objectPath returns the content-addressed object location for a hash.
func objectPath(hash [sha256.Size]byte) string {
	hh := hex.EncodeToString(hash[:])
	return objectsDir + "/" + hh[:2] + "/" + hh
}
