package store

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"strings"

	"popper/internal/cas"
)

// The Merkle sidecar: every manifest commit seals a per-generation
// hash tree over the manifest's entries at .popper/merkle, written
// with the same atomic protocol as everything else. The sidecar is a
// pure function of the manifest, so replicas and crash-replays produce
// byte-identical copies and it participates in Image/TreeHash like any
// other store metadata. The scrubber verifies repository integrity
// against the sealed root — O(log n) reads for a clean repo via
// proofs, O(k log n) localization for k rotted leaves via Diff —
// instead of re-hashing every object on every pass.

// MerklePath is the sealed sidecar's location.
const MerklePath = popperDir + "/merkle"

// Exported layout names the scrubber addresses store artifacts by.
const (
	// ManifestFile is the committed manifest's path.
	ManifestFile = manifestPath
	// ExtentsPrefix prefixes every packed extent's path.
	ExtentsPrefix = extentsDir + "/"
	// ObjectsPrefix prefixes every loose object's path.
	ObjectsPrefix = objectsDir + "/"
	// QuarantinePrefix prefixes everything repair quarantined.
	QuarantinePrefix = quarantineDir + "/"
)

// ObjectFile returns the loose-object path for a content hash.
func ObjectFile(hash [sha256.Size]byte) string { return objectPath(hash) }

// merkleLeafPrefix domain-separates manifest-entry leaf digests.
var merkleLeafPrefix = []byte("popper-merkle-leaf\x00")

// MerkleLeaf is the leaf digest over one manifest entry: path, size
// and content hash, length-framed so no two entries collide.
func MerkleLeaf(path string, size int64, hash [sha256.Size]byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write(merkleLeafPrefix)
	var sz [8]byte
	binary.BigEndian.PutUint64(sz[:], uint64(len(path)))
	h.Write(sz[:])
	h.Write([]byte(path))
	binary.BigEndian.PutUint64(sz[:], uint64(size))
	h.Write(sz[:])
	h.Write(hash[:])
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// MerkleForManifest builds the expected tree for a manifest; leaf i
// corresponds to m.Entries[i] (entries are kept sorted by path).
func MerkleForManifest(m *Manifest) *cas.Merkle {
	leaves := make([][sha256.Size]byte, 0, len(m.Entries))
	for _, e := range m.Entries {
		leaves = append(leaves, MerkleLeaf(e.Path, e.Size, e.Hash))
	}
	return cas.BuildMerkle(m.Generation, leaves)
}

// Merkle reads and verifies the sealed sidecar; (nil, nil) when the
// repository has never sealed one.
func (s *Store) Merkle() (*cas.Merkle, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	raw, err := s.read(MerklePath)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return cas.ParseMerkle(raw)
}

// SealMerkle recomputes the sidecar from the committed manifest and
// writes it atomically — repair's and scrub's way of restoring the
// seal after damage.
func (s *Store) SealMerkle() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead != nil {
		return s.dead
	}
	man, err := s.loadManifest()
	if err != nil {
		return err
	}
	if man == nil {
		return nil
	}
	return s.sealMerkleLocked(man)
}

// sealMerkleLocked writes the sidecar for the manifest; callers hold
// the lock.
func (s *Store) sealMerkleLocked(man *Manifest) error {
	return s.writeFileAtomic(MerklePath, MerkleForManifest(man).Encode())
}

// --- scrub support surface -------------------------------------------
//
// The scrubber heals through a prioritized chain of sources, each
// digest-verified. These accessors expose the store's rungs — loose
// objects and packed extents separately, so the chain can attribute a
// repair to the exact source that served it — plus the raw-path
// primitives whole-file healing (extent images, the manifest, the
// sidecar, fetched from a replica quorum) needs.

// Generation returns the committed manifest generation (0 when none).
func (s *Store) Generation() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	man, err := s.loadManifest()
	if err != nil || man == nil {
		return 0, err
	}
	return man.Generation, nil
}

// ObjectLoose returns the hash's bytes from the loose object pool
// only, digest-verified.
func (s *Store) ObjectLoose(hash [sha256.Size]byte) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead != nil {
		return nil, false
	}
	obj, err := s.read(objectPath(hash))
	if err != nil || sha256.Sum256(obj) != hash {
		return nil, false
	}
	return obj, true
}

// ObjectPacked returns the hash's bytes from the packed extents only,
// digest-verified.
func (s *Store) ObjectPacked(hash [sha256.Size]byte) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead != nil {
		return nil, false
	}
	obj, ok := s.loadExtentsLocked()[hash]
	if !ok || sha256.Sum256(obj) != hash {
		return nil, false
	}
	return obj, true
}

// PutObject seeds recovered bytes into the loose object pool after
// verifying they are the content the hash names — the write side of
// every repair-chain rung. A no-op when the pool already proves the
// content (loose or packed); a rotted loose object is overwritten in
// place, so healing restores the tree byte-exactly instead of leaving
// a removed-and-reseeded layout.
func (s *Store) PutObject(hash [sha256.Size]byte, data []byte) error {
	if sha256.Sum256(data) != hash {
		return fmt.Errorf("store: put object: bytes do not hash to %x", hash[:8])
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead != nil {
		return s.dead
	}
	if obj, err := s.read(objectPath(hash)); err == nil {
		if sha256.Sum256(obj) == hash {
			return nil
		}
		// A loose copy exists but rotted: heal it in place, before fsck
		// repair would sweep it away as debris.
		return s.writeFileAtomic(objectPath(hash), data)
	}
	if obj, ok := s.loadExtentsLocked()[hash]; ok && sha256.Sum256(obj) == hash {
		return nil // packed content is proven; do not grow a loose twin
	}
	return s.writeFileAtomic(objectPath(hash), data)
}

// ReadRaw reads one store file through the instrumented read path —
// the scrubber's content walk, subject to the same injected rot as any
// consumer.
func (s *Store) ReadRaw(path string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.read(path)
}

// RestoreRaw atomically replaces one store-internal file with
// replacement bytes a higher authority (a replica quorum) verified —
// whole-file healing for extent images, the manifest and the sidecar.
// Only .popper/ metadata may be restored this way; workspace files
// heal through the manifest-driven Repair path.
func (s *Store) RestoreRaw(path string, data []byte) error {
	if !strings.HasPrefix(path, popperDir+"/") {
		return fmt.Errorf("store: restore-raw %s: not store metadata", path)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead != nil {
		return s.dead
	}
	if err := s.writeFileAtomic(path, data); err != nil {
		return err
	}
	if strings.HasPrefix(path, extentsDir+"/") {
		s.invalidateExtents()
	}
	if path == manifestPath {
		s.man, s.got = nil, false
	}
	return nil
}
