package store

// The stage-cache sidecar: a single advisory file under .popper holding
// the pipeline cache's serialized entry index (a cas extent image, see
// pipeline.SaveState). It lives outside the manifest on purpose — its
// content is execution-history-dependent (hit counters aside, which
// entries exist depends on what ran), so tracking it would make
// otherwise byte-identical repositories diverge. Sync and gc never
// touch it; fsck verifies it is an intact extent and lets --repair
// remove a damaged one (the cache then starts cold, which is always
// correct).

import (
	"popper/internal/cas"
)

// CacheStatePath is where the stage-cache sidecar lives.
const CacheStatePath = popperDir + "/cache.extent"

// SaveCacheState durably writes the sidecar with the store's atomic
// write protocol (temp → fsync → rename → dir fsync). Empty data
// removes the sidecar instead — an empty cache warms nothing.
func (s *Store) SaveCacheState(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead != nil {
		return s.dead
	}
	if len(data) == 0 {
		if err := s.remove(CacheStatePath); err != nil {
			return err
		}
		return s.syncDir(popperDir)
	}
	return s.writeFileAtomic(CacheStatePath, data)
}

// LoadCacheState returns the sidecar bytes, or nil when it is absent or
// not an intact extent image (the pipeline would reject it anyway; nil
// keeps the cold-start decision in one place).
func (s *Store) LoadCacheState() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	raw, err := s.read(CacheStatePath)
	if err != nil {
		return nil
	}
	if _, perr := cas.ParseExtent(raw); perr != nil {
		return nil
	}
	return raw
}
