// Package store is the crash-consistent artifact store every disk
// write in the toolchain goes through. The Popper convention treats
// the repository as the trustworthy record of an evaluation — results,
// failure quarantines and the sweep journal are only evidence if a
// crash mid-write cannot tear them. The store provides:
//
//   - atomic durable writes: temp file → fsync → rename → parent-dir
//     fsync, behind a small VFS interface (DirFS for a real directory,
//     MemFS for deterministic crash simulation);
//   - a write-ahead manifest (.popper/manifest) recording a generation
//     number and per-file content hashes, committed two-phase
//     (.popper/manifest.next is the intent record) so a workspace sync
//     is all-or-nothing;
//   - a content-addressed object cache (.popper/objects/<hash>) holding
//     every manifested file's bytes, which is what makes damaged files
//     repairable;
//   - Fsck/Repair: verify the tree against the manifest — torn,
//     missing, extra and corrupted files — restore what the object
//     cache can prove, adopt complete strays, quarantine the rest;
//   - deterministic disk-crash injection: every write/rename/fsync/
//     remove boundary is a fault site ("disk/<op>/<path>"), and a
//     seeded crash-disk rule kills the sync at exactly that operation,
//     tearing the in-flight write and (on MemFS) settling unsynced
//     state the way a power loss would.
//
// The governing invariant, enforced by the crash-matrix golden suite:
// for every crash point in the sync path, `popper fsck --repair`
// followed by re-running the interrupted command (`popper run
// -resume`) converges to a repository byte-identical to one that never
// crashed. See docs/RESILIENCE.md.
package store

import (
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// VFS is the filesystem boundary the store writes through. Paths are
// slash-separated and relative to the filesystem root; implementations
// create missing parent directories on write and rename.
type VFS interface {
	// ReadFile returns a file's current content (fs.ErrNotExist when
	// absent).
	ReadFile(path string) ([]byte, error)
	// WriteFile replaces a file's content (created if absent). The
	// write is NOT durable until Sync(path) — and, for a new file's
	// directory entry, SyncDir(parent) — succeed.
	WriteFile(path string, data []byte) error
	// Rename atomically points newPath at oldPath's file. The namespace
	// change is not durable until SyncDir on the parent directory.
	Rename(oldPath, newPath string) error
	// Remove deletes a file; durable after SyncDir on the parent.
	Remove(path string) error
	// Sync makes a file's content durable (fsync).
	Sync(path string) error
	// SyncDir makes a directory's entries durable (fsync of the
	// directory — what commits renames, creations and removals).
	SyncDir(dir string) error
	// Stat returns a file's size (fs.ErrNotExist when absent).
	Stat(path string) (int64, error)
	// List returns every file path, sorted. Dot-directories are skipped
	// except the store's own .popper directory.
	List() ([]string, error)
}

// crasher is the optional power-loss hook: when a crash-disk fault
// fires, the store invokes it so the filesystem can settle unsynced
// state deterministically. DirFS (a real disk) has no such hook — the
// crash there is modeled as an immediate stop of all further writes.
type crasher interface{ Crash() }

// parentDir returns the slash-path directory containing path ("." at
// the root).
func parentDir(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return "."
}

// DirFS is the production VFS: a real directory tree with genuine
// fsync durability.
type DirFS struct {
	root string
}

// NewDirFS returns a VFS rooted at dir.
func NewDirFS(dir string) *DirFS { return &DirFS{root: dir} }

func (d *DirFS) abs(path string) string {
	return filepath.Join(d.root, filepath.FromSlash(path))
}

func (d *DirFS) ReadFile(path string) ([]byte, error) {
	return os.ReadFile(d.abs(path))
}

func (d *DirFS) WriteFile(path string, data []byte) error {
	abs := d.abs(path)
	if err := os.MkdirAll(filepath.Dir(abs), 0o755); err != nil {
		return err
	}
	return os.WriteFile(abs, data, 0o644)
}

func (d *DirFS) Rename(oldPath, newPath string) error {
	abs := d.abs(newPath)
	if err := os.MkdirAll(filepath.Dir(abs), 0o755); err != nil {
		return err
	}
	return os.Rename(d.abs(oldPath), abs)
}

func (d *DirFS) Remove(path string) error { return os.Remove(d.abs(path)) }

func (d *DirFS) Sync(path string) error {
	f, err := os.Open(d.abs(path))
	if err != nil {
		return err
	}
	serr := f.Sync()
	cerr := f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

func (d *DirFS) SyncDir(dir string) error {
	f, err := os.Open(d.abs(dir))
	if err != nil {
		// A parent that never materialized (nothing was written under
		// it) has nothing to make durable.
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	serr := f.Sync()
	cerr := f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

func (d *DirFS) Stat(path string) (int64, error) {
	info, err := os.Stat(d.abs(path))
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

func (d *DirFS) List() ([]string, error) {
	var out []string
	err := filepath.WalkDir(d.root, func(path string, entry fs.DirEntry, err error) error {
		if err != nil {
			if path == d.root && os.IsNotExist(err) {
				return filepath.SkipAll
			}
			return nil
		}
		rel, rerr := filepath.Rel(d.root, path)
		if rerr != nil || rel == "." {
			return nil
		}
		name := entry.Name()
		if entry.IsDir() {
			// Skip foreign dot-directories (.git and friends); the
			// store's own metadata directory is part of the tree.
			if strings.HasPrefix(name, ".") && name != popperDir {
				return filepath.SkipDir
			}
			return nil
		}
		out = append(out, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}
