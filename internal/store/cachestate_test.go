package store

import (
	"errors"
	"os"
	"testing"

	"popper/internal/cas"
)

// TestCacheStateSidecarRoundTrip: the sidecar survives syncs and gc,
// loads back verbatim, and fsck treats an intact one as healthy.
func TestCacheStateSidecarRoundTrip(t *testing.T) {
	fs := NewMemFS(1)
	st := New(fs)
	mustSync(t, st, w1())

	image := cas.EncodeExtent([][]byte{[]byte("meta"), []byte("chunk")})
	if err := st.SaveCacheState(image); err != nil {
		t.Fatalf("save: %v", err)
	}
	if got := st.LoadCacheState(); string(got) != string(image) {
		t.Fatalf("load returned %d bytes, want %d", len(got), len(image))
	}
	// Another sync (and its gc) must not disturb the sidecar.
	mustSync(t, st, w2())
	if got := st.LoadCacheState(); string(got) != string(image) {
		t.Fatal("sync disturbed the sidecar")
	}
	mustCleanFsck(t, st, "with healthy sidecar")

	// Saving empty state removes the sidecar.
	if err := st.SaveCacheState(nil); err != nil {
		t.Fatalf("save empty: %v", err)
	}
	if st.LoadCacheState() != nil {
		t.Fatal("empty save must remove the sidecar")
	}
	if _, err := fs.ReadFile(CacheStatePath); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("sidecar file should be gone, err=%v", err)
	}
	mustCleanFsck(t, st, "after sidecar removal")
}

// TestCacheStateSidecarDamage: a damaged sidecar is debris — fsck
// flags it, repair removes it, loads report cold.
func TestCacheStateSidecarDamage(t *testing.T) {
	fs := NewMemFS(1)
	st := New(fs)
	mustSync(t, st, w1())
	image := cas.EncodeExtent([][]byte{[]byte("meta")})
	if err := st.SaveCacheState(image); err != nil {
		t.Fatal(err)
	}
	// Tear the file the way a crash mid-write would.
	if err := fs.WriteFile(CacheStatePath, image[:len(image)/2]); err != nil {
		t.Fatal(err)
	}
	if st.LoadCacheState() != nil {
		t.Fatal("damaged sidecar must load as cold (nil)")
	}
	rep, err := st.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range rep.Findings {
		if f.Path == CacheStatePath && f.State == StateDebris {
			found = true
		}
	}
	if !found {
		t.Fatalf("damaged sidecar not flagged as debris:\n%s", rep.Format())
	}
	if _, err := st.Repair(rep); err != nil {
		t.Fatalf("repair: %v", err)
	}
	if _, err := fs.ReadFile(CacheStatePath); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("repair should remove the damaged sidecar, err=%v", err)
	}
	mustCleanFsck(t, st, "after repairing damaged sidecar")
}
